package arckfs_test

import (
	"bytes"
	"errors"
	"testing"

	"arckfs"
)

func TestPublicQuickstart(t *testing.T) {
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp()
	if app.Name() != "arckfs+" {
		t.Fatalf("Name = %q", app.Name())
	}
	w := app.NewThread(0)
	if err := w.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := w.Create("/docs/readme"); err != nil {
		t.Fatal(err)
	}
	fd, err := w.Open("/docs/readme")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello from the public API")
	if _, err := w.WriteAt(fd, msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := w.ReadAt(fd, got, 0); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := app.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Verifications == 0 {
		t.Fatal("no verifications recorded")
	}
}

func TestPublicCrashRecoverRoundTrip(t *testing.T) {
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20, CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	if err := w.Create("/durable"); err != nil {
		t.Fatal(err)
	}
	if err := app.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	img := sys.CrashImage(arckfs.CrashDropAll)
	sys2, rep, err := arckfs.Recover(img, arckfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("recovery not clean: %s", rep)
	}
	w2 := sys2.NewApp().NewThread(0)
	if _, err := w2.Stat("/durable"); err != nil {
		t.Fatalf("released file lost across crash: %v", err)
	}
}

func TestPublicFsck(t *testing.T) {
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	w.Create("/f")
	if err := app.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	rep, err := arckfs.Fsck(sys.Image())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.CommittedInodes != 2 {
		t.Fatalf("fsck: %s", rep)
	}
}

func TestPublicTrustGroupSharing(t *testing.T) {
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := sys.NewApp(), sys.NewApp()
	if err := sys.NewTrustGroup(a1, a2); err != nil {
		t.Fatal(err)
	}
	w1 := a1.NewThread(0)
	if err := w1.Create("/shared"); err != nil {
		t.Fatal(err)
	}
	if err := a1.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	before := sys.Stats().TrustTransfers
	w2 := a2.NewThread(0)
	fd, err := w2.Open("/shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.WriteAt(fd, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	// The root transfer between group members skipped verification.
	if sys.Stats().TrustTransfers <= before-1 {
		t.Fatalf("TrustTransfers did not increase")
	}
}

func TestPublicModePresets(t *testing.T) {
	buggy, err := arckfs.New(arckfs.Options{Mode: arckfs.ModeArckFS, DevSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if buggy.NewApp().Name() != "arckfs" {
		t.Fatal("preset name mismatch")
	}
	if buggy.Mode() != arckfs.ModeArckFS {
		t.Fatal("mode mismatch")
	}
}

func TestPublicCommitAndRelease(t *testing.T) {
	sys, err := arckfs.New(arckfs.Options{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp()
	w := app.NewThread(0)
	w.Mkdir("/d")
	w.Create("/d/f")
	if err := app.Commit("/d/f"); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := app.Release("/d/f"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// The released file is re-acquired transparently.
	if _, err := w.Open("/d/f"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicErrors(t *testing.T) {
	sys, _ := arckfs.New(arckfs.Options{DevSize: 32 << 20})
	w := sys.NewApp().NewThread(0)
	if _, err := w.Open("/nope"); !errors.Is(err, arckfs.ErrNotExist) {
		t.Fatalf("Open missing = %v", err)
	}
}
