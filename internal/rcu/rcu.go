// Package rcu implements epoch-based read-copy-update, the mechanism the
// §4.5 patch of the ArckFS+ paper introduces to protect directory hash
// buckets: readers traverse without locks, and memory unlinked by writers
// is reclaimed only after every reader that could hold a reference has
// left its critical section.
//
// The implementation is a classic three-epoch scheme. Each reader pins
// the global epoch on entry; Synchronize advances the epoch and waits for
// all pinned readers to observe it; callbacks registered with Defer run
// once two epoch advances have completed after registration.
package rcu

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Domain is an independent RCU context. A file system instance owns one.
type Domain struct {
	epoch atomic.Uint64 // global epoch, starts at 1

	mu      sync.Mutex // guards readers list and callback queues
	readers []*Reader

	cbMu      sync.Mutex
	callbacks []deferred
	inflight  atomic.Int64 // reaped callbacks not yet executed

	// AutoReclaimThreshold triggers an asynchronous grace period once
	// this many callbacks are queued, bounding deferred memory the way
	// userspace-RCU's batched reclamation does. Zero disables it.
	AutoReclaimThreshold int
	reclaiming           atomic.Bool
}

type deferred struct {
	epoch uint64 // registration epoch
	fn    func()
}

// NewDomain creates an RCU domain with auto-reclamation enabled.
func NewDomain() *Domain {
	d := &Domain{AutoReclaimThreshold: 4096}
	d.epoch.Store(1)
	return d
}

// Reader is a per-thread handle for entering read-side critical sections.
// A Reader must not be used concurrently from multiple goroutines.
type Reader struct {
	dom *Domain
	// pinned is 0 when quiescent, otherwise the epoch observed at
	// ReadLock.
	pinned atomic.Uint64
	depth  int
	_      [40]byte
}

// Register creates a Reader attached to the domain.
func (d *Domain) Register() *Reader {
	r := &Reader{dom: d}
	d.mu.Lock()
	d.readers = append(d.readers, r)
	d.mu.Unlock()
	return r
}

// Unregister detaches the reader; it must be quiescent.
func (d *Domain) Unregister(r *Reader) {
	if r.pinned.Load() != 0 {
		panic("rcu: unregistering an active reader")
	}
	d.mu.Lock()
	for i, x := range d.readers {
		if x == r {
			d.readers = append(d.readers[:i], d.readers[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
}

// ReadLock enters a read-side critical section. Nesting is allowed.
func (r *Reader) ReadLock() {
	if r.depth == 0 {
		r.pinned.Store(r.dom.epoch.Load())
	}
	r.depth++
}

// ReadUnlock leaves the innermost read-side critical section.
func (r *Reader) ReadUnlock() {
	if r.depth <= 0 {
		panic("rcu: ReadUnlock without ReadLock")
	}
	r.depth--
	if r.depth == 0 {
		r.pinned.Store(0)
	}
}

// Active reports whether the reader is inside a critical section.
func (r *Reader) Active() bool { return r.depth > 0 }

// Synchronize waits until every read-side critical section that was
// active when it was called has ended, then runs any ripe deferred
// callbacks.
func (d *Domain) Synchronize() {
	target := d.epoch.Add(1)
	d.mu.Lock()
	readers := make([]*Reader, len(d.readers))
	copy(readers, d.readers)
	d.mu.Unlock()
	for _, r := range readers {
		attempts := 0
		for {
			p := r.pinned.Load()
			if p == 0 || p >= target {
				break
			}
			attempts++
			if attempts%8 == 0 {
				runtime.Gosched()
			}
		}
	}
	d.reap(target)
}

// Defer schedules fn to run after a grace period. It may be called from
// writers holding locks; fn runs on a later Synchronize (or Barrier).
// When the queue exceeds AutoReclaimThreshold, a background grace period
// drains it.
func (d *Domain) Defer(fn func()) {
	e := d.epoch.Load()
	d.cbMu.Lock()
	d.callbacks = append(d.callbacks, deferred{epoch: e, fn: fn})
	n := len(d.callbacks)
	d.cbMu.Unlock()
	if d.AutoReclaimThreshold > 0 && n >= d.AutoReclaimThreshold &&
		d.reclaiming.CompareAndSwap(false, true) {
		go func() {
			d.Synchronize()
			d.reclaiming.Store(false)
		}()
	}
}

// reap runs callbacks registered at least one full epoch before now.
func (d *Domain) reap(now uint64) {
	d.cbMu.Lock()
	var ripe, rest []deferred
	for _, cb := range d.callbacks {
		if cb.epoch < now {
			ripe = append(ripe, cb)
		} else {
			rest = append(rest, cb)
		}
	}
	d.callbacks = rest
	d.inflight.Add(int64(len(ripe)))
	d.cbMu.Unlock()
	for _, cb := range ripe {
		cb.fn()
		d.inflight.Add(-1)
	}
}

// Barrier runs grace periods until every callback registered before the
// call has executed — including callbacks a concurrent grace period had
// already reaped but not yet run.
func (d *Domain) Barrier() {
	for {
		d.cbMu.Lock()
		n := len(d.callbacks) + int(d.inflight.Load())
		d.cbMu.Unlock()
		if n == 0 {
			return
		}
		d.Synchronize()
		runtime.Gosched()
	}
}

// Pending returns the number of callbacks queued or currently executing
// (for tests, metrics, and reclaim-aware allocators). A callback counts
// until its effects are visible: reaped-but-not-yet-run callbacks are
// included, so a caller that spins until Pending reaches zero observes
// everything a concurrent grace period was still releasing.
func (d *Domain) Pending() int {
	d.cbMu.Lock()
	n := len(d.callbacks) + int(d.inflight.Load())
	d.cbMu.Unlock()
	return n
}
