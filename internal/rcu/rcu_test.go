package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestReadLockNesting(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	r.ReadLock()
	r.ReadLock()
	if !r.Active() {
		t.Fatal("not active")
	}
	r.ReadUnlock()
	if !r.Active() {
		t.Fatal("outer section ended early")
	}
	r.ReadUnlock()
	if r.Active() {
		t.Fatal("still active")
	}
}

func TestReadUnlockUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := NewDomain()
	r := d.Register()
	r.ReadUnlock()
}

func TestSynchronizeWaitsForReader(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	r.ReadLock()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Synchronize returned while a reader was active")
	default:
	}
	r.ReadUnlock()
	<-done
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	// A reader that starts after Synchronize begins must not block it.
	d := NewDomain()
	r := d.Register()
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	<-done // no readers: returns immediately
	r.ReadLock()
	defer r.ReadUnlock()
	done2 := make(chan struct{})
	r2 := d.Register()
	_ = r2
	go func() {
		// r is pinned at the current epoch; a Synchronize started now
		// must wait for it.
		d.Synchronize()
		close(done2)
	}()
	select {
	case <-done2:
		t.Fatal("Synchronize ignored an active reader")
	default:
	}
	r.ReadUnlock()
	<-done2
	r.ReadLock() // rebalance the deferred unlock
}

func TestDeferRunsAfterGracePeriod(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	var freed atomic.Bool
	r.ReadLock()
	d.Defer(func() { freed.Store(true) })
	if d.Pending() != 1 {
		t.Fatalf("Pending = %d", d.Pending())
	}
	go func() {
		d.Synchronize()
	}()
	if freed.Load() {
		t.Fatal("callback ran while reader active")
	}
	r.ReadUnlock()
	d.Barrier()
	if !freed.Load() {
		t.Fatal("callback never ran")
	}
}

func TestBarrierDrainsAll(t *testing.T) {
	d := NewDomain()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		d.Defer(func() { n.Add(1) })
	}
	d.Barrier()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 callbacks", n.Load())
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d", d.Pending())
	}
}

func TestUnregisterActivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := NewDomain()
	r := d.Register()
	r.ReadLock()
	d.Unregister(r)
}

func TestUnregisteredReaderDoesNotBlock(t *testing.T) {
	d := NewDomain()
	r := d.Register()
	d.Unregister(r)
	d.Synchronize() // must not hang
}

// Stress: writers retire versioned nodes; readers must never observe a
// node that was reclaimed while they were inside a critical section.
func TestStressReclamation(t *testing.T) {
	type node struct {
		val       int64
		reclaimed atomic.Bool
	}
	d := NewDomain()
	var cur atomic.Pointer[node]
	cur.Store(&node{val: 0})

	var stop atomic.Bool
	var wg sync.WaitGroup
	var violations atomic.Int64

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Register()
			defer d.Unregister(r)
			for !stop.Load() {
				r.ReadLock()
				n := cur.Load()
				if n.reclaimed.Load() {
					violations.Add(1)
				}
				r.ReadUnlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 300; i++ {
			old := cur.Swap(&node{val: i})
			d.Defer(func() { old.reclaimed.Store(true) })
			d.Synchronize()
		}
		stop.Store(true)
	}()
	wg.Wait()
	d.Barrier()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reclaimed-while-read violations", v)
	}
}
