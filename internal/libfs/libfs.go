// Package libfs implements the ArckFS library file system: the
// per-application userspace component of the Trio architecture. All data
// and metadata operations run in userspace against mapped core state in
// persistent memory, guided by auxiliary DRAM indexes; the kernel is
// involved only for inode ownership transfers and resource grants.
//
// The package implements both the file system as shipped in the Trio
// artifact (ArckFS) and the patched ArckFS+ of the paper. The six bugs of
// Table 1 are individually toggleable through the Bugs bit-set, and the
// Hooks structure exposes the exact race windows the paper instruments
// with sleep() calls, so every bug is reproducible deterministically.
package libfs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/hlock"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
	"arckfs/internal/rcu"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// Bugs selects which of the paper's Table-1 bugs are present.
type Bugs uint32

const (
	// BugRenameVerify (§4.1): the LibFS does not follow Rules (2) and
	// (3) for directory relocation — no commits of the new parent, no
	// global rename lock. (The matching verifier half is selected by
	// formatting the kernel with verifier.Original.)
	BugRenameVerify Bugs = 1 << iota
	// BugMissingFence (§4.2): the memory fence between persisting a new
	// dentry's body and persisting its commit marker is omitted.
	BugMissingFence
	// BugReleaseUnsync (§4.3): voluntary inode release does not
	// synchronize with concurrent operations; other threads can
	// dereference the unmapped core state.
	BugReleaseUnsync
	// BugAuxCoreRace (§4.4): the bucket-lock critical section covers only
	// the auxiliary-state update; the persistent update happens outside
	// it.
	BugAuxCoreRace
	// BugLocklessBucketRead (§4.5): directory readers traverse hash
	// buckets with no lock and no RCU protection.
	BugLocklessBucketRead
	// BugNoCycleCheck (§4.6): no global rename lock and no
	// descendant check on directory renames.
	BugNoCycleCheck
	// BugReserveLenUnflushed reproduces the reservation-persistence hole
	// arcklint found in this reproduction's own tree (PR 3): reserveDentry
	// stores the reserved record length but does not queue its write-back,
	// so when the auxiliary insert fails (duplicate name) the dead slot's
	// length can read back as 0 after a crash, and layout.ScanTail treats
	// a zero length as the append frontier — hiding every later record in
	// the page, including entries the kernel had already verified. The
	// flag exists so the crashmc dynamic checker can re-discover the hole
	// from its configuration alone; it is NOT part of BugsAll because it
	// is a reproduction bug (fixed unconditionally in PR 3), not one of
	// the paper's Table-1 artifact bugs. Only meaningful together with
	// BugAuxCoreRace, which enables the reserve/fill create path.
	BugReserveLenUnflushed

	// BugsAll is ArckFS exactly as the artifact shipped.
	BugsAll = BugRenameVerify | BugMissingFence | BugReleaseUnsync |
		BugAuxCoreRace | BugLocklessBucketRead | BugNoCycleCheck
	// BugsNone is ArckFS+.
	BugsNone Bugs = 0
)

// Has reports whether bug b is enabled.
func (bs Bugs) Has(b Bugs) bool { return bs&b != 0 }

// Hooks are deterministic stand-ins for the sleep() calls the paper
// inserts to widen race windows. All are optional.
type Hooks struct {
	// CreateBetweenAuxAndCore runs in the §4.4 window: after the
	// auxiliary hash-table insert, before the persistent dentry append
	// (only reachable with BugAuxCoreRace).
	CreateBetweenAuxAndCore func()
	// DirWriteInProgress runs during a directory write, after the
	// mapping check and before the persistent append — the §4.3 window.
	DirWriteInProgress func()
	// RenameAfterCheck runs after a rename's checks and resolution,
	// before the persistent moves — the §4.6 window.
	RenameAfterCheck func()
	// BucketTraverse is forwarded to every directory hash table — the
	// §4.5 window.
	BucketTraverse func()
	// CreateBeforeMarkerFence runs after the commit marker's flush has
	// been issued but before the operation's final fence — the §4.2
	// crash window. A test can capture a crash image here: under
	// BugMissingFence the dentry body is still unfenced at this point,
	// so the marker may persist without it.
	CreateBeforeMarkerFence func()
	// FileReadBlock runs in the file read path after a block pointer has
	// been loaded from the published index, before its page is copied —
	// the data-plane reclamation window: a truncate or unlink that
	// unpublishes the block here must not let the page be reused until
	// the reader leaves its read-side section. The reclamation stress
	// test widens the window with it.
	FileReadBlock func()
}

// Options configures a LibFS instance.
type Options struct {
	Bugs  Bugs
	Cost  *costmodel.Model
	Hooks *Hooks
	// GrantInoBatch and GrantPageBatch size the resource-grant syscalls.
	GrantInoBatch  int
	GrantPageBatch int
	// DirBuckets is the initial bucket count of directory hash tables.
	DirBuckets int
	// StrictUAF makes the §4.5 buggy reader fault immediately on a
	// recycled entry (the paper's instrumented build); off, it retries
	// as the un-instrumented artifact effectively does.
	StrictUAF bool
	// EagerPersist disables the per-thread write-combining persist
	// batcher: every flush issues its clwb at the call site and no
	// streaming stores are used, reproducing the pre-batching persist
	// schedule. Benchmarks use it to A/B the batcher; fence placement
	// (and so crash semantics) is identical in both modes.
	EagerPersist bool
	// NoLeases disables the grant-lease fast paths: voluntary releases
	// tear the mapping down instead of leaving it dormant, re-acquires
	// always cross into the kernel, and page grants are not over-granted
	// into a reserve. Benchmarks use it (together with
	// kernel.Options.Serialize) as the pre-scaling control-plane
	// baseline.
	NoLeases bool
	// SerialData serializes the data plane's read paths: directory
	// lookups take the bucket lock and file reads take the per-inode
	// reader-writer lock, restoring the pre-RCU locked implementation.
	// Benchmarks use it as the baseline side of the data-plane scaling
	// experiment. Ignored when BugLocklessBucketRead selects the §4.5
	// undisciplined reader.
	SerialData bool
}

func (o *Options) fill() {
	if o.GrantInoBatch == 0 {
		o.GrantInoBatch = 256
	}
	if o.GrantPageBatch == 0 {
		o.GrantPageBatch = 512
	}
	if o.DirBuckets == 0 {
		o.DirBuckets = 16
	}
	if o.Hooks == nil {
		o.Hooks = &Hooks{}
	}
}

// FS is one application's library file system.
type FS struct {
	ctrl *kernel.Controller
	dev  *pmem.Device
	geo  layout.Geometry
	app  kernel.AppID
	opts Options
	dom  *rcu.Domain

	mtab sync.Map // ino -> *minode

	inoMu   hlock.SpinLock
	inoPool []uint64

	pageMu   [8]hlock.SpinLock
	pagePool [8][]uint64
	// pageReserve is the page half of the grant lease: each refill
	// over-grants and parks the surplus here, so the next dry stripe
	// restocks without a crossing. Guarded by the stripe's pageMu.
	pageReserve    [8][]uint64
	pageReserveExp [8]time.Time

	nthreads atomic.Int64
	clock    atomic.Uint64 // logical mtime source

	// readLocks counts bucket-lock acquisitions made on behalf of
	// directory lookups; only the SerialData discipline increments it,
	// so the "htable.read_locks" telemetry gauge pins the lock-free read
	// path at zero.
	readLocks atomic.Int64

	// Stats counts the LibFS's recovery-path events (telemetry only).
	Stats Stats

	// tel is the owning system's counter set (set by core.NewApp).
	tel *telemetry.Set

	// tracer and appRow are the arcktrace observability hooks, attached by
	// SetObservability (see span.go); appStats is the owning system's
	// whole-dimension snapshot, attached by SetAppStats. All may be nil.
	tracer   *span.Tracer
	appRow   *telemetry.AppRow
	appStats func() []telemetry.AppStat

	// delegates is the I/O delegation pool (see delegate.go).
	delegates delegatePool
}

// Stats counts LibFS events of interest to telemetry: remaps after an
// involuntary revocation (§4.3 patched path), re-acquisitions of
// voluntarily released inodes that crossed into the kernel, and the
// grant-lease outcomes. A LeaseHit is a kernel crossing that did not
// happen — a dormant mapping reactivated in place, or a page taken from
// the pre-granted reserve — and every hit also increments
// SyscallsAvoided (kept separate so the ratio stays meaningful if the
// two ever diverge). A LeaseMiss fell back to a real crossing.
type Stats struct {
	Remaps          atomic.Int64
	Reacquires      atomic.Int64
	LeaseHits       atomic.Int64
	LeaseMisses     atomic.Int64
	SyscallsAvoided atomic.Int64
	// StaleReads counts read-path touches of a released inode that a
	// peer actively held: served from the retained last-verified aux
	// because a read cannot steal ownership from a live holder.
	StaleReads atomic.Int64
}

// SetTelemetry attaches the owning system's counter set (core.NewApp
// wires this); Telemetry returns it, nil if the FS was built without a
// system.
func (fs *FS) SetTelemetry(tel *telemetry.Set) { fs.tel = tel }

// Telemetry returns the owning system's counter set, or nil.
func (fs *FS) Telemetry() *telemetry.Set { return fs.tel }

// New attaches a LibFS for a registered application.
func New(ctrl *kernel.Controller, app kernel.AppID, opts Options) *FS {
	opts.fill()
	return &FS{
		ctrl: ctrl,
		dev:  ctrl.Device(),
		geo:  ctrl.Geometry(),
		app:  app,
		opts: opts,
		dom:  rcu.NewDomain(),
	}
}

// App returns the kernel application id.
func (fs *FS) App() kernel.AppID { return fs.app }

// Name implements fsapi.FS.
func (fs *FS) Name() string {
	if fs.opts.Bugs == BugsNone {
		return "arckfs+"
	}
	return "arckfs"
}

// Bugs returns the configured bug set.
func (fs *FS) Bugs() Bugs { return fs.opts.Bugs }

// Domain exposes the RCU domain (tests).
func (fs *FS) Domain() *rcu.Domain { return fs.dom }

// ReadLockCount returns the number of bucket-lock acquisitions taken on
// behalf of directory lookups — zero unless SerialData is set.
func (fs *FS) ReadLockCount() int64 { return fs.readLocks.Load() }

func (fs *FS) now() uint64 { return fs.clock.Add(1) }

// --- Resource pools --------------------------------------------------------

// allocIno takes an inode number from the granted pool, refilling via a
// kernel grant when empty. t (nil-tolerated) attributes the refill
// crossing to the operation's span.
func (fs *FS) allocIno(t *Thread) (uint64, error) {
	fs.inoMu.Lock()
	if len(fs.inoPool) == 0 {
		fs.inoMu.Unlock()
		begin := t.crossStart()
		batch, err := fs.ctrl.GrantInodes(fs.app, fs.opts.GrantInoBatch)
		t.crossEnd(telemetry.EvGrantInodes, begin)
		if err != nil && fs.reclaimRetired() {
			// Retired inode numbers may be parked behind a grace period;
			// as in allocPage, drain the retire queue on the failure path
			// only and retry before reporting exhaustion.
			fs.inoMu.Lock()
			if len(fs.inoPool) > 0 {
				ino := fs.inoPool[len(fs.inoPool)-1]
				fs.inoPool = fs.inoPool[:len(fs.inoPool)-1]
				fs.inoMu.Unlock()
				return ino, nil
			}
			fs.inoMu.Unlock()
			begin = t.crossStart()
			batch, err = fs.ctrl.GrantInodes(fs.app, fs.opts.GrantInoBatch)
			t.crossEnd(telemetry.EvGrantInodes, begin)
		}
		if err != nil {
			return 0, err
		}
		fs.inoMu.Lock()
		fs.inoPool = append(fs.inoPool, batch...)
	}
	ino := fs.inoPool[len(fs.inoPool)-1]
	fs.inoPool = fs.inoPool[:len(fs.inoPool)-1]
	fs.inoMu.Unlock()
	return ino, nil
}

// recycleIno returns a never-committed inode number to the pool.
func (fs *FS) recycleIno(ino uint64) {
	fs.inoMu.Lock()
	fs.inoPool = append(fs.inoPool, ino)
	fs.inoMu.Unlock()
}

// pageReserveTTL bounds how long a parked page reserve still counts as
// "recently granted" for lease accounting. Consuming an expired reserve
// is still legal (the pages remain granted to this app); it just counts
// as a miss instead of a hit.
const pageReserveTTL = 2 * time.Second

// Reserve-pressure thresholds: the fraction of device pages still free
// below which the lease reserve stops being cheap insurance and starts
// starving other tenants. Below reservePressureLow the parked reserve's
// TTL halves; below reservePressureHigh it drops to a quarter second and
// refills stop over-granting entirely, so a tenant population that
// collectively parked most of the device drains its reserves back to
// the allocator instead of holding them while grants fail elsewhere.
const (
	reservePressureLow  = 0.25
	reservePressureHigh = 0.10
)

// reserveTTL adapts the parked-reserve lifetime to allocator pressure.
// Consulted only on the refill crossing (once per GrantPageBatch pages),
// so the FreePageFraction read costs nothing on the alloc fast path.
func (fs *FS) reserveTTL() time.Duration {
	switch frac := fs.ctrl.FreePageFraction(); {
	case frac < reservePressureHigh:
		return pageReserveTTL / 8
	case frac < reservePressureLow:
		return pageReserveTTL / 2
	}
	return pageReserveTTL
}

// allocPage takes a granted page, refilling from the kernel when the
// stripe runs dry. With leases enabled a dry stripe first consumes its
// reserve — pages the kernel already granted on a previous crossing — so
// the refill costs no syscall; only when both pool and reserve are empty
// does the stripe cross, over-granting to restock both halves.
func (fs *FS) allocPage(t *Thread, cpu int) (uint64, error) {
	s := uint(cpu) % 8
	fs.pageMu[s].Lock()
	if len(fs.pagePool[s]) == 0 && len(fs.pageReserve[s]) > 0 {
		fs.pagePool[s] = fs.pageReserve[s]
		fs.pageReserve[s] = nil
		if time.Now().Before(fs.pageReserveExp[s]) {
			fs.Stats.LeaseHits.Add(1)
			fs.Stats.SyscallsAvoided.Add(1)
			t.spanEv(telemetry.SpanEvLeaseHit, 0, 0)
		} else {
			fs.Stats.LeaseMisses.Add(1)
			t.spanEv(telemetry.SpanEvLeaseMiss, 0, 0)
		}
	}
	if len(fs.pagePool[s]) == 0 {
		fs.pageMu[s].Unlock()
		batch, reserve, err := fs.grantPageBatch(t, cpu)
		if err != nil && fs.reclaimRetired() {
			// The device may look exhausted only because retired pages
			// are parked behind a grace period: drain the retire queue,
			// retry the pool, and only then re-try the kernel. This wait
			// must stay on the failure path — a pinned reader parked in a
			// test hook can be blocked on this very writer's progress, so
			// waiting for grace on every dry stripe would deadlock the
			// deterministic interleaving tests.
			fs.pageMu[s].Lock()
			if n := len(fs.pagePool[s]); n > 0 {
				p := fs.pagePool[s][n-1]
				fs.pagePool[s] = fs.pagePool[s][:n-1]
				fs.pageMu[s].Unlock()
				return p, nil
			}
			fs.pageMu[s].Unlock()
			batch, reserve, err = fs.grantPageBatch(t, cpu)
		}
		if err != nil {
			return 0, err
		}
		fs.pageMu[s].Lock()
		fs.pagePool[s] = append(fs.pagePool[s], batch...)
		if len(reserve) > 0 {
			if len(fs.pageReserve[s]) == 0 {
				fs.pageReserve[s] = reserve
				fs.pageReserveExp[s] = time.Now().Add(fs.reserveTTL())
			} else {
				// A racing refill already parked a reserve; ours goes
				// straight to the pool.
				fs.pagePool[s] = append(fs.pagePool[s], reserve...)
			}
		}
	}
	p := fs.pagePool[s][len(fs.pagePool[s])-1]
	fs.pagePool[s] = fs.pagePool[s][:len(fs.pagePool[s])-1]
	fs.pageMu[s].Unlock()
	return p, nil
}

// grantPageBatch performs the kernel page-grant crossing. With leases it
// asks for double the batch and splits the result into an immediate pool
// and a parked reserve; when the double grant fails (a small device near
// capacity) it falls back to a plain single grant so leases never turn a
// satisfiable allocation into ENOSPC. Under high allocator pressure
// (free fraction below reservePressureHigh) the over-grant is skipped
// up front: hoarding a reserve while other tenants' grants fail is the
// wrong trade, and skipping saves the doomed double-grant crossing.
func (fs *FS) grantPageBatch(t *Thread, cpu int) (pool, reserve []uint64, err error) {
	n := fs.opts.GrantPageBatch
	if !fs.opts.NoLeases && fs.ctrl.FreePageFraction() >= reservePressureHigh {
		begin := t.crossStart()
		batch, err := fs.ctrl.GrantPages(fs.app, cpu, 2*n)
		t.crossEnd(telemetry.EvGrantPages, begin)
		if err == nil {
			return batch[:n], batch[n:], nil
		}
	}
	begin := t.crossStart()
	batch, err := fs.ctrl.GrantPages(fs.app, cpu, n)
	t.crossEnd(telemetry.EvGrantPages, begin)
	if err != nil {
		return nil, nil, err
	}
	return batch, nil, nil
}

// ReturnGrants hands every pooled page — the allocator stripes and the
// parked lease reserves — back to the kernel in one crossing. The
// tenancy registry calls it when retiring a tenant, so a departed app's
// unused grants rejoin the global allocator immediately instead of
// being swept up by UnregisterApp's ownership scan. Unused inode-number
// grants are reclaimed by UnregisterApp itself.
func (fs *FS) ReturnGrants() {
	var pages []uint64
	for s := range fs.pagePool {
		fs.pageMu[s].Lock()
		pages = append(pages, fs.pagePool[s]...)
		pages = append(pages, fs.pageReserve[s]...)
		fs.pagePool[s] = nil
		fs.pageReserve[s] = nil
		fs.pageMu[s].Unlock()
	}
	if len(pages) > 0 {
		fs.ctrl.ReturnPages(fs.app, pages)
	}
}

// recyclePages returns never-verified pages to the pool.
func (fs *FS) recyclePages(cpu int, pages []uint64) {
	if len(pages) == 0 {
		return
	}
	s := uint(cpu) % 8
	fs.pageMu[s].Lock()
	fs.pagePool[s] = append(fs.pagePool[s], pages...)
	fs.pageMu[s].Unlock()
}

// retirePages returns pages a writer has just unpublished (truncate
// shrink, unlink teardown) to the allocator pool. Under the SerialData
// discipline the caller's inode lock excluded every reader, so the pages
// recycle immediately; on the lock-free data plane a reader inside an
// RCU read-side section may still hold a block pointer it loaded before
// the unpublish, so recycling waits out a grace period through the FS's
// domain — the same retire path htable uses for unlinked bucket entries.
func (fs *FS) retirePages(t *Thread, pages []uint64) {
	if len(pages) == 0 {
		return
	}
	if fs.opts.SerialData {
		fs.recyclePages(t.cpu, pages)
		return
	}
	cpu := t.cpu
	fs.dom.Defer(func() { fs.recyclePages(cpu, pages) })
}

// reclaimRetired drains the retire queue — including callbacks an
// in-flight background grace period has already reaped but not yet run —
// so a failed kernel grant can be retried against recycled resources.
// It reports whether anything was (or may have been) reclaimed. Blocking
// on grace periods is legal here only because this runs on allocation-
// failure paths; see allocPage for why it must stay off the common
// dry-stripe path.
func (fs *FS) reclaimRetired() bool {
	drained := false
	for fs.dom.Pending() > 0 {
		//arcklint:allow graceblock allocation-failure path only: serial mode never defers (so never waits here), and lock-free readers take no inode or pool lock, so no pinned reader can be stalled behind the locks our callers hold
		fs.dom.Synchronize()
		drained = true
		runtime.Gosched()
	}
	return drained
}

// retireIno parallels retirePages for a destroyed file's never-committed
// inode number: reuse waits until no reader can still be acting on the
// stale minode.
func (fs *FS) retireIno(t *Thread, ino uint64) {
	if fs.opts.SerialData {
		fs.recycleIno(ino)
		return
	}
	fs.dom.Defer(func() { fs.recycleIno(ino) })
}

// --- Threads ---------------------------------------------------------------

// Thread is a per-worker handle; it carries the virtual CPU (for log-tail
// and allocator-stripe selection), the RCU reader, the fd table, and the
// thread's write-combining persist queue.
type Thread struct {
	fs  *FS
	cpu int
	rd  *rcu.Reader
	fds []*fdEnt
	// pb is the thread's persist batcher. Operations enqueue
	// line-granular flushes into it and end on a Barrier, so the queue is
	// empty between operations.
	pb *pmem.Batch

	// tl is the thread's lane in the span tracer's ring (nil when the FS
	// has no tracer); sp is the span of the operation in flight, non-nil
	// only while a sampled operation is executing on this thread.
	tl *span.Local
	sp *span.Span
}

type fdEnt struct {
	mi *minode
}

// NewThread implements fsapi.FS.
func (fs *FS) NewThread(cpu int) fsapi.Thread {
	fs.nthreads.Add(1)
	pb := fs.dev.NewBatch()
	if fs.opts.EagerPersist {
		pb = fs.dev.NewEagerBatch()
	}
	t := &Thread{fs: fs, cpu: cpu, rd: fs.dom.Register(), pb: pb, tl: fs.tracer.NewLocal()}
	// The batch reports every flush, streaming store, and fence to the
	// thread (see Thread.SpanEvent), which counts them per-app and attaches
	// them to the sampled span when one is open.
	pb.SetSink(t)
	return t
}

// Detach releases the thread's RCU registration, drains any queued
// persists, and hands the thread's tracer lane back if it never recorded
// a span — so tenant churn does not grow the tracer's registry. (Not
// part of fsapi.Thread; benchmark drivers call it when a worker exits.)
func (t *Thread) Detach() {
	t.pb.Drain()
	if t.rd != nil {
		t.fs.dom.Unregister(t.rd)
		t.rd = nil
	}
	if t.tl != nil {
		t.fs.tracer.Release(t.tl)
		t.tl = nil
	}
}

func (t *Thread) newFD(mi *minode) fsapi.FD {
	for i, e := range t.fds {
		if e == nil {
			t.fds[i] = &fdEnt{mi: mi}
			return fsapi.FD(i)
		}
	}
	t.fds = append(t.fds, &fdEnt{mi: mi})
	return fsapi.FD(len(t.fds) - 1)
}

func (t *Thread) lookupFD(fd fsapi.FD) (*minode, error) {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return nil, fsapi.ErrBadFd
	}
	return t.fds[fd].mi, nil
}

// Close implements fsapi.Thread.
func (t *Thread) Close(fd fsapi.FD) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpClose), &err)
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return fsapi.ErrBadFd
	}
	t.fds[fd] = nil
	return nil
}
