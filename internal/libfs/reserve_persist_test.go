package libfs

import "testing"

// TestReserveDentryQueuesRecLenWriteback pins the arcklint flushcheck fix
// in reserveDentry: the reserved record length must be queued for
// write-back by reserveDentry itself, not left to fillDentry. When the
// auxiliary insert fails (duplicate name), the slot stays reserved but
// dead and fillDentry never runs — an unflushed length would read back
// as 0 after a crash, and layout.ScanTail treats a zero length as the
// append frontier, hiding every later record in the page.
func TestReserveDentryQueuesRecLenWriteback(t *testing.T) {
	hooks := &Hooks{}
	fs := newFS(t, BugAuxCoreRace, hooks)
	w := th(t, fs)
	if err := w.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}

	// The §4.4 hook fires between reserveDentry+aux insert and
	// fillDentry: at that instant the only queued write-back can be the
	// one reserveDentry itself issued for the record-length field.
	var pendingInWindow int
	hooks.CreateBetweenAuxAndCore = func() {
		pendingInWindow = w.pb.Pending()
	}
	if err := w.Create("/d/a"); err != nil {
		t.Fatal(err)
	}
	if pendingInWindow == 0 {
		t.Fatal("reserveDentry did not queue a write-back for the reserved record length; " +
			"a crash before fillDentry would lose it and truncate log scans at the slot")
	}

	// The dead-slot path proper: a duplicate create reserves a slot, the
	// auxiliary insert fails, fillDentry never runs. The thread's next
	// barrier must still have the length line queued so the dead slot is
	// persistently skippable rather than a scan terminator.
	hooks.CreateBetweenAuxAndCore = nil
	if err := w.Create("/d/a"); err == nil {
		t.Fatal("duplicate create unexpectedly succeeded")
	}
	if w.pb.Pending() == 0 {
		t.Fatal("failed create left the dead slot's record length unqueued")
	}
	w.pb.Barrier()
}
