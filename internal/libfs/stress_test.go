package libfs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

// TestLockFreeReadersVsDirectoryWriters is the data-plane stress test the
// RCU read paths are gated on: reader threads open, stat, and read a set
// of stable files while writer threads create, rename, and unlink other
// names in the same directory — so every lookup races bucket mutations on
// the chains it traverses. The stable files' contents are never written
// during the run, making every read byte-deterministic (concurrent
// same-region writes are allowed to return unspecified bytes, so the
// stress keeps them out of scope). Run under -race this covers both read
// disciplines; the lock-free one is the subtest that exercises the RCU
// machinery.
func TestLockFreeReadersVsDirectoryWriters(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "lockfree"
		if serial {
			name = "serialdata"
		}
		t.Run(name, func(t *testing.T) {
			// Built directly rather than via newFS: the discipline must be
			// fixed at construction, before the root directory table exists.
			dev := pmem.New(64<<20, nil)
			ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{SerialData: serial})
			setup := th(t, fs)
			if err := setup.Mkdir("/shared"); err != nil {
				t.Fatal(err)
			}
			const stable = 8
			want := make([][]byte, stable)
			for i := 0; i < stable; i++ {
				p := fmt.Sprintf("/shared/stable%d", i)
				if err := setup.Create(p); err != nil {
					t.Fatal(err)
				}
				fd, err := setup.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = []byte(fmt.Sprintf("payload-%d-0123456789", i))
				if _, err := setup.WriteAt(fd, want[i], 0); err != nil {
					t.Fatal(err)
				}
				if err := setup.Close(fd); err != nil {
					t.Fatal(err)
				}
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rt := fs.NewThread(tid).(*Thread)
					rng := rand.New(rand.NewSource(int64(tid)*131 + 17))
					buf := make([]byte, 64)
					for !stop.Load() {
						k := rng.Intn(stable)
						p := fmt.Sprintf("/shared/stable%d", k)
						if _, err := rt.Stat(p); err != nil {
							errs <- fmt.Errorf("stat %s: %w", p, err)
							return
						}
						fd, err := rt.Open(p)
						if err != nil {
							errs <- fmt.Errorf("open %s: %w", p, err)
							return
						}
						n, err := rt.ReadAt(fd, buf, 0)
						if err != nil {
							errs <- fmt.Errorf("read %s: %w", p, err)
							return
						}
						if n != len(want[k]) || string(buf[:n]) != string(want[k]) {
							errs <- fmt.Errorf("read %s: got %q, want %q", p, buf[:n], want[k])
							return
						}
						if err := rt.Close(fd); err != nil {
							errs <- err
							return
						}
					}
				}(1 + r)
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wt := fs.NewThread(10 + w).(*Thread)
					for i := 0; i < 400; i++ {
						a := fmt.Sprintf("/shared/w%d-a%d", w, i%32)
						b := fmt.Sprintf("/shared/w%d-b%d", w, i%32)
						if err := wt.Create(a); err != nil {
							errs <- fmt.Errorf("create %s: %w", a, err)
							return
						}
						if err := wt.Rename(a, b); err != nil {
							errs <- fmt.Errorf("rename %s: %w", a, err)
							return
						}
						if err := wt.Unlink(b); err != nil {
							errs <- fmt.Errorf("unlink %s: %w", b, err)
							return
						}
					}
					stop.Store(true)
				}(w)
			}
			wg.Wait()
			stop.Store(true)
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			// Drain deferred bucket-entry reclamation before the device goes
			// away with the test.
			fs.Domain().Barrier()
		})
	}
}
