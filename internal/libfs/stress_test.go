package libfs

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// TestLockFreeReadersVsDirectoryWriters is the data-plane stress test the
// RCU read paths are gated on: reader threads open, stat, and read a set
// of stable files while writer threads create, rename, and unlink other
// names in the same directory — so every lookup races bucket mutations on
// the chains it traverses. The stable files' contents are never written
// during the run, making every read byte-deterministic (concurrent
// same-region writes are allowed to return unspecified bytes, so the
// stress keeps them out of scope). Run under -race this covers both read
// disciplines; the lock-free one is the subtest that exercises the RCU
// machinery.
func TestLockFreeReadersVsDirectoryWriters(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "lockfree"
		if serial {
			name = "serialdata"
		}
		t.Run(name, func(t *testing.T) {
			// Built directly rather than via newFS: the discipline must be
			// fixed at construction, before the root directory table exists.
			dev := pmem.New(64<<20, nil)
			ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{SerialData: serial})
			setup := th(t, fs)
			if err := setup.Mkdir("/shared"); err != nil {
				t.Fatal(err)
			}
			const stable = 8
			want := make([][]byte, stable)
			for i := 0; i < stable; i++ {
				p := fmt.Sprintf("/shared/stable%d", i)
				if err := setup.Create(p); err != nil {
					t.Fatal(err)
				}
				fd, err := setup.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = []byte(fmt.Sprintf("payload-%d-0123456789", i))
				if _, err := setup.WriteAt(fd, want[i], 0); err != nil {
					t.Fatal(err)
				}
				if err := setup.Close(fd); err != nil {
					t.Fatal(err)
				}
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rt := fs.NewThread(tid).(*Thread)
					rng := rand.New(rand.NewSource(int64(tid)*131 + 17))
					buf := make([]byte, 64)
					for !stop.Load() {
						k := rng.Intn(stable)
						p := fmt.Sprintf("/shared/stable%d", k)
						if _, err := rt.Stat(p); err != nil {
							errs <- fmt.Errorf("stat %s: %w", p, err)
							return
						}
						fd, err := rt.Open(p)
						if err != nil {
							errs <- fmt.Errorf("open %s: %w", p, err)
							return
						}
						n, err := rt.ReadAt(fd, buf, 0)
						if err != nil {
							errs <- fmt.Errorf("read %s: %w", p, err)
							return
						}
						if n != len(want[k]) || string(buf[:n]) != string(want[k]) {
							errs <- fmt.Errorf("read %s: got %q, want %q", p, buf[:n], want[k])
							return
						}
						if err := rt.Close(fd); err != nil {
							errs <- err
							return
						}
					}
				}(1 + r)
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wt := fs.NewThread(10 + w).(*Thread)
					for i := 0; i < 400; i++ {
						a := fmt.Sprintf("/shared/w%d-a%d", w, i%32)
						b := fmt.Sprintf("/shared/w%d-b%d", w, i%32)
						if err := wt.Create(a); err != nil {
							errs <- fmt.Errorf("create %s: %w", a, err)
							return
						}
						if err := wt.Rename(a, b); err != nil {
							errs <- fmt.Errorf("rename %s: %w", a, err)
							return
						}
						if err := wt.Unlink(b); err != nil {
							errs <- fmt.Errorf("unlink %s: %w", b, err)
							return
						}
					}
					stop.Store(true)
				}(w)
			}
			wg.Wait()
			stop.Store(true)
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			// Drain deferred bucket-entry reclamation before the device goes
			// away with the test.
			fs.Domain().Barrier()
		})
	}
}

// TestReadAtVsTruncateReclaim races lock-free ReadAt against the page
// reclamation paths: a truncator loops shrink-to-zero/refill on shared
// files while a churn thread creates, dirties, and unlinks its own files
// so recycled pages are promptly reallocated (the pool is LIFO) and
// stamped with a foreign pattern. A reader that loaded a block pointer
// before the shrink must still find the original payload — if Truncate
// or destroyFile recycled pages without waiting out the reader's RCU
// section, the reader observes the churn thread's 0xAB bytes (and -race
// flags the write/read overlap on the device array). Refills take a
// test-level lock against readers so the only concurrent writer a read
// can overlap is Truncate itself, keeping legitimately-unspecified
// overlapping writes out of scope.
func TestReadAtVsTruncateReclaim(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "lockfree"
		if serial {
			name = "serialdata"
		}
		t.Run(name, func(t *testing.T) {
			dev := pmem.New(64<<20, nil)
			ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			// The FileReadBlock hook yields between a reader's block-pointer
			// load and the page copy — the reclamation window — so the
			// truncator and churn threads get scheduled while a loaded
			// pointer is still live (the deterministic stand-in for the
			// paper's sleep() instrumentation). Armed only on the lock-free
			// side: under SerialData the inode lock excludes the truncator
			// for the whole read, and yielding inside the held spin lock
			// just convoys the test.
			hooks := &Hooks{}
			if !serial {
				hooks.FileReadBlock = runtime.Gosched
			}
			fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{
				SerialData: serial,
				Hooks:      hooks,
			})
			setup := th(t, fs)
			if err := setup.Mkdir("/shared"); err != nil {
				t.Fatal(err)
			}
			if err := setup.Mkdir("/churn"); err != nil {
				t.Fatal(err)
			}
			const (
				nfiles   = 4
				fileSize = 8 * layout.PageSize // several pages per file
			)
			fill := func(k int) byte { return byte('A' + k) }
			writeFile := func(th *Thread, path string, b byte, n int) error {
				fd, err := th.Open(path)
				if err != nil {
					return err
				}
				buf := make([]byte, n)
				for i := range buf {
					buf[i] = b
				}
				if _, err := th.WriteAt(fd, buf, 0); err != nil {
					return err
				}
				return th.Close(fd)
			}
			for k := 0; k < nfiles; k++ {
				p := fmt.Sprintf("/shared/f%d", k)
				if err := setup.Create(p); err != nil {
					t.Fatal(err)
				}
				if err := writeFile(setup, p, fill(k), fileSize); err != nil {
					t.Fatal(err)
				}
			}

			// refillMu[k] excludes readers only during the refill WriteAt;
			// Truncate deliberately takes no test lock so it races reads.
			var refillMu [nfiles]sync.RWMutex
			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, 16)

			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rt := fs.NewThread(tid).(*Thread)
					rng := rand.New(rand.NewSource(int64(tid)*257 + 5))
					buf := make([]byte, fileSize)
					for !stop.Load() {
						k := rng.Intn(nfiles)
						p := fmt.Sprintf("/shared/f%d", k)
						refillMu[k].RLock()
						fd, err := rt.Open(p)
						if err != nil {
							refillMu[k].RUnlock()
							errs <- fmt.Errorf("open %s: %w", p, err)
							return
						}
						n, err := rt.ReadAt(fd, buf, 0)
						if err != nil {
							refillMu[k].RUnlock()
							errs <- fmt.Errorf("read %s: %w", p, err)
							return
						}
						for i := 0; i < n; i++ {
							// A byte is the payload, or zero when the read
							// overlapped a shrink; anything else is another
							// file's data bleeding through recycled pages.
							if buf[i] != fill(k) && buf[i] != 0 {
								refillMu[k].RUnlock()
								errs <- fmt.Errorf("read %s off %d: got %#x, want %#x or 0",
									p, i, buf[i], fill(k))
								return
							}
						}
						if err := rt.Close(fd); err != nil {
							refillMu[k].RUnlock()
							errs <- err
							return
						}
						refillMu[k].RUnlock()
					}
				}(1 + r)
			}

			// Truncator: shrink-to-zero races the readers; the refill that
			// restores the payload is excluded by the test lock. Between
			// the two, a scratch file is created and dirtied on the same
			// thread — the allocator pool is a per-stripe LIFO, so the
			// scratch allocation pops exactly the pages the shrink just
			// freed and stamps them 0xAB while a reader may still hold
			// their pointers. With grace-period retirement the pages are
			// not in the pool yet and the scratch gets clean ones.
			wg.Add(1)
			go func() {
				defer wg.Done()
				wt := fs.NewThread(10).(*Thread)
				for i := 0; i < 100; i++ {
					k := i % nfiles
					p := fmt.Sprintf("/shared/f%d", k)
					if err := wt.Truncate(p, 0); err != nil {
						errs <- fmt.Errorf("truncate %s: %w", p, err)
						break
					}
					scratch := "/churn/scratch"
					if err := wt.Create(scratch); err != nil {
						errs <- fmt.Errorf("create %s: %w", scratch, err)
						break
					}
					if err := writeFile(wt, scratch, 0xAB, fileSize); err != nil {
						errs <- fmt.Errorf("write %s: %w", scratch, err)
						break
					}
					if err := wt.Unlink(scratch); err != nil {
						errs <- fmt.Errorf("unlink %s: %w", scratch, err)
						break
					}
					refillMu[k].Lock()
					err := writeFile(wt, p, fill(k), fileSize)
					refillMu[k].Unlock()
					if err != nil {
						errs <- fmt.Errorf("refill %s: %w", p, err)
						break
					}
				}
				stop.Store(true)
			}()

			// Churn: create/dirty/unlink private files so freed pages are
			// reallocated quickly and overwritten with a detectable pattern.
			// The churn thread shares the truncator's allocator stripe
			// (cpu%8) — pages the shrink frees land in that stripe's LIFO
			// pool, so the very next churn allocation reuses them.
			wg.Add(1)
			go func() {
				defer wg.Done()
				ct := fs.NewThread(18).(*Thread)
				for i := 0; !stop.Load(); i++ {
					p := fmt.Sprintf("/churn/c%d", i%64)
					if err := ct.Create(p); err != nil {
						errs <- fmt.Errorf("churn create %s: %w", p, err)
						return
					}
					if err := writeFile(ct, p, 0xAB, 2*layout.PageSize); err != nil {
						errs <- fmt.Errorf("churn write %s: %w", p, err)
						return
					}
					if err := ct.Unlink(p); err != nil {
						errs <- fmt.Errorf("churn unlink %s: %w", p, err)
						return
					}
				}
			}()

			wg.Wait()
			stop.Store(true)
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			fs.Domain().Barrier()
		})
	}
}
