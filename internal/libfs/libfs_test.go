package libfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
	"arckfs/internal/verifier"
)

// newFS builds a fresh system with the given bug set. Hooks may be nil.
func newFS(t testing.TB, bugs Bugs, hooks *Hooks) *FS {
	return newFSStrict(t, bugs, hooks, false)
}

// newFSStrict additionally selects the instrumented §4.5 build that
// faults immediately on a recycled entry.
func newFSStrict(t testing.TB, bugs Bugs, hooks *Hooks, strict bool) *FS {
	t.Helper()
	mode := verifier.Enhanced
	if bugs.Has(BugRenameVerify) {
		mode = verifier.Original
	}
	dev := pmem.New(64<<20, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{Mode: mode, InodeCap: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	app := ctrl.RegisterApp(0, 0)
	return New(ctrl, app, Options{Bugs: bugs, Hooks: hooks, StrictUAF: strict})
}

func th(t testing.TB, fs *FS) *Thread {
	return fs.NewThread(0).(*Thread)
}

func TestCreateOpenReadWrite(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	if err := w.Create("/hello.txt"); err != nil {
		t.Fatal(err)
	}
	fd, err := w.Open("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("persistent memory says hi")
	if n, err := w.WriteAt(fd, msg, 0); err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := w.ReadAt(fd, got, 0); err != nil || n != len(msg) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	st, err := w.Stat("/hello.txt")
	if err != nil || st.Size != uint64(len(msg)) || st.Dir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if err := w.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(fd); !errors.Is(err, fsapi.ErrBadFd) {
		t.Fatalf("double close: %v", err)
	}
}

func TestErrnoSemantics(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	if err := w.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := w.Create("/a"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := w.Open("/missing"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if err := w.Unlink("/missing"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("unlink missing: %v", err)
	}
	if err := w.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := w.Unlink("/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := w.Rmdir("/a"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := w.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := w.Rmdir("/d"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := w.Unlink("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := w.Rmdir("/d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if err := w.Create("/a/b"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("create under file: %v", err)
	}
	if err := w.Create("/nosuch/b"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if err := w.Create("/" + string(make([]byte, 300))); !errors.Is(err, fsapi.ErrNameTooLong) && !errors.Is(err, fsapi.ErrInval) {
		t.Fatalf("long name: %v", err)
	}
}

func TestDeepPathsAndReaddir(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	path := ""
	for i := 0; i < 5; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := w.Mkdir(path); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.Create(fmt.Sprintf("%s/f%02d", path, i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := w.Readdir(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 10 || names[0] != "f00" || names[9] != "f09" {
		t.Fatalf("Readdir = %v", names)
	}
	st, err := w.Stat(path)
	if err != nil || !st.Dir {
		t.Fatalf("Stat dir = %+v, %v", st, err)
	}
}

func TestSparseAndLargeFile(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	if err := w.Create("/big"); err != nil {
		t.Fatal(err)
	}
	fd, _ := w.Open("/big")
	// Write at a far offset: the gap reads as zeros.
	far := int64(3*layout.PageSize + 100)
	if _, err := w.WriteAt(fd, []byte("tail"), far); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if n, _ := w.ReadAt(fd, got, far-4); n != 8 {
		t.Fatalf("short read %d", n)
	}
	if !bytes.Equal(got, append([]byte{0, 0, 0, 0}, []byte("tail")...)) {
		t.Fatalf("got %q", got)
	}
	// Cross-page write.
	blob := make([]byte, 3*layout.PageSize)
	for i := range blob {
		blob[i] = byte(i)
	}
	if _, err := w.WriteAt(fd, blob, layout.PageSize/2); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(blob))
	w.ReadAt(fd, back, layout.PageSize/2)
	if !bytes.Equal(back, blob) {
		t.Fatal("cross-page data mismatch")
	}
}

func TestTruncate(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Create("/f")
	fd, _ := w.Open("/f")
	data := make([]byte, 10*layout.PageSize)
	for i := range data {
		data[i] = 0x5a
	}
	w.WriteAt(fd, data, 0)
	if err := w.Truncate("/f", 4*layout.PageSize+17); err != nil {
		t.Fatal(err)
	}
	st, _ := w.Stat("/f")
	if st.Size != 4*layout.PageSize+17 {
		t.Fatalf("size = %d", st.Size)
	}
	// Data before the cut survives; reads beyond return nothing.
	got := make([]byte, 32)
	n, _ := w.ReadAt(fd, got, 4*layout.PageSize)
	if n != 17 {
		t.Fatalf("read %d at tail", n)
	}
	// Growing truncate leaves a hole.
	if err := w.Truncate("/f", 20*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	n, _ = w.ReadAt(fd, got, 19*layout.PageSize)
	if n != 32 || got[0] != 0 {
		t.Fatalf("hole read n=%d b=%d", n, got[0])
	}
}

func TestRenameFileSameDir(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Create("/old")
	fd, _ := w.Open("/old")
	w.WriteAt(fd, []byte("payload"), 0)
	if err := w.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Open("/old"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old survives: %v", err)
	}
	fd2, err := w.Open("/new")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	w.ReadAt(fd2, got, 0)
	if string(got) != "payload" {
		t.Fatalf("data lost: %q", got)
	}
	// Destination exists -> error.
	w.Create("/other")
	if err := w.Rename("/new", "/other"); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("overwrite: %v", err)
	}
}

func TestRenameFileCrossDir(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/src")
	w.Mkdir("/dst")
	w.Create("/src/f")
	if err := w.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Stat("/dst/g"); err != nil {
		t.Fatal(err)
	}
	// The whole tree still verifies at release.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll after file move: %v", err)
	}
}

func TestRenameDirCrossDirPlus(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/a")
	w.Mkdir("/b")
	w.Mkdir("/a/sub")
	w.Create("/a/sub/inner")
	if err := w.Rename("/a/sub", "/b/sub"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Stat("/b/sub/inner"); err != nil {
		t.Fatalf("moved subtree unreachable: %v", err)
	}
	if _, err := w.Stat("/a/sub"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source survives: %v", err)
	}
	// ArckFS+ keeps the kernel consistent: everything releases clean.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll after dir relocation: %v", err)
	}
}

func TestRenameDirIntoOwnDescendantRejected(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/a")
	w.Mkdir("/a/b")
	if err := w.Rename("/a", "/a/b/a"); !errors.Is(err, fsapi.ErrInval) {
		t.Fatalf("descendant rename: %v", err)
	}
}

func TestReleaseAllAndReuse(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/d")
	for i := 0; i < 20; i++ {
		w.Create(fmt.Sprintf("/d/f%d", i))
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	// Reads still serve from retained aux state (§4.3 patch).
	names, err := w.Readdir("/d")
	if err != nil || len(names) != 20 {
		t.Fatalf("Readdir after release: %d, %v", len(names), err)
	}
	if _, err := w.Stat("/d/f3"); err != nil {
		t.Fatalf("Stat after release: %v", err)
	}
	// Writes transparently re-acquire.
	if err := w.Create("/d/after"); err != nil {
		t.Fatalf("Create after release: %v", err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondAppSeesVerifiedState(t *testing.T) {
	dev := pmem.New(64<<20, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{Mode: verifier.Enhanced, InodeCap: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	fs1 := New(ctrl, ctrl.RegisterApp(0, 0), Options{})
	w1 := th(t, fs1)
	w1.Mkdir("/shared")
	w1.Create("/shared/doc")
	fd, _ := w1.Open("/shared/doc")
	w1.WriteAt(fd, []byte("cross-app"), 0)
	if err := fs1.ReleaseAll(); err != nil {
		t.Fatal(err)
	}

	fs2 := New(ctrl, ctrl.RegisterApp(0, 0), Options{})
	w2 := th(t, fs2)
	fd2, err := w2.Open("/shared/doc")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	w2.ReadAt(fd2, got, 0)
	if string(got) != "cross-app" {
		t.Fatalf("app2 read %q", got)
	}
}

func TestConcurrentCreatesDistinctDirs(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	setup := th(t, fs)
	const nt = 4
	for g := 0; g < nt; g++ {
		if err := setup.Mkdir(fmt.Sprintf("/d%d", g)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nt)
	for g := 0; g < nt; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fs.NewThread(g).(*Thread)
			defer w.Detach()
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("/d%d/f%d", g, i)
				if err := w.Create(p); err != nil {
					errs[g] = err
					return
				}
				if i%3 == 0 {
					if err := w.Unlink(p); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll: %v", err)
	}
}

func TestConcurrentSharedDirChurn(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	setup := th(t, fs)
	if err := setup.Mkdir("/shared"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fs.NewThread(g).(*Thread)
			defer w.Detach()
			for i := 0; i < 150; i++ {
				p := fmt.Sprintf("/shared/g%d-%d", g, i%20)
				switch i % 3 {
				case 0:
					if err := w.Create(p); err != nil && !errors.Is(err, fsapi.ErrExist) {
						errs[g] = err
						return
					}
				case 1:
					if _, err := w.Stat(p); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
						errs[g] = err
						return
					}
				case 2:
					if err := w.Unlink(p); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll: %v", err)
	}
}

// TestQuickOracle drives random operation sequences against ArckFS+ and an
// in-memory model, checking observable equivalence, then verifies the
// whole tree releases cleanly.
func TestQuickOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := newFS(t, BugsNone, nil)
		w := th(t, fs)
		type mfile struct{ data []byte }
		dirs := map[string]bool{"/": true}
		files := map[string]*mfile{}
		paths := []string{"/"}
		randDir := func() string { return paths[rng.Intn(len(paths))] }
		join := func(d, n string) string {
			if d == "/" {
				return "/" + n
			}
			return d + "/" + n
		}
		for i := 0; i < 120; i++ {
			switch rng.Intn(6) {
			case 0: // mkdir
				p := join(randDir(), fmt.Sprintf("d%d", i))
				err := w.Mkdir(p)
				if dirs[p] || files[p] != nil {
					if !errors.Is(err, fsapi.ErrExist) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					dirs[p] = true
					paths = append(paths, p)
				}
			case 1: // create
				p := join(randDir(), fmt.Sprintf("f%d", rng.Intn(30)))
				err := w.Create(p)
				if dirs[p] || files[p] != nil {
					if !errors.Is(err, fsapi.ErrExist) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					files[p] = &mfile{}
				}
			case 2: // write
				var names []string
				for p := range files {
					names = append(names, p)
				}
				if len(names) == 0 {
					continue
				}
				p := names[rng.Intn(len(names))]
				fd, err := w.Open(p)
				if err != nil {
					return false
				}
				off := rng.Intn(3 * layout.PageSize)
				blob := make([]byte, rng.Intn(2*layout.PageSize)+1)
				rng.Read(blob)
				if _, err := w.WriteAt(fd, blob, int64(off)); err != nil {
					return false
				}
				mf := files[p]
				if need := off + len(blob); need > len(mf.data) {
					mf.data = append(mf.data, make([]byte, need-len(mf.data))...)
				}
				copy(mf.data[off:], blob)
				w.Close(fd)
			case 3: // read + compare
				for p, mf := range files {
					fd, err := w.Open(p)
					if err != nil {
						return false
					}
					got := make([]byte, len(mf.data))
					n, err := w.ReadAt(fd, got, 0)
					if err != nil || n != len(mf.data) || !bytes.Equal(got, mf.data) {
						return false
					}
					w.Close(fd)
					break
				}
			case 4: // unlink
				for p := range files {
					if rng.Intn(2) == 0 {
						continue
					}
					if err := w.Unlink(p); err != nil {
						return false
					}
					delete(files, p)
					break
				}
			case 5: // stat
				for p, mf := range files {
					st, err := w.Stat(p)
					if err != nil || st.Size != uint64(len(mf.data)) {
						return false
					}
					break
				}
			}
		}
		return fs.ReleaseAll() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
