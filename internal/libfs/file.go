package libfs

import (
	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// Open returns a descriptor for an existing file or directory.
func (t *Thread) Open(path string) (fd fsapi.FD, err error) {
	defer t.endOp(t.beginOp(fsapi.OpOpen), &err)
	mi, err := t.resolve(path)
	if err != nil {
		return -1, err
	}
	return t.newFD(mi), nil
}

// ReadAt copies file data at off into p, transparently re-acquiring if a
// trust-group peer took the inode.
func (t *Thread) ReadAt(fd fsapi.FD, p []byte, off int64) (n int, err error) {
	defer t.endOp(t.beginOp(fsapi.OpRead), &err)
	mi, err := t.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	n, err = t.readAt(mi, p, off)
	if err == fsapi.ErrBusError {
		if rerr := t.fs.remap(t, mi); rerr == nil {
			return t.readAt(mi, p, off)
		}
	}
	return n, err
}

// readAt dispatches to the configured data-plane read discipline. The
// reacquire of a released inode happens before either path so the
// lock-free variant never crosses into the kernel inside its RCU
// critical section.
func (t *Thread) readAt(mi *minode, p []byte, off int64) (int, error) {
	if mi.typ != layout.TypeFile {
		return 0, fsapi.ErrIsDir
	}
	if mi.released.Load() {
		if err := t.fs.reacquire(t, mi); err != nil {
			return 0, err
		}
	}
	if t.fs.opts.SerialData {
		return t.readAtLocked(mi, p, off)
	}
	return t.readAtLockFree(mi, p, off)
}

// readAtLocked is the serialized baseline: the per-inode reader-writer
// lock excludes concurrent writers for the whole copy.
func (t *Thread) readAtLocked(mi *minode, p []byte, off int64) (int, error) {
	mi.lock.RLock()
	defer mi.lock.RUnlock()
	return t.readAtCommon(mi, p, off)
}

// readAtLockFree walks the published block index inside an RCU read-side
// critical section, taking no lock at all. Bytes that overlap a
// concurrent write to the same region are unspecified (the serialized
// discipline's whole-read atomicity is not preserved); the index walk
// itself is always safe because writers publish entries before the size
// that makes them reachable.
func (t *Thread) readAtLockFree(mi *minode, p []byte, off int64) (int, error) {
	t.rd.ReadLock()
	defer t.rd.ReadUnlock()
	return t.readAtCommon(mi, p, off)
}

func (t *Thread) readAtCommon(mi *minode, p []byte, off int64) (int, error) {
	if err := t.fs.checkMapped(mi); err != nil {
		return 0, err
	}
	st := mi.file.Load()
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	size := st.size.Load()
	if uint64(off) >= size {
		return 0, nil
	}
	n := len(p)
	if uint64(off)+uint64(n) > size {
		n = int(size - uint64(off))
	}
	if n >= DelegationThreshold {
		t.fs.delegatedCopyOut(st, off, p[:n])
	} else {
		t.fs.copyOutRange(st, off, p[:n])
	}
	return n, nil
}

// WriteAt stores p at off, growing the file as needed. Data and metadata
// persist synchronously: data pages are fenced before the block map and
// size, so a crash never exposes garbage through a valid pointer.
//
// If the kernel moved the inode to a trust-group peer since the last
// operation, the patched LibFS transparently re-acquires and retries
// once; ArckFS crashes (§4.3).
func (t *Thread) WriteAt(fd fsapi.FD, p []byte, off int64) (n int, err error) {
	defer t.endOp(t.beginOp(fsapi.OpWrite), &err)
	mi, err := t.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	n, err = t.fs.writeAt(t, mi, p, off)
	if err == fsapi.ErrBusError {
		if rerr := t.fs.remap(t, mi); rerr == nil {
			return t.fs.writeAt(t, mi, p, off)
		}
	}
	return n, err
}

func (fs *FS) writeAt(t *Thread, mi *minode, p []byte, off int64) (int, error) {
	if mi.typ != layout.TypeFile {
		return 0, fsapi.ErrIsDir
	}
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	if mi.released.Load() {
		if err := fs.reacquire(t, mi); err != nil {
			return 0, err
		}
	}
	mi.lock.Lock()
	defer mi.lock.Unlock()
	if err := fs.checkMapped(mi); err != nil {
		return 0, err
	}
	st := mi.file.Load()

	end := uint64(off) + uint64(len(p))
	needBlocks := layout.BlocksForSize(end)

	// Pass 1: allocate every missing block the write touches, zeroing
	// blocks the write covers only partially. The zeroes are streamed so
	// they are durable at the data barrier (the old code never flushed
	// them, so a crash could expose garbage through a fenced pointer).
	var dirtyMap []int
	st.ensureBlocks(needBlocks)
	arr := st.blockArr()
	curSize := st.size.Load()
	firstBlock := int(off / layout.PageSize)
	lastBlock := int((end - 1) / layout.PageSize)
	for bi := firstBlock; bi <= lastBlock; bi++ {
		if arr[bi].Load() != 0 {
			continue
		}
		b, err := fs.allocPage(t, t.cpu)
		if err != nil {
			return 0, err
		}
		fullyCovered := int64(bi)*layout.PageSize >= off &&
			uint64(bi+1)*layout.PageSize <= end
		// Zero the fresh page before publishing its pointer when (a) the
		// write covers it only partially — the gap bytes must be durable
		// zeroes at the data barrier — or (b) the block sits below the
		// published size (a hole being filled): that pointer is reachable
		// the instant it is stored, before pass 2 copies the data, and a
		// lock-free reader must find zeroes there, never the recycled
		// page's previous contents. Blocks at or beyond curSize stay
		// unzeroed when fully covered — the publish-size-last ordering
		// keeps them invisible until the copy lands.
		if !fullyCovered || uint64(bi)*layout.PageSize < curSize {
			t.pb.ZeroStream(int64(b*layout.PageSize), layout.PageSize)
		}
		arr[bi].Store(b)
		dirtyMap = append(dirtyMap, bi)
	}

	// Pass 2: copy and flush the data — delegated across the worker pool
	// for large requests (§5.2's I/O delegation), inline otherwise.
	if len(p) >= DelegationThreshold {
		fs.delegatedCopyIn(st, off, p)
	} else {
		fs.copyInRange(t.pb, st, off, p)
	}
	written := len(p)
	// Order: data before metadata. When the write installs no new block
	// pointer and grows no size — an in-place overwrite — a reordered
	// inode update can expose nothing but a stale mtime, so the batched
	// mode merges data and inode into one ordering epoch (one fence per
	// op instead of two). Eager mode keeps the unconditional fence of the
	// pre-batching schedule.
	if len(dirtyMap) > 0 || end > st.size.Load() || t.pb.Eager() {
		t.pb.Barrier()
	}

	// Extend the map chain to cover needBlocks entries.
	if err := fs.ensureMapCapacity(t, mi, needBlocks); err != nil {
		t.pb.Drain()
		return written, err
	}
	for _, bi := range dirtyMap {
		page := st.mapPages[bi/layout.MapEntriesPerPage]
		layout.SetMapEntry(fs.dev, page, bi%layout.MapEntriesPerPage, arr[bi].Load())
		// Adjacent 8-byte entries coalesce into single-line flushes in
		// the batch.
		t.pb.Flush(int64(page*layout.PageSize)+int64(bi%layout.MapEntriesPerPage)*8, 8)
	}
	// Publish the size last: a lock-free reader that observes it also
	// observes every block pointer stored above.
	if end > st.size.Load() {
		st.size.Store(end)
	}
	fs.persistFileInode(t.pb, mi)
	t.pb.Barrier()
	mi.cacheAttrs(st.size.Load(), 1, fs.clock.Load())
	return written, nil
}

// ensureMapCapacity grows the file's map chain to hold n entries. New map
// pages are stream-zeroed and fenced before being linked, as the old code
// did with a full-page flush loop.
func (fs *FS) ensureMapCapacity(t *Thread, mi *minode, n int) error {
	st := mi.file.Load()
	needPages := (n + layout.MapEntriesPerPage - 1) / layout.MapEntriesPerPage
	for len(st.mapPages) < needPages {
		p, err := fs.allocPage(t, t.cpu)
		if err != nil {
			return err
		}
		t.pb.ZeroStream(int64(p*layout.PageSize), layout.PageSize)
		t.pb.Barrier()
		if len(st.mapPages) > 0 {
			last := st.mapPages[len(st.mapPages)-1]
			layout.SetNextPage(fs.dev, last, p)
			fs.dev.Persist(int64(last*layout.PageSize)+layout.NextPtrOff, 8)
		}
		st.mapPages = append(st.mapPages, p)
	}
	return nil
}

// persistFileInode streams mi's rewritten inode record (size, mtime, root
// pointer) into the batch. The caller issues the Barrier.
func (fs *FS) persistFileInode(b *pmem.Batch, mi *minode) {
	st := mi.file.Load()
	var root uint64
	if len(st.mapPages) > 0 {
		root = st.mapPages[0]
	}
	in := layout.Inode{
		Type: layout.TypeFile, Perm: layout.PermRead | layout.PermWrite,
		Nlink: 1, Size: st.size.Load(), DataRoot: root, Parent: mi.parent.Load(),
		MTime: fs.now(),
	}
	rec := layout.EncodeInode(&in)
	b.WriteStream(layout.InodeOff(fs.geo, mi.ino), rec[:])
}

// Truncate sets path's size. Shrinking frees whole blocks beyond the new
// size; growing leaves a hole.
func (t *Thread) Truncate(path string, size uint64) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpTruncate), &err)
	fs := t.fs
	mi, err := t.resolve(path)
	if err != nil {
		return err
	}
	if mi.typ != layout.TypeFile {
		return fsapi.ErrIsDir
	}
	if mi.released.Load() {
		if err := fs.reacquire(t, mi); err != nil {
			return err
		}
	}
	mi.lock.Lock()
	defer mi.lock.Unlock()
	if err := fs.checkMapped(mi); err != nil {
		return err
	}
	st := mi.file.Load()
	if size >= st.size.Load() {
		st.size.Store(size)
		if err := fs.ensureMapCapacity(t, mi, layout.BlocksForSize(size)); err != nil {
			return err
		}
		fs.persistFileInode(t.pb, mi)
		t.pb.Barrier()
		mi.cacheAttrs(st.size.Load(), 1, fs.clock.Load())
		return nil
	}
	keep := layout.BlocksForSize(size)
	// Shrink the readable range before unpublishing the block pointers,
	// so a concurrent lock-free reader never chases a freed page.
	st.size.Store(size)
	arr := st.blockArr()
	var freed []uint64
	for bi := keep; bi < st.nblocks; bi++ {
		if b := arr[bi].Load(); b != 0 {
			freed = append(freed, b)
			page := st.mapPages[bi/layout.MapEntriesPerPage]
			layout.SetMapEntry(fs.dev, page, bi%layout.MapEntriesPerPage, 0)
			// Eight adjacent cleared entries share a line; the batch
			// dedupes them to one write-back.
			t.pb.Flush(int64(page*layout.PageSize)+int64(bi%layout.MapEntriesPerPage)*8, 8)
			arr[bi].Store(0)
		}
	}
	st.nblocks = keep
	fs.persistFileInode(t.pb, mi)
	t.pb.Barrier()
	if mi.fresh.Load() {
		// A lock-free reader that loaded the old size before the store
		// above can still chase the unpublished block pointers, so the
		// pages must wait out a grace period before they are reusable.
		fs.retirePages(t, freed)
	}
	mi.cacheAttrs(size, 1, fs.clock.Load())
	return nil
}

// Fsync is a no-op: every ArckFS operation persists synchronously, so
// "fsync() returns immediately" (§2.2).
func (t *Thread) Fsync(fd fsapi.FD) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpFsync), &err)
	_, err = t.lookupFD(fd)
	return err
}
