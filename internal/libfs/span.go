package libfs

import (
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// This file is the LibFS half of the arcktrace span pipeline. A span opens
// at the fsapi entry point (beginOp), collects child events from every
// layer the operation touches — persist-batch flushes and fences via
// Thread.SpanEvent, kernel crossings via crossStart/crossEnd, shard-lock
// waits via the sink handed to the kernel's *Observed variants, lease
// hits and misses at the fast paths that avoid a crossing — and closes at
// endOp into the tracer's per-thread ring. Everything here is nil-safe
// and sampling-aware: with no tracer attached, or on an unsampled
// operation, the extra cost is a nil check per hook.

// SetObservability attaches the span tracer and the application's row of
// the per-app counter dimension (core.NewApp wires both). Either may be
// nil: a nil tracer disables span collection, a nil row disables per-app
// attribution, and neither affects correctness.
func (fs *FS) SetObservability(tr *span.Tracer, row *telemetry.AppRow) {
	fs.tracer = tr
	fs.appRow = row
}

// Tracer returns the attached span tracer, or nil.
func (fs *FS) Tracer() *span.Tracer { return fs.tracer }

// SetAppStats attaches the system-wide attribution snapshot: the LibFS
// only owns its own row, so the owning system hands it a view of the
// whole dimension for tooling (harness.AppSource) that reaches the
// system through an fsapi.FS value.
func (fs *FS) SetAppStats(fn func() []telemetry.AppStat) { fs.appStats = fn }

// AppStats returns the per-application attribution snapshot of the
// system this LibFS belongs to, or nil when not attached.
func (fs *FS) AppStats() []telemetry.AppStat {
	if fs.appStats == nil {
		return nil
	}
	return fs.appStats()
}

// SpanEvent implements telemetry.SpanSink: the thread is its own persist
// batch's sink, so pmem.Batch reports flushes, streaming stores, and
// fences here without importing the span package. Per-app persist
// counters accumulate on every operation; the event reaches a span only
// while a sampled operation has one open.
func (t *Thread) SpanEvent(kind uint8, a, b int64) {
	if r := t.fs.appRow; r != nil {
		switch kind {
		case telemetry.SpanEvFlush:
			r.Add(telemetry.AppFlushes, b) // b = cache lines queued
		case telemetry.SpanEvFence:
			r.Add(telemetry.AppFences, 1)
		case telemetry.SpanEvNTStore:
			r.Add(telemetry.AppNTStores, 1)
		}
	}
	t.sp.Event(kind, a, b)
}

// beginOp opens a causal span for one fsapi operation and counts it in
// the per-app dimension. It returns nil — and the operation runs
// untraced — when tracing is disabled, the operation lost the sampling
// draw, or a span is already open (a nested entry point records into its
// parent instead of starting over).
func (t *Thread) beginOp(op fsapi.Op) *span.Span {
	t.fs.appRow.Add(telemetry.AppOps, 1)
	if t.sp != nil || t.tl == nil {
		return nil
	}
	sp := t.tl.Begin(op, int64(t.fs.app))
	t.sp = sp
	return sp
}

// endOp closes the span beginOp opened. It is designed to be deferred in
// one line with a pointer to the named return error:
//
//	func (t *Thread) Create(path string) (err error) {
//		defer t.endOp(t.beginOp(fsapi.OpCreate), &err)
//
// Per-app operation latency is recorded from sampled spans only, so its
// histogram costs nothing on the unsampled path.
func (t *Thread) endOp(sp *span.Span, err *error) {
	if sp == nil {
		return
	}
	t.sp = nil
	t.tl.End(sp, *err)
	t.fs.appRow.RecordLatency(sp.DurNS)
}

// sink returns the thread as a span sink only while a sampled span is
// open, and a true nil interface otherwise — kernel code checks
// `sink != nil`, so handing it a typed nil would defeat the check.
// Safe on a nil thread (paths with no thread pass the nil sink through).
func (t *Thread) sink() telemetry.SpanSink {
	if t == nil || t.sp == nil {
		return nil
	}
	return t
}

// crossStart begins timing a kernel crossing; it returns the zero time —
// and crossEnd stays silent — unless a sampled span is open, so the
// unsampled path never reads the clock.
func (t *Thread) crossStart() time.Time {
	if t == nil || t.sp == nil {
		return time.Time{}
	}
	return time.Now()
}

// crossEnd attaches a timed kernel-crossing event (kind tells which
// syscall) to the open span.
func (t *Thread) crossEnd(kind telemetry.EventKind, begin time.Time) {
	if t == nil || t.sp == nil || begin.IsZero() {
		return
	}
	t.sp.Event(telemetry.SpanEvCrossing, int64(kind), time.Since(begin).Nanoseconds())
}

// CurrentSpan returns the span of the operation in flight on this
// thread, or nil when none is open (tracing off, sampling skipped the
// op, or the thread is idle). Diagnostic consumers — the crashmc flight
// recorder observing mid-operation — use it to include the interrupted
// operation's history, which the rings do not hold yet. Must be called
// from the thread's own goroutine (or a hook it runs synchronously).
func (t *Thread) CurrentSpan() *span.Span { return t.sp }

// spanEv attaches a raw event to the open span, if any. Safe on a nil
// thread.
func (t *Thread) spanEv(kind uint8, a, b int64) {
	if t == nil {
		return
	}
	t.sp.Event(kind, a, b)
}
