package libfs

import (
	"errors"
	"fmt"
	"testing"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

func TestCreateBatchBasic(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	if err := w.Mkdir("/bulk"); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("item%03d", i)
	}
	n, err := w.CreateBatch("/bulk", names)
	if err != nil || n != 50 {
		t.Fatalf("CreateBatch = %d, %v", n, err)
	}
	got, err := w.Readdir("/bulk")
	if err != nil || len(got) != 50 {
		t.Fatalf("Readdir = %d, %v", len(got), err)
	}
	// The batch result is ordinary verifiable state.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll after batch: %v", err)
	}
	// And the files behave like any others.
	fd, err := w.Open("/bulk/item007")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(fd, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestCreateBatchDuplicateStopsCleanly(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/bulk")
	w.Create("/bulk/taken")
	n, err := w.CreateBatch("/bulk", []string{"a", "b", "taken", "c"})
	if !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("err = %v", err)
	}
	if n != 2 {
		t.Fatalf("created %d before the clash, want 2", n)
	}
	if _, err := w.Stat("/bulk/a"); err != nil {
		t.Fatal("prefix of batch lost")
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll: %v", err)
	}
}

// TestCreateBatchFenceAmortization verifies the customization's point:
// the batch issues ~2 fences while N singles issue ~2N.
func TestCreateBatchFenceAmortization(t *testing.T) {
	const n = 64
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%03d", i)
	}

	countFences := func(batch bool) int64 {
		dev := pmem.New(64<<20, nil)
		ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{})
		w := fs.NewThread(0).(*Thread)
		if err := w.Mkdir("/d"); err != nil {
			t.Fatal(err)
		}
		before := dev.Stats.Fences.Load()
		if batch {
			if _, err := w.CreateBatch("/d", names); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, name := range names {
				if err := w.Create("/d/" + name); err != nil {
					t.Fatal(err)
				}
			}
		}
		return dev.Stats.Fences.Load() - before
	}

	single := countFences(false)
	batched := countFences(true)
	if single < 2*n {
		t.Fatalf("singles fenced %d times, expected >= %d", single, 2*n)
	}
	if batched > single/8 {
		t.Fatalf("batch fenced %d times vs %d for singles: no amortization", batched, single)
	}
}

// TestCreateBatchCrashEntriesAtomic: any crash during the batch leaves
// each entry either fully present or absent — never torn.
func TestCreateBatchCrashEntriesAtomic(t *testing.T) {
	dev := pmem.New(64<<20, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{})
	w := fs.NewThread(0).(*Thread)
	if err := w.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	dev.EnableTracking()
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("batch-entry-with-longish-name-%02d", i)
	}
	if _, err := w.CreateBatch("/d", names); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		img := dev.CrashImage(pmem.CrashRandom(seed))
		rdev := pmem.Restore(img, nil)
		if _, rep, err := kernel.Mount(rdev, kernel.Options{}, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		} else if rep.CorruptDentries != 0 {
			t.Fatalf("seed %d: torn batch entry: %s", seed, rep)
		}
	}
}
