package libfs

import (
	"sort"

	"arckfs/internal/fsapi"
	"arckfs/internal/htable"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// resolve walks path to its minode.
func (t *Thread) resolve(path string) (*minode, error) {
	comps := fsapi.Components(path)
	mi, err := t.fs.getMinode(t, layout.RootIno, false)
	if err != nil {
		return nil, err
	}
	for depth, name := range comps {
		if depth > 512 {
			return nil, fsapi.ErrLoop
		}
		if mi.typ != layout.TypeDir {
			return nil, fsapi.ErrNotDir
		}
		ino, _, ok, err := t.fs.lookupInDir(t, mi, name)
		if err != nil {
			return nil, err
		}
		if !ok && mi.released.Load() {
			// The cached aux state of a released directory can be stale
			// (a peer may have modified the directory since): revalidate
			// a miss by re-acquiring once. Hits stay cache-served — the
			// §4.3 patch's fast path.
			if err := t.fs.reacquire(t, mi); err == nil {
				ino, _, ok, err = t.fs.lookupInDir(t, mi, name)
				if err != nil {
					return nil, err
				}
			}
		}
		if !ok {
			return nil, fsapi.ErrNotExist
		}
		mi, err = t.fs.getMinode(t, ino, false)
		if err != nil {
			return nil, err
		}
	}
	return mi, nil
}

// resolveParent walks to path's parent directory and returns it with the
// final component. write re-acquires a released parent for mutation.
func (t *Thread) resolveParent(path string, write bool) (*minode, string, error) {
	dir, name := fsapi.SplitPath(path)
	if name == "" {
		return nil, "", fsapi.ErrInval
	}
	if len(name) > layout.MaxName {
		return nil, "", fsapi.ErrNameTooLong
	}
	if !layout.ValidName(name) {
		return nil, "", fsapi.ErrInval
	}
	mi, err := t.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if mi.typ != layout.TypeDir {
		return nil, "", fsapi.ErrNotDir
	}
	if write {
		if mi.released.Load() {
			if err := t.fs.reacquire(t, mi); err != nil {
				return nil, "", err
			}
		} else if mi.mapping != nil && !mi.mapping.Valid() {
			// A trust-group peer (or an involuntary release) took the
			// inode; the patched LibFS re-acquires, ArckFS crashes.
			if err := t.fs.remap(t, mi); err != nil {
				return nil, "", err
			}
		}
	}
	return mi, name, nil
}

// persistDentryBody is step 1 of the atomic-commit protocol: queue a
// flush for every cache line of the record except the one holding the
// commit marker (that line is persisted exactly once, by step 2 — the
// artifact's flush-count optimization that footnote 3 describes). The
// queued lines are written back at the caller's next Barrier.
func (fs *FS) persistDentryBody(b *pmem.Batch, r layout.DentryRef, nameLen int) {
	start := r.DevOff()
	end := start + int64(layout.DentryRecLen(nameLen))
	markerLine := r.MarkerOff() / pmem.LineSize * pmem.LineSize
	for line := start / pmem.LineSize * pmem.LineSize; line < end; line += pmem.LineSize {
		if line != markerLine {
			b.Flush(line, pmem.LineSize)
		}
	}
}

// appendDentry appends a committed dentry for (childIno, name) to one of
// mi's log tails, honoring the §4.2 and §4.3 settings. The §4.2 patch is
// the single Barrier between the body epoch and the marker update: the
// new child's inode record (streamed by the caller before this call) and
// the dentry body all become durable before the commit marker can
// possibly persist. The marker line is queued only after that Barrier —
// it must never merge into the body epoch.
func (fs *FS) appendDentry(t *Thread, mi *minode, childIno uint64, name string) (layout.DentryRef, error) {
	ds := mi.dir
	ti := t.cpu % len(ds.tails)
	tc := &ds.tails[ti]
	tc.mu.Lock()
	defer tc.mu.Unlock()

	if err := fs.checkMapped(mi); err != nil {
		return 0, err
	}
	if h := fs.opts.Hooks.DirWriteInProgress; h != nil {
		h() // §4.3 window: the mapping may be torn down while we sit here
	}

	if err := fs.ensureTailSpace(t, ds, ti, tc, len(name)); err != nil {
		return 0, err
	}

	if err := fs.checkMapped(mi); err != nil {
		return 0, err
	}
	r := layout.MakeDentryRef(tc.page, tc.off)
	// Step 1: persist the body with the marker still zero.
	layout.WriteDentryBody(fs.dev, r, childIno, name)
	fs.persistDentryBody(t.pb, r, len(name))
	if !fs.opts.Bugs.Has(BugMissingFence) {
		// The §4.2 patch: end the body epoch — the dentry body (and the
		// streamed inode record) are durable before the commit marker can
		// possibly persist.
		t.pb.Barrier()
	}
	// Step 2: set and persist the commit marker. Its line enters the
	// queue only here, after the body-epoch Barrier.
	//arcklint:allow persistorder the Barrier is skipped only when BugMissingFence deliberately reproduces the §4.2 bug; the patched path barriers above
	layout.CommitDentry(fs.dev, r, len(name))
	t.pb.Flush(r.MarkerOff(), 2)
	if h := fs.opts.Hooks.CreateBeforeMarkerFence; h != nil {
		h() // §4.2 crash window: marker flush queued, final fence not yet issued
	}
	pmem.Killpoint("libfs.create.marker")
	t.pb.Barrier()

	tc.off += layout.DentryRecLen(len(name))
	return r, nil
}

// ensureTailSpace points the tail cursor at a slot that fits a record
// for a name of nameLen bytes, allocating and linking log pages as
// needed. Caller holds the tail lock.
func (fs *FS) ensureTailSpace(t *Thread, ds *dirState, ti int, tc *tailCursor, nameLen int) error {
	if tc.page == 0 {
		p, err := fs.newLogPage(t)
		if err != nil {
			return err
		}
		ds.idxMu.Lock()
		layout.SetTailHead(fs.dev, ds.tailset, ti, p)
		fs.dev.Persist(int64(ds.tailset*layout.PageSize)+8+int64(ti)*8, 8)
		ds.idxMu.Unlock()
		tc.page, tc.off = p, 0
	}
	if !layout.DentryFits(tc.off, nameLen) {
		p, err := fs.newLogPage(t)
		if err != nil {
			return err
		}
		ds.idxMu.Lock()
		layout.SetNextPage(fs.dev, tc.page, p)
		fs.dev.Persist(int64(tc.page*layout.PageSize)+layout.NextPtrOff, 8)
		ds.idxMu.Unlock()
		tc.page, tc.off = p, 0
	}
	return nil
}

// newLogPage allocates and zeroes a log page so scans terminate at its
// frontier. The zeroes are streamed (no per-line write-backs) and fenced
// before the caller links the page.
func (fs *FS) newLogPage(t *Thread) (uint64, error) {
	p, err := fs.allocPage(t, t.cpu)
	if err != nil {
		return 0, err
	}
	t.pb.ZeroStream(int64(p*layout.PageSize), layout.PageSize)
	t.pb.Barrier()
	return p, nil
}

// insertEntry links (childIno, name) into mi, placing the persistent
// update inside (patched, §4.4) or outside (buggy) the bucket critical
// section. It returns the new record's ref.
func (fs *FS) insertEntry(t *Thread, mi *minode, childIno uint64, name string) (layout.DentryRef, error) {
	if fs.opts.Bugs.Has(BugAuxCoreRace) {
		// ArckFS as shipped: reserve log space, publish the name in
		// auxiliary state, and only then write the core record — with no
		// common critical section. In the window after the insert, the
		// name is visible while its core data does not exist yet.
		r, err := fs.reserveDentry(t, mi, len(name))
		if err != nil {
			return 0, err
		}
		if !mi.dir.ht.Insert(name, childIno, uint64(r)) {
			// Name exists; the reserved record stays a dead slot.
			return 0, fsapi.ErrExist
		}
		if h := fs.opts.Hooks.CreateBetweenAuxAndCore; h != nil {
			h()
		}
		if err := fs.fillDentry(t, mi, r, childIno, name); err != nil {
			mi.dir.ht.Delete(name)
			return 0, err
		}
		return r, nil
	}
	// ArckFS+: the bucket lock covers both updates.
	var r layout.DentryRef
	var err error
	mi.dir.ht.WithBucket(name, func(lb *htable.LockedBucket) {
		if _, exists := lb.Get(name); exists {
			err = fsapi.ErrExist
			return
		}
		r, err = fs.appendDentry(t, mi, childIno, name)
		if err != nil {
			return
		}
		lb.Insert(name, childIno, uint64(r))
	})
	return r, err
}

// reserveDentry claims log space for a record (tail lock only): it
// persists the record length so scans skip the slot until it is filled.
func (fs *FS) reserveDentry(t *Thread, mi *minode, nameLen int) (layout.DentryRef, error) {
	ds := mi.dir
	ti := t.cpu % len(ds.tails)
	tc := &ds.tails[ti]
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := fs.checkMapped(mi); err != nil {
		return 0, err
	}
	if err := fs.ensureTailSpace(t, ds, ti, tc, nameLen); err != nil {
		return 0, err
	}
	r := layout.MakeDentryRef(tc.page, tc.off)
	//arcklint:allow flushcheck the write-back is skipped only when BugReserveLenUnflushed deliberately reproduces the PR 3 reservation-persistence hole for crashmc; the fixed path queues it below
	fs.dev.Store16(r.DevOff()+8, uint16(layout.DentryRecLen(nameLen)))
	if !fs.opts.Bugs.Has(BugReserveLenUnflushed) {
		// Queue the write-back here, not just in fillDentry: if the
		// auxiliary insert fails the slot stays reserved-but-dead, and an
		// unflushed record length would read back as 0 after a crash —
		// terminating log scans early and hiding every later entry in the
		// page. The batch dedups the line when fillDentry re-queues it, so
		// the happy path costs no extra flush.
		t.pb.Flush(r.DevOff()+8, 2)
	}
	tc.off += layout.DentryRecLen(nameLen)
	return r, nil
}

// fillDentry writes a reserved record's contents and commits it with the
// two-step marker protocol (§4.2 ordering per the bug flag).
func (fs *FS) fillDentry(t *Thread, mi *minode, r layout.DentryRef, childIno uint64, name string) error {
	if err := fs.checkMapped(mi); err != nil {
		return err
	}
	if h := fs.opts.Hooks.DirWriteInProgress; h != nil {
		h()
	}
	layout.WriteDentryBody(fs.dev, r, childIno, name)
	fs.persistDentryBody(t.pb, r, len(name))
	if !fs.opts.Bugs.Has(BugMissingFence) {
		t.pb.Barrier()
	}
	//arcklint:allow persistorder the Barrier is skipped only when BugMissingFence deliberately reproduces the §4.2 bug; the patched path barriers above
	layout.CommitDentry(fs.dev, r, len(name))
	t.pb.Flush(r.MarkerOff(), 2)
	if h := fs.opts.Hooks.CreateBeforeMarkerFence; h != nil {
		h()
	}
	pmem.Killpoint("libfs.create.marker")
	t.pb.Barrier()
	return nil
}

// removeEntry unlinks name from mi and invalidates its persistent
// record, honoring the §4.4 critical-section setting. It returns the
// removed child's ino.
func (fs *FS) removeEntry(mi *minode, name string) (uint64, error) {
	if err := fs.checkMapped(mi); err != nil {
		return 0, err
	}
	if fs.opts.Bugs.Has(BugAuxCoreRace) {
		ino, ref, ok := mi.dir.ht.Delete(name)
		if !ok {
			return 0, fsapi.ErrNotExist
		}
		if err := fs.checkMapped(mi); err != nil {
			return 0, err
		}
		r := layout.DentryRef(ref)
		if ref == 0 || fs.dev.Load16(r.MarkerOff()) == 0 {
			// The name was visible in auxiliary state but its core
			// record does not exist yet (a creat is mid-flight):
			// dereferencing it segfaults in the artifact.
			return 0, fsapi.ErrSegfault
		}
		layout.InvalidateDentry(fs.dev, r)
		fs.dev.Persist(r.MarkerOff(), 2)
		return ino, nil
	}
	var ino uint64
	var err error
	mi.dir.ht.WithBucket(name, func(lb *htable.LockedBucket) {
		e, ok := lb.Get(name)
		if !ok {
			err = fsapi.ErrNotExist
			return
		}
		if err = fs.checkMapped(mi); err != nil {
			return
		}
		layout.InvalidateDentry(fs.dev, layout.DentryRef(e.Ref))
		fs.dev.Persist(layout.DentryRef(e.Ref).MarkerOff(), 2)
		ino, _, _ = lb.Delete(name)
	})
	return ino, err
}

// Create makes an empty regular file.
func (t *Thread) Create(path string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpCreate), &err)
	fs := t.fs
	dir, name, err := t.resolveParent(path, true)
	if err != nil {
		return err
	}
	ino, err := fs.allocIno(t)
	if err != nil {
		return err
	}
	in := layout.Inode{
		Type: layout.TypeFile, Perm: layout.PermRead | layout.PermWrite,
		Nlink: 1, Parent: dir.ino, MTime: fs.now(),
	}
	// Stream the whole inode record: its durability joins the dentry body
	// under the §4.2 body-epoch Barrier (step 1 of the protocol covers
	// "dentry and inode") without per-line write-backs.
	rec := layout.EncodeInode(&in)
	t.pb.WriteStream(layout.InodeOff(fs.geo, ino), rec[:])
	if _, err := fs.insertEntry(t, dir, ino, name); err != nil {
		fs.recycleIno(ino)
		return err
	}
	mi := &minode{ino: ino, typ: layout.TypeFile}
	mi.file.Store(&fileState{})
	mi.parent.Store(dir.ino)
	mi.fresh.Store(true)
	mi.cacheAttrs(0, 1, in.MTime)
	fs.mtab.Store(ino, mi)
	dir.cacheAttrs(uint64(dir.dir.ht.Len()), 2, in.MTime)
	return nil
}

// Mkdir makes an empty directory.
func (t *Thread) Mkdir(path string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpMkdir), &err)
	fs := t.fs
	dir, name, err := t.resolveParent(path, true)
	if err != nil {
		return err
	}
	ino, err := fs.allocIno(t)
	if err != nil {
		return err
	}
	tailset, err := fs.allocPage(t, t.cpu)
	if err != nil {
		fs.recycleIno(ino)
		return err
	}
	ntails := len(fs.rootTails())
	// Stream-zero the tail-set page, patch in the tail count, and fence —
	// the same ordering point as the unbatched code (the page must be
	// durable before any dentry can commit into it), at one line flush
	// instead of a whole page of them.
	t.pb.ZeroStream(int64(tailset*layout.PageSize), layout.PageSize)
	layout.SetTailCount(fs.dev, tailset, ntails)
	t.pb.Flush(int64(tailset*layout.PageSize), 2)
	t.pb.Barrier()
	in := layout.Inode{
		Type: layout.TypeDir, Perm: layout.PermRead | layout.PermWrite,
		Nlink: 2, Parent: dir.ino, DataRoot: tailset, NTails: uint16(ntails),
		MTime: fs.now(),
	}
	rec := layout.EncodeInode(&in)
	t.pb.WriteStream(layout.InodeOff(fs.geo, ino), rec[:])
	if _, err := fs.insertEntry(t, dir, ino, name); err != nil {
		fs.recycleIno(ino)
		fs.recyclePages(t.cpu, []uint64{tailset})
		return err
	}
	mi := &minode{ino: ino, typ: layout.TypeDir, dir: &dirState{
		ht:      fs.newDirTable(),
		tailset: tailset,
		tails:   make([]tailCursor, ntails),
	}}
	mi.parent.Store(dir.ino)
	mi.fresh.Store(true)
	mi.cacheAttrs(0, 2, in.MTime)
	fs.mtab.Store(ino, mi)
	dir.cacheAttrs(uint64(dir.dir.ht.Len()), 2, in.MTime)
	return nil
}

// rootTails returns the tail cursor slice of the root directory, used
// only for its length (the FS-wide tail count).
func (fs *FS) rootTails() []tailCursor {
	if v, ok := fs.mtab.Load(uint64(layout.RootIno)); ok {
		return v.(*minode).dir.tails
	}
	// Root not faulted in yet: read the count from PM.
	in, _, _ := layout.ReadInode(fs.dev, fs.geo, layout.RootIno)
	return make([]tailCursor, in.NTails)
}

// Unlink removes a regular file.
func (t *Thread) Unlink(path string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpUnlink), &err)
	fs := t.fs
	dir, name, err := t.resolveParent(path, true)
	if err != nil {
		return err
	}
	childIno, _, ok, err := fs.lookupInDir(t, dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return fsapi.ErrNotExist
	}
	// Type check straight from the child's inode record, as the artifact
	// does — the child need not be separately acquired to be unlinked.
	if in, inOk, _ := layout.ReadInode(fs.dev, fs.geo, childIno); inOk && in.Type == layout.TypeDir {
		return fsapi.ErrIsDir
	}
	if _, err := fs.removeEntry(dir, name); err != nil {
		return err
	}
	if v, cached := fs.mtab.Load(childIno); cached {
		fs.destroyFile(t, v.(*minode))
	} else {
		// Not in our table: zero the record; the kernel reclaims pages
		// at the directory's next verification.
		layout.FreeInode(fs.dev, fs.geo, childIno)
		fs.dev.Persist(layout.InodeOff(fs.geo, childIno), layout.InodeSize)
	}
	dir.cacheAttrs(uint64(dir.dir.ht.Len()), 2, fs.clock.Load())
	return nil
}

// destroyFile tears down an unlinked file: zero the inode record and,
// when the kernel never learned of the inode, recycle its resources.
// The resources are retired through the RCU domain, not recycled in
// place: child.lock excludes only SerialData readers, so on the
// lock-free plane a thread with an open FD can be mid-copyOutRange on
// these very pages, and reuse must wait out its read-side section.
func (fs *FS) destroyFile(t *Thread, child *minode) {
	child.lock.Lock()
	layout.FreeInode(fs.dev, fs.geo, child.ino)
	fs.dev.Persist(layout.InodeOff(fs.geo, child.ino), layout.InodeSize)
	fs.mtab.Delete(child.ino)
	if child.fresh.Load() {
		var pages []uint64
		if st := child.file.Load(); st != nil {
			pages = append(pages, st.mapPages...)
			arr := st.blockArr()
			for bi := 0; bi < st.nblocks && bi < len(arr); bi++ {
				if b := arr[bi].Load(); b != 0 {
					pages = append(pages, b)
				}
			}
		}
		fs.retirePages(t, pages)
		fs.retireIno(t, child.ino)
	}
	child.lock.Unlock()
}

// Rmdir removes an empty directory.
func (t *Thread) Rmdir(path string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpRmdir), &err)
	fs := t.fs
	dir, name, err := t.resolveParent(path, true)
	if err != nil {
		return err
	}
	childIno, _, ok, err := fs.lookupInDir(t, dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return fsapi.ErrNotExist
	}
	// Acquire the victim for write: the emptiness decision must run on
	// the live directory, never on auxiliary state retained across a
	// release (a peer may have created or unlinked entries since).
	child, err := fs.getMinode(t, childIno, true)
	if err != nil {
		return err
	}
	if child.typ != layout.TypeDir {
		return fsapi.ErrNotDir
	}
	if child.dir.ht.Len() != 0 {
		return fsapi.ErrNotEmpty
	}
	if _, err := fs.removeEntry(dir, name); err != nil {
		return err
	}
	child.lock.Lock()
	layout.FreeInode(fs.dev, fs.geo, child.ino)
	fs.dev.Persist(layout.InodeOff(fs.geo, child.ino), layout.InodeSize)
	fs.mtab.Delete(child.ino)
	if child.fresh.Load() {
		var pages []uint64
		pages = append(pages, child.dir.tailset)
		for i := range child.dir.tails {
			tc := &child.dir.tails[i]
			for p := layout.TailHead(fs.dev, child.dir.tailset, i); p != 0; p = layout.NextPage(fs.dev, p) {
				pages = append(pages, p)
			}
			_ = tc
		}
		// Same grace-period discipline as destroyFile: a lock-free
		// lookup may still be scanning these log pages.
		fs.retirePages(t, pages)
		fs.retireIno(t, child.ino)
	}
	child.lock.Unlock()
	dir.cacheAttrs(uint64(dir.dir.ht.Len()), 2, fs.clock.Load())
	return nil
}

// Readdir lists a directory's names in sorted order.
func (t *Thread) Readdir(path string) (names []string, err error) {
	defer t.endOp(t.beginOp(fsapi.OpReaddir), &err)
	mi, err := t.resolve(path)
	if err != nil {
		return nil, err
	}
	if mi.typ != layout.TypeDir {
		return nil, fsapi.ErrNotDir
	}
	names = make([]string, 0, mi.dir.ht.Len())
	mi.dir.ht.Range(func(name string, _, _ uint64) bool {
		names = append(names, name)
		return true
	})
	sort.Strings(names)
	return names, nil
}

// Stat returns path's attributes. ArckFS+ serves it from the cached
// in-memory inode (§4.3 patch); ArckFS reads the mapped core state, which
// crashes if the mapping was torn down concurrently.
func (t *Thread) Stat(path string) (st fsapi.Stat, err error) {
	defer t.endOp(t.beginOp(fsapi.OpStat), &err)
	mi, err := t.resolve(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	if t.fs.opts.Bugs.Has(BugReleaseUnsync) {
		if err := t.fs.checkMapped(mi); err != nil {
			return fsapi.Stat{}, err
		}
		in, ok, corrupt := layout.ReadInode(t.fs.dev, t.fs.geo, mi.ino)
		if !ok || corrupt {
			return fsapi.Stat{}, fsapi.ErrStale
		}
		return fsapi.Stat{
			Ino: mi.ino, Dir: in.Type == layout.TypeDir,
			Size: in.Size, Nlink: in.Nlink, MTime: in.MTime,
		}, nil
	}
	return mi.stat(), nil
}
