package libfs

import (
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

// TestCreateFenceCountPatchedVsBuggy pins the §4.2 patch down at the
// counter level: the patched create path issues exactly one more
// persist barrier than the buggy path — the fence between persisting
// the dentry body and writing its commit marker. More would mean the
// patch over-fences (a real throughput cost, Figure 3); fewer would
// mean the fence regressed away.
func TestCreateFenceCountPatchedVsBuggy(t *testing.T) {
	fencesPerCreate := func(bugs Bugs) int64 {
		dev := pmem.New(64<<20, nil)
		ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: bugs})
		w := fs.NewThread(0).(*Thread)
		if err := w.Mkdir("/d"); err != nil {
			t.Fatal(err)
		}
		before := dev.Stats.Fences.Load()
		if err := w.Create("/d/f"); err != nil {
			t.Fatal(err)
		}
		return dev.Stats.Fences.Load() - before
	}

	buggy := fencesPerCreate(BugMissingFence)
	patched := fencesPerCreate(BugsNone)
	if patched != buggy+1 {
		t.Fatalf("patched create issued %d fences, buggy %d; want exactly one more",
			patched, buggy)
	}
}
