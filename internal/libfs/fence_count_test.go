package libfs

import (
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

// TestCreateFenceCountPatchedVsBuggy pins the §4.2 patch down at the
// counter level: the patched create path issues exactly one more
// persist barrier than the buggy path — the fence between persisting
// the dentry body and writing its commit marker. More would mean the
// patch over-fences (a real throughput cost, Figure 3); fewer would
// mean the fence regressed away.
//
// The absolute counts are pinned too, in both persist modes: a
// steady-state create is exactly two fences patched (body epoch + marker
// epoch) and one buggy (single combined epoch), with or without the
// write-combining batcher. The batcher changes how many clwbs are
// issued, never where the fences sit.
func TestCreateFenceCountPatchedVsBuggy(t *testing.T) {
	fencesPerCreate := func(bugs Bugs, eager bool) int64 {
		dev := pmem.New(64<<20, nil)
		ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: bugs, EagerPersist: eager})
		w := fs.NewThread(0).(*Thread)
		if err := w.Mkdir("/d"); err != nil {
			t.Fatal(err)
		}
		// Warm up: the first create in the directory allocates and links
		// the log page; the second is the steady-state path every
		// create-heavy benchmark measures.
		if err := w.Create("/d/warmup"); err != nil {
			t.Fatal(err)
		}
		before := dev.Stats.Fences.Load()
		if err := w.Create("/d/f"); err != nil {
			t.Fatal(err)
		}
		return dev.Stats.Fences.Load() - before
	}

	for _, mode := range []struct {
		name  string
		eager bool
	}{{"batched", false}, {"eager", true}} {
		t.Run(mode.name, func(t *testing.T) {
			buggy := fencesPerCreate(BugMissingFence, mode.eager)
			patched := fencesPerCreate(BugsNone, mode.eager)
			if patched != buggy+1 {
				t.Fatalf("patched create issued %d fences, buggy %d; want exactly one more",
					patched, buggy)
			}
			if buggy != 1 || patched != 2 {
				t.Fatalf("steady-state create fences = %d buggy / %d patched; want 1 / 2",
					buggy, patched)
			}
		})
	}
}

// TestTruncateFlushCountBatched pins the block-map flush coalescing: a
// 64-block truncate clears 64 adjacent 8-byte map entries — eight cache
// lines — so the batched path issues exactly 8 line write-backs and one
// fence, where the eager path pays one clwb per entry plus the inode
// record.
func TestTruncateFlushCountBatched(t *testing.T) {
	run := func(eager bool) (flushes, fences int64) {
		dev := pmem.New(64<<20, nil)
		ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{EagerPersist: eager})
		w := fs.NewThread(0).(*Thread)
		if err := w.Create("/f"); err != nil {
			t.Fatal(err)
		}
		fd, err := w.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, layoutPageSize)
		for i := 0; i < 64; i++ {
			if _, err := w.WriteAt(fd, buf, int64(i)*layoutPageSize); err != nil {
				t.Fatal(err)
			}
		}
		beforeFl, beforeFe := dev.Stats.Flushes.Load(), dev.Stats.Fences.Load()
		if err := w.Truncate("/f", 0); err != nil {
			t.Fatal(err)
		}
		return dev.Stats.Flushes.Load() - beforeFl, dev.Stats.Fences.Load() - beforeFe
	}

	flushes, fences := run(false)
	if flushes != 8 {
		t.Fatalf("batched 64-block truncate issued %d line flushes, want 8 (64 entries coalesced)", flushes)
	}
	if fences != 1 {
		t.Fatalf("batched truncate issued %d fences, want 1", fences)
	}
	eagerFlushes, eagerFences := run(true)
	if eagerFlushes != 66 {
		t.Fatalf("eager truncate issued %d flushes, want 66 (64 entries + 2 inode lines)", eagerFlushes)
	}
	if eagerFences != 1 {
		t.Fatalf("eager truncate issued %d fences, want 1", eagerFences)
	}
}

const layoutPageSize = 4096
