package libfs

import (
	"arckfs/internal/fsapi"
	"arckfs/internal/htable"
	"arckfs/internal/layout"
)

// This file implements an example of Trio's headline capability beyond
// raw speed: unprivileged, per-application customization of the file
// system (§2.1/§2.2 of the paper discuss two such customizations of
// ArckFS). Because the LibFS owns its auxiliary state and its persistence
// schedule — and the verifier only ever inspects the core state at
// ownership transfer — an application can re-batch persistence barriers
// however it likes without any kernel change and without weakening the
// integrity guarantees other applications observe.
//
// CreateBatch creates N empty files in one directory paying two fences
// total instead of two fences per file: all inode records and dentry
// bodies are flushed under one barrier, then all commit markers under a
// second. Crash-wise each entry remains individually atomic (its marker
// cannot persist before its body), so recovery sees some subset of the
// batch, every member intact — the same per-entry guarantee individual
// creates give, at a fraction of the ordering cost. This mirrors the
// "bulk creation" style customization for ingest-heavy workloads.

// CreateBatch creates every name in names (which must be distinct) as an
// empty file under dir. It returns the number of files created; on error
// the first err is returned and earlier files of the batch remain
// created.
func (t *Thread) CreateBatch(dir string, names []string) (n int, err error) {
	defer t.endOp(t.beginOp(fsapi.OpBatch), &err)
	fs := t.fs
	dmi, err := t.resolve(dir)
	if err != nil {
		return 0, err
	}
	if dmi.typ != layout.TypeDir {
		return 0, fsapi.ErrNotDir
	}
	if dmi.released.Load() {
		if err := fs.reacquire(t, dmi); err != nil {
			return 0, err
		}
	}

	var pending []pendingCreate

	// Pass 1: write every inode record and dentry body, flushing but not
	// fencing — the §4.2 protocol's step 1 for the whole batch.
	for _, name := range names {
		if !layout.ValidName(name) {
			return 0, fsapi.ErrInval
		}
		ino, err := fs.allocIno(t)
		if err != nil {
			return 0, err
		}
		in := layout.Inode{
			Type: layout.TypeFile, Perm: layout.PermRead | layout.PermWrite,
			Nlink: 1, Parent: dmi.ino, MTime: fs.now(),
		}
		rec := layout.EncodeInode(&in)
		t.pb.WriteStream(layout.InodeOff(fs.geo, ino), rec[:])

		var ref layout.DentryRef
		var insErr error
		dmi.dir.ht.WithBucket(name, func(lb *htable.LockedBucket) {
			if _, exists := lb.Get(name); exists {
				insErr = fsapi.ErrExist
				return
			}
			ref, insErr = fs.reserveDentry(t, dmi, len(name))
			if insErr != nil {
				return
			}
			layout.WriteDentryBody(fs.dev, ref, ino, name)
			fs.persistDentryBody(t.pb, ref, len(name))
			lb.Insert(name, ino, uint64(ref))
		})
		if insErr != nil {
			fs.recycleIno(ino)
			// Commit and register what we already wrote before reporting.
			fs.finishBatch(t, dmi, pending)
			return len(pending), insErr
		}
		pending = append(pending, pendingCreate{name, ino, ref})
	}
	fs.finishBatch(t, dmi, pending)
	return len(pending), nil
}

// finishBatch commits the batch durably and registers the new files in
// the auxiliary tables.
func (fs *FS) finishBatch(t *Thread, dmi *minode, pending []pendingCreate) {
	fs.commitBatch(t, pending)
	for _, pc := range pending {
		mi := &minode{ino: pc.ino, typ: layout.TypeFile}
		mi.file.Store(&fileState{})
		mi.parent.Store(dmi.ino)
		mi.fresh.Store(true)
		mi.cacheAttrs(0, 1, fs.clock.Load())
		fs.mtab.Store(pc.ino, mi)
	}
	dmi.cacheAttrs(uint64(dmi.dir.ht.Len()), 2, fs.clock.Load())
}

type pendingCreate struct {
	name string
	ino  uint64
	ref  layout.DentryRef
}

// commitBatch ends the batch's body epoch, then sets and persists every
// commit marker under a single final barrier.
func (fs *FS) commitBatch(t *Thread, pending []pendingCreate) {
	if len(pending) == 0 {
		// Nothing committed, but pass 1 may have queued body lines for an
		// entry that then failed aux insertion; write them back.
		t.pb.Drain()
		return
	}
	// Order every body and inode write-back before any marker can
	// persist (the §4.2 fence, shared by the whole batch).
	t.pb.Barrier()
	for _, pc := range pending {
		layout.CommitDentry(fs.dev, pc.ref, len(pc.name))
		t.pb.Flush(pc.ref.MarkerOff(), 2)
	}
	t.pb.Barrier()
}
