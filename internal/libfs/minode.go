package libfs

import (
	"errors"
	"sync/atomic"

	"arckfs/internal/fsapi"
	"arckfs/internal/hlock"
	"arckfs/internal/htable"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/telemetry"
)

// minode is the in-memory (auxiliary, per-application) inode. Directory
// minodes carry a hash table over the persistent dentry log; file minodes
// carry a DRAM block index. The paper's §4.3 patch additionally caches
// the attributes here so lock-free readers never touch the mapped core
// state.
type minode struct {
	ino uint64
	typ uint16

	// parent is the inode's current parent directory as this LibFS
	// believes it (updated locally on rename; verified by the kernel).
	parent atomic.Uint64

	// mapping is the kernel mapping handle; nil for inodes this LibFS
	// created and has not yet committed (self-built core state needs no
	// mapping).
	mapping *kernel.Mapping

	// lock is the per-inode readers-writer lock: files take it for
	// read/write; directories take it for whole-inode operations
	// (release, rename source/target pinning).
	lock hlock.RWSpin

	// attrs is the §4.3 cached state: an immutable snapshot readers use
	// without dereferencing PM.
	attrs atomic.Pointer[fsapi.Stat]

	// fresh marks an inode created by this LibFS that the kernel has not
	// learned about (no pending/committed shadow): its inode number and
	// pages may be locally recycled on unlink.
	fresh atomic.Bool

	// released marks a voluntarily released inode whose aux state is
	// retained (§4.3 patch): reads serve from cache, writes must
	// re-acquire.
	released atomic.Bool

	dir *dirState
	// file is published atomically because the lock-free read path
	// dereferences it with no lock held; remap/reacquire swap in a fresh
	// fileState while readers may be mid-walk on the old one.
	file atomic.Pointer[fileState]
}

// dirState is a directory's auxiliary state plus its log-append cursors.
type dirState struct {
	ht      *htable.Table
	tailset uint64
	tails   []tailCursor
	// idxMu is the "index tail" lock: it serializes structural log
	// growth (linking new pages, publishing tail heads).
	idxMu hlock.SpinLock
}

type tailCursor struct {
	mu   hlock.SpinLock
	page uint64 // 0 = tail empty
	off  int
	_    [40]byte
}

// fileState is a file's auxiliary block index. Writers mutate it under
// minode.lock; the lock-free read path walks it with no lock at all,
// relying on the publication order below.
type fileState struct {
	// blocks is the published block index: entry k holds the PM page
	// backing file block k, 0 = hole. Writers store new entries — and
	// publish grown arrays — before publishing the size that makes them
	// reachable, so a lock-free reader that observes a size also
	// observes every block pointer below it. Superseded arrays are left
	// to the garbage collector; unlike htable entries they are never
	// recycled, so no grace period is needed.
	blocks atomic.Pointer[[]atomic.Uint64]
	// nblocks is the writer-side logical length of the index (entries at
	// or beyond it are zero). Guarded by minode.lock.
	nblocks int
	// mapPages are the PM map-chain pages backing blocks; writers only.
	mapPages []uint64
	size     atomic.Uint64
}

// newFileState builds a published index from recovered state.
func newFileState(size uint64, blocks, mapPages []uint64) *fileState {
	st := &fileState{nblocks: len(blocks), mapPages: mapPages}
	st.size.Store(size)
	if len(blocks) > 0 {
		arr := make([]atomic.Uint64, len(blocks))
		for i, b := range blocks {
			arr[i].Store(b)
		}
		st.blocks.Store(&arr)
	}
	return st
}

// blockArr returns the current published index (nil-tolerant).
func (st *fileState) blockArr() []atomic.Uint64 {
	if p := st.blocks.Load(); p != nil {
		return *p
	}
	return nil
}

// ensureBlocks grows the published index to hold at least n entries and
// raises the logical length. Caller holds minode.lock; in-flight readers
// keep walking the old array, which remains intact.
func (st *fileState) ensureBlocks(n int) {
	arr := st.blockArr()
	if n > len(arr) {
		grow := len(arr) * 2
		if grow < 8 {
			grow = 8
		}
		for grow < n {
			grow *= 2
		}
		fresh := make([]atomic.Uint64, grow)
		for i := range arr {
			fresh[i].Store(arr[i].Load())
		}
		st.blocks.Store(&fresh)
	}
	if n > st.nblocks {
		st.nblocks = n
	}
}

// checkMapped returns the §4.3 simulated bus error if the inode's core
// state is no longer mapped.
func (fs *FS) checkMapped(mi *minode) error {
	if mi.mapping != nil && !mi.mapping.Valid() {
		return fsapi.ErrBusError
	}
	return nil
}

// cacheAttrs refreshes the cached attribute snapshot from in-memory
// knowledge.
func (mi *minode) cacheAttrs(size uint64, nlink uint16, mtime uint64) {
	mi.attrs.Store(&fsapi.Stat{
		Ino:   mi.ino,
		Dir:   mi.typ == layout.TypeDir,
		Size:  size,
		Nlink: nlink,
		MTime: mtime,
	})
}

// stat returns the cached attribute snapshot.
func (mi *minode) stat() fsapi.Stat { return *mi.attrs.Load() }

// getMinode returns the in-memory inode for ino, acquiring it from the
// kernel and rebuilding auxiliary state on first touch. t (nil-tolerated)
// attributes kernel crossings to the operation's span.
func (fs *FS) getMinode(t *Thread, ino uint64, write bool) (*minode, error) {
	if v, ok := fs.mtab.Load(ino); ok {
		mi := v.(*minode)
		if mi.released.Load() {
			switch {
			case write:
				if err := fs.reacquire(t, mi); err != nil {
					return nil, err
				}
			case mi.mapping == nil || !mi.mapping.Valid():
				// The dormant lease is gone: another application owned
				// this inode since we released it, so the retained
				// auxiliary state may be stale. Re-acquire and rebuild;
				// if a peer still actively holds it, fall back to the
				// retained (last-verified) aux — a read-only touch must
				// not steal ownership from a live holder, and any entry
				// the walk then resolves is re-verified at its own
				// acquire anyway.
				if err := fs.reacquire(t, mi); err != nil {
					if !errors.Is(err, fsapi.ErrBusy) {
						return nil, err
					}
					fs.Stats.StaleReads.Add(1)
				}
			}
			// Otherwise: a read under an intact dormant lease — the core
			// state cannot have changed, the retained aux is exact.
		}
		return mi, nil
	}
	begin := t.crossStart()
	m, err := fs.ctrl.AcquireObserved(fs.app, ino, true, t.sink())
	t.crossEnd(telemetry.EvAcquire, begin)
	if err != nil {
		return nil, err
	}
	mi, err := fs.buildMinode(ino, m)
	if err != nil {
		return nil, err
	}
	actual, _ := fs.mtab.LoadOrStore(ino, mi)
	return actual.(*minode), nil
}

// remap re-acquires an inode whose mapping the kernel revoked underneath
// us (an involuntary release or a trust-group transfer to a peer): the
// patched LibFS rebuilds and retries instead of crashing. ArckFS as
// shipped has no such path — the revocation is a crash (§4.3).
func (fs *FS) remap(t *Thread, mi *minode) error {
	if fs.opts.Bugs.Has(BugReleaseUnsync) {
		return fsapi.ErrBusError
	}
	fs.Stats.Remaps.Add(1)
	begin := t.crossStart()
	m, err := fs.ctrl.AcquireObserved(fs.app, mi.ino, true, t.sink())
	t.crossEnd(telemetry.EvAcquire, begin)
	if err != nil {
		return err
	}
	mi.lock.Lock()
	defer mi.lock.Unlock()
	if mi.mapping != nil && mi.mapping.Valid() {
		return nil // raced with another remapper
	}
	fresh, err := fs.buildMinode(mi.ino, m)
	if err != nil {
		return err
	}
	mi.mapping = m
	mi.dir = fresh.dir
	mi.file.Store(fresh.file.Load())
	mi.attrs.Store(fresh.attrs.Load())
	mi.released.Store(false)
	return nil
}

// reacquire remaps a released inode (§4.3 patch path: aux was retained).
//
// With grant leases, a voluntary release left the mapping dormant in the
// kernel instead of tearing it down; if no other application reclaimed
// the inode in the meantime, the CAS in Reactivate wins it back without
// a kernel crossing, and the retained auxiliary state is still exact
// because a dormant inode's core state cannot have changed (any change
// requires a reclaim, which fails the CAS). Only on a lost CAS — the
// kernel revoked the lease — does this fall back to a real Acquire.
func (fs *FS) reacquire(t *Thread, mi *minode) error {
	if !fs.opts.NoLeases {
		mi.lock.Lock()
		if !mi.released.Load() {
			mi.lock.Unlock()
			return nil // lost the race to another re-acquirer
		}
		if mi.mapping.Reactivate() {
			mi.released.Store(false)
			mi.lock.Unlock()
			fs.Stats.LeaseHits.Add(1)
			fs.Stats.SyscallsAvoided.Add(1)
			// The span's record of the crossing that did NOT happen: a
			// lease-hit operation must still trace end to end.
			t.spanEv(telemetry.SpanEvLeaseHit, int64(mi.ino), 0)
			return nil
		}
		mi.lock.Unlock()
		fs.Stats.LeaseMisses.Add(1)
		t.spanEv(telemetry.SpanEvLeaseMiss, int64(mi.ino), 0)
	}
	fs.Stats.Reacquires.Add(1)
	begin := t.crossStart()
	m, err := fs.ctrl.AcquireObserved(fs.app, mi.ino, true, t.sink())
	t.crossEnd(telemetry.EvAcquire, begin)
	if err != nil {
		return err
	}
	mi.lock.Lock()
	defer mi.lock.Unlock()
	if !mi.released.Load() {
		return nil // lost the race to another re-acquirer
	}
	// The core state may have changed while released; rebuild aux.
	fresh, err := fs.buildMinode(mi.ino, m)
	if err != nil {
		return err
	}
	mi.mapping = m
	mi.dir = fresh.dir
	mi.file.Store(fresh.file.Load())
	mi.attrs.Store(fresh.attrs.Load())
	mi.released.Store(false)
	return nil
}

// buildMinode reads ino's core state and constructs auxiliary state —
// Trio step 3: "the LibFS builds its auxiliary state from the core
// state".
func (fs *FS) buildMinode(ino uint64, m *kernel.Mapping) (*minode, error) {
	in, ok, corrupt := layout.ReadInode(fs.dev, fs.geo, ino)
	if !ok || corrupt {
		return nil, fsapi.ErrStale
	}
	mi := &minode{ino: ino, typ: in.Type, mapping: m}
	mi.parent.Store(in.Parent)
	switch in.Type {
	case layout.TypeDir:
		ds := &dirState{
			ht:      fs.newDirTable(),
			tailset: in.DataRoot,
			tails:   make([]tailCursor, in.NTails),
		}
		for t := 0; t < int(in.NTails); t++ {
			head := layout.TailHead(fs.dev, in.DataRoot, t)
			if head == 0 {
				continue
			}
			var scanErr error
			page, off, corrupt := layout.ScanTail(fs.dev, head, func(d layout.Dentry) bool {
				if d.Live {
					if !ds.ht.Insert(d.Name, d.Ino, uint64(d.Ref)) {
						scanErr = fsapi.ErrStale
						return false
					}
				}
				return true
			})
			if scanErr != nil {
				return nil, scanErr
			}
			if corrupt {
				return nil, fsapi.ErrStale
			}
			ds.tails[t].page = page
			ds.tails[t].off = off
		}
		mi.dir = ds
		mi.cacheAttrs(uint64(ds.ht.Len()), in.Nlink, in.MTime)
	case layout.TypeFile:
		var blocks, mapPages []uint64
		if in.DataRoot != 0 {
			mapPages = layout.MapChainPages(fs.dev, in.DataRoot)
			blocks = layout.WalkBlockMap(fs.dev, in.DataRoot, layout.BlocksForSize(in.Size))
		}
		mi.file.Store(newFileState(in.Size, blocks, mapPages))
		mi.cacheAttrs(in.Size, in.Nlink, in.MTime)
	default:
		return nil, fsapi.ErrStale
	}
	return mi, nil
}

// newDirTable builds a directory hash table honoring the §4.5 bug flag
// and the data-plane A/B switch: buggy mode reads with no discipline at
// all, SerialData takes the bucket lock per lookup (counted in
// fs.readLocks), and the default is the RCU-protected lock-free path.
func (fs *FS) newDirTable() *htable.Table {
	opts := htable.Options{
		InitialBuckets: fs.opts.DirBuckets,
		StrictUAF:      fs.opts.StrictUAF,
		ReadLocks:      &fs.readLocks,
	}
	switch {
	case fs.opts.Bugs.Has(BugLocklessBucketRead):
		// §4.5 as shipped: lockless and unprotected.
	case fs.opts.SerialData:
		opts.SerialReaders = true
	default:
		opts.RCUReaders = true
		opts.Dom = fs.dom
	}
	t := htable.New(opts)
	// Indirect through the Hooks struct so tests can arm the window after
	// tables already exist.
	t.TraverseHook = func() {
		if h := fs.opts.Hooks.BucketTraverse; h != nil {
			h()
		}
	}
	return t
}

// lookupInDir finds name in dir's hash table using the configured reader
// discipline. The caller supplies its RCU reader.
func (fs *FS) lookupInDir(t *Thread, mi *minode, name string) (uint64, uint64, bool, error) {
	if mi.dir == nil {
		return 0, 0, false, fsapi.ErrNotDir
	}
	var rd = t.rd
	if fs.opts.Bugs.Has(BugLocklessBucketRead) {
		rd = nil
	}
	ino, ref, ok, err := mi.dir.ht.Lookup(rd, name)
	if err != nil {
		// The simulated segfault of §4.5.
		return 0, 0, false, fsapi.ErrSegfault
	}
	return ino, ref, ok, nil
}
