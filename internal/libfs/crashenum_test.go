package libfs

import (
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

// TestExhaustiveCrashEnumerationSingleCreate enumerates EVERY all-or-
// nothing line subset of the unpersisted state left by one create (not
// just sampled ones) and requires:
//
//   - ArckFS+ (fence present): no crash image contains a torn dentry.
//   - ArckFS (fence missing): at least one crash image does — the §4.2
//     bug is not merely possible but enumerable.
//
// This is bounded model checking over the persistence state space: with
// the per-line prefix rule fixed to "all or nothing", a create touches a
// handful of lines, so the full 2^k space is small.
func TestExhaustiveCrashEnumerationSingleCreate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		bugs     Bugs
		wantTorn bool
	}{
		{"arckfs+-fence", BugsNone, false},
		{"arckfs-missing-fence", BugMissingFence, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dev := pmem.New(64<<20, nil)
			ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: tc.bugs})
			w := fs.NewThread(0).(*Thread)

			// Reach steady state (pools granted, root acquired) so the
			// create's dirty set is only the create itself.
			if err := w.Create("/warmup"); err != nil {
				t.Fatal(err)
			}
			if err := fs.ReleaseAll(); err != nil {
				t.Fatal(err)
			}
			dev.EnableTracking()
			// A name long enough to span cache lines.
			if err := w.Create("/victim-0123456789-0123456789-0123456789-0123456789-0123456789"); err != nil {
				t.Fatal(err)
			}

			lines := dev.DirtyLines()
			if len(lines) == 0 {
				// Everything already fenced durable: only the complete
				// image exists; nothing to enumerate. (This is what the
				// patched two-fence protocol can produce.)
				return
			}
			if len(lines) > 14 {
				t.Fatalf("dirty set unexpectedly large: %d lines", len(lines))
			}
			sawTorn := false
			total := 1 << len(lines)
			for mask := 0; mask < total; mask++ {
				keep := map[int64]bool{}
				for i, l := range lines {
					if mask&(1<<i) != 0 {
						keep[l] = true
					}
				}
				img := dev.CrashImage(func(lineOff int64, versions int) int {
					if keep[lineOff] {
						return versions
					}
					return 0
				})
				rdev := pmem.Restore(img, nil)
				_, rep, err := kernel.Mount(rdev, kernel.Options{}, true)
				if err != nil {
					t.Fatalf("mask %b: recovery failed: %v", mask, err)
				}
				if rep.CorruptDentries > 0 {
					sawTorn = true
					if !tc.wantTorn {
						t.Fatalf("mask %b: fence-protected create produced a torn dentry: %s", mask, rep)
					}
				}
			}
			if tc.wantTorn && !sawTorn {
				t.Fatalf("no crash subset of %d lines tore the dentry; the §4.2 bug should be enumerable", len(lines))
			}
		})
	}
}

// TestExhaustiveCrashEnumerationUnlink does the same for unlink: the
// single-marker invalidation is atomic in both modes, so no subset may
// corrupt — the entry is either still live or cleanly gone.
func TestExhaustiveCrashEnumerationUnlink(t *testing.T) {
	dev := pmem.New(64<<20, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: BugsAll})
	w := fs.NewThread(0).(*Thread)
	if err := w.Create("/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	dev.EnableTracking()
	if err := w.Unlink("/doomed"); err != nil {
		t.Fatal(err)
	}
	lines := dev.DirtyLines()
	if len(lines) > 14 {
		t.Fatalf("unlink dirtied %d lines", len(lines))
	}
	for mask := 0; mask < 1<<len(lines); mask++ {
		keep := map[int64]bool{}
		for i, l := range lines {
			if mask&(1<<i) != 0 {
				keep[l] = true
			}
		}
		img := dev.CrashImage(func(lineOff int64, versions int) int {
			if keep[lineOff] {
				return versions
			}
			return 0
		})
		rdev := pmem.Restore(img, nil)
		ctrl2, rep, err := kernel.Mount(rdev, kernel.Options{}, true)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		if rep.CorruptDentries != 0 {
			t.Fatalf("mask %b: unlink tore a dentry: %s", mask, rep)
		}
		// The file is either fully there or fully gone.
		fs2 := New(ctrl2, ctrl2.RegisterApp(0, 0), Options{})
		r := fs2.NewThread(0).(*Thread)
		if _, err := r.Stat("/doomed"); err == nil {
			if _, err := r.Open("/doomed"); err != nil {
				t.Fatalf("mask %b: half-alive file: %v", mask, err)
			}
		}
	}
}

// TestBatchedCreateCrashEnumerationAtMarkerWindow enumerates crash
// states in the narrowest §4.2 window — the commit marker's flush is
// queued in the write-combining batch but the final fence has not been
// issued — and proves the batcher preserves the ordering-epoch rule:
//
//   - ArckFS+ : the body epoch's Barrier ran before the marker was
//     queued, so no all-or-nothing subset of the remaining dirty lines
//     yields a valid commit marker over a garbage dentry body.
//   - ArckFS (BugMissingFence): under batching the body lines and the
//     marker share one ordering epoch, so the enumeration must still
//     find the torn state — batching does not accidentally fix the bug,
//     it expresses it the same way.
func TestBatchedCreateCrashEnumerationAtMarkerWindow(t *testing.T) {
	for _, tc := range []struct {
		name     string
		bugs     Bugs
		wantTorn bool
	}{
		{"arckfs+-fence", BugsNone, false},
		{"arckfs-missing-fence", BugMissingFence, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dev := pmem.New(8<<20, nil)
			ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			var imgs [][]byte
			hooks := &Hooks{CreateBeforeMarkerFence: func() {
				if !dev.Tracking() {
					return // warmup create, before the measured window
				}
				lines := dev.DirtyLines()
				if len(lines) > 14 {
					t.Errorf("dirty set at marker window unexpectedly large: %d lines", len(lines))
					return
				}
				for mask := 0; mask < 1<<len(lines); mask++ {
					keep := map[int64]bool{}
					for i, l := range lines {
						if mask&(1<<i) != 0 {
							keep[l] = true
						}
					}
					imgs = append(imgs, dev.CrashImage(func(lineOff int64, versions int) int {
						if keep[lineOff] {
							return versions
						}
						return 0
					}))
				}
			}}
			fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: tc.bugs, Hooks: hooks})
			w := fs.NewThread(0).(*Thread)
			if err := w.Create("/warmup"); err != nil {
				t.Fatal(err)
			}
			if err := fs.ReleaseAll(); err != nil {
				t.Fatal(err)
			}
			dev.EnableTracking()
			if err := w.Create("/victim-0123456789-0123456789-0123456789-0123456789-0123456789"); err != nil {
				t.Fatal(err)
			}
			if len(imgs) == 0 {
				t.Fatal("marker-window hook never fired")
			}
			sawTorn := false
			for i, img := range imgs {
				rdev := pmem.Restore(img, nil)
				_, rep, err := kernel.Mount(rdev, kernel.Options{}, true)
				if err != nil {
					t.Fatalf("image %d: recovery failed: %v", i, err)
				}
				if rep.CorruptDentries > 0 {
					sawTorn = true
					if !tc.wantTorn {
						t.Fatalf("image %d: batched fence-protected create produced a torn dentry: %s", i, rep)
					}
				}
			}
			if tc.wantTorn && !sawTorn {
				t.Fatal("no crash subset tore the dentry under batching; the §4.2 bug should still be enumerable")
			}
		})
	}
}
