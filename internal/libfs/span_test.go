package libfs

import (
	"testing"

	"arckfs/internal/fsapi"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// TestLeaseHitSpanPropagation pins the span pipeline across the grant-
// lease fast path: a write that wins its dormant mapping back via the
// Reactivate CAS never crosses into the kernel, and its span must say
// so — complete, closed, carrying the lease-hit event instead of a
// crossing.
func TestLeaseHitSpanPropagation(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	tr := span.New(span.DefaultRingCap, 1)
	tr.SetEnabled(true)
	fs.SetObservability(tr, nil)
	w := th(t, fs)

	if err := w.Create("/f"); err != nil {
		t.Fatal(err)
	}
	fd, err := w.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("lease me")
	if _, err := w.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	st, err := w.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	// Rule 1: commit the chain before the voluntary release that leaves
	// the mapping dormant.
	if err := fs.CommitInode(w, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReleaseInode(st.Ino); err != nil {
		t.Fatal(err)
	}

	hits := fs.Stats.LeaseHits.Load()
	if _, err := w.WriteAt(fd, []byte("again!!!"), 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats.LeaseHits.Load(); got != hits+1 {
		t.Fatalf("write after release did not take the lease-hit path (hits %d -> %d)", hits, got)
	}

	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded at sample=1")
	}
	sp := spans[len(spans)-1]
	if sp.Op != fsapi.OpWrite {
		t.Fatalf("last span is %v, want the re-acquiring write", sp.Op)
	}
	if sp.DurNS <= 0 {
		t.Fatalf("span not closed: DurNS=%d", sp.DurNS)
	}
	var leaseHit, flushed bool
	for _, ev := range sp.Events {
		switch ev.Kind {
		case telemetry.SpanEvLeaseHit:
			if ev.A != int64(st.Ino) {
				t.Fatalf("lease hit names inode %d, want %d", ev.A, st.Ino)
			}
			leaseHit = true
		case telemetry.SpanEvCrossing:
			t.Fatalf("lease-hit write crossed into the kernel: %v", ev)
		case telemetry.SpanEvFlush, telemetry.SpanEvNTStore:
			flushed = true
		}
	}
	if !leaseHit {
		t.Fatalf("span records no lease hit: %v", sp.Events)
	}
	if !flushed {
		t.Fatalf("span records no persist work for the write: %v", sp.Events)
	}
}

// TestSpanDisabledNoRecords pins the off switch: with no tracer
// attached, operations run untraced and nothing is recorded.
func TestSpanDisabledNoRecords(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	tr := span.New(span.DefaultRingCap, 1) // attached but disabled
	fs.SetObservability(tr, nil)
	w := th(t, fs)
	if err := w.Create("/quiet"); err != nil {
		t.Fatal(err)
	}
	if n := tr.Recorded(); n != 0 {
		t.Fatalf("disabled tracer recorded %d spans", n)
	}
	if len(tr.Snapshot()) != 0 {
		t.Fatal("disabled tracer has retained history")
	}
}
