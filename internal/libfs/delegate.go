package libfs

import (
	"sync"

	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// I/O delegation, the OdinFS-inspired optimization the Trio paper credits
// for ArckFS's data throughput (§5.2: "ArckFS outperforms other file
// systems by leveraging direct access and I/O delegation"): large
// requests are split into page-sized chunks executed by a pool of
// delegate workers, overlapping the memory copies and the per-chunk
// persistence work across cores.
//
// Delegation is per-application (it lives entirely in the LibFS — another
// example of unprivileged customization). It engages only for requests of
// at least DelegationThreshold bytes; small requests keep the low-latency
// synchronous path.

// delegatePool is a lazily started worker pool shared by one FS.
type delegatePool struct {
	once sync.Once
	work chan delegateJob
}

type delegateJob struct {
	fn   func()
	done *sync.WaitGroup
}

const delegateWorkers = 4

// DelegationThreshold is the request size at which reads and writes are
// fanned out to the delegate pool. Zero disables delegation.
const DelegationThreshold = 256 << 10

func (p *delegatePool) start() {
	p.once.Do(func() {
		p.work = make(chan delegateJob, delegateWorkers*2)
		for i := 0; i < delegateWorkers; i++ {
			go func() {
				for job := range p.work {
					job.fn()
					job.done.Done()
				}
			}()
		}
	})
}

// run executes fns across the pool and waits for all of them.
func (p *delegatePool) run(fns []func()) {
	p.start()
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		p.work <- delegateJob{fn: fn, done: &wg}
	}
	wg.Wait()
}

// delegatedCopyOut reads the block range [firstBlock, len(chunks)) of st
// into the chunk buffers in parallel. The published block index is
// immutable once loaded, so workers need no lock of their own.
func (fs *FS) delegatedCopyOut(st *fileState, off int64, p []byte) {
	const chunk = 64 * layout.PageSize
	var fns []func()
	for done := 0; done < len(p); done += chunk {
		start, end := done, done+chunk
		if end > len(p) {
			end = len(p)
		}
		base := off + int64(start)
		fns = append(fns, func() {
			fs.copyOutRange(st, base, p[start:end])
		})
	}
	fs.delegates.run(fns)
}

// copyOutRange is the synchronous read loop over one byte range. An
// out-of-range or zero index entry is a hole and reads as zeroes (a
// truncate-grown file's size can exceed its published index).
func (fs *FS) copyOutRange(st *fileState, off int64, p []byte) {
	arr := st.blockArr()
	read := 0
	for read < len(p) {
		bi := int((off + int64(read)) / layout.PageSize)
		bo := (off + int64(read)) % layout.PageSize
		n := layout.PageSize - int(bo)
		if n > len(p)-read {
			n = len(p) - read
		}
		var b uint64
		if bi < len(arr) {
			b = arr[bi].Load()
		}
		if b != 0 {
			if h := fs.opts.Hooks.FileReadBlock; h != nil {
				h() // reclamation window: pointer loaded, page not yet read
			}
			fs.dev.Read(int64(b*layout.PageSize)+bo, p[read:read+n])
		} else {
			for i := read; i < read+n; i++ {
				p[i] = 0
			}
		}
		read += n
	}
}

// delegatedCopyIn writes p at off across the pool, flushing each chunk.
// Caller holds the file write lock and has already ensured every target
// block is allocated (so workers never touch shared state). Workers run
// with no batch (nil): a Batch is single-threaded, so they flush at the
// call site; the coordinator's barrier after the join orders the lot.
func (fs *FS) delegatedCopyIn(st *fileState, off int64, p []byte) {
	const chunk = 64 * layout.PageSize
	var fns []func()
	for done := 0; done < len(p); done += chunk {
		start, end := done, done+chunk
		if end > len(p) {
			end = len(p)
		}
		base := off + int64(start)
		fns = append(fns, func() {
			fs.copyInRange(nil, st, base, p[start:end])
		})
	}
	fs.delegates.run(fns)
}

// copyInRange stores one byte range into pre-allocated blocks. Line-
// aligned whole-line spans are streamed through the batch (non-temporal:
// no write-back at all, durable at the next barrier); ragged edges fall
// back to store+flush. With b nil (delegate workers) every span flushes
// eagerly on the device.
func (fs *FS) copyInRange(b *pmem.Batch, st *fileState, off int64, p []byte) {
	arr := st.blockArr()
	written := 0
	for written < len(p) {
		bi := int((off + int64(written)) / layout.PageSize)
		bo := (off + int64(written)) % layout.PageSize
		n := layout.PageSize - int(bo)
		if n > len(p)-written {
			n = len(p) - written
		}
		dst := int64(arr[bi].Load()*layout.PageSize) + bo
		switch {
		case b != nil && dst%pmem.LineSize == 0 && n%pmem.LineSize == 0:
			b.WriteStream(dst, p[written:written+n])
		case b != nil:
			fs.dev.Write(dst, p[written:written+n])
			b.Flush(dst, int64(n))
		default:
			fs.dev.Write(dst, p[written:written+n])
			fs.dev.Flush(dst, int64(n))
		}
		written += n
	}
}
