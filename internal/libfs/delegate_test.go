package libfs

import (
	"bytes"
	"testing"

	"arckfs/internal/layout"
)

// TestDelegatedIORoundTrip pushes requests across the delegation
// threshold in both directions and checks byte-exact round trips,
// including unaligned offsets and pre-existing data around the edges.
func TestDelegatedIORoundTrip(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	if err := w.Create("/big"); err != nil {
		t.Fatal(err)
	}
	fd, _ := w.Open("/big")

	// Seed an edge region so partial-coverage zeroing is observable.
	edge := []byte("EDGE-MARKER")
	if _, err := w.WriteAt(fd, edge, 100); err != nil {
		t.Fatal(err)
	}

	blob := make([]byte, DelegationThreshold+3*layout.PageSize+17)
	for i := range blob {
		blob[i] = byte(i*31 + 7)
	}
	const off = 5000 // unaligned, past the edge marker
	if n, err := w.WriteAt(fd, blob, off); err != nil || n != len(blob) {
		t.Fatalf("delegated write: %d, %v", n, err)
	}
	got := make([]byte, len(blob))
	if n, err := w.ReadAt(fd, got, off); err != nil || n != len(blob) {
		t.Fatalf("delegated read: %d, %v", n, err)
	}
	if !bytes.Equal(got, blob) {
		for i := range blob {
			if got[i] != blob[i] {
				t.Fatalf("mismatch at %d: %d != %d", i, got[i], blob[i])
			}
		}
	}
	// The pre-existing edge survived, and the gap reads as zeros.
	check := make([]byte, len(edge))
	w.ReadAt(fd, check, 100)
	if !bytes.Equal(check, edge) {
		t.Fatalf("edge clobbered: %q", check)
	}
	gap := make([]byte, 64)
	w.ReadAt(fd, gap, 256)
	for i, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte %d = %d", i, b)
		}
	}
	// And the result is ordinary verifiable state.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll: %v", err)
	}
}

// TestDelegatedReadConcurrentWithSmallIO mixes delegated and inline
// paths across goroutines on distinct files.
func TestDelegatedReadConcurrentWithSmallIO(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	setup := th(t, fs)
	setup.Create("/a")
	setup.Create("/b")
	big := make([]byte, DelegationThreshold)
	for i := range big {
		big[i] = 0xAB
	}
	fdA, _ := setup.Open("/a")
	if _, err := setup.WriteAt(fdA, big, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		fd, err := w.Open("/a")
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, DelegationThreshold)
		for i := 0; i < 10; i++ {
			if _, err := w.ReadAt(fd, buf, 0); err != nil {
				done <- err
				return
			}
			if buf[0] != 0xAB || buf[len(buf)-1] != 0xAB {
				done <- bytes.ErrTooLarge // any sentinel error
				return
			}
		}
		done <- nil
	}()
	go func() {
		w := fs.NewThread(2).(*Thread)
		defer w.Detach()
		fd, err := w.Open("/b")
		if err != nil {
			done <- err
			return
		}
		small := []byte("tiny")
		for i := 0; i < 200; i++ {
			if _, err := w.WriteAt(fd, small, int64(i*8)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
