package libfs

import (
	"sort"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/telemetry"
)

// ensureCommitted makes the kernel's view of mi a committed shadow inode,
// committing the parent chain as needed (LibFS Rule 1: an inode can only
// be committed once its parent's verification has connected it to the
// root).
func (fs *FS) ensureCommitted(t *Thread, mi *minode) error {
	// Ownership transfer: nothing of this thread's may still sit in the
	// write-combining queue when the kernel snapshots core state.
	// Operations end on an epoch boundary, so this is normally a no-op.
	t.pb.Drain()
	if mi.ino == layout.RootIno {
		return nil
	}
	if mi.fresh.Load() {
		pIno := mi.parent.Load()
		pmi, err := fs.getMinode(t, pIno, false)
		if err != nil {
			return err
		}
		if err := fs.ensureCommitted(t, pmi); err != nil {
			return err
		}
		// Committing the parent directory verifies its new entries and
		// creates pending shadows for every fresh child, mi included.
		if err := fs.commitCrossing(t, pIno); err != nil {
			return err
		}
		fs.markChildrenKnown(pIno)
	}
	// Pending -> committed (or a re-verification of an already committed
	// inode, which also refreshes the kernel's baseline snapshot).
	return fs.commitCrossing(t, mi.ino)
}

// commitCrossing performs a Commit syscall with span attribution.
func (fs *FS) commitCrossing(t *Thread, ino uint64) error {
	begin := t.crossStart()
	err := fs.ctrl.CommitObserved(fs.app, ino, t.sink())
	t.crossEnd(telemetry.EvCommit, begin)
	return err
}

// markChildrenKnown clears the fresh flag on every cached minode whose
// parent is dirIno: the kernel has now seen them, so their resources are
// no longer locally recyclable.
func (fs *FS) markChildrenKnown(dirIno uint64) {
	fs.mtab.Range(func(_, v any) bool {
		mi := v.(*minode)
		if mi.parent.Load() == dirIno {
			mi.fresh.Store(false)
		}
		return true
	})
}

// CommitInode runs the commit protocol for path's inode, making it (and
// any fresh ancestors) verified kernel state without giving up ownership.
func (fs *FS) CommitInode(t *Thread, path string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpCommit), &err)
	mi, err := t.resolve(path)
	if err != nil {
		return err
	}
	return fs.ensureCommitted(t, mi)
}

// ReleaseInode voluntarily returns ino to the kernel.
//
// ArckFS+ (§4.3 patch): the releasing thread first acquires the inode's
// write lock and every bucket lock of its hash table, so no other thread
// can be mid-operation when the mapping is torn down; the auxiliary state
// and the locks are retained, and readers keep using the cached in-memory
// inode afterwards.
//
// ArckFS as shipped: the release happens with no synchronization at all —
// another thread inside an operation dereferences the unmapped core
// state and crashes (the simulated bus error).
func (fs *FS) ReleaseInode(ino uint64) error {
	v, ok := fs.mtab.Load(ino)
	if !ok {
		return fs.ctrl.Release(fs.app, ino)
	}
	mi := v.(*minode)
	if mi.released.Load() {
		return nil
	}
	if fs.opts.Bugs.Has(BugReleaseUnsync) {
		// No quiescing: concurrent threads crash on the revoked mapping.
		fs.mtab.Delete(ino)
		err := fs.ctrl.Release(fs.app, ino)
		fs.markChildrenKnown(ino)
		return err
	}
	mi.lock.Lock()
	var unlockAll func()
	if mi.dir != nil {
		unlockAll = mi.dir.ht.LockAll()
	}
	var err error
	if fs.opts.NoLeases {
		err = fs.ctrl.Release(fs.app, ino)
	} else {
		// Leased release: the kernel verifies and applies exactly as a
		// plain release, but keeps the mapping alive in a dormant state
		// so a later reacquire can win it back without a crossing. The
		// returned mapping also covers inodes this LibFS built itself
		// and never mapped (mi.mapping == nil until now).
		var m *kernel.Mapping
		m, err = fs.ctrl.ReleaseLeased(fs.app, ino)
		if err == nil && m != nil {
			mi.mapping = m
		}
	}
	mi.released.Store(true)
	if unlockAll != nil {
		unlockAll()
	}
	mi.lock.Unlock()
	if mi.typ == layout.TypeDir {
		fs.markChildrenKnown(ino)
	}
	return err
}

// ReleaseAll returns every held inode to the kernel in Rule-1-compatible
// order (parents before children, so fresh children become pending at
// their parent's release and commit at their own). It returns the first
// error encountered, after attempting everything.
func (fs *FS) ReleaseAll() error {
	// Quiesce the data plane before handing ownership back: retired
	// pages and inode numbers parked behind grace periods land in the
	// allocator pools now, so resource reuse from here on is identical
	// under both read disciplines — the crashmc equivalence gate compares
	// whole device images, which makes allocation order part of the
	// invariant, not just the persist schedule.
	fs.dom.Barrier()
	type ent struct {
		mi    *minode
		depth int
	}
	var ents []ent
	fs.mtab.Range(func(_, v any) bool {
		mi := v.(*minode)
		if mi.released.Load() {
			return true
		}
		depth := 0
		for cur := mi.ino; cur != layout.RootIno && depth < 1024; depth++ {
			if pv, ok := fs.mtab.Load(cur); ok {
				cur = pv.(*minode).parent.Load()
			} else {
				break
			}
		}
		ents = append(ents, ent{mi, depth})
		return true
	})
	// Total order: depth ties broken by inode number, because mtab is a
	// sync.Map whose Range order varies run to run — and release order
	// decides the persist schedule the crash-state enumeration sees, so
	// it must be deterministic.
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].depth != ents[j].depth {
			return ents[i].depth < ents[j].depth
		}
		return ents[i].mi.ino < ents[j].mi.ino
	})
	var firstErr error
	for _, e := range ents {
		if err := fs.ReleaseInode(e.mi.ino); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
