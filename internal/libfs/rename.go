package libfs

import (
	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/telemetry"
)

// Rename moves oldPath to newPath. The destination must not exist.
//
// ArckFS+ follows the paper's multi-inode rules for directory relocation:
// the global rename lease and a descendant check (§4.6), and commits of
// the new parent both before (Rule 3) and after (Rule 2) the move so the
// verifier can tell the relocation from a deletion (§4.1). ArckFS as
// shipped performs only the persistent and auxiliary moves.
func (t *Thread) Rename(oldPath, newPath string) (err error) {
	defer t.endOp(t.beginOp(fsapi.OpRename), &err)
	fs := t.fs
	oldDir, oldName, err := t.resolveParent(oldPath, true)
	if err != nil {
		return err
	}
	newDir, newName, err := t.resolveParent(newPath, true)
	if err != nil {
		return err
	}
	childIno, _, ok, err := fs.lookupInDir(t, oldDir, oldName)
	if err != nil {
		return err
	}
	if !ok {
		return fsapi.ErrNotExist
	}
	// A cross-directory move rewrites the child's inode record, so hold
	// the child with write intent (re-acquiring it if released).
	child, err := fs.getMinode(t, childIno, true)
	if err != nil {
		return err
	}
	isDir := child.typ == layout.TypeDir
	crossDir := oldDir.ino != newDir.ino

	protectedDirMove := isDir && crossDir && !fs.opts.Bugs.Has(BugNoCycleCheck)
	if protectedDirMove {
		// §4.6 patch, case 1: serialize cross-directory directory renames
		// through the kernel's global lease.
		begin := t.crossStart()
		fs.ctrl.RenameLockAcquire(fs.app)
		t.crossEnd(telemetry.EvRenameLockAcquire, begin)
		defer fs.ctrl.RenameLockRelease(fs.app)
		// §4.6 patch, case 2: refuse renaming a directory into itself or
		// one of its own descendants.
		if fs.isAncestor(child, newDir) {
			return fsapi.ErrInval
		}
	}
	if h := fs.opts.Hooks.RenameAfterCheck; h != nil {
		h() // §4.6 window: checks done, moves not yet performed
	}

	verifiedReloc := isDir && crossDir && !fs.opts.Bugs.Has(BugRenameVerify)
	if verifiedReloc {
		// Rule 3: commit the new parent before performing the rename (it
		// may be newly created; the commit chain connects it to the
		// root).
		if err := fs.ensureCommitted(t, newDir); err != nil {
			return err
		}
		// The child must be known to the kernel for the relocation to be
		// verifiable.
		if err := fs.ensureCommitted(t, child); err != nil {
			return err
		}
		if err := fs.ensureCommitted(t, oldDir); err != nil {
			return err
		}
	}

	// The persistent and auxiliary moves.
	if _, err := fs.insertEntry(t, newDir, childIno, newName); err != nil {
		return err
	}
	if _, err := fs.removeEntry(oldDir, oldName); err != nil {
		// Roll the insertion back to keep aux state consistent.
		_, _ = fs.removeEntry(newDir, newName)
		return err
	}
	if crossDir {
		fs.rewriteParent(t, child, newDir.ino)
	}

	if verifiedReloc {
		// Rule 2 (§4.1 patch): commit the new parent before the old
		// parent can be committed or released; this is the per-operation
		// verification that advances the child's shadow parent pointer.
		if err := fs.commitCrossing(t, newDir.ino); err != nil {
			return err
		}
	}
	return nil
}

// rewriteParent updates child's inode-record parent pointer and persists
// it (streamed: the whole record rewrites in one epoch).
func (fs *FS) rewriteParent(t *Thread, child *minode, newParent uint64) {
	in, ok, _ := layout.ReadInode(fs.dev, fs.geo, child.ino)
	if !ok {
		return
	}
	in.Parent = newParent
	rec := layout.EncodeInode(&in)
	t.pb.WriteStream(layout.InodeOff(fs.geo, child.ino), rec[:])
	t.pb.Barrier()
	child.parent.Store(newParent)
}

// isAncestor reports whether anc is node or one of node's ancestors in
// this LibFS's view of the tree.
func (fs *FS) isAncestor(anc, node *minode) bool {
	cur := node.ino
	for depth := 0; depth < 512; depth++ {
		if cur == anc.ino {
			return true
		}
		if cur == layout.RootIno {
			return false
		}
		if v, ok := fs.mtab.Load(cur); ok {
			cur = v.(*minode).parent.Load()
			continue
		}
		in, ok, _ := layout.ReadInode(fs.dev, fs.geo, cur)
		if !ok {
			return false
		}
		cur = in.Parent
	}
	// Depth bound exceeded: an existing cycle; refuse the operation.
	return true
}
