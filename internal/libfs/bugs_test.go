package libfs

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/pmem"
)

// This file reproduces every bug of the paper's Table 1 under the ArckFS
// configuration and shows the matching ArckFS+ patch fixes it, using the
// same deterministic interleaving for both.

// --- §4.1 Cross-directory rename failure -----------------------------------

func TestBug41CrossDirRenameFailure(t *testing.T) {
	fs := newFS(t, BugRenameVerify, nil) // original verifier + rule-less LibFS
	w := th(t, fs)
	w.Mkdir("/a")
	w.Mkdir("/b")
	w.Mkdir("/a/sub")
	w.Create("/a/sub/inner")
	// Commit and release the whole tree so /a's verified state includes
	// sub — renames of never-verified state are trivially invisible.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rename("/a/sub", "/b/sub"); err != nil {
		t.Fatalf("local rename: %v", err)
	}
	// The relocation verifies as a deletion of a non-empty directory on
	// the old parent: releasing the tree fails.
	err := fs.ReleaseAll()
	if !kernel.IsVerificationError(err) {
		t.Fatalf("ReleaseAll = %v, want verification failure (the §4.1 bug)", err)
	}
	if !strings.Contains(err.Error(), "I3") {
		t.Fatalf("unexpected reason: %v", err)
	}
}

func TestBug41FixedInPlus(t *testing.T) {
	fs := newFS(t, BugsNone, nil)
	w := th(t, fs)
	w.Mkdir("/a")
	w.Mkdir("/b")
	w.Mkdir("/a/sub")
	w.Create("/a/sub/inner")
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rename("/a/sub", "/b/sub"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll = %v, want success", err)
	}
}

// --- §4.2 Partially persisted dentry and inode ------------------------------

// crashDuringCreate runs a create up to the §4.2 crash window and
// materializes the most adversarial crash image: only the commit marker's
// cache line persists out of the pending write-backs.
func crashDuringCreate(t *testing.T, bugs Bugs) []byte {
	t.Helper()
	var img []byte
	hooks := &Hooks{}
	dev := pmem.New(64<<20, nil)
	mode := kernel.Options{InodeCap: 1 << 12}
	ctrl, err := kernel.Format(dev, mode)
	if err != nil {
		t.Fatal(err)
	}
	fs := New(ctrl, ctrl.RegisterApp(0, 0), Options{Bugs: bugs, Hooks: hooks})
	w := th(t, fs)

	// Track from a consistent baseline that already contains a committed
	// file, so the image is a realistic mid-workload crash.
	if err := w.Create("/before"); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	dev.EnableTracking()

	name := "/victim-" + strings.Repeat("x", 120) // spans several cache lines
	hooks.CreateBeforeMarkerFence = func() {
		if img != nil {
			return // only the victim's create
		}
		// Find the in-flight record: its marker line is pending.
		// The adversarial crash persists exactly the flushed marker
		// lines and drops everything else pending.
		var markerLines []int64
		for _, l := range dev.DirtyLines() {
			markerLines = append(markerLines, l)
		}
		// Keep only lines whose content change includes a nonzero
		// nameLen at some record... simpler: keep the line containing
		// the marker of the record we just wrote. We do not know the
		// ref here, so keep lines one at a time and pick the image
		// where a committed-but-torn dentry appears.
		img = dev.CrashImage(pickMarkerOnly(dev))
	}
	if err := w.Create(name); err != nil {
		t.Fatal(err)
	}
	if img == nil {
		t.Fatal("crash hook never fired")
	}
	return img
}

// pickMarkerOnly persists, among pending lines, exactly those whose
// latest pending content contains a plausible committed dentry marker —
// an adversary aiming for the §4.2 signature. Implemented simply: keep
// every line whose content changed only in bytes 14..15 of some 8-aligned
// record... in practice the marker line is the one whose pending versions
// include the CommitDentry store; we approximate by keeping lines whose
// final version differs from the first version in at most 2 bytes.
func pickMarkerOnly(dev *pmem.Device) pmem.CrashPolicy {
	return func(lineOff int64, versions int) int {
		// The marker store is always the last store to its line in the
		// create sequence, and that line was also written earlier in
		// step 1 (body write with marker=0). Body-only lines see a
		// single burst of stores and then a flush with no later store.
		// We persist only lines whose store history has at least two
		// entries (body write + marker write = the marker line);
		// pure-body lines (one batch) are dropped.
		if versions >= 2 {
			return versions
		}
		return 0
	}
}

func TestBug42PartialPersistOnCrash(t *testing.T) {
	img := crashDuringCreate(t, BugMissingFence)
	// Recovery finds the §4.2 signature: a committed dentry whose body
	// was torn.
	dev := pmem.Restore(img, nil)
	_, rep, err := kernel.Mount(dev, kernel.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptDentries == 0 {
		t.Fatalf("expected a partially persisted dentry, report: %s", rep)
	}
}

func TestBug42FixedByFence(t *testing.T) {
	img := crashDuringCreate(t, BugsNone)
	dev := pmem.Restore(img, nil)
	_, rep, err := kernel.Mount(dev, kernel.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptDentries != 0 {
		t.Fatalf("fence did not prevent torn dentries: %s", rep)
	}
	// The in-flight create either fully committed (then dropped as an
	// uncommitted inode, a dangling entry) or never appeared — both are
	// consistent outcomes; corruption is impossible.
}

// --- §4.3 Incorrect synchronization of inode sharing -------------------------

func runBug43Interleaving(t *testing.T, bugs Bugs) error {
	t.Helper()
	inWrite := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hooks := &Hooks{}
	fs := newFS(t, bugs, hooks)
	setup := th(t, fs)
	if err := setup.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	// Commit everything so /dir is ordinary committed, owned state.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	// Arm the window only after setup: it should catch the victim create.
	hooks.DirWriteInProgress = func() {
		if fired.CompareAndSwap(false, true) {
			close(inWrite)
			<-resume
		}
	}
	dirIno := func() uint64 {
		st, err := setup.Stat("/dir")
		if err != nil {
			t.Fatal(err)
		}
		return st.Ino
	}()

	errc := make(chan error, 1)
	go func() {
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		errc <- w.Create("/dir/newfile") // pauses inside the directory write
	}()

	<-inWrite
	// Another thread voluntarily releases the directory while the write
	// is in flight.
	releaseDone := make(chan error, 1)
	go func() {
		releaseDone <- fs.ReleaseInode(dirIno)
	}()
	if bugs.Has(BugReleaseUnsync) {
		// ArckFS: the release proceeds immediately and unmaps.
		if err := <-releaseDone; err != nil {
			t.Fatalf("release: %v", err)
		}
		close(resume)
	} else {
		// ArckFS+: the release blocks on the directory's locks until the
		// writer finishes.
		select {
		case err := <-releaseDone:
			t.Fatalf("release completed while a writer was inside: %v", err)
		default:
		}
		close(resume)
		if err := <-releaseDone; err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	return <-errc
}

func TestBug43ReleaseUnsyncCrash(t *testing.T) {
	err := runBug43Interleaving(t, BugReleaseUnsync)
	if !errors.Is(err, fsapi.ErrBusError) {
		t.Fatalf("concurrent create = %v, want simulated bus error", err)
	}
}

func TestBug43FixedByLockedRelease(t *testing.T) {
	if err := runBug43Interleaving(t, BugsNone); err != nil {
		t.Fatalf("concurrent create = %v, want success", err)
	}
}

// TestBug43ReadAfterReleaseCachedVsCrash: after a voluntary release,
// ArckFS+ serves reads from retained auxiliary state (re-acquiring
// transparently for data), while ArckFS leaves stale references that
// dereference the unmapped core state.
func TestBug43ReadAfterReleaseCachedVsCrash(t *testing.T) {
	run := func(bugs Bugs) error {
		fs := newFS(t, bugs, nil)
		w := th(t, fs)
		if err := w.Create("/f"); err != nil {
			t.Fatal(err)
		}
		fd, _ := w.Open("/f")
		if _, err := w.WriteAt(fd, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.ReleaseAll(); err != nil {
			t.Fatal(err)
		}
		// Re-open so the file is held through a real kernel mapping.
		fd2, err := w.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		st, err := w.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		// Voluntarily release the file while fd2 is still in use.
		if err := fs.ReleaseInode(st.Ino); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		_, rerr := w.ReadAt(fd2, buf, 0)
		return rerr
	}
	if err := run(BugReleaseUnsync); !errors.Is(err, fsapi.ErrBusError) {
		t.Fatalf("ArckFS stale read = %v, want simulated bus error", err)
	}
	if err := run(BugsNone); err != nil {
		t.Fatalf("ArckFS+ read after release = %v, want success", err)
	}
}

// --- §4.4 Inconsistent core and auxiliary states -----------------------------

func TestBug44AuxCoreRaceSegfault(t *testing.T) {
	inWindow := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hooks := &Hooks{}
	fs := newFS(t, BugAuxCoreRace, hooks)
	setup := th(t, fs)
	setup.Mkdir("/d")
	hooks.CreateBetweenAuxAndCore = func() {
		if fired.CompareAndSwap(false, true) {
			close(inWindow)
			<-resume
		}
	}

	createErr := make(chan error, 1)
	go func() {
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		createErr <- w.Create("/d/x")
	}()
	<-inWindow
	// The name is visible in auxiliary state but its core record does
	// not exist yet; a concurrent unlink dereferences it.
	w2 := fs.NewThread(2).(*Thread)
	defer w2.Detach()
	err := w2.Unlink("/d/x")
	close(resume)
	if cerr := <-createErr; cerr != nil {
		t.Fatalf("create: %v", cerr)
	}
	if !errors.Is(err, fsapi.ErrSegfault) {
		t.Fatalf("concurrent unlink = %v, want simulated segfault", err)
	}
}

func TestBug44FixedByExtendedCriticalSection(t *testing.T) {
	// Same workload, patched mode: the §4.4 window does not exist (the
	// hook is unreachable), so run the full concurrent churn and require
	// zero faults.
	fs := newFS(t, BugsNone, &Hooks{
		CreateBetweenAuxAndCore: func() {
			panic("unreachable: §4.4 window must not exist in ArckFS+")
		},
	})
	setup := th(t, fs)
	setup.Mkdir("/d")
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		for i := 0; i < 300; i++ {
			if err := w.Create("/d/x"); err != nil && !errors.Is(err, fsapi.ErrExist) {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		w := fs.NewThread(2).(*Thread)
		defer w.Detach()
		for i := 0; i < 300; i++ {
			if err := w.Unlink("/d/x"); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// --- §4.5 Incorrect synchronization for directory bucket ---------------------

func runBug45Interleaving(t *testing.T, bugs Bugs, strict bool) error {
	t.Helper()
	inTraverse := make(chan struct{})
	resume := make(chan struct{})
	var fired atomic.Bool
	hooks := &Hooks{}
	fs := newFSStrict(t, bugs, hooks, strict)
	setup := th(t, fs)
	if err := setup.Create("/victim"); err != nil {
		t.Fatal(err)
	}
	// CAS, not sync.Once: later traversals (the writer's own lookups)
	// must pass straight through while the reader is parked.
	hooks.BucketTraverse = func() {
		if fired.CompareAndSwap(false, true) {
			close(inTraverse)
			<-resume
		}
	}

	errc := make(chan error, 1)
	go func() {
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		_, err := w.Open("/victim") // reader pauses mid-bucket-traversal
		errc <- err
	}()
	<-inTraverse
	// Writer removes the entry and immediately recycles its memory.
	w2 := fs.NewThread(2).(*Thread)
	defer w2.Detach()
	if err := w2.Unlink("/victim"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if err := w2.Create("/recycler"); err != nil {
		t.Fatalf("create: %v", err)
	}
	close(resume)
	return <-errc
}

func TestBug45LocklessReaderSegfault(t *testing.T) {
	err := runBug45Interleaving(t, BugLocklessBucketRead, true)
	if !errors.Is(err, fsapi.ErrSegfault) {
		t.Fatalf("lockless open = %v, want simulated segfault", err)
	}
}

func TestBug45FixedByRCU(t *testing.T) {
	err := runBug45Interleaving(t, BugsNone, true)
	// The reader raced with the unlink: either outcome (found before the
	// delete, or ErrNotExist after) is fine — but no fault.
	if err != nil && !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("RCU open = %v, want success or ErrNotExist", err)
	}
}

// --- §4.6 Directory cycle -----------------------------------------------------

func runBug46ConcurrentRenames(t *testing.T, bugs Bugs) (*FS, error, error) {
	t.Helper()
	barrier := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1) // only the buggy mode parks both; see below
	hooks := &Hooks{}
	var fs *FS
	if bugs.Has(BugNoCycleCheck) {
		// Park both renames after their (absent) checks so the moves
		// interleave — the paper's case (1).
		var mu sync.Mutex
		waiting := 0
		hooks.RenameAfterCheck = func() {
			mu.Lock()
			waiting++
			w := waiting
			mu.Unlock()
			if w == 1 {
				<-barrier // first rename waits for the second to arrive
			} else {
				close(barrier)
			}
		}
	}
	fs = newFS(t, bugs, hooks)
	setup := th(t, fs)
	for _, p := range []string{"/a", "/a/b", "/c", "/c/d"} {
		if err := setup.Mkdir(p); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		w := fs.NewThread(1).(*Thread)
		defer w.Detach()
		err1 = w.Rename("/c", "/a/b/c")
	}()
	go func() {
		defer wg.Done()
		w := fs.NewThread(2).(*Thread)
		defer w.Detach()
		err2 = w.Rename("/a", "/c/d/a")
	}()
	wg.Wait()
	entered.Done()
	return fs, err1, err2
}

func TestBug46DirectoryCycle(t *testing.T) {
	fs, err1, err2 := runBug46ConcurrentRenames(t, BugNoCycleCheck|BugRenameVerify)
	if err1 != nil || err2 != nil {
		t.Fatalf("renames: %v / %v", err1, err2)
	}
	// Both subtrees left the root: a and c reference each other.
	w := th(t, fs)
	names, err := w.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "a" || n == "c" {
			t.Fatalf("root still contains %q; no cycle formed", n)
		}
	}
	// The parent chains of a and c now loop: each is its own ancestor.
	aIno := mustIno(t, fs, "a")
	cIno := mustIno(t, fs, "c")
	a := loadMinode(fs, aIno)
	c := loadMinode(fs, cIno)
	if a == nil || c == nil {
		t.Fatal("minodes missing")
	}
	if !fs.isAncestor(a, c) || !fs.isAncestor(c, a) {
		t.Fatal("expected a and c to be mutual ancestors (a cycle)")
	}
}

func TestBug46FixedByLockAndDescendantCheck(t *testing.T) {
	fs, err1, err2 := runBug46ConcurrentRenames(t, BugsNone)
	// Exactly one rename succeeds; the other is refused (cycle) once the
	// first completes.
	okCount := 0
	for _, err := range []error{err1, err2} {
		if err == nil {
			okCount++
		} else if !errors.Is(err, fsapi.ErrInval) && !errors.Is(err, fsapi.ErrNotExist) {
			// ErrInval: the descendant check refused the cycle.
			// ErrNotExist: the winner already moved the loser's source.
			t.Fatalf("unexpected rename error: %v", err)
		}
	}
	if okCount != 1 {
		t.Fatalf("renames succeeded: %d, want exactly 1 (%v / %v)", okCount, err1, err2)
	}
	// The tree is intact and verifiable.
	if err := fs.ReleaseAll(); err != nil {
		t.Fatalf("ReleaseAll: %v", err)
	}
}

// mustIno finds a (possibly detached) minode's ino by scanning mtab for
// the directory created as /<name>.
func mustIno(t *testing.T, fs *FS, name string) uint64 {
	t.Helper()
	var found uint64
	fs.mtab.Range(func(k, v any) bool {
		mi := v.(*minode)
		_ = mi
		return true
	})
	// Names are not stored in minodes; recover the ino from the other
	// dir's entries instead: a is under /c/d, c is under /a/b.
	w := th(t, fs)
	for _, p := range []string{"/a/b/" + name, "/c/d/" + name} {
		if st, err := w.Stat(p); err == nil {
			return st.Ino
		}
	}
	if found == 0 {
		// Fall back: scan every directory table.
		fs.mtab.Range(func(k, v any) bool {
			mi := v.(*minode)
			if mi.dir == nil {
				return true
			}
			mi.dir.ht.Range(func(n string, ino, _ uint64) bool {
				if n == name {
					found = ino
					return false
				}
				return true
			})
			return found == 0
		})
	}
	if found == 0 {
		t.Fatalf("ino of %q not found", name)
	}
	return found
}

func loadMinode(fs *FS, ino uint64) *minode {
	if v, ok := fs.mtab.Load(ino); ok {
		return v.(*minode)
	}
	return nil
}
