// Package costmodel injects calibrated latencies into simulated hardware
// and kernel operations.
//
// The reproduction runs on DRAM inside a single process, while the paper's
// experiments run on Intel Optane persistent memory with LibFSes issuing
// real system calls. To preserve the *relative* performance shapes the
// paper reports (direct userspace access vs. syscall-gated kernel file
// systems, flush/fence overhead of crash consistency, per-operation
// verification cost), each simulated primitive charges a configurable
// number of nanoseconds using a calibrated busy-wait.
//
// A nil *Model, or a Model with a zero field, charges nothing for that
// primitive, so unit tests run at full speed.
package costmodel

import (
	"sync/atomic"
	"time"
)

// Model holds per-primitive latencies in nanoseconds. The zero value
// charges nothing.
type Model struct {
	// SyscallNS is charged for every crossing into the simulated kernel
	// (acquire, release, page grants, kernel file system operations).
	SyscallNS int64
	// FlushNS is charged per cache-line write-back (clwb).
	FlushNS int64
	// FenceNS is charged per persist barrier (sfence).
	FenceNS int64
	// PMWriteNS is charged per cache line stored to persistent memory,
	// modeling Optane's higher-than-DRAM write latency.
	PMWriteNS int64
	// PMReadNS is charged per cache line loaded from persistent memory.
	// Optane reads are closer to DRAM, so this is typically small or zero.
	PMReadNS int64
	// NTStoreNS is charged per cache line written with non-temporal
	// (movnt-style) streaming stores. A streaming store replaces a
	// store + clwb pair, so it is priced above a plain store but below
	// PMWriteNS+FlushNS.
	NTStoreNS int64
	// VerifyDentryNS is charged by the integrity verifier per directory
	// entry inspected.
	VerifyDentryNS int64
	// VerifyPageNS is charged by the integrity verifier per file-system
	// page walked (block maps, log pages).
	VerifyPageNS int64
	// MapNS / UnmapNS are charged when the kernel maps or unmaps an
	// inode's core state into a LibFS (page-table manipulation).
	MapNS   int64
	UnmapNS int64
	// NUMARemoteNS is charged per page the allocator steals from a
	// stripe belonging to a different NUMA node group: remote-socket PM
	// access pays an interconnect round trip on top of the media
	// latency.
	NUMARemoteNS int64
}

// Zero charges nothing anywhere; useful to name intent at call sites.
var Zero = &Model{}

// Default approximates the relative costs on the paper's testbed
// (Xeon Gold 6248R + Optane 100 series, Linux 5.13): a trap-and-VFS
// crossing costs on the order of a microsecond, clwb+sfence pairs cost
// on the order of a hundred nanoseconds, and verification costs tens of
// nanoseconds per entry.
func Default() *Model {
	return &Model{
		SyscallNS:      900,
		FlushNS:        70,
		FenceNS:        30,
		PMWriteNS:      60,
		PMReadNS:       0,
		NTStoreNS:      80,
		VerifyDentryNS: 40,
		VerifyPageNS:   120,
		MapNS:          400,
		UnmapNS:        300,
		NUMARemoteNS:   130,
	}
}

// spinsPerNS is the calibrated number of busy-wait loop iterations per
// nanosecond, stored as iterations<<16 to keep fractional precision.
var spinsPerNSx65536 atomic.Int64

func init() {
	calibrate()
}

//go:noinline
func spinLoop(n int64) {
	for i := int64(0); i < n; i++ {
		spinSink++
	}
}

var spinSink int64

func calibrate() {
	const probe = 1 << 16
	best := int64(1 << 62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		spinLoop(probe)
		el := time.Since(start).Nanoseconds()
		if el > 0 && el < best {
			best = el
		}
	}
	if best <= 0 {
		best = 1
	}
	v := probe * 65536 / best
	if v < 65536 {
		v = 65536 // at least one iteration per ns
	}
	spinsPerNSx65536.Store(v)
}

// Spin busy-waits for approximately ns nanoseconds. It never sleeps, so it
// models on-CPU latency (a blocked hardware operation), not scheduling.
func Spin(ns int64) {
	if ns <= 0 {
		return
	}
	spinLoop(ns * spinsPerNSx65536.Load() >> 16)
}

// Syscall charges one kernel crossing.
func (m *Model) Syscall() {
	if m != nil {
		Spin(m.SyscallNS)
	}
}

// Flush charges n cache-line write-backs.
func (m *Model) Flush(n int) {
	if m != nil && n > 0 {
		Spin(m.FlushNS * int64(n))
	}
}

// Fence charges one persist barrier.
func (m *Model) Fence() {
	if m != nil {
		Spin(m.FenceNS)
	}
}

// PMWrite charges a store of n bytes, rounded up to cache lines.
func (m *Model) PMWrite(n int) {
	if m != nil && m.PMWriteNS > 0 && n > 0 {
		Spin(m.PMWriteNS * int64((n+63)/64))
	}
}

// NTStore charges n cache lines of non-temporal stores.
func (m *Model) NTStore(n int) {
	if m != nil && m.NTStoreNS > 0 && n > 0 {
		Spin(m.NTStoreNS * int64(n))
	}
}

// PMRead charges a load of n bytes, rounded up to cache lines.
func (m *Model) PMRead(n int) {
	if m != nil && m.PMReadNS > 0 && n > 0 {
		Spin(m.PMReadNS * int64((n+63)/64))
	}
}

// VerifyDentries charges verification of n directory entries.
func (m *Model) VerifyDentries(n int) {
	if m != nil && n > 0 {
		Spin(m.VerifyDentryNS * int64(n))
	}
}

// VerifyPages charges verification of n pages.
func (m *Model) VerifyPages(n int) {
	if m != nil && n > 0 {
		Spin(m.VerifyPageNS * int64(n))
	}
}

// Map charges mapping an inode's core state into a LibFS.
func (m *Model) Map() {
	if m != nil {
		Spin(m.MapNS)
	}
}

// Unmap charges unmapping an inode's core state from a LibFS.
func (m *Model) Unmap() {
	if m != nil {
		Spin(m.UnmapNS)
	}
}

// NUMARemote charges the interconnect cost of pulling n pages from a
// remote NUMA node's stripe group.
func (m *Model) NUMARemote(n int) {
	if m != nil && m.NUMARemoteNS > 0 && n > 0 {
		Spin(m.NUMARemoteNS * int64(n))
	}
}
