package costmodel

import (
	"testing"
	"time"
)

func TestNilModelChargesNothing(t *testing.T) {
	var m *Model
	start := time.Now()
	for i := 0; i < 1000; i++ {
		m.Syscall()
		m.Flush(16)
		m.Fence()
		m.PMWrite(4096)
		m.PMRead(4096)
		m.VerifyDentries(100)
		m.VerifyPages(10)
		m.Map()
		m.Unmap()
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("nil model burned %v", el)
	}
}

func TestZeroModelChargesNothing(t *testing.T) {
	start := time.Now()
	for i := 0; i < 1000; i++ {
		Zero.Syscall()
		Zero.Fence()
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("zero model burned %v", el)
	}
}

func TestSpinApproximatesTarget(t *testing.T) {
	// Spin should take at least ~half the requested time and not be
	// wildly above it (scheduling noise allowed).
	const target = 2 * time.Millisecond
	best := time.Hour
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		Spin(target.Nanoseconds())
		if el := time.Since(start); el < best {
			best = el
		}
	}
	if best < target/4 {
		t.Fatalf("Spin(%v) returned after %v", target, best)
	}
	if best > target*20 {
		t.Fatalf("Spin(%v) took %v", target, best)
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	m := Default()
	if m.SyscallNS <= m.FenceNS {
		t.Fatal("a syscall must cost more than a fence")
	}
	if m.FlushNS <= 0 || m.VerifyDentryNS <= 0 || m.MapNS <= 0 {
		t.Fatal("default model has zero core costs")
	}
}

func TestChargesScaleWithCount(t *testing.T) {
	m := &Model{FlushNS: 200_000} // 0.2ms per line: measurable
	start := time.Now()
	m.Flush(1)
	one := time.Since(start)
	start = time.Now()
	m.Flush(10)
	ten := time.Since(start)
	if ten < one*3 {
		t.Fatalf("Flush(10)=%v not ≫ Flush(1)=%v", ten, one)
	}
}
