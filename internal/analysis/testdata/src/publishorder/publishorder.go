// Package publishorder exercises the store-ordering rules of the
// lock-free read path: a block pointer published through an indexed
// atomic store must be zeroed (or guarded by a published-size check)
// first, and no pointer may be published after the size store that
// exposes it. word stands in for the stubbed atomic.Uint64.
package publishorder

import "fixture/internal/pmem"

type word struct{ v uint64 }

func (w *word) Store(v uint64) { w.v = v }
func (w *word) Load() uint64   { return w.v }

type fileState struct{ size word }

// holeFill is the pre-fix bug: a recycled page's pointer stored into a
// hole below the published size without zeroing it first.
func holeFill(arr []word, p uint64) {
	arr[0].Store(p) // want "no dominating zeroing write"
}

// zeroedFill queues the zero before the publish: clean.
func zeroedFill(b *pmem.Batch, arr []word, p uint64) {
	b.ZeroStream(0, 4096)
	arr[0].Store(p)
}

// deviceZeroedFill uses the eager device-side zero: clean.
func deviceZeroedFill(dev *pmem.Device, arr []word, p uint64) {
	dev.Zero(0, 4096)
	arr[1].Store(p)
}

// sizeGuardedFill skips the zero only after comparing against the
// published size: a fully covered block at or beyond the size stays
// invisible until the size store, so the unzeroed publish is legal.
func sizeGuardedFill(arr []word, off, curSize uint64, p uint64) {
	if off >= curSize {
		arr[2].Store(p)
	}
}

// zeroConsumed: one zero covers one publish; the second needs its own.
func zeroConsumed(b *pmem.Batch, arr []word, p, q uint64) {
	b.ZeroStream(0, 4096)
	arr[0].Store(p)
	arr[1].Store(q) // want "no dominating zeroing write"
}

// unpublish stores the literal 0, which hides the slot: exempt.
func unpublish(arr []word) {
	arr[0].Store(0)
}

// construction fills a function-private array no reader can reach yet.
func construction(p uint64) []word {
	arr := make([]word, 8)
	arr[0].Store(p)
	return arr
}

// sizeLast publishes every pointer before the size store: clean.
func sizeLast(st *fileState, b *pmem.Batch, arr []word, p uint64) {
	b.ZeroStream(0, 4096)
	arr[0].Store(p)
	st.size.Store(8)
}

// publishAfterSize inverts the order: a reader that observes the new
// size must already observe every pointer below it.
func publishAfterSize(st *fileState, b *pmem.Batch, arr []word, p uint64) {
	st.size.Store(8)
	b.ZeroStream(0, 4096)
	arr[0].Store(p) // want "published after the size store"
}

// publishHelper zeroes then publishes: clean standalone, but its summary
// carries MayPublish for callers that have already stored the size.
func publishHelper(b *pmem.Batch, arr []word, p uint64) {
	b.ZeroStream(0, 4096)
	arr[3].Store(p)
}

func publishDeep(b *pmem.Batch, arr []word, p uint64) {
	publishHelper(b, arr, p)
}

// helperAfterSize hides the post-size publish one call down.
func helperAfterSize(st *fileState, b *pmem.Batch, arr []word, p uint64) {
	st.size.Store(1)
	publishHelper(b, arr, p) // want "can publish block pointers after the size store"
}

// helperAfterSizeDeep hides it two calls down.
func helperAfterSizeDeep(st *fileState, b *pmem.Batch, arr []word, p uint64) {
	st.size.Store(2)
	publishDeep(b, arr, p) // want "can publish block pointers after the size store"
}

type publisher interface {
	publish(arr []word, p uint64)
}

type wordPublisher struct{ b *pmem.Batch }

func (w *wordPublisher) publish(arr []word, p uint64) {
	w.b.ZeroStream(0, 4096)
	arr[2].Store(p)
}

// viaInterface resolves through the interface's single implementation.
func viaInterface(st *fileState, pub publisher, arr []word, p uint64) {
	st.size.Store(2)
	pub.publish(arr, p) // want "can publish block pointers after the size store"
}

// viaClosure reaches the publish through a bound function literal.
func viaClosure(st *fileState, b *pmem.Batch, arr []word, p uint64) {
	pub := func() {
		b.ZeroStream(0, 4096)
		arr[5].Store(p)
	}
	st.size.Store(1)
	pub() // want "can publish block pointers after the size store"
}
