// Package lockcycle seeds a two-class cycle in the whole-program
// acquisition graph: tail-then-index in one function, index-then-tail in
// another. Each function alone is a local ordering fact; only the graph
// view sees that together they deadlock under the right interleaving.
package lockcycle

import "fixture/internal/hlock"

type tailCursor struct{ mu hlock.SpinLock }

type dirState struct{ idxMu hlock.SpinLock }

// tailThenIdx follows the declared order (dirtail before diridx): clean
// pairwise, but it contributes the forward edge of the cycle.
func tailThenIdx(tc *tailCursor, ds *dirState) {
	tc.mu.Lock()
	ds.idxMu.Lock()
	ds.idxMu.Unlock()
	tc.mu.Unlock()
}

// idxThenTail closes the cycle: the pairwise inversion fires here, and
// the whole-program cycle report anchors at this same edge.
func idxThenTail(tc *tailCursor, ds *dirState) {
	ds.idxMu.Lock()
	tc.mu.Lock() // want "while holding|lock-order cycle among classes libfs/diridx, libfs/dirtail"
	tc.mu.Unlock()
	ds.idxMu.Unlock()
}
