// Package badallow holds malformed suppression directives; the driver
// test asserts the arcklint meta-findings programmatically (a want
// comment cannot share these lines — its text would parse as the
// directive's reason).
package badallow

import "fixture/internal/pmem"

// missingReason omits the mandatory justification.
func missingReason(dev *pmem.Device) {
	//arcklint:allow flushcheck
	dev.Store16(0, 1)
}

// unknownChecker names a checker that does not exist.
func unknownChecker(dev *pmem.Device) {
	//arcklint:allow nosuchchecker the checker name is misspelled
	dev.Store16(8, 1)
}

// valid is well-formed and suppresses its finding.
func valid(dev *pmem.Device) {
	//arcklint:allow flushcheck recovery rewrites this line before readers see it
	dev.Store16(16, 1)
}
