// Package epochdrain exercises the batch-drain rule: a pmem.Batch minted
// in a function must reach Barrier/Drain or be handed off on every
// return path, early error returns included.
package epochdrain

import "fixture/internal/pmem"

type holder struct{ pb *pmem.Batch }

type failure struct{}

func (failure) Error() string { return "failure" }

// leakyEarlyReturn drops the batch, lines still queued, on the error
// path.
func leakyEarlyReturn(dev *pmem.Device, fail bool) error {
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	b.Flush(0, 64)
	if fail {
		return failure{}
	}
	b.Barrier()
	return nil
}

// drainedEarlyReturn writes the queue back before every exit.
func drainedEarlyReturn(dev *pmem.Device, fail bool) error {
	b := dev.NewBatch()
	b.Flush(0, 64)
	if fail {
		b.Drain()
		return failure{}
	}
	b.Barrier()
	return nil
}

// deferredBarrier covers all paths at once.
func deferredBarrier(dev *pmem.Device, fail bool) error {
	b := dev.NewBatch()
	defer b.Barrier()
	b.Flush(0, 64)
	if fail {
		return failure{}
	}
	return nil
}

// structHandoff escapes into a struct: the holder drains it later.
func structHandoff(dev *pmem.Device) *holder {
	b := dev.NewBatch()
	b.Flush(0, 64)
	return &holder{pb: b}
}

// callHandoff passes the batch on; the callee owns draining it.
func callHandoff(dev *pmem.Device) {
	b := dev.NewEagerBatch()
	b.Flush(0, 64)
	finish(b)
}

func finish(b *pmem.Batch) { b.Barrier() }

// neverDrained has no error path at all, just a missing Barrier.
func neverDrained(dev *pmem.Device) {
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	b.ZeroStream(0, 4096)
	b.Flush(4096, 64)
}

// rebound replaces the empty first batch before queuing anything; only
// the live binding must drain.
func rebound(dev *pmem.Device, eager bool) {
	b := dev.NewBatch()
	if eager {
		b = dev.NewEagerBatch()
	}
	b.Flush(0, 64)
	b.Barrier()
}
