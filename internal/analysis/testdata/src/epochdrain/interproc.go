// Interprocedural variants: v1 treated any pass of a batch to a callee
// as a handoff; with summaries the checker keeps the obligation in the
// caller when the callee provably neither drains nor hands off its
// parameter.
package epochdrain

import "fixture/internal/pmem"

// fillOnly queues lines on the caller's batch and returns with the
// obligation untouched: BatchParamDrained[0] = false.
func fillOnly(b *pmem.Batch) {
	b.Flush(0, 64)
}

func fillDeep(b *pmem.Batch) { fillOnly(b) }

// passedButNotDrained: the summary proves fillOnly is not a handoff, so
// the batch is still pending at return.
func passedButNotDrained(dev *pmem.Device) {
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	fillOnly(b)
}

// passedTwoDeep proves the fact survives two calls.
func passedTwoDeep(dev *pmem.Device) {
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	fillDeep(b)
}

// sealer drains its parameter on every path; passing to it discharges.
func sealer(b *pmem.Batch) { b.Barrier() }

func drainedByHelper(dev *pmem.Device) {
	b := dev.NewBatch()
	b.Flush(0, 64)
	sealer(b)
}

type filler interface {
	fill(b *pmem.Batch)
}

type lineFiller struct{}

func (lineFiller) fill(b *pmem.Batch) { b.Flush(64, 64) }

// viaInterface: the single implementation fills without draining.
func viaInterface(f filler, dev *pmem.Device) {
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	f.fill(b)
}

// viaClosure: same through a bound function literal.
func viaClosure(dev *pmem.Device) {
	fill := func(x *pmem.Batch) { x.Flush(0, 64) }
	b := dev.NewBatch() // want "without Barrier/Drain or a handoff"
	fill(b)
}
