// Interprocedural variants: the body store or the barrier hides one or
// two calls down, behind an interface, inside a bound function literal,
// or behind a method value; the checker sees it through effect
// summaries.
package persistorder

import (
	"fixture/internal/layout"
	"fixture/internal/pmem"
)

// writeBody queues dentry-body bytes: its summary carries MayStoreBody.
func writeBody(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 7, "n")
	b.Flush(r.DevOff(), 64)
}

func writeBodyDeep(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	writeBody(b, dev, r)
}

// sealed ends every path on a Barrier: AlwaysClean, so calling it clears
// the caller's epoch.
func sealed(b *pmem.Batch) { b.Barrier() }

// oneDeep commits with the body store hidden one call down. The leading
// Barrier proves the dirt comes from the summary, not the unknown-caller
// entry state.
func oneDeep(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	b.Barrier()
	writeBody(b, dev, r)
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// twoDeep hides the body store two calls down.
func twoDeep(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	b.Barrier()
	writeBodyDeep(b, dev, r)
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// cleanViaHelper: the helper's terminating Barrier cleans the epoch just
// as a direct Barrier would.
func cleanViaHelper(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	writeBody(b, dev, r)
	sealed(b)
	layout.CommitDentry(dev, r, 1)
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

type bodyWriter interface {
	write(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef)
}

type dentryWriter struct{}

func (dentryWriter) write(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 9, "m")
	b.Flush(r.DevOff(), 64)
}

// viaInterface resolves the body store through the interface's single
// implementation.
func viaInterface(w bodyWriter, b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	b.Barrier()
	w.write(b, dev, r)
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// viaClosure reaches the body store through a bound function literal.
func viaClosure(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	fill := func() {
		layout.WriteDentryBody(dev, r, 3, "c")
		b.Flush(r.DevOff(), 64)
	}
	b.Barrier()
	fill()
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// methodValue binds Barrier to a local; the call through the binding
// must still end the epoch (regression for method-value resolution).
func methodValue(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 7, "z")
	b.Flush(r.DevOff(), 64)
	seal := b.Barrier
	seal()
	layout.CommitDentry(dev, r, 1)
	b.Flush(r.MarkerOff(), 2)
	seal()
}
