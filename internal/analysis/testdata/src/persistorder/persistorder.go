// Package persistorder reconstructs the §4.2 create sequence: the
// artifact persisted a dentry's body and its commit marker in the same
// ordering epoch, so the marker's cache line could reach persistence
// first and a crash between them replayed a committed marker over an
// unwritten body.
package persistorder

import (
	"fixture/internal/layout"
	"fixture/internal/pmem"
)

// buggyCreate is the shipped ArckFS sequence: body flush and marker
// store with no Barrier between them.
func buggyCreate(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 7, "name")
	b.Flush(r.DevOff(), 64)
	layout.CommitDentry(dev, r, 4) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// patchedCreate is the fixed sequence: the Barrier ends the body epoch
// before the marker is set, so the marker can never persist first.
func patchedCreate(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 7, "name")
	b.Flush(r.DevOff(), 64)
	b.Barrier()
	layout.CommitDentry(dev, r, 4)
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// conditionalFence barriers on only one branch; the unfenced path must
// still be flagged — domination means every path.
func conditionalFence(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef, fenced bool) {
	layout.WriteDentryBody(dev, r, 7, "x")
	b.Flush(r.DevOff(), 64)
	if fenced {
		b.Barrier()
	}
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// batchCommit is the bulk-create customization shape: one Barrier ends
// the whole batch's body epoch, then every marker is set and flushed.
// The marker-line flushes inside the loop must not count as body stores.
func batchCommit(b *pmem.Batch, dev *pmem.Device, refs []layout.DentryRef) {
	for _, r := range refs {
		layout.WriteDentryBody(dev, r, 7, "x")
		b.Flush(r.DevOff(), 64)
	}
	b.Barrier()
	for _, r := range refs {
		layout.CommitDentry(dev, r, 1)
		b.Flush(r.MarkerOff(), 2)
	}
	b.Barrier()
}

// freshEntry performs no body store itself, but the caller's queue
// contents are unknown: committing without an own Barrier is flagged.
func freshEntry(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}

// drainIsNotAFence: Drain writes the queue back but issues no fence, so
// the marker's clwb can still overtake the body's — only Barrier orders.
func drainIsNotAFence(b *pmem.Batch, dev *pmem.Device, r layout.DentryRef) {
	layout.WriteDentryBody(dev, r, 7, "y")
	b.Flush(r.DevOff(), 64)
	b.Drain()
	layout.CommitDentry(dev, r, 1) // want "no Batch.Barrier dominates this call"
	b.Flush(r.MarkerOff(), 2)
	b.Barrier()
}
