// Package graceblock exercises the retire-vs-reclaim deadlock rule:
// no waiting for an RCU grace period — directly or through any callee —
// while holding a classified hlock or while pinned as a reader.
package graceblock

import (
	"fixture/internal/hlock"
	"fixture/internal/rcu"
)

type minode struct{ lock hlock.RWSpin }

type FS struct {
	inoMu hlock.SpinLock
	dom   *rcu.Domain
}

// reclaim waits out every in-flight reader before reusing retired pages;
// its summary carries MaySync.
func (fs *FS) reclaim() {
	for fs.dom.Pending() > 0 {
		fs.dom.Synchronize()
	}
}

// unheldWait drops the lock before waiting: clean.
func unheldWait(fs *FS) {
	fs.inoMu.Lock()
	fs.inoMu.Unlock()
	fs.reclaim()
}

// directHeld waits for grace under the inode-table lock: a pinned reader
// that needs the lock can never unpin, so the grace period never ends.
func directHeld(fs *FS) {
	fs.inoMu.Lock()
	fs.dom.Synchronize() // want "while holding libfs/inomu"
	fs.inoMu.Unlock()
}

// oneDeep hides the wait one call down.
func oneDeep(fs *FS, mi *minode) {
	mi.lock.Lock()
	fs.reclaim() // want "can wait for grace"
	mi.lock.Unlock()
}

func reclaimStep(fs *FS) { fs.reclaim() }

// twoDeep hides it two calls down.
func twoDeep(fs *FS) {
	fs.inoMu.Lock()
	reclaimStep(fs) // want "can wait for grace"
	fs.inoMu.Unlock()
}

// pinnedWait reaches the wait while pinned: the grace period waits on
// this very reader.
func pinnedWait(fs *FS, rd *rcu.Reader) {
	rd.ReadLock()
	fs.reclaim() // want "can wait for grace"
	rd.ReadUnlock()
}

type drainer interface {
	drain(fs *FS)
}

type graceDrainer struct{}

func (graceDrainer) drain(fs *FS) { fs.dom.Synchronize() }

// viaInterface resolves through the interface's single implementation.
func viaInterface(d drainer, fs *FS) {
	fs.inoMu.Lock()
	d.drain(fs) // want "can wait for grace"
	fs.inoMu.Unlock()
}

// viaClosure reaches the wait through a bound function literal.
func viaClosure(fs *FS) {
	wait := func() { fs.dom.Synchronize() }
	fs.inoMu.Lock()
	wait() // want "can wait for grace"
	fs.inoMu.Unlock()
}

// allowedWait carries a reasoned exemption at the wait site: MaySync must
// not propagate, so auditedWait below stays clean even under a lock.
func allowedWait(fs *FS) {
	//arcklint:allow graceblock failure path only: the caller excludes readers before entering
	fs.dom.Synchronize()
}

func auditedWait(fs *FS) {
	fs.inoMu.Lock()
	allowedWait(fs)
	fs.inoMu.Unlock()
}
