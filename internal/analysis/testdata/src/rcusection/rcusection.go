// Package rcusection exercises the RCU read-side discipline: pinned
// sections must stay lock-free and kernel-free, and every pin must be
// released on every path out of the function.
package rcusection

import (
	"fixture/internal/hlock"
	"fixture/internal/kernel"
	"fixture/internal/pmem"
	"fixture/internal/rcu"
)

// balanced pins and unpins inline: clean.
func balanced(rd *rcu.Reader) int {
	rd.ReadLock()
	v := probe()
	rd.ReadUnlock()
	return v
}

// deferred unpin covers every path, early error return included: clean.
func deferred(rd *rcu.Reader, fail bool) int {
	rd.ReadLock()
	defer rd.ReadUnlock()
	if fail {
		return -1
	}
	return probe()
}

// nested pins are legal as long as both are released: clean.
func nested(rd *rcu.Reader) {
	rd.ReadLock()
	rd.ReadLock()
	probe()
	rd.ReadUnlock()
	rd.ReadUnlock()
}

// earlyReturn leaves the function pinned on the error path.
func earlyReturn(rd *rcu.Reader, fail bool) int {
	rd.ReadLock() // want "not exited on every return path"
	if fail {
		return -1
	}
	v := probe()
	rd.ReadUnlock()
	return v
}

// lockInside takes a blocking spinlock while pinned.
func lockInside(rd *rcu.Reader, mu *hlock.SpinLock) {
	rd.ReadLock()
	defer rd.ReadUnlock()
	mu.Lock() // want "hlock Lock inside an RCU read-side critical section"
	mu.Unlock()
}

// rlockInside: reader-writer read acquisition blocks too.
func rlockInside(rd *rcu.Reader, rw *hlock.RWSpin) {
	rd.ReadLock()
	rw.RLock() // want "hlock RLock inside an RCU read-side critical section"
	rw.RUnlock()
	rd.ReadUnlock()
}

// tryInside: try-acquisitions cannot block — clean.
func tryInside(rd *rcu.Reader, mu *hlock.SpinLock) {
	rd.ReadLock()
	defer rd.ReadUnlock()
	if mu.TryLock() {
		mu.Unlock()
	}
}

// lockAfter takes the same lock after unpinning: clean.
func lockAfter(rd *rcu.Reader, mu *hlock.SpinLock) {
	rd.ReadLock()
	probe()
	rd.ReadUnlock()
	mu.Lock()
	mu.Unlock()
}

// barrierInside stalls the pinned reader on persistence.
func barrierInside(rd *rcu.Reader, b *pmem.Batch) {
	rd.ReadLock()
	b.Barrier() // want "Batch.Barrier inside an RCU read-side critical section"
	rd.ReadUnlock()
}

// flushInside only queues a line — non-blocking, clean.
func flushInside(rd *rcu.Reader, b *pmem.Batch) {
	rd.ReadLock()
	b.Flush(0, 64)
	rd.ReadUnlock()
	b.Barrier()
}

// syncInside waits for a grace period from inside one: self-deadlock.
func syncInside(rd *rcu.Reader, dom *rcu.Domain) {
	rd.ReadLock()
	dom.Synchronize() // want "Domain.Synchronize inside an RCU read-side critical section deadlocks"
	rd.ReadUnlock()
}

// deferInside hands off reclamation asynchronously — clean.
func deferInside(rd *rcu.Reader, dom *rcu.Domain) {
	rd.ReadLock()
	dom.Defer(func() {})
	rd.ReadUnlock()
}

// crossingInside issues a kernel crossing while pinned.
func crossingInside(rd *rcu.Reader, ctrl *kernel.Controller) error {
	rd.ReadLock()
	defer rd.ReadUnlock()
	return ctrl.AcquireInode(7) // want "kernel crossing Controller.AcquireInode inside an RCU read-side critical section"
}

// crossingBefore resolves ownership before pinning: clean.
func crossingBefore(rd *rcu.Reader, ctrl *kernel.Controller) error {
	if err := ctrl.AcquireInode(7); err != nil {
		return err
	}
	rd.ReadLock()
	defer rd.ReadUnlock()
	probe()
	return nil
}

// branchPin pins on one arm only; the join is treated as pinned, so the
// unpin on both tails keeps every path balanced: clean.
func branchPin(rd *rcu.Reader, fast bool) {
	if fast {
		rd.ReadLock()
		probe()
		rd.ReadUnlock()
		return
	}
	probe()
}

func probe() int { return 1 }
