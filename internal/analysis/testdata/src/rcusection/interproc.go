// Interprocedural variants: pin helpers open and close the read-side
// section for their caller via PinDelta, and a callee that can block the
// grace period anywhere down its call tree is flagged at the pinned
// call site.
package rcusection

import (
	"fixture/internal/hlock"
	"fixture/internal/rcu"
)

type tailCursor struct{ mu hlock.SpinLock }

// pin/unpin are the pin-helper pair: PinDelta +1 / -1.
func pin(rd *rcu.Reader) { rd.ReadLock() }

func unpin(rd *rcu.Reader) { rd.ReadUnlock() }

// pairedHelpers opens and closes the section through helpers: clean.
func pairedHelpers(rd *rcu.Reader) int {
	pin(rd)
	v := probe()
	unpin(rd)
	return v
}

// leakyPin opens through the helper and misses the close on the error
// path: the section entered at the pin call never exits there.
func leakyPin(rd *rcu.Reader, fail bool) int {
	pin(rd) // want "not exited on every return path"
	if fail {
		return -1
	}
	v := probe()
	unpin(rd)
	return v
}

// lockTail acquires a classified blocking lock; its summary carries
// MayBlockPinned.
func lockTail(tc *tailCursor) {
	tc.mu.Lock()
	tc.mu.Unlock()
}

func lockTailDeep(tc *tailCursor) { lockTail(tc) }

// oneDeep blocks the grace period one call down from the pin.
func oneDeep(rd *rcu.Reader, tc *tailCursor) {
	rd.ReadLock()
	lockTail(tc) // want "can block the grace period"
	rd.ReadUnlock()
}

// twoDeep blocks it two calls down.
func twoDeep(rd *rcu.Reader, tc *tailCursor) {
	rd.ReadLock()
	lockTailDeep(tc) // want "can block the grace period"
	rd.ReadUnlock()
}

type tailLocker interface {
	lock(tc *tailCursor)
}

type spinLocker struct{}

func (spinLocker) lock(tc *tailCursor) {
	tc.mu.Lock()
	tc.mu.Unlock()
}

// viaInterface resolves through the interface's single implementation.
func viaInterface(rd *rcu.Reader, l tailLocker, tc *tailCursor) {
	rd.ReadLock()
	l.lock(tc) // want "can block the grace period"
	rd.ReadUnlock()
}

// viaClosure blocks through a bound function literal.
func viaClosure(rd *rcu.Reader, tc *tailCursor) {
	grab := func() {
		tc.mu.Lock()
		tc.mu.Unlock()
	}
	rd.ReadLock()
	grab() // want "can block the grace period"
	rd.ReadUnlock()
}
