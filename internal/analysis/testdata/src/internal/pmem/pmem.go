// Package pmem mimics the real persistence API surface so analyzer
// fixtures exercise the same symbol tables the checkers match on. The
// bodies are irrelevant; only the (package suffix, type, method) shapes
// matter.
package pmem

type Device struct{}

func (d *Device) Write(off int64, p []byte)   {}
func (d *Device) Zero(off, n int64)           {}
func (d *Device) Store8(off int64, v uint8)   {}
func (d *Device) Store16(off int64, v uint16) {}
func (d *Device) Store32(off int64, v uint32) {}
func (d *Device) Store64(off int64, v uint64) {}
func (d *Device) WriteNT(off int64, p []byte) {}
func (d *Device) ZeroNT(off, n int64)         {}
func (d *Device) Flush(off, n int64)          {}
func (d *Device) Fence()                      {}
func (d *Device) Persist(off, n int64)        {}
func (d *Device) NewBatch() *Batch            { return &Batch{} }
func (d *Device) NewEagerBatch() *Batch       { return &Batch{} }

type Batch struct{}

func (b *Batch) Flush(off, n int64)              {}
func (b *Batch) WriteStream(off int64, p []byte) {}
func (b *Batch) ZeroStream(off, n int64)         {}
func (b *Batch) Barrier()                        {}
func (b *Batch) Drain()                          {}
func (b *Batch) AssertEmpty()                    {}
func (b *Batch) Pending() int                    { return 0 }
