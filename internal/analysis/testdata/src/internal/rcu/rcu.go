// Package rcu mimics the real RCU API surface for rcusection fixtures.
// The bodies are irrelevant; only the (package suffix, type, method)
// shapes matter.
package rcu

type Domain struct{}

func (d *Domain) Synchronize()     {}
func (d *Domain) Barrier()         {}
func (d *Domain) Defer(fn func())  {}
func (d *Domain) Pending() int     { return 0 }
func (d *Domain) Register() Reader { return Reader{} }

type Reader struct{}

func (r *Reader) ReadLock()    {}
func (r *Reader) ReadUnlock()  {}
func (r *Reader) Active() bool { return false }
