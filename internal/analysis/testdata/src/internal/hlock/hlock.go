// Package hlock mimics the real spinlock API surface for lockorder
// fixtures.
package hlock

type SpinLock struct{}

func (l *SpinLock) Lock()         {}
func (l *SpinLock) TryLock() bool { return true }
func (l *SpinLock) Unlock()       {}

type RWSpin struct{}

func (l *RWSpin) Lock()          {}
func (l *RWSpin) TryLock() bool  { return true }
func (l *RWSpin) Unlock()        {}
func (l *RWSpin) RLock()         {}
func (l *RWSpin) TryRLock() bool { return true }
func (l *RWSpin) RUnlock()       {}
