// Package layout mimics the dentry-record helpers the persistorder
// checker keys on.
package layout

import "fixture/internal/pmem"

type DentryRef uint64

func (r DentryRef) DevOff() int64    { return int64(r) }
func (r DentryRef) MarkerOff() int64 { return int64(r) + 14 }

func WriteDentryBody(dev *pmem.Device, r DentryRef, ino uint64, name string) {}

func CommitDentry(dev *pmem.Device, r DentryRef, nameLen int) {}
