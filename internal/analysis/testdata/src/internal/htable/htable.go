// Package htable mimics the directory hash table's bucket-lock entry
// points for lockorder fixtures.
package htable

type LockedBucket struct{}

type Table struct{}

func (t *Table) WithBucket(name string, fn func(*LockedBucket)) { fn(&LockedBucket{}) }

func (t *Table) LockAll() func() { return func() {} }
