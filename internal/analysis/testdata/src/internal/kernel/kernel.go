// Package kernel mimics the real control-plane API surface for
// rcusection fixtures: any Controller method is a kernel crossing.
package kernel

type Controller struct{}

func (c *Controller) AcquireInode(ino uint64) error { return nil }
func (c *Controller) ReleaseInode(ino uint64) error { return nil }
