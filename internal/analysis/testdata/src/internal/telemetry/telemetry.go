// Package telemetry mimics the counter registry for counterreg fixtures.
package telemetry

type Counter struct{}

type Set struct{}

func (s *Set) Counter(name string) *Counter       { return &Counter{} }
func (s *Set) Gauge(name string, fn func() int64) {}
