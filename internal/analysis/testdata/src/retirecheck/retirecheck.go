// Package retirecheck exercises the reclamation protocol of the
// lock-free plane: a page or inode number a concurrent RCU reader may
// still reach must return to the allocator pool through retirePages /
// retireIno (a grace period) or on a provably reader-excluded path. The
// FS/allocPage/recyclePages shapes mirror the real libfs ones: the
// checker keys its symbol table on the receiver type name.
package retirecheck

import "fixture/internal/rcu"

type options struct{ SerialData bool }

// word stands in for the stubbed atomic.Uint64 slot of a block array:
// the checkers match arr[i].Store / .Load syntactically.
type word struct{ v uint64 }

func (w *word) Store(v uint64) { w.v = v }
func (w *word) Load() uint64   { return w.v }

type FS struct {
	opts options
	dom  *rcu.Domain
}

func (fs *FS) allocPage(cpu int) uint64 { return 1 }

func (fs *FS) allocIno() uint64 { return 1 }

func (fs *FS) recyclePages(cpu int, pages []uint64) {}

func (fs *FS) recycleIno(ino uint64) {}

// retirePages is the blessed route back to the pool: recycle immediately
// when the mount is serial (no lock-free readers exist), otherwise park
// the pages behind a grace period. The Defer thunk is the retire path
// itself, so the recycle inside it is the protocol working as intended.
func (fs *FS) retirePages(cpu int, pages []uint64) {
	if fs.opts.SerialData {
		fs.recyclePages(cpu, pages)
		return
	}
	fs.dom.Defer(func() {
		fs.recyclePages(cpu, pages)
	})
}

// truncateShrink mirrors the pre-fix Truncate shrink path: it unpublishes
// the block pointers and immediately hands the pages back to the pool. A
// reader that loaded a pointer before the unpublish still dereferences
// the page after the pool gives it to the next writer.
func (fs *FS) truncateShrink(cpu int, arr []word, from, to int) {
	var freed []uint64
	for bi := from; bi < to; bi++ {
		freed = append(freed, arr[bi].Load())
		arr[bi].Store(0)
	}
	fs.recyclePages(cpu, freed) // want "directly to the allocator pool"
}

// truncateShrinkFixed is the post-fix sequence: unpublish, then retire.
func (fs *FS) truncateShrinkFixed(cpu int, arr []word, from, to int) {
	var freed []uint64
	for bi := from; bi < to; bi++ {
		freed = append(freed, arr[bi].Load())
		arr[bi].Store(0)
	}
	fs.retirePages(cpu, freed)
}

// serialDirectFree recycles directly only on the reader-excluded branch.
func (fs *FS) serialDirectFree(cpu int, pages []uint64) {
	if fs.opts.SerialData {
		fs.recyclePages(cpu, pages)
	} else {
		fs.retirePages(cpu, pages)
	}
}

// freshFailure returns resources allocated in this very function and
// never published: no reader can hold them, direct recycle is legal.
func (fs *FS) freshFailure(cpu int, failed bool) bool {
	p := fs.allocPage(cpu)
	q := fs.allocIno()
	if failed {
		fs.recycleIno(q)
		fs.recyclePages(cpu, []uint64{p})
		return false
	}
	return true
}

// freeHelper hides the direct free inside a helper: flagged here as the
// primitive violation, and its summary carries MayRecycle upward.
func (fs *FS) freeHelper(cpu int, pages []uint64) {
	fs.recyclePages(cpu, pages) // want "directly to the allocator pool"
}

// oneDeep reaches the direct free through one call.
func (fs *FS) oneDeep(cpu int, pages []uint64) {
	fs.freeHelper(cpu, pages) // want "can recycle reader-reachable resources"
}

// twoDeep reaches it through two calls.
func (fs *FS) twoDeep(cpu int, pages []uint64) {
	fs.oneDeep(cpu, pages) // want "can recycle reader-reachable resources"
}

type reclaimer interface {
	reclaim(cpu int, pages []uint64)
}

type directReclaimer struct{ fs *FS }

func (d *directReclaimer) reclaim(cpu int, pages []uint64) {
	d.fs.recyclePages(cpu, pages) // want "directly to the allocator pool"
}

// viaInterface resolves through the interface's single implementation.
func viaInterface(r reclaimer, cpu int, pages []uint64) {
	r.reclaim(cpu, pages) // want "can recycle reader-reachable resources"
}

// viaClosure reaches the free through a function literal bound to a
// single-assignment local.
func viaClosure(fs *FS, cpu int, pages []uint64) {
	free := func() {
		fs.recyclePages(cpu, pages) // want "directly to the allocator pool"
	}
	free() // want "can recycle reader-reachable resources"
}

// poolPrimitive is an audited choke point: the allow suppresses the
// direct finding here AND stops MayRecycle from propagating, so
// auditedCaller below stays clean — one reasoned exemption covers the
// call tree.
func (fs *FS) poolPrimitive(cpu int, pages []uint64) {
	//arcklint:allow retirecheck audited: every caller serializes readers before freeing
	fs.recyclePages(cpu, pages)
}

func (fs *FS) auditedCaller(cpu int, pages []uint64) {
	fs.poolPrimitive(cpu, pages)
}

// staleAllowed keeps a directive that no longer suppresses anything (the
// direct free it once excused became a retire): the -suppressions audit
// must mark it stale.
func (fs *FS) staleAllowed(cpu int, pages []uint64) {
	//arcklint:allow retirecheck left behind after the shrink path was fixed
	fs.retirePages(cpu, pages)
}
