// Package flushcheck exercises the never-flushed-raw-store rule: a
// Device store lands in the CPU cache and reaches persistence only by
// eviction accident unless some path writes it back.
package flushcheck

import "fixture/internal/pmem"

// leakyReserve is the reserveDentry-class hole: a raw store with no
// write-back anywhere in the function.
func leakyReserve(dev *pmem.Device) {
	dev.Store16(8, 42) // want "never flushed"
}

// queuedReserve is the fix: the line is queued on the thread's batch.
func queuedReserve(dev *pmem.Device, b *pmem.Batch) {
	dev.Store16(8, 42)
	b.Flush(8, 2)
}

// persisted uses the eager device-side flush+fence.
func persisted(dev *pmem.Device) {
	dev.Store64(0, 1)
	dev.Persist(0, 8)
}

// branchLeak flushes on one branch only; the fall-through path leaks.
func branchLeak(dev *pmem.Device, cond bool) {
	dev.Store32(4, 9) // want "never flushed"
	if cond {
		dev.Persist(4, 4)
	}
}

// earlyReturnLeak persists on the main path but not before the early
// error return.
func earlyReturnLeak(dev *pmem.Device, bad bool) bool {
	dev.Store64(16, 3) // want "never flushed"
	if bad {
		return false
	}
	dev.Persist(16, 8)
	return true
}

// streamed stores are non-temporal: no write-back needed.
func streamed(dev *pmem.Device, b *pmem.Batch, p []byte) {
	b.WriteStream(0, p)
	b.ZeroStream(64, 64)
	dev.WriteNT(128, p)
	dev.ZeroNT(192, 64)
}

// loopStore flushes each store on the next iteration's entry; the final
// iteration's store is covered after the loop.
func loopStore(dev *pmem.Device, offs []int64) {
	for _, off := range offs {
		dev.Store64(off, 1)
		dev.Flush(off, 8)
	}
}

// allowedScratch is a deliberate exception, suppressed with a reason.
func allowedScratch(dev *pmem.Device) {
	//arcklint:allow flushcheck scratch line is rewritten by recovery before any reader can observe it
	dev.Store16(256, 1)
}
