// Interprocedural variants: a helper that flushes on every path
// discharges the caller's raw stores; one that only sometimes flushes
// does not.
package flushcheck

import "fixture/internal/pmem"

// flushAll ends on a flush on every path: FlushesAll.
func flushAll(dev *pmem.Device) { dev.Flush(0, 64) }

func flushAllDeep(dev *pmem.Device) { flushAll(dev) }

// dischargedByHelper: the helper's flush covers the raw store.
func dischargedByHelper(dev *pmem.Device) {
	dev.Store64(0, 1)
	flushAll(dev)
}

// dischargedTwoDeep covers it through two calls.
func dischargedTwoDeep(dev *pmem.Device) {
	dev.Store64(8, 2)
	flushAllDeep(dev)
}

// halfFlush flushes on one branch only: not FlushesAll.
func halfFlush(dev *pmem.Device, cond bool) {
	if cond {
		dev.Flush(0, 64)
	}
}

// notDischarged: the maybe-flushing helper must not clear the store.
func notDischarged(dev *pmem.Device, cond bool) {
	dev.Store32(16, 3) // want "never flushed"
	halfFlush(dev, cond)
}

type flusher interface {
	flush(dev *pmem.Device)
}

type lineFlusher struct{}

func (lineFlusher) flush(dev *pmem.Device) { dev.Flush(0, 64) }

// viaInterface discharges through the interface's single implementation.
func viaInterface(f flusher, dev *pmem.Device) {
	dev.Store16(24, 4)
	f.flush(dev)
}

// viaClosure discharges through a bound function literal.
func viaClosure(dev *pmem.Device) {
	sync := func() { dev.Persist(32, 8) }
	dev.Store8(32, 5)
	sync()
}
