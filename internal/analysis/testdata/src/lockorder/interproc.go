// Interprocedural variants: a held class checked against the classes a
// callee's summary says it may acquire, one or two calls down, through
// an interface, and through a bound function literal.
package lockorder

// lockIno acquires and releases the inode-table lock; its summary
// carries MayAcquire{libfs/inomu}.
func lockIno(fs *FS) {
	fs.inoMu.Lock()
	fs.inoMu.Unlock()
}

func lockInoDeep(fs *FS) { lockIno(fs) }

// upOrder holds the outermost class across the helper: in order, clean.
func upOrder(mi *minode, fs *FS) {
	mi.lock.Lock()
	lockIno(fs)
	mi.lock.Unlock()
}

// downOrder holds a page lock (rank 5) across a helper that takes the
// inode lock (rank 4): an inversion assembled across the call boundary.
func downOrder(fs *FS) {
	fs.pageMu[0].Lock()
	lockIno(fs) // want "can acquire libfs/inomu while libfs/pagemu is held"
	fs.pageMu[0].Unlock()
}

// downOrderDeep hides the acquisition two calls down.
func downOrderDeep(fs *FS) {
	fs.pageMu[1].Lock()
	lockInoDeep(fs) // want "can acquire libfs/inomu while libfs/pagemu is held"
	fs.pageMu[1].Unlock()
}

type inoLocker interface {
	lockIno(fs *FS)
}

type tableLocker struct{}

func (tableLocker) lockIno(fs *FS) {
	fs.inoMu.Lock()
	fs.inoMu.Unlock()
}

// viaInterface resolves through the interface's single implementation.
func viaInterface(l inoLocker, fs *FS) {
	fs.pageMu[2].Lock()
	l.lockIno(fs) // want "can acquire libfs/inomu while libfs/pagemu is held"
	fs.pageMu[2].Unlock()
}

// viaClosure reaches the acquisition through a bound function literal.
func viaClosure(fs *FS) {
	lock := func() {
		fs.inoMu.Lock()
		fs.inoMu.Unlock()
	}
	fs.pageMu[3].Lock()
	lock() // want "can acquire libfs/inomu while libfs/pagemu is held"
	fs.pageMu[3].Unlock()
}
