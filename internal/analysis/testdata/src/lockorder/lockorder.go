// Package lockorder exercises the declared hlock partial order. The
// structs mirror the real libfs shapes: the checker keys lock classes on
// (struct type name, field name), so these local declarations land in
// the same classes as the real ones.
package lockorder

import (
	"fixture/internal/hlock"
	"fixture/internal/htable"
)

type minode struct{ lock hlock.RWSpin }

type tailCursor struct{ mu hlock.SpinLock }

type dirState struct{ idxMu hlock.SpinLock }

type FS struct {
	inoMu  hlock.SpinLock
	pageMu [8]hlock.SpinLock
}

// inOrder nests strictly outermost-first: clean.
func inOrder(mi *minode, tc *tailCursor, ds *dirState, fs *FS) {
	mi.lock.Lock()
	tc.mu.Lock()
	ds.idxMu.Lock()
	fs.inoMu.Lock()
	fs.inoMu.Unlock()
	ds.idxMu.Unlock()
	tc.mu.Unlock()
	mi.lock.Unlock()
}

// inverted takes the minode lock under the tail lock: the classic
// two-thread deadlock against any inOrder caller.
func inverted(mi *minode, tc *tailCursor) {
	tc.mu.Lock()
	mi.lock.RLock() // want "while holding|lock-order cycle among classes"
	mi.lock.RUnlock()
	tc.mu.Unlock()
}

// doubleAcquire takes two page locks with no order between the indices:
// two threads doing this with swapped indices deadlock.
func doubleAcquire(fs *FS, a, b int) {
	fs.pageMu[a].Lock()
	fs.pageMu[b].Lock() // want "same class"
	fs.pageMu[b].Unlock()
	fs.pageMu[a].Unlock()
}

// reacquire after a release is fine.
func reacquire(tc *tailCursor) {
	tc.mu.Lock()
	tc.mu.Unlock()
	tc.mu.Lock()
	tc.mu.Unlock()
}

// tryIgnored: Try-acquisitions back off instead of spinning, so they
// cannot deadlock and are exempt from the order.
func tryIgnored(mi *minode, tc *tailCursor) {
	tc.mu.Lock()
	if mi.lock.TryLock() {
		mi.lock.Unlock()
	}
	tc.mu.Unlock()
}

// bucketNest: the WithBucket callback runs with the bucket lock held;
// taking the tail lock inside it follows the order.
func bucketNest(ht *htable.Table, tc *tailCursor) {
	ht.WithBucket("k", func(b *htable.LockedBucket) {
		tc.mu.Lock()
		tc.mu.Unlock()
	})
}

// bucketInverted enters a bucket while already holding the tail lock.
func bucketInverted(ht *htable.Table, tc *tailCursor) {
	tc.mu.Lock()
	ht.WithBucket("k", func(b *htable.LockedBucket) {}) // want "while holding"
	tc.mu.Unlock()
}

// lockAllUpgrade: LockAll then a deeper class is in order.
func lockAllUpgrade(ht *htable.Table, fs *FS) {
	unlock := ht.LockAll()
	fs.inoMu.Lock()
	fs.inoMu.Unlock()
	unlock()
}

// lockAllInverted grabs every bucket under the inode-table lock.
func lockAllInverted(ht *htable.Table, fs *FS) {
	fs.inoMu.Lock()
	unlock := ht.LockAll() // want "while holding"
	unlock()
	fs.inoMu.Unlock()
}
