// Package counterreg exercises the telemetry-registry rules: literal
// names, once-only registration, and no drifted lookup keys.
package counterreg

import "fixture/internal/telemetry"

// register is the canonical site for both names below.
func register(s *telemetry.Set) *telemetry.Counter {
	ops := s.Counter("libfs.ops")
	s.Gauge("pmem.stores", func() int64 { return 0 })
	return ops
}

// registerAgain re-registers a name the canonical site already owns.
func registerAgain(s *telemetry.Set) {
	s.Counter("libfs.ops") // want "already registered"
}

// dynamic registers through a variable, defeating static checking.
func dynamic(s *telemetry.Set, name string) {
	s.Counter(name) // want "non-constant name"
}

// lookupKeys mimics bench tooling reading counters back by name. The
// last key drifted from the registered "pmem.stores".
func lookupKeys() []string {
	return []string{
		"pmem.stores",
		"libfs.ops",
		"pmem.storez", // want "no counter with that name is registered"
	}
}
