package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the small abstract interpreter the flow-sensitive
// checkers (persistorder, flushcheck, epochdrain, lockorder) share. It
// walks a function body statement by statement, threading a
// checker-specific abstract state through it:
//
//   - if/else, switch, and select fork the state and merge (least upper
//     bound) at the join;
//   - loop bodies are interpreted twice so loop-carried effects (a store
//     queued in iteration N observed in iteration N+1) are seen, then
//     merged with the zero-iteration path;
//   - return statements end a path: deferred calls recorded so far are
//     replayed (path-insensitively) and the checker's return hook runs;
//   - function literals are not interpreted at their creation point (they
//     run later, if at all); a checker can interpret a callback inline
//     via walker.block when it recognizes the enclosing call (lockorder
//     does this for htable's WithBucket);
//   - go statements and break/continue/goto are treated conservatively:
//     the spawned or jumping path simply stops contributing state.
//
// Each walk covers a single function body; calls are not inlined.
// Interprocedural facts arrive through the effect summaries of
// summary.go instead: a checker's onCall consults the callee's
// precomputed Summary (may it store body bytes? acquire a lock class?
// wait for grace?) rather than walking into it, which keeps every walk
// linear in the function's size while still catching violations
// assembled across call boundaries.

// flowState is a checker's abstract state. Merge folds another state into
// the receiver as a least upper bound; Copy returns an independent clone.
type flowState interface {
	Copy() flowState
	Merge(flowState)
}

// flowClient receives interpretation events.
type flowClient interface {
	// onCall fires for every call expression, in source order. The client
	// may use w.block to interpret an inline callback under the call's
	// scope.
	onCall(w *flowWalker, st flowState, call *ast.CallExpr)
	// onReturn fires once per path that leaves the function, after
	// deferred calls have been replayed into st.
	onReturn(st flowState, pos token.Pos)
}

// identClient is an optional extension: onIdent fires for identifier uses
// outside method-receiver position (epochdrain uses it for escapes).
type identClient interface {
	onIdent(st flowState, id *ast.Ident)
}

// assignClient is an optional extension: when implemented, assignment
// statements are delivered whole instead of being scanned generically.
type assignClient interface {
	onAssign(w *flowWalker, st flowState, as *ast.AssignStmt)
}

// branchClient is an optional extension: onBranch fires on the state copy
// entering each arm of an if statement, with the controlling condition
// and which arm (taken=true for the then branch). Checkers use it to
// model guard conditions — a SerialData branch excludes lock-free
// readers, a size-comparing branch legitimizes an unzeroed publish.
type branchClient interface {
	onBranch(st flowState, cond ast.Expr, taken bool)
}

type flowWalker struct {
	pkg      *Package
	client   flowClient
	deferred []*ast.CallExpr
}

// walkFunc interprets body with the given initial state.
func walkFunc(pkg *Package, body *ast.BlockStmt, client flowClient, init flowState) {
	w := &flowWalker{pkg: pkg, client: client}
	if out := w.block(body, init); out != nil {
		w.leave(out, body.End())
	}
}

// leave replays deferred calls and signals the end of a path.
func (w *flowWalker) leave(st flowState, pos token.Pos) {
	st = st.Copy()
	for i := len(w.deferred) - 1; i >= 0; i-- {
		w.client.onCall(w, st, w.deferred[i])
	}
	w.client.onReturn(st, pos)
}

// block interprets stmts in order; a nil result means every path through
// the block left the function.
func (w *flowWalker) block(b *ast.BlockStmt, st flowState) flowState {
	for _, s := range b.List {
		if st = w.stmt(s, st); st == nil {
			return nil
		}
	}
	return st
}

func mergeStates(a, b flowState) flowState {
	if a == nil {
		return b
	}
	if b != nil {
		a.Merge(b)
	}
	return a
}

func (w *flowWalker) stmt(s ast.Stmt, st flowState) flowState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.ExprStmt:
		w.scan(st, s.X)
	case *ast.AssignStmt:
		if ac, ok := w.client.(assignClient); ok {
			ac.onAssign(w, st, s)
		} else {
			w.scan(st, s)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scan(st, s)
	case *ast.ReturnStmt:
		w.scan(st, s)
		w.leave(st, s.Pos())
		return nil
	case *ast.DeferStmt:
		w.deferred = append(w.deferred, s.Call)
	case *ast.GoStmt:
		// Concurrent execution: contributes nothing to this path.
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		return nil
	case *ast.IfStmt:
		if st = w.stmt(s.Init, st); st == nil {
			return nil
		}
		w.scan(st, s.Cond)
		bc, branching := w.client.(branchClient)
		thenIn := st.Copy()
		if branching {
			bc.onBranch(thenIn, s.Cond, true)
		}
		then := w.block(s.Body, thenIn)
		els := st.Copy()
		if branching {
			bc.onBranch(els, s.Cond, false)
		}
		if s.Else != nil {
			els = w.stmt(s.Else, els)
		}
		return mergeStates(then, els)
	case *ast.ForStmt:
		if st = w.stmt(s.Init, st); st == nil {
			return nil
		}
		loop := func(in flowState) flowState {
			if s.Cond != nil {
				w.scan(in, s.Cond)
			}
			out := w.block(s.Body, in)
			if out != nil {
				out = w.stmt(s.Post, out)
			}
			return out
		}
		once := loop(st.Copy())
		st = mergeStates(st, once)
		if st == nil {
			return nil
		}
		return mergeStates(st.Copy(), loop(st.Copy()))
	case *ast.RangeStmt:
		w.scan(st, s.X)
		once := w.block(s.Body, st.Copy())
		st = mergeStates(st, once)
		if st == nil {
			return nil
		}
		return mergeStates(st.Copy(), w.block(s.Body, st.Copy()))
	case *ast.SwitchStmt:
		if st = w.stmt(s.Init, st); st == nil {
			return nil
		}
		if s.Tag != nil {
			w.scan(st, s.Tag)
		}
		return w.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if st = w.stmt(s.Init, st); st == nil {
			return nil
		}
		w.scan(st, s.Assign)
		return w.clauses(s.Body, st)
	case *ast.SelectStmt:
		var out flowState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.Copy()
			if branch = w.stmt(cc.Comm, branch); branch != nil {
				for _, cs := range cc.Body {
					if branch = w.stmt(cs, branch); branch == nil {
						break
					}
				}
			}
			out = mergeStates(out, branch)
		}
		return out
	}
	return st
}

// clauses merges the case bodies of a switch, plus the fall-past path
// when no default clause exists.
func (w *flowWalker) clauses(body *ast.BlockStmt, st flowState) flowState {
	var out flowState
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.scan(st, e)
		}
		branch := st.Copy()
		for _, cs := range cc.Body {
			if branch = w.stmt(cs, branch); branch == nil {
				break
			}
		}
		out = mergeStates(out, branch)
	}
	if !hasDefault {
		out = mergeStates(out, st)
	}
	return out
}

// scan walks an expression (or expression-bearing statement) delivering
// call and identifier events in pre-order. Function-literal bodies are
// skipped — they execute later, not here.
func (w *flowWalker) scan(st flowState, n ast.Node) {
	if n == nil {
		return
	}
	ic, wantIdents := w.client.(identClient)
	// Identifiers in method-receiver position are not "uses" for escape
	// purposes; collect them first so the main pass can skip them.
	recv := make(map[*ast.Ident]bool)
	if wantIdents {
		ast.Inspect(n, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						recv[id] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.client.onCall(w, st, node)
		case *ast.Ident:
			if wantIdents && !recv[node] {
				ic.onIdent(st, node)
			}
		}
		return true
	})
}

// --- Symbol matching -------------------------------------------------------

// calleeFunc resolves a call expression to the *types.Func it invokes.
// Direct identifier and selector calls resolve through the type
// checker's Uses map; a call through a local variable resolves when the
// variable is bound exactly once to a method value or a named function
// (f := b.Barrier; ...; f()). It returns nil for calls through
// multiply-assigned variables, type conversions, builtins, and function
// literals (resolveCallee handles the literal case).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
		if v, ok := obj.(*types.Var); ok {
			if bound, ok := pkg.bindings[v]; ok {
				switch bound := bound.(type) {
				case *ast.SelectorExpr:
					obj = pkg.Info.Uses[bound.Sel]
				case *ast.Ident:
					obj = pkg.Info.Uses[bound]
				}
			}
		}
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// resolveCallee resolves a call to its target more aggressively than
// calleeFunc: a call through a single-assignment local bound to a
// function literal yields the literal; a direct literal call
// (func(){...}()) likewise; and a call through an interface method with
// exactly one module-local implementation resolves to that concrete
// method. Exactly one of the results is non-nil when resolution
// succeeds.
func resolveCallee(prog *Program, pkg *Package, call *ast.CallExpr) (*types.Func, *ast.FuncLit) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return nil, fun
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			if lit, ok := pkg.bindings[v].(*ast.FuncLit); ok {
				return nil, lit
			}
		}
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil, nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if types.IsInterface(recv) {
			if impl := prog.index().impl[fn]; impl != nil {
				return impl, nil
			}
		}
	}
	return fn, nil
}

// pkgPathHasSuffix reports whether path is suffix or ends in "/"+suffix,
// so symbol tables are independent of the module name.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// recvTypeOf returns the package path and type name of a method's
// receiver ("" for plain functions).
func recvTypeOf(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath, obj.Name()
}

// isMethod reports whether fn is method name on a type named typeName in
// a package whose import path ends in pkgSuffix.
func isMethod(fn *types.Func, pkgSuffix, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	p, t := recvTypeOf(fn)
	return t == typeName && pkgPathHasSuffix(p, pkgSuffix)
}

// isPkgFunc reports whether fn is the plain function name in a package
// whose import path ends in pkgSuffix.
func isPkgFunc(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return pkgPathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}
