package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the interprocedural half of arcklint: a
// whole-program call graph over the loaded packages with a per-function
// effect Summary, computed bottom-up over strongly connected components
// with a conservative fixpoint for recursion. Checkers consult callee
// summaries through Program.summaryFor instead of treating calls as
// opaque, which is what lets retirecheck/publishorder/graceblock re-find
// the PR 7 use-after-free classes statically and lets the original five
// checkers see violations hidden one or more calls deep (through method
// values, single-implementation interfaces, and function literals bound
// to single-assignment locals).
//
// The design follows the compositional-summary school (RacerD-style
// lock/ownership summaries): each function is abstracted once into a
// small record of effects, and every checker's flow walk applies callee
// records in O(1) per call. Summaries are computed once per Run and
// shared by all checkers, so the interprocedural engine costs one extra
// walk over every function body plus an SCC pass, not a per-checker
// whole-program traversal.

// Summary is the effect record of one function (or function literal).
// Fields are conservative in the direction each consumer needs: "May"
// facts over-approximate (false negatives impossible for the caller),
// "Always" facts under-approximate (they only claim what holds on every
// path).
type Summary struct {
	// MayStoreBody: some path through the call can leave a dentry-body /
	// inode store in the current persist ordering epoch at return
	// (persistorder: the caller's epoch is dirty after this call).
	MayStoreBody bool
	// AlwaysClean: every path issues a Batch.Barrier after its last body
	// store, so the call clears the caller's dirty epoch.
	AlwaysClean bool
	// FlushesAll: every path issues a flush (Batch.Flush, Device.Flush,
	// or Device.Persist), discharging the caller's pending raw stores.
	FlushesAll bool
	// MayAcquire is the set of classified hlock classes the call can
	// acquire, transitively (lockorder: held-set x MayAcquire gives the
	// interprocedural acquisition edges).
	MayAcquire map[string]lockClass
	// PinDelta is the net RCU pin-depth change of the call when it is the
	// same on every path, zero otherwise (rcusection flags unbalanced
	// functions directly).
	PinDelta int
	// MayBlockPinned: the call can block an RCU grace period — it may
	// acquire a blocking hlock, drain persistence, wait on a grace
	// period, or cross into the kernel. BlockVia names the first cause.
	MayBlockPinned bool
	BlockVia       string
	// MaySync: the call can wait on an RCU grace period
	// (Domain.Synchronize or Domain.Barrier), transitively. SyncVia names
	// the first cause.
	MaySync bool
	SyncVia string
	// MayRecycle: the call can return a reader-reachable page or inode
	// directly to an allocator pool — a recyclePages/recycleIno call that
	// is neither SerialData-guarded nor provably fed only freshly
	// allocated resources, transitively. Sites suppressed with
	// //arcklint:allow retirecheck do not propagate. RecycleVia names the
	// first cause.
	MayRecycle bool
	RecycleVia string
	// MayPublish: the call can publish a block pointer to lock-free
	// readers (a non-zero store through an indexed atomic), transitively.
	MayPublish bool
	// MayCross: the call can issue a kernel crossing (Controller method).
	MayCross bool
	// BatchParamDrained maps the index of each *pmem.Batch parameter to
	// whether the callee drains it (Barrier/Drain/AssertEmpty) or hands
	// it off on every path. epochdrain keeps a caller's batch pending
	// across a call whose entry is false.
	BatchParamDrained map[int]bool
}

func newBottomSummary() *Summary {
	// Optimistic bottom for the fixpoint: "may" facts start false,
	// "always" facts start true; iteration only moves facts toward the
	// conservative side, so the least fixpoint is reached monotonically.
	return &Summary{
		AlwaysClean: true,
		FlushesAll:  true,
		MayAcquire:  make(map[string]lockClass),
	}
}

func (s *Summary) equal(o *Summary) bool {
	if s.MayStoreBody != o.MayStoreBody || s.AlwaysClean != o.AlwaysClean ||
		s.FlushesAll != o.FlushesAll || s.PinDelta != o.PinDelta ||
		s.MayBlockPinned != o.MayBlockPinned || s.MaySync != o.MaySync ||
		s.MayRecycle != o.MayRecycle || s.MayPublish != o.MayPublish ||
		s.MayCross != o.MayCross ||
		len(s.MayAcquire) != len(o.MayAcquire) ||
		len(s.BatchParamDrained) != len(o.BatchParamDrained) {
		return false
	}
	for k := range s.MayAcquire {
		if _, ok := o.MayAcquire[k]; !ok {
			return false
		}
	}
	for k, v := range s.BatchParamDrained {
		if ov, ok := o.BatchParamDrained[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// sumNode is one call-graph node: a declared function or a function
// literal.
type sumNode struct {
	pkg  *Package
	fn   *types.Func // nil for literals
	lit  *ast.FuncLit
	body *ast.BlockStmt
	ftyp *ast.FuncType
	pos  token.Pos
	sum  *Summary

	// Tarjan bookkeeping.
	index, low int
	onStack    bool
	callees    []*sumNode
}

// summarySet holds the computed summaries plus the suppression table the
// retirecheck propagation rule consults.
type summarySet struct {
	byFunc     map[*types.Func]*sumNode
	byLit      map[*ast.FuncLit]*sumNode
	suppressed func(pos token.Position, checker string) bool
}

// progIndex caches whole-program resolution facts.
type progIndex struct {
	// impl maps a module-local interface method to its unique concrete
	// implementation, when exactly one named type implements the
	// interface.
	impl map[*types.Func]*types.Func
}

func (prog *Program) index() *progIndex {
	if prog.idx != nil {
		return prog.idx
	}
	idx := &progIndex{impl: make(map[*types.Func]*types.Func)}

	var named []*types.Named
	var ifaces []*types.Named
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			nt, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(nt) {
				ifaces = append(ifaces, nt)
			} else {
				named = append(named, nt)
			}
		}
	}
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		var impls []*types.Named
		for _, nt := range named {
			if types.Implements(nt, iface) || types.Implements(types.NewPointer(nt), iface) {
				impls = append(impls, nt)
			}
		}
		if len(impls) != 1 {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(impls[0]), true, m.Pkg(), m.Name())
			if cf, ok := obj.(*types.Func); ok {
				idx.impl[m] = cf
			}
		}
	}
	prog.idx = idx
	return idx
}

// summaryLayerExempt reports whether a callee's effects are fully
// captured by the checkers' symbol tables, so its computed summary must
// not be applied on top (Batch.Barrier's own body performs device writes
// that would otherwise read as a dirty epoch).
func summaryLayerExempt(fn *types.Func) bool {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if p, _ := recvTypeOf(fn); p != "" {
		pkgPath = p
	}
	return pkgPathHasSuffix(pkgPath, "internal/pmem") ||
		pkgPathHasSuffix(pkgPath, "internal/layout") ||
		pkgPathHasSuffix(pkgPath, "internal/rcu") ||
		pkgPathHasSuffix(pkgPath, "internal/hlock") ||
		// The whole telemetry subtree (rings, spans, traces): its indexed
		// atomic stores are ring publishes, not block-array publishes.
		containsSegment(pkgPath, "telemetry")
}

// ensureSummaries computes every function's Summary (idempotent).
// suppressedAt reports whether a position is covered by an
// //arcklint:allow directive for the given checker; a suppressed
// retirecheck site does not propagate its effect to callers — the allow
// asserts the discipline holds there, so the assertion holds for the
// call chain above it too.
func (prog *Program) ensureSummaries(suppressedAt func(pos token.Position, checker string) bool) {
	if prog.sums != nil {
		return
	}
	ss := &summarySet{
		byFunc:     make(map[*types.Func]*sumNode),
		byLit:      make(map[*ast.FuncLit]*sumNode),
		suppressed: suppressedAt,
	}
	if ss.suppressed == nil {
		ss.suppressed = func(token.Position, string) bool { return false }
	}
	prog.sums = ss

	// Collect nodes: every declared function body and every function
	// literal, in deterministic (position) order.
	var nodes []*sumNode
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var fn *types.Func
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fn = obj
				}
				n := &sumNode{pkg: pkg, fn: fn, body: fd.Body, ftyp: fd.Type, pos: fd.Pos()}
				nodes = append(nodes, n)
				if fn != nil {
					ss.byFunc[fn] = n
				}
			}
			ast.Inspect(file, func(node ast.Node) bool {
				if lit, ok := node.(*ast.FuncLit); ok {
					n := &sumNode{pkg: pkg, lit: lit, body: lit.Body, ftyp: lit.Type, pos: lit.Pos()}
					nodes = append(nodes, n)
					ss.byLit[lit] = n
				}
				return true
			})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].pos < nodes[j].pos })

	// Edges: calls in each node's own body (nested literal bodies belong
	// to the literal's node).
	for _, n := range nodes {
		n.index = -1
		seen := make(map[*sumNode]bool)
		inspectOwnBody(n.body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			fn, lit := resolveCallee(prog, n.pkg, call)
			var target *sumNode
			if fn != nil {
				target = ss.byFunc[fn]
			} else if lit != nil {
				target = ss.byLit[lit]
			}
			if target != nil && !seen[target] {
				seen[target] = true
				n.callees = append(n.callees, target)
			}
			// A function-literal argument (htable's WithBucket callback,
			// a Domain.Defer thunk) runs under the call's scope or later;
			// its summary is consulted where the checkers model the call,
			// so the dependency edge must exist for ordering.
			for _, arg := range call.Args {
				if alit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					if t := ss.byLit[alit]; t != nil && !seen[t] {
						seen[t] = true
						n.callees = append(n.callees, t)
					}
				}
			}
		})
	}

	// Tarjan's SCC; components are emitted callees-first, which is the
	// bottom-up order the fixpoint needs.
	var (
		counter int
		stack   []*sumNode
		sccs    [][]*sumNode
	)
	var strongconnect func(n *sumNode)
	strongconnect = func(n *sumNode) {
		n.index = counter
		n.low = counter
		counter++
		stack = append(stack, n)
		n.onStack = true
		for _, m := range n.callees {
			if m.index < 0 {
				strongconnect(m)
				if m.low < n.low {
					n.low = m.low
				}
			} else if m.onStack && m.index < n.low {
				n.low = m.index
			}
		}
		if n.low == n.index {
			var scc []*sumNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if n.index < 0 {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		for _, n := range scc {
			n.sum = newBottomSummary()
		}
		// Iterate to a fixpoint. The lattice is tiny (a handful of
		// booleans, a clamped pin counter, and a set bounded by the lock
		// class table), so the loop terminates quickly; the cap is a
		// safety net for pathological recursion shapes.
		for iter := 0; iter < 16; iter++ {
			changed := false
			for _, n := range scc {
				next := computeSummary(prog, ss, n)
				if !next.equal(n.sum) {
					n.sum = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// inspectOwnBody walks body delivering every node except those inside
// nested function literals (the walk starts at the body, so any literal
// it meets is nested and owns its own call-graph node).
func inspectOwnBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// summaryFor returns the callee's Summary when the call resolves to a
// summarized module-local function or literal outside the symbol-table
// layers, or nil.
func (prog *Program) summaryFor(pkg *Package, call *ast.CallExpr) *Summary {
	if prog.sums == nil {
		return nil
	}
	fn, lit := resolveCallee(prog, pkg, call)
	if lit != nil {
		if n := prog.sums.byLit[lit]; n != nil {
			return n.sum
		}
		return nil
	}
	if fn == nil || summaryLayerExempt(fn) {
		return nil
	}
	if n := prog.sums.byFunc[fn]; n != nil {
		return n.sum
	}
	return nil
}

// calleeName renders a resolved callee for finding messages.
func calleeName(prog *Program, pkg *Package, call *ast.CallExpr) string {
	fn, _ := resolveCallee(prog, pkg, call)
	if fn != nil {
		if _, t := recvTypeOf(fn); t != "" {
			return t + "." + fn.Name()
		}
		return fn.Name()
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "function literal"
}

// --- shared condition / freshness helpers ---------------------------------

// serialGuardField matches the option fields whose true branch excludes
// lock-free readers: under SerialData (libfs) or SerialReaders (htable)
// the caller's lock already serializes against every reader, so
// immediate recycling is legal.
func serialGuardField(name string) bool {
	return name == "SerialData" || name == "SerialReaders"
}

// serialGuardCond classifies an if condition as a reader-exclusion
// guard. It returns (isGuard, guardWhenTaken): a bare
// fs.opts.SerialData selector excludes readers in the then branch; its
// negation excludes them in the else branch.
func serialGuardCond(cond ast.Expr) (bool, bool) {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		if isSerialSelector(u.X) {
			return true, false
		}
		return false, false
	}
	return isSerialSelector(cond), true
}

func isSerialSelector(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && serialGuardField(sel.Sel.Name)
}

// mentionsSize reports whether a condition consults the published size:
// any identifier or selector whose name contains "size" (curSize,
// st.size.Load(), fileSize...). publishorder accepts an unzeroed page
// publish only on paths that branched on such a condition — the
// discipline is "you may skip the zero only after comparing against the
// published size" (a fully covered block at or beyond the size stays
// invisible until the size store).
func mentionsSize(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "size") {
				found = true
			}
		case *ast.SelectorExpr:
			if strings.Contains(strings.ToLower(n.Sel.Name), "size") {
				found = true
			}
		}
		return !found
	})
	return found
}

// recycleTarget classifies a call as one of the allocator-pool return
// primitives (FS.recyclePages / FS.recycleIno, matched by receiver type
// name so fixtures can declare the same shapes, following lockorder's
// class table). It returns the resource-bearing argument expressions.
func recycleTarget(fn *types.Func, call *ast.CallExpr) (string, []ast.Expr, bool) {
	if fn == nil {
		return "", nil, false
	}
	_, t := recvTypeOf(fn)
	if t != "FS" {
		return "", nil, false
	}
	switch fn.Name() {
	case "recyclePages":
		if len(call.Args) >= 2 {
			return "recyclePages", call.Args[1:], true
		}
	case "recycleIno":
		return "recycleIno", call.Args, true
	}
	return "", nil, false
}

// freshSource reports whether a call mints a fresh, never-published
// resource (FS.allocPage / FS.allocIno, same type-name matching).
func freshSource(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	_, t := recvTypeOf(fn)
	return t == "FS" && (fn.Name() == "allocPage" || fn.Name() == "allocIno")
}

// allFresh reports whether every resource argument is provably freshly
// allocated in this function: an identifier marked fresh, or a composite
// literal whose elements are all fresh identifiers.
func allFresh(pkg *Package, args []ast.Expr, fresh map[*types.Var]bool) bool {
	isFreshIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		return ok && fresh[v]
	}
	for _, arg := range args {
		if isFreshIdent(arg) {
			continue
		}
		if cl, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
			all := len(cl.Elts) > 0
			for _, el := range cl.Elts {
				if !isFreshIdent(el) {
					all = false
					break
				}
			}
			if all {
				continue
			}
		}
		return false
	}
	return true
}

// indexedAtomicStore matches the syntactic shape of a block-pointer
// publish — arr[i].Store(v) — which the stubbed sync/atomic types keep
// invisible to go/types. It returns the stored value. Stores of the
// literal 0 are unpublishes, not publishes.
func indexedAtomicStore(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return nil, false
	}
	if _, ok := ast.Unparen(sel.X).(*ast.IndexExpr); !ok {
		return nil, false
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Value == "0" {
		return nil, false
	}
	return call.Args[0], true
}

// sizeFieldStore matches st.size.Store(v) — the publish of a file's
// readable range to lock-free readers.
func sizeFieldStore(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "size"
}

// --- the summary computation walk ------------------------------------------

type sumState struct {
	dirty     bool // persist epoch may hold a body store
	barriered bool // >=1 Batch.Barrier so far on this path
	flushed   bool // >=1 flush-ish call so far on this path
	pin       int  // RCU pin depth
	excl      bool // reader-excluded path (serial-discipline guard taken)
	fresh     map[*types.Var]bool
	drained   map[*types.Var]bool // batch params drained/escaped
}

func (s *sumState) Copy() flowState {
	c := &sumState{
		dirty: s.dirty, barriered: s.barriered, flushed: s.flushed,
		pin: s.pin, excl: s.excl,
		fresh:   make(map[*types.Var]bool, len(s.fresh)),
		drained: make(map[*types.Var]bool, len(s.drained)),
	}
	for k, v := range s.fresh {
		c.fresh[k] = v
	}
	for k, v := range s.drained {
		c.drained[k] = v
	}
	return c
}

func (s *sumState) Merge(o flowState) {
	os := o.(*sumState)
	s.dirty = s.dirty || os.dirty
	s.barriered = s.barriered && os.barriered
	s.flushed = s.flushed && os.flushed
	if os.pin > s.pin {
		s.pin = os.pin
	}
	s.excl = s.excl && os.excl
	for k := range s.fresh {
		if !os.fresh[k] {
			delete(s.fresh, k)
		}
	}
	for k, v := range s.drained {
		s.drained[k] = v && os.drained[k]
	}
}

type sumClient struct {
	prog *Program
	ss   *summarySet
	pkg  *Package
	out  *Summary

	batchParams map[*types.Var]int
	// heldArgs marks batch-param identifiers passed to a callee whose
	// summary proves the parameter is neither drained nor handed off —
	// the obligation stays here, so the generic escape rule must not
	// fire for that use.
	heldArgs   map[*ast.Ident]bool
	exited     bool
	pinLo      int
	pinHi      int
	drainedAll map[int]bool
}

func clampPin(d int) int {
	if d > 4 {
		return 4
	}
	if d < -4 {
		return -4
	}
	return d
}

// computeSummary runs one abstract-interpretation pass over the node's
// body, applying the current summaries of its callees.
func computeSummary(prog *Program, ss *summarySet, n *sumNode) *Summary {
	out := newBottomSummary()
	c := &sumClient{
		prog: prog, ss: ss, pkg: n.pkg, out: out,
		batchParams: batchParamVars(n.pkg, n.ftyp),
		heldArgs:    make(map[*ast.Ident]bool),
		drainedAll:  make(map[int]bool),
	}
	for _, i := range c.batchParams {
		c.drainedAll[i] = true
	}
	st := &sumState{
		fresh:   make(map[*types.Var]bool),
		drained: make(map[*types.Var]bool),
	}
	walkFunc(n.pkg, n.body, c, st)
	if !c.exited {
		// Every path panics or loops forever; nothing reaches a return,
		// so the "always" facts are vacuously true and deltas are zero.
		out.AlwaysClean = true
		out.FlushesAll = true
	} else {
		if c.pinLo == c.pinHi {
			out.PinDelta = clampPin(c.pinLo)
		}
	}
	out.BatchParamDrained = make(map[int]bool, len(c.drainedAll))
	for i, v := range c.drainedAll {
		out.BatchParamDrained[i] = v
	}
	return out
}

// batchParamVars maps each parameter of type *pmem.Batch (by package
// suffix and type name) to its position.
func batchParamVars(pkg *Package, ftyp *ast.FuncType) map[*types.Var]int {
	out := make(map[*types.Var]int)
	if ftyp == nil || ftyp.Params == nil {
		return out
	}
	i := 0
	for _, field := range ftyp.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if ok && isBatchPtr(v.Type()) {
				out[v] = i
			}
			i++
		}
	}
	return out
}

func isBatchPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Batch" && obj.Pkg() != nil &&
		pkgPathHasSuffix(obj.Pkg().Path(), "internal/pmem")
}

func (c *sumClient) suppressedAt(pos token.Pos, checker string) bool {
	return c.ss.suppressed(c.prog.Fset.Position(pos), checker)
}

func (c *sumClient) onBranch(st flowState, cond ast.Expr, taken bool) {
	s := st.(*sumState)
	if guard, when := serialGuardCond(cond); guard && taken == when {
		s.excl = true
	}
}

func (c *sumClient) onAssign(w *flowWalker, st flowState, as *ast.AssignStmt) {
	s := st.(*sumState)
	// A fresh-resource definition: v, err := fs.allocPage(...).
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn, _ := resolveCallee(c.prog, c.pkg, call); freshSource(fn) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := c.pkg.Info.Defs[id]
					if obj == nil {
						obj = c.pkg.Info.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok {
						w.scan(st, as.Rhs[0])
						s.fresh[v] = true
						return
					}
				}
			}
		}
	}
	// Rebinding a tracked fresh variable from anything else kills its
	// freshness.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
				delete(s.fresh, v)
			}
		}
	}
	w.scan(st, as)
}

func (c *sumClient) onIdent(st flowState, id *ast.Ident) {
	s := st.(*sumState)
	if c.heldArgs[id] {
		return
	}
	if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
		if _, isParam := c.batchParams[v]; isParam {
			// Escape: the batch param is handed onward (argument, struct
			// store, closure capture); draining is the recipient's job.
			s.drained[v] = true
		}
	}
}

func (c *sumClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*sumState)
	fn, lit := resolveCallee(c.prog, c.pkg, call)

	if fn != nil {
		// Persistence symbol rules (the pmem/layout layer is modeled by
		// symbols, not summaries).
		switch {
		case isMethod(fn, "internal/pmem", "Batch", "Barrier"):
			s.dirty = false
			s.barriered = true
			c.markBatchParamDrained(s, call)
			c.noteBlockPinned("Batch.Barrier")
			return
		case isMethod(fn, "internal/pmem", "Batch", "Drain"),
			isMethod(fn, "internal/pmem", "Batch", "AssertEmpty"):
			c.markBatchParamDrained(s, call)
			if fn.Name() == "Drain" {
				c.noteBlockPinned("Batch.Drain")
			}
			return
		case isMethod(fn, "internal/pmem", "Batch", "Flush"),
			isMethod(fn, "internal/pmem", "Device", "Flush"),
			isMethod(fn, "internal/pmem", "Device", "Persist"):
			s.flushed = true
			if isBodyStore(c.pkg, fn, call) {
				s.dirty = true
			}
			return
		}
		if isBodyStore(c.pkg, fn, call) {
			s.dirty = true
			return
		}
		// RCU symbol rules.
		if isMethod(fn, "internal/rcu", "Reader", "ReadLock") {
			s.pin++
			return
		}
		if isMethod(fn, "internal/rcu", "Reader", "ReadUnlock") {
			// Net-negative deltas are legal (unlock helpers), so no clamp
			// at zero here.
			s.pin--
			return
		}
		if isMethod(fn, "internal/rcu", "Domain", "Synchronize") ||
			isMethod(fn, "internal/rcu", "Domain", "Barrier") {
			// A graceblock suppression at the wait site asserts the wait is
			// safe for every caller (failure-path-only, reader-excluded), so
			// it stops MaySync from propagating at all; the pinned-reader
			// hazard (MayBlockPinned) still propagates — a suppression
			// about lock holders says nothing about pinned callers.
			if !c.suppressedAt(call.Pos(), "graceblock") {
				c.noteSync("Domain." + fn.Name())
			}
			c.noteBlockPinned("Domain." + fn.Name())
			return
		}
		// Locks.
		recvPkg, _ := recvTypeOf(fn)
		if pkgPathHasSuffix(recvPkg, "internal/hlock") {
			switch fn.Name() {
			case "Lock", "RLock":
				c.noteBlockPinned("hlock " + fn.Name())
				if cl, ok := classOfReceiver(c.pkg, call); ok {
					c.out.MayAcquire[cl.name] = cl
				}
			}
			return
		}
		if isMethod(fn, "internal/htable", "Table", "WithBucket") {
			c.out.MayAcquire[bucketClass.name] = bucketClass
			c.noteBlockPinned("Table.WithBucket")
			if len(call.Args) == 2 {
				if cb, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
					if cbn := c.ss.byLit[cb]; cbn != nil {
						c.applyCalleeSummary(s, cbn.sum, call)
					}
				}
			}
			return
		}
		if isMethod(fn, "internal/htable", "Table", "LockAll") {
			c.out.MayAcquire[bucketClass.name] = bucketClass
			c.noteBlockPinned("Table.LockAll")
			return
		}
		if p, t := recvTypeOf(fn); t == "Controller" && pkgPathHasSuffix(p, "internal/kernel") {
			c.out.MayCross = true
			c.noteBlockPinned("Controller." + fn.Name())
			return
		}
		// Direct pool-return primitives.
		if name, res, ok := recycleTarget(fn, call); ok {
			if !s.excl && !allFresh(c.pkg, res, s.fresh) &&
				!c.suppressedAt(call.Pos(), "retirecheck") && !c.out.MayRecycle {
				c.out.MayRecycle = true
				c.out.RecycleVia = name
			}
			return
		}
	}

	// Syntactic publishes (atomics are stubbed, so no symbol resolves).
	if _, ok := indexedAtomicStore(call); ok {
		c.out.MayPublish = true
	}

	// Module-local callee: apply its summary.
	var sum *Summary
	if lit != nil {
		if ln := c.ss.byLit[lit]; ln != nil {
			sum = ln.sum
		}
	} else if fn != nil && !summaryLayerExempt(fn) {
		if fnn := c.ss.byFunc[fn]; fnn != nil {
			sum = fnn.sum
		}
	}
	if sum != nil {
		c.applyCalleeSummary(s, sum, call)
		// A tracked batch passed to a callee that provably drains it (or
		// to one we cannot see through) transfers the obligation.
		c.applyBatchArgs(s, sum, call)
	} else {
		// Unknown callee: any batch param passed along escapes.
		c.applyBatchArgs(s, nil, call)
	}
}

func (c *sumClient) applyCalleeSummary(s *sumState, sum *Summary, call *ast.CallExpr) {
	if sum.MayStoreBody {
		s.dirty = true
	} else if sum.AlwaysClean {
		s.dirty = false
		s.barriered = true
	}
	if sum.FlushesAll {
		s.flushed = true
	}
	for k, v := range sum.MayAcquire {
		c.out.MayAcquire[k] = v
	}
	s.pin = clampPin(s.pin + sum.PinDelta)
	if sum.MayBlockPinned && !c.out.MayBlockPinned {
		c.out.MayBlockPinned = true
		c.out.BlockVia = calleeName(c.prog, c.pkg, call) + " -> " + sum.BlockVia
	}
	if sum.MaySync && !c.suppressedAt(call.Pos(), "graceblock") && !c.out.MaySync {
		c.out.MaySync = true
		c.out.SyncVia = calleeName(c.prog, c.pkg, call) + " -> " + sum.SyncVia
	}
	if sum.MayRecycle && !s.excl && !c.suppressedAt(call.Pos(), "retirecheck") && !c.out.MayRecycle {
		c.out.MayRecycle = true
		c.out.RecycleVia = calleeName(c.prog, c.pkg, call) + " -> " + sum.RecycleVia
	}
	if sum.MayPublish {
		c.out.MayPublish = true
	}
	if sum.MayCross {
		c.out.MayCross = true
		c.noteBlockPinned(calleeName(c.prog, c.pkg, call) + " (kernel crossing)")
	}
}

// applyBatchArgs marks tracked batch params passed as arguments: drained
// when the callee provably drains that parameter or is opaque, kept
// pending when the callee's summary proves it neither drains nor hands
// off.
func (c *sumClient) applyBatchArgs(s *sumState, sum *Summary, call *ast.CallExpr) {
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			continue
		}
		if _, isParam := c.batchParams[v]; !isParam {
			continue
		}
		if sum != nil {
			if drained, known := sum.BatchParamDrained[i]; known && !drained {
				// Obligation stays with this function; keep the generic
				// escape rule from marking this use as a handoff.
				c.heldArgs[id] = true
				continue
			}
		}
		s.drained[v] = true
	}
}

func (c *sumClient) markBatchParamDrained(s *sumState, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
		if _, isParam := c.batchParams[v]; isParam {
			s.drained[v] = true
		}
	}
}

func (c *sumClient) noteBlockPinned(via string) {
	if !c.out.MayBlockPinned {
		c.out.MayBlockPinned = true
		c.out.BlockVia = via
	}
}

func (c *sumClient) noteSync(via string) {
	if !c.out.MaySync {
		c.out.MaySync = true
		c.out.SyncVia = via
	}
}

func (c *sumClient) onReturn(st flowState, _ token.Pos) {
	s := st.(*sumState)
	if s.dirty {
		c.out.MayStoreBody = true
	}
	if !(s.barriered && !s.dirty) {
		c.out.AlwaysClean = false
	}
	if !s.flushed {
		c.out.FlushesAll = false
	}
	if !c.exited {
		c.exited = true
		c.pinLo, c.pinHi = s.pin, s.pin
	} else {
		if s.pin < c.pinLo {
			c.pinLo = s.pin
		}
		if s.pin > c.pinHi {
			c.pinHi = s.pin
		}
	}
	for v, i := range c.batchParams {
		if !s.drained[v] {
			c.drainedAll[i] = false
		}
	}
}
