package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts golden expectations of the form
//
//	// want "regexp"
//
// from fixture source lines. The quoted text is a regular expression
// matched against the finding message reported on that line.
var wantRe = regexp.MustCompile(`// want "(.*)"`)

type wantComment struct {
	file    string // base filename
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, dir string) []*wantComment {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantComment
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
			}
			wants = append(wants, &wantComment{file: e.Name(), line: i + 1, pattern: pat})
		}
	}
	return wants
}

// TestGolden runs each checker over its fixture package and diffs the
// unsuppressed findings against the // want comments: every finding must
// be expected, and every expectation must fire.
func TestGolden(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cases := []struct {
		dir            string
		checker        string
		wantSuppressed int
	}{
		{"persistorder", "persistorder", 0},
		{"flushcheck", "flushcheck", 1},
		{"epochdrain", "epochdrain", 0},
		{"lockorder", "lockorder", 0},
		{"rcusection", "rcusection", 0},
		{"counterreg", "counterreg", 0},
		{"retirecheck", "retirecheck", 1},
		{"publishorder", "publishorder", 0},
		{"graceblock", "graceblock", 0},
		{"lockcycle", "lockorder", 0},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join(root, tc.dir)
			prog, err := LoadDirs(root, []string{dir})
			if err != nil {
				t.Fatal(err)
			}
			analyzers, err := Select(tc.checker)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run(prog, analyzers)
			wants := collectWants(t, dir)

			suppressed := 0
			for _, f := range findings {
				if f.Suppressed {
					suppressed++
					if f.Reason == "" {
						t.Errorf("suppressed finding with empty reason: %s", f)
					}
					continue
				}
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line &&
						w.pattern.MatchString(f.Message) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none",
						w.file, w.line, w.pattern)
				}
			}
			if suppressed != tc.wantSuppressed {
				t.Errorf("suppressed findings = %d, want %d", suppressed, tc.wantSuppressed)
			}
		})
	}
}

// TestMalformedAllows checks that broken //arcklint:allow directives are
// themselves reported and do not suppress anything. (These fixtures
// cannot carry want comments: appended text would parse as the
// directive's reason.)
func TestMalformedAllows(t *testing.T) {
	root := filepath.Join("testdata", "src")
	dir := filepath.Join(root, "badallow")
	prog, err := LoadDirs(root, []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := Select("flushcheck")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, analyzers)

	var meta, unsuppressed, suppressed []Finding
	for _, f := range findings {
		switch {
		case f.Checker == "arcklint":
			meta = append(meta, f)
		case f.Suppressed:
			suppressed = append(suppressed, f)
		default:
			unsuppressed = append(unsuppressed, f)
		}
	}

	wantMeta := []string{
		`allow directive for "flushcheck" requires a reason`,
		`unknown checker "nosuchchecker"`,
	}
	if len(meta) != len(wantMeta) {
		t.Fatalf("arcklint meta-findings = %d, want %d: %v", len(meta), len(wantMeta), meta)
	}
	for i, want := range wantMeta {
		if !strings.Contains(meta[i].Message, want) {
			t.Errorf("meta finding %d = %q, want substring %q", i, meta[i].Message, want)
		}
	}

	// The malformed directives must not suppress their stores; only the
	// valid one does.
	if len(unsuppressed) != 2 {
		t.Errorf("unsuppressed flushcheck findings = %d, want 2: %v", len(unsuppressed), unsuppressed)
	}
	if len(suppressed) != 1 {
		t.Fatalf("suppressed findings = %d, want 1: %v", len(suppressed), suppressed)
	}
	if want := "recovery rewrites this line before readers see it"; suppressed[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", suppressed[0].Reason, want)
	}
}

// TestSelect covers the checker-selection surface the CLI exposes.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != 9 {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := Select("persistorder, lockorder")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select(two) = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(nosuch): expected error")
	}
}

// TestLockCycles pins the whole-program acquisition-graph rule: the
// seeded two-function cycle in the lockcycle fixture must produce a
// cycle finding naming both classes (the pairwise inversion alone is
// checked by TestGolden).
func TestLockCycles(t *testing.T) {
	root := filepath.Join("testdata", "src")
	prog, err := LoadDirs(root, []string{filepath.Join(root, "lockcycle")})
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := Select("lockorder")
	if err != nil {
		t.Fatal(err)
	}
	cycles := 0
	for _, f := range Run(prog, analyzers) {
		if strings.Contains(f.Message, "lock-order cycle among classes") {
			cycles++
			if want := "libfs/diridx, libfs/dirtail"; !strings.Contains(f.Message, want) {
				t.Errorf("cycle finding %q does not name %q", f.Message, want)
			}
		}
	}
	if cycles != 1 {
		t.Errorf("lock-order cycle findings = %d, want 1", cycles)
	}
}

// TestSummaryDeterminism loads the same fixtures twice from scratch and
// requires byte-identical JSON for the full finding set: the summary
// engine's SCC order, fixpoint, and via-chain strings must not depend on
// map iteration order.
func TestSummaryDeterminism(t *testing.T) {
	root := filepath.Join("testdata", "src")
	dirs := []string{
		filepath.Join(root, "retirecheck"),
		filepath.Join(root, "graceblock"),
		filepath.Join(root, "lockorder"),
	}
	run := func() []byte {
		t.Helper()
		prog, err := LoadDirs(root, dirs)
		if err != nil {
			t.Fatal(err)
		}
		findings := Run(prog, Analyzers())
		// Strip absolute paths so the comparison covers content, not cwd.
		for i := range findings {
			findings[i].Pos.Filename = filepath.Base(findings[i].Pos.Filename)
		}
		data, err := json.Marshal(findings)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := run()
	for i := 0; i < 3; i++ {
		if next := run(); !bytes.Equal(first, next) {
			t.Fatalf("run %d differs from run 0:\n%s\nvs\n%s", i+1, first, next)
		}
	}
}

// TestSuppressionAudit covers the -suppressions surface: the live
// directive (gating a summary propagation) and the stale one must be
// told apart.
func TestSuppressionAudit(t *testing.T) {
	root := filepath.Join("testdata", "src")
	prog, err := LoadDirs(root, []string{filepath.Join(root, "retirecheck")})
	if err != nil {
		t.Fatal(err)
	}
	entries, findings := AuditSuppressions(prog)
	for _, f := range findings {
		if f.Checker == "arcklint" {
			t.Errorf("unexpected malformed directive: %s", f)
		}
	}
	if len(entries) != 2 {
		t.Fatalf("suppression entries = %d, want 2: %v", len(entries), entries)
	}
	// Entries are sorted by line: poolPrimitive's live allow first, then
	// staleAllowed's leftover.
	if entries[0].Stale {
		t.Errorf("poolPrimitive directive reported stale; it suppresses a finding and gates MayRecycle")
	}
	if !entries[1].Stale {
		t.Errorf("staleAllowed directive not reported stale; it covers a retire call that cannot fire")
	}
	for _, e := range entries {
		if e.Checker != "retirecheck" || e.Reason == "" {
			t.Errorf("bad entry: %+v", e)
		}
	}
}

// TestFindingString pins the file:line: checker: message format the CI
// job and editors parse.
func TestFindingString(t *testing.T) {
	f := Finding{Checker: "persistorder", Message: "m"}
	f.Pos.Filename = "dir.go"
	f.Pos.Line = 7
	if got, want := f.String(), "dir.go:7: persistorder: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestExpandPatterns checks testdata is skipped by ./... expansion — the
// fixture module must never leak into a real-tree run.
func TestExpandPatterns(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	_, dirs, err := ExpandPatterns(cwd, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("ExpandPatterns(./...) included %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Errorf("expected only this package dir under %s, got %v", cwd, dirs)
	}
}

func ExampleFinding_String() {
	f := Finding{Checker: "flushcheck", Message: "raw store never flushed"}
	f.Pos.Filename = "dir.go"
	f.Pos.Line = 256
	fmt.Println(f)
	// Output: dir.go:256: flushcheck: raw store never flushed
}
