package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// persistorder enforces the static form of the §4.2 invariant: a store to
// a dentry commit marker (layout.CommitDentry) must be dominated by a
// Batch.Barrier since the last body store on every path through the
// function. On x86 a clwb to the marker line can overtake earlier clwb's
// to the body lines unless an sfence sits between them; Batch.Barrier is
// the repository's only ordering point that also writes the queued body
// lines back, so it is the only call that ends a body epoch. (A raw
// Device.Fence does not: lines still queued in a Batch have not even been
// written back when it executes.)
//
// The rule is conservative at function entry: the caller's persist queue
// is unknown, so a function that sets a commit marker must issue its own
// Barrier first even if it performed no body store itself.
var persistOrderAnalyzer = &Analyzer{
	Name: "persistorder",
	Doc: "commit-marker stores must be dominated by a Batch.Barrier since " +
		"the last body store on every path (§4.2 missing-fence class)",
	Run: runPersistOrder,
}

type poState struct {
	// dirty means a body store may sit in the current ordering epoch.
	dirty bool
}

func (s *poState) Copy() flowState   { c := *s; return &c }
func (s *poState) Merge(o flowState) { s.dirty = s.dirty || o.(*poState).dirty }

type poClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

func (c *poClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*poState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		switch {
		case isPkgFunc(fn, "internal/layout", "CommitDentry"):
			if s.dirty {
				*c.findings = append(*c.findings, Finding{
					Pos: c.prog.Fset.Position(call.Pos()),
					Message: "commit marker set with body stores possibly still in the ordering " +
						"epoch: no Batch.Barrier dominates this call since the last body store (§4.2)",
				})
			}
			return
		case isMethod(fn, "internal/pmem", "Batch", "Barrier"):
			// Only Barrier orders: Drain issues the write-backs but no fence,
			// so a later marker clwb could still overtake them.
			s.dirty = false
			return
		case isBodyStore(c.pkg, fn, call):
			s.dirty = true
			return
		}
	}
	// Other module-local callees are seen through their effect summary: a
	// helper that can leave a body store in the epoch dirties the caller,
	// one that ends every path on a Barrier cleans it.
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil {
		if sum.MayStoreBody {
			s.dirty = true
		} else if sum.AlwaysClean {
			s.dirty = false
		}
	}
}

func (c *poClient) onReturn(flowState, token.Pos) {}

// isBodyStore reports whether the call writes or queues dentry-body (or
// inode) bytes. A persist call whose argument derives from MarkerOff is
// the marker-line persist of protocol step 2, not a body store.
func isBodyStore(pkg *Package, fn *types.Func, call *ast.CallExpr) bool {
	switch {
	case isPkgFunc(fn, "internal/layout", "WriteDentryBody"),
		isMethod(fn, "internal/libfs", "FS", "persistDentryBody"):
		return true
	case isMethod(fn, "internal/pmem", "Batch", "Flush"),
		isMethod(fn, "internal/pmem", "Batch", "WriteStream"),
		isMethod(fn, "internal/pmem", "Batch", "ZeroStream"),
		isMethod(fn, "internal/pmem", "Device", "Write"),
		isMethod(fn, "internal/pmem", "Device", "Zero"),
		isMethod(fn, "internal/pmem", "Device", "Store8"),
		isMethod(fn, "internal/pmem", "Device", "Store16"),
		isMethod(fn, "internal/pmem", "Device", "Store32"),
		isMethod(fn, "internal/pmem", "Device", "Store64"),
		isMethod(fn, "internal/pmem", "Device", "WriteNT"),
		isMethod(fn, "internal/pmem", "Device", "ZeroNT"):
		return !argsUseMarkerOff(pkg, call)
	}
	return false
}

// argsUseMarkerOff reports whether any argument subtree calls
// DentryRef.MarkerOff — the signature of a marker-line persist.
func argsUseMarkerOff(pkg *Package, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(pkg, inner); isMethod(fn, "internal/layout", "DentryRef", "MarkerOff") {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

func runPersistOrder(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		c := &poClient{pkg: pkg, prog: prog, findings: &findings}
		// Entry state is dirty: the caller's queue contents are unknown.
		walkFunc(pkg, decl.Body, c, &poState{dirty: true})
	})
	return findings
}
