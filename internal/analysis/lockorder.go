package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockorder enforces the declared partial order on hlock acquisition in
// internal/libfs and internal/kernel. Lock classes are identified by the
// (struct, field) pair holding the lock; the declared order, outermost
// first, is:
//
//	libfs/minode   < libfs/dirbucket < libfs/dirtail < libfs/diridx
//	             < libfs/inomu < libfs/pagemu
//	             < kernel/epoch < kernel/shadowshard < kernel/apps
//	             < kernel/pagestripe < kernel/aclshard < kernel/mapping
//
// The kernel classes mirror the sharded control plane: the big-reader
// epoch is outermost, then the shadow-inode shard for the crossing's
// target, then the leaf locks (app table, page-owner stripes, ACL
// shards) that fast paths take briefly while holding their shard, and
// innermost the per-mapping revocation lock.
//
// libfs/dirbucket is the directory hash-table bucket lock, acquired
// through Table.WithBucket; the checker interprets the callback inline
// with the bucket held. Try-acquisitions (TryLock/TryRLock) cannot
// deadlock and are ignored, as are locks outside the class table (e.g.
// sync.Mutex fields, which stubbed imports keep invisible anyway).
//
// The check is intraprocedural: nestings created across call boundaries
// (appendDentry's tail lock around ensureTailSpace's index lock, say) are
// invisible to it. The class table is still the single written form of
// the intended order, and any same-function inversion is caught.
var lockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "hlock acquisition in libfs/kernel must follow the declared " +
		"partial order (outermost first)",
	Run: runLockOrder,
}

type lockClass struct {
	rank int
	name string
}

// lockClasses maps (struct type name, field name) to its class. Keeping
// the key type-name based lets fixtures declare the same shapes.
var lockClasses = map[[2]string]lockClass{
	{"minode", "lock"}:       {0, "libfs/minode"},
	{"tailCursor", "mu"}:     {2, "libfs/dirtail"},
	{"dirState", "idxMu"}:    {3, "libfs/diridx"},
	{"FS", "inoMu"}:          {4, "libfs/inomu"},
	{"FS", "pageMu"}:         {5, "libfs/pagemu"},
	{"Controller", "epoch"}:  {6, "kernel/epoch"},
	{"shadowShard", "mu"}:    {7, "kernel/shadowshard"},
	{"Controller", "appsMu"}: {8, "kernel/apps"},
	{"pageStripe", "mu"}:     {9, "kernel/pagestripe"},
	{"aclShard", "mu"}:       {10, "kernel/aclshard"},
	{"Mapping", "mu"}:        {11, "kernel/mapping"},
}

// bucketClass is acquired via htable's WithBucket rather than a direct
// Lock call.
var bucketClass = lockClass{1, "libfs/dirbucket"}

type loState struct {
	// held maps class name -> class for every lock held on this path.
	held map[string]lockClass
}

func (s *loState) Copy() flowState {
	c := &loState{held: make(map[string]lockClass, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *loState) Merge(o flowState) {
	// Union: a lock held on either incoming path constrains what may be
	// acquired after the join.
	for k, v := range o.(*loState).held {
		s.held[k] = v
	}
}

type loClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

func (c *loClient) acquire(s *loState, cl lockClass, pos token.Pos) {
	for _, h := range s.held {
		switch {
		case h.rank == cl.rank:
			*c.findings = append(*c.findings, Finding{
				Pos: c.prog.Fset.Position(pos),
				Message: fmt.Sprintf("lock class %s acquired while a lock of the same "+
					"class is already held (self-deadlock risk)", cl.name),
			})
		case h.rank > cl.rank:
			*c.findings = append(*c.findings, Finding{
				Pos: c.prog.Fset.Position(pos),
				Message: fmt.Sprintf("%s acquired while holding %s: the declared order "+
					"is %s before %s", cl.name, h.name, cl.name, h.name),
			})
		}
	}
	s.held[cl.name] = cl
}

func (c *loClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*loState)
	fn := calleeFunc(c.pkg, call)
	if fn == nil {
		return
	}
	if isMethod(fn, "internal/htable", "Table", "WithBucket") {
		// The callback runs with the bucket lock held; interpret it inline
		// on a throwaway copy (whatever it locks, it unlocks before
		// WithBucket returns).
		if len(call.Args) == 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				inner := s.Copy().(*loState)
				c.acquire(inner, bucketClass, call.Pos())
				w.block(lit.Body, inner)
				return
			}
		}
		c.acquire(s, bucketClass, call.Pos())
		delete(s.held, bucketClass.name)
		return
	}
	if isMethod(fn, "internal/htable", "Table", "LockAll") {
		// LockAll takes every bucket; the release happens through the
		// returned closure, which this checker cannot see, so the class
		// conservatively stays held to the end of the function.
		c.acquire(s, bucketClass, call.Pos())
		return
	}
	recvPkg, _ := recvTypeOf(fn)
	if !pkgPathHasSuffix(recvPkg, "internal/hlock") {
		return
	}
	cl, ok := classOfReceiver(c.pkg, call)
	if !ok {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock":
		c.acquire(s, cl, call.Pos())
	case "Unlock", "RUnlock":
		delete(s.held, cl.name)
	}
}

func (c *loClient) onReturn(flowState, token.Pos) {}

// classOfReceiver resolves the lock field a call like tc.mu.Lock() or
// fs.pageMu[s].Lock() acquires, via the (owner struct, field) pair.
func classOfReceiver(pkg *Package, call *ast.CallExpr) (lockClass, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false
	}
	recv := ast.Unparen(sel.X)
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ast.Unparen(ix.X)
	}
	fsel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false
	}
	tv, ok := pkg.Info.Types[fsel.X]
	if !ok || tv.Type == nil {
		return lockClass{}, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockClass{}, false
	}
	cl, ok := lockClasses[[2]string{named.Obj().Name(), fsel.Sel.Name}]
	return cl, ok
}

func runLockOrder(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		c := &loClient{pkg: pkg, prog: prog, findings: &findings}
		walkFunc(pkg, decl.Body, c, &loState{held: make(map[string]lockClass)})
	})
	return findings
}
