package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder enforces the declared partial order on hlock acquisition in
// internal/libfs and internal/kernel. Lock classes are identified by the
// (struct, field) pair holding the lock; the declared order, outermost
// first, is:
//
//	libfs/minode   < libfs/dirbucket < libfs/dirtail < libfs/diridx
//	             < libfs/inomu < libfs/pagemu
//	             < kernel/epoch < kernel/shadowshard < kernel/apps
//	             < kernel/pagestripe < kernel/aclshard < kernel/mapping
//
// The kernel classes mirror the sharded control plane: the big-reader
// epoch is outermost, then the shadow-inode shard for the crossing's
// target, then the leaf locks (app table, page-owner stripes, ACL
// shards) that fast paths take briefly while holding their shard, and
// innermost the per-mapping revocation lock.
//
// libfs/dirbucket is the directory hash-table bucket lock, acquired
// through Table.WithBucket; the checker interprets the callback inline
// with the bucket held. Try-acquisitions (TryLock/TryRLock) cannot
// deadlock and are ignored, as are locks outside the class table (e.g.
// sync.Mutex fields, which stubbed imports keep invisible anyway).
//
// Nestings created across call boundaries (appendDentry's tail lock
// around ensureTailSpace's index lock, say) are seen through callee
// effect summaries: a call into a function whose summary says it may
// acquire a class ranked above a held class is flagged at the call site.
// Same-class interprocedural nesting is deliberately not flagged — the
// summary cannot distinguish instances, and the address-ordered
// double-lock idiom (rename, unlink's parent/child pair) is legitimate.
//
// On top of the pairwise checks, every held-then-acquired pair — direct
// or through a summary — feeds a whole-program acquisition graph, and
// any cycle in that graph (a potential deadlock no pairwise rank check
// implies by itself) is reported once, at the first edge that closes it.
var lockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "hlock acquisition in libfs/kernel must follow the declared " +
		"partial order (outermost first); the whole-program acquisition " +
		"graph must be acyclic",
	Run: runLockOrder,
}

type lockClass struct {
	rank int
	name string
}

// lockClasses maps (struct type name, field name) to its class. Keeping
// the key type-name based lets fixtures declare the same shapes.
var lockClasses = map[[2]string]lockClass{
	{"minode", "lock"}:       {0, "libfs/minode"},
	{"tailCursor", "mu"}:     {2, "libfs/dirtail"},
	{"dirState", "idxMu"}:    {3, "libfs/diridx"},
	{"FS", "inoMu"}:          {4, "libfs/inomu"},
	{"FS", "pageMu"}:         {5, "libfs/pagemu"},
	{"Controller", "epoch"}:  {6, "kernel/epoch"},
	{"shadowShard", "mu"}:    {7, "kernel/shadowshard"},
	{"Controller", "appsMu"}: {8, "kernel/apps"},
	{"pageStripe", "mu"}:     {9, "kernel/pagestripe"},
	{"aclShard", "mu"}:       {10, "kernel/aclshard"},
	{"Mapping", "mu"}:        {11, "kernel/mapping"},
}

// bucketClass is acquired via htable's WithBucket rather than a direct
// Lock call.
var bucketClass = lockClass{1, "libfs/dirbucket"}

type loState struct {
	// held maps class name -> class for every lock held on this path.
	held map[string]lockClass
}

func (s *loState) Copy() flowState {
	c := &loState{held: make(map[string]lockClass, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *loState) Merge(o flowState) {
	// Union: a lock held on either incoming path constrains what may be
	// acquired after the join.
	for k, v := range o.(*loState).held {
		s.held[k] = v
	}
}

// lockEdges accumulates the whole-program acquisition graph: an edge
// from->to means some path acquires class "to" while holding class
// "from". Each edge keeps the first position that created it (the walk
// order over packages, files, and declarations is deterministic).
type lockEdges struct {
	pos map[[2]string]token.Pos
}

func (e *lockEdges) add(from, to string, pos token.Pos) {
	k := [2]string{from, to}
	if _, ok := e.pos[k]; !ok {
		e.pos[k] = pos
	}
}

type loClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
	edges    *lockEdges
}

func (c *loClient) acquire(s *loState, cl lockClass, pos token.Pos) {
	for _, h := range s.held {
		switch {
		case h.rank == cl.rank:
			*c.findings = append(*c.findings, Finding{
				Pos: c.prog.Fset.Position(pos),
				Message: fmt.Sprintf("lock class %s acquired while a lock of the same "+
					"class is already held (self-deadlock risk)", cl.name),
			})
		case h.rank > cl.rank:
			*c.findings = append(*c.findings, Finding{
				Pos: c.prog.Fset.Position(pos),
				Message: fmt.Sprintf("%s acquired while holding %s: the declared order "+
					"is %s before %s", cl.name, h.name, cl.name, h.name),
			})
		}
		if h.rank != cl.rank {
			c.edges.add(h.name, cl.name, pos)
		}
	}
	s.held[cl.name] = cl
}

func (c *loClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*loState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn == nil {
		// A function literal bound to a local still has a summary; fall
		// through to the interprocedural check below.
		c.checkSummary(s, call)
		return
	}
	if isMethod(fn, "internal/htable", "Table", "WithBucket") {
		// The callback runs with the bucket lock held; interpret it inline
		// on a throwaway copy (whatever it locks, it unlocks before
		// WithBucket returns).
		if len(call.Args) == 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				inner := s.Copy().(*loState)
				c.acquire(inner, bucketClass, call.Pos())
				w.block(lit.Body, inner)
				return
			}
		}
		c.acquire(s, bucketClass, call.Pos())
		delete(s.held, bucketClass.name)
		return
	}
	if isMethod(fn, "internal/htable", "Table", "LockAll") {
		// LockAll takes every bucket; the release happens through the
		// returned closure, which this checker cannot see, so the class
		// conservatively stays held to the end of the function.
		c.acquire(s, bucketClass, call.Pos())
		return
	}
	recvPkg, _ := recvTypeOf(fn)
	if pkgPathHasSuffix(recvPkg, "internal/hlock") {
		cl, ok := classOfReceiver(c.pkg, call)
		if !ok {
			return
		}
		switch fn.Name() {
		case "Lock", "RLock":
			c.acquire(s, cl, call.Pos())
		case "Unlock", "RUnlock":
			delete(s.held, cl.name)
		}
		return
	}
	c.checkSummary(s, call)
}

// checkSummary performs the interprocedural half of the check: the
// classes the callee can acquire against the held set. Same-class pairs
// are skipped — the summary cannot tell instances apart, and the
// address-ordered double-lock idiom is legitimate — but cross-class
// pairs are rank-checked and feed the acquisition graph.
func (c *loClient) checkSummary(s *loState, call *ast.CallExpr) {
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil && len(sum.MayAcquire) > 0 {
		names := make([]string, 0, len(sum.MayAcquire))
		for n := range sum.MayAcquire {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cl := sum.MayAcquire[n]
			for _, h := range s.held {
				if h.rank == cl.rank {
					continue
				}
				if h.rank > cl.rank {
					*c.findings = append(*c.findings, Finding{
						Pos: c.prog.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("call to %s can acquire %s while %s is held: "+
							"the declared order is %s before %s",
							calleeName(c.prog, c.pkg, call), cl.name, h.name, cl.name, h.name),
					})
				}
				c.edges.add(h.name, cl.name, call.Pos())
			}
		}
	}
}

func (c *loClient) onReturn(flowState, token.Pos) {}

// classOfReceiver resolves the lock field a call like tc.mu.Lock() or
// fs.pageMu[s].Lock() acquires, via the (owner struct, field) pair.
func classOfReceiver(pkg *Package, call *ast.CallExpr) (lockClass, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false
	}
	recv := ast.Unparen(sel.X)
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ast.Unparen(ix.X)
	}
	fsel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false
	}
	tv, ok := pkg.Info.Types[fsel.X]
	if !ok || tv.Type == nil {
		return lockClass{}, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return lockClass{}, false
	}
	cl, ok := lockClasses[[2]string{named.Obj().Name(), fsel.Sel.Name}]
	return cl, ok
}

func runLockOrder(prog *Program) []Finding {
	var findings []Finding
	edges := &lockEdges{pos: make(map[[2]string]token.Pos)}
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		c := &loClient{pkg: pkg, prog: prog, findings: &findings, edges: edges}
		walkFunc(pkg, decl.Body, c, &loState{held: make(map[string]lockClass)})
	})
	findings = append(findings, lockCycles(prog, edges)...)
	return findings
}

// lockCycles reports each strongly connected component of the
// acquisition graph with more than one class: a set of lock classes
// that can each be held while acquiring the next is a deadlock waiting
// for the right interleaving, whatever their declared ranks say.
func lockCycles(prog *Program, edges *lockEdges) []Finding {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges.pos {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(adj[n])
	}

	// Tarjan over the class graph (tiny: one node per lock class).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	counter := 0
	var connect func(n string)
	connect = func(n string) {
		index[n] = counter
		low[n] = counter
		counter++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if _, seen := index[m]; !seen {
				connect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			connect(n)
		}
	}

	rankOf := make(map[string]int, len(lockClasses)+1)
	for _, cl := range lockClasses {
		rankOf[cl.name] = cl.rank
	}
	rankOf[bucketClass.name] = bucketClass.rank

	var out []Finding
	for _, scc := range sccs {
		sort.Strings(scc)
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		// Anchor the finding at the first rank-inversion edge inside the
		// component — the acquisition that closes the cycle (a cycle over
		// totally ranked classes must contain at least one inversion).
		var pos, anyPos token.Pos
		for k, p := range edges.pos {
			if !in[k[0]] || !in[k[1]] {
				continue
			}
			if anyPos == token.NoPos || p < anyPos {
				anyPos = p
			}
			if rankOf[k[0]] > rankOf[k[1]] && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
		if pos == token.NoPos {
			pos = anyPos
		}
		out = append(out, Finding{
			Pos: prog.Fset.Position(pos),
			Message: fmt.Sprintf("lock-order cycle among classes %s: each can be held "+
				"while acquiring the next, so a deadlock needs only the right interleaving",
				strings.Join(scc, ", ")),
		})
	}
	return out
}
