package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// counterreg keeps the telemetry registry honest. Three rules:
//
//  1. Registrations (telemetry Set.Counter / Set.Gauge) must pass a
//     string literal, so the registry contents are statically known.
//  2. Each name is registered at exactly one call site; a second site is
//     flagged against the first (sites are ordered by position, so the
//     canonical one is stable).
//  3. Any other string literal that looks like a namespaced counter name
//     (pmem.*, kernel.*, verifier.*, libfs.*, trace.*, htable.*,
//     pmalloc.*) must match a registered name — the drift that silently
//     breaks dashboards and bench tooling when a counter is renamed but a
//     lookup key is not. Whitebox killpoint sites (pmem.Killpoint /
//     ArmKillpoint names like "libfs.create.marker") share the dotted
//     vocabulary but are not counters: any value that appears as a
//     Killpoint argument somewhere in the program is exempt from the
//     drift rule everywhere (site lists, arming calls).
//
// The registry is program-wide: run the checker over the whole module
// (./...) or registrations in unloaded packages will look missing.
var counterRegAnalyzer = &Analyzer{
	Name: "counterreg",
	Doc: "telemetry counters are registered once, by string literal, and " +
		"every namespaced name literal matches a registered counter",
	Run: runCounterReg,
}

// counterNameRe matches the repository's namespaced counter names. Names
// without a namespace dot (e.g. "syscalls") are not checked for drift but
// still participate in the once-only rule. Dotted suffixes are allowed
// ("pmalloc.steals.remote", "kernel.shard.acquisitions").
var counterNameRe = regexp.MustCompile(`^(pmem|kernel|verifier|libfs|trace|htable|pmalloc)\.[a-z0-9_.]+$`)

type regSite struct {
	name string
	pos  token.Position
}

func runCounterReg(prog *Program) []Finding {
	var findings []Finding
	var sites []regSite
	type literal struct {
		value string
		pos   token.Position
	}
	var literals []literal
	regLits := make(map[*ast.BasicLit]bool)
	killSites := make(map[string]bool)

	for _, pkg := range prog.Pkgs {
		if pkgPathHasSuffix(pkg.Path, "internal/telemetry") {
			// The registry implementation itself is exempt.
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || len(call.Args) == 0 {
					return true
				}
				if isPkgFunc(fn, "internal/pmem", "Killpoint") ||
					isPkgFunc(fn, "internal/pmem", "ArmKillpoint") {
					if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if site, err := strconv.Unquote(lit.Value); err == nil {
							killSites[site] = true
						}
					}
					return true
				}
				if !isMethod(fn, "internal/telemetry", "Set", "Counter") &&
					!isMethod(fn, "internal/telemetry", "Set", "Gauge") {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					findings = append(findings, Finding{
						Pos: prog.Fset.Position(call.Args[0].Pos()),
						Message: "telemetry counter registered with a non-constant name; " +
							"use a string literal so the registry is statically checkable",
					})
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				regLits[lit] = true
				sites = append(sites, regSite{name: name, pos: prog.Fset.Position(lit.Pos())})
				return true
			})
		}
	}

	// Collect every other string literal for the drift rule.
	for _, pkg := range prog.Pkgs {
		if pkgPathHasSuffix(pkg.Path, "internal/telemetry") {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING || regLits[lit] {
					return true
				}
				if v, err := strconv.Unquote(lit.Value); err == nil {
					literals = append(literals, literal{value: v, pos: prog.Fset.Position(lit.Pos())})
				}
				return true
			})
		}
	}

	// Rule 2: once-only registration.
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].pos, sites[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	registered := make(map[string]token.Position)
	for _, s := range sites {
		if first, dup := registered[s.name]; dup {
			findings = append(findings, Finding{
				Pos: s.pos,
				Message: fmt.Sprintf("counter %q is already registered at %s:%d",
					s.name, filepath.Base(first.Filename), first.Line),
			})
			continue
		}
		registered[s.name] = s.pos
	}

	// Rule 3: namespaced literals must refer to registered counters.
	for _, l := range literals {
		if !counterNameRe.MatchString(l.value) || killSites[l.value] {
			continue
		}
		if _, ok := registered[l.value]; !ok {
			findings = append(findings, Finding{
				Pos: l.pos,
				Message: fmt.Sprintf("string literal %q looks like a counter name but no "+
					"counter with that name is registered", l.value),
			})
		}
	}
	return findings
}
