package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// epochdrain tracks every pmem.Batch obtained in a function (via
// Device.NewBatch or NewEagerBatch) and requires that each one reaches a
// drain point — Barrier, Drain, or AssertEmpty — or is handed off (used
// as a call argument, stored into a struct, returned) on every path out
// of the function, early error returns included. A batch dropped with
// lines still queued means those write-backs never happen: the stores
// persist only by cache-eviction accident, silently reopening the
// §4.2-adjacent window the batch existed to close.
//
// Tracking is per local variable and intraprocedural. Any use of the
// variable outside method-receiver position counts as a handoff: once the
// batch escapes, responsibility for draining it moves with it.
var epochDrainAnalyzer = &Analyzer{
	Name: "epochdrain",
	Doc: "a pmem.Batch obtained in a function must reach Barrier/Drain or " +
		"be handed off on every return path",
	Run: runEpochDrain,
}

const (
	edPending = iota
	edDone
)

type edState struct {
	// batches maps each tracked local to its status and creation site.
	batches map[*types.Var]edEntry
}

type edEntry struct {
	status int
	pos    token.Pos
}

func (s *edState) Copy() flowState {
	c := &edState{batches: make(map[*types.Var]edEntry, len(s.batches))}
	for v, e := range s.batches {
		c.batches[v] = e
	}
	return c
}

func (s *edState) Merge(o flowState) {
	for v, e := range o.(*edState).batches {
		if cur, ok := s.batches[v]; !ok || (e.status == edPending && cur.status != edPending) {
			s.batches[v] = e
		}
	}
}

type edClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
	// held marks batch identifiers passed to a callee whose summary
	// proves the corresponding parameter is neither drained nor handed
	// off: that use is not an escape, the obligation stays here.
	held map[*ast.Ident]bool
}

// newBatchCall reports whether the call mints a fresh *pmem.Batch.
func newBatchCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	return isMethod(fn, "internal/pmem", "Device", "NewBatch") ||
		isMethod(fn, "internal/pmem", "Device", "NewEagerBatch")
}

func (c *edClient) onAssign(w *flowWalker, st flowState, as *ast.AssignStmt) {
	s := st.(*edState)
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value form (a, b := f()): nothing to track, scan as usual.
		for _, rhs := range as.Rhs {
			w.scan(st, rhs)
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if ok && newBatchCall(c.pkg, call) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				obj := c.pkg.Info.Defs[id]
				if obj == nil {
					obj = c.pkg.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					// (Re)binding the variable starts tracking a fresh,
					// empty batch; any prior binding held no queued lines
					// worth reporting at its creation site twice.
					s.batches[v] = edEntry{status: edPending, pos: call.Pos()}
					continue
				}
			}
		}
		// Not a tracked definition: scan the RHS normally (calls fire,
		// identifier uses count as handoffs).
		w.scan(st, rhs)
	}
	for _, lhs := range as.Lhs {
		// A plain-ident LHS is a store into the variable, not a use of the
		// batch; composite LHS expressions (fields, indexes) are scanned so
		// any tracked ident inside them registers as an escape.
		if _, ok := lhs.(*ast.Ident); !ok {
			w.scan(st, lhs)
		}
	}
}

func (c *edClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*edState)
	// Interprocedural: passing a tracked batch to a callee whose summary
	// proves the parameter reaches no drain point and no handoff keeps
	// the obligation in this function — the use below must not count as
	// an escape. (An opaque or draining callee keeps the v1 behavior:
	// the use is a handoff.)
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil {
		for i, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := c.pkg.Info.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			if _, tracked := s.batches[v]; !tracked {
				continue
			}
			if drained, known := sum.BatchParamDrained[i]; known && !drained {
				c.held[id] = true
			}
		}
	}
	fn := calleeFunc(c.pkg, call)
	if fn == nil {
		return
	}
	p, t := recvTypeOf(fn)
	if t != "Batch" || !pkgPathHasSuffix(p, "internal/pmem") {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if e, tracked := s.batches[v]; tracked {
		switch fn.Name() {
		case "Barrier", "Drain", "AssertEmpty":
			e.status = edDone
			s.batches[v] = e
		}
	}
}

func (c *edClient) onIdent(st flowState, id *ast.Ident) {
	s := st.(*edState)
	if c.held[id] {
		return
	}
	if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
		if e, tracked := s.batches[v]; tracked {
			// The batch escapes (argument, return value, struct field,
			// closure capture): the recipient owns draining it now.
			e.status = edDone
			s.batches[v] = e
		}
	}
}

func (c *edClient) onReturn(st flowState, _ token.Pos) {
	for _, e := range st.(*edState).batches {
		if e.status == edPending {
			*c.findings = append(*c.findings, Finding{
				Pos: c.prog.Fset.Position(e.pos),
				Message: "pmem.Batch obtained here can leave the function without " +
					"Barrier/Drain or a handoff: queued lines would never be written back",
			})
		}
	}
}

func runEpochDrain(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		if pkgPathHasSuffix(pkg.Path, "internal/pmem") {
			return
		}
		c := &edClient{pkg: pkg, prog: prog, findings: &findings, held: make(map[*ast.Ident]bool)}
		walkFunc(pkg, decl.Body, c, &edState{batches: make(map[*types.Var]edEntry)})
	})
	return findings
}
