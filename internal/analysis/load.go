package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Imports from outside
	// the module are stubbed (see loader.Import), so errors mentioning
	// external packages are expected and harmless: every checker matches
	// only module-local symbols, which resolve fully.
	TypeErrors []error
	// bindings maps single-assignment local variables to the function
	// value they hold — a method value (f := b.Barrier), a named function
	// (f := helper), or a function literal. calleeFunc and resolveCallee
	// consult it so a call through such a variable resolves to its target
	// instead of being opaque. Built once per package by buildBindings.
	bindings map[*types.Var]ast.Expr
}

// Program is the unit the analyzers run over: the requested packages plus
// a shared FileSet. Dependency packages inside the module are loaded and
// type-checked as needed but only the requested ones are analyzed.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// idx caches whole-program resolution facts (single-implementation
	// interface methods); sums caches the per-function effect summaries.
	// Both are built lazily and shared by every checker in a Run.
	idx  *progIndex
	sums *summarySet

	// allows caches the parsed //arcklint:allow directives (filename ->
	// covered line -> directives), allowsBad the malformed ones, and
	// allowsUsed the directives (by their own position) that suppressed a
	// finding or gated a summary propagation — the liveness bit the
	// -suppressions audit reads.
	allows     map[string]map[int][]allowDirective
	allowsBad  []Finding
	allowsUsed map[token.Position]bool
}

// FindModuleRoot walks upward from dir to the directory holding go.mod
// and returns it together with the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, rerr := os.ReadFile(gomod); rerr == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("%s: no module directive", gomod)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func parseModulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// loader parses and type-checks module-local packages. Imports that leave
// the module (the standard library included) resolve to empty stub
// packages: the checkers' symbol tables reference only module-local
// types, so full external type information buys nothing, and stubbing
// keeps the tool fast and fully offline.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	pkgs    map[string]*Package
	loading map[string]bool
	stubs   map[string]*types.Package
}

func newLoader(root, modPath string) *loader {
	return &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		stubs:   make(map[string]*types.Package),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p, nil
}

func (l *loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module-local package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		Error:            func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
		IgnoreFuncBodies: false,
	}
	// Check continues past errors (stubbed imports produce some); the
	// partial Info it leaves behind is complete for module-local symbols.
	p.Types, _ = conf.Check(importPath, l.fset, files, p.Info)
	p.buildBindings()
	l.pkgs[importPath] = p
	return p, nil
}

// buildBindings records, for every local variable in the package that is
// assigned exactly once, the function-valued expression it is bound to (a
// method value, a named function, or a function literal). Variables
// written more than once are dropped: a rebinding would make the call
// target path-dependent, which the checkers do not model.
func (p *Package) buildBindings() {
	p.bindings = make(map[*types.Var]ast.Expr)
	writes := make(map[*types.Var]int)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		writes[v]++
		if rhs == nil {
			return
		}
		switch fn := ast.Unparen(rhs).(type) {
		case *ast.FuncLit:
			p.bindings[v] = fn
		case *ast.SelectorExpr:
			if _, ok := p.Info.Uses[fn.Sel].(*types.Func); ok {
				p.bindings[v] = fn
			}
		case *ast.Ident:
			if _, ok := p.Info.Uses[fn].(*types.Func); ok {
				p.bindings[v] = fn
			}
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				} else {
					for _, lhs := range n.Lhs {
						bind(lhs, nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(name, n.Values[i])
					} else {
						bind(name, nil)
					}
				}
			case *ast.RangeStmt:
				bind(n.Key, nil)
				bind(n.Value, nil)
			case *ast.IncDecStmt:
				bind(n.X, nil)
			}
			return true
		})
	}
	for v, n := range writes {
		if n != 1 {
			delete(p.bindings, v)
		}
	}
}

// goFilesIn lists the non-test Go files of dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDirs type-checks the packages in the given directories (which must
// live under root, the module root) and returns them as a Program.
func LoadDirs(root string, dirs []string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	_, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("directory %s is outside module root %s", dir, root)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if seen[importPath] {
			continue
		}
		seen[importPath] = true
		p, err := l.load(importPath)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", importPath, err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Program{Fset: l.fset, Pkgs: pkgs}, nil
}

// ExpandPatterns resolves package patterns relative to cwd into the
// module root and the list of package directories to load. Supported
// patterns: a directory path, "dir/..." for a subtree, and "./..." for
// the whole module.
func ExpandPatterns(cwd string, patterns []string) (root string, dirs []string, err error) {
	root, _, err = FindModuleRoot(cwd)
	if err != nil {
		return "", nil, err
	}
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
			if base == "." || base == "" {
				base = cwd
			}
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFilesIn(path); err == nil && len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return "", nil, err
		}
	}
	sort.Strings(dirs)
	return root, dirs, nil
}
