package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// graceblock polices the third PR 7 hazard, retire-vs-reclaim deadlock:
// waiting for an RCU grace period (rcu.Domain.Synchronize or Barrier)
// while holding a spinlock, or while pinned as a reader. The grace
// period ends only when every pinned reader unpins; a reader that needs
// the held lock to make progress — or the waiting thread's own pin —
// turns the wait into a deadlock. rcusection already flags a *direct*
// pinned Synchronize; graceblock closes the interprocedural half: a call
// into any function whose effect summary says it may wait for grace
// (allocPage's reclaim-retired failure path, say) is flagged at the call
// site when a classified hlock is held or a pin is open there.
//
// A deliberate, justified wait is suppressed at its source: an
// //arcklint:allow graceblock directive on the Synchronize/Barrier line
// stops the MaySync effect from propagating to callers at all, so one
// reasoned exemption at the primitive covers the whole call tree above
// it (see ensureSummaries).
var graceBlockAnalyzer = &Analyzer{
	Name: "graceblock",
	Doc: "no rcu.Domain grace-period wait while holding a spinlock or " +
		"inside an RCU read-side section, directly or through callees",
	Run: runGraceBlock,
}

type gbState struct {
	held  map[string]lockClass
	depth int
}

func (s *gbState) Copy() flowState {
	c := &gbState{held: make(map[string]lockClass, len(s.held)), depth: s.depth}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

func (s *gbState) Merge(o flowState) {
	os := o.(*gbState)
	for k, v := range os.held {
		s.held[k] = v
	}
	if os.depth > s.depth {
		s.depth = os.depth
	}
}

type gbClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

// heldList renders the held set deterministically for messages.
func heldList(held map[string]lockClass) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func (c *gbClient) check(s *gbState, pos token.Pos, what string) {
	if len(s.held) > 0 {
		*c.findings = append(*c.findings, Finding{
			Pos: c.prog.Fset.Position(pos),
			Message: fmt.Sprintf("%s while holding %s: a pinned reader that needs "+
				"the lock deadlocks the grace period", what, heldList(s.held)),
		})
	}
	if s.depth > 0 {
		*c.findings = append(*c.findings, Finding{
			Pos: c.prog.Fset.Position(pos),
			Message: fmt.Sprintf("%s inside an RCU read-side critical section: the "+
				"grace period waits on this very reader", what),
		})
	}
}

func (c *gbClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*gbState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		if isMethod(fn, "internal/rcu", "Reader", "ReadLock") {
			s.depth++
			return
		}
		if isMethod(fn, "internal/rcu", "Reader", "ReadUnlock") {
			if s.depth > 0 {
				s.depth--
			}
			return
		}
		if isMethod(fn, "internal/rcu", "Domain", "Synchronize") ||
			isMethod(fn, "internal/rcu", "Domain", "Barrier") {
			c.check(s, call.Pos(), "grace-period wait (Domain."+fn.Name()+")")
			return
		}
		if isMethod(fn, "internal/htable", "Table", "WithBucket") {
			if len(call.Args) == 2 {
				if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
					inner := s.Copy().(*gbState)
					inner.held[bucketClass.name] = bucketClass
					w.block(lit.Body, inner)
					return
				}
			}
			return
		}
		if isMethod(fn, "internal/htable", "Table", "LockAll") {
			s.held[bucketClass.name] = bucketClass
			return
		}
		recvPkg, _ := recvTypeOf(fn)
		if pkgPathHasSuffix(recvPkg, "internal/hlock") {
			cl, ok := classOfReceiver(c.pkg, call)
			if !ok {
				return
			}
			switch fn.Name() {
			case "Lock", "RLock":
				s.held[cl.name] = cl
			case "Unlock", "RUnlock":
				delete(s.held, cl.name)
			}
			return
		}
	}
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil {
		if sum.MaySync && (len(s.held) > 0 || s.depth > 0) {
			c.check(s, call.Pos(), fmt.Sprintf("call to %s, which can wait for grace (%s),",
				calleeName(c.prog, c.pkg, call), sum.SyncVia))
		}
		s.depth += sum.PinDelta
		if s.depth < 0 {
			s.depth = 0
		}
	}
}

func (c *gbClient) onReturn(flowState, token.Pos) {}

func runGraceBlock(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		if pkgPathHasSuffix(pkg.Path, "internal/rcu") {
			// The domain implementation waits on itself by design.
			return
		}
		c := &gbClient{pkg: pkg, prog: prog, findings: &findings}
		walkFunc(pkg, decl.Body, c, &gbState{held: make(map[string]lockClass)})
	})
	return findings
}
