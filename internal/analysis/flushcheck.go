package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// flushcheck catches the "never-flushed store" class: a raw cache-line
// store into the pmem image (Device.Write / Zero / StoreN) that no path
// of the function follows with any flush (Batch.Flush, Device.Flush, or
// Device.Persist). Raw stores land in the CPU cache; without an explicit
// write-back they reach persistence only by cache-eviction accident, so a
// crash can lose them long after the surrounding operation "completed" —
// the partial-block-zero hole PR 2 closed. Streaming stores (WriteNT /
// ZeroNT / Batch.WriteStream / Batch.ZeroStream) bypass the cache and
// are exempt.
//
// The check is intentionally coarse about offsets: any flush-ish call
// discharges all raw stores issued so far in the function. Packages that
// implement the persistence layer itself (internal/pmem), the caller-
// flushes helper layer (internal/layout), and the baseline file systems
// (which model other systems' disciplines) are exempt.
var flushCheckAnalyzer = &Analyzer{
	Name: "flushcheck",
	Doc: "raw stores into the pmem image must be followed by a flush " +
		"(Batch.Flush / Device.Flush / Device.Persist) on every path",
	Run: runFlushCheck,
}

type fcState struct {
	// pending maps the position of each raw store not yet covered by a
	// flush on this path.
	pending map[token.Pos]bool
}

func (s *fcState) Copy() flowState {
	c := &fcState{pending: make(map[token.Pos]bool, len(s.pending))}
	for p := range s.pending {
		c.pending[p] = true
	}
	return c
}

func (s *fcState) Merge(o flowState) {
	for p := range o.(*fcState).pending {
		s.pending[p] = true
	}
}

type fcClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

func (c *fcClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*fcState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		switch {
		case isMethod(fn, "internal/pmem", "Device", "Write"),
			isMethod(fn, "internal/pmem", "Device", "Zero"),
			isMethod(fn, "internal/pmem", "Device", "Store8"),
			isMethod(fn, "internal/pmem", "Device", "Store16"),
			isMethod(fn, "internal/pmem", "Device", "Store32"),
			isMethod(fn, "internal/pmem", "Device", "Store64"):
			s.pending[call.Pos()] = true
			return
		case isMethod(fn, "internal/pmem", "Batch", "Flush"),
			isMethod(fn, "internal/pmem", "Device", "Flush"),
			isMethod(fn, "internal/pmem", "Device", "Persist"):
			clear(s.pending)
			return
		}
	}
	// A callee that flushes on every path (a Barrier-terminated helper,
	// say) discharges this function's raw stores just as a direct flush
	// would.
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil && sum.FlushesAll {
		clear(s.pending)
	}
}

func (c *fcClient) onReturn(st flowState, _ token.Pos) {
	for pos := range st.(*fcState).pending {
		*c.findings = append(*c.findings, Finding{
			Pos: c.prog.Fset.Position(pos),
			Message: "raw store into the pmem image is never flushed on some path " +
				"through this function (queue a Batch.Flush, use Device.Persist, or stream it)",
		})
	}
}

// containsSegment reports whether seg appears as a complete segment of
// the import path.
func containsSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

func flushCheckExempt(path string) bool {
	return pkgPathHasSuffix(path, "internal/pmem") ||
		pkgPathHasSuffix(path, "internal/layout") ||
		containsSegment(path, "baseline")
}

func runFlushCheck(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		if flushCheckExempt(pkg.Path) {
			return
		}
		c := &fcClient{pkg: pkg, prog: prog, findings: &findings}
		walkFunc(pkg, decl.Body, c, &fcState{pending: make(map[token.Pos]bool)})
	})
	return findings
}
