package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// rcusection polices the RCU read-side critical sections the lock-free
// data plane introduced. Between rcu.Reader.ReadLock and its matching
// ReadUnlock a thread must stay lock-free and kernel-free: the grace
// period (Domain.Synchronize) spin-waits on every pinned reader, so
// anything that can block inside the pin — an hlock acquisition, a
// persistence drain, or a kernel crossing — stretches every writer's
// retire latency, and waiting on the domain itself deadlocks outright.
//
// Four intraprocedural rules, enforced flow-sensitively:
//
//  1. Every ReadLock is matched by a ReadUnlock on every path out of the
//     function (deferred unlocks count).
//  2. No hlock Lock/RLock while pinned. Try-acquisitions cannot block
//     and are ignored.
//  3. No pmem Batch.Barrier/Drain and no rcu Domain.Synchronize/Barrier
//     while pinned (the latter is a self-deadlock: the grace period
//     waits on the very reader issuing it).
//  4. No kernel.Controller method call while pinned — a crossing
//     serializes on kernel locks the reader must not hold up.
//
// Calls are seen through their effect summaries: a call into a function
// that can block a grace period anywhere down its call tree (acquire a
// blocking hlock, drain persistence, wait for grace, cross into the
// kernel) is flagged when it happens inside a pinned section, and a
// callee with a non-zero pin balance (a pin-helper) opens or closes the
// section for its caller.
var rcuSectionAnalyzer = &Analyzer{
	Name: "rcusection",
	Doc: "RCU read-side critical sections take no blocking lock, issue no " +
		"kernel crossing, and unpin on every return path",
	Run: runRCUSection,
}

type rsState struct {
	// depth is the reader's pin nesting depth on this path.
	depth int
	// pinPos is the ReadLock that opened the outermost pin.
	pinPos token.Pos
}

func (s *rsState) Copy() flowState {
	c := *s
	return &c
}

func (s *rsState) Merge(o flowState) {
	// Pessimistic join: if either incoming path is pinned, the code after
	// the join must obey the section rules.
	os := o.(*rsState)
	if os.depth > s.depth {
		s.depth = os.depth
		s.pinPos = os.pinPos
	}
}

type rsClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
	// pinHelper marks a function whose own summary has a consistent
	// non-zero pin balance: it opens (or closes) the section for its
	// caller by design, so exiting pinned is not a leak.
	pinHelper bool
}

func (c *rsClient) flag(pos token.Pos, format string, args ...any) {
	*c.findings = append(*c.findings, Finding{
		Pos:     c.prog.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *rsClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*rsState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		if isMethod(fn, "internal/rcu", "Reader", "ReadLock") {
			if s.depth == 0 {
				s.pinPos = call.Pos()
			}
			s.depth++
			return
		}
		if isMethod(fn, "internal/rcu", "Reader", "ReadUnlock") {
			// Clamp rather than go negative: deferred unlocks are replayed on
			// every path, including ones that never pinned.
			if s.depth > 0 {
				s.depth--
			}
			return
		}
	}
	if s.depth == 0 {
		// Not pinned here — but the callee may pin (or unpin) on the
		// caller's behalf; its balance opens or closes the section.
		if sum := c.prog.summaryFor(c.pkg, call); sum != nil && sum.PinDelta > 0 {
			s.pinPos = call.Pos()
			s.depth += sum.PinDelta
		}
		return
	}
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil {
		if sum.MayBlockPinned {
			c.flag(call.Pos(),
				"call to %s inside an RCU read-side critical section can block the grace period (%s)",
				calleeName(c.prog, c.pkg, call), sum.BlockVia)
			return
		}
		if sum.PinDelta != 0 {
			s.depth += sum.PinDelta
			if s.depth < 0 {
				s.depth = 0
			}
			return
		}
	}
	if fn == nil {
		return
	}
	recvPkg, recvType := recvTypeOf(fn)
	name := fn.Name()
	switch {
	case pkgPathHasSuffix(recvPkg, "internal/hlock"):
		if name == "Lock" || name == "RLock" {
			c.flag(call.Pos(),
				"hlock %s inside an RCU read-side critical section can block the grace period", name)
		}
	case pkgPathHasSuffix(recvPkg, "internal/pmem") && recvType == "Batch":
		if name == "Barrier" || name == "Drain" {
			c.flag(call.Pos(),
				"pmem Batch.%s inside an RCU read-side critical section stalls the pinned reader on persistence", name)
		}
	case pkgPathHasSuffix(recvPkg, "internal/rcu") && recvType == "Domain":
		if name == "Synchronize" || name == "Barrier" {
			c.flag(call.Pos(),
				"rcu Domain.%s inside an RCU read-side critical section deadlocks: the grace period waits on this reader", name)
		}
	case pkgPathHasSuffix(recvPkg, "internal/kernel") && recvType == "Controller":
		c.flag(call.Pos(),
			"kernel crossing Controller.%s inside an RCU read-side critical section", name)
	}
}

func (c *rsClient) onReturn(st flowState, _ token.Pos) {
	s := st.(*rsState)
	if s.depth > 0 && !c.pinHelper {
		c.flag(s.pinPos,
			"RCU read-side section entered here is not exited on every return path")
	}
}

func runRCUSection(prog *Program) []Finding {
	var findings []Finding
	eachFunc(prog, func(pkg *Package, decl *ast.FuncDecl) {
		if pkgPathHasSuffix(pkg.Path, "internal/rcu") {
			// The reader implementation is exempt: it manipulates its own
			// pin depth in ways the abstract rules misread.
			return
		}
		c := &rsClient{pkg: pkg, prog: prog, findings: &findings}
		if prog.sums != nil {
			if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				if n := prog.sums.byFunc[fn]; n != nil && n.sum.PinDelta != 0 {
					c.pinHelper = true
				}
			}
		}
		walkFunc(pkg, decl.Body, c, &rsState{})
	})
	return findings
}
