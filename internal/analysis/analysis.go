// Package analysis implements arcklint, a suite of static analyzers that
// enforce the repository's persist-ordering, crash-consistency, and
// lock-free-data-plane discipline at compile time.
//
// Every one of the paper's six ArckFS bugs is a discipline violation
// visible in source code; the checkers here turn the rules PR 2 made
// machine-checkable at runtime (Batch ordering epochs, exhaustive crash
// enumeration) — and the use-after-free classes PR 7's lock-free plane
// introduced and fixed — into static rules, so a future hot path cannot
// silently reintroduce a §4.2-class mistake or a pre-PR7 direct-free:
//
//   - persistorder: a commit-marker persist must be dominated by a
//     Batch.Barrier since the last dentry-body store on every path.
//   - flushcheck: no raw store into the pmem image that is never flushed
//     (the "never-flushed partial-block zero" class PR 2 fixed).
//   - epochdrain: a pmem.Batch obtained in a function reaches Barrier or
//     is handed off on every return path, including early error returns.
//   - lockorder: hlock acquisition in libfs/kernel follows the declared
//     partial order, and the whole-program acquisition graph is acyclic.
//   - rcusection: RCU read-side critical sections take no blocking lock,
//     issue no kernel crossing, and unpin on every return path.
//   - retirecheck: reader-reachable pages and inode numbers go through
//     rcu retire (grace period), never straight back to an allocator
//     pool — the PR 7 Truncate-shrink use-after-free class.
//   - publishorder: a page published into a lock-free block array is
//     zeroed (or guarded by a published-size check) before the pointer
//     store, and published before the size store that exposes it.
//   - graceblock: no call that can wait for a grace period
//     (Domain.Synchronize/Barrier, transitively) while holding an hlock
//     or while RCU-pinned — the retire-vs-reclaim deadlock class.
//   - counterreg: telemetry counters are registered once and every
//     namespaced counter-name literal refers to a registered counter.
//
// Since v2 the suite is interprocedural: before any checker runs, the
// engine in summary.go computes one effect Summary per function — locks
// it may acquire, whether it can leave a body store unbarriered, its
// RCU pin balance, whether it can block a grace period or recycle
// reader-reachable resources, which batch parameters it drains — bottom-
// up over the call graph's strongly connected components to a
// conservative fixpoint. Checkers stay flow-sensitive walks of a single
// function body but see every call through the callee's summary, so a
// violation assembled across two, three, or N frames (writeAt holding an
// inode lock calling a helper that calls a helper that waits for grace)
// is reported at the outermost call site with the via-chain named.
//
// The suite is built on the standard library only (go/parser, go/ast,
// go/types), so it runs offline with no module dependencies. Each checker
// is an Analyzer{Name, Doc, Run} value, deliberately shaped so it could
// later be rehosted on golang.org/x/tools/go/analysis without rewriting
// the checker bodies.
//
// Deliberate exceptions are suppressed in source with
//
//	//arcklint:allow <checker> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: an allow directive without one is itself reported. A
// suppression placed at a primitive site is honored by the summary
// engine too: the excused effect does not propagate, so one allow at the
// choke point covers the whole call tree above it. AuditSuppressions
// (arcklint -suppressions) lists every directive and marks the ones that
// no longer suppress anything, so stale allows cannot linger and mask a
// future, real finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a checker.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Checker string         `json:"checker"`
	Message string         `json:"message"`
	// Suppressed marks a finding matched by an //arcklint:allow
	// directive; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Checker, f.Message)
}

// Analyzer is one named checker. Run inspects the program and returns raw
// findings; suppression handling, deduplication, and ordering are applied
// centrally by Run (the package-level function).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Finding
}

// Analyzers returns the full checker suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		persistOrderAnalyzer,
		flushCheckAnalyzer,
		epochDrainAnalyzer,
		lockOrderAnalyzer,
		rcuSectionAnalyzer,
		retireCheckAnalyzer,
		publishOrderAnalyzer,
		graceBlockAnalyzer,
		counterRegAnalyzer,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list, or all of them for an empty list.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (have %s)", name, checkerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func checkerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// allowDirective is one parsed //arcklint:allow comment.
type allowDirective struct {
	checker string
	reason  string
	pos     token.Position
}

const allowPrefix = "//arcklint:allow"

// collectAllows parses every //arcklint:allow directive in the program.
// The returned map is keyed by filename, then by the source line the
// directive covers (its own line and the one below it, so a directive
// can sit on the flagged line or directly above it). Malformed
// directives — a missing checker, an unknown checker name, or a missing
// reason — are returned as findings so suppressions cannot silently rot.
func collectAllows(prog *Program) (map[string]map[int][]allowDirective, []Finding) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows := make(map[string]map[int][]allowDirective)
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: "malformed allow directive: missing checker name and reason"})
						continue
					case !known[fields[0]]:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: fmt.Sprintf("allow directive names unknown checker %q (have %s)", fields[0], checkerNames())})
						continue
					case len(fields) < 2:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: fmt.Sprintf("allow directive for %q requires a reason", fields[0])})
						continue
					}
					d := allowDirective{
						checker: fields[0],
						reason:  strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
						pos:     pos,
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]allowDirective)
						allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], d)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
				}
			}
		}
	}
	return allows, bad
}

// ensureAllows parses and caches the program's allow directives
// (idempotent, like ensureSummaries: the directive set is a property of
// the loaded source).
func (prog *Program) ensureAllows() (map[string]map[int][]allowDirective, []Finding) {
	if prog.allows == nil {
		prog.allows, prog.allowsBad = collectAllows(prog)
		prog.allowsUsed = make(map[token.Position]bool)
	}
	return prog.allows, prog.allowsBad
}

// suppressedAt reports whether pos is covered by an allow directive for
// checker, recording the directive as live for the -suppressions audit.
// This is the callback the summary engine consults when deciding whether
// a primitive's effect propagates to callers.
func (prog *Program) suppressedAt(pos token.Position, checker string) bool {
	for _, d := range prog.allows[pos.Filename][pos.Line] {
		if d.checker == checker {
			prog.allowsUsed[d.pos] = true
			return true
		}
	}
	return false
}

// Run executes the given analyzers over the program and returns the
// deduplicated, suppression-annotated findings in file/line order.
// Directive problems (malformed allows) are always included, whichever
// checkers were selected.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	allows, bad := prog.ensureAllows()
	prog.ensureSummaries(prog.suppressedAt)
	findings := append([]Finding(nil), bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			f.Checker = a.Name
			for _, d := range allows[f.Pos.Filename][f.Pos.Line] {
				if d.checker == a.Name {
					f.Suppressed = true
					f.Reason = d.reason
					prog.allowsUsed[d.pos] = true
					break
				}
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	// Deduplicate: a flow checker can reach the same violation along
	// several paths of the same function.
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// SuppressionEntry is one //arcklint:allow directive as reported by the
// -suppressions audit.
type SuppressionEntry struct {
	Pos     token.Position `json:"pos"`
	Checker string         `json:"checker"`
	Reason  string         `json:"reason"`
	// Stale marks a directive that suppressed no finding and gated no
	// summary propagation in a full run: the code it excused has changed
	// (or the checker has improved past the false positive), and the
	// directive should be deleted before it hides a real finding at the
	// same line later.
	Stale bool `json:"stale"`
}

// AuditSuppressions runs the full suite and reports every well-formed
// allow directive in file/line order, marking stale ones. The returned
// findings are the full run's output (malformed directives included), so
// callers can report both without running the suite twice.
func AuditSuppressions(prog *Program) ([]SuppressionEntry, []Finding) {
	findings := Run(prog, Analyzers())
	allows, _ := prog.ensureAllows()
	seen := make(map[token.Position]bool)
	var entries []SuppressionEntry
	for _, byLine := range allows {
		for _, ds := range byLine {
			for _, d := range ds {
				if seen[d.pos] {
					// Each directive is registered under two lines.
					continue
				}
				seen[d.pos] = true
				entries = append(entries, SuppressionEntry{
					Pos:     d.pos,
					Checker: d.checker,
					Reason:  d.reason,
					Stale:   !prog.allowsUsed[d.pos],
				})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return entries, findings
}

// eachFunc invokes fn for every function or method body in the program.
func eachFunc(prog *Program, fn func(pkg *Package, decl *ast.FuncDecl)) {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					fn(pkg, fd)
				}
			}
		}
	}
}
