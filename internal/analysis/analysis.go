// Package analysis implements arcklint, a suite of static analyzers that
// enforce the repository's persist-ordering and crash-consistency
// discipline at compile time.
//
// Every one of the paper's six ArckFS bugs is a discipline violation
// visible in source code; the checkers here turn the rules PR 2 made
// machine-checkable at runtime (Batch ordering epochs, exhaustive crash
// enumeration) into intraprocedural static rules, so a future hot path
// cannot silently reintroduce a §4.2-class mistake:
//
//   - persistorder: a commit-marker persist must be dominated by a
//     Batch.Barrier since the last dentry-body store on every path.
//   - flushcheck: no raw store into the pmem image that is never flushed
//     (the "never-flushed partial-block zero" class PR 2 fixed).
//   - epochdrain: a pmem.Batch obtained in a function reaches Barrier or
//     is handed off on every return path, including early error returns.
//   - lockorder: hlock acquisition in libfs/kernel follows the declared
//     partial order.
//   - rcusection: RCU read-side critical sections take no blocking lock,
//     issue no kernel crossing, and unpin on every return path.
//   - counterreg: telemetry counters are registered once and every
//     namespaced counter-name literal refers to a registered counter.
//
// The suite is built on the standard library only (go/parser, go/ast,
// go/types), so it runs offline with no module dependencies. Each checker
// is an Analyzer{Name, Doc, Run} value, deliberately shaped so it could
// later be rehosted on golang.org/x/tools/go/analysis without rewriting
// the checker bodies.
//
// Deliberate exceptions are suppressed in source with
//
//	//arcklint:allow <checker> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: an allow directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a checker.
type Finding struct {
	Pos     token.Position `json:"pos"`
	Checker string         `json:"checker"`
	Message string         `json:"message"`
	// Suppressed marks a finding matched by an //arcklint:allow
	// directive; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Checker, f.Message)
}

// Analyzer is one named checker. Run inspects the program and returns raw
// findings; suppression handling, deduplication, and ordering are applied
// centrally by Run (the package-level function).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Finding
}

// Analyzers returns the full checker suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		persistOrderAnalyzer,
		flushCheckAnalyzer,
		epochDrainAnalyzer,
		lockOrderAnalyzer,
		rcuSectionAnalyzer,
		counterRegAnalyzer,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list, or all of them for an empty list.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (have %s)", name, checkerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func checkerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// allowDirective is one parsed //arcklint:allow comment.
type allowDirective struct {
	checker string
	reason  string
	pos     token.Position
}

const allowPrefix = "//arcklint:allow"

// collectAllows parses every //arcklint:allow directive in the program.
// The returned map is keyed by filename, then by the source line the
// directive covers (its own line and the one below it, so a directive
// can sit on the flagged line or directly above it). Malformed
// directives — a missing checker, an unknown checker name, or a missing
// reason — are returned as findings so suppressions cannot silently rot.
func collectAllows(prog *Program) (map[string]map[int][]allowDirective, []Finding) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	allows := make(map[string]map[int][]allowDirective)
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: "malformed allow directive: missing checker name and reason"})
						continue
					case !known[fields[0]]:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: fmt.Sprintf("allow directive names unknown checker %q (have %s)", fields[0], checkerNames())})
						continue
					case len(fields) < 2:
						bad = append(bad, Finding{Pos: pos, Checker: "arcklint",
							Message: fmt.Sprintf("allow directive for %q requires a reason", fields[0])})
						continue
					}
					d := allowDirective{
						checker: fields[0],
						reason:  strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
						pos:     pos,
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]allowDirective)
						allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], d)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
				}
			}
		}
	}
	return allows, bad
}

// Run executes the given analyzers over the program and returns the
// deduplicated, suppression-annotated findings in file/line order.
// Directive problems (malformed allows) are always included, whichever
// checkers were selected.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	allows, findings := collectAllows(prog)
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			f.Checker = a.Name
			if ds := allows[f.Pos.Filename][f.Pos.Line]; ds != nil {
				for _, d := range ds {
					if d.checker == a.Name {
						f.Suppressed = true
						f.Reason = d.reason
						break
					}
				}
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	// Deduplicate: a flow checker can reach the same violation along
	// several paths of the same function.
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// eachFunc invokes fn for every function or method body in the program.
func eachFunc(prog *Program, fn func(pkg *Package, decl *ast.FuncDecl)) {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					fn(pkg, fd)
				}
			}
		}
	}
}
