package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// publishorder enforces the two store-ordering rules that keep the
// lock-free read path from ever observing garbage through a valid block
// pointer (the second PR 7 use-after-free class, the unzeroed hole
// fill):
//
//  1. Zero before publish. An indexed atomic store that makes a page
//     reachable (arr[bi].Store(b) with non-zero b) must be dominated on
//     its path by a zeroing write (Batch.ZeroStream, Device.Zero/ZeroNT)
//     or sit on a path that branched on the published size: a block at
//     or beyond the published size is invisible until the size store, so
//     skipping the zero is legal exactly when the code checked. The
//     pre-fix bug stored a recycled page's pointer into a hole below the
//     published size without zeroing it first — a concurrent reader saw
//     the previous file's bytes.
//
//  2. Size publishes last. Once a path stores the size field
//     (st.size.Store), no further block pointer may be published on it —
//     a reader that observes the new size must already observe every
//     pointer below it. This holds for helper calls too: a callee whose
//     effect summary says it may publish block pointers is flagged when
//     called after the size store.
//
// Stores into function-private arrays (locals created by make and not
// yet published themselves) are construction, not publication, and are
// exempt from both rules; so are stores of the literal 0, which
// unpublish.
var publishOrderAnalyzer = &Analyzer{
	Name: "publishorder",
	Doc: "block-pointer publishes must be zeroed-or-size-checked and must " +
		"precede the size store on every path (PR 7 unzeroed-publish class)",
	Run: runPublishOrder,
}

type puState struct {
	// zeroed: a zeroing write is queued on this path and not yet consumed
	// by a publish.
	zeroed bool
	// sizeChecked: this path branched on a condition consulting the
	// published size.
	sizeChecked bool
	// sizeStored: the size field has been stored on this path.
	sizeStored bool
	// private marks locals holding arrays created in this function that
	// are not yet reachable by readers.
	private map[*types.Var]bool
}

func (s *puState) Copy() flowState {
	c := &puState{zeroed: s.zeroed, sizeChecked: s.sizeChecked, sizeStored: s.sizeStored,
		private: make(map[*types.Var]bool, len(s.private))}
	for k, v := range s.private {
		c.private[k] = v
	}
	return c
}

func (s *puState) Merge(o flowState) {
	os := o.(*puState)
	// Safety claims intersect; the hazard (size already stored) unions.
	s.zeroed = s.zeroed && os.zeroed
	s.sizeChecked = s.sizeChecked && os.sizeChecked
	s.sizeStored = s.sizeStored || os.sizeStored
	for k := range s.private {
		if !os.private[k] {
			delete(s.private, k)
		}
	}
}

type puClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

func (c *puClient) flag(pos token.Pos, format string, args ...any) {
	*c.findings = append(*c.findings, Finding{
		Pos:     c.prog.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *puClient) onBranch(st flowState, cond ast.Expr, _ bool) {
	if mentionsSize(cond) {
		st.(*puState).sizeChecked = true
	}
}

// makesSlice reports whether the expression is a make(...) call.
func makesSlice(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "make"
}

func (c *puClient) onAssign(w *flowWalker, st flowState, as *ast.AssignStmt) {
	s := st.(*puState)
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				obj := c.pkg.Info.Defs[id]
				if obj == nil {
					obj = c.pkg.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if makesSlice(rhs) {
						s.private[v] = true
						continue
					}
					delete(s.private, v)
				}
			}
		}
	}
	w.scan(st, as)
}

// publishBase returns the base variable of an indexed atomic store
// (arr in arr[i].Store(v)), when the base is a plain identifier.
func publishBase(pkg *Package, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	ix, ok := ast.Unparen(sel.X).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
		v, _ := pkg.Info.Uses[id].(*types.Var)
		return v
	}
	return nil
}

func (c *puClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*puState)
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		switch {
		case isMethod(fn, "internal/pmem", "Batch", "ZeroStream"),
			isMethod(fn, "internal/pmem", "Device", "Zero"),
			isMethod(fn, "internal/pmem", "Device", "ZeroNT"):
			s.zeroed = true
			return
		}
	}
	if _, ok := indexedAtomicStore(call); ok {
		if v := publishBase(c.pkg, call); v != nil && s.private[v] {
			return // construction of a not-yet-published array
		}
		if s.sizeStored {
			c.flag(call.Pos(), "block pointer published after the size store on this path: "+
				"a reader observing the size must already observe every pointer below it")
		}
		if !s.zeroed && !s.sizeChecked {
			c.flag(call.Pos(), "block pointer published with no dominating zeroing write "+
				"and no published-size check on this path: a lock-free reader below the "+
				"size would see the page's previous contents")
		}
		s.zeroed = false // consumed; the next publish needs its own proof
		return
	}
	if sizeFieldStore(call) {
		s.sizeStored = true
		return
	}
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil && sum.MayPublish && s.sizeStored {
		c.flag(call.Pos(), "call to %s can publish block pointers after the size store "+
			"on this path", calleeName(c.prog, c.pkg, call))
	}
}

func (c *puClient) onReturn(flowState, token.Pos) {}

func runPublishOrder(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		// The telemetry rings use indexed atomic stores as sequence
		// counters with their own validation discipline; they publish no
		// pmem pages.
		if containsSegment(pkg.Path, "telemetry") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := &puClient{pkg: pkg, prog: prog, findings: &findings}
				walkFunc(pkg, fd.Body, c, &puState{private: make(map[*types.Var]bool)})
				ast.Inspect(fd, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						c := &puClient{pkg: pkg, prog: prog, findings: &findings}
						walkFunc(pkg, lit.Body, c, &puState{private: make(map[*types.Var]bool)})
					}
					return true
				})
			}
		}
	}
	return findings
}
