package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// retirecheck enforces the lock-free plane's reclamation protocol, the
// discipline whose absence produced the PR 7 use-after-free class: a
// page or inode number that a concurrent RCU reader may still reach must
// never be returned straight to an allocator pool. The only legal routes
// back to a pool are
//
//  1. FS.retirePages / FS.retireIno, which park the resource behind a
//     grace period (rcu.Domain.Defer) before recycling it;
//  2. a path provably excluded from lock-free readers — the then-branch
//     of a SerialData/SerialReaders guard, where the caller's lock
//     already serializes every reader;
//  3. resources that were freshly allocated in the same function and
//     never published (a failure path returning an allocPage/allocIno
//     result it never stored anywhere reader-visible).
//
// A direct FS.recyclePages / FS.recycleIno call outside those routes is
// exactly the pre-fix Truncate shrink bug: a reader that loaded the
// block pointer before the unpublish dereferences the page after the
// pool hands it to the next writer. The check is interprocedural:
// a call into a helper whose effect summary says it may recycle
// reader-reachable resources is flagged at the call site too, so the
// violation cannot hide one or more calls down (see summary.go).
//
// Function literals are checked like named functions, except thunks
// passed to rcu.Domain.Defer: those run after the grace period — they
// ARE the retire path — so recycling inside them is the protocol working
// as intended.
var retireCheckAnalyzer = &Analyzer{
	Name: "retirecheck",
	Doc: "reader-reachable pages/inodes must go back to allocator pools " +
		"through retirePages/retireIno or a reader-excluded path (PR 7 " +
		"use-after-free class)",
	Run: runRetireCheck,
}

type rcState struct {
	// excl: this path is excluded from lock-free readers (serial guard).
	excl bool
	// fresh marks locals holding resources allocated in this function and
	// not yet published.
	fresh map[*types.Var]bool
}

func (s *rcState) Copy() flowState {
	c := &rcState{excl: s.excl, fresh: make(map[*types.Var]bool, len(s.fresh))}
	for k, v := range s.fresh {
		c.fresh[k] = v
	}
	return c
}

func (s *rcState) Merge(o flowState) {
	os := o.(*rcState)
	// Both facts are claims of safety, so the join keeps them only when
	// both incoming paths agree.
	s.excl = s.excl && os.excl
	for k := range s.fresh {
		if !os.fresh[k] {
			delete(s.fresh, k)
		}
	}
}

type rcClient struct {
	pkg      *Package
	prog     *Program
	findings *[]Finding
}

func (c *rcClient) onBranch(st flowState, cond ast.Expr, taken bool) {
	s := st.(*rcState)
	if guard, when := serialGuardCond(cond); guard && taken == when {
		s.excl = true
	}
}

func (c *rcClient) onAssign(w *flowWalker, st flowState, as *ast.AssignStmt) {
	s := st.(*rcState)
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn, _ := resolveCallee(c.prog, c.pkg, call); freshSource(fn) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := c.pkg.Info.Defs[id]
					if obj == nil {
						obj = c.pkg.Info.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok {
						w.scan(st, as.Rhs[0])
						s.fresh[v] = true
						return
					}
				}
			}
		}
	}
	// Any other rebinding of a tracked variable loses its freshness: the
	// new value may be a published, reader-reachable resource.
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := c.pkg.Info.Uses[id].(*types.Var); ok {
				delete(s.fresh, v)
			}
		}
	}
	w.scan(st, as)
}

func (c *rcClient) onCall(w *flowWalker, st flowState, call *ast.CallExpr) {
	s := st.(*rcState)
	if s.excl {
		return
	}
	fn, _ := resolveCallee(c.prog, c.pkg, call)
	if fn != nil {
		if name, res, ok := recycleTarget(fn, call); ok {
			if !allFresh(c.pkg, res, s.fresh) {
				*c.findings = append(*c.findings, Finding{
					Pos: c.prog.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("%s returns possibly reader-reachable resources "+
						"directly to the allocator pool: an RCU reader may still hold them; "+
						"use retirePages/retireIno or a reader-excluded path", name),
				})
			}
			return
		}
	}
	if sum := c.prog.summaryFor(c.pkg, call); sum != nil && sum.MayRecycle {
		*c.findings = append(*c.findings, Finding{
			Pos: c.prog.Fset.Position(call.Pos()),
			Message: fmt.Sprintf("call to %s can recycle reader-reachable resources "+
				"outside the retire protocol (%s)",
				calleeName(c.prog, c.pkg, call), sum.RecycleVia),
		})
	}
}

func (c *rcClient) onReturn(flowState, token.Pos) {}

// deferThunks collects every function literal passed to
// rcu.Domain.Defer in the file: the blessed retire thunks.
func deferThunks(pkg *Package, file *ast.File) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg, call); isMethod(fn, "internal/rcu", "Domain", "Defer") {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out[lit] = true
				}
			}
		}
		return true
	})
	return out
}

func runRetireCheck(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			blessed := deferThunks(pkg, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := &rcClient{pkg: pkg, prog: prog, findings: &findings}
				walkFunc(pkg, fd.Body, c, &rcState{fresh: make(map[*types.Var]bool)})
				// Closures run under scheduling the enclosing walk cannot
				// see; check each body standalone with a pessimistic (no
				// guard, nothing fresh) entry state — except the Defer
				// thunks, which execute after the grace period.
				ast.Inspect(fd, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					if blessed[lit] {
						return false
					}
					c := &rcClient{pkg: pkg, prog: prog, findings: &findings}
					walkFunc(pkg, lit.Body, c, &rcState{fresh: make(map[*types.Var]bool)})
					return true
				})
			}
		}
	}
	return findings
}
