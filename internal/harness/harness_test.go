package harness

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"arckfs/internal/telemetry"
)

func TestRunCountsOps(t *testing.T) {
	var n atomic.Int64
	res := Run("fs", "w", 4, 100, func(tid, i int) error {
		n.Add(1)
		return nil
	})
	if res.Err != nil || res.Ops != 400 || n.Load() != 400 {
		t.Fatalf("res=%+v n=%d", res, n.Load())
	}
	if res.OpsPerSec() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunSurfacesErrors(t *testing.T) {
	boom := errors.New("boom")
	res := Run("fs", "w", 2, 50, func(tid, i int) error {
		if tid == 1 && i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v", res.Err)
	}
}

// TestRunCountsCompletedOps checks that a worker aborting early only
// contributes the operations it actually finished — a partially failed
// run must not report the full nominal op count as throughput.
func TestRunCountsCompletedOps(t *testing.T) {
	boom := errors.New("boom")
	res := Run("fs", "w", 2, 100, func(tid, i int) error {
		if tid == 1 && i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v", res.Err)
	}
	// Worker 0 completed 100 ops, worker 1 completed 10 before failing.
	if res.Ops != 110 {
		t.Fatalf("Ops = %d, want 110", res.Ops)
	}
}

func TestRunSampledLatency(t *testing.T) {
	res := Run("fs", "w", 3, 64, func(tid, i int) error { return nil })
	if res.Lat == nil {
		t.Fatal("no latency summary")
	}
	// Every worker samples ceil(64/8) = 8 ops.
	if res.Lat.Count != 3*8 {
		t.Fatalf("sampled %d ops, want %d", res.Lat.Count, 3*8)
	}
	if res.Lat.P50NS < 0 || res.Lat.MaxNS < res.Lat.P50NS {
		t.Fatalf("implausible summary %+v", res.Lat)
	}

	old := LatencySample
	LatencySample = 0
	defer func() { LatencySample = old }()
	if res := Run("fs", "w", 1, 16, func(tid, i int) error { return nil }); res.Lat != nil {
		t.Fatal("latency sampling disabled but summary present")
	}
}

func TestRunCountedDeltas(t *testing.T) {
	set := telemetry.NewSet()
	c := set.Counter("side.effects")
	c.Add(100) // setup-phase counts must not leak into the delta
	res := RunCounted(set, "fs", "w", 2, 10, func(tid, i int) error {
		c.Add(1)
		return nil
	})
	if res.Err != nil || res.Ops != 20 {
		t.Fatalf("res = %+v", res)
	}
	if res.Counters["side.effects"] != 20 {
		t.Fatalf("delta = %v", res.Counters)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("Geomean = %v", g)
	}
	if g := Geomean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("Geomean ignoring zeros = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v", g)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "longer"}}
	tbl.Add("x", "1")
	tbl.Add("yyyy", "22")
	out := tbl.Render()
	if !strings.Contains(out, "## T") || !strings.Contains(out, "yyyy") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("w")
	s.Add("a", 1, 100)
	s.Add("a", 2, 150)
	s.Add("b", 1, 200)
	s.Add("b", 2, 300)
	if rel := s.Relative("a", "b", 2); math.Abs(rel-50) > 1e-9 {
		t.Fatalf("Relative = %v", rel)
	}
	if rel := s.Relative("a", "missing", 2); rel != 0 {
		t.Fatalf("Relative vs missing = %v", rel)
	}
	out := s.Render()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "300") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBytesThroughput(t *testing.T) {
	r := Result{Bytes: 1 << 30, Elapsed: 2e9} // 1 GiB over 2s
	if g := r.GiBPerSec(); math.Abs(g-0.5) > 1e-9 {
		t.Fatalf("GiBPerSec = %v", g)
	}
	if (Result{}).OpsPerSec() != 0 || (Result{}).GiBPerSec() != 0 {
		t.Fatal("zero elapsed must not divide by zero")
	}
}
