// Package harness runs multi-threaded file system workloads and renders
// the tables and series the paper's figures report. A single-core host
// cannot exhibit real parallel speedup, so results are aggregate
// throughput across all workers: a perfectly scalable file system holds a
// flat line as threads grow, while lock- or journal-bound designs sag.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Result is one measurement cell.
type Result struct {
	FS       string
	Workload string
	Threads  int
	Ops      int64
	Bytes    int64
	Elapsed  time.Duration
	Err      error
}

// OpsPerSec returns aggregate operation throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// GiBPerSec returns aggregate data throughput.
func (r Result) GiBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 30) / r.Elapsed.Seconds()
}

// Run executes op(tid, i) opsPerThread times on each of threads workers
// and aggregates. The first error aborts that worker but other workers
// complete, so partially failed runs are visible rather than hung.
func Run(fsName, workload string, threads, opsPerThread int, op func(tid, i int) error) Result {
	var wg sync.WaitGroup
	errs := make([]error, threads)
	start := time.Now()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < opsPerThread; i++ {
				if err := op(tid, i); err != nil {
					errs[tid] = fmt.Errorf("thread %d op %d: %w", tid, i, err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	res := Result{
		FS: fsName, Workload: workload, Threads: threads,
		Ops: int64(threads) * int64(opsPerThread), Elapsed: time.Since(start),
	}
	for _, err := range errs {
		if err != nil {
			res.Err = err
			break
		}
	}
	return res
}

// Geomean returns the geometric mean of xs (ignoring non-positive
// values).
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table renders aligned benchmark output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Series collects (threads → throughput) curves per FS for one workload,
// the shape of a Figure-4 panel.
type Series struct {
	Workload string
	// Points[fs][threads] = ops/sec
	Points map[string]map[int]float64
}

// NewSeries creates an empty series.
func NewSeries(workload string) *Series {
	return &Series{Workload: workload, Points: map[string]map[int]float64{}}
}

// Add records one cell.
func (s *Series) Add(fs string, threads int, opsPerSec float64) {
	if s.Points[fs] == nil {
		s.Points[fs] = map[int]float64{}
	}
	s.Points[fs][threads] = opsPerSec
}

// Render prints the curves as a table: one row per thread count, one
// column per FS.
func (s *Series) Render() string {
	var fss []string
	threadSet := map[int]bool{}
	for fs, pts := range s.Points {
		fss = append(fss, fs)
		for th := range pts {
			threadSet[th] = true
		}
	}
	sort.Strings(fss)
	var threads []int
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)
	tbl := Table{Title: s.Workload, Headers: append([]string{"threads"}, fss...)}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, fs := range fss {
			row = append(row, fmt.Sprintf("%.0f", s.Points[fs][th]))
		}
		tbl.Add(row...)
	}
	return tbl.Render()
}

// Relative returns fsA's throughput as a percentage of fsB's at the
// given thread count.
func (s *Series) Relative(fsA, fsB string, threads int) float64 {
	b := s.Points[fsB][threads]
	if b == 0 {
		return 0
	}
	return 100 * s.Points[fsA][threads] / b
}
