// Package harness runs multi-threaded file system workloads and renders
// the tables and series the paper's figures report. A single-core host
// cannot exhibit real parallel speedup, so results are aggregate
// throughput across all workers: a perfectly scalable file system holds a
// flat line as threads grow, while lock- or journal-bound designs sag.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"arckfs/internal/telemetry"
)

// LatencySample is the per-op latency sampling interval: every Nth
// operation of each worker is timed into a histogram (rounded up to a
// power of two so the per-op check is a mask, not a division). 0
// disables latency collection entirely. Sampling (rather than timing
// every op) keeps the harness overhead on sub-microsecond simulated
// operations within noise; percentiles over a 1-in-8 systematic sample
// of a steady-state workload match the full distribution.
var LatencySample = 8

// Source is anything that can snapshot a named-counter state; a
// *telemetry.Set satisfies it.
type Source interface {
	Snapshot() map[string]int64
}

// AppSource is a Source that additionally attributes work to
// applications; systems with an app-keyed counter dimension satisfy it.
type AppSource interface {
	Source
	AppStats() []telemetry.AppStat
}

// source adapts a system under test: counter snapshots come from its
// telemetry set, per-app attribution (when the system has it) from its
// AppStats method.
type source struct {
	set *telemetry.Set
	sys any
}

func (s source) Snapshot() map[string]int64 { return s.set.Snapshot() }

func (s source) AppStats() []telemetry.AppStat {
	if p, ok := s.sys.(interface{ AppStats() []telemetry.AppStat }); ok {
		return p.AppStats()
	}
	return nil
}

// SourceOf returns the telemetry source a file system under test
// exposes via a Telemetry() method, or nil if it has none. If the
// system also exposes AppStats() — per-application attribution — the
// returned source satisfies AppSource and RunCounted records the
// per-app delta alongside the counters.
func SourceOf(v any) Source {
	if p, ok := v.(interface{ Telemetry() *telemetry.Set }); ok {
		if s := p.Telemetry(); s != nil {
			return source{set: s, sys: v}
		}
	}
	return nil
}

// Result is one measurement cell.
type Result struct {
	FS       string
	Workload string
	Threads  int
	Ops      int64
	Bytes    int64
	Elapsed  time.Duration
	Err      error

	// Lat summarizes sampled per-op latency; nil when sampling is
	// disabled or no op completed.
	Lat *telemetry.LatencySummary

	// Counters is the delta of the telemetry source across the measured
	// region; nil when the run had no source.
	Counters map[string]int64

	// Apps is the per-application attribution delta across the measured
	// region (counter deltas; the latency summary is the cumulative
	// after-side histogram). Nil unless the source is an AppSource with
	// at least one active app.
	Apps []telemetry.AppStat
}

// OpsPerSec returns aggregate operation throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// GiBPerSec returns aggregate data throughput.
func (r Result) GiBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 30) / r.Elapsed.Seconds()
}

// Run executes op(tid, i) opsPerThread times on each of threads workers
// and aggregates. The first error aborts that worker but other workers
// complete, so partially failed runs are visible rather than hung.
func Run(fsName, workload string, threads, opsPerThread int, op func(tid, i int) error) Result {
	return RunCounted(nil, fsName, workload, threads, opsPerThread, op)
}

// RunCounted is Run with a telemetry source: the source is snapshotted
// around the measured region (workload setup stays outside) and the
// delta lands in Result.Counters. Each worker samples per-op latency
// into its own histogram (see LatencySample); the merged summary lands
// in Result.Lat. Ops counts operations that actually completed, so a
// worker that aborts early does not inflate throughput.
func RunCounted(src Source, fsName, workload string, threads, opsPerThread int, op func(tid, i int) error) Result {
	var wg sync.WaitGroup
	errs := make([]error, threads)
	done := make([]int64, threads)
	mask := -1 // negative: sampling off
	if s := LatencySample; s > 0 {
		pow := 1
		for pow < s {
			pow <<= 1
		}
		mask = pow - 1
	}
	var hists []*telemetry.Histogram
	if mask >= 0 {
		hists = make([]*telemetry.Histogram, threads)
		for i := range hists {
			hists[i] = telemetry.NewHistogram()
		}
	}
	var before map[string]int64
	var appsBefore []telemetry.AppStat
	if src != nil {
		before = src.Snapshot()
		if a, ok := src.(AppSource); ok {
			appsBefore = a.AppStats()
		}
	}
	start := time.Now()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var h *telemetry.Histogram
			if mask >= 0 {
				h = hists[tid]
			}
			n := int64(0)
			for i := 0; i < opsPerThread; i++ {
				var err error
				if h != nil && i&mask == 0 {
					t0 := time.Now()
					err = op(tid, i)
					h.Record(time.Since(t0).Nanoseconds())
				} else {
					err = op(tid, i)
				}
				if err != nil {
					errs[tid] = fmt.Errorf("thread %d op %d: %w", tid, i, err)
					done[tid] = n
					return
				}
				n++
			}
			done[tid] = n
		}(tid)
	}
	wg.Wait()
	res := Result{
		FS: fsName, Workload: workload, Threads: threads,
		Elapsed: time.Since(start),
	}
	for _, n := range done {
		res.Ops += n
	}
	if src != nil {
		res.Counters = telemetry.Delta(before, src.Snapshot())
		if a, ok := src.(AppSource); ok {
			res.Apps = telemetry.AppDelta(appsBefore, a.AppStats())
		}
	}
	if mask >= 0 {
		merged := telemetry.NewHistogram()
		for _, h := range hists {
			merged.Merge(h)
		}
		if merged.Count() > 0 {
			s := merged.Summary()
			res.Lat = &s
		}
	}
	for _, err := range errs {
		if err != nil {
			res.Err = err
			break
		}
	}
	return res
}

// Geomean returns the geometric mean of xs (ignoring non-positive
// values).
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table renders aligned benchmark output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Series collects (threads → throughput) curves per FS for one workload,
// the shape of a Figure-4 panel.
type Series struct {
	Workload string
	// Points[fs][threads] = ops/sec
	Points map[string]map[int]float64
}

// NewSeries creates an empty series.
func NewSeries(workload string) *Series {
	return &Series{Workload: workload, Points: map[string]map[int]float64{}}
}

// Add records one cell.
func (s *Series) Add(fs string, threads int, opsPerSec float64) {
	if s.Points[fs] == nil {
		s.Points[fs] = map[int]float64{}
	}
	s.Points[fs][threads] = opsPerSec
}

// Render prints the curves as a table: one row per thread count, one
// column per FS.
func (s *Series) Render() string {
	var fss []string
	threadSet := map[int]bool{}
	for fs, pts := range s.Points {
		fss = append(fss, fs)
		for th := range pts {
			threadSet[th] = true
		}
	}
	sort.Strings(fss)
	var threads []int
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)
	tbl := Table{Title: s.Workload, Headers: append([]string{"threads"}, fss...)}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, fs := range fss {
			row = append(row, fmt.Sprintf("%.0f", s.Points[fs][th]))
		}
		tbl.Add(row...)
	}
	return tbl.Render()
}

// Relative returns fsA's throughput as a percentage of fsB's at the
// given thread count.
func (s *Series) Relative(fsA, fsB string, threads int) float64 {
	b := s.Points[fsB][threads]
	if b == 0 {
		return 0
	}
	return 100 * s.Points[fsA][threads] / b
}
