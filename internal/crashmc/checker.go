package crashmc

import (
	"fmt"
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry/span"
)

// Config parameterizes one model-checking run.
type Config struct {
	// Name labels the workload in results and generated repros.
	Name string
	// Bugs is the LibFS bug set under test (libfs.BugsNone = ArckFS+).
	Bugs libfs.Bugs
	// SerialData runs the workload under the locked data-plane read paths
	// (libfs.Options.SerialData). The read discipline must not change the
	// persist schedule, so a SerialData run explores the same crash-state
	// space as the lock-free default — the campaign carries one such
	// config as the tripwire.
	SerialData bool
	// Interleave optionally names an extra instrumented observation
	// point. "marker-window" observes inside the §4.2 commit window
	// (after the marker's flush is queued, before the final fence),
	// mirroring the Table-1 schedule the paper widens with sleep().
	Interleave string
	// Warmup ops run untracked to reach steady state (pools granted,
	// root acquired); the checker releases everything and enables
	// tracking after them, so the observed dirty state is only the
	// scripted Ops' own.
	Warmup []Op
	// Ops is the tracked workload.
	Ops []Op

	// DevSize is the simulated device size (default 4 MiB).
	DevSize int64
	// InodeCap is the formatted inode capacity (default 256).
	InodeCap uint64
	// PointBudget bounds exhaustive enumeration: a point whose
	// crash-state space is at most this many images is enumerated
	// completely, larger spaces fall back to corners + sampling
	// (default 64).
	PointBudget int
	// SampleN is the number of seeded random assignments checked at
	// each over-budget point, on top of the adversarial corners
	// (default 24).
	SampleN int
	// Seed drives the sampler deterministically (default 1).
	Seed int64
	// MaxCounterexamples stops the run early once this many distinct
	// invariant violations are recorded (default 4).
	MaxCounterexamples int
	// NoShrink skips op-schedule shrinking (used by probe re-runs).
	NoShrink bool

	// Expect is the configuration's oracle: the invariants it is
	// expected to violate, empty meaning expected clean. Result.OK
	// compares the outcome against it.
	Expect []string
}

func (c *Config) fill() {
	if c.DevSize == 0 {
		c.DevSize = 4 << 20
	}
	if c.InodeCap == 0 {
		c.InodeCap = 256
	}
	if c.PointBudget == 0 {
		c.PointBudget = 64
	}
	if c.SampleN == 0 {
		c.SampleN = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxCounterexamples == 0 {
		c.MaxCounterexamples = 4
	}
}

// LineChoice fixes one dirty cache line's crash outcome: persist the
// first K of its unpersisted store versions (K=0 keeps only the line's
// last fenced content). Lines absent from a counterexample's Keep set
// persist nothing.
type LineChoice struct {
	Off int64
	K   int
}

// Counterexample is one shrunk invariant violation: replaying Ops after
// Warmup and crashing at observation Point with exactly the Keep lines
// persisted yields an image that violates Invariant.
type Counterexample struct {
	Workload  string
	Bugs      libfs.Bugs
	Warmup    []Op
	Ops       []Op
	OpIndex   int // index of the op in flight (or just completed) at Point
	Point     int // 1-based observation ordinal
	Keep      []LineChoice
	Invariant string
	Detail    string
	// Flight is the arcktrace span history at the moment the breach was
	// recorded: every op of the run (the checker traces at sample=1),
	// including the operation in flight at Point — whose events show the
	// exact persist schedule (flushes, skipped fences) that admitted the
	// bad crash state.
	Flight *span.FlightRecord
}

func (ce *Counterexample) String() string {
	return fmt.Sprintf("%s [bugs=%#x] op %d (%s) point %d keep=%d lines: %s: %s",
		ce.Workload, uint32(ce.Bugs), ce.OpIndex, ce.Ops[minInt(ce.OpIndex, len(ce.Ops)-1)],
		ce.Point, len(ce.Keep), ce.Invariant, ce.Detail)
}

// Result summarizes one run.
type Result struct {
	Config          Config
	Points          int // observation points visited
	Images          int // crash images mounted and checked
	Exhaustive      int // points enumerated completely
	Sampled         int // points covered by corners + sampling
	Skipped         int // points with an empty dirty set
	Elapsed         time.Duration
	Counterexamples []*Counterexample
}

// Violated reports whether the run found a counterexample for inv.
func (r *Result) Violated(inv string) bool {
	for _, ce := range r.Counterexamples {
		if ce.Invariant == inv {
			return true
		}
	}
	return false
}

// OK reports whether the outcome matches the config's Expect oracle
// exactly: every expected invariant violated, nothing unexpected.
func (r *Result) OK() bool {
	want := map[string]bool{}
	for _, inv := range r.Config.Expect {
		want[inv] = true
	}
	for _, ce := range r.Counterexamples {
		if !want[ce.Invariant] {
			return false
		}
		delete(want, ce.Invariant)
	}
	return len(want) == 0
}

// Summary renders a one-line report for CLI output.
func (r *Result) Summary() string {
	status := "clean"
	if n := len(r.Counterexamples); n > 0 {
		status = fmt.Sprintf("%d counterexample(s)", n)
	}
	oracle := "as expected"
	if !r.OK() {
		oracle = "ORACLE MISMATCH (expected " + fmt.Sprint(r.Config.Expect) + ")"
	}
	return fmt.Sprintf("%-24s points=%-3d images=%-5d exhaustive=%d sampled=%d %s — %s",
		r.Config.Name, r.Points, r.Images, r.Exhaustive, r.Sampled, status, oracle)
}

// Run executes one model-checking run: collect counterexamples, then
// shrink each one's op schedule unless NoShrink is set.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	start := time.Now()
	res, err := runCollect(cfg)
	if err != nil {
		return nil, err
	}
	if !cfg.NoShrink {
		for i, ce := range res.Counterexamples {
			shrunk, err := shrinkOps(cfg, ce)
			if err != nil {
				return nil, err
			}
			res.Counterexamples[i] = shrunk
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runCollect performs one full collection pass over cfg.
func runCollect(cfg Config) (*Result, error) {
	c, err := newChecker(cfg)
	if err != nil {
		return nil, err
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.res, nil
}

// replayState carries a Replay target through a run.
type replayState struct {
	repro   Repro
	reached bool
	vs      []Violation
}

// checker is one workload execution with observation state.
type checker struct {
	cfg       Config
	dev       *pmem.Device
	geo       layout.Geometry
	fs        *libfs.FS
	th        fsapi.Thread
	model     *Oracle
	tracer    *span.Tracer
	inflight  *Op
	opIdx     int
	inRelease bool
	seen      map[string]bool // one counterexample per invariant
	res       *Result
	replay    *replayState
	err       error // sticky error raised inside an observation
}

func newChecker(cfg Config) (*checker, error) {
	dev := pmem.New(cfg.DevSize, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: cfg.InodeCap})
	if err != nil {
		return nil, err
	}
	c := &checker{
		cfg:  cfg,
		dev:  dev,
		geo:  ctrl.Geometry(),
		seen: map[string]bool{},
		res:  &Result{Config: cfg},
	}
	hooks := &libfs.Hooks{}
	switch cfg.Interleave {
	case "":
	case "marker-window":
		hooks.CreateBeforeMarkerFence = func() { c.observe() }
	default:
		return nil, fmt.Errorf("crashmc: unknown interleave %q", cfg.Interleave)
	}
	c.fs = libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{
		Bugs:           cfg.Bugs,
		Hooks:          hooks,
		GrantInoBatch:  32,
		GrantPageBatch: 32,
		DirBuckets:     8,
		SerialData:     cfg.SerialData,
	})
	// Trace every op (sample=1): a counterexample ships with the span
	// history of the run as its flight record.
	c.tracer = span.New(span.DefaultRingCap, 1)
	c.tracer.SetEnabled(true)
	c.fs.SetObservability(c.tracer, nil)
	c.th = c.fs.NewThread(0)
	for i, op := range cfg.Warmup {
		if err := c.runOp(op); err != nil {
			return nil, fmt.Errorf("crashmc %s: warmup op %d (%s): %v", cfg.Name, i, op, err)
		}
	}
	if err := c.fs.ReleaseAll(); err != nil {
		return nil, fmt.Errorf("crashmc %s: warmup release: %v", cfg.Name, err)
	}
	c.model = NewOracle(cfg.Warmup)
	dev.EnableTracking()
	dev.SetFenceObserver(func() { c.observe() })
	return c, nil
}

// runOp applies one op, checking the outcome against WantErr.
func (c *checker) runOp(op Op) error {
	err := op.apply(c.fs, c.th)
	if op.WantErr {
		if err == nil {
			return fmt.Errorf("op %s: expected an error, got none", op)
		}
		return nil
	}
	return err
}

// run executes the tracked workload, observing at every fence (via the
// device observer), at any configured interleave hook, and at a
// checkpoint after each op — the checkpoint catches lines whose stores
// escaped the op's own persist schedule entirely (the reserveDentry
// hole's shape).
func (c *checker) run() error {
	for i := range c.cfg.Ops {
		op := c.cfg.Ops[i]
		c.opIdx = i
		c.inflight = &op
		c.inRelease = op.Kind == OpRelease
		if err := c.runOp(op); err != nil {
			return fmt.Errorf("crashmc %s: op %d (%s): %v", c.cfg.Name, i, op, err)
		}
		if c.err != nil {
			return c.err
		}
		c.inRelease = false
		c.inflight = nil
		c.model.Apply(op)
		c.observe()
		if c.err != nil {
			return c.err
		}
	}
	return nil
}

// hardened reports whether a line lies in a kernel-trusted region — the
// superblock or the shadow inode table — that every enumerated image
// persists fully. Shadow records span two lines under one trailing
// fence inside the kernel; tearing them fails recovery by construction
// and says nothing about LibFS ordering, the property under test.
func (c *checker) hardened(off int64) bool {
	if off < layout.PageSize {
		return true
	}
	s := int64(c.geo.ShadowStart) * layout.PageSize
	e := s + int64(c.geo.ShadowPages)*layout.PageSize
	return off >= s && off < e
}

// softStates returns the dirty lines subject to enumeration (everything
// outside the hardened regions).
func (c *checker) softStates() []pmem.LineState {
	all := c.dev.DirtyLineStates()
	soft := make([]pmem.LineState, 0, len(all))
	for _, s := range all {
		if !c.hardened(s.Off) {
			soft = append(soft, s)
		}
	}
	return soft
}

// observe is the per-point entry: called at the start of every fence
// while tracking, from the interleave hook, and as the post-op
// checkpoint.
func (c *checker) observe() {
	if c.err != nil || !c.dev.Tracking() {
		return
	}
	if c.inRelease {
		// Fences inside the kernel release protocol are not LibFS
		// persist points; the kernel is trusted (see hardened). The
		// post-op checkpoint still enumerates whatever LibFS left dirty
		// across the release.
		return
	}
	c.res.Points++
	if c.replay != nil {
		if c.res.Points == c.replay.repro.Point {
			c.replayCheck()
		}
		return
	}
	if len(c.res.Counterexamples) >= c.cfg.MaxCounterexamples {
		return
	}
	states := c.softStates()
	if len(states) == 0 {
		c.res.Skipped++
		return
	}
	c.enumerate(states, c.model.ExpectPresent(c.inflight))
}

// image materializes the crash image for one assignment over states;
// lines outside the assignment (the hardened regions) persist fully.
func (c *checker) image(states []pmem.LineState, ks []int) []byte {
	keep := make(map[int64]int, len(states))
	for i, s := range states {
		keep[s.Off] = ks[i]
	}
	return c.dev.CrashImage(func(off int64, versions int) int {
		if k, ok := keep[off]; ok {
			return k
		}
		return versions
	})
}

// checkAssignment checks one crash image; it returns false once the
// counterexample budget is exhausted.
func (c *checker) checkAssignment(states []pmem.LineState, ks []int, expect []string) bool {
	img := c.image(states, ks)
	c.res.Images++
	vs := CheckImage(img, expect)
	if len(vs) > 0 {
		c.record(states, ks, expect, vs[0])
	}
	return len(c.res.Counterexamples) < c.cfg.MaxCounterexamples
}

// violates re-checks a candidate (shrunk) assignment for a specific
// invariant.
func (c *checker) violates(states []pmem.LineState, ks []int, expect []string, inv string) (bool, string) {
	img := c.image(states, ks)
	c.res.Images++
	for _, v := range CheckImage(img, expect) {
		if v.Invariant == inv {
			return true, v.Detail
		}
	}
	return false, ""
}

// record registers a violation as a counterexample, shrinking its line
// assignment greedily while the device state is still live: first drop
// every persisted line the violation does not need, then shorten the
// surviving version prefixes.
func (c *checker) record(states []pmem.LineState, ks []int, expect []string, v Violation) {
	if c.seen[v.Invariant] {
		return
	}
	c.seen[v.Invariant] = true
	ks = append([]int(nil), ks...)
	detail := v.Detail
	for i := range ks {
		if ks[i] == 0 {
			continue
		}
		old := ks[i]
		ks[i] = 0
		if still, d := c.violates(states, ks, expect, v.Invariant); still {
			detail = d
		} else {
			ks[i] = old
		}
	}
	for i := range ks {
		for ks[i] > 1 {
			ks[i]--
			still, d := c.violates(states, ks, expect, v.Invariant)
			if !still {
				ks[i]++
				break
			}
			detail = d
		}
	}
	var keep []LineChoice
	for i, k := range ks {
		if k > 0 {
			keep = append(keep, LineChoice{Off: states[i].Off, K: k})
		}
	}
	n := c.opIdx + 1
	if n > len(c.cfg.Ops) {
		n = len(c.cfg.Ops)
	}
	c.res.Counterexamples = append(c.res.Counterexamples, &Counterexample{
		Workload:  c.cfg.Name,
		Bugs:      c.cfg.Bugs,
		Warmup:    append([]Op(nil), c.cfg.Warmup...),
		Ops:       append([]Op(nil), c.cfg.Ops[:n]...),
		OpIndex:   c.opIdx,
		Point:     c.res.Points,
		Keep:      keep,
		Invariant: v.Invariant,
		Detail:    detail,
		Flight:    c.flight(v.Invariant, detail),
	})
}

// flight captures the breach's flight record: the completed spans in the
// tracer's rings plus the span of the operation in flight at the
// observation point (observe runs synchronously inside the op, so its
// span — holding the very stores and skipped fences under enumeration —
// is still open and not yet published to a ring).
func (c *checker) flight(inv, detail string) *span.FlightRecord {
	fr := c.tracer.Flight("crashmc:"+inv, detail)
	if t, ok := c.th.(*libfs.Thread); ok {
		if sp := t.CurrentSpan(); sp != nil {
			fr.Spans = append(fr.Spans, sp)
		}
	}
	return fr
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
