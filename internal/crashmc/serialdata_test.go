package crashmc

import (
	"fmt"
	"hash/fnv"
	"testing"

	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// dataPlaneCrashStates replays one mixed metadata+data schedule under the
// given read discipline and returns the set of crash states admitted at
// every fence (keyed by image digest), plus the final durable image's
// digest. At each fence the first few dirty lines are enumerated through
// every keep-subset — the truncation is deterministic, so it cuts both
// disciplines identically and cannot mask a divergence by itself.
func dataPlaneCrashStates(t *testing.T, serialData bool) (states map[string]bool, final string) {
	t.Helper()
	const long = "-0123456789-0123456789-0123456789-0123456789-0123456789"
	dev := pmem.New(4<<20, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	fs := libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{
		GrantInoBatch:  32,
		GrantPageBatch: 32,
		DirBuckets:     8,
		SerialData:     serialData,
	})
	th := fs.NewThread(0)
	if err := th.Create("/warmup" + long); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}

	digest := func(img []byte) string {
		h := fnv.New64a()
		h.Write(img)
		return fmt.Sprintf("%016x", h.Sum64())
	}
	states = map[string]bool{}
	dev.EnableTracking()
	const maxEnum = 6
	dev.SetFenceObserver(func() {
		dirty := dev.DirtyLines()
		n := len(dirty)
		if n > maxEnum {
			n = maxEnum
		}
		for mask := 0; mask < 1<<n; mask++ {
			var keep []int64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					keep = append(keep, dirty[i])
				}
			}
			states[digest(dev.CrashImage(pmem.CrashKeepLines(keep...)))] = true
		}
	})

	file, moved, doomed := "/dir/file"+long, "/dir/moved"+long, "/doomed"+long
	step := func(name string, err error) {
		if err != nil {
			t.Fatalf("%s (serialData=%v): %v", name, serialData, err)
		}
	}
	step("mkdir", th.Mkdir("/dir"))
	step("create", th.Create(file))
	fd, err := th.Open(file)
	step("open", err)
	_, err = th.WriteAt(fd, make([]byte, 300), 0)
	step("write", err)
	step("close", th.Close(fd))
	step("release", fs.ReleaseAll())
	step("rename", th.Rename(file, moved))
	step("truncate", th.Truncate(moved, 64))
	step("create2", th.Create(doomed))
	step("unlink", th.Unlink(doomed))
	step("release2", fs.ReleaseAll())

	dev.SetFenceObserver(nil)
	return states, digest(dev.CrashImage(pmem.CrashDropAll))
}

// TestSerialDataCrashStatesMatchLockFree pins the data-plane invariant
// the lock-free read paths rely on: the read discipline touches no write
// path, so the locked and lock-free configurations admit exactly the
// same crash-state set over an identical schedule and end on the same
// durable image. A divergence means a read path started mutating persist
// ordering — the regression this test exists to catch.
func TestSerialDataCrashStatesMatchLockFree(t *testing.T) {
	lockfree, lfFinal := dataPlaneCrashStates(t, false)
	locked, lkFinal := dataPlaneCrashStates(t, true)
	if lfFinal != lkFinal {
		t.Fatal("final durable images differ between lock-free and serial-data runs")
	}
	if len(lockfree) != len(locked) {
		t.Fatalf("crash-state count differs: lock-free %d, serial-data %d", len(lockfree), len(locked))
	}
	for k := range lockfree {
		if !locked[k] {
			t.Fatal("lock-free run admits a crash state the serial-data run does not")
		}
	}
}
