package crashmc

import (
	"sort"
	"strings"
)

// model tracks the set of paths a crash image must preserve, per the
// Trio durability contract: a path is asserted durable only if the last
// completed kernel release verified it AND no later operation has named
// it (or an ancestor) since. Everything else — unverified creations,
// in-flight renames, files created after the last release — may
// legitimately vanish at a crash, and recovery dropping them is not a
// counterexample.
//
// The model is deliberately conservative (it unasserts on any namespace
// op touching a verified path) so that every violation it does report
// is a real loss of verified state, never a modeling artifact.
type model struct {
	cur      map[string]bool // paths that exist in the running FS
	verified map[string]bool // verified at last release, untouched since
}

// newModel builds the model state as of the end of the checker's warmup
// (which always ends in a hidden release before tracking starts).
func newModel(warmup []Op) *model {
	m := &model{cur: map[string]bool{"/": true}, verified: map[string]bool{}}
	for _, op := range warmup {
		m.apply(op)
	}
	m.apply(Op{Kind: OpRelease})
	return m
}

// apply folds a completed op into the model.
func (m *model) apply(op Op) {
	switch op.Kind {
	case OpCreate, OpMkdir:
		m.cur[op.Path] = true
	case OpUnlink, OpRmdir:
		delete(m.cur, op.Path)
		m.unassert(op.Path)
	case OpRename:
		var moved []string
		for p := range m.cur {
			if p == op.Path || strings.HasPrefix(p, op.Path+"/") {
				moved = append(moved, p)
			}
		}
		sort.Strings(moved)
		for _, p := range moved {
			delete(m.cur, p)
		}
		for _, p := range moved {
			m.cur[op.Path2+strings.TrimPrefix(p, op.Path)] = true
		}
		m.unassert(op.Path)
		m.unassert(op.Path2)
	case OpRelease:
		m.verified = make(map[string]bool, len(m.cur))
		for p := range m.cur {
			m.verified[p] = true
		}
	}
	// OpWrite and OpTruncate change file contents, not the namespace;
	// the checker asserts presence only, so they leave the model alone.
}

// unassert removes path and its subtree from the verified set.
func (m *model) unassert(path string) {
	for p := range m.verified {
		if p == path || strings.HasPrefix(p, path+"/") {
			delete(m.verified, p)
		}
	}
}

// expectPresent returns, sorted, the paths every crash image taken now
// must preserve. inflight, when non-nil, is the op currently executing;
// the paths it touches (and their subtrees) are excluded, since the op
// is entitled to be mid-mutation of them.
func (m *model) expectPresent(inflight *Op) []string {
	var skip []string
	if inflight != nil {
		skip = inflight.touched()
	}
	out := make([]string, 0, len(m.verified))
	for p := range m.verified {
		if p == "/" {
			continue
		}
		excluded := false
		for _, t := range skip {
			if p == t || strings.HasPrefix(p, t+"/") {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
