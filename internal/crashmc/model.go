package crashmc

import (
	"sort"
	"strings"
)

// Oracle tracks the expected namespace state of a workload, per the Trio
// durability contract: a path is asserted crash-durable only if the last
// completed kernel release verified it AND no later operation has named
// it (or an ancestor) since. Everything else — unverified creations,
// in-flight renames, files created after the last release — may
// legitimately vanish at a crash, and recovery dropping them is not a
// counterexample.
//
// The oracle is deliberately conservative (it unasserts on any namespace
// op touching a verified path) so that every violation it does report
// is a real loss of verified state, never a modeling artifact.
//
// It is updated incrementally, one completed op at a time (Apply), which
// is what lets the crash-loop orchestrator (internal/crashloop) persist
// an expected state per iteration instead of replaying the whole op log:
// the live namespace (Live) drives workload generation, and the verified
// set (ExpectPresent) is the durability assertion checked after every
// simulated crash.
type Oracle struct {
	// cur maps every path that exists in the running FS to whether it is
	// a directory.
	cur map[string]bool
	// verified holds paths verified at the last release and untouched
	// since.
	verified map[string]bool
}

// NewOracle builds the oracle state as of the end of a warmup script
// (which always ends in a hidden release before tracking starts).
func NewOracle(warmup []Op) *Oracle {
	m := &Oracle{cur: map[string]bool{"/": true}, verified: map[string]bool{}}
	for _, op := range warmup {
		m.Apply(op)
	}
	m.Apply(Op{Kind: OpRelease})
	return m
}

// Apply folds a completed op into the oracle. Ops that were expected to
// fail (WantErr) must not be applied — they did not change the
// namespace.
func (m *Oracle) Apply(op Op) {
	switch op.Kind {
	case OpCreate:
		m.cur[op.Path] = false
	case OpMkdir:
		m.cur[op.Path] = true
	case OpUnlink, OpRmdir:
		delete(m.cur, op.Path)
		m.unassert(op.Path)
	case OpRename:
		var moved []string
		for p := range m.cur {
			if p == op.Path || strings.HasPrefix(p, op.Path+"/") {
				moved = append(moved, p)
			}
		}
		sort.Strings(moved)
		isDir := make([]bool, len(moved))
		for i, p := range moved {
			isDir[i] = m.cur[p]
			delete(m.cur, p)
		}
		for i, p := range moved {
			m.cur[op.Path2+strings.TrimPrefix(p, op.Path)] = isDir[i]
		}
		m.unassert(op.Path)
		m.unassert(op.Path2)
	case OpRelease:
		m.verified = make(map[string]bool, len(m.cur))
		for p := range m.cur {
			m.verified[p] = true
		}
	}
	// OpWrite and OpTruncate change file contents, not the namespace;
	// the checkers assert presence only, so they leave the oracle alone.
}

// unassert removes path and its subtree from the verified set.
func (m *Oracle) unassert(path string) {
	for p := range m.verified {
		if p == path || strings.HasPrefix(p, path+"/") {
			delete(m.verified, p)
		}
	}
}

// Exists reports whether path exists in the running FS.
func (m *Oracle) Exists(path string) bool { _, ok := m.cur[path]; return ok }

// IsDir reports whether path exists and is a directory.
func (m *Oracle) IsDir(path string) bool { return m.cur[path] }

// Live returns, sorted, every path that exists in the running FS,
// excluding the root. A clean (crash-free) run must end with the live
// FS namespace exactly equal to this set — the oracle self-check.
func (m *Oracle) Live() []string {
	out := make([]string, 0, len(m.cur))
	for p := range m.cur {
		if p == "/" {
			continue
		}
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Dirs returns, sorted, every directory that exists, including the root.
func (m *Oracle) Dirs() []string {
	var out []string
	for p, isDir := range m.cur {
		if isDir {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Files returns, sorted, every regular file that exists.
func (m *Oracle) Files() []string {
	var out []string
	for p, isDir := range m.cur {
		if !isDir {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ExpectPresent returns, sorted, the paths every crash image taken now
// must preserve. inflight, when non-nil, is the op currently executing;
// the paths it touches (and their subtrees) are excluded, since the op
// is entitled to be mid-mutation of them.
func (m *Oracle) ExpectPresent(inflight *Op) []string {
	var skip []string
	if inflight != nil {
		skip = inflight.touched()
	}
	out := make([]string, 0, len(m.verified))
	for p := range m.verified {
		if p == "/" {
			continue
		}
		excluded := false
		for _, t := range skip {
			if p == t || strings.HasPrefix(p, t+"/") {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
