package crashmc

import (
	"fmt"
	"math/rand"

	"arckfs/internal/pmem"
)

// enumerate covers one observation point's crash-state space. Each
// dirty line l may persist any prefix of its Versions_l unpersisted
// store batches independently, so the space is the mixed-radix product
// of (Versions_l + 1). Spaces within PointBudget are enumerated
// completely; larger ones get the adversarial corners — nothing,
// everything, each line alone, each line missing — plus SampleN seeded
// random assignments. The corners are what manifest ordering bugs
// deterministically: a §4.2 torn commit IS "marker line alone", and the
// reserveDentry hole IS "record-length line missing".
func (c *checker) enumerate(states []pmem.LineState, expect []string) {
	total := 1
	for _, s := range states {
		total *= s.Versions + 1
		if total > c.cfg.PointBudget {
			total = -1
			break
		}
	}
	ks := make([]int, len(states))
	if total > 0 {
		c.res.Exhaustive++
		for {
			if !c.checkAssignment(states, ks, expect) {
				return
			}
			i := 0
			for ; i < len(ks); i++ {
				ks[i]++
				if ks[i] <= states[i].Versions {
					break
				}
				ks[i] = 0
			}
			if i == len(ks) {
				return
			}
		}
	}
	c.res.Sampled++
	tried := map[string]bool{}
	try := func(ks []int) bool {
		key := fmt.Sprint(ks)
		if tried[key] {
			return true
		}
		tried[key] = true
		return c.checkAssignment(states, ks, expect)
	}
	zero := make([]int, len(states))
	full := make([]int, len(states))
	for i, s := range states {
		full[i] = s.Versions
	}
	if !try(zero) || !try(full) {
		return
	}
	for i := range states {
		alone := make([]int, len(states))
		alone[i] = states[i].Versions
		if !try(alone) {
			return
		}
		missing := append([]int(nil), full...)
		missing[i] = 0
		if !try(missing) {
			return
		}
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(c.res.Points)*1000003))
	for n := 0; n < c.cfg.SampleN; n++ {
		for i, s := range states {
			ks[i] = rng.Intn(s.Versions + 1)
		}
		if !try(ks) {
			return
		}
	}
}
