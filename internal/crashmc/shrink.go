package crashmc

// Op-schedule shrinking. The line assignment is minimized inline at
// record time (the device state is only live then); the op schedule is
// minimized here by re-running candidate sub-schedules from scratch —
// execution is deterministic, so a removal either reproduces the same
// invariant violation or it doesn't.

// shrinkOps greedily removes ops the counterexample does not need, then
// re-collects on the final schedule so Point, Keep, and Detail describe
// the shrunk run consistently.
func shrinkOps(cfg Config, ce *Counterexample) (*Counterexample, error) {
	ops := ce.Ops
	for i := len(ops) - 1; i >= 0 && len(ops) > 1; i-- {
		cand := make([]Op, 0, len(ops)-1)
		cand = append(cand, ops[:i]...)
		cand = append(cand, ops[i+1:]...)
		if reFound(cfg, cand, ce.Invariant) {
			ops = cand
		}
	}
	sub := cfg
	sub.Ops = ops
	sub.NoShrink = true
	res, err := runCollect(sub)
	if err != nil {
		// The original counterexample is still valid; keep it.
		return ce, nil
	}
	for _, c2 := range res.Counterexamples {
		if c2.Invariant == ce.Invariant {
			return c2, nil
		}
	}
	return ce, nil
}

// reFound reports whether running cfg with ops still violates inv. A
// run error (e.g. a WantErr mismatch after a removal changed an op's
// outcome) means the candidate schedule is invalid, not that the
// violation is gone.
func reFound(cfg Config, ops []Op, inv string) bool {
	sub := cfg
	sub.Ops = ops
	sub.NoShrink = true
	res, err := runCollect(sub)
	if err != nil {
		return false
	}
	return res.Violated(inv)
}
