package crashmc

import "arckfs/internal/libfs"

// Campaign returns the standard workload configurations, with each
// configuration's Expect oracle. Two pairs are the checker's own
// acceptance test:
//
//   - create-commit/arckfs must rediscover the §4.2 missing-fence bug
//     as an I2 violation (a valid commit marker persisted over a torn
//     body), and create-commit/arckfs+ must be clean;
//   - reserve-scan/arckfs must rediscover the reserveDentry
//     record-length hole arcklint found statically in PR 3 as an I3
//     violation (a dead reserved slot whose unflushed length reads 0,
//     terminating the log scan before a kernel-verified entry), and
//     reserve-scan/arckfs+ must be clean.
//
// Both are found from their bug flags alone — the workloads encode no
// knowledge of which lines or offsets matter.
//
// Names span multiple cache lines (DentryRecLen > 64) so a torn record
// is physically expressible: the commit marker shares the record's
// first line, and only name bytes spilling into later lines can persist
// independently of it.
func Campaign() []Config {
	const long = "-0123456789-0123456789-0123456789-0123456789-0123456789"
	victim := "/victim" + long
	alpha := "/alpha" + long
	bravo := "/bravo" + long
	warm := []Op{{Kind: OpCreate, Path: "/warmup" + long}}
	create := []Op{{Kind: OpCreate, Path: victim}}
	reserve := []Op{
		{Kind: OpCreate, Path: alpha},
		{Kind: OpCreate, Path: alpha, WantErr: true}, // plants the dead reserved slot
		{Kind: OpCreate, Path: bravo},
		{Kind: OpRelease},
	}
	mixed := []Op{
		{Kind: OpMkdir, Path: "/dir"},
		{Kind: OpCreate, Path: "/dir/file" + long},
		{Kind: OpWrite, Path: "/dir/file" + long, Size: 300},
		{Kind: OpRelease},
		{Kind: OpRename, Path: "/dir/file" + long, Path2: "/dir/moved" + long},
		{Kind: OpTruncate, Path: "/dir/moved" + long, Size: 64},
		{Kind: OpCreate, Path: "/doomed" + long},
		{Kind: OpUnlink, Path: "/doomed" + long},
		{Kind: OpRelease},
	}
	return []Config{
		{
			Name:   "create-commit/arckfs",
			Bugs:   libfs.BugMissingFence,
			Warmup: warm,
			Ops:    create,
			Expect: []string{InvNoTornCommit},
		},
		{
			Name:   "create-commit/arckfs+",
			Warmup: warm,
			Ops:    create,
		},
		{
			Name:       "marker-window/arckfs",
			Bugs:       libfs.BugMissingFence,
			Interleave: "marker-window",
			Warmup:     warm,
			Ops:        create,
			Expect:     []string{InvNoTornCommit},
		},
		{
			Name:       "marker-window/arckfs+",
			Interleave: "marker-window",
			Warmup:     warm,
			Ops:        create,
		},
		{
			Name:   "reserve-scan/arckfs",
			Bugs:   libfs.BugAuxCoreRace | libfs.BugReserveLenUnflushed,
			Warmup: warm,
			Ops:    reserve,
			Expect: []string{InvVerifiedDurable},
		},
		{
			Name:   "reserve-scan/arckfs+",
			Warmup: warm,
			Ops:    reserve,
		},
		{
			Name:   "mixed-ops/arckfs+",
			Warmup: warm,
			Ops:    mixed,
		},
		{
			// The locked data plane must be crash-equivalent to the
			// lock-free default: the read discipline changes no write path,
			// so this run must stay clean over the same schedule (and
			// TestSerialDataCrashStatesMatchLockFree pins the state sets as
			// identical, not merely both clean).
			Name:       "mixed-ops/serial-data",
			SerialData: true,
			Warmup:     warm,
			Ops:        mixed,
		},
	}
}
