// Package crashmc is a dynamic crash-state model checker for the LibFS
// persist schedule. Where arcklint (internal/analysis) finds ordering
// bugs statically from the shape of the code, crashmc finds them
// dynamically, the way the crash-consistency literature says the
// long tail must be found: run a real workload, stop at every
// persist-relevant point, enumerate the crash images the persistency
// model admits there, and run recovery against each one.
//
// # How it works
//
// A Config scripts a workload (create/write/rename/unlink/truncate
// mixes, with explicit kernel Release points) against a LibFS built with
// a chosen bug set. The checker registers a fence observer on the pmem
// device: every sfence the workload issues — plus a synthetic checkpoint
// after each operation — becomes an observation point. Observing at the
// start of a fence is sufficient: between two fences the set of dirty
// lines only grows, so the crash images reachable just before fence N
// are a superset of those reachable at any instant since fence N-1.
//
// At each point the checker reads the device's dirty-line state
// (pmem.DirtyLineStates): each line with V unpersisted store versions
// may independently persist any prefix of them, so the crash-state
// space is the product of (V+1) over all dirty lines. Spaces within
// PointBudget are enumerated exhaustively in mixed-radix order; larger
// ones are covered by adversarial corners (nothing, everything, each
// line alone, each line missing) plus a seeded deterministic sample.
//
// Every image is checked with the real recovery path and four named
// invariants (see CheckImage): I1 recovery succeeds, I2 no committed
// dentry record is torn (the §4.2 signature), I3 every kernel-verified
// path still resolves (the Trio durability contract: only released,
// verified state may be asserted durable — the model in model.go tracks
// exactly that set), and I4 repair is idempotent (a re-check after
// repair is clean).
//
// # Trusted (kernel-hardened) regions
//
// The superblock and the kernel's shadow inode table always persist
// fully in every enumerated image. Shadow records are two cache lines
// written under a single trailing fence inside the kernel; tearing them
// would fail recovery by construction and say nothing about LibFS
// ordering, which is the property under test — the kernel is assumed
// correct throughout this reproduction. For the same reason no
// observations are taken inside Release (the kernel verification
// protocol); the checkpoint after the release still enumerates whatever
// LibFS left dirty across it.
//
// # Counterexamples
//
// A violating image is shrunk twice: the persisted-line assignment is
// minimized greedily while the device is still live, and the op
// schedule is minimized by re-running candidate sub-schedules. The
// result is a Counterexample small enough to read, and WriteRepro
// renders it as a standalone generated Go test that Replay re-executes:
// the test fails while the counterexample reproduces and passes once
// the ordering is fixed (the fixed schedule either fences the state
// early, making the recorded assignment benign, or never reaches an
// equivalent dirty state at the recorded point).
//
// Campaign returns the standard configurations, including the two
// acceptance oracles: the §4.2 missing-fence bug (found as I2) and the
// reserveDentry record-length hole arcklint found in PR 3 (found as
// I3), both rediscovered from their bug flags alone, with the patched
// ArckFS+ reporting zero counterexamples under the same budget.
package crashmc
