package crashmc

import "testing"

// TestCrashStateEnumerationDeterministic pins the property the
// discipline-equivalence gate stands on: replaying the same schedule
// twice yields the same crash-state set and final image. The enumeration
// samples a truncated prefix of the dirty-line list at every fence, so
// any map-iteration order leaking into DirtyLines, verification results,
// or release order shows up here as a run-to-run diff long before it
// makes TestSerialDataCrashStatesMatchLockFree flake.
func TestCrashStateEnumerationDeterministic(t *testing.T) {
	for _, serial := range []bool{false, true} {
		a, af := dataPlaneCrashStates(t, serial)
		b, bf := dataPlaneCrashStates(t, serial)
		if af != bf {
			t.Errorf("serialData=%v: final images differ between identical runs", serial)
		}
		if len(a) != len(b) {
			t.Errorf("serialData=%v: crash-state count differs between identical runs: %d vs %d",
				serial, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Errorf("serialData=%v: crash state admitted by run A is missing from run B", serial)
				break
			}
		}
	}
}
