package crashmc

import (
	"fmt"

	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// The named recovery invariants every crash image must satisfy. The
// names appear in counterexamples, generated repros, and the campaign's
// Expect oracles.
const (
	// InvRecoverable (I1): kernel.Mount with repair must succeed on the
	// image.
	InvRecoverable = "I1-recoverable"
	// InvNoTornCommit (I2): recovery must find no committed dentry
	// record with a torn body — the §4.2 partial-persist signature.
	InvNoTornCommit = "I2-no-torn-commit"
	// InvVerifiedDurable (I3): every kernel-verified path untouched
	// since the last completed release must still resolve after
	// recovery.
	InvVerifiedDurable = "I3-verified-durable"
	// InvRepairIdempotent (I4): a dry-run re-check after repair must be
	// clean — repair converges in one pass.
	InvRepairIdempotent = "I4-repair-idempotent"
)

// Violation is one failed invariant on one crash image.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// CheckImage runs the recovery path over a crash image and returns
// every invariant violation found. expectPresent lists the paths the
// image must preserve (the model's verified-durable set); nil runs the
// model-free subset (I1, I2, I4), which is what `arckfsck -deep` uses
// on images with no known history.
//
// The check is the library form of what cmd/arckfsck does: mount with
// repair, inspect the report, then re-check the repaired image.
func CheckImage(img []byte, expectPresent []string) []Violation {
	var vs []Violation
	rdev := pmem.Restore(img, nil)
	ctrl, rep, err := kernel.Mount(rdev, kernel.Options{}, true)
	if err != nil {
		return []Violation{{InvRecoverable, err.Error()}}
	}
	if rep.CorruptDentries > 0 {
		vs = append(vs, Violation{InvNoTornCommit,
			fmt.Sprintf("recovery found %d torn committed dentry record(s): %s", rep.CorruptDentries, rep)})
	}
	// I4 before I3: Fsck is a dry run, while the I3 path resolution
	// below attaches a LibFS and re-acquires inodes from the kernel.
	if rep2, err := kernel.Fsck(rdev, kernel.Options{}); err != nil {
		vs = append(vs, Violation{InvRepairIdempotent,
			fmt.Sprintf("re-check after repair failed: %v", err)})
	} else if !rep2.Clean() {
		vs = append(vs, Violation{InvRepairIdempotent,
			fmt.Sprintf("repair left damage behind: %s", rep2)})
	}
	if len(expectPresent) > 0 {
		fs := libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{})
		th := fs.NewThread(0)
		for _, p := range expectPresent {
			if _, err := th.Stat(p); err != nil {
				vs = append(vs, Violation{InvVerifiedDurable,
					fmt.Sprintf("kernel-verified path %s unresolvable after recovery: %v", p, err)})
			}
		}
	}
	return vs
}
