package crashmc

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// TestFlightRecorderCapturesBreach is the acceptance test for the
// breach flight recorder: the §4.2 missing-fence counterexample must
// ship a flight record whose span history contains the unfenced
// commit-marker store — i.e. a span holding a SpanEvFlush event whose
// line range covers a line the shrunk counterexample keeps persisted.
func TestFlightRecorderCapturesBreach(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexample; nothing to record")
	}
	ce := res.Counterexamples[0]
	if ce.Flight == nil {
		t.Fatal("counterexample has no flight record")
	}
	if len(ce.Flight.Spans) == 0 {
		t.Fatal("flight record holds no spans")
	}
	if ce.Flight.Reason != "crashmc:"+ce.Invariant {
		t.Fatalf("flight reason %q does not name the invariant %q", ce.Flight.Reason, ce.Invariant)
	}

	// The marker line the torn commit depends on is in Keep; some span
	// in the flight must have flushed it.
	covered := false
	for _, sp := range ce.Flight.Spans {
		for _, ev := range sp.Events {
			if ev.Kind != telemetry.SpanEvFlush {
				continue
			}
			lo, hi := ev.A, ev.A+ev.B*pmem.LineSize
			for _, lc := range ce.Keep {
				if lc.Off >= lo && lc.Off < hi {
					covered = true
				}
			}
		}
	}
	if !covered {
		t.Fatalf("no span in the flight flushed a kept marker line (Keep=%v)", ce.Keep)
	}
}

// TestFlightRecordWriteFile exercises the JSON artifact path end to
// end: the record lands in the requested directory, the name is
// sanitized, and the JSON round-trips with kinds rendered by name.
func TestFlightRecordWriteFile(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ce := res.Counterexamples[0]

	dir := t.TempDir()
	path, err := ce.Flight.WriteFile(dir, "flight/create:commit")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "flight-create-commit.json" {
		t.Fatalf("name not sanitized: %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back span.FlightRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Reason != ce.Flight.Reason || len(back.Spans) != len(ce.Flight.Spans) {
		t.Fatalf("round-trip lost content: %q/%d vs %q/%d",
			back.Reason, len(back.Spans), ce.Flight.Reason, len(ce.Flight.Spans))
	}
}
