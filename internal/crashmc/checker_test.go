package crashmc

import (
	"reflect"
	"testing"

	"arckfs/internal/libfs"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
)

// TestCampaignOracle is the checker's acceptance test (and the
// project's acceptance criterion for crashmc): every campaign
// configuration must match its Expect oracle — the §4.2 missing-fence
// bug and the PR 3 reserveDentry record-length hole are rediscovered
// from their bug flags alone, and the patched ArckFS+ yields zero
// counterexamples under the same budget.
func TestCampaignOracle(t *testing.T) {
	for _, cfg := range Campaign() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				var got []string
				for _, ce := range res.Counterexamples {
					got = append(got, ce.String())
				}
				t.Fatalf("oracle mismatch: expected %v, got %d counterexample(s): %v",
					cfg.Expect, len(res.Counterexamples), got)
			}
			if res.Points == 0 {
				t.Fatal("no observation points visited")
			}
		})
	}
}

// TestSection42CounterexampleShape pins what the §4.2 counterexample
// looks like after shrinking: a single create suffices, and the minimal
// persisted-line set is non-empty (the commit marker's line must
// persist for the body to be torn under it).
func TestSection42CounterexampleShape(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) != 1 {
		t.Fatalf("want exactly one counterexample, got %d", len(res.Counterexamples))
	}
	ce := res.Counterexamples[0]
	if ce.Invariant != InvNoTornCommit {
		t.Fatalf("want %s, got %s", InvNoTornCommit, ce.Invariant)
	}
	if len(ce.Ops) != 1 || ce.Ops[0].Kind != OpCreate {
		t.Fatalf("shrunk schedule should be the single create, got %v", ce.Ops)
	}
	if len(ce.Keep) == 0 {
		t.Fatal("a torn commit needs at least the marker line persisted; Keep is empty")
	}
}

// TestReserveHoleCounterexampleShape pins the reserveDentry hole's
// shape: the violation is the loss of the verified entry appended after
// the dead slot, and the minimal counterexample persists nothing — the
// crash state that loses the file is exactly the fenced-durable image,
// because the record length was never flushed at all.
func TestReserveHoleCounterexampleShape(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "reserve-scan/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated(InvVerifiedDurable) {
		t.Fatalf("reserve hole not rediscovered: %v", res.Counterexamples)
	}
	for _, ce := range res.Counterexamples {
		if ce.Invariant != InvVerifiedDurable {
			continue
		}
		if len(ce.Keep) != 0 {
			t.Errorf("minimal counterexample should persist nothing (the hole is an unflushed line), got %v", ce.Keep)
		}
		// The dead slot requires the duplicate create; shrinking must not
		// remove it.
		dup := false
		for _, op := range ce.Ops {
			if op.WantErr {
				dup = true
			}
		}
		if !dup {
			t.Errorf("shrunk schedule lost the duplicate create that plants the dead slot: %v", ce.Ops)
		}
	}
}

// TestRunDeterminism: same config, same seed — identical result shape
// and identical counterexamples, down to points, line offsets, and
// prefix choices. The CI smoke job and generated repros rely on this.
func TestRunDeterminism(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || a.Images != b.Images {
		t.Fatalf("nondeterministic exploration: %d/%d points, %d/%d images",
			a.Points, b.Points, a.Images, b.Images)
	}
	// The flight records carry wall-clock timings, so they are compared
	// structurally; everything else must match byte for byte.
	fa, fb := stripFlights(a), stripFlights(b)
	if !reflect.DeepEqual(a.Counterexamples, b.Counterexamples) {
		t.Fatalf("nondeterministic counterexamples:\n%v\nvs\n%v", a.Counterexamples, b.Counterexamples)
	}
	if len(fa) != len(fb) {
		t.Fatalf("flight count differs: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		assertSameFlightShape(t, fa[i], fb[i])
	}
}

// stripFlights detaches every counterexample's flight record, returning
// them in order.
func stripFlights(r *Result) []*span.FlightRecord {
	out := make([]*span.FlightRecord, len(r.Counterexamples))
	for i, ce := range r.Counterexamples {
		out[i] = ce.Flight
		ce.Flight = nil
	}
	return out
}

// assertSameFlightShape checks the timing-independent content of two
// flight records: same reason, same span sequence (op, app, outcome),
// and identical event kinds and deterministic payloads. Durations and
// event timestamps legitimately differ run to run.
func assertSameFlightShape(t *testing.T, a, b *span.FlightRecord) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("missing flight record: %v vs %v", a, b)
	}
	if a.Reason != b.Reason || len(a.Spans) != len(b.Spans) {
		t.Fatalf("flight shape differs: %q/%d spans vs %q/%d spans",
			a.Reason, len(a.Spans), b.Reason, len(b.Spans))
	}
	for i := range a.Spans {
		sa, sb := a.Spans[i], b.Spans[i]
		if sa.Op != sb.Op || sa.App != sb.App || sa.Err != sb.Err || len(sa.Events) != len(sb.Events) {
			t.Fatalf("flight span %d differs: %v vs %v", i, sa, sb)
		}
		for j := range sa.Events {
			ea, eb := sa.Events[j], sb.Events[j]
			if ea.Kind != eb.Kind || ea.A != eb.A {
				t.Fatalf("flight span %d event %d differs: %v vs %v", i, j, ea, eb)
			}
			// B is a duration for crossings; it is only pinned for the
			// deterministic kinds (flush line counts, ntstore sizes...).
			if ea.Kind != telemetry.SpanEvCrossing && ea.B != eb.B {
				t.Fatalf("flight span %d event %d payload differs: %v vs %v", i, j, ea, eb)
			}
		}
	}
}

// TestReplayPair replays the §4.2 counterexample in process: under the
// buggy flags the recorded crash image must still violate I2; with the
// fence restored (ArckFS+) the same schedule and assignment must be
// benign.
func TestReplayPair(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexample to replay")
	}
	r := ReproOf(res.Counterexamples[0], cfg.Interleave)

	reached, vs, err := ReplayOutcome(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("buggy replay never reached the recorded point")
	}
	found := false
	for _, v := range vs {
		if v.Invariant == r.Invariant {
			found = true
		}
	}
	if !found {
		t.Fatalf("buggy replay did not reproduce %s (got %v)", r.Invariant, vs)
	}

	patched := r
	patched.Bugs = uint32(libfs.BugsNone)
	reached, vs, err = ReplayOutcome(patched)
	if err != nil {
		t.Fatal(err)
	}
	if reached {
		for _, v := range vs {
			if v.Invariant == r.Invariant {
				t.Fatalf("patched replay still violates %s: %v", r.Invariant, v)
			}
		}
	}
}

// TestCheckImageModelFree exercises the arckfsck -deep entry: a clean
// post-release image passes the model-free invariants.
func TestCheckImageModelFree(t *testing.T) {
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs+" {
			cfg = c
		}
	}
	cfg.fill()
	c, err := newChecker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.dev.SetFenceObserver(nil)
	if err := c.runOp(Op{Kind: OpRelease}); err != nil {
		t.Fatal(err)
	}
	img := c.dev.CrashImage(func(_ int64, versions int) int { return versions })
	if vs := CheckImage(img, nil); len(vs) != 0 {
		t.Fatalf("clean image fails model-free check: %v", vs)
	}
}
