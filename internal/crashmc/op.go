package crashmc

import (
	"fmt"

	"arckfs/internal/fsapi"
	"arckfs/internal/libfs"
)

// OpKind enumerates the scripted workload operations.
type OpKind int

const (
	// OpCreate creates a file at Path.
	OpCreate OpKind = iota
	// OpMkdir creates a directory at Path.
	OpMkdir
	// OpWrite opens Path, writes Size patterned bytes at offset 0,
	// fsyncs, and closes.
	OpWrite
	// OpTruncate truncates Path to Size bytes.
	OpTruncate
	// OpUnlink unlinks the file at Path.
	OpUnlink
	// OpRmdir removes the empty directory at Path.
	OpRmdir
	// OpRename renames Path to Path2.
	OpRename
	// OpRelease returns every held inode to the kernel for verification
	// (FS.ReleaseAll) — the Trio durability point: only state a completed
	// release has verified may be asserted crash-durable.
	OpRelease
)

var opKindNames = [...]string{
	OpCreate:   "create",
	OpMkdir:    "mkdir",
	OpWrite:    "write",
	OpTruncate: "truncate",
	OpUnlink:   "unlink",
	OpRmdir:    "rmdir",
	OpRename:   "rename",
	OpRelease:  "release",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is one scripted workload step.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Size  int    // write / truncate size

	// WantErr marks an op that must fail (e.g. the duplicate create that
	// plants a dead reserved slot). The checker aborts the run if the
	// outcome does not match, so op-schedule shrinking can never mistake
	// a changed error for a preserved counterexample.
	WantErr bool
}

func (o Op) String() string {
	s := o.Kind.String()
	if o.Path != "" {
		s += " " + o.Path
	}
	if o.Path2 != "" {
		s += " -> " + o.Path2
	}
	if o.Kind == OpWrite || o.Kind == OpTruncate {
		s += fmt.Sprintf(" (%dB)", o.Size)
	}
	if o.WantErr {
		s += " (must fail)"
	}
	return s
}

// apply runs the op against the workload's FS and thread, returning the
// operation's error.
func (o Op) apply(fs *libfs.FS, th fsapi.Thread) error {
	return o.Apply(th, fs.ReleaseAll)
}

// Apply runs the op against th. release implements OpRelease — the
// system-specific "return every held inode to the kernel for
// verification" hook (libfs.FS.ReleaseAll on ArckFS; nil makes OpRelease
// a no-op for systems without release semantics, such as the baselines,
// which verify durability at fsync instead). It exists so harnesses
// outside this package (internal/crashloop) can drive the same op
// vocabulary against any fsapi.Thread.
func (o Op) Apply(th fsapi.Thread, release func() error) error {
	switch o.Kind {
	case OpCreate:
		return th.Create(o.Path)
	case OpMkdir:
		return th.Mkdir(o.Path)
	case OpWrite:
		fd, err := th.Open(o.Path)
		if err != nil {
			return err
		}
		defer th.Close(fd)
		buf := make([]byte, o.Size)
		for i := range buf {
			buf[i] = byte('a' + i%23)
		}
		if _, err := th.WriteAt(fd, buf, 0); err != nil {
			return err
		}
		return th.Fsync(fd)
	case OpTruncate:
		return th.Truncate(o.Path, uint64(o.Size))
	case OpUnlink:
		return th.Unlink(o.Path)
	case OpRmdir:
		return th.Rmdir(o.Path)
	case OpRename:
		return th.Rename(o.Path, o.Path2)
	case OpRelease:
		if release == nil {
			return nil
		}
		return release()
	}
	return fmt.Errorf("crashmc: unknown op kind %d", int(o.Kind))
}

// touched lists the paths whose durability the op may legitimately
// disturb while in flight; the model excludes them (and anything below
// them) from the verified-durable assertion during the op.
func (o Op) touched() []string {
	switch o.Kind {
	case OpRelease:
		return nil
	case OpRename:
		return []string{o.Path, o.Path2}
	default:
		if o.Path == "" {
			return nil
		}
		return []string{o.Path}
	}
}
