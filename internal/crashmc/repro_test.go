package crashmc

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"arckfs/internal/libfs"
)

// TestGeneratedReproRoundTrip is the satellite acceptance test for
// repro generation: a shrunk §4.2 counterexample is rendered with
// WriteRepro into a standalone test file, compiled in a scratch module
// against this repository, and executed with `go test` — it must FAIL
// under the buggy configuration and PASS with the fence restored
// (ArckFS+), the pair differing only in the Bugs value.
func TestGeneratedReproRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go test subprocesses")
	}
	var cfg Config
	for _, c := range Campaign() {
		if c.Name == "create-commit/arckfs" {
			cfg = c
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counterexamples) == 0 {
		t.Fatal("no counterexample to render")
	}
	buggy := ReproOf(res.Counterexamples[0], cfg.Interleave)
	patched := buggy
	patched.Name = buggy.Name + "-patched"
	patched.Bugs = uint32(libfs.BugsNone)

	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(repoRoot, "go.mod")); err != nil {
		t.Fatalf("cannot locate repository root from test dir: %v", err)
	}
	scratch := t.TempDir()
	// Generated repros are meant to be dropped into this repository as
	// regression tests, so they import internal packages. The scratch
	// module's path sits under arckfs/ to satisfy the (lexical) internal
	// import rule while still building against the repo via replace.
	gomod := "module arckfs/reprotest\n\ngo 1.23\n\nrequire arckfs v0.0.0\n\nreplace arckfs => " + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(scratch, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	for dir, r := range map[string]Repro{"buggy": buggy, "patched": patched} {
		if err := os.Mkdir(filepath.Join(scratch, dir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, dir, "repro_test.go"), WriteRepro(r), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	runGoTest := func(dir string) (string, error) {
		cmd := exec.Command("go", "test", "./"+dir+"/")
		cmd.Dir = scratch
		cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	if out, err := runGoTest("buggy"); err == nil {
		t.Errorf("generated repro PASSED on buggy ArckFS; it must reproduce the violation:\n%s", out)
	} else if !strings.Contains(out, buggy.Invariant) {
		t.Errorf("generated repro failed for the wrong reason:\n%s", out)
	}
	if out, err := runGoTest("patched"); err != nil {
		t.Errorf("generated repro failed on ArckFS+; the fixed ordering must be benign:\n%s\n%v", out, err)
	}
}
