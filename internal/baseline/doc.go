// Package baseline holds the comparison file systems of the evaluation
// (§5): each subpackage implements fsapi against the same simulated
// pmem device and cost model as ArckFS, reproducing one architectural
// archetype the paper measures against — nova (log-structured kernel
// FS), pmfs (in-place-update kernel FS), and kucofs (kernel-bypass
// with a trusted userspace library). The package itself contains only
// the cross-baseline conformance and comparison tests.
package baseline
