// Package baseline_test runs the shared conformance suite against every
// file system in the repository, proving the benchmark harness drives
// semantically equivalent implementations.
package baseline_test

import (
	"testing"

	"arckfs/internal/baseline/kucofs"
	"arckfs/internal/baseline/nova"
	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/core"
	"arckfs/internal/fsapi"
	"arckfs/internal/fsapi/fstest"
)

func TestNovaConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FS {
		fs, err := nova.New(64<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestPmfsConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FS {
		fs, err := pmfs.New(64<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestKucofsConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FS {
		fs, err := kucofs.New(64<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestArckFSPlusConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fsapi.FS {
		sys, err := core.NewSystem(core.Config{Mode: core.ArckFSPlus, DevSize: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return sys.NewApp(0, 0)
	})
}

// ArckFS (buggy) is still a working file system when run without the
// adversarial interleavings; the suite exercises the single-thread
// semantics it shares with ArckFS+ (rename is excluded from its
// guarantees, so only the safe subset runs here).
func TestArckFSSingleThreadConformance(t *testing.T) {
	mk := func(t *testing.T) fsapi.FS {
		sys, err := core.NewSystem(core.Config{Mode: core.ArckFS, DevSize: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return sys.NewApp(0, 0)
	}
	t.Run("CreateOpenReadWrite", func(t *testing.T) {
		fs := mk(t)
		w := fs.NewThread(0)
		if err := w.Create("/f"); err != nil {
			t.Fatal(err)
		}
		fd, err := w.Open("/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteAt(fd, []byte("abc"), 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 3)
		if _, err := w.ReadAt(fd, got, 0); err != nil || string(got) != "abc" {
			t.Fatalf("read %q, %v", got, err)
		}
	})
}
