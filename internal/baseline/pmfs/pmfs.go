// Package pmfs implements a PMFS-like kernel file system baseline: an
// in-place-update PM file system whose metadata operations are made
// atomic with a centralized undo journal protected by one global lock.
// It is the journaled, poorly-scaling archetype: every create, unlink,
// mkdir, or rename serializes on the journal, while data reads and
// writes take only per-file locks.
package pmfs

import (
	"sort"
	"sync"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
)

// Journal geometry: a ring of 64-byte undo records in page 0..jPages.
const (
	jPages   = 16
	jRecSize = 64
)

// FS is the mounted PMFS-like file system.
type FS struct {
	dev   *pmem.Device
	cost  *costmodel.Model
	alloc *pmalloc.Allocator

	tel      *telemetry.Set
	syscalls *telemetry.Counter

	// jmu is the global journal lock serializing all metadata updates.
	jmu  sync.Mutex
	jOff int64

	imu     sync.Mutex
	inodes  map[uint64]*inode
	nextIno uint64
	root    *inode
}

type inode struct {
	mu       sync.RWMutex
	ino      uint64
	dir      bool
	children map[string]uint64
	blocks   []uint64
	size     uint64
	mtime    uint64
	nlink    uint16
	// dentryPages back the directory's on-PM dentry array (in-place).
	dentryPages []uint64
}

// New formats a PMFS-like file system.
func New(size int64, cost *costmodel.Model) (*FS, error) {
	dev := pmem.New(size, cost)
	g := layout.Geometry{
		PageCount: uint64(dev.Size()) / layout.PageSize,
		DataStart: jPages + 1,
		InodeCap:  1,
	}
	fs := &FS{
		dev:     dev,
		cost:    cost,
		alloc:   pmalloc.New(g),
		inodes:  make(map[uint64]*inode),
		nextIno: 1,
	}
	fs.tel = telemetry.NewSet()
	dev.RegisterTelemetry(fs.tel)
	//arcklint:allow counterreg every system meters "syscalls" in its own private Set so bench tooling reads one cross-system key
	fs.syscalls = fs.tel.Counter("syscalls")
	fs.root = fs.newInode(true)
	return fs, nil
}

// Name implements fsapi.FS.
func (fs *FS) Name() string { return "pmfs" }

func (fs *FS) newInode(dir bool) *inode {
	fs.imu.Lock()
	ino := fs.nextIno
	fs.nextIno++
	in := &inode{ino: ino, dir: dir, nlink: 1}
	if dir {
		in.children = make(map[string]uint64)
		in.nlink = 2
	}
	fs.inodes[ino] = in
	fs.imu.Unlock()
	return in
}

func (fs *FS) inode(ino uint64) *inode {
	fs.imu.Lock()
	in := fs.inodes[ino]
	fs.imu.Unlock()
	return in
}

// journaledUpdate runs fn under the global journal lock, bracketing it
// with PMFS's undo-journal persistence pattern: journal the undo records
// (flush+fence), apply the in-place updates (fn persists them), commit
// the journal (flush+fence).
func (fs *FS) journaledUpdate(nrec int, fn func() error) error {
	fs.jmu.Lock()
	defer fs.jmu.Unlock()
	// Write undo records.
	for i := 0; i < nrec; i++ {
		base := fs.jOff
		fs.dev.Store64(base, 0xDEAD0001)
		fs.dev.Store64(base+8, uint64(i))
		fs.dev.Flush(base, jRecSize)
		fs.jOff += jRecSize
		if fs.jOff+jRecSize > jPages*layout.PageSize {
			fs.jOff = 0
		}
	}
	fs.dev.Fence()
	if err := fn(); err != nil {
		return err
	}
	// Commit record.
	base := fs.jOff
	fs.dev.Store64(base, 0xC0DE0002)
	fs.dev.Persist(base, jRecSize)
	fs.jOff += jRecSize
	if fs.jOff+jRecSize > jPages*layout.PageSize {
		fs.jOff = 0
	}
	return nil
}

// persistDentryArray writes the directory's children into its in-place
// dentry pages (allocating as needed) and persists the touched range —
// the in-place metadata write the journal protects.
func (fs *FS) persistDentry(d *inode, name string, ino uint64) error {
	need := (len(d.children) + 1) * 32
	for len(d.dentryPages)*layout.PageSize < need {
		p, err := fs.alloc.Alloc(0)
		if err != nil {
			return fsapi.ErrNoSpace
		}
		d.dentryPages = append(d.dentryPages, p)
	}
	slot := len(d.children) % (layout.PageSize / 32)
	page := d.dentryPages[len(d.children)/(layout.PageSize/32)%len(d.dentryPages)]
	base := int64(page*layout.PageSize) + int64(slot*32)
	fs.dev.Store64(base, ino)
	n := len(name)
	if n > 24 {
		n = 24
	}
	fs.dev.Write(base+8, []byte(name[:n]))
	fs.dev.Persist(base, 32)
	return nil
}

// Thread implements fsapi.Thread.
type Thread struct {
	fs  *FS
	cpu int
	fds []*inode
}

// NewThread implements fsapi.FS.
func (fs *FS) NewThread(cpu int) fsapi.Thread { return &Thread{fs: fs, cpu: cpu} }

func (fs *FS) resolve(path string) (*inode, error) {
	cur := fs.root
	for _, name := range fsapi.Components(path) {
		if !cur.dir {
			return nil, fsapi.ErrNotDir
		}
		cur.mu.RLock()
		childIno, ok := cur.children[name]
		cur.mu.RUnlock()
		if !ok {
			return nil, fsapi.ErrNotExist
		}
		next := fs.inode(childIno)
		if next == nil {
			return nil, fsapi.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

func (fs *FS) resolveParent(path string) (*inode, string, error) {
	dir, name := fsapi.SplitPath(path)
	if name == "" || !layout.ValidName(name) {
		if len(name) > layout.MaxName {
			return nil, "", fsapi.ErrNameTooLong
		}
		return nil, "", fsapi.ErrInval
	}
	d, err := fs.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if !d.dir {
		return nil, "", fsapi.ErrNotDir
	}
	return d, name, nil
}

func (t *Thread) createNode(path string, dir bool) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.children[name]; exists {
		return fsapi.ErrExist
	}
	child := t.fs.newInode(dir)
	err = t.fs.journaledUpdate(2, func() error {
		return t.fs.persistDentry(d, name, child.ino)
	})
	if err != nil {
		return err
	}
	d.children[name] = child.ino
	return nil
}

// Create implements fsapi.Thread.
func (t *Thread) Create(path string) error { return t.createNode(path, false) }

// Mkdir implements fsapi.Thread.
func (t *Thread) Mkdir(path string) error { return t.createNode(path, true) }

// Open implements fsapi.Thread.
func (t *Thread) Open(path string) (fsapi.FD, error) {
	t.fs.syscall()
	in, err := t.fs.resolve(path)
	if err != nil {
		return -1, err
	}
	for i, e := range t.fds {
		if e == nil {
			t.fds[i] = in
			return fsapi.FD(i), nil
		}
	}
	t.fds = append(t.fds, in)
	return fsapi.FD(len(t.fds) - 1), nil
}

// Close implements fsapi.Thread.
func (t *Thread) Close(fd fsapi.FD) error {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return fsapi.ErrBadFd
	}
	t.fds[fd] = nil
	return nil
}

func (t *Thread) fdInode(fd fsapi.FD) (*inode, error) {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return nil, fsapi.ErrBadFd
	}
	return t.fds[fd], nil
}

// ReadAt implements fsapi.Thread.
func (t *Thread) ReadAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	t.fs.syscall()
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	if uint64(off) >= in.size {
		return 0, nil
	}
	n := len(p)
	if uint64(off)+uint64(n) > in.size {
		n = int(in.size - uint64(off))
	}
	read := 0
	for read < n {
		bi := int((off + int64(read)) / layout.PageSize)
		bo := (off + int64(read)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > n-read {
			chunk = n - read
		}
		if bi < len(in.blocks) && in.blocks[bi] != 0 {
			t.fs.dev.Read(int64(in.blocks[bi]*layout.PageSize)+bo, p[read:read+chunk])
		} else {
			for i := read; i < read+chunk; i++ {
				p[i] = 0
			}
		}
		read += chunk
	}
	return n, nil
}

// WriteAt implements fsapi.Thread. PMFS writes data in place, journaling
// only the metadata (size) update.
func (t *Thread) WriteAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	t.fs.syscall()
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	fs := t.fs
	in.mu.Lock()
	defer in.mu.Unlock()
	end := uint64(off) + uint64(len(p))
	needBlocks := layout.BlocksForSize(end)
	for len(in.blocks) < needBlocks {
		in.blocks = append(in.blocks, 0)
	}
	written := 0
	for written < len(p) {
		bi := int((off + int64(written)) / layout.PageSize)
		bo := (off + int64(written)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		if in.blocks[bi] == 0 {
			b, err := fs.alloc.Alloc(t.cpu)
			if err != nil {
				return written, fsapi.ErrNoSpace
			}
			fs.dev.Zero(int64(b*layout.PageSize), layout.PageSize)
			in.blocks[bi] = b
		}
		base := int64(in.blocks[bi] * layout.PageSize)
		fs.dev.Write(base+bo, p[written:written+chunk])
		fs.dev.Flush(base+bo, int64(chunk))
		written += chunk
	}
	fs.dev.Fence()
	if end > in.size {
		in.size = end
		// Journal the size update.
		if err := fs.journaledUpdate(1, func() error { return nil }); err != nil {
			return written, err
		}
	}
	in.mtime++
	return written, nil
}

// Fsync implements fsapi.Thread.
func (t *Thread) Fsync(fd fsapi.FD) error {
	t.fs.syscall()
	_, err := t.fdInode(fd)
	return err
}

// Unlink implements fsapi.Thread.
func (t *Thread) Unlink(path string) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child != nil && child.dir {
		return fsapi.ErrIsDir
	}
	if err := t.fs.journaledUpdate(2, func() error { return nil }); err != nil {
		return err
	}
	delete(d.children, name)
	if child != nil {
		t.fs.imu.Lock()
		delete(t.fs.inodes, childIno)
		t.fs.imu.Unlock()
		var pages []uint64
		for _, b := range child.blocks {
			if b != 0 {
				pages = append(pages, b)
			}
		}
		t.fs.alloc.Free(pages...)
	}
	return nil
}

// Rmdir implements fsapi.Thread.
func (t *Thread) Rmdir(path string) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child == nil || !child.dir {
		return fsapi.ErrNotDir
	}
	child.mu.RLock()
	empty := len(child.children) == 0
	child.mu.RUnlock()
	if !empty {
		return fsapi.ErrNotEmpty
	}
	if err := t.fs.journaledUpdate(2, func() error { return nil }); err != nil {
		return err
	}
	delete(d.children, name)
	t.fs.imu.Lock()
	delete(t.fs.inodes, childIno)
	t.fs.imu.Unlock()
	t.fs.alloc.Free(child.dentryPages...)
	return nil
}

// Rename implements fsapi.Thread.
func (t *Thread) Rename(oldPath, newPath string) error {
	t.fs.syscall()
	od, oldName, err := t.fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	nd, newName, err := t.fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	first, second := od, nd
	if first.ino > second.ino {
		first, second = second, first
	}
	first.mu.Lock()
	if second != first {
		second.mu.Lock()
	}
	defer func() {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()
	childIno, ok := od.children[oldName]
	if !ok {
		return fsapi.ErrNotExist
	}
	if _, exists := nd.children[newName]; exists {
		return fsapi.ErrExist
	}
	if err := t.fs.journaledUpdate(3, func() error {
		return t.fs.persistDentry(nd, newName, childIno)
	}); err != nil {
		return err
	}
	delete(od.children, oldName)
	nd.children[newName] = childIno
	return nil
}

// Stat implements fsapi.Thread.
func (t *Thread) Stat(path string) (fsapi.Stat, error) {
	t.fs.syscall()
	in, err := t.fs.resolve(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	size := in.size
	if in.dir {
		size = uint64(len(in.children))
	}
	return fsapi.Stat{Ino: in.ino, Dir: in.dir, Size: size, Nlink: in.nlink, MTime: in.mtime}, nil
}

// Readdir implements fsapi.Thread.
func (t *Thread) Readdir(path string) ([]string, error) {
	t.fs.syscall()
	in, err := t.fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if !in.dir {
		return nil, fsapi.ErrNotDir
	}
	in.mu.RLock()
	names := make([]string, 0, len(in.children))
	for n := range in.children {
		names = append(names, n)
	}
	in.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Truncate implements fsapi.Thread.
func (t *Thread) Truncate(path string, size uint64) error {
	t.fs.syscall()
	in, err := t.fs.resolve(path)
	if err != nil {
		return err
	}
	if in.dir {
		return fsapi.ErrIsDir
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	keep := layout.BlocksForSize(size)
	var freed []uint64
	for bi := keep; bi < len(in.blocks); bi++ {
		if in.blocks[bi] != 0 {
			freed = append(freed, in.blocks[bi])
		}
	}
	if keep < len(in.blocks) {
		in.blocks = in.blocks[:keep]
	}
	in.size = size
	if err := t.fs.journaledUpdate(1, func() error { return nil }); err != nil {
		return err
	}
	t.fs.alloc.Free(freed...)
	return nil
}

// syscall charges and counts one kernel crossing.
func (fs *FS) syscall() {
	fs.syscalls.Add(1)
	fs.cost.Syscall()
}

// Telemetry returns the instance's counter set (syscalls plus the
// device's persistence counters).
func (fs *FS) Telemetry() *telemetry.Set { return fs.tel }
