// Package kucofs implements a KucoFS-like baseline: a kernel-userspace
// collaborative PM file system. Data operations run directly in
// userspace against mapped pages with per-file locks and no kernel
// crossing; every metadata operation is shipped to a single trusted
// kernel thread that validates it before applying it — the
// per-operation-verification architecture whose cost Trio amortizes
// away.
package kucofs

import (
	"sort"
	"sync"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
)

// FS is the mounted KucoFS-like file system.
type FS struct {
	dev   *pmem.Device
	cost  *costmodel.Model
	alloc *pmalloc.Allocator

	tel      *telemetry.Set
	syscalls *telemetry.Counter

	// kmu models the single trusted kernel thread: every metadata
	// operation serializes through it and pays a verification charge.
	kmu     sync.Mutex
	logPage uint64
	logOff  int

	imu     sync.Mutex
	inodes  map[uint64]*inode
	nextIno uint64
	root    *inode
}

type inode struct {
	mu       sync.RWMutex
	ino      uint64
	dir      bool
	children map[string]uint64
	blocks   []uint64
	size     uint64
	mtime    uint64
	nlink    uint16
}

// New formats a KucoFS-like file system.
func New(size int64, cost *costmodel.Model) (*FS, error) {
	dev := pmem.New(size, cost)
	g := layout.Geometry{
		PageCount: uint64(dev.Size()) / layout.PageSize,
		DataStart: 1,
		InodeCap:  1,
	}
	fs := &FS{
		dev:     dev,
		cost:    cost,
		alloc:   pmalloc.New(g),
		inodes:  make(map[uint64]*inode),
		nextIno: 1,
	}
	fs.tel = telemetry.NewSet()
	dev.RegisterTelemetry(fs.tel)
	fs.syscalls = fs.tel.Counter("syscalls")
	fs.root = fs.newInode(true)
	return fs, nil
}

// Name implements fsapi.FS.
func (fs *FS) Name() string { return "kucofs" }

func (fs *FS) newInode(dir bool) *inode {
	fs.imu.Lock()
	ino := fs.nextIno
	fs.nextIno++
	in := &inode{ino: ino, dir: dir, nlink: 1}
	if dir {
		in.children = make(map[string]uint64)
		in.nlink = 2
	}
	fs.inodes[ino] = in
	fs.imu.Unlock()
	return in
}

func (fs *FS) inode(ino uint64) *inode {
	fs.imu.Lock()
	in := fs.inodes[ino]
	fs.imu.Unlock()
	return in
}

// trustedOp runs a metadata mutation on the trusted kernel thread: one
// message crossing, full serialization, a per-operation integrity check
// of the touched entries, and a persisted metadata log record.
func (fs *FS) trustedOp(entriesChecked int, fn func() error) error {
	fs.syscall() // message to the trusted thread
	fs.kmu.Lock()
	defer fs.kmu.Unlock()
	fs.cost.VerifyDentries(entriesChecked)
	if err := fn(); err != nil {
		return err
	}
	// Persist a 64-byte metadata log record.
	if fs.logPage == 0 || fs.logOff+64 > layout.LogDataSize {
		p, err := fs.alloc.Alloc(0)
		if err != nil {
			return fsapi.ErrNoSpace
		}
		fs.logPage, fs.logOff = p, 0
	}
	base := int64(fs.logPage*layout.PageSize) + int64(fs.logOff)
	fs.dev.Store64(base, 0xFACE0001)
	fs.dev.Persist(base, 64)
	fs.logOff += 64
	return nil
}

// Thread implements fsapi.Thread.
type Thread struct {
	fs  *FS
	cpu int
	fds []*inode
}

// NewThread implements fsapi.FS.
func (fs *FS) NewThread(cpu int) fsapi.Thread { return &Thread{fs: fs, cpu: cpu} }

// resolve runs in userspace against the shared index (KucoFS gives
// applications a read-only mapping of the namespace).
func (fs *FS) resolve(path string) (*inode, error) {
	cur := fs.root
	for _, name := range fsapi.Components(path) {
		if !cur.dir {
			return nil, fsapi.ErrNotDir
		}
		cur.mu.RLock()
		childIno, ok := cur.children[name]
		cur.mu.RUnlock()
		if !ok {
			return nil, fsapi.ErrNotExist
		}
		next := fs.inode(childIno)
		if next == nil {
			return nil, fsapi.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

func (fs *FS) resolveParent(path string) (*inode, string, error) {
	dir, name := fsapi.SplitPath(path)
	if name == "" || !layout.ValidName(name) {
		if len(name) > layout.MaxName {
			return nil, "", fsapi.ErrNameTooLong
		}
		return nil, "", fsapi.ErrInval
	}
	d, err := fs.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if !d.dir {
		return nil, "", fsapi.ErrNotDir
	}
	return d, name, nil
}

func (t *Thread) createNode(path string, dir bool) error {
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.children[name]; exists {
		return fsapi.ErrExist
	}
	child := t.fs.newInode(dir)
	if err := t.fs.trustedOp(1, func() error { return nil }); err != nil {
		return err
	}
	d.children[name] = child.ino
	return nil
}

// Create implements fsapi.Thread.
func (t *Thread) Create(path string) error { return t.createNode(path, false) }

// Mkdir implements fsapi.Thread.
func (t *Thread) Mkdir(path string) error { return t.createNode(path, true) }

// Open implements fsapi.Thread: a pure-userspace lookup.
func (t *Thread) Open(path string) (fsapi.FD, error) {
	in, err := t.fs.resolve(path)
	if err != nil {
		return -1, err
	}
	for i, e := range t.fds {
		if e == nil {
			t.fds[i] = in
			return fsapi.FD(i), nil
		}
	}
	t.fds = append(t.fds, in)
	return fsapi.FD(len(t.fds) - 1), nil
}

// Close implements fsapi.Thread.
func (t *Thread) Close(fd fsapi.FD) error {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return fsapi.ErrBadFd
	}
	t.fds[fd] = nil
	return nil
}

func (t *Thread) fdInode(fd fsapi.FD) (*inode, error) {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return nil, fsapi.ErrBadFd
	}
	return t.fds[fd], nil
}

// ReadAt implements fsapi.Thread: direct userspace access, no syscall.
func (t *Thread) ReadAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	if uint64(off) >= in.size {
		return 0, nil
	}
	n := len(p)
	if uint64(off)+uint64(n) > in.size {
		n = int(in.size - uint64(off))
	}
	read := 0
	for read < n {
		bi := int((off + int64(read)) / layout.PageSize)
		bo := (off + int64(read)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > n-read {
			chunk = n - read
		}
		if bi < len(in.blocks) && in.blocks[bi] != 0 {
			t.fs.dev.Read(int64(in.blocks[bi]*layout.PageSize)+bo, p[read:read+chunk])
		} else {
			for i := read; i < read+chunk; i++ {
				p[i] = 0
			}
		}
		read += chunk
	}
	return n, nil
}

// WriteAt implements fsapi.Thread: direct userspace writes; only block
// allocation involves the kernel.
func (t *Thread) WriteAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	fs := t.fs
	in.mu.Lock()
	defer in.mu.Unlock()
	end := uint64(off) + uint64(len(p))
	needBlocks := layout.BlocksForSize(end)
	for len(in.blocks) < needBlocks {
		in.blocks = append(in.blocks, 0)
	}
	written := 0
	for written < len(p) {
		bi := int((off + int64(written)) / layout.PageSize)
		bo := (off + int64(written)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		if in.blocks[bi] == 0 {
			// Block grants go through the kernel.
			fs.syscall()
			b, err := fs.alloc.Alloc(t.cpu)
			if err != nil {
				return written, fsapi.ErrNoSpace
			}
			fs.dev.Zero(int64(b*layout.PageSize), layout.PageSize)
			in.blocks[bi] = b
		}
		base := int64(in.blocks[bi] * layout.PageSize)
		fs.dev.Write(base+bo, p[written:written+chunk])
		fs.dev.Flush(base+bo, int64(chunk))
		written += chunk
	}
	fs.dev.Fence()
	if end > in.size {
		in.size = end
	}
	in.mtime++
	return written, nil
}

// Fsync implements fsapi.Thread.
func (t *Thread) Fsync(fd fsapi.FD) error {
	_, err := t.fdInode(fd)
	return err
}

// Unlink implements fsapi.Thread.
func (t *Thread) Unlink(path string) error {
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child != nil && child.dir {
		return fsapi.ErrIsDir
	}
	if err := t.fs.trustedOp(1, func() error { return nil }); err != nil {
		return err
	}
	delete(d.children, name)
	if child != nil {
		t.fs.imu.Lock()
		delete(t.fs.inodes, childIno)
		t.fs.imu.Unlock()
		var pages []uint64
		for _, b := range child.blocks {
			if b != 0 {
				pages = append(pages, b)
			}
		}
		t.fs.alloc.Free(pages...)
	}
	return nil
}

// Rmdir implements fsapi.Thread.
func (t *Thread) Rmdir(path string) error {
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child == nil || !child.dir {
		return fsapi.ErrNotDir
	}
	child.mu.RLock()
	empty := len(child.children) == 0
	child.mu.RUnlock()
	if !empty {
		return fsapi.ErrNotEmpty
	}
	if err := t.fs.trustedOp(1, func() error { return nil }); err != nil {
		return err
	}
	delete(d.children, name)
	t.fs.imu.Lock()
	delete(t.fs.inodes, childIno)
	t.fs.imu.Unlock()
	return nil
}

// Rename implements fsapi.Thread.
func (t *Thread) Rename(oldPath, newPath string) error {
	od, oldName, err := t.fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	nd, newName, err := t.fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	first, second := od, nd
	if first.ino > second.ino {
		first, second = second, first
	}
	first.mu.Lock()
	if second != first {
		second.mu.Lock()
	}
	defer func() {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()
	childIno, ok := od.children[oldName]
	if !ok {
		return fsapi.ErrNotExist
	}
	if _, exists := nd.children[newName]; exists {
		return fsapi.ErrExist
	}
	if err := t.fs.trustedOp(2, func() error { return nil }); err != nil {
		return err
	}
	delete(od.children, oldName)
	nd.children[newName] = childIno
	return nil
}

// Stat implements fsapi.Thread: userspace read of the shared index.
func (t *Thread) Stat(path string) (fsapi.Stat, error) {
	in, err := t.fs.resolve(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	size := in.size
	if in.dir {
		size = uint64(len(in.children))
	}
	return fsapi.Stat{Ino: in.ino, Dir: in.dir, Size: size, Nlink: in.nlink, MTime: in.mtime}, nil
}

// Readdir implements fsapi.Thread.
func (t *Thread) Readdir(path string) ([]string, error) {
	in, err := t.fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if !in.dir {
		return nil, fsapi.ErrNotDir
	}
	in.mu.RLock()
	names := make([]string, 0, len(in.children))
	for n := range in.children {
		names = append(names, n)
	}
	in.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Truncate implements fsapi.Thread.
func (t *Thread) Truncate(path string, size uint64) error {
	in, err := t.fs.resolve(path)
	if err != nil {
		return err
	}
	if in.dir {
		return fsapi.ErrIsDir
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	keep := layout.BlocksForSize(size)
	var freed []uint64
	for bi := keep; bi < len(in.blocks); bi++ {
		if in.blocks[bi] != 0 {
			freed = append(freed, in.blocks[bi])
		}
	}
	if keep < len(in.blocks) {
		in.blocks = in.blocks[:keep]
	}
	in.size = size
	if err := t.fs.trustedOp(1, func() error { return nil }); err != nil {
		return err
	}
	t.fs.alloc.Free(freed...)
	return nil
}

// syscall charges and counts one kernel crossing.
func (fs *FS) syscall() {
	fs.syscalls.Add(1)
	fs.cost.Syscall()
}

// Telemetry returns the instance's counter set (syscalls plus the
// device's persistence counters).
func (fs *FS) Telemetry() *telemetry.Set { return fs.tel }
