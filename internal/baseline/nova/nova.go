// Package nova implements a NOVA-like kernel file system baseline: a
// log-structured PM file system with one operation log per inode,
// copy-on-write data pages, and DRAM indexes rebuilt from the logs.
// Every operation crosses a simulated system-call boundary (the
// configured syscall cost) and takes per-inode locks, so private-
// directory workloads scale while shared-directory workloads serialize
// on the directory inode — the behaviour the Trio paper's figures show
// for NOVA.
//
// The implementation follows NOVA's persistence discipline (log entry
// persisted and fenced before the tail pointer advances; data pages
// persisted before the write entry that references them) but, as a
// performance baseline, does not implement NOVA's recovery scan.
package nova

import (
	"sort"
	"sync"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
)

// log entry types
const (
	leCreate  = uint8(1)
	leLink    = uint8(2) // dentry add (used by rename)
	leUnlink  = uint8(3)
	leWrite   = uint8(4)
	leSetAttr = uint8(5)
)

// Log entry layout (fixed 64 bytes, one cache line, as NOVA does):
//
//	0   1   type
//	1   1   nameLen
//	2   2   (pad)
//	4   4   csum/valid marker
//	8   8   ino (target)
//	16  8   off
//	24  8   len / size
//	32  8   firstPage
//	40  24  name prefix (longer names spill into a side record)
const leSize = 64

// FS is the mounted NOVA-like file system, shared by all threads.
type FS struct {
	dev   *pmem.Device
	cost  *costmodel.Model
	alloc *pmalloc.Allocator

	tel      *telemetry.Set
	syscalls *telemetry.Counter

	imu     sync.Mutex
	inodes  map[uint64]*inode
	nextIno uint64

	root *inode
}

type inode struct {
	mu  sync.RWMutex
	ino uint64
	dir bool
	// directory state
	children map[string]uint64
	// file state
	blocks []uint64
	size   uint64
	mtime  uint64
	nlink  uint16
	// per-inode log
	logHead uint64
	logPage uint64
	logOff  int
}

// New formats a NOVA-like file system over a fresh device.
func New(size int64, cost *costmodel.Model) (*FS, error) {
	dev := pmem.New(size, cost)
	g := layout.Geometry{
		PageCount: uint64(dev.Size()) / layout.PageSize,
		DataStart: 1,
		InodeCap:  1, // unused; the allocator only needs the page range
	}
	fs := &FS{
		dev:     dev,
		cost:    cost,
		alloc:   pmalloc.New(g),
		inodes:  make(map[uint64]*inode),
		nextIno: 1,
	}
	fs.tel = telemetry.NewSet()
	dev.RegisterTelemetry(fs.tel)
	//arcklint:allow counterreg every system meters "syscalls" in its own private Set so bench tooling reads one cross-system key
	fs.syscalls = fs.tel.Counter("syscalls")
	root := fs.newInode(true)
	fs.root = root
	return fs, nil
}

// Name implements fsapi.FS.
func (fs *FS) Name() string { return "nova" }

func (fs *FS) newInode(dir bool) *inode {
	fs.imu.Lock()
	ino := fs.nextIno
	fs.nextIno++
	in := &inode{ino: ino, dir: dir, nlink: 1}
	if dir {
		in.children = make(map[string]uint64)
		in.nlink = 2
	}
	fs.inodes[ino] = in
	fs.imu.Unlock()
	return in
}

func (fs *FS) inode(ino uint64) *inode {
	fs.imu.Lock()
	in := fs.inodes[ino]
	fs.imu.Unlock()
	return in
}

func (fs *FS) dropInode(in *inode) {
	fs.imu.Lock()
	delete(fs.inodes, in.ino)
	fs.imu.Unlock()
	if len(in.blocks) > 0 {
		var pages []uint64
		for _, b := range in.blocks {
			if b != 0 {
				pages = append(pages, b)
			}
		}
		fs.alloc.Free(pages...)
	}
	if in.logHead != 0 {
		var pages []uint64
		for p := in.logHead; p != 0; p = layout.NextPage(fs.dev, p) {
			pages = append(pages, p)
		}
		fs.alloc.Free(pages...)
	}
}

// appendLog persists one log entry to in's log (caller holds in.mu). The
// entry is written and flushed, then fenced, then the DRAM tail advances —
// NOVA's commit protocol.
func (fs *FS) appendLog(cpu int, in *inode, typ uint8, target uint64, off, length, firstPage uint64, name string) error {
	if in.logPage == 0 || in.logOff+leSize > layout.LogDataSize {
		p, err := fs.alloc.Alloc(cpu)
		if err != nil {
			return fsapi.ErrNoSpace
		}
		// NOVA keeps pre-zeroed log pages on free lists; charging a
		// serial full-page flush here would overstate its create cost
		// (clwb pipelines on real hardware), so only the page is zeroed.
		layout.ZeroPage(fs.dev, p)
		if in.logPage != 0 {
			layout.SetNextPage(fs.dev, in.logPage, p)
			fs.dev.Persist(int64(in.logPage*layout.PageSize)+layout.NextPtrOff, 8)
		} else {
			in.logHead = p
		}
		in.logPage, in.logOff = p, 0
	}
	base := int64(in.logPage*layout.PageSize) + int64(in.logOff)
	fs.dev.Store8(base+0, typ)
	n := len(name)
	if n > 24 {
		n = 24
	}
	fs.dev.Store8(base+1, uint8(n))
	fs.dev.Store32(base+4, 0xC0FFEE)
	fs.dev.Store64(base+8, target)
	fs.dev.Store64(base+16, off)
	fs.dev.Store64(base+24, length)
	fs.dev.Store64(base+32, firstPage)
	if n > 0 {
		fs.dev.Write(base+40, []byte(name[:n]))
	}
	fs.dev.Persist(base, leSize)
	in.logOff += leSize
	return nil
}

// Thread implements fsapi.Thread. NOVA is a kernel file system: the
// thread handle only carries the CPU and fd table; all state is shared.
type Thread struct {
	fs  *FS
	cpu int
	fds []*inode
}

// NewThread implements fsapi.FS.
func (fs *FS) NewThread(cpu int) fsapi.Thread {
	return &Thread{fs: fs, cpu: cpu}
}

// resolve walks path to its inode (read-locking each directory briefly).
func (t *Thread) resolve(path string) (*inode, error) {
	t.fs.syscall()
	return t.fs.resolveNoSyscall(path)
}

func (fs *FS) resolveNoSyscall(path string) (*inode, error) {
	cur := fs.root
	for _, name := range fsapi.Components(path) {
		if !cur.dir {
			return nil, fsapi.ErrNotDir
		}
		cur.mu.RLock()
		childIno, ok := cur.children[name]
		cur.mu.RUnlock()
		if !ok {
			return nil, fsapi.ErrNotExist
		}
		next := fs.inode(childIno)
		if next == nil {
			return nil, fsapi.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

func (fs *FS) resolveParent(path string) (*inode, string, error) {
	dir, name := fsapi.SplitPath(path)
	if name == "" || !layout.ValidName(name) {
		if len(name) > layout.MaxName {
			return nil, "", fsapi.ErrNameTooLong
		}
		return nil, "", fsapi.ErrInval
	}
	d, err := fs.resolveNoSyscall(dir)
	if err != nil {
		return nil, "", err
	}
	if !d.dir {
		return nil, "", fsapi.ErrNotDir
	}
	return d, name, nil
}

func (t *Thread) createNode(path string, dir bool) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.children[name]; exists {
		return fsapi.ErrExist
	}
	child := t.fs.newInode(dir)
	// NOVA: append a create entry to the child's log and a link entry to
	// the directory's log.
	if err := t.fs.appendLog(t.cpu, child, leCreate, d.ino, 0, 0, 0, name); err != nil {
		t.fs.dropInode(child)
		return err
	}
	if err := t.fs.appendLog(t.cpu, d, leLink, child.ino, 0, 0, 0, name); err != nil {
		t.fs.dropInode(child)
		return err
	}
	d.children[name] = child.ino
	return nil
}

// Create implements fsapi.Thread.
func (t *Thread) Create(path string) error { return t.createNode(path, false) }

// Mkdir implements fsapi.Thread.
func (t *Thread) Mkdir(path string) error { return t.createNode(path, true) }

// Open implements fsapi.Thread.
func (t *Thread) Open(path string) (fsapi.FD, error) {
	in, err := t.resolve(path)
	if err != nil {
		return -1, err
	}
	for i, e := range t.fds {
		if e == nil {
			t.fds[i] = in
			return fsapi.FD(i), nil
		}
	}
	t.fds = append(t.fds, in)
	return fsapi.FD(len(t.fds) - 1), nil
}

// Close implements fsapi.Thread.
func (t *Thread) Close(fd fsapi.FD) error {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return fsapi.ErrBadFd
	}
	t.fds[fd] = nil
	return nil
}

func (t *Thread) fdInode(fd fsapi.FD) (*inode, error) {
	if int(fd) < 0 || int(fd) >= len(t.fds) || t.fds[fd] == nil {
		return nil, fsapi.ErrBadFd
	}
	return t.fds[fd], nil
}

// ReadAt implements fsapi.Thread.
func (t *Thread) ReadAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	t.fs.syscall()
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	if uint64(off) >= in.size {
		return 0, nil
	}
	n := len(p)
	if uint64(off)+uint64(n) > in.size {
		n = int(in.size - uint64(off))
	}
	read := 0
	for read < n {
		bi := int((off + int64(read)) / layout.PageSize)
		bo := (off + int64(read)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > n-read {
			chunk = n - read
		}
		if bi < len(in.blocks) && in.blocks[bi] != 0 {
			t.fs.dev.Read(int64(in.blocks[bi]*layout.PageSize)+bo, p[read:read+chunk])
		} else {
			for i := read; i < read+chunk; i++ {
				p[i] = 0
			}
		}
		read += chunk
	}
	return n, nil
}

// WriteAt implements fsapi.Thread. NOVA writes data copy-on-write: new
// pages are allocated and persisted, then a write log entry commits them
// and the DRAM block index swaps in the new pages.
func (t *Thread) WriteAt(fd fsapi.FD, p []byte, off int64) (int, error) {
	t.fs.syscall()
	in, err := t.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if in.dir {
		return 0, fsapi.ErrIsDir
	}
	if off < 0 {
		return 0, fsapi.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	fs := t.fs
	in.mu.Lock()
	defer in.mu.Unlock()

	end := uint64(off) + uint64(len(p))
	needBlocks := layout.BlocksForSize(end)
	for len(in.blocks) < needBlocks {
		in.blocks = append(in.blocks, 0)
	}
	written := 0
	var firstNew uint64
	var old []uint64
	for written < len(p) {
		bi := int((off + int64(written)) / layout.PageSize)
		bo := (off + int64(written)) % layout.PageSize
		chunk := layout.PageSize - int(bo)
		if chunk > len(p)-written {
			chunk = len(p) - written
		}
		np, err := fs.alloc.Alloc(t.cpu)
		if err != nil {
			return written, fsapi.ErrNoSpace
		}
		if firstNew == 0 {
			firstNew = np
		}
		base := int64(np * layout.PageSize)
		if chunk != layout.PageSize {
			// COW: preserve the rest of the page from the old block.
			if ob := in.blocks[bi]; ob != 0 {
				fs.dev.Write(base, fs.dev.Slice(int64(ob*layout.PageSize), layout.PageSize))
			} else {
				fs.dev.Zero(base, layout.PageSize)
			}
		}
		fs.dev.Write(base+bo, p[written:written+chunk])
		fs.dev.Flush(base, layout.PageSize)
		if ob := in.blocks[bi]; ob != 0 {
			old = append(old, ob)
		}
		in.blocks[bi] = np
		written += chunk
	}
	// Data persisted before the commit entry.
	fs.dev.Fence()
	if end > in.size {
		in.size = end
	}
	if err := fs.appendLog(t.cpu, in, leWrite, in.ino, uint64(off), uint64(len(p)), firstNew, ""); err != nil {
		return written, err
	}
	in.mtime++
	fs.alloc.Free(old...)
	return written, nil
}

// Fsync implements fsapi.Thread (NOVA persists synchronously too).
func (t *Thread) Fsync(fd fsapi.FD) error {
	t.fs.syscall()
	_, err := t.fdInode(fd)
	return err
}

// Unlink implements fsapi.Thread.
func (t *Thread) Unlink(path string) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child != nil && child.dir {
		return fsapi.ErrIsDir
	}
	if err := t.fs.appendLog(t.cpu, d, leUnlink, childIno, 0, 0, 0, name); err != nil {
		return err
	}
	delete(d.children, name)
	if child != nil {
		t.fs.dropInode(child)
	}
	return nil
}

// Rmdir implements fsapi.Thread.
func (t *Thread) Rmdir(path string) error {
	t.fs.syscall()
	d, name, err := t.fs.resolveParent(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	childIno, ok := d.children[name]
	if !ok {
		return fsapi.ErrNotExist
	}
	child := t.fs.inode(childIno)
	if child == nil || !child.dir {
		return fsapi.ErrNotDir
	}
	child.mu.RLock()
	empty := len(child.children) == 0
	child.mu.RUnlock()
	if !empty {
		return fsapi.ErrNotEmpty
	}
	if err := t.fs.appendLog(t.cpu, d, leUnlink, childIno, 0, 0, 0, name); err != nil {
		return err
	}
	delete(d.children, name)
	t.fs.dropInode(child)
	return nil
}

// Rename implements fsapi.Thread. NOVA journals cross-directory renames;
// here both directory logs get entries under ordered locks.
func (t *Thread) Rename(oldPath, newPath string) error {
	t.fs.syscall()
	od, oldName, err := t.fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	nd, newName, err := t.fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	first, second := od, nd
	if first.ino > second.ino {
		first, second = second, first
	}
	first.mu.Lock()
	if second != first {
		second.mu.Lock()
	}
	defer func() {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()
	childIno, ok := od.children[oldName]
	if !ok {
		return fsapi.ErrNotExist
	}
	if _, exists := nd.children[newName]; exists {
		return fsapi.ErrExist
	}
	if err := t.fs.appendLog(t.cpu, nd, leLink, childIno, 0, 0, 0, newName); err != nil {
		return err
	}
	if err := t.fs.appendLog(t.cpu, od, leUnlink, childIno, 0, 0, 0, oldName); err != nil {
		return err
	}
	delete(od.children, oldName)
	nd.children[newName] = childIno
	return nil
}

// Stat implements fsapi.Thread.
func (t *Thread) Stat(path string) (fsapi.Stat, error) {
	in, err := t.resolve(path)
	if err != nil {
		return fsapi.Stat{}, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	size := in.size
	if in.dir {
		size = uint64(len(in.children))
	}
	return fsapi.Stat{Ino: in.ino, Dir: in.dir, Size: size, Nlink: in.nlink, MTime: in.mtime}, nil
}

// Readdir implements fsapi.Thread.
func (t *Thread) Readdir(path string) ([]string, error) {
	in, err := t.resolve(path)
	if err != nil {
		return nil, err
	}
	if !in.dir {
		return nil, fsapi.ErrNotDir
	}
	in.mu.RLock()
	names := make([]string, 0, len(in.children))
	for n := range in.children {
		names = append(names, n)
	}
	in.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Truncate implements fsapi.Thread.
func (t *Thread) Truncate(path string, size uint64) error {
	t.fs.syscall()
	in, err := t.fs.resolveNoSyscall(path)
	if err != nil {
		return err
	}
	if in.dir {
		return fsapi.ErrIsDir
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	keep := layout.BlocksForSize(size)
	var freed []uint64
	for bi := keep; bi < len(in.blocks); bi++ {
		if in.blocks[bi] != 0 {
			freed = append(freed, in.blocks[bi])
		}
	}
	if keep < len(in.blocks) {
		in.blocks = in.blocks[:keep]
	}
	in.size = size
	if err := t.fs.appendLog(t.cpu, in, leSetAttr, in.ino, 0, size, 0, ""); err != nil {
		return err
	}
	t.fs.alloc.Free(freed...)
	return nil
}

// syscall charges and counts one kernel crossing.
func (fs *FS) syscall() {
	fs.syscalls.Add(1)
	fs.cost.Syscall()
}

// Telemetry returns the instance's counter set (syscalls plus the
// device's persistence counters).
func (fs *FS) Telemetry() *telemetry.Set { return fs.tel }
