package baseline_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"arckfs/internal/baseline/kucofs"
	"arckfs/internal/baseline/nova"
	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/costmodel"
)

// The three baselines are architectural archetypes; these tests pin the
// properties that make them meaningful comparison points.

// TestPmfsGlobalJournalSerializes: PMFS-like metadata operations
// serialize on one journal even in disjoint directories, unlike the
// NOVA-like per-inode design. We assert the behavioural contract (both
// complete correctly under heavy cross-directory churn) and that the
// journal never corrupts counts.
func TestPmfsGlobalJournalSerializes(t *testing.T) {
	fs, err := pmfs.New(64<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	setup := fs.NewThread(0)
	for d := 0; d < 4; d++ {
		if err := setup.Mkdir(fmt.Sprintf("/d%d", d)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fs.NewThread(g)
			for i := 0; i < 200; i++ {
				if err := w.Create(fmt.Sprintf("/d%d/f%d", g, i)); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
	for d := 0; d < 4; d++ {
		names, err := setup.Readdir(fmt.Sprintf("/d%d", d))
		if err != nil || len(names) != 200 {
			t.Fatalf("/d%d has %d entries, %v", d, len(names), err)
		}
	}
}

// TestNovaCOWPreservesOldDataOnPartialWrite: NOVA's copy-on-write must
// carry the untouched part of a page into the new block.
func TestNovaCOWPreservesOldDataOnPartialWrite(t *testing.T) {
	fs, err := nova.New(32<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := fs.NewThread(0)
	w.Create("/f")
	fd, _ := w.Open("/f")
	base := make([]byte, 8192)
	for i := range base {
		base[i] = 0x11
	}
	w.WriteAt(fd, base, 0)
	// Partial overwrite in the middle of page 0.
	w.WriteAt(fd, []byte{0x22, 0x22}, 100)
	got := make([]byte, 8192)
	w.ReadAt(fd, got, 0)
	if got[99] != 0x11 || got[100] != 0x22 || got[101] != 0x22 || got[102] != 0x11 {
		t.Fatalf("COW tore the page: %v", got[98:104])
	}
	if got[8000] != 0x11 {
		t.Fatal("page 1 lost")
	}
}

// TestKucofsDataPathAvoidsSyscalls: reads and writes to allocated blocks
// run without kernel crossings, while metadata operations pay them —
// the KucoFS split. Measured through the cost model (a syscall charge is
// ~1 ms here, so the difference is unmistakable).
func TestKucofsDataPathAvoidsSyscalls(t *testing.T) {
	cost := &costmodel.Model{SyscallNS: 1_000_000} // 1 ms per crossing
	fs, err := kucofs.New(32<<20, cost)
	if err != nil {
		t.Fatal(err)
	}
	w := fs.NewThread(0)
	start := time.Now()
	if err := w.Create("/f"); err != nil { // 1 metadata op => ≥1 ms
		t.Fatal(err)
	}
	createTime := time.Since(start)
	if createTime < 500*time.Microsecond {
		t.Fatalf("create did not pay the trusted-thread crossing: %v", createTime)
	}
	fd, _ := w.Open("/f")
	buf := make([]byte, 1024)
	if _, err := w.WriteAt(fd, buf, 0); err != nil { // first write allocates: 1 syscall
		t.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < 50; i++ { // steady-state data ops: no syscalls
		if _, err := w.WriteAt(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := w.ReadAt(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	dataTime := time.Since(start)
	if dataTime > createTime {
		t.Fatalf("100 data ops (%v) cost more than one metadata op (%v): data path is not direct", dataTime, createTime)
	}
}

// TestNovaRenameLockOrdering: cross-directory renames in both directions
// concurrently must not deadlock (ordered inode locking).
func TestNovaRenameLockOrdering(t *testing.T) {
	fs, err := nova.New(32<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := fs.NewThread(0)
	w.Mkdir("/a")
	w.Mkdir("/b")
	w.Create("/a/x")
	w.Create("/b/y")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		t1 := fs.NewThread(1)
		for i := 0; i < 100; i++ {
			t1.Rename("/a/x", "/b/x")
			t1.Rename("/b/x", "/a/x")
		}
	}()
	go func() {
		defer wg.Done()
		t2 := fs.NewThread(2)
		for i := 0; i < 100; i++ {
			t2.Rename("/b/y", "/a/y")
			t2.Rename("/a/y", "/b/y")
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cross-directory renames deadlocked")
	}
}
