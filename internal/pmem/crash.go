package pmem

import (
	"math/rand"
	"sort"

	"arckfs/internal/costmodel"
)

// CrashPolicy decides, for each cache line with unpersisted store history,
// how many leading versions additionally reach the persistence domain at a
// simulated power failure. It receives the line's byte offset and the
// number of unpersisted versions, and returns a value in [0, versions].
//
// The per-line prefix rule encodes that stores to a single cache line are
// ordered (a later store can never persist without the earlier ones),
// while different lines are entirely unordered absent a fence.
//
// Batched persists (see Batch) need no special handling here, and that is
// deliberate: a line whose flush is queued in a write-combining Batch but
// not yet written back, a line whose clwb was issued but not fenced, and
// a line written with non-temporal stores before its trailing fence are
// all in the same crash state — dirty, reorderable against every other
// line, free to persist any prefix of their store history. Only a fence
// (Batch.Barrier) removes lines from this enumeration, which is why the
// batcher preserves exactly the fence placement of the unbatched code.
type CrashPolicy func(lineOff int64, versions int) int

// CrashDropAll persists nothing beyond what was fenced — the most
// destructive crash.
func CrashDropAll(int64, int) int { return 0 }

// CrashPersistAll persists every outstanding store — the most permissive
// crash (equivalent to a clean shutdown of the volatile image).
func CrashPersistAll(_ int64, versions int) int { return versions }

// CrashRandom returns a policy choosing a uniformly random prefix per
// line, deterministically from seed.
func CrashRandom(seed int64) CrashPolicy {
	rng := rand.New(rand.NewSource(seed))
	return func(_ int64, versions int) int {
		return rng.Intn(versions + 1)
	}
}

// CrashKeepLines returns a policy that fully persists exactly the lines
// whose offsets are listed and drops all others — the adversarial policy
// used to manifest ordering bugs deterministically.
func CrashKeepLines(lineOffs ...int64) CrashPolicy {
	keep := make(map[int64]bool, len(lineOffs))
	for _, o := range lineOffs {
		keep[o/LineSize*LineSize] = true
	}
	return func(lineOff int64, versions int) int {
		if keep[lineOff] {
			return versions
		}
		return 0
	}
}

// CrashImage materializes the post-crash durable image under policy.
// Tracking must be enabled. The device itself is not modified, so a test
// can derive many crash states from one execution.
func (d *Device) CrashImage(policy CrashPolicy) []byte {
	if !d.tracking.Load() {
		panic("pmem: CrashImage requires tracking")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	img := make([]byte, len(d.persistent))
	copy(img, d.persistent)
	// Visit lines in address order so stateful policies (CrashRandom) are
	// deterministic across runs.
	order := make([]int64, 0, len(d.lines))
	for l := range d.lines {
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	persisted := make([]int64, 0, len(order))
	for _, l := range order {
		lt := d.lines[l]
		k := policy(l*LineSize, len(lt.versions))
		if k < 0 {
			k = 0
		}
		if k > len(lt.versions) {
			k = len(lt.versions)
		}
		if k > 0 {
			copy(img[l*LineSize:], lt.versions[k-1])
			persisted = append(persisted, l*LineSize)
		}
	}
	d.applyTear(img, persisted)
	return img
}

// LineState describes one cache line with unpersisted store history: a
// crash may persist any prefix of its Versions tracked store batches (0
// keeps the line's last fenced content). The per-line state spaces are
// independent, so the crash-state space at an instant is the product of
// (Versions+1) over all dirty lines — the quantity a bounded model
// checker enumerates or samples.
type LineState struct {
	// Off is the line-aligned device offset.
	Off int64
	// Versions is the number of unpersisted store batches recorded for
	// the line since its content was last fenced.
	Versions int
}

// DirtyLineStates returns the state of every cache line with unpersisted
// store history, sorted by offset. It is the enumeration-ready
// counterpart of DirtyLines, for crash-state model checking.
func (d *Device) DirtyLineStates() []LineState {
	d.mu.Lock()
	defer d.mu.Unlock()
	states := make([]LineState, 0, len(d.lines))
	for l, lt := range d.lines {
		states = append(states, LineState{Off: l * LineSize, Versions: len(lt.versions)})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Off < states[j].Off })
	return states
}

// DirtyLines returns the offsets of all cache lines with unpersisted
// store history, sorted ascending. Useful for exhaustive small-scope
// crash enumeration in tests: enumerators routinely truncate this list,
// so its order must not depend on Go map iteration or the sampled
// crash-state set varies run to run.
func (d *Device) DirtyLines() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	offs := make([]int64, 0, len(d.lines))
	for l := range d.lines {
		offs = append(offs, l*LineSize)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// Restore creates a fresh untracked device whose volatile image is img —
// the "reboot" following a crash. The new device shares the cost model.
func Restore(img []byte, cost *costmodel.Model) *Device {
	d := New(int64(len(img)), cost)
	copy(d.buf, img)
	return d
}
