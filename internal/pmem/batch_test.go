package pmem

import (
	"bytes"
	"testing"
)

func testDev() *Device { return New(16*PageSize, nil) }

// Three flush requests for the same line must collapse to one clwb at the
// barrier, counted as two absorbed requests.
func TestBatchDedupesSameLine(t *testing.T) {
	d := testDev()
	b := d.NewBatch()
	d.Store64(0, 1)
	b.Flush(0, 8)
	d.Store64(8, 2)
	b.Flush(8, 8)
	d.Store64(16, 3)
	b.Flush(16, 8)
	if got := d.Stats.Flushes.Load(); got != 0 {
		t.Fatalf("flushes before barrier = %d, want 0", got)
	}
	if got := d.Stats.BatchDedup.Load(); got != 2 {
		t.Fatalf("dedup count = %d, want 2", got)
	}
	b.Barrier()
	if got := d.Stats.Flushes.Load(); got != 1 {
		t.Fatalf("flushes after barrier = %d, want 1", got)
	}
	if got := d.Stats.Fences.Load(); got != 1 {
		t.Fatalf("fences = %d, want 1", got)
	}
	if b.Pending() != 0 {
		t.Fatalf("queue not empty after barrier: %d lines", b.Pending())
	}
}

// Eight adjacent 8-byte entries spanning one line coalesce to a single
// flush; entries across two lines to two.
func TestBatchCoalescesAdjacentEntries(t *testing.T) {
	d := testDev()
	b := d.NewBatch()
	for i := int64(0); i < 8; i++ {
		d.Store64(i*8, uint64(i))
		b.Flush(i*8, 8)
	}
	b.Barrier()
	if got := d.Stats.Flushes.Load(); got != 1 {
		t.Fatalf("one-line entry loop: flushes = %d, want 1", got)
	}
	for i := int64(0); i < 16; i++ {
		d.Store64(256+i*8, uint64(i))
		b.Flush(256+i*8, 8)
	}
	b.Barrier()
	if got := d.Stats.Flushes.Load() - 1; got != 2 {
		t.Fatalf("two-line entry loop: flushes = %d, want 2", got)
	}
}

// Content queued before a Barrier is durable after it; content queued
// after is a separate epoch and stays volatile until its own Barrier.
func TestBatchEpochIsolation(t *testing.T) {
	d := testDev()
	d.EnableTracking()
	b := d.NewBatch()

	d.Store64(0, 0xb0d7)
	b.Flush(0, 8)
	b.Barrier()
	d.Store64(128, 0x3a42) // next epoch, queued but unfenced
	b.Flush(128, 8)

	img := d.CrashImage(CrashDropAll)
	if v := le64(img[0:]); v != 0xb0d7 {
		t.Fatalf("fenced epoch lost: got %#x", v)
	}
	if v := le64(img[128:]); v != 0 {
		t.Fatalf("unfenced epoch persisted under drop-all: got %#x", v)
	}
	// The unfenced line is still free to persist — it must appear in the
	// dirty set.
	dirty := d.DirtyLines()
	found := false
	for _, l := range dirty {
		if l == 128 {
			found = true
		}
	}
	if !found {
		t.Fatalf("queued-but-unfenced line missing from DirtyLines: %v", dirty)
	}
}

// Non-temporal writes are durable at the next fence with zero flushes,
// and are counted per line in NTStores.
func TestWriteNTDurableAtFence(t *testing.T) {
	d := testDev()
	d.EnableTracking()
	b := d.NewBatch()

	p := make([]byte, 2*LineSize)
	for i := range p {
		p[i] = byte(i)
	}
	b.WriteStream(512, p)
	if got := d.Stats.NTStores.Load(); got != 2 {
		t.Fatalf("ntstores = %d, want 2", got)
	}
	// Before the fence the lines are dirty: drop-all loses them.
	img := d.CrashImage(CrashDropAll)
	if !bytes.Equal(img[512:512+2*LineSize], make([]byte, 2*LineSize)) {
		t.Fatal("streaming store persisted before fence under drop-all")
	}
	b.Barrier()
	img = d.CrashImage(CrashDropAll)
	if !bytes.Equal(img[512:512+2*LineSize], p) {
		t.Fatal("streaming store not durable after fence")
	}
	if got := d.Stats.Flushes.Load(); got != 0 {
		t.Fatalf("streaming store issued %d flushes, want 0", got)
	}
}

func TestWriteNTAlignmentPanics(t *testing.T) {
	d := testDev()
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned WriteNT did not panic")
		}
	}()
	d.WriteNT(8, make([]byte, LineSize))
}

// Eager mode must reproduce the unbatched schedule exactly: flushes at
// the call site, fence-only barriers, no streaming stores.
func TestEagerBatchPassThrough(t *testing.T) {
	d := testDev()
	b := d.NewEagerBatch()
	if !b.Eager() {
		t.Fatal("eager batch not eager")
	}
	d.Store64(0, 1)
	b.Flush(0, 8)
	if got := d.Stats.Flushes.Load(); got != 1 {
		t.Fatalf("eager flush deferred: %d flushes", got)
	}
	b.WriteStream(64, make([]byte, LineSize))
	if got := d.Stats.NTStores.Load(); got != 0 {
		t.Fatalf("eager WriteStream used %d streaming stores", got)
	}
	if got := d.Stats.Flushes.Load(); got != 2 {
		t.Fatalf("eager WriteStream flushes = %d, want 2", got)
	}
	b.ZeroStream(128, LineSize)
	if got := d.Stats.Flushes.Load(); got != 3 {
		t.Fatalf("eager ZeroStream flushes = %d, want 3", got)
	}
	b.Barrier()
	if got := d.Stats.Fences.Load(); got != 1 {
		t.Fatalf("fences = %d, want 1", got)
	}
	if b.Pending() != 0 {
		t.Fatal("eager batch queued lines")
	}
}

// runProtocol executes the same two-epoch commit protocol (body lines,
// barrier, marker line, barrier) through a batch and returns every
// all-or-nothing crash image over the dirty lines captured at the hook
// point between the two epochs.
func runProtocol(t *testing.T, eager bool) (atHook [][]byte, final []byte) {
	t.Helper()
	d := testDev()
	d.EnableTracking()
	var b *Batch
	if eager {
		b = d.NewEagerBatch()
	} else {
		b = d.NewBatch()
	}
	// Body: two lines plus a streamed record.
	d.Store64(0, 0x0123)
	b.Flush(0, 8)
	d.Store64(64, 0x4567)
	b.Flush(64, 8)
	rec := make([]byte, LineSize)
	rec[0] = 0xaa
	b.WriteStream(256, rec)
	b.Barrier()
	// Marker epoch.
	d.Store16(128, 1)
	b.Flush(128, 2)
	// Hook point: marker queued/flushed, not fenced — enumerate crashes.
	dirty := d.DirtyLines()
	for mask := 0; mask < 1<<len(dirty); mask++ {
		var keep []int64
		for i, l := range dirty {
			if mask&(1<<i) != 0 {
				keep = append(keep, l)
			}
		}
		atHook = append(atHook, d.CrashImage(CrashKeepLines(keep...)))
	}
	b.Barrier()
	return atHook, d.CrashImage(CrashDropAll)
}

// The batched and eager protocols must admit exactly the same set of
// crash states — batching changes how many clwbs are issued, never what a
// crash can expose.
func TestBatchedCrashStatesMatchEager(t *testing.T) {
	batched, bfinal := runProtocol(t, false)
	eager, efinal := runProtocol(t, true)
	if !bytes.Equal(bfinal, efinal) {
		t.Fatal("final durable images differ between batched and eager")
	}
	key := func(img []byte) string { return string(img[:512]) }
	bset := map[string]bool{}
	for _, img := range batched {
		bset[key(img)] = true
	}
	eset := map[string]bool{}
	for _, img := range eager {
		eset[key(img)] = true
	}
	if len(bset) != len(eset) {
		t.Fatalf("crash-state count differs: batched %d, eager %d", len(bset), len(eset))
	}
	for k := range bset {
		if !eset[k] {
			t.Fatal("batched protocol admits a crash state eager does not")
		}
	}
	// In both modes the body must be durable in every state (it was
	// fenced before the marker was queued).
	for _, img := range batched {
		if le64(img[0:]) != 0x0123 || le64(img[64:]) != 0x4567 || img[256] != 0xaa {
			t.Fatal("crash state lost fenced body content")
		}
	}
}

func le64(p []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(p[i])
	}
	return v
}
