package pmem

import "sync/atomic"

// Whitebox killpoints.
//
// A killpoint is a named code site at which a crash-loop orchestrator
// (cmd/arckcrash) can cut an execution deterministically: the site calls
// Killpoint("name") inline, and a harness arms one (site, hit-count)
// pair per run. When the armed site's Nth hit occurs, the registered
// function runs on the hitting goroutine — typically capturing a crash
// image and unwinding via panic, which the orchestrator recovers.
//
// The unarmed cost is one atomic pointer load and a nil check, so the
// markers are safe on persist hot paths (commit-marker stores, batch
// drains) and inside recovery passes. Exactly one killpoint is armed at
// a time; arming is not synchronized with concurrent hits, so harnesses
// arm before starting the workload and disarm after unwinding.
//
// Registered sites (callers keep this list current; cmd/arckcrash
// -killpoints prints it):
//
//	libfs.create.marker  — after a dentry commit-marker store, before
//	                       the operation's final persist barrier
//	pmem.batch.barrier   — entry of Batch.Barrier, before the queue
//	                       drains and the fence issues
//	pmem.batch.drain     — entry of Batch.Drain with lines queued
//	kernel.recover.pass  — end of each kernel.Mount recovery pass
type killArm struct {
	site string
	left atomic.Int64
	fn   func(site string)
}

var armedKill atomic.Pointer[killArm]

// KillpointSites lists every registered Killpoint call site.
func KillpointSites() []string {
	return []string{
		"libfs.create.marker",
		"pmem.batch.barrier",
		"pmem.batch.drain",
		"kernel.recover.pass",
	}
}

// Killpoint marks a named kill site. When the site is armed and this is
// its configured hit, the armed function runs synchronously on the
// calling goroutine.
func Killpoint(site string) {
	a := armedKill.Load()
	if a == nil || a.site != site {
		return
	}
	if a.left.Add(-1) == 0 {
		a.fn(site)
	}
}

// ArmKillpoint arms site to fire fn on its hit-th hit (1 = next hit).
// Any previously armed killpoint is replaced.
func ArmKillpoint(site string, hit int, fn func(site string)) {
	if hit < 1 {
		hit = 1
	}
	a := &killArm{site: site, fn: fn}
	a.left.Store(int64(hit))
	armedKill.Store(a)
}

// DisarmKillpoint removes the armed killpoint, if any.
func DisarmKillpoint() { armedKill.Store(nil) }
