package pmem

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Device lie modes.
//
// The Linux-PM issue study (Gatla et al.) found that a large fraction of
// real persistent-memory bugs involve hardware that misbehaves rather
// than software that orders its persists wrongly: a write-back that is
// silently dropped on its way to the persistence domain, or a cache line
// that tears mid-write at a power failure. Neither state is reachable
// under the honest persistency model pmem simulates by default — a
// fenced line is durable, and a line persists only whole-snapshot
// prefixes of its store history — so crash-state enumeration over a
// truthful device can never produce them.
//
// A FaultPlan makes the device lie, seeded and deterministic:
//
//   - FaultDropFlush: a clwb (Device.Flush) or a streaming store's
//     write-combining drain (WriteNT/ZeroNT) reports success, but the
//     selected line's write-back never initiates. The software proceeds
//     believing the line durable; at a crash the line may still persist
//     nothing. Counted in Stats.LiedFlushes.
//   - FaultDropFence: a Fence reports success, but the epoch's queued
//     write-backs are dropped — every flushed-but-unpersisted line
//     reverts to dirty, its clwb gone. Counted in Stats.LiedFences.
//   - FaultTearLine: at crash-image materialization, one persisting line
//     tears at a chosen byte split — the leading split bytes carry the
//     new content, the rest the line's previous durable content. This
//     breaks the whole-snapshot prefix rule: a commit marker in the
//     middle of a line can persist while name bytes after it in the
//     same line do not. Counted in Stats.TornLines.
//
// Lies change nothing about the volatile image (reads are unaffected),
// only which crash states become reachable — which is exactly what makes
// them invisible to benchmarks and visible to crashmc and arckcrash.
type FaultMode uint32

const (
	// FaultDropFlush silently drops selected line write-backs.
	FaultDropFlush FaultMode = 1 << iota
	// FaultDropFence makes selected fences lie: the epoch's queued
	// write-backs are dropped instead of persisted.
	FaultDropFence
	// FaultTearLine tears one persisting line per crash image at a
	// seeded byte split.
	FaultTearLine

	// FaultsNone is the honest device.
	FaultsNone FaultMode = 0
)

// Has reports whether mode m includes f.
func (m FaultMode) Has(f FaultMode) bool { return m&f != 0 }

var faultModeNames = []struct {
	mode FaultMode
	name string
}{
	{FaultDropFlush, "drop-flush"},
	{FaultDropFence, "drop-fence"},
	{FaultTearLine, "torn-line"},
}

func (m FaultMode) String() string {
	if m == FaultsNone {
		return "none"
	}
	var parts []string
	for _, e := range faultModeNames {
		if m.Has(e.mode) {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, ",")
}

// ParseFaultModes parses a comma-separated fault-mode list: "none",
// "drop-flush", "drop-fence", "torn-line", or any comma mix.
func ParseFaultModes(s string) (FaultMode, error) {
	var m FaultMode
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "", "none":
			continue
		case "drop-flush":
			m |= FaultDropFlush
		case "drop-fence":
			m |= FaultDropFence
		case "torn-line":
			m |= FaultTearLine
		default:
			return 0, fmt.Errorf("pmem: unknown fault mode %q (want none, drop-flush, drop-fence, torn-line)", part)
		}
	}
	return m, nil
}

// FaultPlan is a seeded device-lie schedule. One plan serves one device;
// its random stream advances once per candidate event (flush line, fence,
// crash-image materialization), so a single-threaded run replays
// byte-identically from (Modes, Seed) alone. Multi-threaded benchmark
// use is safe (the stream is mutex-guarded) but not deterministic —
// determinism is a property the crash tools need, and they are
// single-threaded by construction.
type FaultPlan struct {
	// Modes selects which lies the plan may tell.
	Modes FaultMode
	// Seed drives every lie decision.
	Seed int64
	// FlushEvery drops roughly one in N candidate line write-backs
	// (default 8). 1 drops every candidate.
	FlushEvery int
	// FenceEvery makes roughly one in N fences lie (default 16). 1 makes
	// every fence lie.
	FenceEvery int
	// Filter, when non-nil, restricts drop-flush candidates to lines
	// whose line-aligned offset it accepts. Tests use it to aim a lie at
	// one structure (e.g. a dentry commit marker) deterministically.
	Filter func(lineOff int64) bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultPlan builds a plan with the default rates.
func NewFaultPlan(modes FaultMode, seed int64) *FaultPlan {
	return &FaultPlan{Modes: modes, Seed: seed, FlushEvery: 8, FenceEvery: 16,
		rng: rand.New(rand.NewSource(seed))}
}

// roll draws a 1-in-n decision from the plan's stream.
func (p *FaultPlan) roll(n int) bool {
	if n <= 1 {
		return true
	}
	p.mu.Lock()
	v := p.rng.Intn(n)
	p.mu.Unlock()
	return v == 0
}

// dropFlush decides whether the write-back of the line at lineOff is
// silently dropped.
func (p *FaultPlan) dropFlush(lineOff int64) bool {
	if p == nil || !p.Modes.Has(FaultDropFlush) {
		return false
	}
	if p.Filter != nil && !p.Filter(lineOff) {
		return false
	}
	return p.roll(p.FlushEvery)
}

// dropFence decides whether this fence lies.
func (p *FaultPlan) dropFence() bool {
	if p == nil || !p.Modes.Has(FaultDropFence) {
		return false
	}
	return p.roll(p.FenceEvery)
}

// tearChoice picks which of n candidate lines tears and at which byte
// split in [1, LineSize-1]. Called once per crash-image materialization
// when FaultTearLine is set and candidates exist.
func (p *FaultPlan) tearChoice(n int) (idx, split int) {
	p.mu.Lock()
	idx = p.rng.Intn(n)
	split = 1 + p.rng.Intn(LineSize-1)
	p.mu.Unlock()
	return idx, split
}

// SetFaultPlan attaches a lie plan to the device (nil detaches). Like
// the fence observer it must be set while the device is quiescent.
func (d *Device) SetFaultPlan(p *FaultPlan) { d.fault = p }

// Fault returns the attached lie plan (possibly nil).
func (d *Device) Fault() *FaultPlan { return d.fault }

// applyTear implements FaultTearLine on a materialized crash image:
// among the dirty lines that persisted new content (policy chose k > 0),
// one seeded line keeps only its leading split bytes; the tail of the
// line reverts to the last fenced content. Caller holds d.mu.
func (d *Device) applyTear(img []byte, persisted []int64) {
	if d.fault == nil || !d.fault.Modes.Has(FaultTearLine) || len(persisted) == 0 {
		return
	}
	sort.Slice(persisted, func(i, j int) bool { return persisted[i] < persisted[j] })
	idx, split := d.fault.tearChoice(len(persisted))
	off := persisted[idx]
	copy(img[off+int64(split):off+LineSize], d.persistent[off+int64(split):off+LineSize])
	d.Stats.TornLines.Add(1)
}
