package pmem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicStoreLoad(t *testing.T) {
	d := New(PageSize, nil)
	d.Store64(0, 0xdeadbeefcafef00d)
	if got := d.Load64(0); got != 0xdeadbeefcafef00d {
		t.Fatalf("Load64 = %#x", got)
	}
	d.Store32(8, 0x01020304)
	if got := d.Load32(8); got != 0x01020304 {
		t.Fatalf("Load32 = %#x", got)
	}
	d.Store16(12, 0xbeef)
	if got := d.Load16(12); got != 0xbeef {
		t.Fatalf("Load16 = %#x", got)
	}
	d.Store8(14, 0x7f)
	if got := d.Load8(14); got != 0x7f {
		t.Fatalf("Load8 = %#x", got)
	}
	p := []byte("hello, pmem")
	d.Write(100, p)
	q := make([]byte, len(p))
	d.Read(100, q)
	if !bytes.Equal(p, q) {
		t.Fatalf("Read = %q", q)
	}
	if got := d.Slice(100, int64(len(p))); !bytes.Equal(got, p) {
		t.Fatalf("Slice = %q", got)
	}
}

func TestSizeRoundsToPage(t *testing.T) {
	d := New(1, nil)
	if d.Size() != PageSize {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(PageSize, nil)
	for _, f := range []func(){
		func() { d.Load64(PageSize - 4) },
		func() { d.Store8(-1, 0) },
		func() { d.Write(PageSize-2, []byte("abcd")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZero(t *testing.T) {
	d := New(PageSize, nil)
	d.Write(10, []byte{1, 2, 3, 4, 5})
	d.Zero(11, 3)
	want := []byte{1, 0, 0, 0, 5}
	got := make([]byte, 5)
	d.Read(10, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("after Zero: %v", got)
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(PageSize, nil)
	d.Store64(0, 1)
	d.Write(64, make([]byte, 130)) // spans 3 lines
	d.Flush(64, 130)
	d.Fence()
	if got := d.Stats.Flushes.Load(); got != 3 {
		t.Fatalf("Flushes = %d, want 3", got)
	}
	if got := d.Stats.Fences.Load(); got != 1 {
		t.Fatalf("Fences = %d", got)
	}
	if got := d.Stats.Bytes.Load(); got != 138 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestFencedContentIsDurable(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 42)
	d.Persist(0, 8)
	d.Store64(128, 99) // dirty, never flushed
	img := d.CrashImage(CrashDropAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 42 {
		t.Fatalf("fenced value lost: %d", got)
	}
	if got := binary.LittleEndian.Uint64(img[128:]); got != 0 {
		t.Fatalf("unflushed value persisted under DropAll: %d", got)
	}
}

func TestFlushWithoutFenceMayDrop(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 42)
	d.Flush(0, 8) // no fence
	img := d.CrashImage(CrashDropAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 0 {
		t.Fatalf("flushed-but-not-fenced line survived DropAll: %d", got)
	}
	img = d.CrashImage(CrashPersistAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 42 {
		t.Fatalf("PersistAll lost value: %d", got)
	}
}

// TestMissingFenceReordering is the §4.2 hardware scenario in miniature:
// write line A (payload), write line B (commit marker), flush both, no
// fence between them — a crash may persist B without A. With a fence
// between A's flush and B's store, that crash state is impossible.
func TestMissingFenceReordering(t *testing.T) {
	const lineA, lineB = 0, 64

	// Buggy sequence: no ordering between the two lines.
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(lineA, 0x1111)
	d.Store64(lineB, 0x2222)
	d.Flush(lineA, 8)
	d.Flush(lineB, 8)
	img := d.CrashImage(CrashKeepLines(lineB))
	if binary.LittleEndian.Uint64(img[lineB:]) != 0x2222 {
		t.Fatalf("adversarial crash should persist line B")
	}
	if binary.LittleEndian.Uint64(img[lineA:]) != 0 {
		t.Fatalf("adversarial crash should drop line A")
	}

	// Fixed sequence: fence after A's flush.
	d2 := New(PageSize, nil)
	d2.EnableTracking()
	d2.Store64(lineA, 0x1111)
	d2.Flush(lineA, 8)
	d2.Fence()
	d2.Store64(lineB, 0x2222)
	d2.Flush(lineB, 8)
	img2 := d2.CrashImage(CrashKeepLines(lineB))
	if binary.LittleEndian.Uint64(img2[lineA:]) != 0x1111 {
		t.Fatalf("fence did not make line A durable before B")
	}
}

// TestSameLinePrefixOrdering verifies that a crash can only persist a
// prefix of one line's store history, never a later store without an
// earlier one.
func TestSameLinePrefixOrdering(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 1)  // version 1
	d.Store64(8, 2)  // version 2 (same line)
	d.Store64(16, 3) // version 3 (same line)

	for k := 0; k <= 3; k++ {
		k := k
		img := d.CrashImage(func(_ int64, versions int) int {
			if versions != 3 {
				t.Fatalf("versions = %d, want 3", versions)
			}
			return k
		})
		vals := []uint64{
			binary.LittleEndian.Uint64(img[0:]),
			binary.LittleEndian.Uint64(img[8:]),
			binary.LittleEndian.Uint64(img[16:]),
		}
		want := [][]uint64{
			{0, 0, 0},
			{1, 0, 0},
			{1, 2, 0},
			{1, 2, 3},
		}[k]
		for i := range vals {
			if vals[i] != want[i] {
				t.Fatalf("prefix %d: got %v want %v", k, vals, want)
			}
		}
	}
}

func TestPartialFenceKeepsRemainder(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 1)
	d.Flush(0, 8)
	d.Store64(0, 2) // after the flush; not covered by it
	d.Fence()
	// The fence persisted version 1 only.
	img := d.CrashImage(CrashDropAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 1 {
		t.Fatalf("fence persisted wrong version: %d", got)
	}
	// The second store is still pending.
	img = d.CrashImage(CrashPersistAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 2 {
		t.Fatalf("pending version lost: %d", got)
	}
	// And a further flush+fence persists it for sure.
	d.Persist(0, 8)
	img = d.CrashImage(CrashDropAll)
	if got := binary.LittleEndian.Uint64(img[0:]); got != 2 {
		t.Fatalf("second persist ineffective: %d", got)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	d := New(2*PageSize, nil)
	d.EnableTracking()
	d.Write(500, []byte("durable"))
	d.Persist(500, 7)
	img := d.CrashImage(CrashDropAll)
	r := Restore(img, nil)
	got := make([]byte, 7)
	r.Read(500, got)
	if string(got) != "durable" {
		t.Fatalf("Restore lost data: %q", got)
	}
	if r.Tracking() {
		t.Fatal("restored device should not be tracking")
	}
}

func TestCrashRandomDeterministic(t *testing.T) {
	mk := func() *Device {
		d := New(PageSize, nil)
		d.EnableTracking()
		for i := int64(0); i < 16; i++ {
			d.Store64(i*LineSize, uint64(i+1))
		}
		return d
	}
	a := mk().CrashImage(CrashRandom(7))
	b := mk().CrashImage(CrashRandom(7))
	if !bytes.Equal(a, b) {
		t.Fatal("CrashRandom with same seed differs")
	}
}

func TestDirtyLines(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 1)
	d.Store64(200, 2)
	lines := d.DirtyLines()
	if len(lines) != 2 {
		t.Fatalf("DirtyLines = %v", lines)
	}
	d.Persist(0, PageSize)
	if got := d.DirtyLines(); len(got) != 0 {
		t.Fatalf("after persist, DirtyLines = %v", got)
	}
}

func TestTrackingDisableStopsHistory(t *testing.T) {
	d := New(PageSize, nil)
	d.EnableTracking()
	d.Store64(0, 1)
	d.DisableTracking()
	defer func() {
		if recover() == nil {
			t.Fatal("CrashImage without tracking should panic")
		}
	}()
	d.CrashImage(CrashDropAll)
}

// Property: for any sequence of persisted writes, the DropAll crash image
// equals the volatile image on the written region.
func TestQuickPersistedWritesSurvive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(PageSize, nil)
		d.EnableTracking()
		type wr struct {
			off int64
			p   []byte
		}
		var writes []wr
		for i := 0; i < 12; i++ {
			n := int64(rng.Intn(200) + 1)
			off := int64(rng.Intn(PageSize - int(n)))
			p := make([]byte, n)
			rng.Read(p)
			d.Write(off, p)
			d.Persist(off, n)
			writes = append(writes, wr{off, p})
		}
		img := d.CrashImage(CrashDropAll)
		for _, w := range writes {
			if !bytes.Equal(img[w.off:w.off+int64(len(w.p))], d.Slice(w.off, int64(len(w.p)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: any crash image is a mixture of per-line store-history
// prefixes — for every line it matches the content after some number of
// that line's recorded stores.
func TestQuickCrashImagesAreLineConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(PageSize, nil)
		// Model the per-line histories independently.
		histories := make(map[int64][][]byte)
		record := func(line int64) {
			snap := make([]byte, LineSize)
			copy(snap, d.Slice(line*LineSize, LineSize))
			histories[line] = append(histories[line], snap)
		}
		d.EnableTracking()
		for line := int64(0); line < 8; line++ {
			histories[line] = [][]byte{make([]byte, LineSize)} // version 0: zeros
		}
		for i := 0; i < 60; i++ {
			line := int64(rng.Intn(8))
			d.Store64(line*LineSize+int64(rng.Intn(8))*8, rng.Uint64())
			record(line)
			if rng.Intn(4) == 0 {
				d.Flush(line*LineSize, LineSize)
			}
			if rng.Intn(8) == 0 {
				d.Fence()
			}
		}
		img := d.CrashImage(CrashRandom(seed ^ 0x5a5a))
		for line := int64(0); line < 8; line++ {
			got := img[line*LineSize : (line+1)*LineSize]
			ok := false
			for _, v := range histories[line] {
				if bytes.Equal(got, v) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
