package pmem

import (
	"fmt"
	"sort"

	"arckfs/internal/telemetry"
)

// Batch is a per-thread write-combining persist queue over one Device.
//
// Real PM file systems do not issue a clwb at every call site that
// dirties a line: within one operation they queue line-granular flush
// requests, dedupe lines already queued, and issue the write-backs in one
// burst at the next ordering point. Batch implements that discipline for
// the LibFS hot paths:
//
//   - Flush(off, n) enqueues the cache lines overlapping [off, off+n).
//     A line already queued since the last barrier is absorbed (counted
//     in Stats.BatchDedup) — this is what coalesces the adjacent 8-byte
//     block-map entry flushes of writeAt/Truncate into single-line
//     flushes.
//   - Barrier() drains the queue (one clwb per unique line, adjacent
//     lines merged into ranged flushes) and issues one fence. A Barrier
//     is an ordering-epoch boundary: content queued before it is durable
//     before anything queued after it can persist.
//   - WriteStream/ZeroStream write full cache lines with non-temporal
//     stores, skipping the clwb entirely; the data is durable at the
//     next Barrier.
//
// Correctness of deferring the clwb to the barrier: in the persistency
// model (and on real hardware) an unfenced clwb guarantees nothing — a
// crash before the fence may persist any per-line prefix of the store
// history whether or not write-back was initiated. Crash states therefore
// depend only on where the fences are, and Batch preserves exactly the
// fence placement of the unbatched code. The one rule a caller must keep
// is the §4.2 ordering-epoch rule: a commit marker must be queued only
// AFTER the Barrier that persists its body — the marker line must never
// merge into the body epoch. The crash-enumeration tests in libfs prove
// the batched protocol admits no new crash states.
//
// A Batch is owned by a single thread and is not safe for concurrent
// use. The degenerate eager mode (NewEagerBatch) reproduces the
// pre-batching behavior — one clwb per call site, no streaming stores —
// and exists so benchmarks can A/B the optimization.
type Batch struct {
	dev   *Device
	eager bool

	// pending is the set of queued line offsets in the current epoch,
	// allocated on first Flush: a thread that only ever streams (or never
	// writes) carries no map, which matters when thousands of idle
	// tenants each hold a Batch.
	pending map[int64]struct{}
	// scratch is the reusable sort buffer Barrier drains into.
	scratch []int64
	// sink, when set, receives one span event per Flush/stream/Barrier so
	// a sampled operation's span carries its persist history. The sink is
	// the owning thread (which no-ops when no span is open), so the
	// disabled cost is one nil check.
	sink telemetry.SpanSink
}

// SetSink attaches a span-event sink to the batch. Pass nil to detach.
func (b *Batch) SetSink(s telemetry.SpanSink) { b.sink = s }

// NewBatch creates a write-combining persist queue for the device.
func (d *Device) NewBatch() *Batch {
	return &Batch{dev: d}
}

// NewEagerBatch creates a pass-through queue: every Flush issues its clwb
// immediately, Barrier only fences, and streaming writes degrade to
// store+clwb. This is the pre-batching persist behavior.
func (d *Device) NewEagerBatch() *Batch {
	return &Batch{dev: d, eager: true}
}

// Eager reports whether the batch is in pass-through mode.
func (b *Batch) Eager() bool { return b.eager }

// Device returns the underlying device.
func (b *Batch) Device() *Device { return b.dev }

// Flush queues a clwb for every cache line overlapping [off, off+n).
// Lines already queued in this epoch are absorbed.
func (b *Batch) Flush(off, n int64) {
	if n <= 0 {
		return
	}
	first := off / LineSize * LineSize
	last := (off + n - 1) / LineSize * LineSize
	if b.sink != nil {
		b.sink.SpanEvent(telemetry.SpanEvFlush, first, (last-first)/LineSize+1)
	}
	if b.eager {
		b.dev.Flush(off, n)
		return
	}
	b.dev.check(off, n)
	if b.pending == nil {
		b.pending = make(map[int64]struct{}, 32)
	}
	for l := first; l <= last; l += LineSize {
		if _, dup := b.pending[l]; dup {
			b.dev.Stats.BatchDedup.Add(1)
			continue
		}
		b.pending[l] = struct{}{}
	}
}

// WriteStream writes p (line-aligned, whole lines) with non-temporal
// stores: no clwb is queued, and the content is durable at the next
// Barrier. In eager mode it degrades to a store plus immediate clwbs.
func (b *Batch) WriteStream(off int64, p []byte) {
	if b.sink != nil {
		b.sink.SpanEvent(telemetry.SpanEvNTStore, off, int64(len(p)))
	}
	if b.eager {
		b.dev.Write(off, p)
		b.dev.Flush(off, int64(len(p)))
		return
	}
	b.dev.WriteNT(off, p)
}

// ZeroStream zeroes [off, off+n) (line-aligned) with non-temporal stores.
func (b *Batch) ZeroStream(off, n int64) {
	if b.sink != nil {
		b.sink.SpanEvent(telemetry.SpanEvNTStore, off, n)
	}
	if b.eager {
		b.dev.Zero(off, n)
		b.dev.Flush(off, n)
		return
	}
	b.dev.ZeroNT(off, n)
}

// Pending returns the number of queued (not yet written back) lines.
func (b *Batch) Pending() int { return len(b.pending) }

// Barrier ends the current ordering epoch: it drains the queue — one
// clwb per unique line, adjacent lines merged into ranged flushes — and
// issues one fence. Everything flushed or streamed before the Barrier is
// durable when it returns.
func (b *Batch) Barrier() {
	Killpoint("pmem.batch.barrier")
	drained := int64(len(b.pending))
	if !b.eager && len(b.pending) > 0 {
		b.scratch = b.scratch[:0]
		for l := range b.pending {
			b.scratch = append(b.scratch, l)
		}
		sort.Slice(b.scratch, func(i, j int) bool { return b.scratch[i] < b.scratch[j] })
		runStart, runEnd := b.scratch[0], b.scratch[0]+LineSize
		for _, l := range b.scratch[1:] {
			if l == runEnd {
				runEnd += LineSize
				continue
			}
			b.dev.Flush(runStart, runEnd-runStart)
			runStart, runEnd = l, l+LineSize
		}
		b.dev.Flush(runStart, runEnd-runStart)
		clear(b.pending)
	}
	b.dev.Fence()
	if b.sink != nil {
		b.sink.SpanEvent(telemetry.SpanEvFence, drained, 0)
	}
}

// Drain issues a Barrier only if lines are queued. Call sites that must
// guarantee "nothing in flight" (ownership transfer to the kernel) use it
// to avoid paying a fence in the common already-drained case.
func (b *Batch) Drain() {
	if len(b.pending) > 0 {
		Killpoint("pmem.batch.drain")
		b.Barrier()
	}
}

// AssertEmpty panics if lines are queued; operations must end on an epoch
// boundary, so the queue is empty between operations. Tests use it to pin
// the invariant.
func (b *Batch) AssertEmpty() {
	if len(b.pending) > 0 {
		panic(fmt.Sprintf("pmem: batch holds %d undrained lines across an operation boundary", len(b.pending)))
	}
}
