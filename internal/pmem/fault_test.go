package pmem

import (
	"bytes"
	"testing"
)

// mkTracked builds a small tracked device with an all-zero fenced state.
func mkTracked(t *testing.T) *Device {
	t.Helper()
	d := New(4*PageSize, nil)
	d.EnableTracking()
	return d
}

func TestDropFlushKeepsLineDirty(t *testing.T) {
	d := mkTracked(t)
	p := NewFaultPlan(FaultDropFlush, 1)
	p.FlushEvery = 1 // drop every candidate write-back
	d.SetFaultPlan(p)

	data := bytes.Repeat([]byte{0xAA}, LineSize)
	d.Write(0, data)
	d.Flush(0, LineSize) // lies: reports success, line stays dirty
	d.Fence()            // honest fence, but nothing was flushed

	img := d.CrashImage(CrashDropAll)
	if !bytes.Equal(img[:LineSize], make([]byte, LineSize)) {
		t.Fatalf("dropped flush still persisted: % x", img[:8])
	}
	if got := d.Stats.LiedFlushes.Load(); got == 0 {
		t.Fatalf("LiedFlushes = 0, want > 0")
	}

	// The same sequence on an honest device persists the line.
	h := mkTracked(t)
	h.Write(0, data)
	h.Flush(0, LineSize)
	h.Fence()
	if img := h.CrashImage(CrashDropAll); !bytes.Equal(img[:LineSize], data) {
		t.Fatalf("honest flush+fence did not persist")
	}
}

func TestDropFlushFilterAims(t *testing.T) {
	d := mkTracked(t)
	p := NewFaultPlan(FaultDropFlush, 1)
	p.FlushEvery = 1
	p.Filter = func(lineOff int64) bool { return lineOff == LineSize } // only line 1 lies
	d.SetFaultPlan(p)

	data := bytes.Repeat([]byte{0xBB}, LineSize)
	d.Write(0, data)
	d.Write(LineSize, data)
	d.Flush(0, 2*LineSize)
	d.Fence()

	img := d.CrashImage(CrashDropAll)
	if !bytes.Equal(img[:LineSize], data) {
		t.Fatalf("unfiltered line 0 should persist")
	}
	if bytes.Equal(img[LineSize:2*LineSize], data) {
		t.Fatalf("filtered line 1 should stay dirty")
	}
}

func TestDropFenceRevertsFlushedLines(t *testing.T) {
	d := mkTracked(t)
	p := NewFaultPlan(FaultDropFence, 1)
	p.FenceEvery = 1 // every fence lies
	d.SetFaultPlan(p)

	data := bytes.Repeat([]byte{0xCC}, LineSize)
	d.Write(0, data)
	d.Flush(0, LineSize)
	d.Fence() // lies: queued write-back dropped, line reverts to dirty

	img := d.CrashImage(CrashDropAll)
	if bytes.Equal(img[:LineSize], data) {
		t.Fatalf("lying fence persisted the line")
	}
	if got := d.Stats.LiedFences.Load(); got == 0 {
		t.Fatalf("LiedFences = 0, want > 0")
	}
	// The line is dirty again, so a permissive crash can still persist it
	// (the store itself was never lost, only its durability).
	if img := d.CrashImage(CrashPersistAll); !bytes.Equal(img[:LineSize], data) {
		t.Fatalf("dropped fence lost the volatile store history")
	}
}

func TestTearLineSplitsPersistingLine(t *testing.T) {
	d := mkTracked(t)
	d.SetFaultPlan(NewFaultPlan(FaultTearLine, 3))

	data := bytes.Repeat([]byte{0xDD}, LineSize)
	d.Write(0, data) // dirty, un-fenced: last durable content is zeros

	img := d.CrashImage(CrashPersistAll)
	if got := d.Stats.TornLines.Load(); got != 1 {
		t.Fatalf("TornLines = %d, want 1", got)
	}
	split := 0
	for split < LineSize && img[split] == 0xDD {
		split++
	}
	if split < 1 || split >= LineSize {
		t.Fatalf("tear split = %d, want in [1, %d)", split, LineSize)
	}
	for i := split; i < LineSize; i++ {
		if img[i] != 0 {
			t.Fatalf("torn tail byte %d = %#x, want previous durable content", i, img[i])
		}
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	run := func() []byte {
		d := mkTracked(t)
		p := NewFaultPlan(FaultDropFlush|FaultDropFence, 42)
		p.FlushEvery, p.FenceEvery = 3, 4
		d.SetFaultPlan(p)
		for l := int64(0); l < 32; l++ {
			d.Write(l*LineSize, bytes.Repeat([]byte{byte(l + 1)}, LineSize))
			d.Flush(l*LineSize, LineSize)
			if l%4 == 3 {
				d.Fence()
			}
		}
		d.Fence()
		return d.CrashImage(CrashDropAll)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("same seed and op sequence produced different crash images")
	}
}

func TestKillpointArmsAndFires(t *testing.T) {
	defer DisarmKillpoint()
	fired := 0
	ArmKillpoint("test.site", 2, func(site string) {
		if site != "test.site" {
			t.Fatalf("fired with site %q", site)
		}
		fired++
	})
	Killpoint("other.site") // wrong site: ignored
	Killpoint("test.site")  // hit 1 of 2
	if fired != 0 {
		t.Fatalf("fired on hit 1, want hit 2")
	}
	Killpoint("test.site") // hit 2: fires
	if fired != 1 {
		t.Fatalf("fired = %d after hit 2, want 1", fired)
	}
	Killpoint("test.site") // past the armed hit: no refire
	if fired != 1 {
		t.Fatalf("fired = %d after hit 3, want 1", fired)
	}
	DisarmKillpoint()
	Killpoint("test.site")
	if fired != 1 {
		t.Fatalf("disarmed killpoint fired")
	}
}
