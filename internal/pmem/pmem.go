// Package pmem simulates byte-addressable persistent memory with an
// x86-like persistency model (clwb + sfence), including crash simulation.
//
// The device keeps a volatile image (what CPUs see through the cache
// hierarchy) and, when tracking is enabled, enough per-cache-line history
// to materialize every crash state the hardware model admits:
//
//   - Stores become visible in the volatile image immediately and are
//     recorded as per-line versions (stores to one line are ordered, so a
//     crash persists a *prefix* of a line's store history).
//   - Flush (clwb) initiates write-back of a line's current content but
//     guarantees nothing by itself.
//   - Fence (sfence) guarantees that all previously flushed content has
//     reached the persistence domain.
//   - At a crash, everything fenced is durable; any dirty or
//     flushed-but-not-fenced line may additionally have persisted any
//     prefix of its store history (cache eviction and in-flight
//     write-backs are not ordered across lines).
//
// This is the model under which the §4.2 bug of the ArckFS+ paper — a
// missing fence allowing a directory entry with a valid commit marker to
// be only partially persisted — is expressible and testable.
//
// Tracking is off by default; in that mode stores and flushes only update
// the volatile image and cost/statistics counters, which is what the
// benchmarks use.
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"arckfs/internal/costmodel"
	"arckfs/internal/telemetry"
)

// LineSize is the cache line size of the simulated machine.
const LineSize = 64

// PageSize is the allocation granularity used by the file systems above.
const PageSize = 4096

// Stats counts persistence-relevant events on a device.
type Stats struct {
	Stores   atomic.Int64 // individual store operations
	Bytes    atomic.Int64 // bytes stored
	Flushes  atomic.Int64 // cache lines flushed
	Fences   atomic.Int64 // persist barriers issued
	NTStores atomic.Int64 // cache lines written with streaming stores
	// BatchDedup counts cache-line flush requests a write-combining
	// Batch absorbed because the line was already queued in the current
	// ordering epoch (see batch.go). Each is one clwb the unbatched code
	// would have issued.
	BatchDedup atomic.Int64
	// LiedFlushes, LiedFences and TornLines count device lies told under
	// an attached FaultPlan (see fault.go): line write-backs silently
	// dropped, fences that persisted nothing, and lines torn at a byte
	// split during crash-image materialization.
	LiedFlushes atomic.Int64
	LiedFences  atomic.Int64
	TornLines   atomic.Int64
}

// RegisterTelemetry exposes the device's persistence counters in set
// under the "pmem." namespace.
func (d *Device) RegisterTelemetry(set *telemetry.Set) {
	set.Gauge("pmem.stores", d.Stats.Stores.Load)
	set.Gauge("pmem.bytes", d.Stats.Bytes.Load)
	set.Gauge("pmem.flushes", d.Stats.Flushes.Load)
	set.Gauge("pmem.fences", d.Stats.Fences.Load)
	set.Gauge("pmem.ntstores", d.Stats.NTStores.Load)
	set.Gauge("pmem.batch_dedup", d.Stats.BatchDedup.Load)
	set.Gauge("pmem.lies.dropped_flushes", d.Stats.LiedFlushes.Load)
	set.Gauge("pmem.lies.dropped_fences", d.Stats.LiedFences.Load)
	set.Gauge("pmem.lies.torn_lines", d.Stats.TornLines.Load)
}

// lineTrack records the unpersisted store history of one cache line.
type lineTrack struct {
	// versions[i] is the line's content after the (i+1)-th tracked store
	// batch since the last fence that persisted it.
	versions [][]byte
	// flushedVer is the number of leading versions covered by an issued
	// clwb (persisted at the next fence); 0 if none.
	flushedVer int
}

// Device is a simulated persistent-memory module.
type Device struct {
	buf  []byte
	cost *costmodel.Model

	tracking atomic.Bool
	mu       sync.Mutex // guards persistent and lines when tracking
	// persistent is the fenced (guaranteed durable) image; valid only
	// while tracking.
	persistent []byte
	lines      map[int64]*lineTrack
	// obs, when set, is invoked at the start of every Fence while tracking
	// is enabled, before the fence's persistence takes effect — i.e. with
	// the epoch's full dirty-line state still enumerable. See
	// SetFenceObserver.
	obs func()
	// fault, when set, is the device's lie schedule (see fault.go).
	fault *FaultPlan

	Stats Stats
}

// New creates a device of the given size in bytes (rounded up to a page).
// cost may be nil for zero simulated latency.
func New(size int64, cost *costmodel.Model) *Device {
	if size <= 0 {
		panic("pmem: non-positive device size")
	}
	size = (size + PageSize - 1) / PageSize * PageSize
	return &Device{
		buf:  make([]byte, size),
		cost: cost,
	}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.buf)) }

// Cost returns the device's cost model (possibly nil).
func (d *Device) Cost() *costmodel.Model { return d.cost }

// EnableTracking snapshots the current volatile image as the durable
// baseline and begins recording store/flush/fence history for crash
// simulation. The device must be quiescent (no concurrent operations).
func (d *Device) EnableTracking() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.persistent = make([]byte, len(d.buf))
	copy(d.persistent, d.buf)
	d.lines = make(map[int64]*lineTrack)
	d.tracking.Store(true)
}

// DisableTracking stops recording history and releases it.
func (d *Device) DisableTracking() {
	d.tracking.Store(false)
	d.mu.Lock()
	d.persistent = nil
	d.lines = nil
	d.mu.Unlock()
}

// Tracking reports whether crash tracking is enabled.
func (d *Device) Tracking() bool { return d.tracking.Load() }

// SetFenceObserver registers fn to run at the start of every Fence while
// tracking is enabled, before the fence makes flushed content durable.
// At that instant the device still holds the ending ordering epoch's
// complete dirty-line state, so fn can materialize every crash image the
// epoch admits (via DirtyLineStates and CrashImage): within an epoch the
// reachable crash-state set only grows as stores accumulate, so the set
// enumerable immediately before the fence is a superset of the states
// reachable at any intermediate point since the previous fence. Observing
// fences therefore covers the whole execution, epoch by epoch.
//
// fn must not issue stores, flushes, or fences on this device. The
// observer must be registered (or cleared with nil) while the device is
// quiescent; it is invoked on whichever thread fences, so crash-state
// checkers drive single-threaded workloads.
func (d *Device) SetFenceObserver(fn func()) { d.obs = fn }

func (d *Device) check(off, n int64) {
	if off < 0 || n < 0 || off+n > int64(len(d.buf)) {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of %d bytes", off, off+n, len(d.buf)))
	}
}

// recordStore appends post-store snapshots for every line overlapping
// [off, off+n).
func (d *Device) recordStore(off, n int64) {
	first := off / LineSize
	last := (off + n - 1) / LineSize
	d.mu.Lock()
	for l := first; l <= last; l++ {
		lt := d.lines[l]
		if lt == nil {
			lt = &lineTrack{}
			d.lines[l] = lt
		}
		snap := make([]byte, LineSize)
		copy(snap, d.buf[l*LineSize:(l+1)*LineSize])
		lt.versions = append(lt.versions, snap)
	}
	d.mu.Unlock()
}

// Write stores p at off.
func (d *Device) Write(off int64, p []byte) {
	d.check(off, int64(len(p)))
	copy(d.buf[off:], p)
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(int64(len(p)))
	d.cost.PMWrite(len(p))
	if d.tracking.Load() {
		d.recordStore(off, int64(len(p)))
	}
}

// Zero stores n zero bytes at off.
func (d *Device) Zero(off, n int64) {
	d.check(off, n)
	b := d.buf[off : off+n]
	for i := range b {
		b[i] = 0
	}
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(n)
	d.cost.PMWrite(int(n))
	if d.tracking.Load() {
		d.recordStore(off, n)
	}
}

// Store8 stores one byte.
func (d *Device) Store8(off int64, v uint8) {
	d.check(off, 1)
	d.buf[off] = v
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(1)
	if d.tracking.Load() {
		d.recordStore(off, 1)
	}
}

// Store16 stores a little-endian uint16.
func (d *Device) Store16(off int64, v uint16) {
	d.check(off, 2)
	binary.LittleEndian.PutUint16(d.buf[off:], v)
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(2)
	if d.tracking.Load() {
		d.recordStore(off, 2)
	}
}

// Store32 stores a little-endian uint32.
func (d *Device) Store32(off int64, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.buf[off:], v)
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(4)
	if d.tracking.Load() {
		d.recordStore(off, 4)
	}
}

// Store64 stores a little-endian uint64.
func (d *Device) Store64(off int64, v uint64) {
	d.check(off, 8)
	binary.LittleEndian.PutUint64(d.buf[off:], v)
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(8)
	if d.tracking.Load() {
		d.recordStore(off, 8)
	}
}

// WriteNT stores p at off with non-temporal (streaming, movnt-style)
// stores. The write bypasses the cache hierarchy: no clwb is needed, and
// the content is guaranteed durable after the next Fence. Both off and
// len(p) must be cache-line aligned — streaming stores write whole lines.
//
// In the crash model a non-temporal store behaves exactly like a store
// whose line was immediately flushed: until a fence it may persist any
// prefix of the line's store history (the write-combining buffer can
// drain at any time), after a fence it is durable.
func (d *Device) WriteNT(off int64, p []byte) {
	if off%LineSize != 0 || len(p)%LineSize != 0 {
		panic(fmt.Sprintf("pmem: non-temporal write [%d,%d) not line-aligned", off, off+int64(len(p))))
	}
	d.check(off, int64(len(p)))
	copy(d.buf[off:], p)
	nl := int64(len(p) / LineSize)
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(int64(len(p)))
	d.Stats.NTStores.Add(nl)
	d.cost.NTStore(int(nl))
	if d.tracking.Load() {
		d.recordStore(off, int64(len(p)))
		d.markFlushed(off/LineSize, (off+int64(len(p))-1)/LineSize)
	}
}

// ZeroNT stores n zero bytes at off with non-temporal stores. The same
// alignment and durability rules as WriteNT apply.
func (d *Device) ZeroNT(off, n int64) {
	if off%LineSize != 0 || n%LineSize != 0 {
		panic(fmt.Sprintf("pmem: non-temporal zero [%d,%d) not line-aligned", off, off+n))
	}
	d.check(off, n)
	b := d.buf[off : off+n]
	for i := range b {
		b[i] = 0
	}
	nl := n / LineSize
	d.Stats.Stores.Add(1)
	d.Stats.Bytes.Add(n)
	d.Stats.NTStores.Add(nl)
	d.cost.NTStore(int(nl))
	if d.tracking.Load() {
		d.recordStore(off, n)
		d.markFlushed(off/LineSize, (off+n-1)/LineSize)
	}
}

// markFlushed records that lines [first, last] have write-back initiated
// for their entire store history (clwb issued, or a streaming store that
// bypassed the cache). Under a FaultPlan with FaultDropFlush a line with
// unflushed history is a lie candidate: the write-back silently never
// initiates and the line stays dirty.
func (d *Device) markFlushed(first, last int64) {
	d.mu.Lock()
	for l := first; l <= last; l++ {
		lt := d.lines[l]
		if lt == nil || lt.flushedVer == len(lt.versions) {
			continue
		}
		if d.fault.dropFlush(l * LineSize) {
			d.Stats.LiedFlushes.Add(1)
			continue
		}
		lt.flushedVer = len(lt.versions)
	}
	d.mu.Unlock()
}

// Read copies n bytes at off into p.
func (d *Device) Read(off int64, p []byte) {
	d.check(off, int64(len(p)))
	copy(p, d.buf[off:])
	d.cost.PMRead(len(p))
}

// Load8 loads one byte.
func (d *Device) Load8(off int64) uint8 {
	d.check(off, 1)
	return d.buf[off]
}

// Load16 loads a little-endian uint16.
func (d *Device) Load16(off int64) uint16 {
	d.check(off, 2)
	return binary.LittleEndian.Uint16(d.buf[off:])
}

// Load32 loads a little-endian uint32.
func (d *Device) Load32(off int64) uint32 {
	d.check(off, 4)
	return binary.LittleEndian.Uint32(d.buf[off:])
}

// Load64 loads a little-endian uint64.
func (d *Device) Load64(off int64) uint64 {
	d.check(off, 8)
	return binary.LittleEndian.Uint64(d.buf[off:])
}

// Slice returns a read-only view of [off, off+n). Callers must not write
// through it (writes would bypass tracking and statistics); it exists so
// hot read paths avoid copies.
func (d *Device) Slice(off, n int64) []byte {
	d.check(off, n)
	d.cost.PMRead(int(n))
	return d.buf[off : off+n : off+n]
}

// Flush issues clwb for every cache line overlapping [off, off+n). The
// flushed content is guaranteed durable only after a subsequent Fence.
func (d *Device) Flush(off, n int64) {
	if n <= 0 {
		return
	}
	d.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	nl := last - first + 1
	d.Stats.Flushes.Add(nl)
	d.cost.Flush(int(nl))
	if !d.tracking.Load() {
		return
	}
	d.markFlushed(first, last)
}

// Fence issues a persist barrier: all previously flushed line content
// becomes durable.
func (d *Device) Fence() {
	d.Stats.Fences.Add(1)
	d.cost.Fence()
	if !d.tracking.Load() {
		return
	}
	if d.obs != nil {
		d.obs()
	}
	d.mu.Lock()
	if d.fault.dropFence() {
		// The fence lies: the epoch's queued write-backs are dropped.
		// Every flushed-but-unpersisted line reverts to dirty — its clwb
		// is gone, and the software continues believing it durable.
		d.Stats.LiedFences.Add(1)
		for _, lt := range d.lines {
			lt.flushedVer = 0
		}
		d.mu.Unlock()
		return
	}
	for l, lt := range d.lines {
		if lt.flushedVer == 0 {
			continue
		}
		copy(d.persistent[l*LineSize:], lt.versions[lt.flushedVer-1])
		if lt.flushedVer == len(lt.versions) {
			delete(d.lines, l)
		} else {
			lt.versions = lt.versions[lt.flushedVer:]
			lt.flushedVer = 0
		}
	}
	d.mu.Unlock()
}

// Persist is the common flush-then-fence sequence.
func (d *Device) Persist(off, n int64) {
	d.Flush(off, n)
	d.Fence()
}
