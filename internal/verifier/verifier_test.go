package verifier

import (
	"strings"
	"testing"

	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// fakeKV is a scriptable KernelView.
type fakeKV struct {
	shadows    map[uint64]ShadowInfo
	granted    map[uint64]bool
	pagesOK    bool
	owned      map[uint64]bool
	ownedOther map[uint64]bool
	renameLock bool
}

func (f *fakeKV) Shadow(ino uint64) (ShadowInfo, bool) {
	s, ok := f.shadows[ino]
	return s, ok
}
func (f *fakeKV) InodeGrantedTo(_ int64, ino uint64) bool { return f.granted[ino] }
func (f *fakeKV) PageUsableBy(int64, uint64, uint64) bool { return f.pagesOK }
func (f *fakeKV) OwnedBy(_ int64, ino uint64) bool        { return f.owned[ino] }
func (f *fakeKV) OwnedByOther(_ int64, ino uint64) bool   { return f.ownedOther[ino] }
func (f *fakeKV) HoldsRenameLock(int64) bool              { return f.renameLock }
func (f *fakeKV) IsDescendant(node, anc uint64) bool {
	// Walk the fake shadow parents.
	cur := node
	for i := 0; i < 64; i++ {
		if cur == anc {
			return true
		}
		s, ok := f.shadows[cur]
		if !ok || cur == layout.RootIno {
			return false
		}
		cur = s.Parent
	}
	return true
}

// buildDir writes a directory with the given committed entries on a fresh
// device and returns the verifier and dir ino.
func buildDir(t *testing.T, entries map[string]uint64) (*V, *pmem.Device, layout.Geometry, uint64) {
	t.Helper()
	dev := pmem.New(256*layout.PageSize, nil)
	g, err := layout.Mkfs(dev, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	const dirIno = 2
	tailset := g.DataStart + 1
	logPage := g.DataStart + 2
	layout.InitTailSet(dev, tailset, 2)
	layout.ZeroPage(dev, logPage)
	layout.SetTailHead(dev, tailset, 0, logPage)
	in := layout.Inode{Type: layout.TypeDir, Perm: layout.PermRead | layout.PermWrite, Nlink: 2, DataRoot: tailset, NTails: 2, Parent: layout.RootIno}
	layout.WriteInode(dev, g, dirIno, &in)
	off := 0
	for name, ino := range entries {
		r := layout.MakeDentryRef(logPage, off)
		layout.WriteDentryBody(dev, r, ino, name)
		layout.CommitDentry(dev, r, len(name))
		off += layout.DentryRecLen(len(name))
	}
	v := &V{Mode: Enhanced, Dev: dev, Geo: g}
	return v, dev, g, dirIno
}

func TestParseDirHappyPath(t *testing.T) {
	v, _, _, dir := buildDir(t, map[string]uint64{"a": 10, "b": 11})
	dv, err := v.ParseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dv.Entries) != 2 || dv.Entries["a"].Ino != 10 {
		t.Fatalf("entries: %+v", dv.Entries)
	}
	if len(dv.Pages) != 1 {
		t.Fatalf("pages: %v", dv.Pages)
	}
}

func TestParseDirRejectsDuplicateNames(t *testing.T) {
	v, dev, _, dir := buildDir(t, map[string]uint64{"a": 10})
	// Append a second live "a" by hand.
	dv, _ := v.ParseDir(dir)
	page := dv.Pages[0]
	off := layout.DentryRecLen(1)
	r := layout.MakeDentryRef(page, off)
	layout.WriteDentryBody(dev, r, 11, "a")
	layout.CommitDentry(dev, r, 1)
	if _, err := v.ParseDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name accepted: %v", err)
	}
}

func TestParseDirRejectsDoubleLink(t *testing.T) {
	v, dev, _, dir := buildDir(t, map[string]uint64{"a": 10})
	dv, _ := v.ParseDir(dir)
	page := dv.Pages[0]
	r := layout.MakeDentryRef(page, layout.DentryRecLen(1))
	layout.WriteDentryBody(dev, r, 10, "alias")
	layout.CommitDentry(dev, r, 5)
	if _, err := v.ParseDir(dir); err == nil || !strings.Contains(err.Error(), "linked as both") {
		t.Fatalf("double link accepted: %v", err)
	}
}

func TestParseDirRejectsTornDentry(t *testing.T) {
	v, dev, _, dir := buildDir(t, map[string]uint64{"somewhat-long-name-here": 10})
	dv, _ := v.ParseDir(dir)
	// Tear the name.
	for _, d := range dv.Entries {
		dev.Zero(d.Ref.DevOff()+layout.DentryHeaderSize, 4)
	}
	// The tear is caught either by the hash check ("torn commit") or by
	// name validation of the zeroed bytes; any rejection is correct.
	if _, err := v.ParseDir(dir); err == nil {
		t.Fatal("torn dentry accepted")
	}
}

func TestVerifyDirDetectsImmutableFieldChange(t *testing.T) {
	v, dev, g, dir := buildDir(t, nil)
	in, _, _ := layout.ReadInode(dev, g, dir)
	kv := &fakeKV{
		shadows: map[uint64]ShadowInfo{
			dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
				DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
		},
		pagesOK: true,
	}
	// Tamper with the permission bits.
	in.Perm = 0
	layout.WriteInode(dev, g, dir, &in)
	old := &DirOld{Entries: map[string]uint64{}, Pages: map[uint64]bool{}}
	_, err := v.VerifyDir(1, dir, old, kv)
	if err == nil || !strings.Contains(err.Error(), "permission") {
		t.Fatalf("perm change accepted: %v", err)
	}
}

func TestVerifyDirClassifiesChanges(t *testing.T) {
	v, dev, g, dir := buildDir(t, map[string]uint64{"newfile": 10, "keep": 11})
	in, _, _ := layout.ReadInode(dev, g, dir)
	// The new child's inode record must exist and point at dir.
	child := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead, Nlink: 1, Parent: dir}
	layout.WriteInode(dev, g, 10, &child)
	kv := &fakeKV{
		shadows: map[uint64]ShadowInfo{
			dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
				DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
			11: {Ino: 11, Type: layout.TypeFile, Parent: dir, Committed: true},
			12: {Ino: 12, Type: layout.TypeFile, Parent: dir, Committed: true},
		},
		granted: map[uint64]bool{10: true},
		pagesOK: true,
	}
	// Old state had "keep" and "gone" (a removed file).
	old := &DirOld{
		Entries: map[string]uint64{"keep": 11, "gone": 12},
		Pages:   map[uint64]bool{},
	}
	res, err := v.VerifyDir(1, dir, old, kv)
	if err != nil {
		t.Fatal(err)
	}
	var adds, removes int
	for _, ch := range res.Changes {
		switch ch.Action {
		case AddNew:
			adds++
			if ch.Ino != 10 {
				t.Fatalf("AddNew ino %d", ch.Ino)
			}
		case RemoveFile:
			removes++
			if ch.Ino != 12 {
				t.Fatalf("RemoveFile ino %d", ch.Ino)
			}
		}
	}
	if adds != 1 || removes != 1 {
		t.Fatalf("adds=%d removes=%d changes=%+v", adds, removes, res.Changes)
	}
	if len(res.NewPages) != 1 {
		t.Fatalf("new pages: %v", res.NewPages)
	}
}

func TestVerifyDirRejectsRemovalOfHeldInode(t *testing.T) {
	v, dev, g, dir := buildDir(t, nil)
	in, _, _ := layout.ReadInode(dev, g, dir)
	kv := &fakeKV{
		shadows: map[uint64]ShadowInfo{
			dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
				DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
			12: {Ino: 12, Type: layout.TypeFile, Parent: dir, Committed: true},
		},
		ownedOther: map[uint64]bool{12: true},
		pagesOK:    true,
	}
	old := &DirOld{Entries: map[string]uint64{"theirs": 12}, Pages: map[uint64]bool{}}
	_, err := v.VerifyDir(1, dir, old, kv)
	if err == nil || !strings.Contains(err.Error(), "another application") {
		t.Fatalf("removal of held inode accepted: %v", err)
	}
}

func TestVerifyDirI3ByMode(t *testing.T) {
	for _, mode := range []Mode{Original, Enhanced} {
		v, dev, g, dir := buildDir(t, nil)
		v.Mode = mode
		in, _, _ := layout.ReadInode(dev, g, dir)
		kv := &fakeKV{
			shadows: map[uint64]ShadowInfo{
				dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
					DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
				// The removed child is a non-empty dir whose verified
				// parent already moved to 99.
				20: {Ino: 20, Type: layout.TypeDir, Parent: 99, ChildCount: 3, Committed: true},
			},
			pagesOK: true,
		}
		old := &DirOld{Entries: map[string]uint64{"moved": 20}, Pages: map[uint64]bool{}}
		res, err := v.VerifyDir(1, dir, old, kv)
		if mode == Enhanced {
			if err != nil {
				t.Fatalf("enhanced rejected a renamed-away dir: %v", err)
			}
			if len(res.Changes) != 1 || res.Changes[0].Action != RenamedAway {
				t.Fatalf("changes: %+v", res.Changes)
			}
		} else {
			// Original cannot tell rename from deletion: I3 failure.
			if err == nil || !strings.Contains(err.Error(), "I3") {
				t.Fatalf("original accepted non-empty dir removal: %v", err)
			}
		}
	}
}

func TestVerifyDirRelocationChecks(t *testing.T) {
	mk := func() (*V, *fakeKV, *DirOld, uint64) {
		v, dev, g, dir := buildDir(t, map[string]uint64{"stolen": 30})
		in, _, _ := layout.ReadInode(dev, g, dir)
		kv := &fakeKV{
			shadows: map[uint64]ShadowInfo{
				dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
					DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
				30: {Ino: 30, Type: layout.TypeDir, Parent: 40, ChildCount: 1, Committed: true},
				40: {Ino: 40, Type: layout.TypeDir, Parent: layout.RootIno, Committed: true},
			},
			pagesOK: true,
		}
		return v, kv, &DirOld{Entries: map[string]uint64{}, Pages: map[uint64]bool{}}, dir
	}

	// Missing: old parent not held.
	v, kv, old, dir := mk()
	kv.renameLock = true
	if _, err := v.VerifyDir(1, dir, old, kv); err == nil || !strings.Contains(err.Error(), "old parent") {
		t.Fatalf("relocation without old parent held: %v", err)
	}
	// Missing: rename lock.
	v, kv, old, dir = mk()
	kv.owned = map[uint64]bool{40: true}
	if _, err := v.VerifyDir(1, dir, old, kv); err == nil || !strings.Contains(err.Error(), "rename lock") {
		t.Fatalf("relocation without rename lock: %v", err)
	}
	// All requirements met.
	v, kv, old, dir = mk()
	kv.owned = map[uint64]bool{40: true}
	kv.renameLock = true
	res, err := v.VerifyDir(1, dir, old, kv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 || res.Changes[0].Action != RelocateIn {
		t.Fatalf("changes: %+v", res.Changes)
	}
}

func TestVerifyDirRejectsUngrantedPages(t *testing.T) {
	v, dev, g, dir := buildDir(t, map[string]uint64{"a": 10})
	in, _, _ := layout.ReadInode(dev, g, dir)
	child := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead, Nlink: 1, Parent: dir}
	layout.WriteInode(dev, g, 10, &child)
	kv := &fakeKV{
		shadows: map[uint64]ShadowInfo{
			dir: {Ino: dir, Type: layout.TypeDir, Perm: in.Perm, Parent: layout.RootIno,
				DataRoot: in.DataRoot, NTails: in.NTails, Committed: true},
		},
		granted: map[uint64]bool{10: true},
		pagesOK: false, // nothing granted
	}
	old := &DirOld{Entries: map[string]uint64{}, Pages: map[uint64]bool{}}
	if _, err := v.VerifyDir(1, dir, old, kv); err == nil || !strings.Contains(err.Error(), "not granted") {
		t.Fatalf("ungranted page accepted: %v", err)
	}
}

func TestParseFileChecks(t *testing.T) {
	dev := pmem.New(256*layout.PageSize, nil)
	g, err := layout.Mkfs(dev, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := &V{Mode: Enhanced, Dev: dev, Geo: g}
	const ino = 3
	mapPage := g.DataStart + 1
	data1 := g.DataStart + 2
	layout.ZeroPage(dev, mapPage)
	layout.SetMapEntry(dev, mapPage, 0, data1)
	in := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead, Nlink: 1, Size: 100, DataRoot: mapPage, Parent: layout.RootIno}
	layout.WriteInode(dev, g, ino, &in)

	fv, err := v.ParseFile(ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Blocks) != 1 || fv.Blocks[0] != data1 {
		t.Fatalf("blocks: %v", fv.Blocks)
	}

	// A pointer beyond the size is rejected.
	layout.SetMapEntry(dev, mapPage, 1, data1+1)
	if _, err := v.ParseFile(ino); err == nil || !strings.Contains(err.Error(), "beyond size") {
		t.Fatalf("trailing pointer accepted: %v", err)
	}
	layout.SetMapEntry(dev, mapPage, 1, 0)

	// A doubly-referenced block is rejected.
	in.Size = 8192
	layout.WriteInode(dev, g, ino, &in)
	layout.SetMapEntry(dev, mapPage, 1, data1)
	if _, err := v.ParseFile(ino); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double block accepted: %v", err)
	}

	// A map-chain cycle is rejected.
	layout.SetMapEntry(dev, mapPage, 1, 0)
	layout.SetNextPage(dev, mapPage, mapPage)
	if _, err := v.ParseFile(ino); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("map cycle accepted: %v", err)
	}
}

func TestVerifyNewInodeParentMismatch(t *testing.T) {
	dev := pmem.New(256*layout.PageSize, nil)
	g, _ := layout.Mkfs(dev, 64, 2)
	v := &V{Mode: Enhanced, Dev: dev, Geo: g}
	in := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead, Nlink: 1, Parent: 7}
	layout.WriteInode(dev, g, 5, &in)
	kv := &fakeKV{pagesOK: true}
	if _, err := v.VerifyNewInode(1, 5, 9, kv); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("parent mismatch accepted: %v", err)
	}
	if _, err := v.VerifyNewInode(1, 5, 7, kv); err != nil {
		t.Fatalf("valid new inode rejected: %v", err)
	}
}
