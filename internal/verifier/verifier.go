// Package verifier implements Trio's trusted userspace integrity
// verifier: when inode ownership moves between applications, it inspects
// the inode's core state in persistent memory and decides whether the
// releasing LibFS's modifications are legitimate.
//
// Two modes reproduce the paper:
//
//   - Original is the verifier as shipped in the Trio artifact. It cannot
//     distinguish a child that was renamed away from one that was deleted,
//     so a legitimate cross-directory rename of a non-empty directory
//     fails invariant I3 on the old parent (§4.1's observed bug).
//   - Enhanced is the ArckFS+ verifier: shadow inodes carry a parent
//     pointer, relocations into a new parent are verified per-operation
//     (old parent held, no descendant cycles, global rename lock held for
//     directories), and the parent pointer is advanced only when the new
//     parent's verification passes.
//
// The verifier never mutates anything: it returns a Result describing the
// shadow-state and allocation updates the kernel should apply.
package verifier

import (
	"fmt"
	"sync/atomic"

	"arckfs/internal/costmodel"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
)

// Mode selects the artifact or the patched verifier.
type Mode int

const (
	// Original is the Trio-artifact verifier (exhibits §4.1).
	Original Mode = iota
	// Enhanced is the ArckFS+ verifier.
	Enhanced
)

// ShadowInfo is the kernel's ground truth about one inode, as the
// verifier is allowed to see it.
type ShadowInfo struct {
	Ino        uint64
	Type       uint16
	Perm       uint16
	UID, GID   uint32
	Parent     uint64
	ChildCount uint32
	Committed  bool
	DataRoot   uint64
	NTails     uint16
}

// KernelView is the verifier's read-only window into kernel state.
type KernelView interface {
	// Shadow returns the shadow record of a committed or pending inode.
	Shadow(ino uint64) (ShadowInfo, bool)
	// InodeGrantedTo reports whether ino is a fresh inode number granted
	// to app and not yet committed.
	InodeGrantedTo(app int64, ino uint64) bool
	// PageUsableBy reports whether app may introduce page into inode
	// ino's structure: the page is granted to app, or already owned by
	// ino.
	PageUsableBy(app int64, ino, page uint64) bool
	// OwnedBy reports whether app currently holds ino.
	OwnedBy(app int64, ino uint64) bool
	// OwnedByOther reports whether some application other than app
	// currently holds ino.
	OwnedByOther(app int64, ino uint64) bool
	// HoldsRenameLock reports whether app holds the global rename lease.
	HoldsRenameLock(app int64) bool
	// IsDescendant reports whether node is anc itself or lies below anc
	// in the verified tree.
	IsDescendant(node, anc uint64) bool
}

// Stats counts the verifier's work units: dentry records and pages
// scanned during core-state parsing. Telemetry-only; the simulated
// verification latency is charged through Cost.
type Stats struct {
	Dentries atomic.Int64
	Pages    atomic.Int64
}

// V is a verifier instance.
type V struct {
	Mode  Mode
	Dev   *pmem.Device
	Geo   layout.Geometry
	Cost  *costmodel.Model
	Stats Stats
}

// --- Core-state parsing ----------------------------------------------------

// DirView is the parsed core state of a directory.
type DirView struct {
	Inode   layout.Inode
	Entries map[string]layout.Dentry
	// Pages are the dentry log pages (excluding the tail-set page).
	Pages []uint64
	// Records counts every record slot scanned (live and dead), the
	// verifier's work unit.
	Records int
}

// FileView is the parsed core state of a regular file.
type FileView struct {
	Inode layout.Inode
	// Blocks holds one entry per block the size implies; zero = hole.
	Blocks   []uint64
	MapPages []uint64
}

// ParseDir reads and structurally validates directory ino's core state.
func (v *V) ParseDir(ino uint64) (*DirView, error) {
	in, ok, corrupt := layout.ReadInode(v.Dev, v.Geo, ino)
	if corrupt {
		return nil, fmt.Errorf("inode %d: corrupt record", ino)
	}
	if !ok || in.Type != layout.TypeDir {
		return nil, fmt.Errorf("inode %d: not a directory", ino)
	}
	if in.DataRoot == 0 || in.DataRoot >= v.Geo.PageCount {
		return nil, fmt.Errorf("inode %d: tail-set page %d out of range", ino, in.DataRoot)
	}
	nt := layout.TailCount(v.Dev, in.DataRoot)
	if nt != int(in.NTails) || nt <= 0 || nt > layout.MaxTails {
		return nil, fmt.Errorf("inode %d: tail count %d disagrees with inode (%d)", ino, nt, in.NTails)
	}
	dv := &DirView{Inode: in, Entries: make(map[string]layout.Dentry)}
	seenPages := map[uint64]bool{}
	inoSeen := map[uint64]string{}
	for t := 0; t < nt; t++ {
		head := layout.TailHead(v.Dev, in.DataRoot, t)
		// Bounded walk: detect page cycles and out-of-range pages.
		for p := head; p != 0; p = layout.NextPage(v.Dev, p) {
			if p < v.Geo.DataStart || p >= v.Geo.PageCount {
				return nil, fmt.Errorf("inode %d: log page %d out of range", ino, p)
			}
			if seenPages[p] {
				return nil, fmt.Errorf("inode %d: log page %d linked twice", ino, p)
			}
			seenPages[p] = true
			dv.Pages = append(dv.Pages, p)
		}
		if head == 0 {
			continue
		}
		var scanErr error
		_, _, corrupt := layout.ScanTail(v.Dev, head, func(d layout.Dentry) bool {
			dv.Records++
			if !d.Live {
				return true
			}
			if !layout.ValidName(d.Name) {
				scanErr = fmt.Errorf("inode %d: invalid name %q", ino, d.Name)
				return false
			}
			if _, dup := dv.Entries[d.Name]; dup {
				scanErr = fmt.Errorf("inode %d: duplicate name %q", ino, d.Name)
				return false
			}
			if prev, dup := inoSeen[d.Ino]; dup {
				scanErr = fmt.Errorf("inode %d: inode %d linked as both %q and %q", ino, d.Ino, prev, d.Name)
				return false
			}
			inoSeen[d.Ino] = d.Name
			dv.Entries[d.Name] = d
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
		if corrupt {
			return nil, fmt.Errorf("inode %d: corrupt dentry record (torn commit?)", ino)
		}
	}
	v.Cost.VerifyDentries(dv.Records)
	v.Cost.VerifyPages(len(dv.Pages) + 1)
	v.Stats.Dentries.Add(int64(dv.Records))
	v.Stats.Pages.Add(int64(len(dv.Pages) + 1))
	return dv, nil
}

// ParseFile reads and structurally validates file ino's core state.
func (v *V) ParseFile(ino uint64) (*FileView, error) {
	in, ok, corrupt := layout.ReadInode(v.Dev, v.Geo, ino)
	if corrupt {
		return nil, fmt.Errorf("inode %d: corrupt record", ino)
	}
	if !ok || in.Type != layout.TypeFile {
		return nil, fmt.Errorf("inode %d: not a regular file", ino)
	}
	fv := &FileView{Inode: in}
	need := layout.BlocksForSize(in.Size)
	seen := map[uint64]bool{}
	page := in.DataRoot
	idx := 0
	for page != 0 {
		if page < v.Geo.DataStart || page >= v.Geo.PageCount {
			return nil, fmt.Errorf("inode %d: map page %d out of range", ino, page)
		}
		if seen[page] {
			return nil, fmt.Errorf("inode %d: map chain cycle at page %d", ino, page)
		}
		seen[page] = true
		fv.MapPages = append(fv.MapPages, page)
		for i := 0; i < layout.MapEntriesPerPage; i++ {
			b := layout.MapEntry(v.Dev, page, i)
			if idx < need {
				if b != 0 {
					if b < v.Geo.DataStart || b >= v.Geo.PageCount {
						return nil, fmt.Errorf("inode %d: block %d out of range", ino, b)
					}
					if seen[b] {
						return nil, fmt.Errorf("inode %d: block %d referenced twice", ino, b)
					}
					seen[b] = true
				}
				fv.Blocks = append(fv.Blocks, b)
			} else if b != 0 {
				return nil, fmt.Errorf("inode %d: block pointer beyond size at index %d", ino, idx)
			}
			idx++
		}
		page = layout.NextPage(v.Dev, page)
	}
	if len(fv.Blocks) < need {
		return nil, fmt.Errorf("inode %d: map chain too short for size %d", ino, in.Size)
	}
	v.Cost.VerifyPages(len(fv.MapPages))
	v.Stats.Pages.Add(int64(len(fv.MapPages)))
	return fv, nil
}
