package verifier

import (
	"fmt"
	"sort"

	"arckfs/internal/layout"
)

// Verification results feed kernel-side frees, grants, and shadow writes,
// so their order must not depend on Go map iteration: a nondeterministic
// persist schedule would make crash-state enumeration (crashmc) flaky.
// sortedEntryNames and sortedPageSet pin the iteration orders.
func sortedEntryNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sortedPageSet(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChildAction classifies a verified change to a directory's children.
type ChildAction int

const (
	// AddNew links a freshly granted inode: it becomes a pending child
	// (LibFS Rule 1: it must be committed separately, and only counts as
	// connected once this verification passes).
	AddNew ChildAction = iota
	// RelocateIn links an existing committed inode renamed in from
	// another directory (§4.1 patch): the kernel advances the child's
	// shadow parent pointer.
	RelocateIn
	// RemoveFile unlinks a regular file; the kernel frees its inode and
	// pages.
	RemoveFile
	// RemoveEmptyDir removes a directory with no verified children.
	RemoveEmptyDir
	// RenamedAway explains a missing child whose shadow parent already
	// points elsewhere: nothing to do (the relocation was verified when
	// the new parent committed).
	RenamedAway
)

// ChildChange is one verified delta to a directory's entry set.
type ChildChange struct {
	Name   string
	Ino    uint64
	Action ChildAction
}

// DirOld is the kernel's snapshot of a directory's verified entry set and
// page set, taken when the inode was acquired (or last committed).
type DirOld struct {
	Entries map[string]uint64
	Pages   map[uint64]bool
}

// DirResult is the outcome of a successful directory verification.
type DirResult struct {
	Changes    []ChildChange
	NewPages   []uint64
	FreedPages []uint64
	// Size/MTime pass through to the shadow record.
	Inode layout.Inode
	View  *DirView
}

// FailError marks a verification rejection (as opposed to an internal
// error); the kernel applies its corruption policy on it.
type FailError struct {
	Ino    uint64
	Reason string
}

func (e *FailError) Error() string {
	return fmt.Sprintf("verification of inode %d failed: %s", e.Ino, e.Reason)
}

func fail(ino uint64, format string, args ...any) error {
	return &FailError{Ino: ino, Reason: fmt.Sprintf(format, args...)}
}

// VerifyDir checks directory ino as released (or committed) by app
// against the snapshot old and the kernel's shadow state.
func (v *V) VerifyDir(app int64, ino uint64, old *DirOld, kv KernelView) (*DirResult, error) {
	sh, ok := kv.Shadow(ino)
	if !ok {
		return nil, fail(ino, "no shadow record")
	}
	dv, err := v.ParseDir(ino)
	if err != nil {
		return nil, fail(ino, "structural: %v", err)
	}
	in := dv.Inode
	// Immutable attributes: a LibFS may change size and times, nothing
	// else.
	if in.Perm != sh.Perm || in.UID != sh.UID || in.GID != sh.GID {
		return nil, fail(ino, "permission or ownership fields changed")
	}
	if in.DataRoot != sh.DataRoot || in.NTails != sh.NTails {
		return nil, fail(ino, "directory structure fields changed")
	}
	if in.Parent != sh.Parent {
		return nil, fail(ino, "parent pointer changed by LibFS")
	}

	res := &DirResult{Inode: in, View: dv}

	// Inodes that gained an entry in this directory: a "removal" of one
	// of these under another name is a rename within the directory, not
	// a deletion.
	addedInos := map[uint64]bool{}
	for name, d := range dv.Entries {
		if oldIno, existed := old.Entries[name]; !existed || oldIno != d.Ino {
			addedInos[d.Ino] = true
		}
	}

	// Additions and replacements.
	for _, name := range sortedEntryNames(dv.Entries) {
		d := dv.Entries[name]
		oldIno, existed := old.Entries[name]
		if existed && oldIno == d.Ino {
			continue
		}
		if existed && !addedInos[oldIno] {
			// Same name now points at a different inode: verify the
			// removal of the old target too.
			if err := v.verifyRemoval(app, ino, name, oldIno, kv, res); err != nil {
				return nil, err
			}
		}
		if kv.InodeGrantedTo(app, d.Ino) {
			// A freshly created inode: its record must at least decode
			// and claim this directory as its parent; its contents are
			// verified at its own commit (LibFS Rule 1).
			cin, cok, ccorrupt := layout.ReadInode(v.Dev, v.Geo, d.Ino)
			if ccorrupt || !cok {
				return nil, fail(ino, "entry %q links invalid new inode %d", name, d.Ino)
			}
			if cin.Parent != ino {
				return nil, fail(ino, "new inode %d claims parent %d, linked under %d", d.Ino, cin.Parent, ino)
			}
			if cin.Type != layout.TypeFile && cin.Type != layout.TypeDir {
				return nil, fail(ino, "new inode %d has unknown type %d", d.Ino, cin.Type)
			}
			res.Changes = append(res.Changes, ChildChange{Name: name, Ino: d.Ino, Action: AddNew})
			continue
		}
		csh, cok := kv.Shadow(d.Ino)
		if !cok || !csh.Committed {
			return nil, fail(ino, "entry %q links unknown inode %d", name, d.Ino)
		}
		// An existing committed inode appearing here is a relocation.
		if v.Mode == Enhanced {
			if csh.Parent == ino {
				// Re-link under the same parent (rename within dir was
				// handled as remove+add of the same ino). Accept.
				res.Changes = append(res.Changes, ChildChange{Name: name, Ino: d.Ino, Action: RelocateIn})
				continue
			}
			if !kv.OwnedBy(app, csh.Parent) {
				return nil, fail(ino, "relocation of inode %d: old parent %d not held by releasing LibFS", d.Ino, csh.Parent)
			}
			if kv.IsDescendant(ino, d.Ino) {
				return nil, fail(ino, "relocation of inode %d would create a cycle", d.Ino)
			}
			if csh.Type == layout.TypeDir && !kv.HoldsRenameLock(app) {
				return nil, fail(ino, "directory relocation of inode %d without the global rename lock", d.Ino)
			}
			res.Changes = append(res.Changes, ChildChange{Name: name, Ino: d.Ino, Action: RelocateIn})
		} else {
			// Original verifier: accepts the new link with no relocation
			// protocol — one half of the §4.1 bug.
			res.Changes = append(res.Changes, ChildChange{Name: name, Ino: d.Ino, Action: RelocateIn})
		}
	}

	// Removals.
	for _, name := range sortedEntryNames(old.Entries) {
		oldIno := old.Entries[name]
		if d, still := dv.Entries[name]; still && d.Ino == oldIno {
			continue
		}
		if _, replaced := dv.Entries[name]; replaced {
			continue // handled above as a replacement
		}
		if addedInos[oldIno] {
			continue // renamed within this directory
		}
		if err := v.verifyRemoval(app, ino, name, oldIno, kv, res); err != nil {
			return nil, err
		}
	}

	// Page accounting: every page newly linked into the log must be
	// usable by this app; pages no longer linked are reclaimed.
	cur := map[uint64]bool{}
	for _, p := range dv.Pages {
		cur[p] = true
		if !old.Pages[p] {
			if !kv.PageUsableBy(app, ino, p) {
				return nil, fail(ino, "log page %d not granted to the releasing LibFS", p)
			}
			res.NewPages = append(res.NewPages, p)
		}
	}
	for _, p := range sortedPageSet(old.Pages) {
		if !cur[p] {
			res.FreedPages = append(res.FreedPages, p)
		}
	}
	return res, nil
}

func (v *V) verifyRemoval(app int64, dirIno uint64, name string, childIno uint64, kv KernelView, res *DirResult) error {
	csh, ok := kv.Shadow(childIno)
	if !ok {
		// Shadow already gone (e.g. freed by a previous commit of this
		// directory); nothing to verify.
		return nil
	}
	if kv.OwnedByOther(app, childIno) {
		return fail(dirIno, "entry %q: inode %d is held by another application", name, childIno)
	}
	if csh.Type == layout.TypeFile {
		if csh.Parent != dirIno {
			// The file's verified parent moved: a completed
			// cross-directory file rename (MWRM-style), not a deletion.
			res.Changes = append(res.Changes, ChildChange{Name: name, Ino: childIno, Action: RenamedAway})
			return nil
		}
		res.Changes = append(res.Changes, ChildChange{Name: name, Ino: childIno, Action: RemoveFile})
		return nil
	}
	// Directory child.
	if v.Mode == Enhanced && csh.Parent != dirIno {
		// The §4.1 patch: the child's verified parent pointer moved, so
		// this is the old-parent side of a completed relocation, not a
		// deletion. The Original verifier has no parent pointers for
		// directories and falls through to the I3 check below — the
		// §4.1 bug.
		res.Changes = append(res.Changes, ChildChange{Name: name, Ino: childIno, Action: RenamedAway})
		return nil
	}
	if csh.ChildCount > 0 {
		// Invariant I3: the hierarchy must remain a connected tree, so
		// deleting a non-empty directory is rejected. In Original mode
		// this is exactly where a legitimate relocation fails (§3.1
		// step 4).
		return fail(dirIno, "entry %q: deletion of non-empty directory %d violates I3", name, childIno)
	}
	res.Changes = append(res.Changes, ChildChange{Name: name, Ino: childIno, Action: RemoveEmptyDir})
	return nil
}

// FileOld is the kernel's acquire-time snapshot of a file's verified
// block set.
type FileOld struct {
	Blocks   map[uint64]bool // data blocks (nonzero only)
	MapPages map[uint64]bool
	Size     uint64
}

// FileResult is the outcome of a successful file verification.
type FileResult struct {
	NewPages   []uint64
	FreedPages []uint64
	Inode      layout.Inode
	View       *FileView
}

// VerifyFile checks regular file ino as released by app.
func (v *V) VerifyFile(app int64, ino uint64, old *FileOld, kv KernelView) (*FileResult, error) {
	sh, ok := kv.Shadow(ino)
	if !ok {
		return nil, fail(ino, "no shadow record")
	}
	fv, err := v.ParseFile(ino)
	if err != nil {
		return nil, fail(ino, "structural: %v", err)
	}
	in := fv.Inode
	if in.Perm != sh.Perm || in.UID != sh.UID || in.GID != sh.GID {
		return nil, fail(ino, "permission or ownership fields changed")
	}
	if in.Parent != sh.Parent {
		return nil, fail(ino, "parent pointer changed by LibFS")
	}
	res := &FileResult{Inode: in, View: fv}
	cur := map[uint64]bool{}
	for _, p := range fv.MapPages {
		cur[p] = true
		if !old.MapPages[p] {
			if !kv.PageUsableBy(app, ino, p) {
				return nil, fail(ino, "map page %d not granted to the releasing LibFS", p)
			}
			res.NewPages = append(res.NewPages, p)
		}
	}
	for _, b := range fv.Blocks {
		if b == 0 {
			continue
		}
		cur[b] = true
		if !old.Blocks[b] && !old.MapPages[b] {
			if !kv.PageUsableBy(app, ino, b) {
				return nil, fail(ino, "data block %d not granted to the releasing LibFS", b)
			}
			res.NewPages = append(res.NewPages, b)
		}
	}
	for _, p := range sortedPageSet(old.MapPages) {
		if !cur[p] {
			res.FreedPages = append(res.FreedPages, p)
		}
	}
	for _, b := range sortedPageSet(old.Blocks) {
		if !cur[b] {
			res.FreedPages = append(res.FreedPages, b)
		}
	}
	return res, nil
}

// NewInodeResult describes a verified newly created inode (LibFS Rule 1
// commit).
type NewInodeResult struct {
	Inode layout.Inode
	// Pages the inode's structure uses (tail-set + log pages for a
	// directory, map pages + blocks for a file).
	Pages []uint64
	// PendingChildren are entries inside a new directory that reference
	// other granted inodes: they become pending in turn.
	PendingChildren []ChildChange
	ChildCount      uint32
}

// VerifyNewInode checks a freshly created inode at commit time. parent is
// the verified parent recorded when the parent directory's verification
// accepted the AddNew entry.
func (v *V) VerifyNewInode(app int64, ino, parent uint64, kv KernelView) (*NewInodeResult, error) {
	in, ok, corrupt := layout.ReadInode(v.Dev, v.Geo, ino)
	if corrupt {
		return nil, fail(ino, "corrupt inode record")
	}
	if !ok {
		return nil, fail(ino, "free inode record")
	}
	if in.Parent != parent {
		return nil, fail(ino, "inode parent %d disagrees with verified dentry parent %d", in.Parent, parent)
	}
	res := &NewInodeResult{Inode: in}
	switch in.Type {
	case layout.TypeFile:
		fv, err := v.ParseFile(ino)
		if err != nil {
			return nil, fail(ino, "structural: %v", err)
		}
		for _, p := range fv.MapPages {
			if !kv.PageUsableBy(app, ino, p) {
				return nil, fail(ino, "map page %d not granted", p)
			}
			res.Pages = append(res.Pages, p)
		}
		for _, b := range fv.Blocks {
			if b == 0 {
				continue
			}
			if !kv.PageUsableBy(app, ino, b) {
				return nil, fail(ino, "data block %d not granted", b)
			}
			res.Pages = append(res.Pages, b)
		}
	case layout.TypeDir:
		dv, err := v.ParseDir(ino)
		if err != nil {
			return nil, fail(ino, "structural: %v", err)
		}
		if in.DataRoot < v.Geo.DataStart || !kv.PageUsableBy(app, ino, in.DataRoot) {
			return nil, fail(ino, "tail-set page %d not granted", in.DataRoot)
		}
		res.Pages = append(res.Pages, in.DataRoot)
		for _, p := range dv.Pages {
			if !kv.PageUsableBy(app, ino, p) {
				return nil, fail(ino, "log page %d not granted", p)
			}
			res.Pages = append(res.Pages, p)
		}
		for _, name := range sortedEntryNames(dv.Entries) {
			d := dv.Entries[name]
			if !kv.InodeGrantedTo(app, d.Ino) {
				return nil, fail(ino, "entry %q links inode %d not granted to the LibFS", name, d.Ino)
			}
			res.PendingChildren = append(res.PendingChildren, ChildChange{Name: name, Ino: d.Ino, Action: AddNew})
		}
		res.ChildCount = uint32(len(dv.Entries))
	default:
		return nil, fail(ino, "unknown inode type %d", in.Type)
	}
	return res, nil
}
