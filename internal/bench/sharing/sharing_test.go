package sharing

import (
	"testing"

	"arckfs/internal/core"
)

func newSys(t *testing.T, size int64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{DevSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestArckWritePingPong(t *testing.T) {
	res, err := ArckWrite(newSys(t, 64<<20), 2<<20, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.GiBps <= 0 || res.System != "arckfs+" {
		t.Fatalf("%+v", res)
	}
}

func TestArckWriteTrustGroup(t *testing.T) {
	res, err := ArckWrite(newSys(t, 64<<20), 2<<20, true, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "arckfs+-trust-group" || res.GiBps <= 0 {
		t.Fatalf("%+v", res)
	}
}

// TestSharingCostGrowsWithFileSize is the Table-4 shape: per-transfer
// verification cost scales with the shared file's metadata, so a larger
// file yields lower ping-pong throughput, while the trust group is
// insensitive to it.
func TestSharingCostGrowsWithFileSize(t *testing.T) {
	small, err := ArckWrite(newSys(t, 128<<20), 2<<20, false, 60)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ArckWrite(newSys(t, 128<<20), 64<<20, false, 60)
	if err != nil {
		t.Fatal(err)
	}
	if big.GiBps >= small.GiBps {
		t.Fatalf("sharing cost did not grow with size: 2MB=%.3f GiB/s, 64MB=%.3f GiB/s", small.GiBps, big.GiBps)
	}
	trustBig, err := ArckWrite(newSys(t, 128<<20), 64<<20, true, 60)
	if err != nil {
		t.Fatal(err)
	}
	if trustBig.GiBps <= big.GiBps {
		t.Fatalf("trust group did not help: verify=%.3f trust=%.3f GiB/s", big.GiBps, trustBig.GiBps)
	}
}

func TestArckCreateTurns(t *testing.T) {
	res, err := ArckCreate(newSys(t, 64<<20), 10, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCreates != 60 || res.MicrosPerOp <= 0 {
		t.Fatalf("%+v", res)
	}
	trust, err := ArckCreate(newSys(t, 64<<20), 10, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if trust.TotalCreates != 60 {
		t.Fatalf("%+v", trust)
	}
}

func TestNovaComparators(t *testing.T) {
	w, err := NovaWrite(nil, 64<<20, 2<<20, 50)
	if err != nil || w.GiBps <= 0 {
		t.Fatalf("%+v, %v", w, err)
	}
	c, err := NovaCreate(nil, 64<<20, 10, 6)
	if err != nil || c.TotalCreates != 60 {
		t.Fatalf("%+v, %v", c, err)
	}
}
