// Package sharing reproduces the sharing-cost experiment of the paper's
// Table 4: two applications alternately updating a shared file or a
// shared directory. On ArckFS+ every ownership transfer triggers
// unmapping, integrity verification (cost proportional to the inode's
// metadata size), and auxiliary-state rebuild; a trust group removes the
// verification; NOVA, as a kernel file system, shares for free but pays
// a syscall on every operation.
package sharing

import (
	"fmt"
	"time"

	"arckfs/internal/baseline/nova"
	"arckfs/internal/core"
	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/libfs"
)

// WriteResult is one Table-4 top-half cell.
type WriteResult struct {
	System   string
	FileSize uint64
	GiBps    float64
}

// CreateResult is one Table-4 bottom-half cell.
type CreateResult struct {
	System       string
	Batch        int
	MicrosPerOp  float64
	TotalCreates int
}

// ArckWrite measures 4 KiB-write throughput to a shared file of fileSize
// bytes, ping-ponged between two applications. trust puts them in one
// trust group.
func ArckWrite(sys *core.System, fileSize uint64, trust bool, iters int) (WriteResult, error) {
	app1 := sys.NewApp(0, 0)
	app2 := sys.NewApp(0, 0)
	if trust {
		if _, err := sys.Ctrl.NewTrustGroup(app1.App(), app2.App()); err != nil {
			return WriteResult{}, err
		}
	}
	t1 := app1.NewThread(0).(*libfs.Thread)
	if err := t1.Create("/big"); err != nil {
		return WriteResult{}, err
	}
	fd1, err := t1.Open("/big")
	if err != nil {
		return WriteResult{}, err
	}
	blob := make([]byte, 1<<20)
	for off := uint64(0); off < fileSize; off += uint64(len(blob)) {
		n := uint64(len(blob))
		if off+n > fileSize {
			n = fileSize - off
		}
		if _, err := t1.WriteAt(fd1, blob[:n], int64(off)); err != nil {
			return WriteResult{}, err
		}
	}
	st, err := t1.Stat("/big")
	if err != nil {
		return WriteResult{}, err
	}
	ino := st.Ino
	if err := app1.ReleaseAll(); err != nil {
		return WriteResult{}, err
	}
	t2 := app2.NewThread(0).(*libfs.Thread)
	fd2, err := t2.Open("/big")
	if err != nil {
		return WriteResult{}, err
	}
	if !trust {
		// Start from kernel-held state so the first writer's acquire
		// succeeds without waiting on app2's lease.
		if err := app2.ReleaseInode(ino); err != nil {
			return WriteResult{}, err
		}
	}

	apps := []*libfs.FS{app1, app2}
	threads := []*libfs.Thread{t1, t2}
	fds := []fsapi.FD{fd1, fd2}
	buf := make([]byte, 4096)
	nblocks := int(fileSize / 4096)
	start := time.Now()
	for i := 0; i < iters; i++ {
		k := i % 2
		off := int64((i*7919)%nblocks) * 4096
		if _, err := threads[k].WriteAt(fds[k], buf, off); err != nil {
			return WriteResult{}, fmt.Errorf("iter %d app %d: %w", i, k, err)
		}
		if !trust {
			// Voluntary release so the peer's next acquire succeeds; the
			// kernel verifies the whole file map on this transfer.
			if err := apps[k].ReleaseInode(ino); err != nil {
				return WriteResult{}, fmt.Errorf("release %d: %w", i, err)
			}
		}
	}
	el := time.Since(start)
	name := "arckfs+"
	if trust {
		name = "arckfs+-trust-group"
	}
	return WriteResult{
		System:   name,
		FileSize: fileSize,
		GiBps:    float64(iters) * 4096 / (1 << 30) / el.Seconds(),
	}, nil
}

// ArckCreate measures per-create latency in a shared directory: the two
// applications alternate turns of batch creates each, transferring
// directory ownership between turns.
func ArckCreate(sys *core.System, batch, turns int, trust bool) (CreateResult, error) {
	app1 := sys.NewApp(0, 0)
	app2 := sys.NewApp(0, 0)
	if trust {
		if _, err := sys.Ctrl.NewTrustGroup(app1.App(), app2.App()); err != nil {
			return CreateResult{}, err
		}
	}
	t1 := app1.NewThread(0).(*libfs.Thread)
	if err := t1.Mkdir("/shared"); err != nil {
		return CreateResult{}, err
	}
	st, err := t1.Stat("/shared")
	if err != nil {
		return CreateResult{}, err
	}
	dirIno := st.Ino
	if err := app1.ReleaseAll(); err != nil {
		return CreateResult{}, err
	}
	t2 := app2.NewThread(0).(*libfs.Thread)

	apps := []*libfs.FS{app1, app2}
	threads := []*libfs.Thread{t1, t2}
	total := 0
	start := time.Now()
	for turn := 0; turn < turns; turn++ {
		k := turn % 2
		for i := 0; i < batch; i++ {
			p := fmt.Sprintf("/shared/t%d-i%d", turn, i)
			if err := threads[k].Create(p); err != nil {
				return CreateResult{}, fmt.Errorf("turn %d create %d: %w", turn, i, err)
			}
			total++
		}
		if !trust {
			if err := apps[k].ReleaseInode(dirIno); err != nil {
				return CreateResult{}, fmt.Errorf("turn %d release: %w", turn, err)
			}
		}
	}
	el := time.Since(start)
	name := "arckfs+"
	if trust {
		name = "arckfs+-trust-group"
	}
	return CreateResult{
		System:       name,
		Batch:        batch,
		MicrosPerOp:  el.Seconds() * 1e6 / float64(total),
		TotalCreates: total,
	}, nil
}

// NovaWrite is the kernel-file-system comparator for the write rows: two
// threads of one NOVA instance, no ownership concept.
func NovaWrite(cost *costmodel.Model, devSize int64, fileSize uint64, iters int) (WriteResult, error) {
	fs, err := nova.New(devSize, cost)
	if err != nil {
		return WriteResult{}, err
	}
	t1 := fs.NewThread(0)
	t2 := fs.NewThread(1)
	if err := t1.Create("/big"); err != nil {
		return WriteResult{}, err
	}
	fd1, _ := t1.Open("/big")
	fd2, _ := t2.Open("/big")
	blob := make([]byte, 1<<20)
	for off := uint64(0); off < fileSize; off += uint64(len(blob)) {
		if _, err := t1.WriteAt(fd1, blob, int64(off)); err != nil {
			return WriteResult{}, err
		}
	}
	buf := make([]byte, 4096)
	nblocks := int(fileSize / 4096)
	threads := []fsapi.Thread{t1, t2}
	fds := []fsapi.FD{fd1, fd2}
	start := time.Now()
	for i := 0; i < iters; i++ {
		k := i % 2
		off := int64((i*7919)%nblocks) * 4096
		if _, err := threads[k].WriteAt(fds[k], buf, off); err != nil {
			return WriteResult{}, err
		}
	}
	el := time.Since(start)
	return WriteResult{System: "nova", FileSize: fileSize, GiBps: float64(iters) * 4096 / (1 << 30) / el.Seconds()}, nil
}

// NovaCreate is the comparator for the create rows.
func NovaCreate(cost *costmodel.Model, devSize int64, batch, turns int) (CreateResult, error) {
	fs, err := nova.New(devSize, cost)
	if err != nil {
		return CreateResult{}, err
	}
	t1 := fs.NewThread(0)
	t2 := fs.NewThread(1)
	if err := t1.Mkdir("/shared"); err != nil {
		return CreateResult{}, err
	}
	threads := []fsapi.Thread{t1, t2}
	total := 0
	start := time.Now()
	for turn := 0; turn < turns; turn++ {
		k := turn % 2
		for i := 0; i < batch; i++ {
			if err := threads[k].Create(fmt.Sprintf("/shared/t%d-i%d", turn, i)); err != nil {
				return CreateResult{}, err
			}
			total++
		}
	}
	el := time.Since(start)
	return CreateResult{System: "nova", Batch: batch, MicrosPerOp: el.Seconds() * 1e6 / float64(total), TotalCreates: total}, nil
}
