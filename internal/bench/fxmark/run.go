package fxmark

import (
	"fmt"

	"arckfs/internal/fsapi"
	"arckfs/internal/harness"
)

// RunWorkload sets up and executes one workload at the given thread
// count, returning the aggregate result.
func RunWorkload(fs fsapi.FS, w Workload, threads, opsPerThread int, cfg Config) (harness.Result, error) {
	if w.Name == "MRPM" {
		SetWorkerCount(threads)
	}
	if err := w.Setup(fs, threads, cfg); err != nil {
		return harness.Result{}, fmt.Errorf("%s setup: %w", w.Name, err)
	}
	workers := make([]func(i int) error, threads)
	for tid := 0; tid < threads; tid++ {
		op, err := w.Worker(fs, tid, cfg)
		if err != nil {
			return harness.Result{}, fmt.Errorf("%s worker %d: %w", w.Name, tid, err)
		}
		workers[tid] = op
	}
	res := harness.RunCounted(harness.SourceOf(fs), fs.Name(), w.Name, threads, opsPerThread, func(tid, i int) error {
		return workers[tid](i)
	})
	if w.Data {
		res.Bytes = res.Ops * 4096
	}
	return res, res.Err
}
