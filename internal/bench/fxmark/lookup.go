package fxmark

import (
	"fmt"
	"math/rand"

	"arckfs/internal/fsapi"
)

// Lookup holds the data-plane read-path workloads this reproduction adds
// to the FxMark set (like Leases, they are not part of the original
// suite, so Table 2 and the paper's figures never see them).
//
//	MRSL  Open, stat, and read a random file of a shared directory.
//
// MRSL is the read-mostly cell the original suite lacks: DRBL reads a
// private file through a long-lived descriptor (no lookups), while the
// MR* metadata workloads never touch file data. MRSL does both against
// one shared directory, so every iteration walks the same bucket chains
// and block indexes from every thread concurrently. Under the lock-free
// data plane the whole loop takes no lock (the per-op read_locks delta
// is pinned at zero); under -serial-data each open and read serializes
// on the bucket and inode locks, which is the scaling gap the
// EXPERIMENTS.md ablation measures.
var Lookup = []Workload{
	{
		Name: "MRSL",
		Desc: "Open, stat, and read a 4K block of a shared-dir file",
		Data: true,
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			if err := mkdirAll(t, "/shared-lookup"); err != nil {
				return err
			}
			blob := make([]byte, 4096)
			for i := 0; i < cfg.DirFiles; i++ {
				p := fmt.Sprintf("/shared-lookup/f%d", i)
				if err := t.Create(p); err == fsapi.ErrExist {
					continue
				} else if err != nil {
					return err
				}
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				if _, err := t.WriteAt(fd, blob, 0); err != nil {
					return err
				}
				if err := t.Close(fd); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			rng := rand.New(rand.NewSource(int64(tid)*104729 + 3))
			buf := make([]byte, 4096)
			nfiles := cfg.DirFiles
			return func(i int) error {
				p := fmt.Sprintf("/shared-lookup/f%d", rng.Intn(nfiles))
				if _, err := t.Stat(p); err != nil {
					return err
				}
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				if _, err := t.ReadAt(fd, buf, 0); err != nil {
					t.Close(fd)
					return err
				}
				return t.Close(fd)
			}, nil
		},
	},
}
