package fxmark

import "arckfs/internal/fsapi"

// Releaser is implemented by file systems with an explicit voluntary
// ownership release (the ArckFS LibFS). Systems without one run MWRA as
// a plain reopen+overwrite, which keeps the cells comparable: the delta
// ArckFS pays is exactly its release/re-acquire crossings.
type Releaser interface {
	ReleaseInode(ino uint64) error
}

// Leases holds the control-plane workloads this reproduction adds to the
// FxMark set (they are not part of the original suite, so Table 2 and
// the paper's figures never see them).
//
//	MWRA  Release a private file, then reopen and overwrite it.
//
// MWRA is the grant-lease round trip: every iteration voluntarily
// returns the file to the kernel and immediately wants it back. With
// leases the release leaves the mapping dormant and the re-acquire is a
// CAS in userspace; without them (ArckFS, or -serial-kernel) each
// iteration pays a release and an acquire crossing.
var Leases = []Workload{
	{
		Name: "MWRA",
		Desc: "Release a private file, then reopen and overwrite it",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			blob := make([]byte, 4096)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
				p := privDir(tid) + "/lease"
				if err := t.Create(p); err != nil && err != fsapi.ErrExist {
					return err
				}
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				// Pre-size the file so the measured loop never allocates
				// pages: the steady state isolates the ownership churn.
				if _, err := t.WriteAt(fd, blob, 0); err != nil {
					return err
				}
				if err := t.Close(fd); err != nil {
					return err
				}
			}
			// Hand the whole fileset to the kernel once (parents before
			// children, satisfying Rule 1) so the measured loop releases
			// inodes the kernel already verified; without this the very
			// first release of a fresh file would be a Rule-1 violation.
			if ra, ok := fs.(interface{ ReleaseAll() error }); ok {
				if err := ra.ReleaseAll(); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := privDir(tid) + "/lease"
			st, err := t.Stat(p)
			if err != nil {
				return nil, err
			}
			rel, _ := fs.(Releaser)
			blob := make([]byte, 4096)
			return func(i int) error {
				if rel != nil {
					if err := rel.ReleaseInode(st.Ino); err != nil {
						return err
					}
				}
				// Reopen rather than reusing the fd: the unpatched ArckFS
				// drops the released inode from its cache, and a stale
				// descriptor would fault on the revoked mapping instead of
				// re-acquiring.
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				if _, err := t.WriteAt(fd, blob, 0); err != nil {
					t.Close(fd)
					return err
				}
				return t.Close(fd)
			}, nil
		},
	},
}
