// Package fxmark reimplements the FxMark microbenchmark suite (Min et
// al., ATC 2016) in the variant the Trio artifact ships and the ArckFS+
// paper uses: worker "processes" are threads inside one library file
// system (introducing intra-process synchronization), the MWCM workload
// omits the post-create write, and DWTL uses a reduced file size.
//
// Table 3 of the paper defines the metadata workloads:
//
//	DWTL        Reduce the size of a private file by 4K.
//	MRP(L/M/H)  Open a (private/random/same) file in five-depth dirs.
//	MRD(L/M)    Enumerate files of a (private/shared) directory.
//	MWC(L/M)    Create an empty file in a (private/shared) dir.
//	MWU(L/M)    Unlink an empty file in a (private/shared) dir.
//	MWRL        Rename a private file in a private dir.
//	MWRM        Move a private file to a shared dir.
//
// Data-operation workloads (DRBL/DRBM/DWOL/DWAL) cover §5.1/§5.2's data
// points.
package fxmark

import (
	"fmt"
	"math/rand"

	"arckfs/internal/fsapi"
)

// Config sizes the workloads.
type Config struct {
	// DWTLFileSize is the initial private-file size DWTL shrinks
	// (the paper uses 256 MB; the default here is smaller so the
	// simulated device fits in RAM — the shape is unaffected).
	DWTLFileSize uint64
	// DirFiles is the number of files per enumerated directory (MRDL/M).
	DirFiles int
	// DataFileSize is the size of data-op files.
	DataFileSize uint64
}

// Defaults returns laptop-scale sizes.
func Defaults() Config {
	return Config{
		DWTLFileSize: 4 << 20,
		DirFiles:     64,
		DataFileSize: 1 << 20,
	}
}

// Workload is one FxMark microbenchmark.
type Workload struct {
	Name string
	Desc string
	// Data marks data-operation workloads (bytes throughput matters).
	Data bool
	// Setup prepares the fileset for the given worker count.
	Setup func(fs fsapi.FS, threads int, cfg Config) error
	// Worker returns the per-thread operation closure. The closure is
	// invoked with an increasing iteration counter.
	Worker func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error)
}

func privDir(tid int) string { return fmt.Sprintf("/priv%d", tid) }

// deepDir builds the five-depth directory path of MRP*.
func deepDir(tid int) string {
	return fmt.Sprintf("/d0-%d/d1/d2/d3/d4", tid)
}

func mkdirAll(t fsapi.Thread, path string) error {
	comps := fsapi.Components(path)
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if err := t.Mkdir(cur); err != nil && err != fsapi.ErrExist {
			return err
		}
	}
	return nil
}

// setupDeepDirs builds one five-depth private directory with one file
// per worker (the MRPL/MRPM fileset).
func setupDeepDirs(fs fsapi.FS, threads int, cfg Config) error {
	t := fs.NewThread(0)
	for tid := 0; tid < threads; tid++ {
		if err := mkdirAll(t, deepDir(tid)); err != nil {
			return err
		}
		if err := t.Create(deepDir(tid) + "/file"); err != nil && err != fsapi.ErrExist {
			return err
		}
	}
	return nil
}

// Metadata lists the twelve Table-3 workloads in the paper's order.
var Metadata = []Workload{
	{
		Name: "DWTL",
		Desc: "Reduce the size of a private file by 4K",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			blob := make([]byte, 1<<20)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
				p := privDir(tid) + "/trunc"
				if err := t.Create(p); err != nil {
					return err
				}
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				for off := uint64(0); off < cfg.DWTLFileSize; off += uint64(len(blob)) {
					n := uint64(len(blob))
					if off+n > cfg.DWTLFileSize {
						n = cfg.DWTLFileSize - off
					}
					if _, err := t.WriteAt(fd, blob[:n], int64(off)); err != nil {
						return err
					}
				}
				t.Close(fd)
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := privDir(tid) + "/trunc"
			size := cfg.DWTLFileSize
			return func(i int) error {
				if size < 4096 {
					// Re-extend and keep truncating; only shrinks count
					// in spirit, but the op stream stays uniform.
					size = cfg.DWTLFileSize
					return t.Truncate(p, size)
				}
				size -= 4096
				return t.Truncate(p, size)
			}, nil
		},
	},
	{
		Name:  "MRPL",
		Desc:  "Open a private file in five-depth dirs",
		Setup: setupDeepDirs,
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := deepDir(tid) + "/file"
			return func(i int) error {
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				return t.Close(fd)
			}, nil
		},
	},
	{
		Name:  "MRPM",
		Desc:  "Open a random file in five-depth dirs",
		Setup: setupDeepDirs, // same fileset as MRPL
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 13))
			return func(i int) error {
				victim := rng.Intn(workerCount(fs))
				fd, err := t.Open(deepDir(victim) + "/file")
				if err != nil {
					return err
				}
				return t.Close(fd)
			}, nil
		},
	},
	{
		Name: "MRPH",
		Desc: "Open the same file in five-depth dirs",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			if err := mkdirAll(t, deepDir(0)); err != nil {
				return err
			}
			err := t.Create(deepDir(0) + "/file")
			if err == fsapi.ErrExist {
				return nil
			}
			return err
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := deepDir(0) + "/file"
			return func(i int) error {
				fd, err := t.Open(p)
				if err != nil {
					return err
				}
				return t.Close(fd)
			}, nil
		},
	},
	{
		Name: "MRDL",
		Desc: "Enumerate files of a private directory",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
				for i := 0; i < cfg.DirFiles; i++ {
					if err := t.Create(fmt.Sprintf("%s/f%d", privDir(tid), i)); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := privDir(tid)
			return func(i int) error {
				_, err := t.Readdir(p)
				return err
			}, nil
		},
	},
	{
		Name: "MRDM",
		Desc: "Enumerate files of a shared directory",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			if err := mkdirAll(t, "/shared-enum"); err != nil {
				return err
			}
			for i := 0; i < cfg.DirFiles; i++ {
				if err := t.Create(fmt.Sprintf("/shared-enum/f%d", i)); err != nil && err != fsapi.ErrExist {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			return func(i int) error {
				_, err := t.Readdir("/shared-enum")
				return err
			}, nil
		},
	},
	{
		Name: "MWCL",
		Desc: "Create an empty file in a private dir",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			dir := privDir(tid)
			return func(i int) error {
				// Bound the fileset: recycle names with an unlink every
				// other op, as the artifact's bounded variant does.
				p := fmt.Sprintf("%s/c%d", dir, i%4096)
				if err := t.Create(p); err == fsapi.ErrExist {
					if err := t.Unlink(p); err != nil {
						return err
					}
					return t.Create(p)
				} else if err != nil {
					return err
				}
				return nil
			}, nil
		},
	},
	{
		Name: "MWCM",
		Desc: "Create an empty file in a shared dir (no write, per the artifact)",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			return mkdirAll(t, "/shared-create")
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			return func(i int) error {
				p := fmt.Sprintf("/shared-create/t%d-c%d", tid, i%4096)
				if err := t.Create(p); err == fsapi.ErrExist {
					if err := t.Unlink(p); err != nil && err != fsapi.ErrNotExist {
						return err
					}
					return t.Create(p)
				} else if err != nil {
					return err
				}
				return nil
			}, nil
		},
	},
	{
		Name: "MWUL",
		Desc: "Unlink an empty file in a private dir",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			dir := privDir(tid)
			return func(i int) error {
				p := fmt.Sprintf("%s/u%d", dir, i%1024)
				if err := t.Create(p); err != nil && err != fsapi.ErrExist {
					return err
				}
				return t.Unlink(p)
			}, nil
		},
	},
	{
		Name: "MWUM",
		Desc: "Unlink an empty file in a shared dir",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			return mkdirAll(t, "/shared-unlink")
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			return func(i int) error {
				p := fmt.Sprintf("/shared-unlink/t%d-u%d", tid, i%1024)
				if err := t.Create(p); err != nil && err != fsapi.ErrExist {
					return err
				}
				return t.Unlink(p)
			}, nil
		},
	},
	{
		Name: "MWRL",
		Desc: "Rename a private file in a private dir",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
				if err := t.Create(privDir(tid) + "/ra"); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			a, b := privDir(tid)+"/ra", privDir(tid)+"/rb"
			return func(i int) error {
				if i%2 == 0 {
					return t.Rename(a, b)
				}
				return t.Rename(b, a)
			}, nil
		},
	},
	{
		Name: "MWRM",
		Desc: "Move a private file to a shared dir",
		Setup: func(fs fsapi.FS, threads int, cfg Config) error {
			t := fs.NewThread(0)
			if err := mkdirAll(t, "/shared-move"); err != nil {
				return err
			}
			for tid := 0; tid < threads; tid++ {
				if err := mkdirAll(t, privDir(tid)); err != nil {
					return err
				}
			}
			return nil
		},
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			dir := privDir(tid)
			return func(i int) error {
				src := fmt.Sprintf("%s/m%d", dir, i%1024)
				dst := fmt.Sprintf("/shared-move/t%d-m%d", tid, i%1024)
				if err := t.Create(src); err != nil && err != fsapi.ErrExist {
					return err
				}
				if err := t.Unlink(dst); err != nil && err != fsapi.ErrNotExist {
					return err
				}
				return t.Rename(src, dst)
			}, nil
		},
	},
}

// workerCount recovers the intended worker count for MRPM. The fileset
// is created for the run's thread count; benchmarks set this before
// running via SetWorkerCount.
var mrpmWorkers = 1

// SetWorkerCount tells MRPM how many private deep-dir filesets exist.
func SetWorkerCount(n int) {
	if n > 0 {
		mrpmWorkers = n
	}
}

func workerCount(fsapi.FS) int { return mrpmWorkers }

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range Metadata {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range DataOps {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range Leases {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range Lookup {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// DataOps are the data-path workloads used by §5.1/§5.2.
var DataOps = []Workload{
	{
		Name: "DRBL", Desc: "Read a 4K block of a private file", Data: true,
		Setup:  setupDataFiles,
		Worker: dataWorker(false, false),
	},
	{
		Name: "DRBM", Desc: "Read a 4K block of a shared file", Data: true,
		Setup:  setupSharedDataFile,
		Worker: dataWorker(false, true),
	},
	{
		Name: "DWOL", Desc: "Overwrite a 4K block of a private file", Data: true,
		Setup:  setupDataFiles,
		Worker: dataWorker(true, false),
	},
	{
		Name: "DWAL", Desc: "Append 4K to a private file", Data: true,
		Setup: setupDataFiles,
		Worker: func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
			t := fs.NewThread(tid)
			p := privDir(tid) + "/data"
			fd, err := t.Open(p)
			if err != nil {
				return nil, err
			}
			blob := make([]byte, 4096)
			off := int64(cfg.DataFileSize)
			return func(i int) error {
				// Bound growth: wrap the append window.
				if off > int64(cfg.DataFileSize)+(64<<20) {
					if err := t.Truncate(p, cfg.DataFileSize); err != nil {
						return err
					}
					off = int64(cfg.DataFileSize)
				}
				_, err := t.WriteAt(fd, blob, off)
				off += 4096
				return err
			}, nil
		},
	},
}

func setupDataFiles(fs fsapi.FS, threads int, cfg Config) error {
	t := fs.NewThread(0)
	blob := make([]byte, 1<<20)
	for tid := 0; tid < threads; tid++ {
		if err := mkdirAll(t, privDir(tid)); err != nil {
			return err
		}
		p := privDir(tid) + "/data"
		if err := t.Create(p); err != nil {
			return err
		}
		fd, err := t.Open(p)
		if err != nil {
			return err
		}
		for off := uint64(0); off < cfg.DataFileSize; off += uint64(len(blob)) {
			if _, err := t.WriteAt(fd, blob, int64(off)); err != nil {
				return err
			}
		}
		t.Close(fd)
	}
	return nil
}

func setupSharedDataFile(fs fsapi.FS, threads int, cfg Config) error {
	t := fs.NewThread(0)
	if err := t.Create("/shared-data"); err != nil && err != fsapi.ErrExist {
		return err
	}
	fd, err := t.Open("/shared-data")
	if err != nil {
		return err
	}
	blob := make([]byte, 1<<20)
	for off := uint64(0); off < cfg.DataFileSize; off += uint64(len(blob)) {
		if _, err := t.WriteAt(fd, blob, int64(off)); err != nil {
			return err
		}
	}
	return t.Close(fd)
}

func dataWorker(write, shared bool) func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
	return func(fs fsapi.FS, tid int, cfg Config) (func(i int) error, error) {
		t := fs.NewThread(tid)
		p := privDir(tid) + "/data"
		if shared {
			p = "/shared-data"
		}
		fd, err := t.Open(p)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(tid)*31 + 7))
		buf := make([]byte, 4096)
		nblocks := int(cfg.DataFileSize / 4096)
		return func(i int) error {
			off := int64(rng.Intn(nblocks)) * 4096
			if write {
				_, err := t.WriteAt(fd, buf, off)
				return err
			}
			_, err := t.ReadAt(fd, buf, off)
			return err
		}, nil
	}
}
