package fxmark

import (
	"testing"

	"arckfs/internal/baseline/nova"
	"arckfs/internal/core"
	"arckfs/internal/fsapi"
)

func smallCfg() Config {
	return Config{DWTLFileSize: 256 << 10, DirFiles: 16, DataFileSize: 128 << 10}
}

func eachFS(t *testing.T, fn func(t *testing.T, fs fsapi.FS)) {
	t.Helper()
	t.Run("arckfs+", func(t *testing.T) {
		sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
		if err != nil {
			t.Fatal(err)
		}
		fn(t, sys.NewApp(0, 0))
	})
	t.Run("nova", func(t *testing.T) {
		fs, err := nova.New(128<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		fn(t, fs)
	})
}

// TestAllMetadataWorkloadsRun drives every Table-3 workload for a few
// hundred ops on 2 threads against ArckFS+ and NOVA.
func TestAllMetadataWorkloadsRun(t *testing.T) {
	for _, w := range Metadata {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			eachFS(t, func(t *testing.T, fs fsapi.FS) {
				res, err := RunWorkload(fs, w, 2, 200, smallCfg())
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if res.Ops != 400 {
					t.Fatalf("ops = %d", res.Ops)
				}
				if res.OpsPerSec() <= 0 {
					t.Fatal("zero throughput")
				}
			})
		})
	}
}

func TestDataWorkloadsRun(t *testing.T) {
	for _, w := range DataOps {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			eachFS(t, func(t *testing.T, fs fsapi.FS) {
				res, err := RunWorkload(fs, w, 2, 100, smallCfg())
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if res.Bytes != res.Ops*4096 {
					t.Fatalf("bytes = %d", res.Bytes)
				}
			})
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("MWCL"); !ok {
		t.Fatal("MWCL missing")
	}
	if _, ok := ByName("DRBL"); !ok {
		t.Fatal("DRBL missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus workload found")
	}
}
