package fxmark

import (
	"fmt"
	"time"

	"arckfs/internal/core"
	"arckfs/internal/fsapi"
	"arckfs/internal/harness"
	"arckfs/internal/kernel"
	"arckfs/internal/telemetry"
	"arckfs/internal/tenancy"
)

// The Tenants sweep and the revocation storm are the multi-tenant
// serving experiments: unlike the FxMark workloads (one LibFS, many
// threads), they drive one kernel Controller under many LibFS instances
// through a tenancy.Registry. The sweep answers "what does the Nth
// tenant cost the others" — spawn/retire latency and active-subset
// throughput as the population grows from tens to tens of thousands —
// and the storm answers "what does one hot file migrating across the
// population cost", the worst case for the ownership-transfer design.

// TenantsConfig sizes the tenant-scaling sweep.
type TenantsConfig struct {
	// Workers is the number of concurrently active tenants (the rest of
	// the population is idle load on the registry); default 8.
	Workers int
	// OpsPerWorker is the operation count each active tenant runs
	// (default 200).
	OpsPerWorker int
	// Quota, when non-zero, is installed on every spawned tenant.
	Quota kernel.Quota
}

func (c *TenantsConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 200
	}
}

// TenantsResult is one cell of the tenant-scaling sweep.
type TenantsResult struct {
	Tenants int
	// SpawnMicros / RetireMicros are mean per-tenant registry latencies
	// over the whole population — the numbers that expose a spin-up path
	// that degrades with population size.
	SpawnMicros  float64
	RetireMicros float64
	// Active is the measured active-subset workload: Threads holds the
	// *population* size (so a Series over cells reads as the scaling
	// curve), Ops/Lat/Counters the usual harness meaning.
	Active harness.Result
	// ShardCount is the kernel.shard.count gauge at peak population —
	// an absolute reading (the counter delta across the measured region
	// is zero, since the table grew during spawn).
	ShardCount int64
}

// Tenants runs the tenant-scaling experiment at one population size: n
// tenants spawned under one Controller, an active subset spread across
// the population running a create/write/unlink mix in per-tenant
// namespaces, then the whole population retired.
func Tenants(sys *core.System, n int, cfg TenantsConfig) (TenantsResult, error) {
	cfg.fill()
	reg := tenancy.NewRegistry(sys)

	spawnStart := time.Now()
	tenants := make([]*tenancy.Tenant, n)
	for i := range tenants {
		t, err := reg.Spawn(cfg.Quota)
		if err != nil {
			return TenantsResult{}, fmt.Errorf("spawn %d: %w", i, err)
		}
		tenants[i] = t
	}
	spawnEl := time.Since(spawnStart)

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	// Spread the active subset across the population so shard and app-ID
	// locality do not flatter the run.
	active := make([]*tenancy.Tenant, workers)
	for i := range active {
		active[i] = tenants[i*n/workers]
	}
	// Serial setup with root handoff: inode ownership is exclusive in the
	// Trio model, so each active tenant creates and opens its private
	// file, then voluntarily releases everything it touched before the
	// next tenant walks the root directory. The measured region then runs
	// fd-based appends only — every write reactivates the tenant's own
	// file through the lease/reacquire path, so what contends is exactly
	// the shared kernel substrate (admission slots, the epoch lock, the
	// shadow shards, page grants against the quota), not the namespace.
	threads := make([]fsapi.Thread, workers)
	fds := make([]fsapi.FD, workers)
	for i, tn := range active {
		th := tn.Thread(0)
		p := fmt.Sprintf("/t%d", i)
		if err := th.Create(p); err != nil {
			return TenantsResult{}, fmt.Errorf("setup create %s: %w", p, err)
		}
		fd, err := th.Open(p)
		if err != nil {
			return TenantsResult{}, fmt.Errorf("setup open %s: %w", p, err)
		}
		threads[i], fds[i] = th, fd
		if err := tn.FS().ReleaseAll(); err != nil {
			return TenantsResult{}, fmt.Errorf("setup release %d: %w", i, err)
		}
	}
	res := harness.RunCounted(harness.SourceOf(sys), "arckfs+", "Tenants",
		workers, cfg.OpsPerWorker, func(tid, i int) error {
			_, err := threads[tid].WriteAt(fds[tid], tenantBlock[:], int64(i)*4096)
			return err
		})
	res.Threads = n // the population is the x-axis, not the worker count
	if res.Err != nil {
		return TenantsResult{}, res.Err
	}
	shards := sys.Telemetry().Snapshot()["kernel.shard.count"]

	retireStart := time.Now()
	if err := reg.RetireAll(); err != nil {
		return TenantsResult{}, fmt.Errorf("retire: %w", err)
	}
	retireEl := time.Since(retireStart)

	return TenantsResult{
		Tenants:      n,
		SpawnMicros:  spawnEl.Seconds() * 1e6 / float64(n),
		RetireMicros: retireEl.Seconds() * 1e6 / float64(n),
		Active:       res,
		ShardCount:   shards,
	}, nil
}

var tenantBlock [4096]byte

// StormResult is the revocation-storm measurement: one hot file (and
// its parent directory) migrating ownership across the whole tenant
// population, every write a full release-verify-acquire cycle.
type StormResult struct {
	Tenants    int
	Migrations int
	Result     harness.Result // Lat carries the per-migration percentiles
}

// RevocationStorm spawns n tenants and ping-pongs one hot file across
// all of them round-robin: tenant k writes a 4 KiB block, voluntarily
// releases the inode, and the next tenant's acquire pays the transfer's
// unmap + verify + rebuild. Per-migration latency lands in the result's
// histogram; the p99 is the number benchcheck bounds.
func RevocationStorm(sys *core.System, n, migrations int) (StormResult, error) {
	if n < 2 {
		return StormResult{}, fmt.Errorf("storm needs >=2 tenants, got %d", n)
	}
	reg := tenancy.NewRegistry(sys)
	tenants := make([]*tenancy.Tenant, n)
	for i := range tenants {
		t, err := reg.Spawn(kernel.Quota{})
		if err != nil {
			return StormResult{}, fmt.Errorf("spawn %d: %w", i, err)
		}
		tenants[i] = t
	}
	// Setup with root handoff: tenant 0 creates the hot file; then every
	// tenant opens it once (caching the fd) and releases everything, so
	// the measured loop migrates only the hot inode, not the root.
	t0 := tenants[0].Thread(0)
	if err := t0.Create("/hot"); err != nil {
		return StormResult{}, err
	}
	st, err := t0.Stat("/hot")
	if err != nil {
		return StormResult{}, err
	}
	ino := st.Ino
	threads := make([]fsapi.Thread, n)
	fds := make([]fsapi.FD, n)
	if err := tenants[0].FS().ReleaseAll(); err != nil {
		return StormResult{}, err
	}
	for k := 0; k < n; k++ {
		th := tenants[k].Thread(0)
		fd, err := th.Open("/hot")
		if err != nil {
			return StormResult{}, fmt.Errorf("setup open %d: %w", k, err)
		}
		threads[k], fds[k] = th, fd
		if err := tenants[k].FS().ReleaseAll(); err != nil {
			return StormResult{}, fmt.Errorf("setup release %d: %w", k, err)
		}
	}

	var before map[string]int64
	src := harness.SourceOf(sys)
	if src != nil {
		before = src.Snapshot()
	}
	hist := telemetry.NewHistogram()
	start := time.Now()
	for i := 0; i < migrations; i++ {
		k := i % n
		m0 := time.Now()
		// The write reactivates the dormant mapping: an acquire crossing
		// whose verification cost is the migration being measured.
		if _, err := threads[k].WriteAt(fds[k], tenantBlock[:], 0); err != nil {
			return StormResult{}, fmt.Errorf("migration %d write: %w", i, err)
		}
		if err := tenants[k].FS().ReleaseInode(ino); err != nil {
			return StormResult{}, fmt.Errorf("migration %d release: %w", i, err)
		}
		hist.Record(time.Since(m0).Nanoseconds())
	}
	res := harness.Result{
		FS: "arckfs+", Workload: "RevocationStorm", Threads: n,
		Ops: int64(migrations), Elapsed: time.Since(start),
	}
	if s := hist.Summary(); s.Count > 0 {
		res.Lat = &s
	}
	if src != nil {
		res.Counters = telemetry.Delta(before, src.Snapshot())
	}
	if err := reg.RetireAll(); err != nil {
		return StormResult{}, fmt.Errorf("retire: %w", err)
	}
	return StormResult{Tenants: n, Migrations: migrations, Result: res}, nil
}
