package experiments

import (
	"fmt"

	"arckfs/internal/bench/fxmark"
	"arckfs/internal/core"
	"arckfs/internal/harness"
	"arckfs/internal/kernel"
	"arckfs/internal/tenancy"
)

// Tenants runs the multi-tenant serving ablation: the tenant-scaling
// sweep (population sizes from cfg.TenantCounts), the measured
// idle-tenant footprint, and the revocation storm. It is ArckFS+-only —
// the baselines have no registration concept — and is not part of
// arckbench "all"; EXPERIMENTS.md pairs a default run against
// -serial-admission and -flat-epoch runs to A/B the two bottleneck
// fixes.
func Tenants(cfg Config) error {
	cfg.fill()
	counts := cfg.TenantCounts
	if len(counts) == 0 {
		counts = []int{16, 128, 1024}
	}
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		// The sweep exists to measure the admission path; default it on,
		// and below the active worker count so the queue actually forms.
		maxInflight = 4
	}
	mkSys := func() (*core.System, error) {
		return core.NewSystem(core.Config{
			Mode: core.ArckFSPlus, DevSize: cfg.DevSize, Cost: cfg.cost(),
			MaxInflight: maxInflight, SerialAdmission: cfg.SerialAdmission,
			FlatEpoch: cfg.FlatEpoch,
		})
	}
	// Every tenant gets a real quota so the sweep also measures the
	// grant-time enforcement path, not just unlimited tenants.
	quota := kernel.Quota{MaxPages: 8192, MaxInodes: 2048, Weight: 1}

	per, err := tenancy.MeasureIdleFootprint(2048)
	if err != nil {
		return fmt.Errorf("idle footprint: %w", err)
	}
	fmt.Fprintf(cfg.Out, "idle tenant footprint: %.0f B/tenant over 2048 tenants (budget: 8192 B)\n\n", per)

	tbl := harness.Table{
		Title: fmt.Sprintf("Tenant scaling (admission=%s, epoch=%s, %d active workers)",
			admissionName(maxInflight, cfg.SerialAdmission), epochName(cfg.FlatEpoch), 8),
		Headers: []string{"tenants", "spawn µs/t", "retire µs/t", "active ops/s", "p99 µs", "admit queued", "shards"},
	}
	for _, n := range counts {
		sys, err := mkSys()
		if err != nil {
			return err
		}
		res, err := fxmark.Tenants(sys, n, fxmark.TenantsConfig{Quota: quota})
		if err != nil {
			return fmt.Errorf("tenants@%d: %w", n, err)
		}
		cfg.Rec.Add("tenants", res.Active)
		p99 := 0.0
		if res.Active.Lat != nil {
			p99 = float64(res.Active.Lat.P99NS) / 1e3
		}
		tbl.Add(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", res.SpawnMicros),
			fmt.Sprintf("%.1f", res.RetireMicros),
			fmt.Sprintf("%.0f", res.Active.OpsPerSec()),
			fmt.Sprintf("%.1f", p99),
			fmt.Sprintf("%d", res.Active.Counters["kernel.admission.queued"]),
			fmt.Sprintf("%d", res.ShardCount),
		)
	}
	fmt.Fprint(cfg.Out, tbl.Render())

	stormN := cfg.StormTenants
	if stormN == 0 {
		stormN = 256
	}
	migrations := cfg.StormMigrations
	if migrations == 0 {
		migrations = 4 * stormN
	}
	sys, err := mkSys()
	if err != nil {
		return err
	}
	storm, err := fxmark.RevocationStorm(sys, stormN, migrations)
	if err != nil {
		return fmt.Errorf("storm@%d: %w", stormN, err)
	}
	cfg.Rec.Add("tenants", storm.Result)
	p99 := 0.0
	if storm.Result.Lat != nil {
		p99 = float64(storm.Result.Lat.P99NS) / 1e3
	}
	fmt.Fprintf(cfg.Out, "revocation storm: %d tenants, %d migrations, %.0f migrations/s, p99 %.1f µs\n",
		storm.Tenants, storm.Migrations, storm.Result.OpsPerSec(), p99)
	return nil
}

func admissionName(maxInflight int, serial bool) string {
	if maxInflight <= 0 {
		return "off"
	}
	if serial {
		return "serial"
	}
	return "wdrr"
}

func epochName(flat bool) string {
	if flat {
		return "flat"
	}
	return "brlock"
}
