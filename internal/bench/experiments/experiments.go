// Package experiments regenerates every table and figure of the ArckFS+
// paper's evaluation (§5) against this repository's implementations. The
// cmd/arckbench binary and the repository's benchmarks are thin wrappers
// around it.
package experiments

import (
	"fmt"
	"io"

	"arckfs/internal/baseline/kucofs"
	"arckfs/internal/baseline/nova"
	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/bench/filebench"
	"arckfs/internal/bench/fiolike"
	"arckfs/internal/bench/fxmark"
	"arckfs/internal/bench/sharing"
	"arckfs/internal/core"
	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/harness"
	"arckfs/internal/kv"
	"arckfs/internal/pmem"
)

// AllSystems lists every file system the evaluation compares. The
// remaining baselines of the paper (ext4, OdinFS, WineFS, SplitFS,
// Strata) are represented by these archetypes; see DESIGN.md.
var AllSystems = []string{"arckfs", "arckfs+", "nova", "pmfs", "kucofs"}

// Config parameterizes a run.
type Config struct {
	// Systems to measure (default AllSystems).
	Systems []string
	// Threads is the scalability sweep (default 1,2,4,8,16,32,64).
	Threads []int
	// TotalOps is the per-cell operation budget, divided across threads.
	TotalOps int
	// DevSize is the simulated device size per instance.
	DevSize int64
	// Realistic enables the calibrated cost model.
	Realistic bool
	// Trials repeats each single-thread cell and keeps the best run,
	// suppressing scheduler noise (default 3 for Figure 3, 1 elsewhere).
	Trials int
	// Eager disables the ArckFS write-combining persist batcher, running
	// the pre-batching persist schedule (baselines are unaffected). Used
	// to A/B the batching optimization; recorded in the -json output as
	// config.persist.
	Eager bool
	// Serial runs the ArckFS kernels with the pre-scaling control plane:
	// one exclusive lock around every crossing and no grant leases
	// (baselines are unaffected). Used to A/B the sharded control plane;
	// recorded in the -json output as config.kernel.
	Serial bool
	// SerialData runs the ArckFS data plane with its pre-RCU locked read
	// paths (baselines are unaffected). Used to A/B the lock-free data
	// plane; recorded in the -json output as config.data.
	SerialData bool
	// Faults attaches a seeded device lie plan to the ArckFS systems
	// (pmem.FaultPlan; baselines are unaffected). Lies never change what
	// reads observe, so throughput is expected to be unchanged — running
	// a sweep under -faults checks exactly that, and the pmem.lies.*
	// counters in -counters output show how often the device lied.
	// Recorded in the -json output as config.faults. FaultSeed seeds the
	// plan.
	Faults    pmem.FaultMode
	FaultSeed int64
	// TenantCounts is the population sweep of the tenants experiment
	// (default 16,128,1024); StormTenants/StormMigrations size its
	// revocation storm (defaults 256 and 4x tenants). MaxInflight bounds
	// concurrent kernel crossings via the admission scheduler (the
	// tenants experiment defaults it to 8 when unset; other experiments
	// leave admission off at 0). SerialAdmission collapses the scheduler
	// to one FIFO and FlatEpoch reverts the epoch lock to a single shared
	// counter — the two bottleneck-fix A/B baselines; recorded in the
	// -json output as config.admission / config.epoch.
	TenantCounts    []int
	StormTenants    int
	StormMigrations int
	MaxInflight     int
	SerialAdmission bool
	FlatEpoch       bool
	// Out receives rendered tables.
	Out io.Writer
	// Rec, when non-nil, accumulates machine-readable cells for the
	// -json output.
	Rec *Recorder
}

func (c *Config) fill() {
	if len(c.Systems) == 0 {
		c.Systems = AllSystems
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.TotalOps == 0 {
		c.TotalOps = 20000
	}
	if c.DevSize == 0 {
		c.DevSize = 512 << 20
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

func (c *Config) cost() *costmodel.Model {
	if c.Realistic {
		return costmodel.Default()
	}
	return nil
}

// MakeFS constructs a fresh instance of the named file system.
func MakeFS(name string, devSize int64, cost *costmodel.Model) (fsapi.FS, error) {
	return MakeFSPersist(name, devSize, cost, false)
}

// MakeFSPersist is MakeFS with an explicit persist mode: eager disables
// the ArckFS write-combining batcher (baselines ignore the flag).
func MakeFSPersist(name string, devSize int64, cost *costmodel.Model, eager bool) (fsapi.FS, error) {
	return MakeFSWith(name, FSOpts{DevSize: devSize, Cost: cost, Eager: eager})
}

// FSOpts parameterizes MakeFSWith. The zero value matches MakeFS.
type FSOpts struct {
	DevSize int64
	Cost    *costmodel.Model
	// Eager disables the ArckFS persist batcher (baselines ignore it).
	Eager bool
	// Serial runs the ArckFS kernel single-locked and lease-free
	// (baselines ignore it).
	Serial bool
	// SerialData runs the ArckFS data plane with locked read paths
	// (baselines ignore it).
	SerialData bool
	// Faults attaches a seeded device lie plan (baselines ignore it).
	Faults    pmem.FaultMode
	FaultSeed int64
}

// MakeFSWith constructs a fresh instance of the named file system under
// the given options.
func MakeFSWith(name string, o FSOpts) (fsapi.FS, error) {
	arck := func(mode core.Mode) (fsapi.FS, error) {
		sys, err := core.NewSystem(core.Config{
			Mode: mode, DevSize: o.DevSize, Cost: o.Cost,
			EagerPersist: o.Eager, SerialKernel: o.Serial,
			SerialData: o.SerialData,
			Faults:     o.Faults, FaultSeed: o.FaultSeed,
		})
		if err != nil {
			return nil, err
		}
		return sys.NewApp(0, 0), nil
	}
	switch name {
	case "arckfs+":
		return arck(core.ArckFSPlus)
	case "arckfs":
		return arck(core.ArckFS)
	case "nova":
		return nova.New(o.DevSize, o.Cost)
	case "pmfs":
		return pmfs.New(o.DevSize, o.Cost)
	case "kucofs":
		return kucofs.New(o.DevSize, o.Cost)
	}
	return nil, fmt.Errorf("unknown file system %q", name)
}

// makeFS builds the named system under this run's configuration.
func (c *Config) makeFS(name string) (fsapi.FS, error) {
	return MakeFSWith(name, FSOpts{
		DevSize: c.DevSize, Cost: c.cost(), Eager: c.Eager, Serial: c.Serial,
		SerialData: c.SerialData, Faults: c.Faults, FaultSeed: c.FaultSeed,
	})
}

func opsFor(total, threads int) int {
	ops := total / threads
	if ops < 50 {
		ops = 50
	}
	return ops
}

// Figure3 reproduces the single-thread metadata throughput comparison:
// open, create, delete (plus readdir and rename for completeness).
func Figure3(cfg Config) error {
	cfg.fill()
	rows := []struct {
		label    string
		workload string
	}{
		{"open", "MRPL"},
		{"create", "MWCL"},
		{"delete", "MWUL"},
		{"readdir", "MRDL"},
		{"rename", "MWRL"},
	}
	tbl := harness.Table{
		Title:   "Figure 3: single-thread metadata throughput (ops/sec)",
		Headers: append([]string{"op"}, cfg.Systems...),
	}
	rel := map[string][2]float64{} // workload -> [arckfs, arckfs+]
	for _, row := range rows {
		w, _ := fxmark.ByName(row.workload)
		cells := []string{row.label}
		for _, sysName := range cfg.Systems {
			best := 0.0
			var bestRes harness.Result
			for trial := 0; trial < cfg.Trials; trial++ {
				fs, err := cfg.makeFS(sysName)
				if err != nil {
					return err
				}
				res, err := fxmark.RunWorkload(fs, w, 1, opsFor(cfg.TotalOps, 1), fxmark.Defaults())
				if err != nil {
					return fmt.Errorf("%s/%s: %w", sysName, row.workload, err)
				}
				if res.OpsPerSec() > best {
					best = res.OpsPerSec()
					bestRes = res
				}
			}
			cfg.Rec.Add("figure3", bestRes)
			cells = append(cells, fmt.Sprintf("%.0f", best))
			v := rel[row.label]
			if sysName == "arckfs" {
				v[0] = best
			}
			if sysName == "arckfs+" {
				v[1] = best
			}
			rel[row.label] = v
		}
		tbl.Add(cells...)
	}
	fmt.Fprint(cfg.Out, tbl.Render())
	rt := harness.Table{
		Title:   "Figure 3 companion: ArckFS+ relative to ArckFS (paper: open 83.3%, create 92.8%, delete 92.2%)",
		Headers: []string{"op", "arckfs+/arckfs %"},
	}
	for _, row := range rows {
		v := rel[row.label]
		if v[0] > 0 {
			rt.Add(row.label, fmt.Sprintf("%.1f%%", 100*v[1]/v[0]))
		}
	}
	fmt.Fprint(cfg.Out, rt.Render())
	return nil
}

// Figure4 reproduces the FxMark metadata scalability sweep and returns
// the per-workload series (used by Table 2).
func Figure4(cfg Config) (map[string]*harness.Series, error) {
	cfg.fill()
	out := map[string]*harness.Series{}
	trials := cfg.Trials
	if trials > 2 {
		trials = 2 // the sweep is large; two trials tame the worst noise
	}
	for _, w := range fxmark.Metadata {
		series := harness.NewSeries("Figure 4 — " + w.Name + ": " + w.Desc + " (ops/sec)")
		for _, sysName := range cfg.Systems {
			for _, th := range cfg.Threads {
				best := 0.0
				var bestRes harness.Result
				for trial := 0; trial < trials; trial++ {
					fs, err := cfg.makeFS(sysName)
					if err != nil {
						return nil, err
					}
					res, err := fxmark.RunWorkload(fs, w, th, opsFor(cfg.TotalOps, th), fxmark.Defaults())
					if err != nil {
						return nil, fmt.Errorf("%s/%s@%d: %w", sysName, w.Name, th, err)
					}
					if res.OpsPerSec() > best {
						best = res.OpsPerSec()
						bestRes = res
					}
				}
				cfg.Rec.Add("figure4", bestRes)
				series.Add(sysName, th, best)
			}
		}
		out[w.Name] = series
		fmt.Fprint(cfg.Out, series.Render())
	}
	return out, nil
}

// Fxmark runs the full FxMark suite — the metadata workloads plus the
// data-operation sweep — once per (system, thread-count) cell. It is the
// persistence-cost experiment: every cell lands in the -json record under
// "fxmark" with per-op pmem.flushes / pmem.fences / pmem.ntstores, so an
// eager-vs-batched pair of runs quantifies the write-combining batcher
// (see EXPERIMENTS.md).
func Fxmark(cfg Config) error {
	cfg.fill()
	// Best-of-N like Figure4 (and with the same cap): throughput noise is
	// one-sided — interference only slows a trial down — so keeping the
	// best run is the stable estimator the trajectory gate needs. The
	// per-op counter deltas are deterministic across trials, so the
	// bounds see the same values either way.
	trials := cfg.Trials
	if trials > 2 {
		trials = 2
	}
	for _, group := range [][]fxmark.Workload{fxmark.Metadata, fxmark.Leases, fxmark.Lookup, fxmark.DataOps} {
		for _, w := range group {
			series := harness.NewSeries("FxMark — " + w.Name + ": " + w.Desc + " (ops/sec)")
			for _, sysName := range cfg.Systems {
				for _, th := range cfg.Threads {
					best := 0.0
					var bestRes harness.Result
					for trial := 0; trial < trials; trial++ {
						fs, err := cfg.makeFS(sysName)
						if err != nil {
							return err
						}
						res, err := fxmark.RunWorkload(fs, w, th, opsFor(cfg.TotalOps, th), fxmark.Defaults())
						if err != nil {
							return fmt.Errorf("%s/%s@%d: %w", sysName, w.Name, th, err)
						}
						if res.OpsPerSec() > best {
							best = res.OpsPerSec()
							bestRes = res
						}
					}
					cfg.Rec.Add("fxmark", bestRes)
					series.Add(sysName, th, best)
				}
			}
			fmt.Fprint(cfg.Out, series.Render())
		}
	}
	return nil
}

// Table2 renders ArckFS+'s relative throughput versus ArckFS at the
// highest measured thread count, plus the geometric mean the paper
// reports as 97.23%.
func Table2(cfg Config, series map[string]*harness.Series) error {
	cfg.fill()
	maxTh := cfg.Threads[len(cfg.Threads)-1]
	tbl := harness.Table{
		Title:   fmt.Sprintf("Table 2: ArckFS+ relative to ArckFS at %d threads", maxTh),
		Headers: []string{"workload", "relative %"},
	}
	var rels []float64
	for _, w := range fxmark.Metadata {
		s, ok := series[w.Name]
		if !ok {
			continue
		}
		rel := s.Relative("arckfs+", "arckfs", maxTh)
		if rel > 0 {
			rels = append(rels, rel/100)
		}
		tbl.Add(w.Name, fmt.Sprintf("%.2f%%", rel))
	}
	tbl.Add("geomean", fmt.Sprintf("%.2f%% (paper: 97.23%%)", 100*harness.Geomean(rels)))
	fmt.Fprint(cfg.Out, tbl.Render())
	return nil
}

// DataScale reproduces the data-operation scalability points (§5.1 data,
// §5.2 data + fio).
func DataScale(cfg Config) error {
	cfg.fill()
	for _, w := range fxmark.DataOps {
		series := harness.NewSeries("Data — " + w.Name + ": " + w.Desc + " (GiB/s aggregate)")
		for _, sysName := range cfg.Systems {
			for _, th := range cfg.Threads {
				fs, err := cfg.makeFS(sysName)
				if err != nil {
					return err
				}
				res, err := fxmark.RunWorkload(fs, w, th, opsFor(cfg.TotalOps, th), fxmark.Defaults())
				if err != nil {
					return fmt.Errorf("%s/%s@%d: %w", sysName, w.Name, th, err)
				}
				cfg.Rec.Add("dataScale", res)
				series.Add(sysName, th, res.GiBPerSec()*1000) // milli-GiB/s for readable ints
			}
		}
		fmt.Fprintln(cfg.Out, "(values in milli-GiB/s)")
		fmt.Fprint(cfg.Out, series.Render())
	}
	// fio sweeps at the largest thread count.
	th := cfg.Threads[len(cfg.Threads)-1]
	tbl := harness.Table{
		Title:   fmt.Sprintf("fio 4K bandwidth at %d threads (milli-GiB/s)", th),
		Headers: append([]string{"job"}, cfg.Systems...),
	}
	for _, job := range fiolike.StandardJobs(4 << 20) {
		cells := []string{job.Name}
		for _, sysName := range cfg.Systems {
			fs, err := cfg.makeFS(sysName)
			if err != nil {
				return err
			}
			res, err := fiolike.Run(fs, job, th, opsFor(cfg.TotalOps, th))
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sysName, job.Name, err)
			}
			cfg.Rec.Add("dataScale", res)
			cells = append(cells, fmt.Sprintf("%.0f", res.GiBPerSec()*1000))
		}
		tbl.Add(cells...)
	}
	fmt.Fprint(cfg.Out, tbl.Render())
	return nil
}

// Filebench reproduces §5.3: Webproxy and Varmail on the shared-directory
// framework at 1 and 16 threads, with ArckFS+/ArckFS ratios.
func Filebench(cfg Config) error {
	cfg.fill()
	threadPoints := []int{1, 16}
	for _, p := range []filebench.Personality{filebench.Webproxy, filebench.Varmail} {
		tbl := harness.Table{
			Title:   fmt.Sprintf("Filebench %s (shared directory, per-filename locks) ops/sec", p),
			Headers: append([]string{"threads"}, cfg.Systems...),
		}
		ratios := map[int][2]float64{}
		for _, th := range threadPoints {
			cells := []string{fmt.Sprintf("%d", th)}
			for _, sysName := range cfg.Systems {
				fs, err := cfg.makeFS(sysName)
				if err != nil {
					return err
				}
				fcfg := filebench.Defaults(p)
				res, err := filebench.Run(fs, fcfg, th, opsFor(cfg.TotalOps/4, th))
				if err != nil {
					return fmt.Errorf("%s/%s@%d: %w", sysName, p, th, err)
				}
				cfg.Rec.Add("filebench", res)
				cells = append(cells, fmt.Sprintf("%.0f", res.OpsPerSec()))
				v := ratios[th]
				if sysName == "arckfs" {
					v[0] = res.OpsPerSec()
				}
				if sysName == "arckfs+" {
					v[1] = res.OpsPerSec()
				}
				ratios[th] = v
			}
			tbl.Add(cells...)
		}
		fmt.Fprint(cfg.Out, tbl.Render())
		for _, th := range threadPoints {
			v := ratios[th]
			if v[0] > 0 {
				fmt.Fprintf(cfg.Out, "%s arckfs+/arckfs @%d threads: %.1f%%\n", p, th, 100*v[1]/v[0])
			}
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// LevelDB reproduces the §5.3 dbbench-style comparison over the LSM
// store.
func LevelDB(cfg Config) error {
	cfg.fill()
	benches := []string{"fillseq", "fillrandom", "readrandom", "readseq"}
	tbl := harness.Table{
		Title:   "LevelDB-style dbbench over the LSM store (ops/sec)",
		Headers: append([]string{"bench"}, cfg.Systems...),
	}
	n := cfg.TotalOps
	if n > 20000 {
		n = 20000
	}
	val := make([]byte, 100)
	rows := map[string][]string{}
	for _, b := range benches {
		rows[b] = []string{b}
	}
	for _, sysName := range cfg.Systems {
		fs, err := cfg.makeFS(sysName)
		if err != nil {
			return err
		}
		db, err := kv.Open(fs, kv.Options{MemtableBytes: 256 << 10})
		if err != nil {
			return err
		}
		key := func(i int) []byte { return []byte(fmt.Sprintf("%016d", i)) }
		for _, b := range benches {
			res := harness.RunCounted(harness.SourceOf(fs), sysName, b, 1, n, func(_, i int) error {
				switch b {
				case "fillseq":
					return db.Put(key(i), val)
				case "fillrandom":
					return db.Put(key((i*2654435761)%n), val)
				case "readrandom":
					_, err := db.Get(key((i * 40503) % n))
					if err == fsapi.ErrNotExist {
						return nil
					}
					return err
				case "readseq":
					// One full scan counts len ops; run once.
					if i > 0 {
						return nil
					}
					it, err := db.NewIterator()
					if err != nil {
						return err
					}
					for it.Next() {
					}
					return nil
				}
				return nil
			})
			if res.Err != nil {
				return fmt.Errorf("%s/%s: %w", sysName, b, res.Err)
			}
			cfg.Rec.Add("leveldb", res)
			rows[b] = append(rows[b], fmt.Sprintf("%.0f", res.OpsPerSec()))
		}
	}
	for _, b := range benches {
		tbl.Add(rows[b]...)
	}
	fmt.Fprint(cfg.Out, tbl.Render())
	return nil
}

// Table4 reproduces the sharing-cost experiment.
func Table4(cfg Config, smallFile, bigFile uint64, writeIters, createTurns int) error {
	cfg.fill()
	cost := cfg.cost()
	tbl := harness.Table{
		Title:   "Table 4: sharing cost (paper shape: big shared file collapses ArckFS+ below NOVA; trust group restores it; shared-dir creates cost µs-scale vs sub-µs in a trust group)",
		Headers: []string{"experiment", "nova", "arckfs+", "arckfs+-trust-group"},
	}
	row := func(label string, novaV, plusV, trustV string) {
		tbl.Add(label, novaV, plusV, trustV)
	}
	mkSys := func() (*core.System, error) {
		return core.NewSystem(core.Config{Mode: core.ArckFSPlus, DevSize: cfg.DevSize, Cost: cost})
	}
	for _, size := range []uint64{smallFile, bigFile} {
		nw, err := sharing.NovaWrite(cost, cfg.DevSize, size, writeIters)
		if err != nil {
			return err
		}
		sys, err := mkSys()
		if err != nil {
			return err
		}
		pw, err := sharing.ArckWrite(sys, size, false, writeIters)
		if err != nil {
			return err
		}
		sys, err = mkSys()
		if err != nil {
			return err
		}
		tw, err := sharing.ArckWrite(sys, size, true, writeIters)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("4KB-write %dMB (GiB/s)", size>>20),
			fmt.Sprintf("%.2f", nw.GiBps), fmt.Sprintf("%.2f", pw.GiBps), fmt.Sprintf("%.2f", tw.GiBps))
	}
	for _, batch := range []int{10, 100} {
		nc, err := sharing.NovaCreate(cost, cfg.DevSize, batch, createTurns)
		if err != nil {
			return err
		}
		sys, err := mkSys()
		if err != nil {
			return err
		}
		pc, err := sharing.ArckCreate(sys, batch, createTurns, false)
		if err != nil {
			return err
		}
		sys, err = mkSys()
		if err != nil {
			return err
		}
		tc, err := sharing.ArckCreate(sys, batch, createTurns, true)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("Create %d (µs/op)", batch),
			fmt.Sprintf("%.2f", nc.MicrosPerOp), fmt.Sprintf("%.2f", pc.MicrosPerOp), fmt.Sprintf("%.2f", tc.MicrosPerOp))
	}
	fmt.Fprint(cfg.Out, tbl.Render())
	return nil
}
