package experiments

import (
	"strings"
	"testing"
)

// tiny returns a config that exercises every code path in seconds.
func tiny(out *strings.Builder) Config {
	return Config{
		Systems:  []string{"arckfs", "arckfs+", "nova"},
		Threads:  []int{1, 2},
		TotalOps: 400,
		DevSize:  96 << 20,
		Trials:   1,
		Out:      out,
	}
}

func TestFigure3Smoke(t *testing.T) {
	var out strings.Builder
	if err := Figure3(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 3", "open", "create", "delete", "arckfs+/arckfs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFigure4AndTable2Smoke(t *testing.T) {
	var out strings.Builder
	cfg := tiny(&out)
	series, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 12 {
		t.Fatalf("got %d workload series", len(series))
	}
	if err := Table2(cfg, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Fatal("Table 2 missing geomean")
	}
}

func TestDataScaleSmoke(t *testing.T) {
	var out strings.Builder
	if err := DataScale(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DRBL") || !strings.Contains(out.String(), "fio") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFilebenchSmoke(t *testing.T) {
	var out strings.Builder
	if err := Filebench(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "webproxy") || !strings.Contains(s, "varmail") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestLevelDBSmoke(t *testing.T) {
	var out strings.Builder
	if err := LevelDB(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fillseq") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestTable4Smoke(t *testing.T) {
	var out strings.Builder
	if err := Table4(tiny(&out), 2<<20, 8<<20, 30, 4); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4KB-write") || !strings.Contains(s, "Create 10") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestMakeFSUnknown(t *testing.T) {
	if _, err := MakeFS("zfs", 1<<20, nil); err == nil {
		t.Fatal("unknown FS accepted")
	}
}
