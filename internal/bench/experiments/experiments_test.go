package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tiny returns a config that exercises every code path in seconds.
func tiny(out *strings.Builder) Config {
	return Config{
		Systems:  []string{"arckfs", "arckfs+", "nova"},
		Threads:  []int{1, 2},
		TotalOps: 400,
		DevSize:  96 << 20,
		Trials:   1,
		Out:      out,
	}
}

func TestFigure3Smoke(t *testing.T) {
	var out strings.Builder
	if err := Figure3(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 3", "open", "create", "delete", "arckfs+/arckfs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFigure4AndTable2Smoke(t *testing.T) {
	var out strings.Builder
	cfg := tiny(&out)
	series, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 12 {
		t.Fatalf("got %d workload series", len(series))
	}
	if err := Table2(cfg, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "geomean") {
		t.Fatal("Table 2 missing geomean")
	}
}

func TestDataScaleSmoke(t *testing.T) {
	var out strings.Builder
	if err := DataScale(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "DRBL") || !strings.Contains(out.String(), "fio") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFilebenchSmoke(t *testing.T) {
	var out strings.Builder
	if err := Filebench(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "webproxy") || !strings.Contains(s, "varmail") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestLevelDBSmoke(t *testing.T) {
	var out strings.Builder
	if err := LevelDB(tiny(&out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fillseq") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestTable4Smoke(t *testing.T) {
	var out strings.Builder
	if err := Table4(tiny(&out), 2<<20, 8<<20, 30, 4); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4KB-write") || !strings.Contains(s, "Create 10") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestMakeFSUnknown(t *testing.T) {
	if _, err := MakeFS("zfs", 1<<20, nil); err == nil {
		t.Fatal("unknown FS accepted")
	}
}

// TestRecorderJSON runs Figure 3 with a recorder attached and checks
// that the machine-readable record carries the fields the -json output
// promises: per-cell throughput, latency percentiles, and counter
// deltas with per-op normalization.
func TestRecorderJSON(t *testing.T) {
	var out strings.Builder
	cfg := tiny(&out)
	cfg.Rec = NewRecorder(cfg)
	if err := Figure3(cfg); err != nil {
		t.Fatal(err)
	}
	rec := cfg.Rec.Record()
	if rec.Tool != "arckbench" || len(rec.Config.Systems) != 3 {
		t.Fatalf("config not echoed: %+v", rec.Config)
	}
	// 5 workloads x 3 systems.
	if len(rec.Cells) != 15 {
		t.Fatalf("cells = %d, want 15", len(rec.Cells))
	}
	sawCounters := false
	for _, c := range rec.Cells {
		if c.Experiment != "figure3" || c.FS == "" || c.Workload == "" {
			t.Fatalf("incomplete cell %+v", c)
		}
		if c.Ops <= 0 || c.OpsPerSec <= 0 {
			t.Fatalf("no throughput in cell %+v", c)
		}
		if c.Latency == nil || c.Latency.Count <= 0 || c.Latency.P99NS < c.Latency.P50NS {
			t.Fatalf("bad latency summary in cell %+v", c)
		}
		if c.Workload == "MWCL" && c.Counters["pmem.fences"] > 0 {
			sawCounters = true
			if c.PerOp["fences"] <= 0 {
				t.Fatalf("per-op fences missing: %+v", c.PerOp)
			}
		}
	}
	if !sawCounters {
		t.Fatal("no cell carried fence counters")
	}

	path := t.TempDir() + "/out.json"
	if err := cfg.Rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Cells) != len(rec.Cells) {
		t.Fatalf("roundtrip lost cells: %d vs %d", len(back.Cells), len(rec.Cells))
	}
}
