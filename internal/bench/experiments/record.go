package experiments

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"arckfs/internal/harness"
	"arckfs/internal/telemetry"
)

// Cell is one measurement in machine-readable form: the throughput the
// rendered tables show, plus the latency percentiles and counter deltas
// the tables omit.
type Cell struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	FS         string  `json:"fs"`
	Threads    int     `json:"threads"`
	Ops        int64   `json:"ops"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	GiBPerSec  float64 `json:"gib_per_sec,omitempty"`

	// Latency is the sampled per-op latency summary (nil when the
	// harness ran with sampling disabled).
	Latency *telemetry.LatencySummary `json:"latency,omitempty"`

	// Counters is the raw counter delta across the measured region.
	Counters map[string]int64 `json:"counters,omitempty"`

	// PerOp normalizes selected counters by completed operations:
	// flushes, fences, and syscalls per op.
	PerOp map[string]float64 `json:"per_op,omitempty"`
}

// RunConfig echoes the configuration a record was produced under.
type RunConfig struct {
	Systems   []string `json:"systems"`
	Threads   []int    `json:"threads"`
	TotalOps  int      `json:"total_ops"`
	DevSizeMB int64    `json:"dev_size_mb"`
	Realistic bool     `json:"realistic"`
	Trials    int      `json:"trials"`
	// Persist is the ArckFS persist schedule the run used: "batched"
	// (write-combining batcher, the default) or "eager" (one clwb per
	// call site, the pre-batching behavior).
	Persist string `json:"persist"`
	// Kernel is the ArckFS control-plane shape the run used: "sharded"
	// (lock-striped state plus grant leases, the default) or "serial"
	// (one exclusive lock per crossing, no leases).
	Kernel string `json:"kernel"`
}

// RunRecord is the top-level JSON document arckbench -json emits.
type RunRecord struct {
	Tool   string    `json:"tool"`
	Time   time.Time `json:"time"`
	Config RunConfig `json:"config"`
	Cells  []Cell    `json:"cells"`
}

// Recorder accumulates Cells across experiments. A nil *Recorder is
// valid and records nothing, so experiments call it unconditionally.
type Recorder struct {
	mu  sync.Mutex
	rec RunRecord
}

// NewRecorder starts a record for one arckbench invocation.
func NewRecorder(cfg Config) *Recorder {
	cfg.fill()
	persist := "batched"
	if cfg.Eager {
		persist = "eager"
	}
	kern := "sharded"
	if cfg.Serial {
		kern = "serial"
	}
	return &Recorder{rec: RunRecord{
		Tool: "arckbench",
		Time: time.Now().UTC(),
		Config: RunConfig{
			Systems:   cfg.Systems,
			Threads:   cfg.Threads,
			TotalOps:  cfg.TotalOps,
			DevSizeMB: cfg.DevSize >> 20,
			Realistic: cfg.Realistic,
			Trials:    cfg.Trials,
			Persist:   persist,
			Kernel:    kern,
		},
	}}
}

// perOpKeys maps counter names to their per-op JSON keys.
var perOpKeys = map[string]string{
	"pmem.flushes":     "flushes",
	"pmem.fences":      "fences",
	"pmem.ntstores":    "ntstores",
	"syscalls":         "syscalls",
	"syscalls.avoided": "syscalls_avoided",
	"kernel.acquires":  "acquires",
}

// Add records one harness result under the given experiment name.
func (r *Recorder) Add(experiment string, res harness.Result) {
	if r == nil {
		return
	}
	c := Cell{
		Experiment: experiment,
		Workload:   res.Workload,
		FS:         res.FS,
		Threads:    res.Threads,
		Ops:        res.Ops,
		ElapsedNS:  res.Elapsed.Nanoseconds(),
		OpsPerSec:  res.OpsPerSec(),
		GiBPerSec:  res.GiBPerSec(),
		Latency:    res.Lat,
		Counters:   res.Counters,
	}
	if res.Ops > 0 && len(res.Counters) > 0 {
		c.PerOp = map[string]float64{}
		for counter, key := range perOpKeys {
			if v, ok := res.Counters[counter]; ok {
				c.PerOp[key] = float64(v) / float64(res.Ops)
			}
		}
	}
	r.mu.Lock()
	r.rec.Cells = append(r.rec.Cells, c)
	r.mu.Unlock()
}

// Record returns a copy of the accumulated record.
func (r *Recorder) Record() RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.rec
	rec.Cells = append([]Cell(nil), r.rec.Cells...)
	return rec
}

// WriteFile writes the record as indented JSON.
func (r *Recorder) WriteFile(path string) error {
	rec := r.Record()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
