package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"arckfs/internal/harness"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
)

// Cell is one measurement in machine-readable form: the throughput the
// rendered tables show, plus the latency percentiles and counter deltas
// the tables omit.
type Cell struct {
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	FS         string  `json:"fs"`
	Threads    int     `json:"threads"`
	Ops        int64   `json:"ops"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	GiBPerSec  float64 `json:"gib_per_sec,omitempty"`

	// Latency is the sampled per-op latency summary (nil when the
	// harness ran with sampling disabled).
	Latency *telemetry.LatencySummary `json:"latency,omitempty"`

	// Counters is the raw counter delta across the measured region.
	Counters map[string]int64 `json:"counters,omitempty"`

	// PerOp normalizes selected counters by completed operations:
	// flushes, fences, and syscalls per op.
	PerOp map[string]float64 `json:"per_op,omitempty"`

	// Apps is the per-application attribution delta for the cell —
	// crossings, persist traffic, and sampled op latency per tenant —
	// so downstream tooling can rank tenants without re-running.
	Apps []telemetry.AppStat `json:"apps,omitempty"`
}

// RunConfig echoes the configuration a record was produced under.
type RunConfig struct {
	Systems   []string `json:"systems"`
	Threads   []int    `json:"threads"`
	TotalOps  int      `json:"total_ops"`
	DevSizeMB int64    `json:"dev_size_mb"`
	Realistic bool     `json:"realistic"`
	Trials    int      `json:"trials"`
	// Persist is the ArckFS persist schedule the run used: "batched"
	// (write-combining batcher, the default) or "eager" (one clwb per
	// call site, the pre-batching behavior).
	Persist string `json:"persist"`
	// Kernel is the ArckFS control-plane shape the run used: "sharded"
	// (lock-striped state plus grant leases, the default) or "serial"
	// (one exclusive lock per crossing, no leases).
	Kernel string `json:"kernel"`
	// Data is the ArckFS data-plane shape the run used: "lockfree"
	// (RCU-protected read paths, the default) or "serial" (bucket and
	// per-inode locks on every read).
	Data string `json:"data"`
	// Faults names the device lie modes the run injected ("drop-flush",
	// "torn-line", comma mixes). Empty for an honest device — omitempty
	// keeps historical trajectory config hashes stable.
	Faults string `json:"faults,omitempty"`
	// Admission is the crossing admission scheduler shape: "" (off, the
	// default outside the tenants experiment), "wdrr" (weighted deficit
	// round-robin), or "serial" (one FIFO — the A/B baseline).
	// MaxInflight is its slot count. Epoch is "" (big-reader lock, the
	// default) or "flat" (single shared reader counter — the A/B
	// baseline). Tenants echoes the tenants experiment's population
	// sweep. All omitempty so historical config hashes stay stable.
	Admission   string `json:"admission,omitempty"`
	MaxInflight int    `json:"max_inflight,omitempty"`
	Epoch       string `json:"epoch,omitempty"`
	Tenants     []int  `json:"tenants,omitempty"`
}

// Hash is the deterministic digest trajectory rows are keyed by: two
// records with equal hashes were produced under an identical
// configuration, so their throughputs are comparable. FNV-1a over the
// canonical (encoding/json, sorted-field) form of the config.
func (c RunConfig) Hash() string {
	data, err := json.Marshal(c)
	if err != nil {
		// RunConfig is plain data; Marshal cannot fail on it.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunRecord is the top-level JSON document arckbench -json emits.
//
// GitSHA and Timestamp are provenance passed in by the caller (CI sets
// -sha/-timestamp from its environment); neither is read inside a
// measured region. ConfigHash is derived from Config and joins the
// record to its trajectory rows.
type RunRecord struct {
	Tool       string    `json:"tool"`
	GitSHA     string    `json:"git_sha,omitempty"`
	Timestamp  string    `json:"timestamp,omitempty"`
	ConfigHash string    `json:"config_hash"`
	Config     RunConfig `json:"config"`
	Cells      []Cell    `json:"cells"`
}

// Recorder accumulates Cells across experiments. A nil *Recorder is
// valid and records nothing, so experiments call it unconditionally.
type Recorder struct {
	mu  sync.Mutex
	rec RunRecord
}

// NewRecorder starts a record for one arckbench invocation.
func NewRecorder(cfg Config) *Recorder {
	cfg.fill()
	persist := "batched"
	if cfg.Eager {
		persist = "eager"
	}
	kern := "sharded"
	if cfg.Serial {
		kern = "serial"
	}
	data := "lockfree"
	if cfg.SerialData {
		data = "serial"
	}
	faults := ""
	if cfg.Faults != pmem.FaultsNone {
		faults = cfg.Faults.String()
	}
	admission := ""
	if cfg.MaxInflight > 0 {
		admission = "wdrr"
		if cfg.SerialAdmission {
			admission = "serial"
		}
	}
	epoch := ""
	if cfg.FlatEpoch {
		epoch = "flat"
	}
	rc := RunConfig{
		Systems:     cfg.Systems,
		Threads:     cfg.Threads,
		TotalOps:    cfg.TotalOps,
		DevSizeMB:   cfg.DevSize >> 20,
		Realistic:   cfg.Realistic,
		Trials:      cfg.Trials,
		Persist:     persist,
		Kernel:      kern,
		Data:        data,
		Faults:      faults,
		Admission:   admission,
		MaxInflight: cfg.MaxInflight,
		Epoch:       epoch,
		Tenants:     cfg.TenantCounts,
	}
	return &Recorder{rec: RunRecord{
		Tool:       "arckbench",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		ConfigHash: rc.Hash(),
		Config:     rc,
	}}
}

// SetProvenance overrides the record's provenance with caller-supplied
// values: the commit under test and the (externally chosen) wall time,
// so records and trajectory rows are joinable across CI runs. Empty
// arguments leave the current values in place.
func (r *Recorder) SetProvenance(sha, timestamp string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if sha != "" {
		r.rec.GitSHA = sha
	}
	if timestamp != "" {
		r.rec.Timestamp = timestamp
	}
	r.mu.Unlock()
}

// perOpKeys maps counter names to their per-op JSON keys.
var perOpKeys = map[string]string{
	"pmem.flushes":     "flushes",
	"pmem.fences":      "fences",
	"pmem.ntstores":    "ntstores",
	"syscalls":         "syscalls",
	"syscalls.avoided": "syscalls_avoided",
	"kernel.acquires":  "acquires",
	// span.recorded is the tracer's sampled-span gauge: zero whenever
	// tracing is disabled, which the obs-smoke CI bound pins.
	"span.recorded": "spans",
	// htable.read_locks counts read-path bucket-lock acquisitions: zero
	// under the lock-free data plane, which the benchcheck bound pins.
	"htable.read_locks": "read_locks",
	// pmalloc.steals.remote counts pages stolen across NUMA node groups;
	// node-local allocation paths keep it at zero.
	"pmalloc.steals.remote": "steals_remote",
	// kernel.admission.* meter the fair-share crossing scheduler: how
	// many crossings were admitted, how many had to queue, their total
	// queued wait, and how many crossings the per-tenant rate quota
	// throttled. The tenants benchcheck bounds pin queued and throttled
	// per-op.
	"kernel.admission.admitted":  "admitted",
	"kernel.admission.queued":    "admit_queued",
	"kernel.admission.wait_ns":   "admit_wait_ns",
	"kernel.admission.throttled": "throttled",
}

// Add records one harness result under the given experiment name.
func (r *Recorder) Add(experiment string, res harness.Result) {
	if r == nil {
		return
	}
	c := Cell{
		Experiment: experiment,
		Workload:   res.Workload,
		FS:         res.FS,
		Threads:    res.Threads,
		Ops:        res.Ops,
		ElapsedNS:  res.Elapsed.Nanoseconds(),
		OpsPerSec:  res.OpsPerSec(),
		GiBPerSec:  res.GiBPerSec(),
		Latency:    res.Lat,
		Counters:   res.Counters,
		Apps:       res.Apps,
	}
	if res.Ops > 0 && len(res.Counters) > 0 {
		c.PerOp = map[string]float64{}
		for counter, key := range perOpKeys {
			if v, ok := res.Counters[counter]; ok {
				c.PerOp[key] = float64(v) / float64(res.Ops)
			}
		}
	}
	// p99_us is the sampled per-op latency tail, exposed under PerOp so
	// bounds files can pin it. Unlike the counter-derived metrics it
	// does depend on host speed, so bounds on it must be loose — they
	// exist to catch latency that scales with population or backlog
	// (milliseconds), not percent-level drift.
	if res.Lat != nil {
		if c.PerOp == nil {
			c.PerOp = map[string]float64{}
		}
		c.PerOp["p99_us"] = float64(res.Lat.P99NS) / 1e3
	}
	r.mu.Lock()
	r.rec.Cells = append(r.rec.Cells, c)
	r.mu.Unlock()
}

// Record returns a copy of the accumulated record.
func (r *Recorder) Record() RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.rec
	rec.Cells = append([]Cell(nil), r.rec.Cells...)
	return rec
}

// WriteFile writes the record as indented JSON.
func (r *Recorder) WriteFile(path string) error {
	rec := r.Record()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
