package experiments

import (
	"fmt"
	"strings"

	"arckfs/internal/crashmc"
)

// flightName flattens a campaign config name and invariant into one
// artifact file stem, e.g. "flight-create-commit-arckfs-NoTornCommit".
func flightName(workload, invariant string) string {
	return "flight-" + strings.ReplaceAll(workload, "/", "-") + "-" +
		strings.TrimPrefix(invariant, "crashmc:")
}

// Crashmc runs the crash-state model-checking campaign
// (internal/crashmc) and renders one summary line per configuration
// plus every shrunk counterexample. It returns an error when any
// configuration misses its Expect oracle — a buggy configuration that
// found nothing, or a patched one that found something — which is what
// makes `arckbench -exp crashmc` directly usable as the CI smoke gate.
//
// The campaign is seeded and deterministic; it ignores the
// benchmarking knobs in cfg except Out.
func Crashmc(cfg Config) error {
	cfg.fill()
	fmt.Fprintln(cfg.Out, "crashmc campaign — bounded crash-state model checking over the persist schedule")
	fmt.Fprintln(cfg.Out, "(points = observation instants; images = crash states mounted and checked)")
	fmt.Fprintln(cfg.Out)
	var bad []string
	for _, c := range crashmc.Campaign() {
		res, err := crashmc.Run(c)
		if err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out, res.Summary())
		for _, ce := range res.Counterexamples {
			fmt.Fprintf(cfg.Out, "    counterexample: %s\n", ce)
			if ce.Flight == nil {
				continue
			}
			// Every breach ships its flight record as a JSON artifact
			// (directory override: $ARCK_FLIGHT_DIR, default artifacts/).
			path, err := ce.Flight.WriteFile("", flightName(ce.Workload, ce.Invariant))
			if err != nil {
				fmt.Fprintf(cfg.Out, "    flight record: write failed: %v\n", err)
				continue
			}
			fmt.Fprintf(cfg.Out, "    flight record: %s (%d spans)\n", path, len(ce.Flight.Spans))
		}
		if !res.OK() {
			bad = append(bad, c.Name)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("crashmc: oracle mismatch in %s", strings.Join(bad, ", "))
	}
	return nil
}
