// Package filebench reimplements the Webproxy and Varmail personalities
// of Filebench as the ArckFS+ paper evaluates them.
//
// The Trio artifact sidesteps Filebench's fileset-lock bottleneck by
// giving every thread a private directory, changing the workload's
// semantics. This package implements both that variant and the paper's
// new framework (§5.3): a genuinely shared directory whose file selection
// is coordinated by fine-grained per-filename locks instead of one
// fileset lock.
package filebench

import (
	"fmt"
	"math/rand"

	"arckfs/internal/fsapi"
	"arckfs/internal/harness"
	"arckfs/internal/hlock"
)

// Personality selects the workload mix.
type Personality int

const (
	// Webproxy: per iteration, delete+recreate one file with a ~16 KiB
	// body, then open/read/close five random files, then append to a
	// log.
	Webproxy Personality = iota
	// Varmail: per iteration, delete one file, create+append+fsync one,
	// open+read+append+fsync one, open+read+close one — the mail-server
	// mix.
	Varmail
)

func (p Personality) String() string {
	if p == Varmail {
		return "varmail"
	}
	return "webproxy"
}

// Config sizes the run.
type Config struct {
	Personality Personality
	// Files is the fileset size (shared across all threads in shared
	// mode, per thread in private mode).
	Files int
	// MeanFileSize is the file body size.
	MeanFileSize int
	// SharedDir selects the paper's shared-directory framework; false
	// reproduces the Trio artifact's private-directory variant.
	SharedDir bool
}

// Defaults approximates the paper's configuration at laptop scale.
func Defaults(p Personality) Config {
	return Config{Personality: p, Files: 256, MeanFileSize: 16 << 10, SharedDir: true}
}

// fileset is the shared-directory framework: filenames plus one spinlock
// per filename slot, the fine-grained coordination that replaces
// Filebench's whole-fileset lock.
type fileset struct {
	dir   string
	names []string
	locks []hlock.SpinLock
}

func newFileset(dir string, n int) *fileset {
	fsr := &fileset{dir: dir, names: make([]string, n), locks: make([]hlock.SpinLock, n)}
	for i := range fsr.names {
		fsr.names[i] = fmt.Sprintf("%s/vf%05d", dir, i)
	}
	return fsr
}

// withFile locks one filename slot for the duration of fn.
func (s *fileset) withFile(idx int, fn func(path string) error) error {
	s.locks[idx].Lock()
	defer s.locks[idx].Unlock()
	return fn(s.names[idx])
}

// Run executes the personality and returns the aggregate result.
func Run(fs fsapi.FS, cfg Config, threads, opsPerThread int) (harness.Result, error) {
	setup := fs.NewThread(0)
	body := make([]byte, cfg.MeanFileSize)
	for i := range body {
		body[i] = byte(i)
	}

	var sets []*fileset
	mkset := func(dir string) (*fileset, error) {
		if err := setup.Mkdir(dir); err != nil && err != fsapi.ErrExist {
			return nil, err
		}
		set := newFileset(dir, cfg.Files)
		for _, name := range set.names {
			if err := setup.Create(name); err != nil && err != fsapi.ErrExist {
				return nil, err
			}
			fd, err := setup.Open(name)
			if err != nil {
				return nil, err
			}
			if _, err := setup.WriteAt(fd, body, 0); err != nil {
				return nil, err
			}
			setup.Close(fd)
		}
		return set, nil
	}
	if cfg.SharedDir {
		set, err := mkset("/fileset")
		if err != nil {
			return harness.Result{}, err
		}
		for tid := 0; tid < threads; tid++ {
			sets = append(sets, set)
		}
	} else {
		for tid := 0; tid < threads; tid++ {
			set, err := mkset(fmt.Sprintf("/fileset%d", tid))
			if err != nil {
				return harness.Result{}, err
			}
			sets = append(sets, set)
		}
	}
	if err := setup.Mkdir("/logs"); err != nil && err != fsapi.ErrExist {
		return harness.Result{}, err
	}

	workers := make([]func(i int) error, threads)
	for tid := 0; tid < threads; tid++ {
		t := fs.NewThread(tid)
		set := sets[tid]
		rng := rand.New(rand.NewSource(int64(tid)*101 + 3))
		logPath := fmt.Sprintf("/logs/log%d", tid)
		if err := t.Create(logPath); err != nil && err != fsapi.ErrExist {
			return harness.Result{}, err
		}
		logFD, err := t.Open(logPath)
		if err != nil {
			return harness.Result{}, err
		}
		var logOff int64
		readBuf := make([]byte, cfg.MeanFileSize)
		switch cfg.Personality {
		case Webproxy:
			workers[tid] = func(i int) error {
				// delete + recreate + write whole file
				idx := rng.Intn(len(set.names))
				err := set.withFile(idx, func(p string) error {
					if err := t.Unlink(p); err != nil && err != fsapi.ErrNotExist {
						return err
					}
					if err := t.Create(p); err != nil {
						return err
					}
					fd, err := t.Open(p)
					if err != nil {
						return err
					}
					defer t.Close(fd)
					_, err = t.WriteAt(fd, body, 0)
					return err
				})
				if err != nil {
					return err
				}
				// five open/read/close of random files
				for k := 0; k < 5; k++ {
					idx := rng.Intn(len(set.names))
					err := set.withFile(idx, func(p string) error {
						fd, err := t.Open(p)
						if err != nil {
							return err
						}
						defer t.Close(fd)
						_, err = t.ReadAt(fd, readBuf, 0)
						return err
					})
					if err != nil {
						return err
					}
				}
				// append to the proxy log
				if logOff > 64<<20 {
					if err := t.Truncate(logPath, 0); err != nil {
						return err
					}
					logOff = 0
				}
				if _, err := t.WriteAt(logFD, body[:512], logOff); err != nil {
					return err
				}
				logOff += 512
				return nil
			}
		case Varmail:
			workers[tid] = func(i int) error {
				// delete a mail file
				idx := rng.Intn(len(set.names))
				if err := set.withFile(idx, func(p string) error {
					if err := t.Unlink(p); err != nil && err != fsapi.ErrNotExist {
						return err
					}
					return nil
				}); err != nil {
					return err
				}
				// create + append + fsync (mail arrival)
				if err := set.withFile(idx, func(p string) error {
					if err := t.Create(p); err != nil && err != fsapi.ErrExist {
						return err
					}
					fd, err := t.Open(p)
					if err != nil {
						return err
					}
					defer t.Close(fd)
					if _, err := t.WriteAt(fd, body[:cfg.MeanFileSize/2], 0); err != nil {
						return err
					}
					return t.Fsync(fd)
				}); err != nil {
					return err
				}
				// open + read + append + fsync (mail update)
				idx2 := rng.Intn(len(set.names))
				if err := set.withFile(idx2, func(p string) error {
					fd, err := t.Open(p)
					if err != nil {
						if err == fsapi.ErrNotExist {
							return nil // deleted by a peer; Filebench skips
						}
						return err
					}
					defer t.Close(fd)
					n, err := t.ReadAt(fd, readBuf, 0)
					if err != nil {
						return err
					}
					if _, err := t.WriteAt(fd, body[:512], int64(n)); err != nil {
						return err
					}
					return t.Fsync(fd)
				}); err != nil {
					return err
				}
				// open + read whole + close
				idx3 := rng.Intn(len(set.names))
				return set.withFile(idx3, func(p string) error {
					fd, err := t.Open(p)
					if err != nil {
						if err == fsapi.ErrNotExist {
							return nil
						}
						return err
					}
					defer t.Close(fd)
					_, err = t.ReadAt(fd, readBuf, 0)
					return err
				})
			}
		}
	}
	name := cfg.Personality.String()
	if !cfg.SharedDir {
		name += "-privdirs"
	}
	res := harness.RunCounted(harness.SourceOf(fs), fs.Name(), name, threads, opsPerThread, func(tid, i int) error {
		return workers[tid](i)
	})
	return res, res.Err
}
