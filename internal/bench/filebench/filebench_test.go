package filebench

import (
	"testing"

	"arckfs/internal/baseline/nova"
	"arckfs/internal/core"
	"arckfs/internal/fsapi"
)

func tinyCfg(p Personality, shared bool) Config {
	return Config{Personality: p, Files: 32, MeanFileSize: 4 << 10, SharedDir: shared}
}

func run(t *testing.T, fs fsapi.FS, cfg Config) {
	t.Helper()
	res, err := Run(fs, cfg, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 || res.OpsPerSec() <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestWebproxySharedOnArckFSPlus(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	run(t, sys.NewApp(0, 0), tinyCfg(Webproxy, true))
}

func TestVarmailSharedOnArckFSPlus(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	run(t, sys.NewApp(0, 0), tinyCfg(Varmail, true))
}

func TestPrivateDirVariant(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	run(t, sys.NewApp(0, 0), tinyCfg(Webproxy, false))
}

func TestWebproxyOnNova(t *testing.T) {
	fs, err := nova.New(128<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	run(t, fs, tinyCfg(Webproxy, true))
	run(t, fs, tinyCfg(Varmail, true))
}
