// Package fiolike reproduces the fio bandwidth sweeps of the Trio
// evaluation: per-thread private files, sequential or random access, a
// configurable block size, read or write.
package fiolike

import (
	"fmt"
	"math/rand"

	"arckfs/internal/fsapi"
	"arckfs/internal/harness"
)

// Job describes one fio-style run.
type Job struct {
	Name      string
	Write     bool
	Random    bool
	BlockSize int
	FileSize  uint64
}

// StandardJobs mirrors the artifact's fio configurations (4K blocks,
// sequential and random, read and write).
func StandardJobs(fileSize uint64) []Job {
	return []Job{
		{Name: "seq-read-4k", BlockSize: 4096, FileSize: fileSize},
		{Name: "rand-read-4k", Random: true, BlockSize: 4096, FileSize: fileSize},
		{Name: "seq-write-4k", Write: true, BlockSize: 4096, FileSize: fileSize},
		{Name: "rand-write-4k", Write: true, Random: true, BlockSize: 4096, FileSize: fileSize},
	}
}

// Run executes the job on threads workers, opsPerThread block operations
// each, and returns the aggregate result with byte throughput.
func Run(fs fsapi.FS, job Job, threads, opsPerThread int) (harness.Result, error) {
	setup := fs.NewThread(0)
	blob := make([]byte, 1<<20)
	for tid := 0; tid < threads; tid++ {
		p := fmt.Sprintf("/fio%d", tid)
		if err := setup.Create(p); err != nil && err != fsapi.ErrExist {
			return harness.Result{}, err
		}
		fd, err := setup.Open(p)
		if err != nil {
			return harness.Result{}, err
		}
		for off := uint64(0); off < job.FileSize; off += uint64(len(blob)) {
			if _, err := setup.WriteAt(fd, blob, int64(off)); err != nil {
				return harness.Result{}, err
			}
		}
		setup.Close(fd)
	}
	workers := make([]func(i int) error, threads)
	for tid := 0; tid < threads; tid++ {
		t := fs.NewThread(tid)
		fd, err := t.Open(fmt.Sprintf("/fio%d", tid))
		if err != nil {
			return harness.Result{}, err
		}
		rng := rand.New(rand.NewSource(int64(tid) + 99))
		buf := make([]byte, job.BlockSize)
		nblocks := int(job.FileSize) / job.BlockSize
		job := job
		workers[tid] = func(i int) error {
			var off int64
			if job.Random {
				off = int64(rng.Intn(nblocks)) * int64(job.BlockSize)
			} else {
				off = int64(i%nblocks) * int64(job.BlockSize)
			}
			if job.Write {
				_, err := t.WriteAt(fd, buf, off)
				return err
			}
			_, err := t.ReadAt(fd, buf, off)
			return err
		}
	}
	res := harness.RunCounted(harness.SourceOf(fs), fs.Name(), "fio/"+job.Name, threads, opsPerThread, func(tid, i int) error {
		return workers[tid](i)
	})
	res.Bytes = res.Ops * int64(job.BlockSize)
	return res, res.Err
}
