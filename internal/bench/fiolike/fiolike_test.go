package fiolike

import (
	"testing"

	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/core"
)

func TestStandardJobsRun(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	for _, job := range StandardJobs(1 << 20) {
		res, err := Run(app, job, 2, 200)
		if err != nil {
			t.Fatalf("%s: %v", job.Name, err)
		}
		if res.Bytes != res.Ops*4096 || res.GiBPerSec() <= 0 {
			t.Fatalf("%s result: %+v", job.Name, res)
		}
	}
}

func TestFioOnPmfs(t *testing.T) {
	fs, err := pmfs.New(64<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(fs, Job{Name: "w", Write: true, BlockSize: 4096, FileSize: 256 << 10}, 1, 100)
	if err != nil || res.Ops != 100 {
		t.Fatalf("%+v, %v", res, err)
	}
}
