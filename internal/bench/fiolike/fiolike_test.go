package fiolike

import (
	"testing"

	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/core"
	"arckfs/internal/harness"
)

func TestStandardJobsRun(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	for _, job := range StandardJobs(1 << 20) {
		res, err := Run(app, job, 2, 200)
		if err != nil {
			t.Fatalf("%s: %v", job.Name, err)
		}
		if res.Bytes != res.Ops*4096 || res.GiBPerSec() <= 0 {
			t.Fatalf("%s result: %+v", job.Name, res)
		}
	}
}

func TestFioOnPmfs(t *testing.T) {
	fs, err := pmfs.New(64<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(fs, Job{Name: "w", Write: true, BlockSize: 4096, FileSize: 256 << 10}, 1, 100)
	if err != nil || res.Ops != 100 {
		t.Fatalf("%+v, %v", res, err)
	}
}

// benchRead drives the 4K sequential read job under the given latency
// sampling setting; compare the two benchmarks to bound the telemetry
// overhead (the PR's acceptance bar is <=5% on this workload).
func benchRead(b *testing.B, sample int) {
	old := harness.LatencySample
	harness.LatencySample = sample
	defer func() { harness.LatencySample = old }()
	sys, err := core.NewSystem(core.Config{DevSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	fs := sys.NewApp(0, 0)
	job := Job{Name: "seq-read-4k", BlockSize: 4096, FileSize: 4 << 20}
	b.ResetTimer()
	res, err := Run(fs, job, 1, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(job.BlockSize))
	_ = res
}

func BenchmarkReadNoTelemetry(b *testing.B)      { benchRead(b, 0) }
func BenchmarkReadSampledTelemetry(b *testing.B) { benchRead(b, 8) }
