package hlock

import (
	"sync"
	"testing"
	"time"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !l.Locked() {
		t.Fatal("Locked() = false while held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() = true after unlock")
	}
}

func TestSpinLockUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestRWSpinReadersShareWritersExclude(t *testing.T) {
	var l RWSpin
	l.RLock()
	if !l.TryRLock() {
		t.Fatal("second reader blocked")
	}
	if l.TryLock() {
		t.Fatal("writer acquired with readers present")
	}
	l.RUnlock()
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("writer blocked on free lock")
	}
	if l.TryRLock() {
		t.Fatal("reader acquired with writer present")
	}
	l.Unlock()
}

func TestRWSpinCounter(t *testing.T) {
	var l RWSpin
	var shared int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock()
				shared++
				l.Unlock()
				l.RLock()
				_ = shared
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 2000 {
		t.Fatalf("shared = %d", shared)
	}
}

func TestRWSpinMisuse(t *testing.T) {
	for name, f := range map[string]func(){
		"RUnlock": func() { var l RWSpin; l.RUnlock() },
		"Unlock":  func() { var l RWSpin; l.Unlock() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of unheld lock did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBRLockReadersShareWritersExclude(t *testing.T) {
	var l BRLock
	s1 := l.RLock()
	s2 := l.RLock()
	if l.TryLock() {
		t.Fatal("writer acquired with readers present")
	}
	l.RUnlock(s1)
	l.RUnlock(s2)
	if !l.TryLock() {
		t.Fatal("writer blocked on free lock")
	}
	if !l.Locked() {
		t.Fatal("Locked() = false while held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() = true after unlock")
	}
}

func TestBRLockCounter(t *testing.T) {
	for _, flat := range []bool{false, true} {
		var l BRLock
		l.SetFlat(flat)
		var shared int
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 500; j++ {
					l.Lock()
					shared++
					l.Unlock()
					s := l.RLock()
					_ = shared
					l.RUnlock(s)
				}
			}()
		}
		wg.Wait()
		if shared != 4000 {
			t.Fatalf("flat=%v: shared = %d, want 4000", flat, shared)
		}
	}
}

// TestBRLockWriterNotStarved pins the property BRLock exists for: an
// exclusive acquisition completes while a stream of readers keeps
// arriving, because new readers back off behind the writer flag.
func TestBRLockWriterNotStarved(t *testing.T) {
	var l BRLock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := l.RLock()
				l.RUnlock(s)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Lock()
			l.Unlock()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("writer starved behind continuous readers")
	}
	close(stop)
	wg.Wait()
}

func TestBRLockMisuse(t *testing.T) {
	for name, f := range map[string]func(){
		"RUnlock": func() { var l BRLock; l.RUnlock(0) },
		"Unlock":  func() { var l BRLock; l.Unlock() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of unheld lock did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLeaseLockBasic(t *testing.T) {
	var l LeaseLock
	if !l.TryAcquire(1, time.Minute) {
		t.Fatal("acquire on free lease failed")
	}
	if l.TryAcquire(2, time.Minute) {
		t.Fatal("second owner acquired a live lease")
	}
	if l.Holder() != 1 {
		t.Fatalf("Holder = %d", l.Holder())
	}
	// Re-acquire by the same owner extends the lease.
	if !l.TryAcquire(1, time.Minute) {
		t.Fatal("holder could not extend its lease")
	}
	if !l.Release(1) {
		t.Fatal("release by holder failed")
	}
	if l.Release(1) {
		t.Fatal("double release succeeded")
	}
	if !l.TryAcquire(2, time.Minute) {
		t.Fatal("acquire after release failed")
	}
}

func TestLeaseLockExpiry(t *testing.T) {
	var l LeaseLock
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	if !l.TryAcquire(1, 10*time.Second) {
		t.Fatal("acquire failed")
	}
	now = now.Add(5 * time.Second)
	if l.TryAcquire(2, 10*time.Second) {
		t.Fatal("lease stolen before expiry")
	}
	now = now.Add(6 * time.Second)
	if l.Holder() != 0 {
		t.Fatalf("expired lease has holder %d", l.Holder())
	}
	if !l.TryAcquire(2, 10*time.Second) {
		t.Fatal("expired lease not stealable")
	}
	// The original owner's release must now fail: it lost the lease.
	if l.Release(1) {
		t.Fatal("stale owner released a stolen lease")
	}
}

func TestLeaseLockZeroOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l LeaseLock
	l.TryAcquire(0, time.Second)
}
