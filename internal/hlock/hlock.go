// Package hlock provides the low-level synchronization primitives ArckFS
// uses: spinlocks, readers-writer spinlocks, and the lease-based global
// rename lock introduced by the §4.6 patch.
//
// The spin primitives yield to the scheduler under contention so they
// behave correctly on machines with few cores (goroutines are not
// preemptible inside a pure spin on a single-core host).
package hlock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// spinYield backs off after a burst of failed attempts.
func spinYield(attempts *int) {
	*attempts++
	if *attempts%16 == 0 {
		runtime.Gosched()
	}
}

// SpinLock is a test-and-set mutual exclusion lock.
// The zero value is unlocked.
type SpinLock struct {
	state atomic.Int32
	_     [60]byte // pad to a cache line against false sharing
}

// Lock acquires the lock, spinning (with scheduler yields) until free.
func (l *SpinLock) Lock() {
	attempts := 0
	for !l.state.CompareAndSwap(0, 1) {
		spinYield(&attempts)
	}
}

// TryLock acquires the lock if it is free and reports whether it did.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("hlock: unlock of unlocked SpinLock")
	}
}

// Locked reports a racy snapshot of whether the lock is held.
func (l *SpinLock) Locked() bool { return l.state.Load() != 0 }

// RWSpin is a readers-writer spinlock with writer preference encoded as a
// single atomic counter: positive values count readers, the writerBias
// marks an exclusive holder.
// The zero value is unlocked.
type RWSpin struct {
	state atomic.Int64
	_     [56]byte
}

const writerBias = int64(1) << 40

// RLock acquires the lock in shared mode.
func (l *RWSpin) RLock() {
	attempts := 0
	for {
		if v := l.state.Load(); v >= 0 && l.state.CompareAndSwap(v, v+1) {
			return
		}
		spinYield(&attempts)
	}
}

// TryRLock acquires shared mode without spinning.
func (l *RWSpin) TryRLock() bool {
	v := l.state.Load()
	return v >= 0 && l.state.CompareAndSwap(v, v+1)
}

// RUnlock releases shared mode.
func (l *RWSpin) RUnlock() {
	if l.state.Add(-1) < 0 {
		panic("hlock: RUnlock without RLock")
	}
}

// Lock acquires the lock exclusively.
func (l *RWSpin) Lock() {
	attempts := 0
	for !l.state.CompareAndSwap(0, -writerBias) {
		spinYield(&attempts)
	}
}

// TryLock acquires exclusive mode without spinning.
func (l *RWSpin) TryLock() bool {
	return l.state.CompareAndSwap(0, -writerBias)
}

// Unlock releases exclusive mode.
func (l *RWSpin) Unlock() {
	if l.state.Add(writerBias) != 0 {
		panic("hlock: Unlock of RWSpin not exclusively held")
	}
}

// Locked reports a racy snapshot of whether any holder exists.
func (l *RWSpin) Locked() bool { return l.state.Load() != 0 }

// LeaseLock is a revocable exclusive lock held by a named owner with a
// deadline. The §4.6 patch uses one as the kernel's global rename lock:
// a LibFS acquires it around cross-directory directory renames, and the
// lease expiry prevents a malicious or crashed application from wedging
// every other application's renames forever.
type LeaseLock struct {
	mu       SpinLock
	owner    int64 // 0 = free
	deadline time.Time
	now      func() time.Time // test hook
}

// SetClock overrides the lease clock (for tests). Pass nil to restore the
// real clock.
func (l *LeaseLock) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

func (l *LeaseLock) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

// TryAcquire grants the lease to owner for ttl if the lock is free or the
// current lease has expired. It reports whether the lease was granted.
// owner must be nonzero.
func (l *LeaseLock) TryAcquire(owner int64, ttl time.Duration) bool {
	if owner == 0 {
		panic("hlock: zero lease owner")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != 0 && l.owner != owner && l.clock().Before(l.deadline) {
		return false
	}
	l.owner = owner
	l.deadline = l.clock().Add(ttl)
	return true
}

// Acquire spins until the lease is granted.
func (l *LeaseLock) Acquire(owner int64, ttl time.Duration) {
	attempts := 0
	for !l.TryAcquire(owner, ttl) {
		spinYield(&attempts)
	}
}

// Release returns the lease if owner still holds it and reports whether
// it did (false means the lease had already expired and been stolen).
func (l *LeaseLock) Release(owner int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != owner {
		return false
	}
	l.owner = 0
	return true
}

// Holder returns the current lease owner (0 if free), treating an expired
// lease as free.
func (l *LeaseLock) Holder() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != 0 && !l.clock().Before(l.deadline) {
		return 0
	}
	return l.owner
}
