// Package hlock provides the low-level synchronization primitives ArckFS
// uses: spinlocks, readers-writer spinlocks, and the lease-based global
// rename lock introduced by the §4.6 patch.
//
// The spin primitives yield to the scheduler under contention so they
// behave correctly on machines with few cores (goroutines are not
// preemptible inside a pure spin on a single-core host).
package hlock

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// spinYield backs off after a burst of failed attempts.
func spinYield(attempts *int) {
	*attempts++
	if *attempts%16 == 0 {
		runtime.Gosched()
	}
}

// SpinLock is a test-and-set mutual exclusion lock.
// The zero value is unlocked.
type SpinLock struct {
	state atomic.Int32
	_     [60]byte // pad to a cache line against false sharing
}

// Lock acquires the lock, spinning (with scheduler yields) until free.
func (l *SpinLock) Lock() {
	attempts := 0
	for !l.state.CompareAndSwap(0, 1) {
		spinYield(&attempts)
	}
}

// TryLock acquires the lock if it is free and reports whether it did.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("hlock: unlock of unlocked SpinLock")
	}
}

// Locked reports a racy snapshot of whether the lock is held.
func (l *SpinLock) Locked() bool { return l.state.Load() != 0 }

// RWSpin is a readers-writer spinlock with writer preference encoded as a
// single atomic counter: positive values count readers, the writerBias
// marks an exclusive holder.
// The zero value is unlocked.
type RWSpin struct {
	state atomic.Int64
	_     [56]byte
}

const writerBias = int64(1) << 40

// RLock acquires the lock in shared mode.
func (l *RWSpin) RLock() {
	attempts := 0
	for {
		if v := l.state.Load(); v >= 0 && l.state.CompareAndSwap(v, v+1) {
			return
		}
		spinYield(&attempts)
	}
}

// TryRLock acquires shared mode without spinning.
func (l *RWSpin) TryRLock() bool {
	v := l.state.Load()
	return v >= 0 && l.state.CompareAndSwap(v, v+1)
}

// RUnlock releases shared mode.
func (l *RWSpin) RUnlock() {
	if l.state.Add(-1) < 0 {
		panic("hlock: RUnlock without RLock")
	}
}

// Lock acquires the lock exclusively.
func (l *RWSpin) Lock() {
	attempts := 0
	for !l.state.CompareAndSwap(0, -writerBias) {
		spinYield(&attempts)
	}
}

// TryLock acquires exclusive mode without spinning.
func (l *RWSpin) TryLock() bool {
	return l.state.CompareAndSwap(0, -writerBias)
}

// Unlock releases exclusive mode.
func (l *RWSpin) Unlock() {
	if l.state.Add(writerBias) != 0 {
		panic("hlock: Unlock of RWSpin not exclusively held")
	}
}

// Locked reports a racy snapshot of whether any holder exists.
func (l *RWSpin) Locked() bool { return l.state.Load() != 0 }

// BRSlots is the number of per-slot reader counters a BRLock stripes
// readers over. Power of two so the slot pick is a mask.
const BRSlots = 32

// brSlot is one padded reader counter: readers on different slots touch
// different cache lines, so shared acquisition scales with core count
// instead of serializing on one contended line.
type brSlot struct {
	n atomic.Int64
	_ [56]byte
}

// BRLock is a big-reader readers-writer spinlock: shared acquisitions
// increment one of BRSlots cache-line-padded counters (picked by a
// stack-address hash, so a goroutine keeps reusing its slot), and an
// exclusive acquisition raises a writer flag and waits for every slot to
// drain. Compared to RWSpin this trades a costlier exclusive acquisition
// (a scan over BRSlots counters instead of one CAS) for two properties a
// many-tenant control plane needs:
//
//   - shared mode stops being a single contended cache line, so read-side
//     throughput no longer collapses as the reader count grows;
//   - the writer flag gives exclusive mode priority — new readers back
//     off while a writer waits, bounding enterExcl quiescence by the
//     in-flight readers instead of starving behind an endless stream of
//     new ones.
//
// RLock returns the slot index; the caller passes it back to RUnlock.
// The zero value is unlocked.
type BRLock struct {
	writer atomic.Int32
	// flat routes every reader to slot 0, restoring RWSpin's
	// all-readers-on-one-line behaviour (the A/B baseline for the
	// tenant-scaling experiment). Writer priority is kept in both modes.
	flat  atomic.Bool
	_     [56]byte
	slots [BRSlots]brSlot
}

// SetFlat selects the degraded single-counter reader mode (true) or the
// striped big-reader mode (false). Callers flip it only while the lock
// is quiescent; in-flight readers are still unlocked correctly either
// way because RUnlock takes the slot token.
func (l *BRLock) SetFlat(flat bool) { l.flat.Store(flat) }

// slot picks this goroutine's reader slot from its stack address:
// stable while the goroutine lives (modulo stack moves, which only cost
// a slot switch, never correctness — the token travels with the caller).
func (l *BRLock) slot() int {
	if l.flat.Load() {
		return 0
	}
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p>>10)^(p>>16)) & (BRSlots - 1)
}

// RLock acquires shared mode and returns the slot token for RUnlock.
func (l *BRLock) RLock() int {
	s := l.slot()
	attempts := 0
	for {
		if l.writer.Load() == 0 {
			l.slots[s].n.Add(1)
			if l.writer.Load() == 0 {
				return s
			}
			// A writer arrived between the two checks: back out so it
			// can drain, then retry behind it.
			l.slots[s].n.Add(-1)
		}
		spinYield(&attempts)
	}
}

// RUnlock releases shared mode; slot is the token RLock returned.
func (l *BRLock) RUnlock(slot int) {
	if l.slots[slot].n.Add(-1) < 0 {
		panic("hlock: RUnlock without RLock")
	}
}

// Lock acquires exclusive mode: raise the writer flag (queueing behind
// other writers), then wait for every reader slot to drain.
func (l *BRLock) Lock() {
	attempts := 0
	for !l.writer.CompareAndSwap(0, 1) {
		spinYield(&attempts)
	}
	for i := range l.slots {
		for l.slots[i].n.Load() != 0 {
			spinYield(&attempts)
		}
	}
}

// TryLock acquires exclusive mode only if no reader or writer holds the
// lock, without spinning.
func (l *BRLock) TryLock() bool {
	if !l.writer.CompareAndSwap(0, 1) {
		return false
	}
	for i := range l.slots {
		if l.slots[i].n.Load() != 0 {
			l.writer.Store(0)
			return false
		}
	}
	return true
}

// Unlock releases exclusive mode.
func (l *BRLock) Unlock() {
	if l.writer.Swap(0) != 1 {
		panic("hlock: Unlock of BRLock not exclusively held")
	}
}

// Locked reports a racy snapshot of whether any holder exists.
func (l *BRLock) Locked() bool {
	if l.writer.Load() != 0 {
		return true
	}
	for i := range l.slots {
		if l.slots[i].n.Load() != 0 {
			return true
		}
	}
	return false
}

// LeaseLock is a revocable exclusive lock held by a named owner with a
// deadline. The §4.6 patch uses one as the kernel's global rename lock:
// a LibFS acquires it around cross-directory directory renames, and the
// lease expiry prevents a malicious or crashed application from wedging
// every other application's renames forever.
type LeaseLock struct {
	mu       SpinLock
	owner    int64 // 0 = free
	deadline time.Time
	now      func() time.Time // test hook
}

// SetClock overrides the lease clock (for tests). Pass nil to restore the
// real clock.
func (l *LeaseLock) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

func (l *LeaseLock) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

// TryAcquire grants the lease to owner for ttl if the lock is free or the
// current lease has expired. It reports whether the lease was granted.
// owner must be nonzero.
func (l *LeaseLock) TryAcquire(owner int64, ttl time.Duration) bool {
	if owner == 0 {
		panic("hlock: zero lease owner")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != 0 && l.owner != owner && l.clock().Before(l.deadline) {
		return false
	}
	l.owner = owner
	l.deadline = l.clock().Add(ttl)
	return true
}

// Acquire spins until the lease is granted.
func (l *LeaseLock) Acquire(owner int64, ttl time.Duration) {
	attempts := 0
	for !l.TryAcquire(owner, ttl) {
		spinYield(&attempts)
	}
}

// Release returns the lease if owner still holds it and reports whether
// it did (false means the lease had already expired and been stolen).
func (l *LeaseLock) Release(owner int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != owner {
		return false
	}
	l.owner = 0
	return true
}

// Holder returns the current lease owner (0 if free), treating an expired
// lease as free.
func (l *LeaseLock) Holder() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner != 0 && !l.clock().Before(l.deadline) {
		return 0
	}
	return l.owner
}
