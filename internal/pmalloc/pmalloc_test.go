package pmalloc

import (
	"sync"
	"testing"

	"arckfs/internal/layout"
)

func geo(pages uint64) layout.Geometry {
	return layout.Geometry{PageCount: pages, DataStart: 4, InodeCap: 4}
}

func TestAllocAllAndExhaust(t *testing.T) {
	a := New(geo(100))
	if got := a.FreeCount(); got != 96 {
		t.Fatalf("FreeCount = %d", got)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 96; i++ {
		p, err := a.Alloc(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p < 4 || p >= 100 || seen[p] {
			t.Fatalf("bad page %d (dup=%v)", p, seen[p])
		}
		seen[p] = true
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("allocation past capacity succeeded")
	}
	a.Free(7, 9)
	if a.FreeCount() != 2 {
		t.Fatalf("FreeCount after free = %d", a.FreeCount())
	}
}

func TestNewExcluding(t *testing.T) {
	a := NewExcluding(geo(20), 5, 6)
	if a.FreeCount() != 14 {
		t.Fatalf("FreeCount = %d", a.FreeCount())
	}
	for i := 0; i < 14; i++ {
		p, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if p == 5 || p == 6 {
			t.Fatalf("excluded page %d handed out", p)
		}
	}
}

func TestAllocBatchRollsBackOnFailure(t *testing.T) {
	a := New(geo(12)) // 8 free pages
	if _, err := a.AllocBatch(0, 100); err == nil {
		t.Fatal("oversized batch succeeded")
	}
	if a.FreeCount() != 8 {
		t.Fatalf("failed batch leaked pages: %d free", a.FreeCount())
	}
	pages, err := a.AllocBatch(0, 8)
	if err != nil || len(pages) != 8 {
		t.Fatalf("batch = %v, %v", pages, err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := New(geo(4100))
	var wg sync.WaitGroup
	var mu sync.Mutex
	all := map[uint64]int{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			var local []uint64
			for i := 0; i < 400; i++ {
				p, err := a.Alloc(cpu)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				local = append(local, p)
				if i%3 == 2 {
					a.Free(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			mu.Lock()
			for _, p := range local {
				all[p]++
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	for p, n := range all {
		if n > 1 {
			t.Fatalf("page %d allocated %d times concurrently", p, n)
		}
	}
}
