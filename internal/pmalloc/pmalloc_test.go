package pmalloc

import (
	"sync"
	"testing"

	"arckfs/internal/layout"
)

func geo(pages uint64) layout.Geometry {
	return layout.Geometry{PageCount: pages, DataStart: 4, InodeCap: 4}
}

func TestAllocAllAndExhaust(t *testing.T) {
	a := New(geo(100))
	if got := a.FreeCount(); got != 96 {
		t.Fatalf("FreeCount = %d", got)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 96; i++ {
		p, err := a.Alloc(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p < 4 || p >= 100 || seen[p] {
			t.Fatalf("bad page %d (dup=%v)", p, seen[p])
		}
		seen[p] = true
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("allocation past capacity succeeded")
	}
	a.Free(7, 9)
	if a.FreeCount() != 2 {
		t.Fatalf("FreeCount after free = %d", a.FreeCount())
	}
}

func TestNewExcluding(t *testing.T) {
	a := NewExcluding(geo(20), 5, 6)
	if a.FreeCount() != 14 {
		t.Fatalf("FreeCount = %d", a.FreeCount())
	}
	for i := 0; i < 14; i++ {
		p, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if p == 5 || p == 6 {
			t.Fatalf("excluded page %d handed out", p)
		}
	}
}

func TestAllocBatchRollsBackOnFailure(t *testing.T) {
	a := New(geo(12)) // 8 free pages
	if _, err := a.AllocBatch(0, 100); err == nil {
		t.Fatal("oversized batch succeeded")
	}
	if a.FreeCount() != 8 {
		t.Fatalf("failed batch leaked pages: %d free", a.FreeCount())
	}
	pages, err := a.AllocBatch(0, 8)
	if err != nil || len(pages) != 8 {
		t.Fatalf("batch = %v, %v", pages, err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := New(geo(4100))
	var wg sync.WaitGroup
	var mu sync.Mutex
	all := map[uint64]int{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			var local []uint64
			for i := 0; i < 400; i++ {
				p, err := a.Alloc(cpu)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				local = append(local, p)
				if i%3 == 2 {
					a.Free(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			mu.Lock()
			for _, p := range local {
				all[p]++
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	for p, n := range all {
		if n > 1 {
			t.Fatalf("page %d allocated %d times concurrently", p, n)
		}
	}
}

func TestAllocStealsAcrossStripes(t *testing.T) {
	// Drain the device from CPU 0, free everything back into CPU 0's
	// stripe, and allocate from CPU 7: the global pool is empty, stripe 7
	// is empty, and only cross-stripe stealing can satisfy the request.
	a := New(geo(100)) // 96 free pages
	var pages []uint64
	for {
		p, err := a.Alloc(0)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	if len(pages) != 96 {
		t.Fatalf("drained %d pages, want 96", len(pages))
	}
	a.FreeLocal(0, pages[:64]...) // fits within the stripe cap, no spill
	for i := 0; i < 64; i++ {
		if _, err := a.Alloc(7); err != nil {
			t.Fatalf("alloc %d from starving stripe: %v", i, err)
		}
	}
	if _, err := a.Alloc(7); err == nil {
		t.Fatal("allocation past capacity succeeded")
	}
}

func TestFreeLocalSpillsToGlobal(t *testing.T) {
	a := NewEmpty()
	pages := make([]uint64, 3*refillBatch)
	for i := range pages {
		pages[i] = uint64(1000 + i)
	}
	a.FreeLocal(3, pages...)
	// The stripe caps at 2*refillBatch; the rest must reach the global
	// pool so FreeCount still sees every page.
	if got := a.FreeCount(); got != 3*refillBatch {
		t.Fatalf("FreeCount = %d, want %d", got, 3*refillBatch)
	}
	a.globalMu.Lock()
	spilled := len(a.global)
	a.globalMu.Unlock()
	if spilled != refillBatch {
		t.Fatalf("global pool holds %d pages, want %d spilled", spilled, refillBatch)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3*refillBatch; i++ {
		p, err := a.Alloc(0) // stripe 0 is empty: refill + steal paths
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[p] {
			t.Fatalf("page %d handed out twice", p)
		}
		seen[p] = true
	}
}

func TestConcurrentStealNoDeadlock(t *testing.T) {
	// Two CPUs repeatedly free locally and allocate from each other's
	// stripes; stealing must make progress without deadlocking.
	a := New(geo(200))
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p, err := a.Alloc(cpu)
				if err != nil {
					continue
				}
				a.FreeLocal(1-cpu, p)
			}
		}(g)
	}
	wg.Wait()
	if got := a.FreeCount(); got != 196 {
		t.Fatalf("FreeCount = %d, want 196", got)
	}
}
