// Package pmalloc manages the data-page space of the simulated persistent
// memory device. Free-space state is volatile, as in log-structured PM
// file systems: a mount rebuilds it by walking the reachable core state,
// so allocation never pays persistence costs.
//
// Allocation is striped to reduce cross-thread contention: each virtual
// CPU draws from its own stripe and refills from the global pool in
// batches. Stripes can further be grouped into NUMA node groups
// (ConfigureNUMA): refill and FreeLocal stay node-local, and a starving
// CPU steals from its own node's stripes first, crossing to a remote
// node — and paying the modeled interconnect cost — only when the whole
// local group is dry. Steals are counted per node so telemetry can
// distinguish cheap local rebalancing from remote traffic.
package pmalloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"arckfs/internal/costmodel"
	"arckfs/internal/hlock"
	"arckfs/internal/layout"
)

const (
	stripes     = 8
	refillBatch = 64
)

// Allocator hands out page numbers in [DataStart, PageCount).
type Allocator struct {
	globalMu sync.Mutex
	global   []uint64

	stripe [stripes]struct {
		mu   hlock.SpinLock
		free []uint64
		_    [40]byte
	}

	// nodes is the number of NUMA node groups the stripes are split
	// into; 1 (the default) means a single group and reproduces the
	// ungrouped stealing order. Set once via ConfigureNUMA before the
	// allocator sees concurrent use.
	nodes int
	cost  *costmodel.Model

	stealsLocal  [stripes]atomic.Int64 // indexed by stealing node
	stealsRemote [stripes]atomic.Int64 // indexed by stealing node
}

// New creates an allocator with every data page of g free.
func New(g layout.Geometry) *Allocator {
	return NewExcluding(g)
}

// NewExcluding creates an allocator with every data page of g free except
// the listed pages (pages already in use, e.g. the root tail-set).
func NewExcluding(g layout.Geometry, used ...uint64) *Allocator {
	a := &Allocator{}
	skip := make(map[uint64]bool, len(used))
	for _, p := range used {
		skip[p] = true
	}
	a.global = make([]uint64, 0, g.PageCount-g.DataStart)
	// Push descending so allocation hands out ascending page numbers,
	// which keeps test output stable and access patterns sequential.
	for p := g.PageCount - 1; p >= g.DataStart; p-- {
		if !skip[p] {
			a.global = append(a.global, p)
		}
	}
	return a
}

// NewEmpty creates an allocator with no free pages; recovery populates it
// with Free as it discovers unreachable pages.
func NewEmpty() *Allocator { return &Allocator{} }

// ConfigureNUMA splits the stripes into n node groups and installs the
// cost model charged for remote steals. n is clamped to [1, stripes];
// with the default of 1 every stripe is local to every other and no
// remote cost is ever charged. Call before the allocator sees
// concurrent use.
func (a *Allocator) ConfigureNUMA(n int, cost *costmodel.Model) {
	if n < 1 {
		n = 1
	}
	if n > stripes {
		n = stripes
	}
	a.nodes = n
	a.cost = cost
}

// nodeOf maps a stripe index to its NUMA node group. Groups are
// contiguous: with 2 nodes, stripes 0-3 are node 0 and 4-7 node 1.
func (a *Allocator) nodeOf(si int) int {
	if a.nodes <= 1 {
		return 0
	}
	return si * a.nodes / stripes
}

// StealsLocal returns the total number of pages stolen from stripes in
// the stealing CPU's own node group.
func (a *Allocator) StealsLocal() int64 {
	var n int64
	for i := range a.stealsLocal {
		n += a.stealsLocal[i].Load()
	}
	return n
}

// StealsRemote returns the total number of pages stolen across node
// groups.
func (a *Allocator) StealsRemote() int64 {
	var n int64
	for i := range a.stealsRemote {
		n += a.stealsRemote[i].Load()
	}
	return n
}

// NodeSteals returns the (local, remote) pages stolen by CPUs of the
// given node group.
func (a *Allocator) NodeSteals(node int) (local, remote int64) {
	if node < 0 || node >= stripes {
		return 0, 0
	}
	return a.stealsLocal[node].Load(), a.stealsRemote[node].Load()
}

// Alloc returns one free page for the given virtual CPU. When both the
// CPU's stripe and the global pool are dry it steals from a sibling
// stripe before reporting the device full: pages freed locally on one
// CPU (FreeLocal) stay allocatable from every other.
func (a *Allocator) Alloc(cpu int) (uint64, error) {
	si := int(uint(cpu) % stripes)
	s := &a.stripe[si]
	s.mu.Lock()
	if len(s.free) == 0 {
		a.globalMu.Lock()
		n := refillBatch
		if n > len(a.global) {
			n = len(a.global)
		}
		s.free = append(s.free, a.global[len(a.global)-n:]...)
		a.global = a.global[:len(a.global)-n]
		a.globalMu.Unlock()
	}
	if len(s.free) == 0 {
		// Steal with no lock held on our own stripe, so two starving
		// CPUs raiding each other cannot deadlock.
		s.mu.Unlock()
		stolen := a.steal(si)
		if len(stolen) == 0 {
			return 0, fmt.Errorf("pmalloc: out of pages")
		}
		s.mu.Lock()
		s.free = append(s.free, stolen...)
	}
	p := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.mu.Unlock()
	return p, nil
}

// steal takes up to half of the first non-empty sibling stripe's pages,
// trying every stripe in si's own node group before touching a remote
// node. Remote steals charge the modeled interconnect cost and are
// counted separately. At most one stripe lock is held at a time.
func (a *Allocator) steal(si int) []uint64 {
	node := a.nodeOf(si)
	for pass := 0; pass < 2; pass++ {
		remote := pass == 1
		for i := 1; i < stripes; i++ {
			vi := (si + i) % stripes
			if (a.nodeOf(vi) != node) != remote {
				continue
			}
			v := &a.stripe[vi]
			v.mu.Lock()
			n := (len(v.free) + 1) / 2
			if n == 0 {
				v.mu.Unlock()
				continue
			}
			stolen := append([]uint64(nil), v.free[len(v.free)-n:]...)
			v.free = v.free[:len(v.free)-n]
			v.mu.Unlock()
			if remote {
				a.stealsRemote[node].Add(int64(n))
				a.cost.NUMARemote(n)
			} else {
				a.stealsLocal[node].Add(int64(n))
			}
			return stolen
		}
	}
	return nil
}

// AllocBatch returns n free pages.
func (a *Allocator) AllocBatch(cpu, n int) ([]uint64, error) {
	pages := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc(cpu)
		if err != nil {
			a.Free(pages...)
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// Free returns pages to the global pool.
func (a *Allocator) Free(pages ...uint64) {
	if len(pages) == 0 {
		return
	}
	a.globalMu.Lock()
	a.global = append(a.global, pages...)
	a.globalMu.Unlock()
}

// FreeLocal returns pages to cpu's own stripe, keeping them hot for that
// CPU's next allocations without a trip through the global pool. A
// stripe holds at most 2*refillBatch pages this way; the overflow spills
// to the global pool. Pages parked in a stripe remain reachable from
// other CPUs through Alloc's stealing path.
func (a *Allocator) FreeLocal(cpu int, pages ...uint64) {
	if len(pages) == 0 {
		return
	}
	s := &a.stripe[uint(cpu)%stripes]
	s.mu.Lock()
	s.free = append(s.free, pages...)
	var spill []uint64
	if len(s.free) > 2*refillBatch {
		k := len(s.free) - 2*refillBatch
		spill = append([]uint64(nil), s.free[:k]...)
		s.free = append(s.free[:0], s.free[k:]...)
	}
	s.mu.Unlock()
	a.Free(spill...)
}

// FreeCount returns the total number of free pages (racy snapshot).
func (a *Allocator) FreeCount() int {
	a.globalMu.Lock()
	n := len(a.global)
	a.globalMu.Unlock()
	for i := range a.stripe {
		s := &a.stripe[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}
