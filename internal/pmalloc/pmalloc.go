// Package pmalloc manages the data-page space of the simulated persistent
// memory device. Free-space state is volatile, as in log-structured PM
// file systems: a mount rebuilds it by walking the reachable core state,
// so allocation never pays persistence costs.
//
// Allocation is striped to reduce cross-thread contention: each virtual
// CPU draws from its own stripe and refills from the global pool in
// batches.
package pmalloc

import (
	"fmt"
	"sync"

	"arckfs/internal/hlock"
	"arckfs/internal/layout"
)

const (
	stripes     = 8
	refillBatch = 64
)

// Allocator hands out page numbers in [DataStart, PageCount).
type Allocator struct {
	globalMu sync.Mutex
	global   []uint64

	stripe [stripes]struct {
		mu   hlock.SpinLock
		free []uint64
		_    [40]byte
	}
}

// New creates an allocator with every data page of g free.
func New(g layout.Geometry) *Allocator {
	return NewExcluding(g)
}

// NewExcluding creates an allocator with every data page of g free except
// the listed pages (pages already in use, e.g. the root tail-set).
func NewExcluding(g layout.Geometry, used ...uint64) *Allocator {
	a := &Allocator{}
	skip := make(map[uint64]bool, len(used))
	for _, p := range used {
		skip[p] = true
	}
	a.global = make([]uint64, 0, g.PageCount-g.DataStart)
	// Push descending so allocation hands out ascending page numbers,
	// which keeps test output stable and access patterns sequential.
	for p := g.PageCount - 1; p >= g.DataStart; p-- {
		if !skip[p] {
			a.global = append(a.global, p)
		}
	}
	return a
}

// NewEmpty creates an allocator with no free pages; recovery populates it
// with Free as it discovers unreachable pages.
func NewEmpty() *Allocator { return &Allocator{} }

// Alloc returns one free page for the given virtual CPU. When both the
// CPU's stripe and the global pool are dry it steals from a sibling
// stripe before reporting the device full: pages freed locally on one
// CPU (FreeLocal) stay allocatable from every other.
func (a *Allocator) Alloc(cpu int) (uint64, error) {
	si := int(uint(cpu) % stripes)
	s := &a.stripe[si]
	s.mu.Lock()
	if len(s.free) == 0 {
		a.globalMu.Lock()
		n := refillBatch
		if n > len(a.global) {
			n = len(a.global)
		}
		s.free = append(s.free, a.global[len(a.global)-n:]...)
		a.global = a.global[:len(a.global)-n]
		a.globalMu.Unlock()
	}
	if len(s.free) == 0 {
		// Steal with no lock held on our own stripe, so two starving
		// CPUs raiding each other cannot deadlock.
		s.mu.Unlock()
		stolen := a.steal(si)
		if len(stolen) == 0 {
			return 0, fmt.Errorf("pmalloc: out of pages")
		}
		s.mu.Lock()
		s.free = append(s.free, stolen...)
	}
	p := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.mu.Unlock()
	return p, nil
}

// steal takes up to half of the first non-empty sibling stripe's pages.
// At most one stripe lock is held at a time.
func (a *Allocator) steal(si int) []uint64 {
	for i := 1; i < stripes; i++ {
		v := &a.stripe[(si+i)%stripes]
		v.mu.Lock()
		if n := (len(v.free) + 1) / 2; n > 0 {
			stolen := append([]uint64(nil), v.free[len(v.free)-n:]...)
			v.free = v.free[:len(v.free)-n]
			v.mu.Unlock()
			return stolen
		}
		v.mu.Unlock()
	}
	return nil
}

// AllocBatch returns n free pages.
func (a *Allocator) AllocBatch(cpu, n int) ([]uint64, error) {
	pages := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc(cpu)
		if err != nil {
			a.Free(pages...)
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// Free returns pages to the global pool.
func (a *Allocator) Free(pages ...uint64) {
	if len(pages) == 0 {
		return
	}
	a.globalMu.Lock()
	a.global = append(a.global, pages...)
	a.globalMu.Unlock()
}

// FreeLocal returns pages to cpu's own stripe, keeping them hot for that
// CPU's next allocations without a trip through the global pool. A
// stripe holds at most 2*refillBatch pages this way; the overflow spills
// to the global pool. Pages parked in a stripe remain reachable from
// other CPUs through Alloc's stealing path.
func (a *Allocator) FreeLocal(cpu int, pages ...uint64) {
	if len(pages) == 0 {
		return
	}
	s := &a.stripe[uint(cpu)%stripes]
	s.mu.Lock()
	s.free = append(s.free, pages...)
	var spill []uint64
	if len(s.free) > 2*refillBatch {
		k := len(s.free) - 2*refillBatch
		spill = append([]uint64(nil), s.free[:k]...)
		s.free = append(s.free[:0], s.free[k:]...)
	}
	s.mu.Unlock()
	a.Free(spill...)
}

// FreeCount returns the total number of free pages (racy snapshot).
func (a *Allocator) FreeCount() int {
	a.globalMu.Lock()
	n := len(a.global)
	a.globalMu.Unlock()
	for i := range a.stripe {
		s := &a.stripe[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}
