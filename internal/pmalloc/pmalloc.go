// Package pmalloc manages the data-page space of the simulated persistent
// memory device. Free-space state is volatile, as in log-structured PM
// file systems: a mount rebuilds it by walking the reachable core state,
// so allocation never pays persistence costs.
//
// Allocation is striped to reduce cross-thread contention: each virtual
// CPU draws from its own stripe and refills from the global pool in
// batches.
package pmalloc

import (
	"fmt"
	"sync"

	"arckfs/internal/hlock"
	"arckfs/internal/layout"
)

const (
	stripes     = 8
	refillBatch = 64
)

// Allocator hands out page numbers in [DataStart, PageCount).
type Allocator struct {
	globalMu sync.Mutex
	global   []uint64

	stripe [stripes]struct {
		mu   hlock.SpinLock
		free []uint64
		_    [40]byte
	}
}

// New creates an allocator with every data page of g free.
func New(g layout.Geometry) *Allocator {
	return NewExcluding(g)
}

// NewExcluding creates an allocator with every data page of g free except
// the listed pages (pages already in use, e.g. the root tail-set).
func NewExcluding(g layout.Geometry, used ...uint64) *Allocator {
	a := &Allocator{}
	skip := make(map[uint64]bool, len(used))
	for _, p := range used {
		skip[p] = true
	}
	a.global = make([]uint64, 0, g.PageCount-g.DataStart)
	// Push descending so allocation hands out ascending page numbers,
	// which keeps test output stable and access patterns sequential.
	for p := g.PageCount - 1; p >= g.DataStart; p-- {
		if !skip[p] {
			a.global = append(a.global, p)
		}
	}
	return a
}

// NewEmpty creates an allocator with no free pages; recovery populates it
// with Free as it discovers unreachable pages.
func NewEmpty() *Allocator { return &Allocator{} }

// Alloc returns one free page for the given virtual CPU.
func (a *Allocator) Alloc(cpu int) (uint64, error) {
	s := &a.stripe[uint(cpu)%stripes]
	s.mu.Lock()
	if len(s.free) == 0 {
		a.globalMu.Lock()
		n := refillBatch
		if n > len(a.global) {
			n = len(a.global)
		}
		s.free = append(s.free, a.global[len(a.global)-n:]...)
		a.global = a.global[:len(a.global)-n]
		a.globalMu.Unlock()
		if len(s.free) == 0 {
			s.mu.Unlock()
			return 0, fmt.Errorf("pmalloc: out of pages")
		}
	}
	p := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.mu.Unlock()
	return p, nil
}

// AllocBatch returns n free pages.
func (a *Allocator) AllocBatch(cpu, n int) ([]uint64, error) {
	pages := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		p, err := a.Alloc(cpu)
		if err != nil {
			a.Free(pages...)
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// Free returns pages to the global pool.
func (a *Allocator) Free(pages ...uint64) {
	if len(pages) == 0 {
		return
	}
	a.globalMu.Lock()
	a.global = append(a.global, pages...)
	a.globalMu.Unlock()
}

// FreeCount returns the total number of free pages (racy snapshot).
func (a *Allocator) FreeCount() int {
	a.globalMu.Lock()
	n := len(a.global)
	a.globalMu.Unlock()
	for i := range a.stripe {
		s := &a.stripe[i]
		s.mu.Lock()
		n += len(s.free)
		s.mu.Unlock()
	}
	return n
}
