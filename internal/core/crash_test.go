package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// TestRandomizedCrashRecovery drives a random workload on ArckFS+ with
// crash tracking enabled, materializes many random crash images, and
// requires every one of them to recover to a consistent state: recovery
// never errors, fsck after repair is clean, and every file that was
// created AND released before the crash still exists with intact data.
func TestRandomizedCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sys, err := NewSystem(Config{DevSize: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			app := sys.NewApp(0, 0)
			w := app.NewThread(0).(*libfs.Thread)

			// Phase 1: durable prefix — created, written, and released
			// (verified): these must survive any crash.
			durable := map[string][]byte{}
			if err := w.Mkdir("/safe"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				p := fmt.Sprintf("/safe/f%d", i)
				if err := w.Create(p); err != nil {
					t.Fatal(err)
				}
				fd, _ := w.Open(p)
				blob := make([]byte, rng.Intn(8000)+1)
				rng.Read(blob)
				if _, err := w.WriteAt(fd, blob, 0); err != nil {
					t.Fatal(err)
				}
				w.Close(fd)
				durable[p] = blob
			}
			if err := app.ReleaseAll(); err != nil {
				t.Fatal(err)
			}
			sys.Dev.EnableTracking()

			// Phase 2: in-flight noise — arbitrary unverified activity.
			for i := 0; i < 40; i++ {
				p := fmt.Sprintf("/noise%d", rng.Intn(12))
				switch rng.Intn(3) {
				case 0:
					w.Create(p)
				case 1:
					w.Unlink(p)
				case 2:
					if fd, err := w.Open(p); err == nil {
						blob := make([]byte, rng.Intn(4096)+1)
						w.WriteAt(fd, blob, int64(rng.Intn(4096)))
						w.Close(fd)
					}
				}
			}

			// Phase 3: many crash states from the same execution.
			for c := 0; c < 8; c++ {
				img := sys.Dev.CrashImage(pmem.CrashRandom(seed*100 + int64(c)))
				dev := pmem.Restore(img, nil)
				ctrl, rep, err := kernel.Mount(dev, kernel.Options{}, true)
				if err != nil {
					t.Fatalf("crash %d: recovery failed: %v", c, err)
				}
				_ = rep
				// A second pass must find nothing left to repair.
				rep2, err := kernel.Fsck(dev, kernel.Options{})
				if err != nil {
					t.Fatalf("crash %d: post-repair fsck: %v", c, err)
				}
				if !rep2.Clean() {
					t.Fatalf("crash %d: repair not idempotent: %s", c, rep2)
				}
				// Every durable file survives with its contents.
				app2 := ctrl.RegisterApp(0, 0)
				fs2 := libfs.New(ctrl, app2, libfs.Options{})
				r := fs2.NewThread(0).(*libfs.Thread)
				for p, blob := range durable {
					fd, err := r.Open(p)
					if err != nil {
						t.Fatalf("crash %d: durable file %s lost: %v", c, p, err)
					}
					got := make([]byte, len(blob))
					if n, err := r.ReadAt(fd, got, 0); err != nil || n != len(blob) {
						t.Fatalf("crash %d: durable read %s: n=%d err=%v", c, p, n, err)
					}
					for i := range blob {
						if got[i] != blob[i] {
							t.Fatalf("crash %d: durable data of %s corrupted at byte %d", c, p, i)
						}
					}
					r.Close(fd)
				}
			}
		})
	}
}

// TestCrashDuringVerifiedReleaseIsAtomic crashes between the operations
// of a release-heavy workload: since kernel shadow writes are fenced,
// every crash image recovers with the tree either before or after each
// verified change, never in between.
func TestCrashDuringVerifiedReleaseIsAtomic(t *testing.T) {
	sys, err := NewSystem(Config{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app := sys.NewApp(0, 0)
	w := app.NewThread(0).(*libfs.Thread)
	sys.Dev.EnableTracking()

	for round := 0; round < 5; round++ {
		p := fmt.Sprintf("/r%d", round)
		if err := w.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := app.ReleaseAll(); err != nil {
			t.Fatal(err)
		}
		img := sys.Dev.CrashImage(pmem.CrashDropAll)
		dev := pmem.Restore(img, nil)
		ctrl, _, err := kernel.Mount(dev, kernel.Options{}, true)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fs2 := libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{})
		r := fs2.NewThread(0).(*libfs.Thread)
		for k := 0; k <= round; k++ {
			if _, err := r.Stat(fmt.Sprintf("/r%d", k)); err != nil {
				t.Fatalf("round %d: released file /r%d lost: %v", round, k, err)
			}
		}
	}
}

// TestModePresets checks the Config plumbing.
func TestModePresets(t *testing.T) {
	plus, err := NewSystem(Config{DevSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if plus.Mode() != ArckFSPlus || plus.NewApp(0, 0).Name() != "arckfs+" {
		t.Fatal("plus preset wrong")
	}
	buggy, err := NewSystem(Config{Mode: ArckFS, DevSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if buggy.Mode() != ArckFS || buggy.NewApp(0, 0).Name() != "arckfs" {
		t.Fatal("buggy preset wrong")
	}
	if ArckFS.String() != "arckfs" || ArckFSPlus.String() != "arckfs+" {
		t.Fatal("mode strings")
	}
	// Bug override.
	bugs := libfs.BugMissingFence
	custom, err := NewSystem(Config{DevSize: 32 << 20, Bugs: &bugs})
	if err != nil {
		t.Fatal(err)
	}
	if custom.NewApp(0, 0).Bugs() != libfs.BugMissingFence {
		t.Fatal("bug override ignored")
	}
}

// NewApp returns fsapi.FS-compatible values.
var _ = func() bool {
	var _ fsapi.FS = (*libfs.FS)(nil)
	return true
}()

// TestRecoverRejectsGarbage ensures Recover surfaces unformatted images.
func TestRecoverRejectsGarbage(t *testing.T) {
	img := make([]byte, 1<<20)
	if _, _, err := Recover(img, Config{}); err == nil {
		t.Fatal("garbage image recovered")
	}
	var pathErr error = fsapi.ErrNotExist
	if !errors.Is(pathErr, fsapi.ErrNotExist) {
		t.Fatal("sanity")
	}
}
