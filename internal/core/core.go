// Package core assembles the complete Trio system: the simulated
// persistent-memory device, the in-kernel access controller, the trusted
// integrity verifier, and per-application library file systems. It is the
// paper's subject in one box, with presets for ArckFS (the Trio artifact,
// all six Table-1 bugs present) and ArckFS+ (all patches applied).
package core

import (
	"sync"
	"time"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
	"arckfs/internal/telemetry/span"
	"arckfs/internal/verifier"
)

// Mode selects the system preset.
type Mode int

const (
	// ArckFSPlus is the patched system of the paper (default).
	ArckFSPlus Mode = iota
	// ArckFS is the Trio artifact as shipped: the original verifier plus
	// all six LibFS bugs.
	ArckFS
)

func (m Mode) String() string {
	if m == ArckFS {
		return "arckfs"
	}
	return "arckfs+"
}

// Config describes a system instance.
type Config struct {
	Mode Mode
	// DevSize is the device capacity in bytes (default 256 MiB).
	DevSize int64
	// Cost is the latency model; nil charges nothing.
	Cost *costmodel.Model
	// InodeCap and NTails configure the format (defaults 1<<16, 4).
	InodeCap uint64
	NTails   int
	// Policy is the kernel's corruption policy.
	Policy kernel.Policy
	// Bugs, when non-nil, overrides the Mode's bug preset (for per-bug
	// ablation).
	Bugs *libfs.Bugs
	// Hooks are the deterministic race-window hooks for tests.
	Hooks *libfs.Hooks
	// DirBuckets sizes directory hash tables.
	DirBuckets int
	// EagerPersist disables the LibFS write-combining persist batcher
	// (see libfs.Options.EagerPersist); benchmarks use it to A/B the
	// batching optimization.
	EagerPersist bool
	// Tracking enables pmem crash tracking from the moment after format.
	Tracking bool
	// LeaseTTL bounds inode ownership; RenameLeaseTTL bounds the global
	// rename lock.
	LeaseTTL       time.Duration
	RenameLeaseTTL time.Duration
	// SerialKernel reverts the control plane to its pre-scaling shape:
	// every kernel crossing serializes behind one exclusive lock
	// (kernel.Options.Serialize) and the LibFS grant-lease fast paths
	// are disabled (libfs.Options.NoLeases). Benchmarks use it as the
	// A/B baseline for the sharded control plane.
	SerialKernel bool
	// SerialData reverts the data plane to its pre-RCU shape: directory
	// lookups take the bucket lock and file reads take the per-inode
	// reader-writer lock (libfs.Options.SerialData). Benchmarks use it
	// as the A/B baseline for the lock-free read paths.
	SerialData bool
	// RecoverWorkers bounds the recovery worker pool used by Recover; 0
	// picks a default from GOMAXPROCS, 1 forces the serial scan.
	RecoverWorkers int
	// SpanSampling enables arcktrace causal span tracing from boot: 1
	// traces every operation, N traces one in N (rounded up to a power of
	// two). 0 (the default) leaves the tracer attached but disabled —
	// tools can still flip it on at runtime via System.Tracer().
	SpanSampling int
	// SpanRing caps the number of retained spans per thread (default
	// span.DefaultRingCap).
	SpanRing int
	// Faults attaches a seeded device lie plan (pmem.FaultPlan): dropped
	// flushes, lying fences, torn lines. Lies never change what reads
	// observe, only which crash states are reachable — benchmarks run
	// identically while crash tools (arckcrash) see the misbehaving
	// device. FaultSeed seeds the plan (0 is a valid seed).
	Faults    pmem.FaultMode
	FaultSeed int64
	// MaxInflight bounds concurrently-running kernel crossings with the
	// fair-share admission scheduler (kernel.Options.MaxInflight); 0
	// leaves admission off. SerialAdmission collapses the scheduler's
	// per-tenant queues into one FIFO — the `-serial-admission` A/B
	// baseline.
	MaxInflight     int
	SerialAdmission bool
	// FlatEpoch reverts the kernel's epoch lock to a single shared
	// reader counter (the pre-big-reader-lock shape; A/B baseline).
	FlatEpoch bool
	// ShadowShards overrides the initial shadow-table shard count (0
	// picks the default; the table regrows with tenant count either way).
	ShadowShards int
}

func (c *Config) fill() {
	if c.DevSize == 0 {
		c.DevSize = 256 << 20
	}
}

func (c *Config) verifierMode() verifier.Mode {
	if c.Mode == ArckFS {
		return verifier.Original
	}
	return verifier.Enhanced
}

func (c *Config) bugs() libfs.Bugs {
	if c.Bugs != nil {
		return *c.Bugs
	}
	if c.Mode == ArckFS {
		return libfs.BugsAll
	}
	return libfs.BugsNone
}

// System is one mounted Trio instance.
type System struct {
	cfg  Config
	Dev  *pmem.Device
	Ctrl *kernel.Controller

	tel    *telemetry.Set
	tracer *span.Tracer
	appDim *telemetry.AppDim
	appsMu sync.Mutex
	apps   []*libfs.FS
}

// newTracer builds the system tracer from the config: always attached
// (so runtime enablement works), enabled only when SpanSampling is set.
func (c *Config) newTracer() *span.Tracer {
	every := c.SpanSampling
	if every <= 0 {
		every = span.DefaultSampleEvery
	}
	tr := span.New(c.SpanRing, every)
	tr.SetEnabled(c.SpanSampling > 0)
	return tr
}

// initTelemetry assembles the system-wide counter set: device
// persistence events, kernel crossings, verifier work, and LibFS
// recovery paths (summed over every attached application).
func (s *System) initTelemetry() {
	s.tel = telemetry.NewSet()
	s.Dev.RegisterTelemetry(s.tel)
	s.Ctrl.RegisterTelemetry(s.tel)
	s.tel.Gauge("libfs.remaps", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.Stats.Remaps.Load()
		}
		return n
	})
	s.tel.Gauge("libfs.reacquires", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.Stats.Reacquires.Load()
		}
		return n
	})
	s.tel.Gauge("trace.events", func() int64 {
		return int64(s.Ctrl.Trace().Total())
	})
	// "syscalls" is the cross-system comparable name: the baselines
	// expose theirs under the same key.
	//arcklint:allow counterreg every system meters "syscalls" in its own private Set so bench tooling reads one cross-system key
	s.tel.Gauge("syscalls", s.Ctrl.Stats.Syscalls.Load)
	s.tel.Gauge("leases.hit", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.Stats.LeaseHits.Load()
		}
		return n
	})
	s.tel.Gauge("leases.miss", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.Stats.LeaseMisses.Load()
		}
		return n
	})
	// "syscalls.avoided" is the companion of "syscalls": crossings the
	// grant leases elided, summed across applications.
	s.tel.Gauge("syscalls.avoided", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.Stats.SyscallsAvoided.Load()
		}
		return n
	})
	// "span.recorded" counts spans the arcktrace sampler committed to the
	// per-thread rings; the obs-smoke bench bound pins it at ~0 when
	// tracing is disabled.
	s.tel.Gauge("span.recorded", s.tracer.Recorded)
	// "htable.read_locks" counts bucket-lock acquisitions taken on behalf
	// of directory lookups, summed across applications. The lock-free
	// data plane never takes one, which the benchcheck bound pins at 0.
	s.tel.Gauge("htable.read_locks", func() int64 {
		s.appsMu.Lock()
		defer s.appsMu.Unlock()
		var n int64
		for _, fs := range s.apps {
			n += fs.ReadLockCount()
		}
		return n
	})
}

// Telemetry returns the system-wide counter set.
func (s *System) Telemetry() *telemetry.Set { return s.tel }

// NewSystem formats a fresh device and boots the kernel side.
func NewSystem(cfg Config) (*System, error) {
	cfg.fill()
	dev := pmem.New(cfg.DevSize, cfg.Cost)
	dim := telemetry.NewAppDim()
	ctrl, err := kernel.Format(dev, kernel.Options{
		Mode:            cfg.verifierMode(),
		Policy:          cfg.Policy,
		Cost:            cfg.Cost,
		InodeCap:        cfg.InodeCap,
		NTails:          cfg.NTails,
		LeaseTTL:        cfg.LeaseTTL,
		RenameLeaseTTL:  cfg.RenameLeaseTTL,
		Serialize:       cfg.SerialKernel,
		AppDim:          dim,
		MaxInflight:     cfg.MaxInflight,
		SerialAdmission: cfg.SerialAdmission,
		FlatEpoch:       cfg.FlatEpoch,
		ShadowShards:    cfg.ShadowShards,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Faults != pmem.FaultsNone {
		dev.SetFaultPlan(pmem.NewFaultPlan(cfg.Faults, cfg.FaultSeed))
	}
	if cfg.Tracking {
		dev.EnableTracking()
	}
	s := &System{cfg: cfg, Dev: dev, Ctrl: ctrl, tracer: cfg.newTracer(), appDim: dim}
	s.initTelemetry()
	return s, nil
}

// Recover mounts an existing device image (e.g. a crash image produced by
// pmem.Device.CrashImage), running recovery and returning its report.
func Recover(img []byte, cfg Config) (*System, *kernel.Report, error) {
	cfg.fill()
	dev := pmem.Restore(img, cfg.Cost)
	if cfg.Faults != pmem.FaultsNone {
		dev.SetFaultPlan(pmem.NewFaultPlan(cfg.Faults, cfg.FaultSeed))
	}
	dim := telemetry.NewAppDim()
	// Recovery itself is traced: the mount runs under an OpRecover span
	// whose child events are the per-pass timings the kernel reports.
	tr := cfg.newTracer()
	rl := tr.NewLocal()
	sp := rl.Begin(fsapi.OpRecover, 0)
	var sink telemetry.SpanSink
	if sp != nil {
		sink = sp
	}
	ctrl, rep, err := kernel.Mount(dev, kernel.Options{
		Mode:            cfg.verifierMode(),
		Policy:          cfg.Policy,
		Cost:            cfg.Cost,
		LeaseTTL:        cfg.LeaseTTL,
		RenameLeaseTTL:  cfg.RenameLeaseTTL,
		Serialize:       cfg.SerialKernel,
		RecoverWorkers:  cfg.RecoverWorkers,
		AppDim:          dim,
		Span:            sink,
		MaxInflight:     cfg.MaxInflight,
		SerialAdmission: cfg.SerialAdmission,
		FlatEpoch:       cfg.FlatEpoch,
		ShadowShards:    cfg.ShadowShards,
	}, true)
	rl.End(sp, err)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Tracking {
		dev.EnableTracking()
	}
	s := &System{cfg: cfg, Dev: dev, Ctrl: ctrl, tracer: tr, appDim: dim}
	s.initTelemetry()
	return s, rep, nil
}

// NewApp registers an application and attaches a LibFS for it.
func (s *System) NewApp(uid, gid uint32) *libfs.FS {
	app := s.Ctrl.RegisterApp(uid, gid)
	fs := libfs.New(s.Ctrl, app, libfs.Options{
		Bugs:         s.cfg.bugs(),
		Cost:         s.cfg.Cost,
		Hooks:        s.cfg.Hooks,
		DirBuckets:   s.cfg.DirBuckets,
		EagerPersist: s.cfg.EagerPersist,
		NoLeases:     s.cfg.SerialKernel,
		SerialData:   s.cfg.SerialData,
	})
	fs.SetTelemetry(s.tel)
	fs.SetObservability(s.tracer, s.appDim.Row(int64(app)))
	fs.SetAppStats(s.AppStats)
	s.appsMu.Lock()
	s.apps = append(s.apps, fs)
	s.appsMu.Unlock()
	return fs
}

// RetireApp tears one application down: the LibFS is dropped from the
// system's telemetry aggregation, the kernel unregisters the app
// (force-releasing owned inodes and reclaiming every outstanding
// grant), and the per-app attribution row is evicted so long-lived
// systems spinning tenants up and down hold state for live tenants
// only. The caller should stop using fs (and its threads) first;
// tenancy.Registry wraps the full quiesce-then-retire sequence.
func (s *System) RetireApp(fs *libfs.FS) error {
	s.appsMu.Lock()
	for i, x := range s.apps {
		if x == fs {
			s.apps = append(s.apps[:i], s.apps[i+1:]...)
			break
		}
	}
	s.appsMu.Unlock()
	err := s.Ctrl.UnregisterApp(fs.App())
	s.appDim.Evict(int64(fs.App()))
	return err
}

// Mode returns the configured preset.
func (s *System) Mode() Mode { return s.cfg.Mode }

// Tracer returns the system's arcktrace span tracer (always non-nil).
func (s *System) Tracer() *span.Tracer { return s.tracer }

// AppStats returns the per-application attribution snapshot, sorted by
// app ID: kernel crossings, persist traffic, and sampled op latency per
// tenant.
func (s *System) AppStats() []telemetry.AppStat { return s.appDim.Snapshot() }
