package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/libfs"
)

// TestMultiAppHandoffStress bounces a working set between applications
// through verified releases, concurrently with in-app worker threads,
// and requires the verified state to stay exact.
func TestMultiAppHandoffStress(t *testing.T) {
	sys, err := NewSystem(Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	producer := sys.NewApp(0, 0)
	consumer := sys.NewApp(0, 0)

	pw := producer.NewThread(0).(*libfs.Thread)
	if err := pw.Mkdir("/queue"); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for round := 0; round < 10; round++ {
		// Producer adds a few files and hands the tree over.
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("/queue/r%d-f%d", round, i)
			body := fmt.Sprintf("round %d item %d", round, i)
			if err := pw.Create(name); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			fd, _ := pw.Open(name)
			if _, err := pw.WriteAt(fd, []byte(body), 0); err != nil {
				t.Fatal(err)
			}
			pw.Close(fd)
			want[name] = body
		}
		if err := producer.ReleaseAll(); err != nil {
			t.Fatalf("round %d release: %v", round, err)
		}

		// Consumer validates everything so far, then releases back.
		cw := consumer.NewThread(0).(*libfs.Thread)
		for name, body := range want {
			fd, err := cw.Open(name)
			if err != nil {
				t.Fatalf("round %d: consumer open %s: %v", round, name, err)
			}
			buf := make([]byte, len(body))
			if _, err := cw.ReadAt(fd, buf, 0); err != nil || string(buf) != body {
				t.Fatalf("round %d: %s = %q, %v", round, name, buf, err)
			}
			cw.Close(fd)
		}
		if err := consumer.ReleaseAll(); err != nil {
			t.Fatalf("round %d consumer release: %v", round, err)
		}
	}
	st := sys.Ctrl.Stats.Snapshot()
	if st.Verifications == 0 || st.VerifyFailures != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInvoluntaryReleaseUnderLeaseExpiry lets a second application steal
// an inode whose holder's lease lapsed, while the holder keeps working —
// the patched LibFS remaps instead of crashing.
func TestInvoluntaryReleaseUnderLeaseExpiry(t *testing.T) {
	sys, err := NewSystem(Config{DevSize: 64 << 20, LeaseTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a1 := sys.NewApp(0, 0)
	a2 := sys.NewApp(0, 0)
	w1 := a1.NewThread(0).(*libfs.Thread)
	if err := w1.Create("/contended"); err != nil {
		t.Fatal(err)
	}
	if err := a1.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	fd1, err := w1.Open("/contended")
	if err != nil {
		t.Fatal(err)
	}
	// Let the lease lapse, then the second app takes the file.
	time.Sleep(5 * time.Millisecond)
	w2 := a2.NewThread(0).(*libfs.Thread)
	fd2, err := w2.Open("/contended")
	if err != nil {
		t.Fatalf("steal after lease expiry: %v", err)
	}
	if _, err := w2.WriteAt(fd2, []byte("second"), 0); err != nil {
		t.Fatal(err)
	}
	// The original holder's next write re-acquires transparently (after
	// the second app's lease lapses in turn), which forces an
	// involuntary release of the second holder.
	time.Sleep(5 * time.Millisecond)
	if _, err := w1.WriteAt(fd1, []byte("first-again"), 0); err != nil {
		t.Fatalf("holder could not continue after revocation: %v", err)
	}
	if sys.Ctrl.Stats.Involuntary.Load() == 0 {
		t.Fatal("no involuntary release recorded")
	}
}

// TestParallelAppsPrivateTrees runs several applications concurrently on
// disjoint trees with worker threads each, under full verification at
// the end. Run with -race.
func TestParallelAppsPrivateTrees(t *testing.T) {
	sys, err := NewSystem(Config{DevSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const apps = 3
	const workers = 2
	var wg sync.WaitGroup
	errs := make([]error, apps)
	appsV := make([]*libfs.FS, apps)
	for a := 0; a < apps; a++ {
		appsV[a] = sys.NewApp(0, 0)
	}
	// Each app claims a private top-level dir first, sequentially (the
	// root is shared; per-app subtrees are disjoint).
	for a := 0; a < apps; a++ {
		w := appsV[a].NewThread(0).(*libfs.Thread)
		if err := w.Mkdir(fmt.Sprintf("/app%d", a)); err != nil {
			t.Fatal(err)
		}
		if err := appsV[a].ReleaseAll(); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			app := appsV[a]
			var iwg sync.WaitGroup
			werrs := make([]error, workers)
			for k := 0; k < workers; k++ {
				iwg.Add(1)
				go func(k int) {
					defer iwg.Done()
					w := app.NewThread(k).(*libfs.Thread)
					defer w.Detach()
					rng := rand.New(rand.NewSource(int64(a*10 + k)))
					dir := fmt.Sprintf("/app%d", a)
					buf := make([]byte, 512)
					for i := 0; i < 150; i++ {
						p := fmt.Sprintf("%s/w%d-f%d", dir, k, rng.Intn(20))
						switch rng.Intn(4) {
						case 0:
							if err := w.Create(p); err != nil && !errors.Is(err, fsapi.ErrExist) {
								werrs[k] = err
								return
							}
						case 1:
							if fd, err := w.Open(p); err == nil {
								if _, err := w.WriteAt(fd, buf, int64(rng.Intn(2048))); err != nil {
									werrs[k] = err
									return
								}
								w.Close(fd)
							}
						case 2:
							if err := w.Unlink(p); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
								werrs[k] = err
								return
							}
						case 3:
							if _, err := w.Stat(p); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
								werrs[k] = err
								return
							}
						}
					}
				}(k)
			}
			iwg.Wait()
			for _, e := range werrs {
				if e != nil {
					errs[a] = e
					return
				}
			}
			errs[a] = app.ReleaseAll()
		}(a)
	}
	wg.Wait()
	for a, err := range errs {
		if err != nil {
			t.Fatalf("app %d: %v", a, err)
		}
	}
	if sys.Ctrl.Stats.VerifyFailures.Load() != 0 {
		t.Fatalf("verification failures: %+v", sys.Ctrl.Stats.Snapshot())
	}
}
