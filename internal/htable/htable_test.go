package htable

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"arckfs/internal/rcu"
)

func TestInsertLookupDelete(t *testing.T) {
	tbl := New(Options{})
	if !tbl.Insert("a", 1, 100) {
		t.Fatal("insert failed")
	}
	if tbl.Insert("a", 2, 200) {
		t.Fatal("duplicate insert succeeded")
	}
	ino, ref, ok, err := tbl.Lookup(nil, "a")
	if err != nil || !ok || ino != 1 || ref != 100 {
		t.Fatalf("Lookup = %d %d %v %v", ino, ref, ok, err)
	}
	if _, _, ok, _ := tbl.Lookup(nil, "b"); ok {
		t.Fatal("found missing key")
	}
	ino, ref, ok = tbl.Delete("a")
	if !ok || ino != 1 || ref != 100 {
		t.Fatalf("Delete = %d %d %v", ino, ref, ok)
	}
	if _, _, ok = tbl.Delete("a"); ok {
		t.Fatal("double delete succeeded")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestGrowthKeepsEntries(t *testing.T) {
	tbl := New(Options{InitialBuckets: 8})
	const n = 500
	for i := 0; i < n; i++ {
		if !tbl.Insert(fmt.Sprintf("file%d", i), uint64(i), uint64(i*2)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i := 0; i < n; i++ {
		ino, ref, ok, err := tbl.Lookup(nil, fmt.Sprintf("file%d", i))
		if err != nil || !ok || ino != uint64(i) || ref != uint64(i*2) {
			t.Fatalf("lookup %d after growth: %d %d %v %v", i, ino, ref, ok, err)
		}
	}
}

func TestRangeSeesAll(t *testing.T) {
	tbl := New(Options{})
	want := map[string]uint64{}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("n%d", i)
		want[name] = uint64(i)
		tbl.Insert(name, uint64(i), 0)
	}
	got := map[string]uint64{}
	tbl.Range(func(name string, ino, ref uint64) bool {
		got[name] = ino
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tbl := New(Options{})
	for i := 0; i < 10; i++ {
		tbl.Insert(fmt.Sprintf("n%d", i), uint64(i), 0)
	}
	seen := 0
	tbl.Range(func(string, uint64, uint64) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestWithBucketExtendedCriticalSection(t *testing.T) {
	tbl := New(Options{})
	tbl.WithBucket("x", func(lb *LockedBucket) {
		if !lb.Insert("x", 7, 70) {
			t.Fatal("insert failed")
		}
		e, ok := lb.Get("x")
		if !ok || e.Ino != 7 {
			t.Fatal("Get after Insert failed")
		}
		// Simulate the §4.4 patched flow: the PM update would happen
		// here, inside the bucket critical section.
		ino, ref, ok := lb.Delete("x")
		if !ok || ino != 7 || ref != 70 {
			t.Fatal("Delete inside critical section failed")
		}
	})
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

// TestBug45UseAfterFree reproduces the §4.5 bug deterministically: a
// lockless reader is paused mid-traversal while a writer deletes the
// entry it is standing on and the pool hands the memory to a new
// insertion. The reader detects recycled memory — the simulated segfault.
func TestBug45UseAfterFree(t *testing.T) {
	// no RCU, instrumented build: ArckFS as shipped under the paper's
	// inserted-sleep reproduction
	tbl := New(Options{StrictUAF: true})
	tbl.Insert("victim", 1, 10)

	inTraverse := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	tbl.TraverseHook = func() {
		once.Do(func() {
			close(inTraverse)
			<-resume
		})
	}

	errc := make(chan error, 1)
	go func() {
		_, _, _, err := tbl.Lookup(nil, "victim")
		errc <- err
	}()

	<-inTraverse
	// Writer deletes the entry; the pool releases it immediately, and the
	// next insert recycles the same node.
	if _, _, ok := tbl.Delete("victim"); !ok {
		t.Fatal("delete failed")
	}
	tbl.TraverseHook = nil
	tbl.Insert("recycler", 2, 20)
	close(resume)

	if err := <-errc; err != ErrUseAfterFree {
		t.Fatalf("lockless reader returned %v, want ErrUseAfterFree", err)
	}
}

// TestBug45FixedByRCU runs the same interleaving with the §4.5 patch: the
// reader's critical section defers the free, so it observes a consistent
// (pre-delete) entry.
func TestBug45FixedByRCU(t *testing.T) {
	dom := rcu.NewDomain()
	tbl := New(Options{RCUReaders: true, Dom: dom})
	tbl.Insert("victim", 1, 10)

	inTraverse := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	tbl.TraverseHook = func() {
		once.Do(func() {
			close(inTraverse)
			<-resume
		})
	}

	rd := dom.Register()
	type res struct {
		ino uint64
		ok  bool
		err error
	}
	resc := make(chan res, 1)
	go func() {
		ino, _, ok, err := tbl.Lookup(rd, "victim")
		resc <- res{ino, ok, err}
	}()

	<-inTraverse
	if _, _, ok := tbl.Delete("victim"); !ok {
		t.Fatal("delete failed")
	}
	tbl.TraverseHook = nil
	tbl.Insert("recycler", 2, 20)
	close(resume)

	r := <-resc
	if r.err != nil {
		t.Fatalf("RCU reader faulted: %v", r.err)
	}
	// The reader raced with the delete; it may or may not have found the
	// entry, but if it did, the payload must be the victim's, untorn.
	if r.ok && r.ino != 1 {
		t.Fatalf("RCU reader saw recycled payload ino=%d", r.ino)
	}
	dom.Barrier()
}

func TestConcurrentWritersDisjointKeys(t *testing.T) {
	tbl := New(Options{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				name := fmt.Sprintf("g%d-%d", g, i)
				if !tbl.Insert(name, uint64(i), 0) {
					t.Errorf("insert %s failed", name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 1200 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestConcurrentRCUChurn(t *testing.T) {
	dom := rcu.NewDomain()
	tbl := New(Options{RCUReaders: true, Dom: dom})
	const keys = 64
	for i := 0; i < keys; i++ {
		tbl.Insert(fmt.Sprintf("k%d", i), uint64(i)+1, 0)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var faults atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rd := dom.Register()
			defer dom.Unregister(rd)
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(keys)
				ino, _, ok, err := tbl.Lookup(rd, fmt.Sprintf("k%d", k))
				if err != nil {
					faults.Add(1)
					return
				}
				if ok && ino != uint64(k)+1 {
					faults.Add(1)
					return
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			k := rng.Intn(keys)
			name := fmt.Sprintf("k%d", k)
			if _, _, ok := tbl.Delete(name); ok {
				tbl.Insert(name, uint64(k)+1, 0)
			}
			if i%64 == 0 {
				dom.Synchronize()
			}
		}
		stop.Store(true)
	}()
	wg.Wait()
	dom.Barrier()
	if f := faults.Load(); f != 0 {
		t.Fatalf("%d reader faults under RCU", f)
	}
}

// Property: the table behaves like a map under any operation sequence.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(Options{InitialBuckets: 8})
		model := map[string]uint64{}
		for i := 0; i < 400; i++ {
			name := fmt.Sprintf("k%d", rng.Intn(60))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				okT := tbl.Insert(name, v, 0)
				_, exists := model[name]
				if okT == exists {
					return false
				}
				if okT {
					model[name] = v
				}
			case 1:
				ino, _, okT := tbl.Delete(name)
				v, exists := model[name]
				if okT != exists || (okT && ino != v) {
					return false
				}
				delete(model, name)
			case 2:
				ino, _, okT, err := tbl.Lookup(nil, name)
				if err != nil {
					return false
				}
				v, exists := model[name]
				if okT != exists || (okT && ino != v) {
					return false
				}
			}
		}
		if tbl.Len() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
