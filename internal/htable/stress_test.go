package htable

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arckfs/internal/rcu"
)

// TestRCULookupVsWritersSameBucket churns rename-shaped delete+insert
// pairs through a deliberately tiny table (two initial buckets) so every
// writer collides with every reader's chain, while lock-free lookups
// verify a disjoint set of stable keys end-to-end. Run under -race this
// is the data-plane publication-order check: a reader must never observe
// a torn entry or a stale payload for a key that is never written.
func TestRCULookupVsWritersSameBucket(t *testing.T) {
	dom := rcu.NewDomain()
	tbl := New(Options{RCUReaders: true, Dom: dom, InitialBuckets: 2})
	const stable = 16
	for i := 0; i < stable; i++ {
		tbl.Insert(fmt.Sprintf("stable%d", i), uint64(i)+100, 0)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var faults atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rd := dom.Register()
			defer dom.Unregister(rd)
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := rng.Intn(stable)
				ino, _, ok, err := tbl.Lookup(rd, fmt.Sprintf("stable%d", k))
				if err != nil || !ok || ino != uint64(k)+100 {
					faults.Add(1)
					return
				}
			}
		}(int64(r)*31 + 7)
	}
	// Writers churn create/rename/unlink over their own key space, all of
	// it hashing into the same two buckets the readers traverse.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				a := fmt.Sprintf("w%d-a%d", w, i%64)
				b := fmt.Sprintf("w%d-b%d", w, i%64)
				tbl.Insert(a, uint64(i)+1, 0)
				if ino, ref, ok := tbl.Delete(a); ok { // rename: unlink + relink
					tbl.Insert(b, ino, ref)
				}
				tbl.Delete(b)
			}
			stop.Store(true)
		}(w)
	}
	wg.Wait()
	dom.Barrier()
	if f := faults.Load(); f != 0 {
		t.Fatalf("%d lock-free reader faults", f)
	}
	if tbl.Len() != stable {
		t.Fatalf("Len = %d, want %d", tbl.Len(), stable)
	}
}

// TestRCUGracePeriodBlocksOnPinnedReader pins the reclamation contract
// directly: a retired entry stays queued while any reader that could
// hold it is pinned, the grace period completes only after the unpin,
// and the queue drains to zero afterwards.
func TestRCUGracePeriodBlocksOnPinnedReader(t *testing.T) {
	dom := rcu.NewDomain()
	tbl := New(Options{RCUReaders: true, Dom: dom})
	tbl.Insert("victim", 1, 0)

	pinned := make(chan struct{})
	unpin := make(chan struct{})
	reader := make(chan struct{})
	go func() {
		// The Reader is not goroutine-safe: pin and unpin both happen on
		// this goroutine, the test signals through channels.
		rd := dom.Register()
		defer dom.Unregister(rd)
		rd.ReadLock()
		close(pinned)
		<-unpin
		rd.ReadUnlock()
		close(reader)
	}()
	<-pinned

	if _, _, ok := tbl.Delete("victim"); !ok {
		t.Fatal("delete failed")
	}
	if n := dom.Pending(); n != 1 {
		t.Fatalf("Pending = %d after retire, want 1", n)
	}

	syncDone := make(chan struct{})
	go func() {
		dom.Synchronize()
		close(syncDone)
	}()
	select {
	case <-syncDone:
		t.Fatal("grace period completed while a reader was pinned")
	case <-time.After(20 * time.Millisecond):
	}

	close(unpin)
	<-reader
	select {
	case <-syncDone:
	case <-time.After(5 * time.Second):
		t.Fatal("grace period did not complete after the reader unpinned")
	}
	if n := dom.Pending(); n != 0 {
		t.Fatalf("Pending = %d after grace period, want 0", n)
	}
}
