// Package htable implements the directory auxiliary-state hash table of
// ArckFS: DRAM name → inode index with one spinlock per bucket, entry
// reuse through a freelist, and growth by rehashing.
//
// The table supports the three reader disciplines the paper discusses:
//
//   - ArckFS as shipped (§4.5 bug): readers traverse buckets with no lock
//     and no reclamation protection, under the (incorrect) assumption
//     that entries are never freed. Deleted entries are returned to a
//     freelist and immediately reusable, so a concurrent reader can
//     observe recycled memory. In C this is a use-after-free segfault;
//     here each pooled entry carries a generation counter and a reader
//     that observes a torn generation reports ErrUseAfterFree, the
//     simulated segfault.
//   - ArckFS+ (§4.5 patch): readers run inside RCU read-side critical
//     sections and writers retire entries through rcu.Domain.Defer, so
//     the entry cannot be recycled while a reader may hold it.
//   - Locked readers: used by writers that already hold the bucket lock.
//
// The table deliberately does not know what its payloads mean: the LibFS
// stores the inode number and the persistent-memory location of the
// backing dentry record, and decides how much of the persistent update
// happens inside the bucket critical section (that extent is exactly the
// §4.4 bug).
package htable

import (
	"errors"
	"sync"
	"sync/atomic"

	"arckfs/internal/hlock"
	"arckfs/internal/rcu"
)

// ErrUseAfterFree is the simulated segmentation fault: a lockless reader
// observed an entry that was freed (and possibly recycled) mid-read.
var ErrUseAfterFree = errors.New("htable: use-after-free detected (simulated segfault)")

// Entry is a pooled chain node. Fields other than gen/next are valid only
// while the generation observed before and after reading them matches and
// is odd (live).
type Entry struct {
	gen  atomic.Uint64 // odd = live, even = free; bumped on alloc and free
	next atomic.Pointer[Entry]

	hash uint32
	name string
	Ino  uint64
	Ref  uint64 // opaque payload: PM location of the dentry record
}

// pool recycles entries through a freelist so that, as in the C artifact,
// a freed entry's memory can be handed out again immediately.
type pool struct {
	mu   hlock.SpinLock
	free []*Entry
}

func (p *pool) alloc() *Entry {
	p.mu.Lock()
	var e *Entry
	if n := len(p.free); n > 0 {
		e = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if e == nil {
		e = &Entry{}
	}
	e.gen.Add(1) // even -> odd: live
	return e
}

func (p *pool) release(e *Entry) {
	e.gen.Add(1) // odd -> even: free
	e.next.Store(nil)
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
}

type bucket struct {
	lock hlock.SpinLock
	head atomic.Pointer[Entry]
	_    [48]byte
}

type bucketArray struct {
	buckets []bucket
	mask    uint32
}

// Options selects the reader discipline.
type Options struct {
	// RCUReaders enables the §4.5 patch: lockless readers are protected
	// by the domain and frees are deferred past a grace period.
	RCUReaders bool
	// SerialReaders makes Lookup take the bucket lock — the fully
	// serialized baseline side of the data-plane A/B experiment. It
	// takes precedence over RCUReaders and needs no Domain: a reader
	// holding the bucket lock excludes the writers that could recycle
	// entries under it.
	SerialReaders bool
	// Dom is required when RCUReaders is set.
	Dom *rcu.Domain
	// InitialBuckets must be a power of two; 0 means 8.
	InitialBuckets int
	// StrictUAF makes a lockless reader fault (ErrUseAfterFree) the
	// moment it observes a recycled entry — the instrumented build the
	// paper uses to manifest §4.5. Without it, the reader restarts the
	// traversal, which is what the un-instrumented artifact effectively
	// does on real hardware (the window is nanoseconds and the recycled
	// memory is usually a valid entry again).
	StrictUAF bool
	// ReadLocks, when set, counts every bucket-lock acquisition made on
	// behalf of a read (SerialReaders lookups). The lock-free read path
	// never touches it, which is exactly what the benchcheck bound
	// "htable.read_locks max 0" pins.
	ReadLocks *atomic.Int64
}

// Table is the per-directory name index.
type Table struct {
	opts Options
	arr  atomic.Pointer[bucketArray]
	pool pool

	growMu sync.Mutex
	count  atomic.Int64

	// TraverseHook, if set, runs for every chain node a lockless reader
	// visits, between loading the node pointer and reading its fields.
	// Tests use it to open the §4.5 race window deterministically.
	TraverseHook func()
}

// New creates a table.
func New(opts Options) *Table {
	n := opts.InitialBuckets
	if n == 0 {
		n = 8
	}
	if n&(n-1) != 0 {
		panic("htable: InitialBuckets must be a power of two")
	}
	if opts.RCUReaders && opts.Dom == nil {
		panic("htable: RCUReaders requires a Domain")
	}
	t := &Table{opts: opts}
	t.arr.Store(&bucketArray{buckets: make([]bucket, n), mask: uint32(n - 1)})
	return t
}

// Hash is FNV-1a, exported so the LibFS can co-locate hashes in dentry
// records.
func Hash(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

// Len returns the number of live entries.
func (t *Table) Len() int { return int(t.count.Load()) }

// lockBucket locks the bucket for hash under the current array, retrying
// across concurrent resizes, and returns the array and bucket.
func (t *Table) lockBucket(h uint32) (*bucketArray, *bucket) {
	for {
		arr := t.arr.Load()
		b := &arr.buckets[h&arr.mask]
		b.lock.Lock()
		if t.arr.Load() == arr {
			return arr, b
		}
		b.lock.Unlock()
	}
}

// LockedBucket gives a writer exclusive access to one bucket so the LibFS
// can extend the critical section over the persistent update (§4.4).
type LockedBucket struct {
	t   *Table
	arr *bucketArray
	b   *bucket
}

// WithBucket runs fn with the bucket for name locked.
func (t *Table) WithBucket(name string, fn func(*LockedBucket)) {
	h := Hash(name)
	arr, b := t.lockBucket(h)
	lb := LockedBucket{t: t, arr: arr, b: b}
	defer func() {
		b.lock.Unlock()
		t.maybeGrow()
	}()
	fn(&lb)
}

// Get looks name up under the bucket lock.
func (lb *LockedBucket) Get(name string) (*Entry, bool) {
	h := Hash(name)
	for e := lb.b.head.Load(); e != nil; e = e.next.Load() {
		if e.hash == h && e.name == name {
			return e, true
		}
	}
	return nil, false
}

// Insert adds a live entry; it reports false if name already exists.
func (lb *LockedBucket) Insert(name string, ino, ref uint64) bool {
	if _, ok := lb.Get(name); ok {
		return false
	}
	e := lb.t.pool.alloc()
	e.hash = Hash(name)
	e.name = name
	e.Ino = ino
	e.Ref = ref
	e.next.Store(lb.b.head.Load())
	lb.b.head.Store(e)
	lb.t.count.Add(1)
	return true
}

// Delete unlinks name and retires the entry (immediately in buggy mode,
// after a grace period in RCU mode). It returns the entry's payloads.
func (lb *LockedBucket) Delete(name string) (ino, ref uint64, ok bool) {
	h := Hash(name)
	var prev *Entry
	for e := lb.b.head.Load(); e != nil; e = e.next.Load() {
		if e.hash == h && e.name == name {
			ino, ref = e.Ino, e.Ref
			next := e.next.Load()
			if prev == nil {
				lb.b.head.Store(next)
			} else {
				prev.next.Store(next)
			}
			lb.t.count.Add(-1)
			lb.t.retire(e)
			return ino, ref, true
		}
		prev = e
	}
	return 0, 0, false
}

func (t *Table) retire(e *Entry) {
	if t.opts.RCUReaders {
		t.opts.Dom.Defer(func() { t.pool.release(e) })
	} else {
		// ArckFS as shipped: the entry is reusable immediately.
		t.pool.release(e)
	}
}

// Insert is the convenience single-step writer.
func (t *Table) Insert(name string, ino, ref uint64) bool {
	var ok bool
	t.WithBucket(name, func(lb *LockedBucket) { ok = lb.Insert(name, ino, ref) })
	return ok
}

// Delete is the convenience single-step writer.
func (t *Table) Delete(name string) (ino, ref uint64, ok bool) {
	t.WithBucket(name, func(lb *LockedBucket) { ino, ref, ok = lb.Delete(name) })
	return
}

// Lookup finds name under the configured reader discipline: bucket-locked
// when SerialReaders is set, otherwise lockless (RCU-protected when
// RCUReaders is set, unprotected in the §4.5 buggy mode). rd may be nil
// unless RCU readers are enabled. On a detected recycled read it returns
// ErrUseAfterFree.
func (t *Table) Lookup(rd *rcu.Reader, name string) (ino, ref uint64, ok bool, err error) {
	if t.opts.SerialReaders {
		ino, ref, ok = t.lookupLocked(name)
		return ino, ref, ok, nil
	}
	if t.opts.RCUReaders {
		rd.ReadLock()
		defer rd.ReadUnlock()
	}
	h := Hash(name)
	const maxRestarts = 1000
	for restart := 0; ; restart++ {
		arr := t.arr.Load()
		b := &arr.buckets[h&arr.mask]
		torn := false
		for e := b.head.Load(); e != nil; {
			g1 := e.gen.Load()
			if t.TraverseHook != nil {
				// The hook sits inside the validation window: whatever a
				// test does while the reader is paused here is equivalent
				// to the reader's load of the entry being interleaved
				// with it.
				t.TraverseHook()
			}
			ehash, ename, eino, eref := e.hash, e.name, e.Ino, e.Ref
			next := e.next.Load()
			g2 := e.gen.Load()
			if g1 != g2 || g1%2 == 0 {
				if t.opts.RCUReaders {
					// Cannot happen: frees are deferred past our read lock.
					panic("htable: entry recycled inside an RCU critical section")
				}
				if t.opts.StrictUAF || restart >= maxRestarts {
					return 0, 0, false, ErrUseAfterFree
				}
				torn = true
				break
			}
			if ehash == h && ename == name {
				return eino, eref, true, nil
			}
			e = next
		}
		if !torn {
			return 0, 0, false, nil
		}
	}
}

// lookupLocked is the serialized read path: it takes the bucket lock for
// the traversal, counting the acquisition in Options.ReadLocks.
func (t *Table) lookupLocked(name string) (ino, ref uint64, ok bool) {
	if t.opts.ReadLocks != nil {
		t.opts.ReadLocks.Add(1)
	}
	h := Hash(name)
	_, b := t.lockBucket(h)
	defer b.lock.Unlock()
	for e := b.head.Load(); e != nil; e = e.next.Load() {
		if e.hash == h && e.name == name {
			return e.Ino, e.Ref, true
		}
	}
	return 0, 0, false
}

// Range calls fn for every live entry under bucket locks (a consistent
// per-bucket view; the table may change between buckets). fn must not
// call back into the table. It stops early if fn returns false.
func (t *Table) Range(fn func(name string, ino, ref uint64) bool) {
	arr := t.arr.Load()
	for i := range arr.buckets {
		b := &arr.buckets[i]
		b.lock.Lock()
		if t.arr.Load() != arr {
			// A resize happened; restart on the new array.
			b.lock.Unlock()
			t.Range(fn)
			return
		}
		for e := b.head.Load(); e != nil; e = e.next.Load() {
			if !fn(e.name, e.Ino, e.Ref) {
				b.lock.Unlock()
				return
			}
		}
		b.lock.Unlock()
	}
}

// LockAll locks every bucket (and blocks resizing), quiescing all
// writers — the §4.3 patch uses this to drain a directory before its
// inode is released. The returned function unlocks everything.
func (t *Table) LockAll() (unlock func()) {
	t.growMu.Lock()
	arr := t.arr.Load()
	for i := range arr.buckets {
		arr.buckets[i].lock.Lock()
	}
	return func() {
		for i := range arr.buckets {
			arr.buckets[i].lock.Unlock()
		}
		t.growMu.Unlock()
	}
}

// maybeGrow doubles the bucket array when the load factor exceeds 4.
// Growth copies entries into fresh nodes and retires the old ones, so
// in-flight lockless readers keep traversing intact old chains.
func (t *Table) maybeGrow() {
	arr := t.arr.Load()
	if t.count.Load() <= int64(len(arr.buckets))*4 {
		return
	}
	t.growMu.Lock()
	defer t.growMu.Unlock()
	arr = t.arr.Load()
	if t.count.Load() <= int64(len(arr.buckets))*4 {
		return
	}
	// Lock every old bucket to freeze writers.
	for i := range arr.buckets {
		arr.buckets[i].lock.Lock()
	}
	newArr := &bucketArray{
		buckets: make([]bucket, len(arr.buckets)*2),
		mask:    uint32(len(arr.buckets)*2 - 1),
	}
	for i := range arr.buckets {
		for e := arr.buckets[i].head.Load(); e != nil; e = e.next.Load() {
			ne := t.pool.alloc()
			ne.hash, ne.name, ne.Ino, ne.Ref = e.hash, e.name, e.Ino, e.Ref
			nb := &newArr.buckets[ne.hash&newArr.mask]
			ne.next.Store(nb.head.Load())
			nb.head.Store(ne)
		}
	}
	t.arr.Store(newArr)
	for i := range arr.buckets {
		// Retire old nodes after publication; old readers may still be
		// walking them.
		for e := arr.buckets[i].head.Load(); e != nil; {
			next := e.next.Load()
			t.retire(e)
			e = next
		}
		arr.buckets[i].head.Store(nil)
		arr.buckets[i].lock.Unlock()
	}
}
