package fsapi

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":          "/",
		"/":         "/",
		"a":         "/a",
		"/a/":       "/a",
		"//a//b///": "/a/b",
		"/a/b":      "/a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
		{"//a//b", "/a", "b"},
	}
	for _, c := range cases {
		dir, name := SplitPath(c.in)
		if dir != c.dir || name != c.name {
			t.Errorf("SplitPath(%q) = (%q, %q), want (%q, %q)", c.in, dir, name, c.dir, c.name)
		}
	}
}

func TestComponents(t *testing.T) {
	if got := Components("/"); len(got) != 0 {
		t.Errorf("Components(/) = %v", got)
	}
	if got := Components("/a/b/c"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Components = %v", got)
	}
	if got := Components("a//b/"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Components = %v", got)
	}
}

// Property: SplitPath + join is the identity on cleaned paths.
func TestQuickSplitJoin(t *testing.T) {
	f := func(parts []string) bool {
		path := ""
		for _, p := range parts {
			if p == "" {
				p = "x"
			}
			for i := 0; i < len(p); i++ {
				if p[i] == '/' {
					p = "y"
					break
				}
			}
			path += "/" + p
		}
		if path == "" {
			path = "/"
		}
		cleaned := Clean(path)
		dir, name := SplitPath(cleaned)
		if cleaned == "/" {
			return dir == "/" && name == ""
		}
		rejoined := dir + "/" + name
		if dir == "/" {
			rejoined = "/" + name
		}
		return Clean(rejoined) == cleaned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
