// Package fstest provides a conformance suite run against every file
// system in the repository (ArckFS, ArckFS+, and the three baselines), so
// the benchmark harness can assume identical POSIX-ish semantics from all
// of them.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"arckfs/internal/fsapi"
)

// Run executes the conformance suite against a fresh FS from mk.
func Run(t *testing.T, mk func(t *testing.T) fsapi.FS) {
	t.Run("CreateOpenReadWrite", func(t *testing.T) { testCreateRW(t, mk(t)) })
	t.Run("Errnos", func(t *testing.T) { testErrnos(t, mk(t)) })
	t.Run("MkdirReaddir", func(t *testing.T) { testMkdirReaddir(t, mk(t)) })
	t.Run("UnlinkRmdir", func(t *testing.T) { testUnlinkRmdir(t, mk(t)) })
	t.Run("RenameFile", func(t *testing.T) { testRenameFile(t, mk(t)) })
	t.Run("Truncate", func(t *testing.T) { testTruncate(t, mk(t)) })
	t.Run("LargeIO", func(t *testing.T) { testLargeIO(t, mk(t)) })
	t.Run("ParallelPrivateDirs", func(t *testing.T) { testParallel(t, mk(t)) })
}

func testCreateRW(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	if err := w.Create("/f"); err != nil {
		t.Fatal(err)
	}
	fd, err := w.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("conformance payload")
	if n, err := w.WriteAt(fd, data, 0); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := w.ReadAt(fd, got, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	st, err := w.Stat("/f")
	if err != nil || st.Size != uint64(len(data)) || st.Dir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	if err := w.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func testErrnos(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	mustErr := func(err, want error, what string) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Fatalf("%s = %v, want %v", what, err, want)
		}
	}
	if err := w.Create("/f"); err != nil {
		t.Fatal(err)
	}
	mustErr(w.Create("/f"), fsapi.ErrExist, "duplicate create")
	_, err := w.Open("/nope")
	mustErr(err, fsapi.ErrNotExist, "open missing")
	mustErr(w.Unlink("/nope"), fsapi.ErrNotExist, "unlink missing")
	_, err = w.Stat("/nope")
	mustErr(err, fsapi.ErrNotExist, "stat missing")
	if err := w.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	mustErr(w.Mkdir("/d"), fsapi.ErrExist, "duplicate mkdir")
	mustErr(w.Unlink("/d"), fsapi.ErrIsDir, "unlink dir")
	mustErr(w.Rmdir("/f"), fsapi.ErrNotDir, "rmdir file")
	if err := w.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	mustErr(w.Rmdir("/d"), fsapi.ErrNotEmpty, "rmdir non-empty")
	mustErr(w.Create("/f/under"), fsapi.ErrNotDir, "create under file")
	mustErr(w.Create("/gone/under"), fsapi.ErrNotExist, "create under missing")
}

func testMkdirReaddir(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	if err := w.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := w.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := w.Create(fmt.Sprintf("/a/b/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := w.Readdir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 25 {
		t.Fatalf("Readdir = %d entries", len(names))
	}
	st, err := w.Stat("/a/b")
	if err != nil || !st.Dir {
		t.Fatalf("Stat dir = %+v, %v", st, err)
	}
	if names2, _ := w.Readdir("/a"); len(names2) != 1 || names2[0] != "b" {
		t.Fatalf("Readdir /a = %v", names2)
	}
}

func testUnlinkRmdir(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	w.Mkdir("/d")
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/d/f%d", i)
		if err := w.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("/d/f%d", i)
		if err := w.Unlink(p); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Stat(p); !errors.Is(err, fsapi.ErrNotExist) {
			t.Fatalf("stat after unlink: %v", err)
		}
	}
	if err := w.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Stat("/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after rmdir: %v", err)
	}
	// Name reuse after unlink.
	if err := w.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func testRenameFile(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	w.Mkdir("/src")
	w.Mkdir("/dst")
	w.Create("/src/f")
	fd, _ := w.Open("/src/f")
	w.WriteAt(fd, []byte("moved"), 0)
	w.Close(fd)
	if err := w.Rename("/src/f", "/src/g"); err != nil {
		t.Fatalf("same-dir rename: %v", err)
	}
	if err := w.Rename("/src/g", "/dst/h"); err != nil {
		t.Fatalf("cross-dir rename: %v", err)
	}
	fd, err := w.Open("/dst/h")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	w.ReadAt(fd, got, 0)
	if string(got) != "moved" {
		t.Fatalf("data after rename: %q", got)
	}
	if _, err := w.Stat("/src/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("source name survives")
	}
}

func testTruncate(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	w.Create("/f")
	fd, _ := w.Open("/f")
	blob := make([]byte, 20000)
	for i := range blob {
		blob[i] = byte(i % 251)
	}
	w.WriteAt(fd, blob, 0)
	if err := w.Truncate("/f", 5000); err != nil {
		t.Fatal(err)
	}
	st, _ := w.Stat("/f")
	if st.Size != 5000 {
		t.Fatalf("size = %d", st.Size)
	}
	got := make([]byte, 5000)
	if n, _ := w.ReadAt(fd, got, 0); n != 5000 || !bytes.Equal(got, blob[:5000]) {
		t.Fatalf("data after shrink: n=%d", n)
	}
}

func testLargeIO(t *testing.T, fs fsapi.FS) {
	w := fs.NewThread(0)
	w.Create("/big")
	fd, _ := w.Open("/big")
	blob := make([]byte, 256<<10)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	if n, err := w.WriteAt(fd, blob, 12345); err != nil || n != len(blob) {
		t.Fatalf("large write: %d, %v", n, err)
	}
	got := make([]byte, len(blob))
	if n, err := w.ReadAt(fd, got, 12345); err != nil || n != len(blob) {
		t.Fatalf("large read: %d, %v", n, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("large IO data mismatch")
	}
	// Random 4K overwrites.
	for i := 0; i < 16; i++ {
		off := int64(i * 8192)
		page := make([]byte, 4096)
		for j := range page {
			page[j] = byte(i)
		}
		w.WriteAt(fd, page, off)
		back := make([]byte, 4096)
		w.ReadAt(fd, back, off)
		if !bytes.Equal(back, page) {
			t.Fatalf("overwrite %d mismatch", i)
		}
	}
}

func testParallel(t *testing.T, fs fsapi.FS) {
	setup := fs.NewThread(0)
	const nt = 4
	for g := 0; g < nt; g++ {
		if err := setup.Mkdir(fmt.Sprintf("/p%d", g)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, nt)
	for g := 0; g < nt; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := fs.NewThread(g)
			buf := make([]byte, 4096)
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("/p%d/f%d", g, i)
				if err := w.Create(p); err != nil {
					errs[g] = err
					return
				}
				fd, err := w.Open(p)
				if err != nil {
					errs[g] = err
					return
				}
				if _, err := w.WriteAt(fd, buf, 0); err != nil {
					errs[g] = err
					return
				}
				w.Close(fd)
				if i%2 == 0 {
					if err := w.Unlink(p); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}
}
