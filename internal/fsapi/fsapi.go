// Package fsapi defines the file-system-agnostic surface shared by ArckFS
// and the baseline file systems, so workloads, benchmarks, and the oracle
// tests drive every implementation identically.
package fsapi

import (
	"errors"
	"strings"
)

// Error codes, deliberately close to the POSIX errnos the paper's
// artifact would return.
var (
	ErrNotExist    = errors.New("no such file or directory")
	ErrExist       = errors.New("file exists")
	ErrNotDir      = errors.New("not a directory")
	ErrIsDir       = errors.New("is a directory")
	ErrNotEmpty    = errors.New("directory not empty")
	ErrPerm        = errors.New("permission denied")
	ErrNoSpace     = errors.New("no space left on device")
	ErrInval       = errors.New("invalid argument")
	ErrBusy        = errors.New("resource busy")
	ErrBadFd       = errors.New("bad file descriptor")
	ErrNameTooLong = errors.New("file name too long")
	// ErrStale is returned when an operation touches an inode whose
	// mapping the kernel has revoked (the moral equivalent of SIGBUS on a
	// torn-down PM mapping).
	ErrStale = errors.New("stale inode mapping")
	// ErrBusError is the simulated process crash of §4.3: a thread
	// dereferenced core state that another thread unmapped underneath it.
	ErrBusError = errors.New("bus error: dereference of unmapped core state (simulated crash)")
	// ErrSegfault is the simulated process crash of §4.4/§4.5: a thread
	// followed auxiliary state into freed or non-existent memory.
	ErrSegfault = errors.New("segmentation fault (simulated crash)")
	// ErrVerification is returned when the integrity verifier rejects a
	// released inode and the kernel applied its corruption policy.
	ErrVerification = errors.New("integrity verification failed")
	// ErrLoop is returned when path resolution exceeds the depth bound
	// (a directory cycle, §4.6).
	ErrLoop = errors.New("too many levels of directories (possible cycle)")
)

// Stat describes an inode.
type Stat struct {
	Ino   uint64
	Dir   bool
	Size  uint64
	Nlink uint16
	MTime uint64
}

// FD is a per-thread open-file descriptor.
type FD int

// Thread is a per-worker handle onto a file system. Implementations may
// carry per-thread auxiliary state (CPU id for log-tail selection, RCU
// reader registration, scratch buffers); a Thread must not be used from
// two goroutines at once, but distinct Threads of one FS may run fully in
// parallel.
type Thread interface {
	Create(path string) error
	Mkdir(path string) error
	Open(path string) (FD, error)
	Close(fd FD) error
	ReadAt(fd FD, p []byte, off int64) (int, error)
	WriteAt(fd FD, p []byte, off int64) (int, error)
	Fsync(fd FD) error
	Unlink(path string) error
	Rmdir(path string) error
	Rename(oldPath, newPath string) error
	Stat(path string) (Stat, error)
	Readdir(path string) ([]string, error)
	Truncate(path string, size uint64) error
}

// FS is a mounted file system instance.
type FS interface {
	// Name identifies the implementation in benchmark output.
	Name() string
	// NewThread creates a worker handle pinned to a virtual CPU.
	NewThread(cpu int) Thread
}

// SplitPath splits an absolute path into its directory part and final
// component. The root itself splits into ("/", "").
func SplitPath(path string) (dir, name string) {
	path = Clean(path)
	if path == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:]
}

// Clean normalizes an absolute path: collapses repeated slashes and
// removes a trailing slash. It does not interpret "." or "..".
func Clean(path string) string {
	if path == "" {
		return "/"
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	for strings.Contains(path, "//") {
		path = strings.ReplaceAll(path, "//", "/")
	}
	if len(path) > 1 && strings.HasSuffix(path, "/") {
		path = path[:len(path)-1]
	}
	return path
}

// Components splits a cleaned absolute path into its path elements.
// The root yields an empty slice.
func Components(path string) []string {
	path = Clean(path)
	if path == "/" {
		return nil
	}
	return strings.Split(path[1:], "/")
}
