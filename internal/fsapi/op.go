package fsapi

import (
	"encoding/json"
	"fmt"
)

// Op classifies a file-system operation for tracing and attribution. The
// values mirror the Thread interface one-to-one, plus the non-POSIX
// surface (commit, release, batch) and recovery, so a span's op kind
// identifies the entry point that started it.
type Op uint8

const (
	OpNone Op = iota
	OpCreate
	OpMkdir
	OpOpen
	OpClose
	OpRead
	OpWrite
	OpFsync
	OpUnlink
	OpRmdir
	OpRename
	OpStat
	OpReaddir
	OpTruncate
	// OpCommit and OpRelease are the ownership-transfer entry points
	// (CommitInode / ReleaseInode / ReleaseAll).
	OpCommit
	OpRelease
	// OpBatch is the composite create-many entry point (CreateBatch).
	OpBatch
	// OpRecover is kernel mount-time recovery.
	OpRecover
)

var opNames = [...]string{
	OpNone:     "none",
	OpCreate:   "create",
	OpMkdir:    "mkdir",
	OpOpen:     "open",
	OpClose:    "close",
	OpRead:     "read",
	OpWrite:    "write",
	OpFsync:    "fsync",
	OpUnlink:   "unlink",
	OpRmdir:    "rmdir",
	OpRename:   "rename",
	OpStat:     "stat",
	OpReaddir:  "readdir",
	OpTruncate: "truncate",
	OpCommit:   "commit",
	OpRelease:  "release",
	OpBatch:    "batch",
	OpRecover:  "recover",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarshalJSON renders the op by name.
func (o Op) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// UnmarshalJSON accepts the name form MarshalJSON emits (and the
// op(N) fallback for values this build does not know), so flight
// records and bench artifacts round-trip.
func (o *Op) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range opNames {
		if name == s {
			*o = Op(i)
			return nil
		}
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "op(%d)", &n); err != nil {
		return fmt.Errorf("fsapi: unknown op %q", s)
	}
	*o = Op(n)
	return nil
}
