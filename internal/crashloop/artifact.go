package crashloop

import (
	"encoding/json"
	"fmt"
	"os"

	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// LoadBreach reads a breach artifact written by Run.
func LoadBreach(path string) (*Breach, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Breach
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("crashloop: parsing breach artifact %s: %v", path, err)
	}
	if b.Tool != "arckcrash" {
		return nil, fmt.Errorf("crashloop: %s is not an arckcrash breach artifact (tool=%q)", path, b.Tool)
	}
	return &b, nil
}

// ReplayConfig reconstructs the iteration's Config from the artifact
// alone — no campaign registry needed.
func (b *Breach) ReplayConfig() (Config, error) {
	faults, err := pmem.ParseFaultModes(b.Faults)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name:        b.Config,
		System:      b.System,
		Bugs:        libfs.Bugs(b.Bugs),
		Faults:      faults,
		Seed:        b.Seed,
		OpsPerIter:  b.OpsPerIter,
		Tenants:     b.Tenants,
		DevSize:     b.DevSize,
		InodeCap:    b.InodeCap,
		NoArtifacts: true,
	}, nil
}

// ReplayOutcome reports what a replayed iteration produced.
type ReplayOutcome struct {
	// Reproduced is true when the replay re-found the artifact's
	// invariant at the artifact's crash point.
	Reproduced bool
	// Crash is the replay's crash point (nil for soak-only replays).
	Crash *CrashPoint
	// Breaches are every violation the replayed iteration found.
	Breaches []*Breach
}

// Replay re-runs the breach's iteration deterministically from the
// artifact: same seed, same workload, same fault plan, same crash
// point.
func Replay(b *Breach) (*ReplayOutcome, error) {
	cfg, err := b.ReplayConfig()
	if err != nil {
		return nil, err
	}
	cfg.fill()
	ir, err := runIteration(&cfg, b.Iter, b.IterSeed)
	if err != nil {
		return nil, err
	}
	out := &ReplayOutcome{Crash: ir.Crash, Breaches: ir.Breaches}
	for _, rb := range ir.Breaches {
		if rb.Invariant == b.Invariant && rb.Crash == b.Crash {
			out.Reproduced = true
		}
	}
	return out, nil
}
