package crashloop

import (
	"path/filepath"
	"reflect"
	"testing"

	"arckfs/internal/crashmc"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// TestSeededDeterminism replays one iteration twice from the same
// (config, seed) pair and requires byte-identical op logs and crash
// points — the property breach-artifact replay depends on.
func TestSeededDeterminism(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "det-clean"},
		{Name: "det-bug", Bugs: libfs.BugMissingFence},
		{Name: "det-lie", Faults: pmem.FaultDropFlush | pmem.FaultDropFence | pmem.FaultTearLine},
	} {
		cfg.NoArtifacts = true
		cfg.fill()
		for iter := 0; iter < 6; iter++ {
			seed := int64(1000 + iter)
			a, err := runIteration(&cfg, iter, seed)
			if err != nil {
				t.Fatalf("%s iter %d: %v", cfg.Name, iter, err)
			}
			b, err := runIteration(&cfg, iter, seed)
			if err != nil {
				t.Fatalf("%s iter %d replay: %v", cfg.Name, iter, err)
			}
			if !reflect.DeepEqual(a.OpLog, b.OpLog) {
				t.Fatalf("%s iter %d: op logs diverged", cfg.Name, iter)
			}
			if !reflect.DeepEqual(a.Crash, b.Crash) {
				t.Fatalf("%s iter %d: crash points diverged: %v vs %v",
					cfg.Name, iter, a.Crash, b.Crash)
			}
			if len(a.Breaches) != len(b.Breaches) {
				t.Fatalf("%s iter %d: breach counts diverged: %d vs %d",
					cfg.Name, iter, len(a.Breaches), len(b.Breaches))
			}
		}
	}
}

// TestOracleSelfCheck runs clean ArckFS+ crash loops: every crash image
// must recover to exactly the oracle's expected namespace, and soak
// endings must walk a live namespace identical to the oracle's.
func TestOracleSelfCheck(t *testing.T) {
	res, err := Run(Config{Name: "selfcheck", Iters: 25, Seed: 7, NoArtifacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("clean config breached: %s", res.Summary())
	}
	if res.Crashes == 0 || res.Soaks == 0 {
		t.Fatalf("want both crash and soak endings, got crashes=%d soaks=%d",
			res.Crashes, res.Soaks)
	}
}

// TestBaselineSoak runs the no-recovery baselines in soak-only mode.
func TestBaselineSoak(t *testing.T) {
	for _, sys := range []string{"nova", "kucofs"} {
		res, err := Run(Config{Name: "soak-" + sys, System: sys, Iters: 8, Seed: 3, NoArtifacts: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("%s soak breached: %s", sys, res.Summary())
		}
		if res.Crashes != 0 || res.Soaks != res.Iters {
			t.Fatalf("%s: baselines must soak every iteration: %s", sys, res.Summary())
		}
	}
}

// TestLieModesBreachPatchedSystem is the lie-mode acceptance check: the
// patched ArckFS+ survives every honest crash the loop throws at it
// (TestOracleSelfCheck), yet a lying device surfaces torn commits and
// verified-state loss on the very same workloads — bug classes honest
// crash-state enumeration cannot reach.
func TestLieModesBreachPatchedSystem(t *testing.T) {
	expect := []string{crashmc.InvNoTornCommit, crashmc.InvVerifiedDurable}
	for _, mode := range []pmem.FaultMode{pmem.FaultDropFlush, pmem.FaultDropFence} {
		res, err := Run(Config{
			Name:        "lie-" + mode.String(),
			Faults:      mode,
			Iters:       40,
			Seed:        1,
			NoArtifacts: true,
			Expect:      expect,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("%s: %s", mode, res.Summary())
		}
		if len(res.Breaches) == 0 {
			t.Fatalf("%s: lying device found no breach in %d iters", mode, res.Iters)
		}
	}
}

// TestAimedDropFlush aims the lie at exactly one operation: a fault plan
// whose Filter is active only while the victim file's create commits, so
// every write-back of that one §4.2-style commit path is silently
// dropped while the rest of the execution — and the entire honest
// control run — persists truthfully. The release protocol still verifies
// the file (its reads are volatile), so the crash image must fail
// I3-verified-durable, and only under the lie.
func TestAimedDropFlush(t *testing.T) {
	run := func(lie bool) []crashmc.Violation {
		dev := pmem.New(4<<20, nil)
		ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: 256})
		if err != nil {
			t.Fatal(err)
		}
		fs := libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{
			GrantInoBatch:  32,
			GrantPageBatch: 32,
			DirBuckets:     8,
		})
		th := fs.NewThread(0)
		warm := warmupOps()
		for _, op := range warm {
			if err := op.Apply(th, fs.ReleaseAll); err != nil {
				t.Fatalf("warmup %s: %v", op, err)
			}
		}
		if err := fs.ReleaseAll(); err != nil {
			t.Fatal(err)
		}
		oracle := crashmc.NewOracle(warm)

		active := false
		if lie {
			p := pmem.NewFaultPlan(pmem.FaultDropFlush, 1)
			p.FlushEvery = 1
			p.Filter = func(int64) bool { return active }
			dev.SetFaultPlan(p)
		}
		dev.EnableTracking()

		victim := crashmc.Op{Kind: crashmc.OpCreate, Path: "/w0/victim" + longName}
		active = true
		if err := victim.Apply(th, fs.ReleaseAll); err != nil {
			t.Fatalf("victim create: %v", err)
		}
		active = false
		oracle.Apply(victim)
		rel := crashmc.Op{Kind: crashmc.OpRelease}
		if err := rel.Apply(th, fs.ReleaseAll); err != nil {
			t.Fatalf("release: %v", err)
		}
		oracle.Apply(rel)

		img := dev.CrashImage(pmem.CrashDropAll)
		return crashmc.CheckImage(img, oracle.ExpectPresent(nil))
	}

	if vs := run(false); len(vs) != 0 {
		t.Fatalf("honest run breached: %v", vs)
	}
	vs := run(true)
	if len(vs) == 0 {
		t.Fatalf("aimed dropped flush on the commit path went undetected")
	}
	for _, v := range vs {
		if v.Invariant != crashmc.InvNoTornCommit && v.Invariant != crashmc.InvVerifiedDurable {
			t.Fatalf("unexpected invariant %s: %s", v.Invariant, v.Detail)
		}
	}
}

// TestArtifactRoundTrip writes a breach artifact, loads it back, and
// replays it: the replay must re-find the same invariant at the same
// crash point from the artifact alone.
func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{
		Name:        "roundtrip",
		Bugs:        libfs.BugAuxCoreRace | libfs.BugReserveLenUnflushed,
		Iters:       40,
		Seed:        1,
		ArtifactDir: dir,
		Expect:      []string{crashmc.InvVerifiedDurable},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breaches) == 0 {
		t.Fatalf("no breach to round-trip: %s", res.Summary())
	}
	first := res.Breaches[0]
	if first.Artifact == "" {
		t.Fatalf("breach has no artifact path")
	}
	b, err := LoadBreach(first.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if b.Invariant != first.Invariant || b.IterSeed != first.IterSeed {
		t.Fatalf("artifact round-trip mangled the breach: %v vs %v", b, first)
	}
	out, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reproduced {
		t.Fatalf("replay of %s did not reproduce", filepath.Base(first.Artifact))
	}
}

// TestExpectSemantics checks Result.OK's inclusion rules directly.
func TestExpectSemantics(t *testing.T) {
	mk := func(expect []string, invs ...string) *Result {
		r := &Result{Config: Config{Expect: expect}}
		for _, inv := range invs {
			r.Breaches = append(r.Breaches, &Breach{Invariant: inv})
		}
		return r
	}
	if !mk(nil).OK() {
		t.Fatal("clean config with no breaches must be OK")
	}
	if mk(nil, crashmc.InvNoTornCommit).OK() {
		t.Fatal("clean config with a breach must fail")
	}
	if mk([]string{crashmc.InvNoTornCommit}).OK() {
		t.Fatal("expected breach not found must fail")
	}
	if !mk([]string{crashmc.InvNoTornCommit}, crashmc.InvNoTornCommit).OK() {
		t.Fatal("expected breach found must be OK")
	}
	if mk([]string{crashmc.InvNoTornCommit}, crashmc.InvRepairIdempotent).OK() {
		t.Fatal("unexpected invariant must fail even when another was expected")
	}
}
