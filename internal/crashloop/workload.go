package crashloop

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"arckfs/internal/crashmc"
	"arckfs/internal/fsapi"
)

// longName pushes DentryRecLen past one cache line, so a record's name
// bytes can persist (or tear) independently of the line holding its
// commit marker — the physical precondition of the §4.2 signature.
const longName = "-0123456789-0123456789-0123456789-0123456789-0123456789"

// genOps grows a randomized workload of n ops against oracle, which it
// mutates as its mirror of the namespace the ops will produce: every
// target path is drawn from the state the preceding ops establish, so
// the schedule is valid by construction and a pure function of rng.
//
// The mix deliberately includes the shapes the known bug classes need:
// duplicate creates (WantErr) plant dead reserved dentry slots, long
// names make torn commits expressible, releases set the durability
// points the oracle asserts against, and renames/unlinks churn the
// verified set.
func genOps(rng *rand.Rand, oracle *crashmc.Oracle, n int) []crashmc.Op {
	var ops []crashmc.Op
	pick := func(list []string) string { return list[rng.Intn(len(list))] }
	join := func(dir, name string) string {
		if dir == "/" {
			return "/" + name
		}
		return dir + "/" + name
	}
	// committedKids marks directories that had children at the last
	// release. Removing such a directory — even after emptying it in the
	// current window — fails release verification by design: the
	// parent's commit sees the child's stale shadow ChildCount and
	// rejects the removal as an I3 violation. rmdir therefore targets
	// only directories already verified empty (or never committed).
	committedKids := map[string]bool{}
	snapshotKids := func() {
		committedKids = map[string]bool{}
		for _, p := range oracle.Live() {
			dir, _ := fsapi.SplitPath(p)
			committedKids[dir] = true
		}
	}
	snapshotKids()
	emit := func(op crashmc.Op) {
		ops = append(ops, op)
		if op.WantErr {
			return
		}
		oracle.Apply(op)
		switch op.Kind {
		case crashmc.OpRelease:
			snapshotKids()
		case crashmc.OpRename:
			// Keep committedKids keyed by current paths across renames.
			moved := map[string]bool{}
			for d := range committedKids {
				if d == op.Path || strings.HasPrefix(d, op.Path+"/") {
					moved[d] = true
				}
			}
			for d := range moved {
				delete(committedKids, d)
				committedKids[op.Path2+strings.TrimPrefix(d, op.Path)] = true
			}
		}
	}
	emptyDirs := func() []string {
		live := oracle.Live()
		var out []string
		for _, d := range oracle.Dirs() {
			if d == "/" || committedKids[d] {
				continue
			}
			empty := true
			for _, p := range live {
				if strings.HasPrefix(p, d+"/") {
					empty = false
					break
				}
			}
			if empty {
				out = append(out, d)
			}
		}
		return out
	}

	for i := 0; len(ops) < n; i++ {
		switch roll := rng.Intn(100); {
		case roll < 28: // create, mixed name lengths
			name := fmt.Sprintf("f%03d", i)
			if rng.Intn(100) < 35 {
				name += longName
			}
			emit(crashmc.Op{Kind: crashmc.OpCreate, Path: join(pick(oracle.Dirs()), name)})
		case roll < 36: // duplicate create — plants a dead reserved slot
			files := oracle.Files()
			if len(files) == 0 {
				continue
			}
			emit(crashmc.Op{Kind: crashmc.OpCreate, Path: pick(files), WantErr: true})
		case roll < 44: // mkdir
			emit(crashmc.Op{Kind: crashmc.OpMkdir, Path: join(pick(oracle.Dirs()), fmt.Sprintf("d%03d", i))})
		case roll < 56: // write
			files := oracle.Files()
			if len(files) == 0 {
				continue
			}
			emit(crashmc.Op{Kind: crashmc.OpWrite, Path: pick(files), Size: 1 + rng.Intn(400)})
		case roll < 62: // truncate
			files := oracle.Files()
			if len(files) == 0 {
				continue
			}
			emit(crashmc.Op{Kind: crashmc.OpTruncate, Path: pick(files), Size: rng.Intn(256)})
		case roll < 72: // unlink
			files := oracle.Files()
			if len(files) == 0 {
				continue
			}
			emit(crashmc.Op{Kind: crashmc.OpUnlink, Path: pick(files)})
		case roll < 76: // rmdir (empty directories only)
			ed := emptyDirs()
			if len(ed) == 0 {
				continue
			}
			emit(crashmc.Op{Kind: crashmc.OpRmdir, Path: pick(ed)})
		case roll < 90: // rename within the parent directory
			// Same-parent renames only: the Trio release protocol verifies
			// a cross-directory relocation's removal and addition as the
			// two parents release, and ReleaseAll's ordering can verify
			// the removal first — freeing the inode before its new link is
			// seen. Staying in one parent keeps every generated schedule
			// inside the protocol the paper's rules cover.
			var victims []string
			if rng.Intn(100) < 70 {
				victims = oracle.Files()
			} else {
				for _, d := range oracle.Dirs() {
					if d != "/" {
						victims = append(victims, d)
					}
				}
			}
			if len(victims) == 0 {
				continue
			}
			src := pick(victims)
			dir, _ := fsapi.SplitPath(src)
			emit(crashmc.Op{Kind: crashmc.OpRename,
				Path:  src,
				Path2: join(dir, fmt.Sprintf("r%03d", i))})
		default: // release — the Trio durability point
			emit(crashmc.Op{Kind: crashmc.OpRelease})
		}
	}
	return ops
}

// walkLive recursively lists every path reachable from the root via
// Readdir, sorted — the live half of the oracle self-check.
func walkLive(th fsapi.Thread) ([]string, error) {
	var out []string
	var rec func(dir string) error
	rec = func(dir string) error {
		names, err := th.Readdir(dir)
		if err != nil {
			return fmt.Errorf("readdir %s: %v", dir, err)
		}
		for _, n := range names {
			p := dir + "/" + n
			if dir == "/" {
				p = "/" + n
			}
			out = append(out, p)
			st, err := th.Stat(p)
			if err != nil {
				return fmt.Errorf("stat %s: %v", p, err)
			}
			if st.Dir {
				if err := rec(p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec("/"); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// diffNamespaces compares the oracle's expected namespace against the
// walked one; it returns "" on an exact match, else a bounded summary
// of what is missing and what is unexpected.
func diffNamespaces(want, got []string) string {
	w := make(map[string]bool, len(want))
	for _, p := range want {
		w[p] = true
	}
	g := make(map[string]bool, len(got))
	for _, p := range got {
		g[p] = true
	}
	var missing, extra []string
	for _, p := range want {
		if !g[p] {
			missing = append(missing, p)
		}
	}
	for _, p := range got {
		if !w[p] {
			extra = append(extra, p)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return ""
	}
	bound := func(ps []string) string {
		if len(ps) > 4 {
			return fmt.Sprintf("%v … (%d total)", ps[:4], len(ps))
		}
		return fmt.Sprint(ps)
	}
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, "missing "+bound(missing))
	}
	if len(extra) > 0 {
		parts = append(parts, "unexpected "+bound(extra))
	}
	return "live namespace diverged from oracle: " + strings.Join(parts, "; ")
}
