package crashloop

import (
	"arckfs/internal/crashmc"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// Campaign returns the standard crash-loop configurations with each
// one's Expect oracle. Three groups:
//
//   - Honest-device injectable bugs: missing-fence must re-find the
//     §4.2 torn commit (I2) and reserve-len must re-find the
//     reserveDentry record-length hole (I3), both from their config
//     flags alone; arckfs-plus must stay clean over the same generator.
//   - Lying devices against the *patched* system: drop-flush and
//     drop-fence surface torn commits and verified-state loss on
//     ArckFS+ (I2/I3) even though crash-only enumeration proves it
//     clean, and torn-line surfaces mid-line marker tears (I2) that
//     break the honest model's per-line prefix rule.
//   - Baseline soaks: no recovery scan to test, so nova runs in
//     soak-only mode and must match the oracle's live namespace.
//   - Multi-tenant: tenant-storm runs the clean generator round-robin
//     across eight LibFS instances with an ownership handoff at every
//     tenant switch, so crashes land mid-revocation-storm; it must stay
//     as clean as the single-tenant run.
//
// Expect uses inclusion semantics (Result.OK): a randomized loop must
// find at least one expected breach and nothing unexpected.
func Campaign() []Config {
	return []Config{
		{
			Name: "arckfs-plus",
		},
		{
			Name:    "tenant-storm",
			Tenants: 8,
		},
		{
			Name:   "missing-fence",
			Bugs:   libfs.BugMissingFence,
			Expect: []string{crashmc.InvNoTornCommit, crashmc.InvVerifiedDurable},
		},
		{
			Name:   "reserve-len",
			Bugs:   libfs.BugAuxCoreRace | libfs.BugReserveLenUnflushed,
			Expect: []string{crashmc.InvVerifiedDurable},
		},
		{
			Name:   "lie-drop-flush",
			Faults: pmem.FaultDropFlush,
			Expect: []string{crashmc.InvNoTornCommit, crashmc.InvVerifiedDurable},
		},
		{
			Name:   "lie-drop-fence",
			Faults: pmem.FaultDropFence,
			Expect: []string{crashmc.InvNoTornCommit, crashmc.InvVerifiedDurable},
		},
		{
			Name:   "lie-torn-line",
			Faults: pmem.FaultTearLine,
			Expect: []string{crashmc.InvNoTornCommit, crashmc.InvVerifiedDurable},
		},
		{
			Name:   "soak-nova",
			System: "nova",
		},
	}
}
