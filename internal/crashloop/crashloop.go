// Package crashloop implements continuous randomized crash-loop testing
// — the blackbox tier above internal/crashmc's single-workload
// enumeration, and the engine behind cmd/arckcrash.
//
// Each iteration is fully determined by (Config, iteration seed): a
// seeded generator grows a randomized workload (create / write / rename
// / truncate / unlink / mkdir / release mixes, including the duplicate
// creates that plant dead reserved dentry slots) against an oracle
// mirror; execution kills the run at a random fence, at a named
// whitebox killpoint (pmem.Killpoint sites at commit-marker stores,
// batch drains, and recovery passes), or at a post-op checkpoint;
// recovery mounts the crash image via kernel.Mount with repair; and the
// recovered image is verified against the incrementally-maintained
// expected-state oracle (crashmc.Oracle) with crashmc.CheckImage. Under
// a Config with Faults set, the iteration's device additionally lies
// per a seeded pmem.FaultPlan — dropped flushes, lying fences, torn
// lines — exposing crash states honest-device enumeration can never
// reach.
//
// Every invariant violation is written as a replayable breach artifact
// (seed, op log, crash point, flight-recorder spans) into the shared
// artifact directory ($ARCK_FLIGHT_DIR, default artifacts/); Replay
// re-runs an iteration from the artifact alone.
//
// The baselines (nova, pmfs, kucofs) have no recovery scan, so their
// configs run in soak-only mode: no crash is injected and the live
// namespace is walked after the workload and compared against the
// oracle (the same walk doubles as the oracle self-check on ArckFS).
package crashloop

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"arckfs/internal/baseline/kucofs"
	"arckfs/internal/baseline/nova"
	"arckfs/internal/baseline/pmfs"
	"arckfs/internal/crashmc"
	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/layout"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry/span"
)

// InvLiveMismatch is the soak invariant: after a crash-free run the live
// namespace must equal the oracle's expected namespace exactly. It is
// the only invariant checkable on the baselines (which have no recovery
// path) and doubles as the oracle self-check on ArckFS.
const InvLiveMismatch = "L1-live-namespace"

// Config parameterizes one crash-loop run.
type Config struct {
	// Name labels the config in results and breach artifacts.
	Name string
	// System selects the implementation: "arck" (the ArckFS family,
	// with Bugs selecting the preset — the default) or a baseline
	// ("nova", "pmfs", "kucofs"; soak-only, Bugs and Faults ignored).
	System string
	// Bugs is the injected LibFS bug set (libfs.BugsNone = ArckFS+).
	Bugs libfs.Bugs
	// Faults selects device lie modes; each iteration builds its
	// pmem.FaultPlan from the iteration seed, so a lying run replays
	// exactly like an honest one.
	Faults pmem.FaultMode
	// FaultFilter, when non-nil, restricts drop-flush lies to accepted
	// line offsets (see pmem.FaultPlan.Filter). Tests aim lies with it;
	// it is not serialized into artifacts.
	FaultFilter func(lineOff int64) bool

	// Tenants, when > 1, runs the workload round-robin across that many
	// LibFS instances under the one kernel ("arck" only; baselines have
	// no registration concept). Every tenant switch releases the
	// outgoing tenant's holdings so the incoming one can re-acquire the
	// namespace — a continuous revocation storm — and crashes land in
	// the middle of those ownership transfers, which is the point: the
	// multi-app release/reacquire protocol is exercised at every kill
	// site the single-tenant loop covers.
	Tenants int

	// Iters is the number of iterations (default 40).
	Iters int
	// Seed drives everything (default 1): iteration seeds derive from
	// it, and each iteration is fully determined by its own seed.
	Seed int64
	// OpsPerIter sizes each iteration's generated workload (default 48).
	OpsPerIter int
	// DevSize is the simulated device size (default 4 MiB).
	DevSize int64
	// InodeCap is the formatted inode capacity (default 256).
	InodeCap uint64

	// ArtifactDir overrides the breach-artifact directory ("" resolves
	// via $ARCK_FLIGHT_DIR, default artifacts/).
	ArtifactDir string
	// NoArtifacts suppresses artifact files (tests).
	NoArtifacts bool
	// Log, when non-nil, receives per-breach progress lines.
	Log io.Writer

	// Expect is the config's oracle: the invariants the run is expected
	// to breach, empty meaning expected clean. Unlike crashmc's exact
	// matching, a randomized loop is judged by inclusion: at least one
	// breach, and nothing outside Expect.
	Expect []string
}

func (c *Config) fill() {
	if c.System == "" {
		c.System = "arck"
	}
	if c.Iters == 0 {
		c.Iters = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpsPerIter == 0 {
		c.OpsPerIter = 48
	}
	if c.Tenants == 0 {
		c.Tenants = 1
	}
	if c.DevSize == 0 {
		c.DevSize = 4 << 20
		if c.Tenants > 1 {
			c.DevSize = 8 << 20
		}
	}
	if c.InodeCap == 0 {
		// Every tenant parks a full inode-grant batch; scale the cap so
		// the last tenant's first grant doesn't starve.
		c.InodeCap = 256
		if c.Tenants > 1 {
			c.InodeCap = uint64(256 * c.Tenants)
		}
	}
}

func (c *Config) baseline() bool { return c.System != "arck" }

// CrashPoint pins where an iteration was cut.
type CrashPoint struct {
	// Kind is "fence" (the Nth observed fence), "killpoint" (a named
	// whitebox site's Nth hit), "checkpoint" (after an op completed), or
	// "recovery" (a fence crash whose first repair mount was then killed
	// at the end of recovery pass Ordinal).
	Kind string `json:"kind"`
	// Site is the killpoint site name (killpoint/recovery kinds).
	Site string `json:"site,omitempty"`
	// Ordinal is the fence count, killpoint hit, or recovery pass.
	Ordinal int `json:"ordinal"`
	// OpIndex is the index of the op in flight (or just completed).
	OpIndex int `json:"op_index"`
	// Policy names the line-persistence policy the crash image used:
	// drop-all, one-alone, all-but-one, or random.
	Policy string `json:"policy"`
}

func (cp CrashPoint) String() string {
	s := cp.Kind
	if cp.Site != "" {
		s += ":" + cp.Site
	}
	return fmt.Sprintf("%s#%d op=%d policy=%s", s, cp.Ordinal, cp.OpIndex, cp.Policy)
}

// Breach is one invariant violation, serialized as a replayable
// artifact: ReplayConfig + IterSeed reproduce the iteration (workload,
// fault plan, crash point, crash image) byte-for-byte without the
// original campaign.
type Breach struct {
	Tool       string             `json:"tool"` // "arckcrash"
	Config     string             `json:"config"`
	System     string             `json:"system"`
	Bugs       uint32             `json:"bugs"`
	Faults     string             `json:"faults"`
	Seed       int64              `json:"seed"`
	Iter       int                `json:"iter"`
	IterSeed   int64              `json:"iter_seed"`
	OpsPerIter int                `json:"ops_per_iter"`
	Tenants    int                `json:"tenants,omitempty"`
	DevSize    int64              `json:"dev_size"`
	InodeCap   uint64             `json:"inode_cap"`
	Ops        []crashmc.Op       `json:"ops"` // op log up to the crash
	Crash      CrashPoint         `json:"crash"`
	Invariant  string             `json:"invariant"`
	Detail     string             `json:"detail"`
	Flight     *span.FlightRecord `json:"flight,omitempty"`
	// Artifact is the path the breach was written to (set by Run).
	Artifact string `json:"-"`
}

func (b *Breach) String() string {
	return fmt.Sprintf("%s iter %d (seed %d) %s: %s: %s",
		b.Config, b.Iter, b.IterSeed, b.Crash, b.Invariant, b.Detail)
}

// Result summarizes one crash-loop run.
type Result struct {
	Config   Config
	Iters    int
	Crashes  int // iterations that crashed and recovered
	Images   int // crash images mounted and checked
	Soaks    int // live-namespace verifications (crash-free endings)
	Breaches []*Breach
	Elapsed  time.Duration
}

// OK reports whether the outcome matches the config's Expect oracle:
// empty Expect demands zero breaches; a non-empty Expect demands at
// least one breach and no breach outside the expected set.
func (r *Result) OK() bool {
	if len(r.Config.Expect) == 0 {
		return len(r.Breaches) == 0
	}
	if len(r.Breaches) == 0 {
		return false
	}
	want := map[string]bool{}
	for _, inv := range r.Config.Expect {
		want[inv] = true
	}
	for _, b := range r.Breaches {
		if !want[b.Invariant] {
			return false
		}
	}
	return true
}

// Summary renders a one-line report for CLI output.
func (r *Result) Summary() string {
	status := "clean"
	if n := len(r.Breaches); n > 0 {
		status = fmt.Sprintf("%d breach(es)", n)
	}
	oracle := "as expected"
	if !r.OK() {
		oracle = "ORACLE MISMATCH (expected " + fmt.Sprint(r.Config.Expect) + ")"
	}
	return fmt.Sprintf("%-16s iters=%-4d crashes=%-4d images=%-4d soaks=%-4d %s — %s",
		r.Config.Name, r.Iters, r.Crashes, r.Images, r.Soaks, status, oracle)
}

// Run executes cfg.Iters crash-loop iterations and writes a breach
// artifact for every invariant violation.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	start := time.Now()
	res := &Result{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Iters; i++ {
		iterSeed := rng.Int63()
		ir, err := runIteration(&cfg, i, iterSeed)
		if err != nil {
			return nil, fmt.Errorf("crashloop %s: iter %d (seed %d): %v", cfg.Name, i, iterSeed, err)
		}
		res.Iters++
		if ir.Crashed {
			res.Crashes++
		}
		if ir.Soaked {
			res.Soaks++
		}
		res.Images += ir.Images
		for _, b := range ir.Breaches {
			if !cfg.NoArtifacts {
				name := fmt.Sprintf("arckcrash-%s-seed%d-iter%d-%s", cfg.Name, cfg.Seed, i, b.Invariant)
				path, err := span.WriteArtifact(cfg.ArtifactDir, name, b)
				if err != nil {
					return nil, fmt.Errorf("crashloop %s: writing breach artifact: %v", cfg.Name, err)
				}
				b.Artifact = path
			}
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "BREACH %s\n", b)
				if b.Artifact != "" {
					fmt.Fprintf(cfg.Log, "       artifact: %s\n", b.Artifact)
				}
			}
			res.Breaches = append(res.Breaches, b)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// iterResult is one iteration's outcome.
type iterResult struct {
	Crashed  bool
	Soaked   bool
	Images   int
	OpLog    []crashmc.Op // the full generated workload
	Crash    *CrashPoint  // nil when the iteration never crashed
	Breaches []*Breach
}

// killSentinel unwinds a killed execution back to runIteration.
type killSentinel struct{}

// killSpec is an iteration's seeded crash schedule.
type killSpec struct {
	kind    string // fence | killpoint | checkpoint | recovery
	site    string // killpoint site
	n       int    // fence ordinal / killpoint hit / checkpoint op index
	policy  int    // 0 drop-all, 1 one-alone, 2 all-but-one, 3 random
	recPass int    // recovery kind: pass at which the repair mount dies
}

// iteration carries one run's state.
type iteration struct {
	cfg  *Config
	iter int
	seed int64
	rng  *rand.Rand

	dev    *pmem.Device
	geo    layout.Geometry
	fs     *libfs.FS    // current tenant's LibFS
	th     fsapi.Thread // current tenant's worker
	fss    []*libfs.FS  // all tenants (len 1 unless cfg.Tenants > 1)
	ths    []fsapi.Thread
	cur    int // index of the current tenant in fss/ths
	tracer *span.Tracer
	oracle *crashmc.Oracle
	ops    []crashmc.Op

	opIdx     int
	inflight  *crashmc.Op
	inRelease bool

	kill   killSpec
	fences int

	img           []byte
	crash         *CrashPoint
	crashInflight *crashmc.Op
}

// warmupOps is the fixed pre-tracking script: two directories and one
// long-named file, so every iteration starts with a populated, released
// namespace. Long names span multiple cache lines (DentryRecLen > 64),
// making torn records physically expressible from the first op.
func warmupOps() []crashmc.Op {
	return []crashmc.Op{
		{Kind: crashmc.OpMkdir, Path: "/w0"},
		{Kind: crashmc.OpMkdir, Path: "/w1"},
		{Kind: crashmc.OpCreate, Path: "/wseed" + longName},
	}
}

// runIteration executes one fully seeded iteration. It is the replay
// unit: (cfg, iterSeed) determine the workload, fault plan, crash
// point, and crash image completely.
func runIteration(cfg *Config, iter int, iterSeed int64) (*iterResult, error) {
	if cfg.baseline() {
		return runSoakIteration(cfg, iter, iterSeed)
	}
	it := &iteration{cfg: cfg, iter: iter, seed: iterSeed,
		rng: rand.New(rand.NewSource(iterSeed))}
	res := &iterResult{}

	dev := pmem.New(cfg.DevSize, nil)
	ctrl, err := kernel.Format(dev, kernel.Options{InodeCap: cfg.InodeCap})
	if err != nil {
		return nil, err
	}
	it.dev = dev
	it.geo = ctrl.Geometry()
	// Trace every op: a breach ships with the run's span history.
	it.tracer = span.New(span.DefaultRingCap, 1)
	it.tracer.SetEnabled(true)
	for k := 0; k < cfg.Tenants; k++ {
		fs := libfs.New(ctrl, ctrl.RegisterApp(0, 0), libfs.Options{
			Bugs:           cfg.Bugs,
			GrantInoBatch:  32,
			GrantPageBatch: 32,
			DirBuckets:     8,
		})
		fs.SetObservability(it.tracer, nil)
		it.fss = append(it.fss, fs)
		it.ths = append(it.ths, fs.NewThread(0))
	}
	it.fs, it.th = it.fss[0], it.ths[0]

	warm := warmupOps()
	for i, op := range warm {
		if err := it.runOp(op); err != nil {
			return nil, fmt.Errorf("warmup op %d (%s): %v", i, op, err)
		}
	}
	if err := it.fs.ReleaseAll(); err != nil {
		return nil, fmt.Errorf("warmup release: %v", err)
	}
	it.oracle = crashmc.NewOracle(warm)

	// Generate the workload against a mirror oracle; generation draws
	// from the iteration rng before execution starts, so the op log is a
	// pure function of the seed.
	it.ops = genOps(it.rng, crashmc.NewOracle(warm), cfg.OpsPerIter)
	res.OpLog = it.ops
	it.kill = it.pickKill()

	// Lies, when configured, start with tracking: the fault plan is
	// seeded by the iteration, so the lying execution replays too.
	if cfg.Faults != pmem.FaultsNone {
		plan := pmem.NewFaultPlan(cfg.Faults, iterSeed)
		plan.Filter = cfg.FaultFilter
		dev.SetFaultPlan(plan)
	}
	dev.EnableTracking()
	dev.SetFenceObserver(func() {
		if it.inRelease || it.crash != nil {
			// Fences inside the kernel release protocol are not LibFS
			// persist points (the kernel-trusted regions persist fully in
			// every materialized image); mirror crashmc and skip them.
			return
		}
		it.fences++
		if (it.kill.kind == "fence" || it.kill.kind == "recovery") && it.fences == it.kill.n {
			it.capture(it.kill.kind, "", it.fences)
			panic(killSentinel{})
		}
	})
	if it.kill.kind == "killpoint" {
		pmem.ArmKillpoint(it.kill.site, it.kill.n, func(site string) {
			if it.crash != nil {
				return
			}
			it.capture("killpoint", site, it.kill.n)
			panic(killSentinel{})
		})
		defer pmem.DisarmKillpoint()
	}

	if err := it.runWorkload(); err != nil {
		return nil, err
	}
	pmem.DisarmKillpoint()
	dev.SetFenceObserver(nil)

	if it.crash == nil {
		// The chosen kill never fired (fence ordinal past the run,
		// killpoint site not reached). Soak-verify the live namespace,
		// then still exercise recovery with an end-of-run checkpoint
		// crash so every iteration covers the mount path.
		if b := it.soakCheck(); b != nil {
			res.Breaches = append(res.Breaches, b)
		}
		res.Soaked = true
		it.opIdx = len(it.ops) - 1
		it.capture("checkpoint", "", 0)
	}
	res.Crashed = true
	res.Crash = it.crash
	it.verifyCrash(res)
	return res, nil
}

// pickKill draws the iteration's crash schedule.
func (it *iteration) pickKill() killSpec {
	k := killSpec{policy: it.rng.Intn(4)}
	sites := []string{"libfs.create.marker", "pmem.batch.barrier", "pmem.batch.drain"}
	switch roll := it.rng.Intn(100); {
	case roll < 40:
		k.kind = "fence"
		k.n = 1 + it.rng.Intn(4*it.cfg.OpsPerIter)
	case roll < 70:
		k.kind = "killpoint"
		k.site = sites[it.rng.Intn(len(sites))]
		k.n = 1 + it.rng.Intn(24)
	case roll < 90:
		k.kind = "checkpoint"
		k.n = it.rng.Intn(len(it.ops))
	default:
		// Crash at a fence, then kill the first repair mount at the end
		// of a recovery pass — the crash-during-recovery double fault.
		k.kind = "recovery"
		k.n = 1 + it.rng.Intn(2*it.cfg.OpsPerIter)
		k.recPass = 1 + it.rng.Intn(6)
	}
	return k
}

// switchTenant hands the namespace from the current tenant to tenant
// k: the outgoing tenant voluntarily releases everything it holds
// (exclusive ownership means the incoming tenant's next path walk
// re-acquires — and re-verifies — each component). The release's
// kernel-protocol fences are skipped like OpRelease's are, but whitebox
// killpoints still fire, so crashes land mid-transfer.
func (it *iteration) switchTenant(k int) error {
	if k == it.cur {
		return nil
	}
	it.inRelease = true
	err := it.fs.ReleaseAll()
	it.inRelease = false
	if err != nil {
		return err
	}
	it.cur = k
	it.fs, it.th = it.fss[k], it.ths[k]
	return nil
}

// runOp applies one op, checking the outcome against WantErr.
func (it *iteration) runOp(op crashmc.Op) error {
	var release func() error
	if it.fs != nil {
		release = it.fs.ReleaseAll
	}
	err := op.Apply(it.th, release)
	if op.WantErr {
		if err == nil {
			return fmt.Errorf("op %s: expected an error, got none", op)
		}
		return nil
	}
	return err
}

// runWorkload executes the generated ops, recovering the kill sentinel.
func (it *iteration) runWorkload() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok && it.crash != nil {
				err = nil
				return
			}
			panic(r)
		}
	}()
	for i := range it.ops {
		op := it.ops[i]
		it.opIdx = i
		if e := it.switchTenant(i % len(it.fss)); e != nil {
			return fmt.Errorf("op %d handoff: %v", i, e)
		}
		it.inflight = &op
		it.inRelease = op.Kind == crashmc.OpRelease
		if e := it.runOp(op); e != nil {
			return fmt.Errorf("op %d (%s): %v", i, op, e)
		}
		it.inRelease = false
		it.inflight = nil
		if !op.WantErr {
			it.oracle.Apply(op)
		}
		if it.kill.kind == "checkpoint" && i == it.kill.n {
			it.capture("checkpoint", "", 0)
			return nil
		}
	}
	return nil
}

// hardened reports whether a line lies in a kernel-trusted region (the
// superblock or the shadow inode table) that every materialized image
// persists fully — and that device lies therefore cannot touch. Shadow
// records span two lines under one trailing kernel fence; tearing them
// fails recovery by construction and says nothing about LibFS ordering,
// the property under test.
func (it *iteration) hardened(off int64) bool {
	if off < layout.PageSize {
		return true
	}
	s := int64(it.geo.ShadowStart) * layout.PageSize
	e := s + int64(it.geo.ShadowPages)*layout.PageSize
	return off >= s && off < e
}

// capture materializes the crash image under the iteration's policy and
// records the crash point. Runs synchronously at the kill site, before
// the sentinel unwinds.
func (it *iteration) capture(kind, site string, ordinal int) {
	var soft []pmem.LineState
	for _, s := range it.dev.DirtyLineStates() {
		if !it.hardened(s.Off) {
			soft = append(soft, s)
		}
	}
	name, policy := it.pickPolicy(soft)
	it.img = it.dev.CrashImage(policy)
	it.crash = &CrashPoint{Kind: kind, Site: site, Ordinal: ordinal, OpIndex: it.opIdx, Policy: name}
	it.crashInflight = it.inflight
}

// pickPolicy builds the iteration's line-persistence policy over the
// soft (non-hardened) dirty lines. Hardened lines always persist fully.
func (it *iteration) pickPolicy(soft []pmem.LineState) (string, pmem.CrashPolicy) {
	keep := make(map[int64]int, len(soft))
	var name string
	switch it.kill.policy {
	case 0:
		name = "drop-all"
	case 1:
		name = "one-alone"
		if len(soft) > 0 {
			s := soft[it.rng.Intn(len(soft))]
			keep[s.Off] = s.Versions
		}
	case 2:
		name = "all-but-one"
		drop := -1
		if len(soft) > 0 {
			drop = it.rng.Intn(len(soft))
		}
		for i, s := range soft {
			if i != drop {
				keep[s.Off] = s.Versions
			}
		}
	default:
		name = "random"
		for _, s := range soft {
			keep[s.Off] = it.rng.Intn(s.Versions + 1)
		}
	}
	return name, func(off int64, versions int) int {
		if it.hardened(off) {
			return versions
		}
		return keep[off]
	}
}

// verifyCrash recovers the captured image and checks the invariants,
// recording one breach per violated invariant.
func (it *iteration) verifyCrash(res *iterResult) {
	img := it.img
	if it.kill.kind == "recovery" {
		img = it.interruptRecovery(img)
	}
	expect := it.oracle.ExpectPresent(it.crashInflight)
	res.Images++
	seen := map[string]bool{}
	for _, v := range crashmc.CheckImage(img, expect) {
		if seen[v.Invariant] {
			continue
		}
		seen[v.Invariant] = true
		res.Breaches = append(res.Breaches, it.breach(v.Invariant, v.Detail))
	}
}

// interruptRecovery restores the crash image, kills the repair mount at
// the end of the scheduled recovery pass, and returns the crash image
// of the half-repaired device — the input for the second (checked)
// recovery. Recovery-pass kills force RecoverWorkers=1 so the armed
// panic unwinds the mounting goroutine, never a parallel worker.
func (it *iteration) interruptRecovery(img []byte) []byte {
	rdev := pmem.Restore(img, nil)
	rdev.EnableTracking()
	var img2 []byte
	pmem.ArmKillpoint("kernel.recover.pass", it.kill.recPass, func(string) {
		img2 = rdev.CrashImage(func(off int64, versions int) int {
			if it.hardened(off) {
				return versions
			}
			return it.rng.Intn(versions + 1)
		})
		panic(killSentinel{})
	})
	defer pmem.DisarmKillpoint()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					panic(r)
				}
			}
		}()
		_, _, _ = kernel.Mount(rdev, kernel.Options{RecoverWorkers: 1}, true)
	}()
	if img2 == nil {
		// The mount failed before the scheduled pass ended; check the
		// original image (an unrecoverable image is an I1 breach there).
		return img
	}
	it.crash.Site = "kernel.recover.pass"
	it.crash.Ordinal = it.kill.recPass
	return img2
}

// soakCheck walks the live namespace and compares it to the oracle —
// the crash-free verification (and the ArckFS oracle self-check).
func (it *iteration) soakCheck() *Breach {
	got, err := walkLive(it.th)
	if err != nil {
		return it.breach(InvLiveMismatch, fmt.Sprintf("namespace walk failed: %v", err))
	}
	if d := diffNamespaces(it.oracle.Live(), got); d != "" {
		return it.breach(InvLiveMismatch, d)
	}
	return nil
}

// breach assembles a replayable artifact for one violation.
func (it *iteration) breach(invariant, detail string) *Breach {
	n := len(it.ops)
	cp := CrashPoint{Kind: "soak", OpIndex: n - 1}
	if it.crash != nil {
		cp = *it.crash
		if m := cp.OpIndex + 1; m < n {
			n = m
		}
	}
	var flight *span.FlightRecord
	if it.tracer != nil {
		flight = it.tracer.Flight("arckcrash:"+invariant, detail)
		// The span of the op in flight at the kill is still open (capture
		// runs synchronously inside it); append it by hand.
		if t, ok := it.th.(*libfs.Thread); ok {
			if sp := t.CurrentSpan(); sp != nil {
				flight.Spans = append(flight.Spans, sp)
			}
		}
	}
	return &Breach{
		Tool:       "arckcrash",
		Config:     it.cfg.Name,
		System:     it.cfg.System,
		Bugs:       uint32(it.cfg.Bugs),
		Faults:     it.cfg.Faults.String(),
		Seed:       it.cfg.Seed,
		Iter:       it.iter,
		IterSeed:   it.seed,
		OpsPerIter: it.cfg.OpsPerIter,
		Tenants:    it.cfg.Tenants,
		DevSize:    it.cfg.DevSize,
		InodeCap:   it.cfg.InodeCap,
		Ops:        append([]crashmc.Op(nil), it.ops[:n]...),
		Crash:      cp,
		Invariant:  invariant,
		Detail:     detail,
	}
}

// runSoakIteration drives a baseline (no recovery scan, no crash): run
// the workload, then verify the live namespace against the oracle.
func runSoakIteration(cfg *Config, iter int, iterSeed int64) (*iterResult, error) {
	it := &iteration{cfg: cfg, iter: iter, seed: iterSeed,
		rng: rand.New(rand.NewSource(iterSeed))}
	res := &iterResult{}

	var bfs fsapi.FS
	var err error
	switch cfg.System {
	case "nova":
		bfs, err = nova.New(cfg.DevSize, nil)
	case "pmfs":
		bfs, err = pmfs.New(cfg.DevSize, nil)
	case "kucofs":
		bfs, err = kucofs.New(cfg.DevSize, nil)
	default:
		err = fmt.Errorf("crashloop: unknown system %q", cfg.System)
	}
	if err != nil {
		return nil, err
	}
	it.th = bfs.NewThread(0)

	warm := warmupOps()
	for i, op := range warm {
		if err := it.runOp(op); err != nil {
			return nil, fmt.Errorf("warmup op %d (%s): %v", i, op, err)
		}
	}
	it.oracle = crashmc.NewOracle(warm)
	it.ops = genOps(it.rng, crashmc.NewOracle(warm), cfg.OpsPerIter)
	res.OpLog = it.ops
	for i := range it.ops {
		op := it.ops[i]
		it.opIdx = i
		if e := it.runOp(op); e != nil {
			return nil, fmt.Errorf("op %d (%s): %v", i, op, e)
		}
		if !op.WantErr {
			it.oracle.Apply(op)
		}
	}
	if b := it.soakCheck(); b != nil {
		res.Breaches = append(res.Breaches, b)
	}
	res.Soaked = true
	return res, nil
}
