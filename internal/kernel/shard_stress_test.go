// Stress tests for the sharded kernel control plane, written from
// outside the package (package kernel_test) so they can drive the
// Controller through real LibFS instances: many applications hammering
// Acquire/Commit/Release/grant paths across shards concurrently, plus a
// pin that parallel recovery produces state identical to a serial scan.
package kernel_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"arckfs/internal/core"
	"arckfs/internal/fsapi"
	"arckfs/internal/kernel"
	"arckfs/internal/libfs"
	"arckfs/internal/pmem"
)

// TestShardStressDisjointGrants spins many applications grabbing inode
// and page grants concurrently and asserts no value is ever handed out
// twice — the invariant the striped grant paths must preserve without
// the old global lock.
func TestShardStressDisjointGrants(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const apps, rounds, batch = 8, 40, 16
	inos := make([][]uint64, apps)
	pages := make([][]uint64, apps)
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		id := sys.Ctrl.RegisterApp(0, 0)
		wg.Add(1)
		go func(a int, id kernel.AppID) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				in, err := sys.Ctrl.GrantInodes(id, batch)
				if err != nil {
					t.Errorf("app %d GrantInodes: %v", a, err)
					return
				}
				inos[a] = append(inos[a], in...)
				pg, err := sys.Ctrl.GrantPages(id, a, batch)
				if err != nil {
					t.Errorf("app %d GrantPages: %v", a, err)
					return
				}
				pages[a] = append(pages[a], pg...)
			}
		}(a, id)
	}
	wg.Wait()
	for name, got := range map[string][][]uint64{"inode": inos, "page": pages} {
		seen := map[uint64]int{}
		for a, vals := range got {
			for _, v := range vals {
				if prev, dup := seen[v]; dup {
					t.Fatalf("%s %d granted to both app %d and app %d", name, v, prev, a)
				}
				seen[v] = a
			}
		}
		if len(seen) != apps*rounds*batch {
			t.Fatalf("%s grants: got %d unique values, want %d", name, len(seen), apps*rounds*batch)
		}
	}
}

// TestShardStressMultiApp runs several applications concurrently through
// the full ownership protocol — create, write, commit, leased release,
// lease-hit re-acquire, rename — in private subtrees, while extra
// kernel-level applications fight over one shared file (tolerating
// ErrBusy). Afterwards everything is released and the image must fsck
// clean: the final persistent state is verifier-consistent no matter how
// the shard fast paths interleaved. CI runs this under -race.
func TestShardStressMultiApp(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const nApps = 6
	iters := 40
	if testing.Short() {
		iters = 10
	}

	// Sequential setup: each app builds and releases its subtree so the
	// next one can walk the root.
	apps := make([]*libfs.FS, nApps)
	for i := range apps {
		apps[i] = sys.NewApp(0, 0)
		th := apps[i].NewThread(i)
		if err := th.Mkdir(fmt.Sprintf("/app%d", i)); err != nil {
			t.Fatalf("mkdir app%d: %v", i, err)
		}
		if i == 0 {
			if err := th.Create("/shared"); err != nil {
				t.Fatal(err)
			}
		}
		if err := apps[i].ReleaseAll(); err != nil {
			t.Fatalf("setup release app%d: %v", i, err)
		}
	}
	shared, err := apps[0].NewThread(0).(*libfs.Thread).Stat("/shared")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < nApps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := apps[i]
			th := fs.NewThread(i).(*libfs.Thread)
			dir := fmt.Sprintf("/app%d", i)
			blob := make([]byte, 4096)
			fail := func(op string, err error) bool {
				if err != nil {
					t.Errorf("app %d %s: %v", i, op, err)
					return true
				}
				return false
			}
			for it := 0; it < iters; it++ {
				name := fmt.Sprintf("%s/f%d", dir, it%8)
				if err := th.Create(name); err != nil && err != fsapi.ErrExist {
					fail("create", err)
					return
				}
				fd, err := th.Open(name)
				if fail("open", err) {
					return
				}
				if _, err := th.WriteAt(fd, blob, 0); fail("write", err) {
					return
				}
				th.Close(fd)
				// Commit (fresh ancestors included) so the release below
				// is Rule-1 legal even on the file's first round.
				if err := fs.CommitInode(th, name); fail("commit", err) {
					return
				}
				st, err := th.Stat(name)
				if fail("stat", err) {
					return
				}
				if err := fs.ReleaseInode(st.Ino); fail("release", err) {
					return
				}
				// Reopen and overwrite: with leases this re-acquire is the
				// dormant-mapping CAS; either way it must succeed.
				fd, err = th.Open(name)
				if fail("reopen", err) {
					return
				}
				if _, err := th.WriteAt(fd, blob, 0); fail("rewrite", err) {
					return
				}
				th.Close(fd)
				if it%4 == 3 {
					tmp := fmt.Sprintf("%s/g%d", dir, it%8)
					if err := th.Rename(name, tmp); fail("rename", err) {
						return
					}
					if err := th.Rename(tmp, name); fail("rename back", err) {
						return
					}
				}
			}
		}(i)
	}
	// Kernel-level contenders on the shared file: raw Acquire/Release
	// ping-pong across apps, racing the LibFS traffic on other shards.
	const contenders = 4
	for c := 0; c < contenders; c++ {
		id := sys.Ctrl.RegisterApp(0, 0)
		wg.Add(1)
		go func(c int, id kernel.AppID) {
			defer wg.Done()
			for it := 0; it < iters*2; it++ {
				_, err := sys.Ctrl.Acquire(id, shared.Ino, true)
				if err == fsapi.ErrBusy {
					continue // a peer holds it; expected under contention
				}
				if err != nil {
					t.Errorf("contender %d acquire: %v", c, err)
					return
				}
				if err := sys.Ctrl.Release(id, shared.Ino); err != nil {
					t.Errorf("contender %d release: %v", c, err)
					return
				}
			}
		}(c, id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i, fs := range apps {
		if err := fs.ReleaseAll(); err != nil {
			t.Fatalf("final release app%d: %v", i, err)
		}
	}
	img := make([]byte, sys.Dev.Size())
	sys.Dev.Read(0, img)
	rep, err := kernel.Fsck(pmem.Restore(img, nil), kernel.Options{})
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("final image not verifier-consistent: %v", rep)
	}
}

// TestRecoveryParallelMatchesSerial pins the parallel-recovery
// determinism contract: mounting the same image with a single worker and
// with eight workers must produce identical reports, identical shadow
// tables, and identical free-page pools — on a clean image and on a
// crash image that needs real repair (uncommitted creations to drop,
// leaked pages to reclaim).
func TestRecoveryParallelMatchesSerial(t *testing.T) {
	sys, err := core.NewSystem(core.Config{DevSize: 64 << 20, InodeCap: 1 << 10, Tracking: true})
	if err != nil {
		t.Fatal(err)
	}
	fs := sys.NewApp(0, 0)
	th := fs.NewThread(0).(*libfs.Thread)
	blob := make([]byte, 8192)
	for d := 0; d < 4; d++ {
		dir := fmt.Sprintf("/d%d/sub", d)
		for _, p := range []string{fmt.Sprintf("/d%d", d), dir} {
			if err := th.Mkdir(p); err != nil {
				t.Fatal(err)
			}
		}
		for f := 0; f < 6; f++ {
			p := fmt.Sprintf("%s/f%d", dir, f)
			if err := th.Create(p); err != nil {
				t.Fatal(err)
			}
			fd, err := th.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := th.WriteAt(fd, blob, 0); err != nil {
				t.Fatal(err)
			}
			th.Close(fd)
		}
	}
	if err := fs.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	clean := make([]byte, sys.Dev.Size())
	sys.Dev.Read(0, clean)

	// Dirty the tree without committing: these creations and writes are
	// unknown to the kernel, so recovery has dangling entries to drop and
	// pages to sweep back.
	for f := 0; f < 8; f++ {
		p := fmt.Sprintf("/d0/sub/lost%d", f)
		if err := th.Create(p); err != nil {
			t.Fatal(err)
		}
		fd, err := th.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := th.WriteAt(fd, blob, 0); err != nil {
			t.Fatal(err)
		}
		th.Close(fd)
	}
	crash := sys.Dev.CrashImage(pmem.CrashPersistAll)

	for name, img := range map[string][]byte{"clean": clean, "crash": crash} {
		mount := func(workers int) (*kernel.Controller, *kernel.Report) {
			dev := pmem.Restore(append([]byte(nil), img...), nil)
			c, rep, err := kernel.Mount(dev, kernel.Options{RecoverWorkers: workers}, true)
			if err != nil {
				t.Fatalf("%s mount workers=%d: %v", name, workers, err)
			}
			return c, rep
		}
		c1, r1 := mount(1)
		c8, r8 := mount(8)
		if *r1 != *r8 {
			t.Fatalf("%s: serial report %v != parallel report %v", name, r1, r8)
		}
		if f1, f8 := c1.FreeCount(), c8.FreeCount(); f1 != f8 {
			t.Fatalf("%s: free pool diverged: serial %d, parallel %d", name, f1, f8)
		}
		for ino := uint64(0); ino < 1<<10; ino++ {
			s1, ok1 := c1.ShadowOf(ino)
			s8, ok8 := c8.ShadowOf(ino)
			if ok1 != ok8 || !reflect.DeepEqual(s1, s8) {
				t.Fatalf("%s: shadow of inode %d diverged: serial (%v,%v) parallel (%v,%v)",
					name, ino, s1, ok1, s8, ok8)
			}
		}
	}
}
