// Package kernel implements Trio's in-kernel access controller: it owns
// the shadow inode table, checks permissions, maps and unmaps inode core
// state into LibFSes, snapshots state at acquire for rollback, invokes
// the integrity verifier at ownership transfers, grants inode numbers and
// pages to applications, arbitrates the global rename lease (§4.6), and
// implements trust groups (§5.4).
//
// Every public entry point models a system call and charges the
// configured syscall cost. The kernel itself is trusted and always
// persists its own writes correctly; only LibFS behaviour is under test.
//
// The control plane is sharded (see shard.go): single-inode crossings
// run under a shared epoch plus a per-shard spinlock, multi-inode
// crossings drain the epoch exclusively. Options.Serialize restores the
// old single-global-lock behaviour for A/B comparison.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arckfs/internal/costmodel"
	"arckfs/internal/fsapi"
	"arckfs/internal/hlock"
	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
	"arckfs/internal/verifier"
)

// AppID identifies a registered application (a LibFS instance).
type AppID = int64

// Policy selects what the kernel does with an inode that fails
// verification (§2.1 step 8).
type Policy int

const (
	// PolicyRollback restores the inode's core state to the snapshot
	// taken when the releasing application acquired it.
	PolicyRollback Policy = iota
	// PolicyMarkInaccessible leaves the corrupt state in place but
	// refuses all future acquires of the inode.
	PolicyMarkInaccessible
)

// Options configures a controller.
type Options struct {
	// Mode selects the Original (Trio artifact) or Enhanced (ArckFS+)
	// verifier.
	Mode verifier.Mode
	// Policy is the corruption policy.
	Policy Policy
	// Cost is the latency model (nil = free).
	Cost *costmodel.Model
	// InodeCap is the inode table capacity (Format only).
	InodeCap uint64
	// NTails is the directory log tail count (Format only).
	NTails int
	// LeaseTTL bounds how long an application may hold an inode another
	// application is waiting for; 0 means a generous default.
	LeaseTTL time.Duration
	// RenameLeaseTTL bounds the global rename lock lease.
	RenameLeaseTTL time.Duration
	// TraceCap sizes the kernel-crossing trace ring (0 = 1024 events).
	TraceCap int
	// Serialize pins every crossing to the exclusive epoch, restoring
	// the pre-sharding single-global-lock kernel (the baseline side of
	// the control-plane scaling experiment).
	Serialize bool
	// FlatEpoch degrades the big-reader epoch lock to a single shared
	// reader counter (every reader on one cache line, no writer
	// priority) — the pre-tenancy epoch behaviour, kept as the A/B
	// baseline for the tenant-scaling experiment.
	FlatEpoch bool
	// ShadowShards sets the initial shadow-table shard count (rounded up
	// to a power of two; 0 = 16). The controller grows the shard count
	// with the registered-app count regardless, so this only matters for
	// callers that want the final size up front.
	ShadowShards int
	// MaxInflight caps concurrently admitted kernel crossings; excess
	// crossings queue in the fair-share admission scheduler (see
	// admission.go). 0 disables admission entirely: the only residual
	// cost is one nil check per crossing.
	MaxInflight int
	// SerialAdmission replaces the weighted deficit round-robin handoff
	// with a single global FIFO queue — the naive admission baseline for
	// the tenant-scaling A/B (arckbench -serial-admission).
	SerialAdmission bool
	// RecoverWorkers bounds the recovery worker pool (Mount/Fsck).
	// 0 = min(GOMAXPROCS, 8); 1 = serial.
	RecoverWorkers int
	// NUMANodes groups the page allocator's stripes into this many NUMA
	// node groups: refill and free stay node-local, and cross-node
	// stealing (which pays the modeled interconnect cost) happens only
	// when the local group is dry. 0 = 2 groups, the paper testbed's
	// dual-socket shape; 1 = a single group (no NUMA modeling).
	NUMANodes int
	// AppDim, when set, receives per-application crossing counts: every
	// syscall is charged to the calling app's row, so involuntary work
	// (lease reclaims triggered by a competitor) is attributed too.
	AppDim *telemetry.AppDim
	// Span, when set, receives SpanEvRecoveryPass events while Mount
	// runs recovery, one per pass with its duration.
	Span telemetry.SpanSink
}

func (o *Options) fill() {
	if o.InodeCap == 0 {
		o.InodeCap = 1 << 16
	}
	if o.NTails == 0 {
		o.NTails = layout.DefaultTails
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.RenameLeaseTTL == 0 {
		o.RenameLeaseTTL = time.Second
	}
	if o.TraceCap == 0 {
		o.TraceCap = 1024
	}
	if o.NUMANodes == 0 {
		o.NUMANodes = 2
	}
}

// Stats counts kernel events. The fields are atomic so telemetry gauges
// can read them while operations are in flight; use Snapshot for a
// consistent copy.
type Stats struct {
	Syscalls       atomic.Int64 // every modeled kernel crossing
	Acquires       atomic.Int64
	Releases       atomic.Int64
	LeasedReleases atomic.Int64 // releases that left the mapping dormant
	Commits        atomic.Int64
	Verifications  atomic.Int64
	VerifyFailures atomic.Int64
	Rollbacks      atomic.Int64
	Involuntary    atomic.Int64
	TrustTransfers atomic.Int64
	EpochExclusive atomic.Int64 // crossings that drained the shared epoch
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	Syscalls       int64
	Acquires       int64
	Releases       int64
	LeasedReleases int64
	Commits        int64
	Verifications  int64
	VerifyFailures int64
	Rollbacks      int64
	Involuntary    int64
	TrustTransfers int64
	EpochExclusive int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Syscalls:       s.Syscalls.Load(),
		Acquires:       s.Acquires.Load(),
		Releases:       s.Releases.Load(),
		LeasedReleases: s.LeasedReleases.Load(),
		Commits:        s.Commits.Load(),
		Verifications:  s.Verifications.Load(),
		VerifyFailures: s.VerifyFailures.Load(),
		Rollbacks:      s.Rollbacks.Load(),
		Involuntary:    s.Involuntary.Load(),
		TrustTransfers: s.TrustTransfers.Load(),
		EpochExclusive: s.EpochExclusive.Load(),
	}
}

// page ownership encoding.
type pageOwner uint64

const (
	ownFree    = pageOwner(0)
	ownKindApp = pageOwner(1) << 62
	ownKindIno = pageOwner(2) << 62
	ownIDMask  = pageOwner(1)<<62 - 1
)

func ownApp(app AppID) pageOwner { return ownKindApp | pageOwner(app) }
func ownIno(ino uint64) pageOwner {
	return ownKindIno | pageOwner(ino)
}

// aclKey identifies a per-application permission override.
type aclKey struct {
	ino uint64
	app AppID
}

// shadowEnt is the kernel's in-memory authoritative record for one inode;
// it is mirrored to the PM shadow table on every verified change. Except
// at mount time, it is accessed with its shard lock or the exclusive
// epoch held.
type shadowEnt struct {
	info verifier.ShadowInfo
	// mirrored full inode for shadow-table writes
	inode layout.Inode

	owner   AppID // 0 = kernel-held
	mapping *Mapping
	// groupMappings are concurrently valid mappings held by trust-group
	// peers (§5.4): within a group the kernel does not tear mappings
	// down on transfer, so no remap or rebuild is needed.
	groupMappings []*Mapping
	snap          *snapshot
	lease         time.Time

	inaccessible bool
}

type snapshot struct {
	dirOld  *verifier.DirOld
	fileOld *verifier.FileOld
	// pageData holds raw copies of the metadata pages (tail-set and log
	// pages for directories, map pages for files) for rollback.
	pageData map[uint64][]byte
	inodeRec []byte
}

type app struct {
	id       AppID
	uid, gid uint32
	// group is the trust group (0 = none); atomic because acquire fast
	// paths read it without holding appsMu.
	group       atomic.Int32
	grantedInos map[uint64]bool

	// Quota state (quota.go). Limits are atomic so SetQuota can raise or
	// lower them while crossings are in flight; 0 means unlimited.
	maxPages  atomic.Int64
	maxInodes atomic.Int64
	crossRate atomic.Int64 // crossings per second
	weight    atomic.Int64 // admission fair-share weight (0 = 1)
	// pagesOut counts outstanding granted pages: charged at GrantPages,
	// uncharged when a page is adopted by a committed inode, returned, or
	// reclaimed at unregister. It also lets UnregisterApp skip the
	// device-wide page-owner scan for tenants that never held a page.
	pagesOut atomic.Int64
	// rateTAT is the GCRA theoretical-arrival-time (ns) for the
	// crossings/sec throttle.
	rateTAT atomic.Int64
}

// Mapping is a LibFS's handle on an inode's mapped core state. The
// kernel revokes it on release or involuntary reclaim; any LibFS access
// through a revoked mapping is the simulated SIGBUS of §4.3.
type Mapping struct {
	ino uint64
	app AppID
	// ok is atomic rather than lock-protected: Valid sits on the
	// lock-free read path (readAt -> checkMapped), where a spinlock —
	// even uncontended — would put a blocking acquisition inside every
	// RCU-pinned section and stall writers' grace periods for nothing.
	// Revocation needs no stronger ordering than the Store/Load pair:
	// a reader that loads true just before revoke flips it is the same
	// reader that raced the revocation under the old lock.
	ok atomic.Bool
	// dormant marks a mapping whose holder voluntarily released the
	// inode under a grant lease (ReleaseLeased): the kernel keeps the
	// mapping established but may reclaim it at any time. The flag is
	// the handoff point — whichever side wins the CAS (the LibFS
	// re-activating, or the kernel reclaiming for another app) owns the
	// mapping's fate.
	dormant atomic.Bool
}

// Ino returns the mapped inode number.
func (m *Mapping) Ino() uint64 { return m.ino }

// Valid reports whether the mapping is still established.
func (m *Mapping) Valid() bool {
	return m.ok.Load()
}

// newMapping returns an established mapping for app on ino.
func newMapping(ino uint64, app AppID) *Mapping {
	m := &Mapping{ino: ino, app: app}
	m.ok.Store(true)
	return m
}

// Reactivate attempts to take a dormant mapping back into active use
// without a kernel crossing — the LibFS side of the grant-lease handoff.
// It returns false if the mapping was not dormant or the kernel revoked
// it first (the caller must fall back to a real Acquire).
func (m *Mapping) Reactivate() bool {
	if m == nil || !m.dormant.CompareAndSwap(true, false) {
		return false
	}
	// Won the CAS: the kernel will no longer reclaim this mapping, but
	// it may already have been revoked (ForceRelease, deletion by a
	// trust-group peer) before we got here.
	return m.Valid()
}

func (m *Mapping) revoke() {
	m.ok.Store(false)
}

type clockFn func() time.Time

// Controller is the in-kernel access controller.
type Controller struct {
	dev  *pmem.Device
	geo  layout.Geometry
	cost *costmodel.Model
	opts Options

	alloc *pmalloc.Allocator
	ver   *verifier.V

	// epoch is the big-reader lock over the sharded state: shared for
	// single-inode crossings, exclusive for multi-inode ones (shard.go).
	epoch hlock.BRLock
	// shadow is the current shadow-shard generation; it grows with the
	// registered-app count (maybeGrowShards) and is swapped only under
	// the exclusive epoch.
	shadow            atomic.Pointer[shadowGen]
	shadowRetiredAcq  atomic.Int64
	shadowRetiredCont atomic.Int64
	pages             []pageOwner
	pageStripe        [nPageStripes]pageStripe
	aclTab            [nACLShards]aclShard

	// adm is the fair-share crossing admission scheduler (admission.go);
	// nil when Options.MaxInflight is 0.
	adm *admission
	// quotaRates indexes apps with a crossings/sec quota so the syscall
	// hot path stays lock-free: one atomic check when no rate quota
	// exists anywhere, one sync.Map load otherwise.
	quotaRates sync.Map // AppID -> *app
	rateActive atomic.Int32
	// throttled counts crossings delayed by a crossings/sec quota.
	throttled atomic.Int64

	// appsMu guards the app table, grantedInos sets, the inode free
	// list, and the id counters.
	appsMu           hlock.SpinLock
	appsAcquisitions atomic.Int64
	appsContended    atomic.Int64
	apps             map[AppID]*app
	nextApp          AppID
	inoFree          []uint64
	nextGroup        int

	renameLock hlock.LeaseLock

	// clock is a swappable test hook for lease expiry, read without the
	// epoch held.
	clock atomic.Pointer[clockFn]

	// trace records kernel crossings and verifier runs; bounded, always
	// on (the per-event cost is one atomic increment and one store).
	trace *telemetry.Ring

	Stats Stats
}

// Format writes a fresh file system and returns its controller.
func Format(dev *pmem.Device, opts Options) (*Controller, error) {
	opts.fill()
	g, err := layout.Mkfs(dev, opts.InodeCap, opts.NTails)
	if err != nil {
		return nil, err
	}
	c := newController(dev, g, opts)

	// Root shadow.
	rootIn, _, _ := layout.ReadInode(dev, g, layout.RootIno)
	c.shardOf(layout.RootIno).m[layout.RootIno] = &shadowEnt{
		info:  shadowInfoOf(layout.RootIno, &rootIn, 0, true),
		inode: rootIn,
	}
	// Page ownership: everything below DataStart is reserved; the root
	// tail-set belongs to the root inode and is excluded from the free
	// pool.
	c.alloc = pmalloc.NewExcluding(g, rootIn.DataRoot)
	c.alloc.ConfigureNUMA(opts.NUMANodes, c.cost)
	c.pages[rootIn.DataRoot] = ownIno(layout.RootIno)
	// Inode free list (descending so grants ascend).
	for ino := g.InodeCap - 1; ino >= 2; ino-- {
		c.inoFree = append(c.inoFree, ino)
	}
	return c, nil
}

func newController(dev *pmem.Device, g layout.Geometry, opts Options) *Controller {
	c := &Controller{
		dev:   dev,
		geo:   g,
		cost:  opts.Cost,
		opts:  opts,
		pages: make([]pageOwner, g.PageCount),
		apps:  make(map[AppID]*app),
		trace: telemetry.NewRing(opts.TraceCap),
	}
	c.shadow.Store(newShadowGen(shardsFor(opts.ShadowShards)))
	for i := range c.aclTab {
		c.aclTab[i].m = make(map[aclKey]uint16)
	}
	c.epoch.SetFlat(opts.FlatEpoch)
	if opts.MaxInflight > 0 {
		c.adm = newAdmission(opts.MaxInflight, opts.SerialAdmission, opts.AppDim)
	}
	now := clockFn(time.Now)
	c.clock.Store(&now)
	c.ver = &verifier.V{Mode: opts.Mode, Dev: dev, Geo: g, Cost: opts.Cost}
	return c
}

// noRelease is the crossing-end hook when admission is disabled.
func noRelease() {}

// syscall charges and counts one kernel crossing, attributing it to
// appID's row of the app dimension (0 = unattributed). It applies the
// app's crossings/sec throttle and, when admission is enabled, blocks
// until the fair-share scheduler admits the crossing. The returned hook
// ends the crossing; call it deferred so the admission slot is held for
// the crossing's full duration:
//
//	defer c.syscall(appID)()
func (c *Controller) syscall(appID AppID) func() {
	return c.syscallObserved(appID, nil)
}

// syscallObserved is syscall with a span sink: a queued admission wait is
// reported as a timed SpanEvAdmitWait event.
func (c *Controller) syscallObserved(appID AppID, sink telemetry.SpanSink) func() {
	c.Stats.Syscalls.Add(1)
	c.opts.AppDim.Add(appID, telemetry.AppSyscalls, 1)
	c.cost.Syscall()
	if c.rateActive.Load() != 0 {
		if v, ok := c.quotaRates.Load(appID); ok {
			c.throttleCrossing(v.(*app))
		}
	}
	if c.adm == nil {
		return noRelease
	}
	c.adm.admit(appID, sink)
	return c.adm.releaseFn
}

// Trace returns the kernel-crossing trace ring.
func (c *Controller) Trace() *telemetry.Ring { return c.trace }

// VerifierStats exposes the verifier's work counters.
func (c *Controller) VerifierStats() *verifier.Stats { return &c.ver.Stats }

// RegisterTelemetry exposes the controller's and verifier's counters in
// set under the "kernel." and "verifier." namespaces.
func (c *Controller) RegisterTelemetry(set *telemetry.Set) {
	set.Gauge("kernel.syscalls", c.Stats.Syscalls.Load)
	set.Gauge("kernel.acquires", c.Stats.Acquires.Load)
	set.Gauge("kernel.releases", c.Stats.Releases.Load)
	set.Gauge("kernel.leased_releases", c.Stats.LeasedReleases.Load)
	set.Gauge("kernel.commits", c.Stats.Commits.Load)
	set.Gauge("kernel.verifications", c.Stats.Verifications.Load)
	set.Gauge("kernel.verify_failures", c.Stats.VerifyFailures.Load)
	set.Gauge("kernel.rollbacks", c.Stats.Rollbacks.Load)
	set.Gauge("kernel.involuntary_releases", c.Stats.Involuntary.Load)
	set.Gauge("kernel.trust_transfers", c.Stats.TrustTransfers.Load)
	set.Gauge("kernel.epoch_exclusive", c.Stats.EpochExclusive.Load)
	set.Gauge("kernel.shard.acquisitions", func() int64 { return c.shardTelemetry(false) })
	set.Gauge("kernel.shard.contended", func() int64 { return c.shardTelemetry(true) })
	set.Gauge("kernel.shard.count", func() int64 { return int64(len(c.shadow.Load().shards)) })
	set.Gauge("kernel.admission.admitted", func() int64 { return c.adm.admittedCount() })
	set.Gauge("kernel.admission.queued", func() int64 { return c.adm.queuedCount() })
	set.Gauge("kernel.admission.wait_ns", func() int64 { return c.adm.waitNSCount() })
	set.Gauge("kernel.admission.handoffs", func() int64 { return c.adm.handoffCount() })
	set.Gauge("kernel.admission.queue_depth", func() int64 { return c.adm.queueDepth() })
	set.Gauge("kernel.admission.throttled", c.throttled.Load)
	set.Gauge("pmalloc.steals.local", func() int64 { return c.alloc.StealsLocal() })
	set.Gauge("pmalloc.steals.remote", func() int64 { return c.alloc.StealsRemote() })
	set.Gauge("verifier.dentries", c.ver.Stats.Dentries.Load)
	set.Gauge("verifier.pages", c.ver.Stats.Pages.Load)
}

func shadowInfoOf(ino uint64, in *layout.Inode, childCount uint32, committed bool) verifier.ShadowInfo {
	return verifier.ShadowInfo{
		Ino: ino, Type: in.Type, Perm: in.Perm, UID: in.UID, GID: in.GID,
		Parent: in.Parent, ChildCount: childCount, Committed: committed,
		DataRoot: in.DataRoot, NTails: in.NTails,
	}
}

// Geometry returns the mounted geometry.
func (c *Controller) Geometry() layout.Geometry { return c.geo }

// Device returns the underlying device.
func (c *Controller) Device() *pmem.Device { return c.dev }

// Mode returns the verifier mode.
func (c *Controller) Mode() verifier.Mode { return c.opts.Mode }

// SetClock overrides the lease clock (tests).
func (c *Controller) SetClock(now func() time.Time) {
	fn := clockFn(now)
	c.clock.Store(&fn)
	c.renameLock.SetClock(now)
}

// RegisterApp creates an application identity. When the registered-app
// count outruns the shadow-shard count, the table grows before returning
// (the tenant-scaling fix: shard counts follow tenant counts).
func (c *Controller) RegisterApp(uid, gid uint32) AppID {
	defer c.syscall(0)()
	e := c.enterShared()
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	c.nextApp++
	id := c.nextApp
	c.apps[id] = &app{id: id, uid: uid, gid: gid, grantedInos: make(map[uint64]bool)}
	napps := len(c.apps)
	c.appsMu.Unlock()
	c.exitShared(e)
	c.maybeGrowShards(napps)
	return id
}

// UnregisterApp retires an application identity: every inode it still
// holds is force-released (verified and returned to the kernel), its
// unused inode grants go back to the free pool, any still-granted pages
// are reclaimed, and its telemetry/admission state is dropped. Idle
// tenants — no held inodes, no outstanding pages — unregister without
// touching the shadow or page tables beyond the app row itself.
func (c *Controller) UnregisterApp(appID AppID) error {
	defer c.syscall(appID)()
	a := c.lookupApp(appID)
	if a == nil {
		return fmt.Errorf("kernel: unknown app %d", appID)
	}
	c.trace.Record(telemetry.EvUnregisterApp, appID, 0, 0, 0)
	c.enterExcl()
	defer c.exitExcl()
	// Force-release everything the app still owns. releaseHeld verifies
	// the holder's state, exactly as an involuntary lease reclaim would.
	var held []*shadowEnt
	c.shadowRange(func(ino uint64, se *shadowEnt) {
		if se.owner == appID {
			held = append(held, se)
		}
	})
	for _, se := range held {
		c.Stats.Involuntary.Add(1)
		if err := c.releaseHeld(se, appID, ctlView{c: c}); err != nil && !IsVerificationError(err) {
			return err
		}
	}
	// Unused inode grants go back to the free pool.
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	for ino := range a.grantedInos {
		c.inoFree = append(c.inoFree, ino)
	}
	delete(c.apps, appID)
	c.appsMu.Unlock()
	// Reclaim granted pages. The scan is device-wide, so skip it for the
	// common idle-tenant retire (pagesOut == 0 means no page the app was
	// granted is still app-owned).
	if a.pagesOut.Load() > 0 {
		var back []uint64
		want := ownApp(appID)
		for p, o := range c.pages {
			if o == want {
				c.pages[p] = ownFree
				back = append(back, uint64(p))
			}
		}
		c.alloc.Free(back...)
	}
	c.quotaRates.Delete(appID)
	if a.crossRate.Load() > 0 {
		c.rateActive.Add(-1)
	}
	if c.adm != nil {
		c.adm.evict(appID)
	}
	return nil
}

// NewTrustGroup places the given applications in a fresh trust group:
// inode ownership moves among them without verification (§5.4).
func (c *Controller) NewTrustGroup(ids ...AppID) (int, error) {
	defer c.syscall(0)()
	e := c.enterShared()
	defer c.exitShared(e)
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	defer c.appsMu.Unlock()
	c.nextGroup++
	for _, id := range ids {
		a, ok := c.apps[id]
		if !ok {
			return 0, fmt.Errorf("kernel: unknown app %d", id)
		}
		a.group.Store(int32(c.nextGroup))
	}
	return c.nextGroup, nil
}

// GrantInodes hands n fresh inode numbers to app; the LibFS builds new
// files and directories in them without further system calls.
func (c *Controller) GrantInodes(appID AppID, n int) ([]uint64, error) {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvGrantInodes, appID, 0, int64(n), 0)
	e := c.enterShared()
	defer c.exitShared(e)
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	defer c.appsMu.Unlock()
	a, ok := c.apps[appID]
	if !ok {
		return nil, fmt.Errorf("kernel: unknown app %d", appID)
	}
	if max := a.maxInodes.Load(); max > 0 && int64(len(a.grantedInos)+n) > max {
		return nil, fmt.Errorf("app %d: %d inode grants outstanding, +%d exceeds quota %d: %w",
			appID, len(a.grantedInos), n, max, ErrQuota)
	}
	if len(c.inoFree) < n {
		return nil, fsapi.ErrNoSpace
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		ino := c.inoFree[len(c.inoFree)-1]
		c.inoFree = c.inoFree[:len(c.inoFree)-1]
		a.grantedInos[ino] = true
		out[i] = ino
	}
	return out, nil
}

// GrantPages hands n free pages to app, charging them against the app's
// outstanding-page quota.
func (c *Controller) GrantPages(appID AppID, cpu, n int) ([]uint64, error) {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvGrantPages, appID, 0, int64(n), 0)
	a := c.lookupApp(appID)
	if a == nil {
		return nil, fmt.Errorf("kernel: unknown app %d", appID)
	}
	if err := a.chargePages(n); err != nil {
		return nil, err
	}
	pages, err := c.alloc.AllocBatch(cpu, n)
	if err != nil {
		a.pagesOut.Add(-int64(n))
		return nil, fsapi.ErrNoSpace
	}
	e := c.enterShared()
	defer c.exitShared(e)
	if c.lookupApp(appID) == nil {
		a.pagesOut.Add(-int64(n))
		c.alloc.Free(pages...)
		return nil, fmt.Errorf("kernel: unknown app %d", appID)
	}
	for _, p := range pages {
		c.setPageOwner(p, ownApp(appID))
	}
	return pages, nil
}

// ReturnPages gives unused granted pages back (LibFS teardown),
// uncharging them from the app's outstanding-page quota.
func (c *Controller) ReturnPages(appID AppID, pages []uint64) {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvReturnPages, appID, 0, int64(len(pages)), 0)
	e := c.enterShared()
	var back []uint64
	for _, p := range pages {
		if c.casPageOwner(p, ownApp(appID), ownFree) {
			back = append(back, p)
		}
	}
	c.exitShared(e)
	if len(back) > 0 {
		if a := c.lookupApp(appID); a != nil {
			a.pagesOut.Add(-int64(len(back)))
		}
		c.alloc.Free(back...)
	}
}

// RenameLockAcquire takes the global rename lease for app (§4.6 patch).
func (c *Controller) RenameLockAcquire(appID AppID) {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvRenameLockAcquire, appID, 0, 0, 0)
	c.renameLock.Acquire(appID, c.opts.RenameLeaseTTL)
}

// RenameLockRelease returns the lease; false means it had expired and
// been stolen.
func (c *Controller) RenameLockRelease(appID AppID) bool {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvRenameLockRelease, appID, 0, 0, 0)
	return c.renameLock.Release(appID)
}

// SetACL overrides app's permission bits on ino (layout.PermRead |
// layout.PermWrite). The §3.1 attack scenario uses this to deny App1
// write access on specific inodes. Like every other entry point it
// models (and charges) a kernel crossing.
func (c *Controller) SetACL(ino uint64, appID AppID, perm uint16) {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvSetACL, appID, ino, int64(perm), 0)
	e := c.enterShared()
	defer c.exitShared(e)
	sh := c.shardOf(ino)
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	defer sh.mu.Unlock()
	// A dormant (lease-released) holder must not re-activate across a
	// permission change: reclaim its mapping so the next access pays a
	// full, ACL-checked Acquire.
	if se := sh.m[ino]; se != nil && se.owner != 0 {
		c.reclaimDormant(se)
	}
	as := c.aclShardOf(ino)
	if !as.mu.TryLock() {
		as.contended.Add(1)
		as.mu.Lock()
	}
	as.acquisitions.Add(1)
	as.m[aclKey{ino, appID}] = perm
	as.mu.Unlock()
}

// acl returns app's permission override for ino, if any.
func (c *Controller) acl(appID AppID, ino uint64) (uint16, bool) {
	as := c.aclShardOf(ino)
	if !as.mu.TryLock() {
		as.contended.Add(1)
		as.mu.Lock()
	}
	as.acquisitions.Add(1)
	p, ok := as.m[aclKey{ino, appID}]
	as.mu.Unlock()
	return p, ok
}

// FreeCount exposes allocator occupancy for tests.
func (c *Controller) FreeCount() int { return c.alloc.FreeCount() }

// FreePageFraction reports the fraction of data pages still free —
// the reclaim-pressure signal LibFS lease reserves scale their TTL by.
func (c *Controller) FreePageFraction() float64 {
	total := len(c.pages)
	if total == 0 {
		return 0
	}
	return float64(c.alloc.FreeCount()) / float64(total)
}

// ShadowOf returns a copy of ino's shadow info (tests and tools).
func (c *Controller) ShadowOf(ino uint64) (verifier.ShadowInfo, bool) {
	e := c.enterShared()
	defer c.exitShared(e)
	se := c.shadowGet(ino, nil)
	if se == nil {
		return verifier.ShadowInfo{}, false
	}
	return se.info, true
}

// OwnerOf returns the app currently holding ino (0 = kernel). A dormant
// holder — one that lease-released the inode — reports as 0: the kernel
// may reclaim the inode at any time, so it is kernel-held for every
// observer but the lease holder itself.
func (c *Controller) OwnerOf(ino uint64) AppID {
	e := c.enterShared()
	defer c.exitShared(e)
	sh := c.shardOf(ino)
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	defer sh.mu.Unlock()
	if se := sh.m[ino]; se != nil {
		if se.mapping != nil && se.mapping.dormant.Load() {
			return 0
		}
		return se.owner
	}
	return 0
}

// errBusy wraps fsapi.ErrBusy with holder context.
func errBusy(ino uint64, holder AppID) error {
	return fmt.Errorf("inode %d held by app %d: %w", ino, holder, fsapi.ErrBusy)
}

// IsVerificationError reports whether err is a verifier rejection.
func IsVerificationError(err error) bool {
	var fe *verifier.FailError
	return errors.As(err, &fe)
}
