package kernel

import (
	"fmt"
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/telemetry"
	"arckfs/internal/verifier"
)

// lockShard takes ino's shard lock with the TryLock-contended accounting
// convention. When the lock was contended and the caller supplied a span
// sink, the blocked wait is reported as a timed shard-wait event — the
// per-span view of the aggregate kernel.shard.contended gauge.
func (c *Controller) lockShard(ino uint64, sink telemetry.SpanSink) *shadowShard {
	sh := c.shardOf(ino)
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		if sink != nil {
			begin := time.Now()
			sh.mu.Lock()
			sink.SpanEvent(telemetry.SpanEvShardWait, int64(c.shardIndex(ino)),
				time.Since(begin).Nanoseconds())
		} else {
			sh.mu.Lock()
		}
	}
	sh.acquisitions.Add(1)
	return sh
}

// ctlView adapts the controller to verifier.KernelView.
//
// held is the shard the verification in progress already holds (the
// verified inode's own shard on the shared fast path; nil under the
// exclusive epoch). Fast-path verifications are file-only, and the file
// verifier touches no shadow entry but the file's own (VerifyFile and
// the file branch of VerifyNewInode read Shadow(ino) plus page-owner
// words), so cross-shard lookups here — which briefly take another
// shard's same-rank lock — only ever run under the exclusive epoch,
// where no other holder exists.
type ctlView struct {
	c    *Controller
	held *shadowShard
}

func (v ctlView) Shadow(ino uint64) (verifier.ShadowInfo, bool) {
	se := v.c.shadowGet(ino, v.held)
	if se == nil {
		return verifier.ShadowInfo{}, false
	}
	return se.info, true
}

func (v ctlView) InodeGrantedTo(app AppID, ino uint64) bool {
	return v.c.inoGranted(app, ino)
}

func (v ctlView) PageUsableBy(app AppID, ino, page uint64) bool {
	if page >= uint64(len(v.c.pages)) {
		return false
	}
	o := v.c.pageOwnerAt(page)
	return o == ownApp(app) || o == ownIno(ino)
}

func (v ctlView) OwnedBy(app AppID, ino uint64) bool {
	se := v.c.shadowGet(ino, v.held)
	if se == nil || se.owner != app {
		return false
	}
	// A dormant hold was voluntarily released: for verification purposes
	// the app no longer holds the inode, exactly as after a plain
	// Release (LibFS Rule: hold the old parent until the new parent
	// commits — a lease-released parent does not satisfy it).
	return se.mapping == nil || !se.mapping.dormant.Load()
}

func (v ctlView) OwnedByOther(app AppID, ino uint64) bool {
	se := v.c.shadowGet(ino, v.held)
	if se == nil || se.owner == 0 || se.owner == app {
		return false
	}
	// A dormant holder does not block removal — reclaim its lease, just
	// as a plain Release would have left the inode kernel-held.
	if v.c.reclaimDormant(se) {
		return false
	}
	return true
}

func (v ctlView) HoldsRenameLock(app AppID) bool {
	return v.c.renameLock.Holder() == app
}

func (v ctlView) IsDescendant(node, anc uint64) bool {
	return v.c.isDescendant(node, anc, v.held)
}

func (c *Controller) isDescendant(node, anc uint64, held *shadowShard) bool {
	cur := node
	for depth := 0; depth < 1<<16; depth++ {
		if cur == anc {
			return true
		}
		if cur == layout.RootIno {
			return false
		}
		se := c.shadowGet(cur, held)
		if se == nil {
			return false
		}
		cur = se.info.Parent
	}
	// Walk exceeded the bound: an existing cycle. Report descent so the
	// caller refuses the operation.
	return true
}

// reclaimDormant tears down a mapping whose holder lease-released the
// inode (ReleaseLeased). The release-time verification already ran and
// the holder has not re-activated — winning the dormant CAS guarantees
// it never will — so the core state is exactly as verified and the
// kernel reclaims without re-running the verifier. Returns false if
// there was no dormant mapping or the holder re-activated first.
// Caller holds the inode's shard lock or the exclusive epoch.
func (c *Controller) reclaimDormant(se *shadowEnt) bool {
	m := se.mapping
	if m == nil || !m.dormant.CompareAndSwap(true, false) {
		return false
	}
	m.revoke()
	for _, gm := range se.groupMappings {
		gm.revoke()
	}
	se.groupMappings = nil
	c.cost.Unmap()
	c.trace.Record(telemetry.EvUnmap, se.owner, se.info.Ino, 0, 0)
	se.owner = 0
	se.mapping = nil
	se.snap = nil
	return true
}

// Acquire grants app access to ino and maps its core state. write
// requests write intent. A second acquire by the current owner is
// idempotent and returns the existing mapping.
func (c *Controller) Acquire(appID AppID, ino uint64, write bool) (*Mapping, error) {
	return c.AcquireObserved(appID, ino, write, nil)
}

// AcquireObserved is Acquire with a span sink: a contended shard lock on
// the fast path reports a timed shard-wait event to sink (nil = plain
// Acquire).
func (c *Controller) AcquireObserved(appID AppID, ino uint64, write bool, sink telemetry.SpanSink) (*Mapping, error) {
	defer c.syscallObserved(appID, sink)()
	c.Stats.Acquires.Add(1)
	var wr int64
	if write {
		wr = 1
	}
	c.trace.Record(telemetry.EvAcquire, appID, ino, wr, 0)
	if !c.opts.Serialize {
		if m, err, handled := c.acquireFast(appID, ino, write, sink); handled {
			return m, err
		}
	}
	c.enterExcl()
	defer c.exitExcl()
	return c.acquireExcl(appID, ino, write)
}

// acquireFast handles every acquire that touches only ino's own shard:
// all of them except the expired-lease involuntary release, whose
// verification can span shards. handled=false punts to acquireExcl.
func (c *Controller) acquireFast(appID AppID, ino uint64, write bool, sink telemetry.SpanSink) (m *Mapping, err error, handled bool) {
	e := c.epoch.RLock()
	defer c.epoch.RUnlock(e)
	sh := c.lockShard(ino, sink)
	defer sh.mu.Unlock()

	a := c.lookupApp(appID)
	if a == nil {
		return nil, fmt.Errorf("kernel: unknown app %d", appID), true
	}
	se := sh.m[ino]
	if se == nil || (!se.info.Committed && se.owner != appID) {
		return nil, fsapi.ErrNotExist, true
	}
	if se.inaccessible {
		return nil, fmt.Errorf("inode %d marked inaccessible: %w", ino, fsapi.ErrPerm), true
	}
	perm := se.info.Perm
	if ov, ok := c.acl(appID, ino); ok {
		perm = ov
	}
	if write && perm&layout.PermWrite == 0 {
		return nil, fsapi.ErrPerm, true
	}
	if !write && perm&layout.PermRead == 0 {
		return nil, fsapi.ErrPerm, true
	}
	if se.owner == appID {
		if m := se.mapping; m != nil && m.dormant.Load() {
			// Our own lease-released hold: take it back in-kernel. A
			// failed CAS means the LibFS re-activated concurrently;
			// either way the mapping is active again.
			m.dormant.CompareAndSwap(true, false)
		}
		se.lease = c.now().Add(c.opts.LeaseTTL)
		return se.mapping, nil, true
	}
	if se.owner != 0 && !c.reclaimDormant(se) {
		holder := c.lookupApp(se.owner)
		if holder != nil && holder.group.Load() != 0 && holder.group.Load() == a.group.Load() {
			return c.groupTransfer(se, appID), nil, true
		}
		if c.now().Before(se.lease) {
			return nil, errBusy(ino, se.owner), true
		}
		// Lease expired: the involuntary release verifies the holder's
		// state, which for a directory spans shards — exclusive epoch.
		return nil, nil, false
	}
	if err := c.establish(se, appID); err != nil {
		return nil, err, true
	}
	return se.mapping, nil, true
}

// acquireExcl is the slow acquire path under the exclusive epoch; it
// re-checks everything (the world may have changed since the fast path
// punted).
func (c *Controller) acquireExcl(appID AppID, ino uint64, write bool) (*Mapping, error) {
	a := c.lookupApp(appID)
	if a == nil {
		return nil, fmt.Errorf("kernel: unknown app %d", appID)
	}
	se := c.shadowGet(ino, nil)
	if se == nil || (!se.info.Committed && se.owner != appID) {
		return nil, fsapi.ErrNotExist
	}
	if se.inaccessible {
		return nil, fmt.Errorf("inode %d marked inaccessible: %w", ino, fsapi.ErrPerm)
	}
	perm := se.info.Perm
	if ov, ok := c.acl(appID, ino); ok {
		perm = ov
	}
	if write && perm&layout.PermWrite == 0 {
		return nil, fsapi.ErrPerm
	}
	if !write && perm&layout.PermRead == 0 {
		return nil, fsapi.ErrPerm
	}
	if se.owner == appID {
		if m := se.mapping; m != nil && m.dormant.Load() {
			m.dormant.CompareAndSwap(true, false)
		}
		se.lease = c.now().Add(c.opts.LeaseTTL)
		return se.mapping, nil
	}
	if se.owner != 0 && !c.reclaimDormant(se) {
		holder := c.lookupApp(se.owner)
		if holder != nil && holder.group.Load() != 0 && holder.group.Load() == a.group.Load() {
			return c.groupTransfer(se, appID), nil
		}
		if c.now().Before(se.lease) {
			return nil, errBusy(ino, se.owner)
		}
		// Lease expired: involuntary release. The holder may be mid-
		// operation; that is its problem (§4.3 discussion).
		c.Stats.Involuntary.Add(1)
		c.trace.Record(telemetry.EvLeaseExpire, se.owner, ino, int64(appID), 0)
		if err := c.releaseHeld(se, se.owner, ctlView{c: c}); err != nil && !IsVerificationError(err) {
			return nil, err
		}
	}
	if err := c.establish(se, appID); err != nil {
		return nil, err
	}
	return se.mapping, nil
}

// groupTransfer hands se to a trust-group peer (§5.4): the holder's
// mapping stays established — no verification, no unmap, no rebuild.
// Caller holds se's shard lock or the exclusive epoch.
func (c *Controller) groupTransfer(se *shadowEnt, appID AppID) *Mapping {
	c.Stats.TrustTransfers.Add(1)
	c.trace.Record(telemetry.EvTrustTransfer, appID, se.info.Ino, se.owner, 0)
	for _, m := range se.groupMappings {
		if m.app == appID && m.Valid() {
			se.lease = c.now().Add(c.opts.LeaseTTL)
			return m
		}
	}
	if len(se.groupMappings) == 0 && se.mapping != nil {
		se.groupMappings = append(se.groupMappings, se.mapping)
	}
	m := newMapping(se.info.Ino, appID)
	se.groupMappings = append(se.groupMappings, m)
	se.owner = appID
	se.mapping = m
	se.lease = c.now().Add(c.opts.LeaseTTL)
	c.cost.Map()
	return m
}

// establish snapshots ino's core state and establishes app's mapping.
// Caller holds se's shard lock or the exclusive epoch.
func (c *Controller) establish(se *shadowEnt, appID AppID) error {
	snap, err := c.buildSnapshot(se)
	if err != nil {
		// A kernel-held inode that does not parse is corrupt at rest.
		se.inaccessible = true
		return fmt.Errorf("inode %d unreadable at acquire: %w", se.info.Ino, err)
	}
	se.snap = snap
	se.owner = appID
	se.mapping = newMapping(se.info.Ino, appID)
	se.lease = c.now().Add(c.opts.LeaseTTL)
	c.cost.Map()
	c.trace.Record(telemetry.EvMap, appID, se.info.Ino, 0, 0)
	return nil
}

// buildSnapshot parses and copies the inode's metadata state: the
// rollback point and verification baseline.
func (c *Controller) buildSnapshot(se *shadowEnt) (*snapshot, error) {
	ino := se.info.Ino
	snap := &snapshot{pageData: make(map[uint64][]byte)}
	copyPage := func(p uint64) {
		b := make([]byte, layout.PageSize)
		c.dev.Read(int64(p*layout.PageSize), b)
		snap.pageData[p] = b
	}
	rec := make([]byte, layout.InodeSize)
	c.dev.Read(layout.InodeOff(c.geo, ino), rec)
	snap.inodeRec = rec

	switch se.info.Type {
	case layout.TypeDir:
		dv, err := c.ver.ParseDir(ino)
		if err != nil {
			return nil, err
		}
		old := &verifier.DirOld{Entries: make(map[string]uint64, len(dv.Entries)), Pages: make(map[uint64]bool, len(dv.Pages))}
		for name, d := range dv.Entries {
			old.Entries[name] = d.Ino
		}
		copyPage(se.info.DataRoot)
		for _, p := range dv.Pages {
			old.Pages[p] = true
			copyPage(p)
		}
		snap.dirOld = old
	case layout.TypeFile:
		fv, err := c.ver.ParseFile(ino)
		if err != nil {
			return nil, err
		}
		old := &verifier.FileOld{Blocks: map[uint64]bool{}, MapPages: map[uint64]bool{}, Size: fv.Inode.Size}
		for _, p := range fv.MapPages {
			old.MapPages[p] = true
			copyPage(p)
		}
		for _, b := range fv.Blocks {
			if b != 0 {
				old.Blocks[b] = true
			}
		}
		snap.fileOld = old
	default:
		return nil, fmt.Errorf("inode %d: unknown type %d", ino, se.info.Type)
	}
	return snap, nil
}

// xferKind distinguishes the three ownership-transfer entry points that
// share guard logic: Release, Commit, and ReleaseLeased.
type xferKind int

const (
	xferRelease xferKind = iota
	xferCommit
	xferLease
)

// Release returns ino to the kernel: unmap, verify, apply or roll back.
func (c *Controller) Release(appID AppID, ino uint64) error {
	return c.ReleaseObserved(appID, ino, nil)
}

// ReleaseObserved is Release with a span sink for timed shard-wait
// events (nil = plain Release).
func (c *Controller) ReleaseObserved(appID AppID, ino uint64, sink telemetry.SpanSink) error {
	defer c.syscallObserved(appID, sink)()
	c.Stats.Releases.Add(1)
	c.trace.Record(telemetry.EvRelease, appID, ino, 0, 0)
	_, err := c.transfer(appID, ino, xferRelease, sink)
	return err
}

// Commit verifies ino's current state without releasing it [Trio §4.3]:
// for a pending (newly created) inode it performs the Rule-1 commit; for
// a held committed inode it applies the verified delta and refreshes the
// baseline snapshot. The mapping stays valid on success.
func (c *Controller) Commit(appID AppID, ino uint64) error {
	return c.CommitObserved(appID, ino, nil)
}

// CommitObserved is Commit with a span sink for timed shard-wait events
// (nil = plain Commit).
func (c *Controller) CommitObserved(appID AppID, ino uint64, sink telemetry.SpanSink) error {
	defer c.syscallObserved(appID, sink)()
	c.Stats.Commits.Add(1)
	c.trace.Record(telemetry.EvCommit, appID, ino, 0, 0)
	_, err := c.transfer(appID, ino, xferCommit, sink)
	return err
}

// ReleaseLeased is Release under a grant lease: the state is verified
// and applied exactly as on Release, but the mapping is left established
// and dormant instead of being torn down. The LibFS may re-activate it
// with Mapping.Reactivate — skipping the re-Acquire crossing — until the
// kernel reclaims it for another application (reclaimDormant). Returns
// the dormant mapping so the LibFS can cache it (nil if verification
// failed and the inode was fully released).
func (c *Controller) ReleaseLeased(appID AppID, ino uint64) (*Mapping, error) {
	return c.ReleaseLeasedObserved(appID, ino, nil)
}

// ReleaseLeasedObserved is ReleaseLeased with a span sink for timed
// shard-wait events (nil = plain ReleaseLeased).
func (c *Controller) ReleaseLeasedObserved(appID AppID, ino uint64, sink telemetry.SpanSink) (*Mapping, error) {
	defer c.syscallObserved(appID, sink)()
	c.Stats.Releases.Add(1)
	c.Stats.LeasedReleases.Add(1)
	c.trace.Record(telemetry.EvRelease, appID, ino, 1, 0)
	return c.transfer(appID, ino, xferLease, sink)
}

func (c *Controller) transfer(appID AppID, ino uint64, kind xferKind, sink telemetry.SpanSink) (*Mapping, error) {
	if !c.opts.Serialize {
		if m, err, handled := c.transferFast(appID, ino, kind, sink); handled {
			return m, err
		}
	}
	c.enterExcl()
	defer c.exitExcl()
	return c.transferExcl(appID, ino, kind)
}

// transferFast handles file transfers on the shared epoch: file
// verification touches only the file's own shadow entry and page-owner
// words, so the shard lock suffices. Directories punt to the exclusive
// epoch (their commits create, relocate, and free children on other
// shards).
func (c *Controller) transferFast(appID AppID, ino uint64, kind xferKind, sink telemetry.SpanSink) (m *Mapping, err error, handled bool) {
	e := c.epoch.RLock()
	defer c.epoch.RUnlock(e)
	sh := c.lockShard(ino, sink)
	defer sh.mu.Unlock()

	se := sh.m[ino]
	if se == nil {
		return nil, c.missingTransferErr(appID, ino), true
	}
	if se.info.Type == layout.TypeDir {
		return nil, nil, false
	}
	if se.owner != appID {
		return nil, fmt.Errorf("inode %d not held by app %d: %w", ino, appID, fsapi.ErrPerm), true
	}
	m2, err := c.transferHeld(se, appID, kind, ctlView{c: c, held: sh})
	return m2, err, true
}

// transferExcl is the transfer slow path under the exclusive epoch.
func (c *Controller) transferExcl(appID AppID, ino uint64, kind xferKind) (*Mapping, error) {
	se := c.shadowGet(ino, nil)
	if se == nil {
		return nil, c.missingTransferErr(appID, ino)
	}
	if se.owner != appID {
		return nil, fmt.Errorf("inode %d not held by app %d: %w", ino, appID, fsapi.ErrPerm)
	}
	return c.transferHeld(se, appID, kind, ctlView{c: c})
}

// missingTransferErr classifies a transfer of an unknown inode: either a
// LibFS Rule 1 violation (releasing a granted inode whose parent was
// never committed — from the kernel's perspective it is disconnected
// from the root) or plain absence.
func (c *Controller) missingTransferErr(appID AppID, ino uint64) error {
	if c.inoGranted(appID, ino) {
		return &verifier.FailError{Ino: ino, Reason: "new inode disconnected from the root (I3, LibFS Rule 1)"}
	}
	return fsapi.ErrNotExist
}

// transferHeld applies one transfer kind to an inode the caller has
// guard-checked. Caller holds se's shard lock or the exclusive epoch.
func (c *Controller) transferHeld(se *shadowEnt, appID AppID, kind xferKind, view ctlView) (*Mapping, error) {
	if m := se.mapping; m != nil && m.dormant.Load() {
		// The app transfers an inode it had lease-released (a LibFS may
		// order a Commit of a released parent before re-activating it):
		// take the lease back and proceed as an active holder.
		m.dormant.CompareAndSwap(true, false)
	}
	switch kind {
	case xferCommit:
		return nil, c.verifyAndApply(se, appID, true, view)
	case xferRelease:
		return nil, c.releaseHeld(se, appID, view)
	}
	// xferLease.
	if len(se.groupMappings) > 0 {
		// Trust-group peers hold concurrently valid mappings; a dormant
		// lease has no single holder to hand back to. Plain release.
		return nil, c.releaseHeld(se, appID, view)
	}
	if err := c.verifyAndApply(se, appID, true, view); err != nil {
		// Failed verification tears the hold down exactly as Release
		// does (the policy — rollback or inaccessible — was applied by
		// verifyAndApply).
		if se.mapping != nil {
			se.mapping.revoke()
		}
		c.cost.Unmap()
		c.trace.Record(telemetry.EvUnmap, appID, se.info.Ino, 0, 0)
		se.owner = 0
		se.mapping = nil
		se.snap = nil
		return nil, err
	}
	se.lease = c.now().Add(c.opts.LeaseTTL)
	se.mapping.dormant.Store(true)
	return se.mapping, nil
}

// ForceRelease revokes and verifies ino regardless of lease state —
// the involuntary-release path, also used by tests to simulate an
// application crash.
func (c *Controller) ForceRelease(ino uint64) error {
	defer c.syscall(0)()
	c.enterExcl()
	defer c.exitExcl()
	se := c.shadowGet(ino, nil)
	if se == nil || se.owner == 0 {
		return fsapi.ErrNotExist
	}
	c.Stats.Involuntary.Add(1)
	return c.releaseHeld(se, se.owner, ctlView{c: c})
}

// releaseHeld tears down se's hold: revoke, unmap, verify, apply or
// roll back. Caller holds se's shard lock or the exclusive epoch.
func (c *Controller) releaseHeld(se *shadowEnt, appID AppID, view ctlView) error {
	se.mapping.revoke()
	for _, m := range se.groupMappings {
		m.revoke()
	}
	se.groupMappings = nil
	c.cost.Unmap()
	c.trace.Record(telemetry.EvUnmap, appID, se.info.Ino, 0, 0)
	err := c.verifyAndApply(se, appID, false, view)
	se.owner = 0
	se.mapping = nil
	se.snap = nil
	return err
}

// verifyAndApply runs the verifier on se's current core state and
// applies the verdict. keepHeld distinguishes Commit from Release.
// Caller holds se's shard lock (files) or the exclusive epoch.
func (c *Controller) verifyAndApply(se *shadowEnt, appID AppID, keepHeld bool, view ctlView) error {
	c.Stats.Verifications.Add(1)
	ino := se.info.Ino

	if !se.info.Committed {
		// Rule-1 commit of a newly created inode.
		res, err := c.ver.VerifyNewInode(appID, ino, se.info.Parent, view)
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicy(se, view.held)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, int64(res.ChildCount), int64(len(res.Pages)))
		c.applyNewInode(se, appID, res, view.held)
		if keepHeld {
			return c.refreshSnapshot(se)
		}
		return nil
	}

	switch se.info.Type {
	case layout.TypeDir:
		res, err := c.ver.VerifyDir(appID, ino, se.snap.dirOld, view)
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicy(se, view.held)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, int64(res.View.Records), int64(len(res.View.Pages)))
		c.applyDir(se, appID, res)
	case layout.TypeFile:
		res, err := c.ver.VerifyFile(appID, ino, se.snap.fileOld, view)
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicy(se, view.held)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, 0, int64(len(res.View.MapPages)))
		c.applyFile(se, appID, res)
	default:
		return fmt.Errorf("inode %d: unknown shadow type %d", ino, se.info.Type)
	}
	if keepHeld {
		return c.refreshSnapshot(se)
	}
	return nil
}

func (c *Controller) refreshSnapshot(se *shadowEnt) error {
	snap, err := c.buildSnapshot(se)
	if err != nil {
		return fmt.Errorf("inode %d unreadable after commit: %w", se.info.Ino, err)
	}
	se.snap = snap
	return nil
}

// applyPolicy handles a verification failure. held follows the
// shadowGet convention.
func (c *Controller) applyPolicy(se *shadowEnt, held *shadowShard) {
	switch c.opts.Policy {
	case PolicyRollback:
		c.Stats.Rollbacks.Add(1)
		if se.snap != nil {
			c.dev.Write(layout.InodeOff(c.geo, se.info.Ino), se.snap.inodeRec)
			c.dev.Persist(layout.InodeOff(c.geo, se.info.Ino), layout.InodeSize)
			for p, data := range se.snap.pageData {
				c.dev.Write(int64(p*layout.PageSize), data)
				c.dev.Persist(int64(p*layout.PageSize), layout.PageSize)
			}
		} else {
			// A pending inode has no snapshot: discard it entirely.
			layout.FreeInode(c.dev, c.geo, se.info.Ino)
			c.dev.Persist(layout.InodeOff(c.geo, se.info.Ino), layout.InodeSize)
			c.shadowDelete(se.info.Ino, held)
			c.pushInoFree(se.info.Ino)
		}
	case PolicyMarkInaccessible:
		se.inaccessible = true
	}
}

// writeShadow mirrors se to the PM shadow table.
func (c *Controller) writeShadow(se *shadowEnt) {
	ex := &layout.ShadowExtra{
		ChildCount:   se.info.ChildCount,
		Committed:    se.info.Committed,
		Inaccessible: se.inaccessible,
	}
	layout.WriteShadow(c.dev, c.geo, se.info.Ino, &se.inode, ex)
	layout.PersistShadow(c.dev, c.geo, se.info.Ino)
}

// applyDir commits a successful directory verification. Directory
// transfers always run under the exclusive epoch (they touch children on
// arbitrary shards).
func (c *Controller) applyDir(se *shadowEnt, appID AppID, res *verifier.DirResult) {
	for _, ch := range res.Changes {
		switch ch.Action {
		case verifier.AddNew:
			c.ungrant(appID, ch.Ino)
			cin, _, _ := layout.ReadInode(c.dev, c.geo, ch.Ino)
			child := &shadowEnt{
				info:  shadowInfoOf(ch.Ino, &cin, 0, false),
				inode: cin,
				owner: appID,
			}
			child.mapping = newMapping(ch.Ino, appID)
			child.lease = c.now().Add(c.opts.LeaseTTL)
			c.shadowPut(ch.Ino, child, nil)
		case verifier.RelocateIn:
			// Advance the child's verified parent pointer. The Original
			// verifier also tracks parents for files (cross-directory
			// file moves worked in the Trio artifact); its §4.1 defect
			// is on the old-parent side for directories.
			child := c.shadowGet(ch.Ino, nil)
			// A dormant holder's lease does not survive relocation: the
			// next access pays a full Acquire under the new parent.
			c.reclaimDormant(child)
			child.info.Parent = se.info.Ino
			child.inode.Parent = se.info.Ino
			c.writeShadow(child)
		case verifier.RemoveFile, verifier.RemoveEmptyDir:
			c.freeInode(ch.Ino)
		case verifier.RenamedAway:
			// Verified at the new parent's commit; nothing to do here.
		}
	}
	se.inode = res.Inode
	se.info.ChildCount = uint32(len(res.View.Entries))
	c.applyPages(se.info.Ino, appID, res.NewPages, res.FreedPages)
	c.writeShadow(se)
}

func (c *Controller) applyFile(se *shadowEnt, appID AppID, res *verifier.FileResult) {
	se.inode = res.Inode
	c.applyPages(se.info.Ino, appID, res.NewPages, res.FreedPages)
	c.writeShadow(se)
}

func (c *Controller) applyNewInode(se *shadowEnt, appID AppID, res *verifier.NewInodeResult, held *shadowShard) {
	se.inode = res.Inode
	se.info = shadowInfoOf(se.info.Ino, &res.Inode, res.ChildCount, true)
	c.adoptPages(se.info.Ino, appID, res.Pages)
	// PendingChildren only occur for directories, which commit under the
	// exclusive epoch (held == nil): the cross-shard shadowPut is safe.
	for _, ch := range res.PendingChildren {
		c.ungrant(appID, ch.Ino)
		cin, _, _ := layout.ReadInode(c.dev, c.geo, ch.Ino)
		child := &shadowEnt{
			info:  shadowInfoOf(ch.Ino, &cin, 0, false),
			inode: cin,
			owner: appID,
		}
		child.mapping = newMapping(ch.Ino, appID)
		child.lease = c.now().Add(c.opts.LeaseTTL)
		c.shadowPut(ch.Ino, child, held)
	}
	c.writeShadow(se)
}

func (c *Controller) applyPages(ino uint64, appID AppID, newPages, freed []uint64) {
	c.adoptPages(ino, appID, newPages)
	if len(freed) > 0 {
		for _, p := range freed {
			c.setPageOwner(p, ownFree)
		}
		c.alloc.Free(freed...)
	}
}

// adoptPages moves newly referenced pages from app-granted to
// inode-owned. Pages that were still charged as outstanding grants to
// appID are uncharged from its page quota — adoption is the moment a
// grant stops being the app's liability and becomes file-system state.
func (c *Controller) adoptPages(ino uint64, appID AppID, pages []uint64) {
	adopted := int64(0)
	for _, p := range pages {
		if c.casPageOwner(p, ownApp(appID), ownIno(ino)) {
			adopted++
			continue
		}
		c.setPageOwner(p, ownIno(ino))
	}
	if adopted > 0 {
		if a := c.lookupApp(appID); a != nil {
			a.pagesOut.Add(-adopted)
		}
	}
}

// freeInode reclaims a deleted inode: its pages, its shadow record,
// its PM records, and its number. Exclusive-epoch callers only (reached
// through directory commits).
func (c *Controller) freeInode(ino uint64) {
	se := c.shadowGet(ino, nil)
	if se == nil {
		return
	}
	if se.mapping != nil {
		se.mapping.revoke()
	}
	// Reclaim every page the inode owns.
	var freed []uint64
	switch se.info.Type {
	case layout.TypeFile:
		if fv, err := c.ver.ParseFile(ino); err == nil {
			freed = append(freed, fv.MapPages...)
			for _, b := range fv.Blocks {
				if b != 0 {
					freed = append(freed, b)
				}
			}
		}
	case layout.TypeDir:
		if dv, err := c.ver.ParseDir(ino); err == nil {
			freed = append(freed, se.info.DataRoot)
			freed = append(freed, dv.Pages...)
		}
	}
	var reclaim []uint64
	for _, p := range freed {
		if c.casPageOwner(p, ownIno(ino), ownFree) {
			reclaim = append(reclaim, p)
		}
	}
	c.alloc.Free(reclaim...)
	layout.FreeInode(c.dev, c.geo, ino)
	c.dev.Persist(layout.InodeOff(c.geo, ino), layout.InodeSize)
	layout.FreeShadow(c.dev, c.geo, ino)
	layout.PersistShadow(c.dev, c.geo, ino)
	c.shadowDelete(ino, nil)
	c.pushInoFree(ino)
}
