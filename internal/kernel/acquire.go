package kernel

import (
	"fmt"

	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/telemetry"
	"arckfs/internal/verifier"
)

// lockedView adapts the controller to verifier.KernelView. All methods
// assume c.mu is held by the verification in progress.
type lockedView struct{ c *Controller }

func (v lockedView) Shadow(ino uint64) (verifier.ShadowInfo, bool) {
	se, ok := v.c.shadows[ino]
	if !ok {
		return verifier.ShadowInfo{}, false
	}
	return se.info, true
}

func (v lockedView) InodeGrantedTo(app AppID, ino uint64) bool {
	a, ok := v.c.apps[app]
	return ok && a.grantedInos[ino]
}

func (v lockedView) PageUsableBy(app AppID, ino, page uint64) bool {
	if page >= uint64(len(v.c.pages)) {
		return false
	}
	o := v.c.pages[page]
	return o == ownApp(app) || o == ownIno(ino)
}

func (v lockedView) OwnedBy(app AppID, ino uint64) bool {
	se, ok := v.c.shadows[ino]
	return ok && se.owner == app
}

func (v lockedView) OwnedByOther(app AppID, ino uint64) bool {
	se, ok := v.c.shadows[ino]
	return ok && se.owner != 0 && se.owner != app
}

func (v lockedView) HoldsRenameLock(app AppID) bool {
	return v.c.renameLock.Holder() == app
}

func (v lockedView) IsDescendant(node, anc uint64) bool {
	return v.c.isDescendantLocked(node, anc)
}

func (c *Controller) isDescendantLocked(node, anc uint64) bool {
	cur := node
	for depth := 0; depth < 1<<16; depth++ {
		if cur == anc {
			return true
		}
		if cur == layout.RootIno {
			return false
		}
		se, ok := c.shadows[cur]
		if !ok {
			return false
		}
		cur = se.info.Parent
	}
	// Walk exceeded the bound: an existing cycle. Report descent so the
	// caller refuses the operation.
	return true
}

// Acquire grants app access to ino and maps its core state. write
// requests write intent. A second acquire by the current owner is
// idempotent and returns the existing mapping.
func (c *Controller) Acquire(appID AppID, ino uint64, write bool) (*Mapping, error) {
	c.syscall()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Stats.Acquires.Add(1)
	var wr int64
	if write {
		wr = 1
	}
	c.trace.Record(telemetry.EvAcquire, appID, ino, wr, 0)
	a, ok := c.apps[appID]
	if !ok {
		return nil, fmt.Errorf("kernel: unknown app %d", appID)
	}
	se, ok := c.shadows[ino]
	if !ok || (!se.info.Committed && se.owner != appID) {
		return nil, fsapi.ErrNotExist
	}
	if se.inaccessible {
		return nil, fmt.Errorf("inode %d marked inaccessible: %w", ino, fsapi.ErrPerm)
	}
	perm := se.info.Perm
	if ov, ok := c.acl(appID, ino); ok {
		perm = ov
	}
	if write && perm&layout.PermWrite == 0 {
		return nil, fsapi.ErrPerm
	}
	if !write && perm&layout.PermRead == 0 {
		return nil, fsapi.ErrPerm
	}
	if se.owner == appID {
		se.lease = c.clock().Add(c.opts.LeaseTTL)
		return se.mapping, nil
	}
	if se.owner != 0 {
		holder := c.apps[se.owner]
		if holder != nil && holder.group != 0 && holder.group == a.group {
			// Trust group (§5.4): the peer's mapping stays established —
			// no verification, no unmap, no rebuild. Both applications
			// access the inode concurrently within the group.
			c.Stats.TrustTransfers.Add(1)
			c.trace.Record(telemetry.EvTrustTransfer, appID, ino, se.owner, 0)
			for _, m := range se.groupMappings {
				if m.app == appID && m.Valid() {
					se.lease = c.clock().Add(c.opts.LeaseTTL)
					return m, nil
				}
			}
			if len(se.groupMappings) == 0 && se.mapping != nil {
				se.groupMappings = append(se.groupMappings, se.mapping)
			}
			m := &Mapping{ino: ino, app: appID, ok: true}
			se.groupMappings = append(se.groupMappings, m)
			se.owner = appID
			se.mapping = m
			se.lease = c.clock().Add(c.opts.LeaseTTL)
			c.cost.Map()
			return m, nil
		}
		if c.clock().Before(se.lease) {
			return nil, errBusy(ino, se.owner)
		}
		// Lease expired: involuntary release. The holder may be mid-
		// operation; that is its problem (§4.3 discussion).
		c.Stats.Involuntary.Add(1)
		c.trace.Record(telemetry.EvLeaseExpire, se.owner, ino, int64(appID), 0)
		if err := c.releaseLocked(se, se.owner); err != nil && !IsVerificationError(err) {
			return nil, err
		}
	}
	if err := c.mapLocked(se, appID); err != nil {
		return nil, err
	}
	return se.mapping, nil
}

// mapLocked snapshots ino's core state and establishes app's mapping.
func (c *Controller) mapLocked(se *shadowEnt, appID AppID) error {
	snap, err := c.buildSnapshotLocked(se)
	if err != nil {
		// A kernel-held inode that does not parse is corrupt at rest.
		se.inaccessible = true
		return fmt.Errorf("inode %d unreadable at acquire: %w", se.info.Ino, err)
	}
	se.snap = snap
	se.owner = appID
	se.mapping = &Mapping{ino: se.info.Ino, app: appID, ok: true}
	se.lease = c.clock().Add(c.opts.LeaseTTL)
	c.cost.Map()
	c.trace.Record(telemetry.EvMap, appID, se.info.Ino, 0, 0)
	return nil
}

// buildSnapshotLocked parses and copies the inode's metadata state: the
// rollback point and verification baseline.
func (c *Controller) buildSnapshotLocked(se *shadowEnt) (*snapshot, error) {
	ino := se.info.Ino
	snap := &snapshot{pageData: make(map[uint64][]byte)}
	copyPage := func(p uint64) {
		b := make([]byte, layout.PageSize)
		c.dev.Read(int64(p*layout.PageSize), b)
		snap.pageData[p] = b
	}
	rec := make([]byte, layout.InodeSize)
	c.dev.Read(layout.InodeOff(c.geo, ino), rec)
	snap.inodeRec = rec

	switch se.info.Type {
	case layout.TypeDir:
		dv, err := c.ver.ParseDir(ino)
		if err != nil {
			return nil, err
		}
		old := &verifier.DirOld{Entries: make(map[string]uint64, len(dv.Entries)), Pages: make(map[uint64]bool, len(dv.Pages))}
		for name, d := range dv.Entries {
			old.Entries[name] = d.Ino
		}
		copyPage(se.info.DataRoot)
		for _, p := range dv.Pages {
			old.Pages[p] = true
			copyPage(p)
		}
		snap.dirOld = old
	case layout.TypeFile:
		fv, err := c.ver.ParseFile(ino)
		if err != nil {
			return nil, err
		}
		old := &verifier.FileOld{Blocks: map[uint64]bool{}, MapPages: map[uint64]bool{}, Size: fv.Inode.Size}
		for _, p := range fv.MapPages {
			old.MapPages[p] = true
			copyPage(p)
		}
		for _, b := range fv.Blocks {
			if b != 0 {
				old.Blocks[b] = true
			}
		}
		snap.fileOld = old
	default:
		return nil, fmt.Errorf("inode %d: unknown type %d", ino, se.info.Type)
	}
	return snap, nil
}

// Release returns ino to the kernel: unmap, verify, apply or roll back.
func (c *Controller) Release(appID AppID, ino uint64) error {
	c.syscall()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Stats.Releases.Add(1)
	c.trace.Record(telemetry.EvRelease, appID, ino, 0, 0)
	se, ok := c.shadows[ino]
	if !ok {
		if a := c.apps[appID]; a != nil && a.grantedInos[ino] {
			// LibFS Rule 1 violation: releasing a newly created inode
			// whose parent directory has not been released — from the
			// kernel's perspective it is disconnected from the root.
			return &verifier.FailError{Ino: ino, Reason: "new inode disconnected from the root (I3, LibFS Rule 1)"}
		}
		return fsapi.ErrNotExist
	}
	if se.owner != appID {
		return fmt.Errorf("inode %d not held by app %d: %w", ino, appID, fsapi.ErrPerm)
	}
	return c.releaseLocked(se, appID)
}

func (c *Controller) releaseLocked(se *shadowEnt, appID AppID) error {
	se.mapping.revoke()
	for _, m := range se.groupMappings {
		m.revoke()
	}
	se.groupMappings = nil
	c.cost.Unmap()
	c.trace.Record(telemetry.EvUnmap, appID, se.info.Ino, 0, 0)
	err := c.verifyAndApplyLocked(se, appID, false)
	se.owner = 0
	se.mapping = nil
	se.snap = nil
	return err
}

// Commit verifies ino's current state without releasing it [Trio §4.3]:
// for a pending (newly created) inode it performs the Rule-1 commit; for
// a held committed inode it applies the verified delta and refreshes the
// baseline snapshot. The mapping stays valid on success.
func (c *Controller) Commit(appID AppID, ino uint64) error {
	c.syscall()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Stats.Commits.Add(1)
	c.trace.Record(telemetry.EvCommit, appID, ino, 0, 0)
	se, ok := c.shadows[ino]
	if !ok {
		if a := c.apps[appID]; a != nil && a.grantedInos[ino] {
			return &verifier.FailError{Ino: ino, Reason: "new inode disconnected from the root (I3, LibFS Rule 1)"}
		}
		return fsapi.ErrNotExist
	}
	if se.owner != appID {
		return fmt.Errorf("inode %d not held by app %d: %w", ino, appID, fsapi.ErrPerm)
	}
	return c.verifyAndApplyLocked(se, appID, true)
}

// ForceRelease revokes and verifies ino regardless of lease state —
// the involuntary-release path, also used by tests to simulate an
// application crash.
func (c *Controller) ForceRelease(ino uint64) error {
	c.syscall()
	c.mu.Lock()
	defer c.mu.Unlock()
	se, ok := c.shadows[ino]
	if !ok || se.owner == 0 {
		return fsapi.ErrNotExist
	}
	c.Stats.Involuntary.Add(1)
	return c.releaseLocked(se, se.owner)
}

// verifyAndApplyLocked runs the verifier on se's current core state and
// applies the verdict. keepHeld distinguishes Commit from Release.
func (c *Controller) verifyAndApplyLocked(se *shadowEnt, appID AppID, keepHeld bool) error {
	c.Stats.Verifications.Add(1)
	ino := se.info.Ino

	if !se.info.Committed {
		// Rule-1 commit of a newly created inode.
		res, err := c.ver.VerifyNewInode(appID, ino, se.info.Parent, lockedView{c})
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicyLocked(se)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, int64(res.ChildCount), int64(len(res.Pages)))
		c.applyNewInodeLocked(se, appID, res)
		if keepHeld {
			return c.refreshSnapshotLocked(se, appID)
		}
		return nil
	}

	switch se.info.Type {
	case layout.TypeDir:
		res, err := c.ver.VerifyDir(appID, ino, se.snap.dirOld, lockedView{c})
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicyLocked(se)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, int64(res.View.Records), int64(len(res.View.Pages)))
		c.applyDirLocked(se, appID, res)
	case layout.TypeFile:
		res, err := c.ver.VerifyFile(appID, ino, se.snap.fileOld, lockedView{c})
		if err != nil {
			c.Stats.VerifyFailures.Add(1)
			c.trace.Record(telemetry.EvVerifyFail, appID, ino, 0, 0)
			c.applyPolicyLocked(se)
			return err
		}
		c.trace.Record(telemetry.EvVerifyOK, appID, ino, 0, int64(len(res.View.MapPages)))
		c.applyFileLocked(se, res)
	default:
		return fmt.Errorf("inode %d: unknown shadow type %d", ino, se.info.Type)
	}
	if keepHeld {
		return c.refreshSnapshotLocked(se, appID)
	}
	return nil
}

func (c *Controller) refreshSnapshotLocked(se *shadowEnt, appID AppID) error {
	snap, err := c.buildSnapshotLocked(se)
	if err != nil {
		return fmt.Errorf("inode %d unreadable after commit: %w", se.info.Ino, err)
	}
	se.snap = snap
	_ = appID
	return nil
}

// applyPolicyLocked handles a verification failure.
func (c *Controller) applyPolicyLocked(se *shadowEnt) {
	switch c.opts.Policy {
	case PolicyRollback:
		c.Stats.Rollbacks.Add(1)
		if se.snap != nil {
			c.dev.Write(layout.InodeOff(c.geo, se.info.Ino), se.snap.inodeRec)
			c.dev.Persist(layout.InodeOff(c.geo, se.info.Ino), layout.InodeSize)
			for p, data := range se.snap.pageData {
				c.dev.Write(int64(p*layout.PageSize), data)
				c.dev.Persist(int64(p*layout.PageSize), layout.PageSize)
			}
		} else {
			// A pending inode has no snapshot: discard it entirely.
			layout.FreeInode(c.dev, c.geo, se.info.Ino)
			c.dev.Persist(layout.InodeOff(c.geo, se.info.Ino), layout.InodeSize)
			delete(c.shadows, se.info.Ino)
			c.inoFree = append(c.inoFree, se.info.Ino)
		}
	case PolicyMarkInaccessible:
		se.inaccessible = true
	}
}

// writeShadowLocked mirrors se to the PM shadow table.
func (c *Controller) writeShadowLocked(se *shadowEnt) {
	ex := &layout.ShadowExtra{
		ChildCount:   se.info.ChildCount,
		Committed:    se.info.Committed,
		Inaccessible: se.inaccessible,
	}
	layout.WriteShadow(c.dev, c.geo, se.info.Ino, &se.inode, ex)
	layout.PersistShadow(c.dev, c.geo, se.info.Ino)
}

// applyDirLocked commits a successful directory verification.
func (c *Controller) applyDirLocked(se *shadowEnt, appID AppID, res *verifier.DirResult) {
	a := c.apps[appID]
	for _, ch := range res.Changes {
		switch ch.Action {
		case verifier.AddNew:
			delete(a.grantedInos, ch.Ino)
			cin, _, _ := layout.ReadInode(c.dev, c.geo, ch.Ino)
			child := &shadowEnt{
				info:  shadowInfoOf(ch.Ino, &cin, 0, false),
				inode: cin,
				owner: appID,
			}
			child.mapping = &Mapping{ino: ch.Ino, app: appID, ok: true}
			child.lease = c.clock().Add(c.opts.LeaseTTL)
			c.shadows[ch.Ino] = child
		case verifier.RelocateIn:
			// Advance the child's verified parent pointer. The Original
			// verifier also tracks parents for files (cross-directory
			// file moves worked in the Trio artifact); its §4.1 defect
			// is on the old-parent side for directories.
			child := c.shadows[ch.Ino]
			child.info.Parent = se.info.Ino
			child.inode.Parent = se.info.Ino
			c.writeShadowLocked(child)
		case verifier.RemoveFile, verifier.RemoveEmptyDir:
			c.freeInodeLocked(ch.Ino)
		case verifier.RenamedAway:
			// Verified at the new parent's commit; nothing to do here.
		}
	}
	se.inode = res.Inode
	se.info.ChildCount = uint32(len(res.View.Entries))
	c.applyPagesLocked(se.info.Ino, res.NewPages, res.FreedPages)
	c.writeShadowLocked(se)
}

func (c *Controller) applyFileLocked(se *shadowEnt, res *verifier.FileResult) {
	se.inode = res.Inode
	c.applyPagesLocked(se.info.Ino, res.NewPages, res.FreedPages)
	c.writeShadowLocked(se)
}

func (c *Controller) applyNewInodeLocked(se *shadowEnt, appID AppID, res *verifier.NewInodeResult) {
	a := c.apps[appID]
	se.inode = res.Inode
	se.info = shadowInfoOf(se.info.Ino, &res.Inode, res.ChildCount, true)
	for _, p := range res.Pages {
		c.pages[p] = ownIno(se.info.Ino)
	}
	for _, ch := range res.PendingChildren {
		delete(a.grantedInos, ch.Ino)
		cin, _, _ := layout.ReadInode(c.dev, c.geo, ch.Ino)
		child := &shadowEnt{
			info:  shadowInfoOf(ch.Ino, &cin, 0, false),
			inode: cin,
			owner: appID,
		}
		child.mapping = &Mapping{ino: ch.Ino, app: appID, ok: true}
		child.lease = c.clock().Add(c.opts.LeaseTTL)
		c.shadows[ch.Ino] = child
	}
	c.writeShadowLocked(se)
}

func (c *Controller) applyPagesLocked(ino uint64, newPages, freed []uint64) {
	for _, p := range newPages {
		c.pages[p] = ownIno(ino)
	}
	if len(freed) > 0 {
		for _, p := range freed {
			c.pages[p] = ownFree
		}
		c.alloc.Free(freed...)
	}
}

// freeInodeLocked reclaims a deleted inode: its pages, its shadow record,
// its PM records, and its number.
func (c *Controller) freeInodeLocked(ino uint64) {
	se, ok := c.shadows[ino]
	if !ok {
		return
	}
	if se.mapping != nil {
		se.mapping.revoke()
	}
	// Reclaim every page the inode owns.
	var freed []uint64
	switch se.info.Type {
	case layout.TypeFile:
		if fv, err := c.ver.ParseFile(ino); err == nil {
			freed = append(freed, fv.MapPages...)
			for _, b := range fv.Blocks {
				if b != 0 {
					freed = append(freed, b)
				}
			}
		}
	case layout.TypeDir:
		if dv, err := c.ver.ParseDir(ino); err == nil {
			freed = append(freed, se.info.DataRoot)
			freed = append(freed, dv.Pages...)
		}
	}
	var reclaim []uint64
	for _, p := range freed {
		if c.pages[p] == ownIno(ino) {
			c.pages[p] = ownFree
			reclaim = append(reclaim, p)
		}
	}
	c.alloc.Free(reclaim...)
	layout.FreeInode(c.dev, c.geo, ino)
	c.dev.Persist(layout.InodeOff(c.geo, ino), layout.InodeSize)
	layout.FreeShadow(c.dev, c.geo, ino)
	layout.PersistShadow(c.dev, c.geo, ino)
	delete(c.shadows, ino)
	c.inoFree = append(c.inoFree, ino)
}
