package kernel

import (
	"strings"
	"testing"

	"arckfs/internal/layout"
	"arckfs/internal/pmem"
	"arckfs/internal/verifier"
)

// buildCommittedTree creates /a/.. structure on a fresh harness and
// releases everything, leaving a clean kernel-held tree:
// /dirA/file1, /dirA/file2, /fileTop.
func buildCommittedTree(h *harness, app AppID) (dirA, file1, file2, fileTop uint64) {
	h.c.Acquire(app, layout.RootIno, true)
	dirA = h.mkdir(app, layout.RootIno, "dirA")
	fileTop = h.mkfile(app, layout.RootIno, "fileTop")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, dirA)
	h.c.Commit(app, fileTop)
	file1 = h.mkfile(app, dirA, "file1")
	file2 = h.mkfile(app, dirA, "file2")
	h.c.Commit(app, dirA)
	h.c.Commit(app, file1)
	h.c.Commit(app, file2)
	for _, ino := range []uint64{file1, file2, fileTop, dirA, layout.RootIno} {
		if err := h.c.Release(app, ino); err != nil {
			h.t.Fatalf("release %d: %v", ino, err)
		}
	}
	return
}

func TestMountCleanTree(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dirA, file1, _, _ := buildCommittedTree(h, app)

	c2, rep, err := Mount(h.dev, Options{Mode: verifier.Enhanced}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean tree not clean: %s", rep)
	}
	if rep.CommittedInodes != 5 { // root, dirA, file1, file2, fileTop
		t.Fatalf("CommittedInodes = %d", rep.CommittedInodes)
	}
	sh, ok := c2.ShadowOf(dirA)
	if !ok || sh.ChildCount != 2 || sh.Parent != layout.RootIno {
		t.Fatalf("dirA shadow after mount: %+v ok=%v", sh, ok)
	}
	if _, ok := c2.ShadowOf(file1); !ok {
		t.Fatal("file1 lost across mount")
	}
	// The remounted system is usable.
	app2 := c2.RegisterApp(0, 0)
	if _, err := c2.Acquire(app2, dirA, true); err != nil {
		t.Fatal(err)
	}
	if err := c2.Release(app2, dirA); err != nil {
		t.Fatal(err)
	}
}

func TestMountRepairsTornDentry(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dirA, _, _, _ := buildCommittedTree(h, app)

	// Forge the §4.2 crash signature inside dirA's log: a record with a
	// valid commit marker whose name bytes are torn (zeroed).
	r, ok := h.findDentry(dirA, "file1")
	if !ok {
		t.Fatal("no file1 dentry")
	}
	h.dev.Zero(r.DevOff()+layout.DentryHeaderSize, 5)

	// Dry run first: reports but does not repair.
	rep, err := Fsck(h.dev, Options{Mode: verifier.Enhanced})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptDentries != 1 {
		t.Fatalf("fsck CorruptDentries = %d", rep.CorruptDentries)
	}
	if d, _ := layout.ReadDentry(h.dev, r); !d.Live {
		t.Fatal("dry-run fsck modified the device")
	}

	// Repairing mount invalidates the torn record and fixes childCount.
	c2, rep, err := Mount(h.dev, Options{Mode: verifier.Enhanced}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptDentries != 1 {
		t.Fatalf("mount CorruptDentries = %d", rep.CorruptDentries)
	}
	if d, _ := layout.ReadDentry(h.dev, r); d.Live {
		t.Fatal("torn dentry not invalidated")
	}
	sh, _ := c2.ShadowOf(dirA)
	if sh.ChildCount != 1 {
		t.Fatalf("dirA childCount = %d after repair", sh.ChildCount)
	}
	// file1's inode became an orphan and was freed.
	if rep.OrphanInodes != 1 {
		t.Fatalf("OrphanInodes = %d", rep.OrphanInodes)
	}
}

func TestMountDropsUncommittedCreation(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	buildCommittedTree(h, app)

	// Simulate a crash mid-workload: a dentry whose inode was granted
	// but never committed (parent never released).
	h.c.Acquire(app, layout.RootIno, true)
	h.mkfile(app, layout.RootIno, "in-flight")
	// Crash now (no release): remount from current device state.
	c2, rep, err := Mount(h.dev, Options{Mode: verifier.Enhanced}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DanglingEntries != 1 {
		t.Fatalf("DanglingEntries = %d", rep.DanglingEntries)
	}
	app2 := c2.RegisterApp(0, 0)
	if _, err := c2.Acquire(app2, layout.RootIno, true); err != nil {
		t.Fatal(err)
	}
	sh, _ := c2.ShadowOf(layout.RootIno)
	if sh.ChildCount != 2 { // dirA + fileTop survive; in-flight dropped
		t.Fatalf("root childCount = %d", sh.ChildCount)
	}
}

func TestMountRestoresInodeFromShadow(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	_, file1, _, _ := buildCommittedTree(h, app)

	// Scribble over file1's LibFS inode record (crash tore it).
	h.dev.Zero(layout.InodeOff(h.g, file1), layout.InodeSize)
	c2, rep, err := Mount(h.dev, Options{Mode: verifier.Enhanced}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoredInodes != 1 {
		t.Fatalf("RestoredInodes = %d", rep.RestoredInodes)
	}
	in, ok, corrupt := layout.ReadInode(h.dev, h.g, file1)
	if !ok || corrupt || in.Type != layout.TypeFile {
		t.Fatalf("inode not restored: ok=%v corrupt=%v %+v", ok, corrupt, in)
	}
	if _, ok := c2.ShadowOf(file1); !ok {
		t.Fatal("file1 shadow missing")
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	dev := pmem.New(64*layout.PageSize, nil)
	if _, _, err := Mount(dev, Options{}, true); err == nil {
		t.Fatal("mount of unformatted device succeeded")
	}
}

func TestMountReclaimsPendingShadows(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	buildCommittedTree(h, app)

	// Create a file and release the parent (child becomes pending) but
	// crash before committing the child.
	h.c.Acquire(app, layout.RootIno, true)
	ino := h.mkfile(app, layout.RootIno, "pending-child")
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if sh, ok := h.c.ShadowOf(ino); !ok || sh.Committed {
		t.Fatal("setup: child should be pending")
	}
	// Crash + remount: the pending shadow was never persisted as
	// committed, so the creation is dropped and the dentry dangles.
	_, rep, err := Mount(h.dev, Options{Mode: verifier.Enhanced}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DanglingEntries != 1 {
		t.Fatalf("DanglingEntries = %d: %s", rep.DanglingEntries, rep)
	}
}

func TestReportString(t *testing.T) {
	r := Report{CommittedInodes: 3, CorruptDentries: 1}
	if !strings.Contains(r.String(), "corruptDentries=1") {
		t.Fatalf("Report.String() = %q", r.String())
	}
	if r.Clean() {
		t.Fatal("corrupt report claims clean")
	}
	if !(Report{CommittedInodes: 3}).Clean() {
		t.Fatal("clean report claims dirty")
	}
}
