package kernel

import (
	"fmt"
	"sort"

	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
)

// Report summarizes what recovery (or a dry-run check) found on a device.
type Report struct {
	CommittedInodes int
	// CorruptDentries counts committed records whose name hash or length
	// was torn — the §4.2 partial-persist signature.
	CorruptDentries int
	// DanglingEntries counts live dentries referencing inodes that were
	// never committed (creations lost to a crash) or whose verified
	// parent is a different directory.
	DanglingEntries int
	// RestoredInodes counts LibFS inode records rebuilt from the shadow
	// table.
	RestoredInodes int
	// OrphanInodes counts committed shadow inodes unreachable from the
	// root, freed by recovery.
	OrphanInodes int
	// LeakedPages reports the size of the rebuilt free pool: every data
	// page not referenced by the surviving tree, including pages leaked
	// by crashes mid-allocation.
	LeakedPages int
}

func (r Report) String() string {
	return fmt.Sprintf("inodes=%d corruptDentries=%d danglingEntries=%d restoredInodes=%d orphans=%d leakedPages=%d",
		r.CommittedInodes, r.CorruptDentries, r.DanglingEntries, r.RestoredInodes, r.OrphanInodes, r.LeakedPages)
}

// Clean reports whether nothing needed repair.
func (r Report) Clean() bool {
	return r.CorruptDentries == 0 && r.DanglingEntries == 0 &&
		r.RestoredInodes == 0 && r.OrphanInodes == 0
}

// Mount recovers a formatted device. It trusts the PM shadow table,
// reconciles every committed inode's LibFS core state against it
// (repairing torn dentries and dropping uncommitted creations), rebuilds
// page ownership, and returns everything unreachable to the allocator.
//
// When repair is false the device is not modified (fsck dry-run); the
// returned controller is still usable for inspection but repairs that
// would have been persisted are only counted.
func Mount(dev *pmem.Device, opts Options, repair bool) (*Controller, *Report, error) {
	opts.fill()
	g, err := layout.Load(dev)
	if err != nil {
		return nil, nil, err
	}
	opts.InodeCap = g.InodeCap
	c := newController(dev, g, opts)
	rep := &Report{}

	// Pass 1: read the shadow table — the trusted ground truth.
	for ino := uint64(1); ino < g.InodeCap; ino++ {
		sin, ex, ok, corrupt := layout.ReadShadow(dev, g, ino)
		if corrupt {
			return nil, nil, fmt.Errorf("kernel: shadow record %d corrupt; shadow table writes are fenced, device damaged", ino)
		}
		if !ok || !ex.Committed {
			// Pending shadows (crash before the child committed) are
			// dropped: the creation never completed.
			continue
		}
		c.shadows[ino] = &shadowEnt{
			info:  shadowInfoOf(ino, &sin, ex.ChildCount, true),
			inode: sin,
		}
		if ex.Inaccessible {
			c.shadows[ino].inaccessible = true
		}
	}
	if _, ok := c.shadows[layout.RootIno]; !ok {
		return nil, nil, fmt.Errorf("kernel: no committed root shadow")
	}

	// Pass 2: restore LibFS inode records that disagree with the shadow
	// (zeroed or torn by a crash mid-create).
	for ino, se := range c.shadows {
		in, ok, corrupt := layout.ReadInode(dev, g, ino)
		if ok && !corrupt && in.Type == se.info.Type && in.DataRoot == se.info.DataRoot {
			continue
		}
		rep.RestoredInodes++
		if repair {
			layout.WriteInode(dev, g, ino, &se.inode)
			dev.Persist(layout.InodeOff(g, ino), layout.InodeSize)
		}
	}

	// Pass 3: reachability walk from the root, reconciling each
	// directory's dentry log against the shadow table.
	reachable := map[uint64]bool{layout.RootIno: true}
	queue := []uint64{layout.RootIno}
	for len(queue) > 0 {
		dirIno := queue[0]
		queue = queue[1:]
		se := c.shadows[dirIno]
		if se.info.Type != layout.TypeDir {
			continue
		}
		children := c.reconcileDir(dirIno, se, rep, repair)
		// Recount children after repair.
		se.info.ChildCount = uint32(len(children))
		if repair {
			c.writeShadowLocked(se)
		}
		for _, child := range children {
			if !reachable[child] {
				reachable[child] = true
				queue = append(queue, child)
			}
		}
	}

	// Pass 4: free unreachable committed inodes (orphans).
	var orphans []uint64
	for ino := range c.shadows {
		if !reachable[ino] {
			orphans = append(orphans, ino)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, ino := range orphans {
		rep.OrphanInodes++
		if repair {
			layout.FreeInode(dev, g, ino)
			dev.Persist(layout.InodeOff(g, ino), layout.InodeSize)
			layout.FreeShadow(dev, g, ino)
			layout.PersistShadow(dev, g, ino)
		}
		delete(c.shadows, ino)
	}

	// Pass 5: rebuild page ownership and the allocator from the
	// surviving tree.
	var usedPages []uint64
	rep.CommittedInodes = len(c.shadows)
	for ino, se := range c.shadows {
		pages := c.inodePages(ino, se)
		for _, p := range pages {
			c.pages[p] = ownIno(ino)
		}
		usedPages = append(usedPages, pages...)
	}
	c.alloc = pmalloc.NewExcluding(g, usedPages...)
	// Everything not referenced by the surviving tree returns to the free
	// pool; report how many pages that recovered beyond the tree itself.
	rep.LeakedPages = c.alloc.FreeCount()

	// Pass 6: rebuild the inode free list.
	for ino := g.InodeCap - 1; ino >= 2; ino-- {
		if _, used := c.shadows[ino]; !used {
			c.inoFree = append(c.inoFree, ino)
		}
	}
	return c, rep, nil
}

// reconcileDir scans dirIno's dentry log, invalidating corrupt records
// (torn §4.2 commits) and dangling entries, and returns the surviving
// child inode numbers.
func (c *Controller) reconcileDir(dirIno uint64, se *shadowEnt, rep *Report, repair bool) []uint64 {
	var children []uint64
	seen := map[string]bool{}
	seenIno := map[uint64]bool{}
	nt := int(se.info.NTails)
	if se.info.DataRoot == 0 || se.info.DataRoot >= c.geo.PageCount {
		return nil
	}
	for t := 0; t < nt; t++ {
		head := layout.TailHead(c.dev, se.info.DataRoot, t)
		if head == 0 {
			continue
		}
		layout.ScanTail(c.dev, head, func(d layout.Dentry) bool {
			if !d.Live {
				return true
			}
			drop := false
			rd, corrupt := layout.ReadDentry(c.dev, d.Ref)
			switch {
			case corrupt:
				rep.CorruptDentries++
				drop = true
			case seen[rd.Name]:
				rep.DanglingEntries++
				drop = true
			case seenIno[rd.Ino]:
				// A crash between a rename's new-name commit and its
				// old-name invalidation leaves one inode live under two
				// names (found by crashmc's mixed-ops workload). The
				// rename was never kernel-verified, so the earlier record
				// wins and the later duplicate is dropped.
				rep.DanglingEntries++
				drop = true
			default:
				child, ok := c.shadows[rd.Ino]
				if !ok || child.info.Parent != dirIno {
					// Never committed, or verified under another parent.
					rep.DanglingEntries++
					drop = true
				}
			}
			if drop {
				if repair {
					layout.InvalidateDentry(c.dev, d.Ref)
					c.dev.Persist(d.Ref.MarkerOff(), 2)
				}
				return true
			}
			seen[rd.Name] = true
			seenIno[rd.Ino] = true
			children = append(children, rd.Ino)
			return true
		})
	}
	return children
}

// inodePages lists every page ino's structure references (best effort on
// a reconciled tree).
func (c *Controller) inodePages(ino uint64, se *shadowEnt) []uint64 {
	var pages []uint64
	switch se.info.Type {
	case layout.TypeDir:
		if se.info.DataRoot == 0 || se.info.DataRoot >= c.geo.PageCount {
			return nil
		}
		pages = append(pages, se.info.DataRoot)
		for t := 0; t < int(se.info.NTails); t++ {
			head := layout.TailHead(c.dev, se.info.DataRoot, t)
			for p := head; p != 0 && p < c.geo.PageCount; p = layout.NextPage(c.dev, p) {
				pages = append(pages, p)
				if len(pages) > 1<<20 {
					return pages
				}
			}
		}
	case layout.TypeFile:
		if fv, err := c.ver.ParseFile(ino); err == nil {
			pages = append(pages, fv.MapPages...)
			for _, b := range fv.Blocks {
				if b != 0 {
					pages = append(pages, b)
				}
			}
		} else if se.info.DataRoot != 0 && se.info.DataRoot < c.geo.PageCount {
			pages = append(pages, layout.MapChainPages(c.dev, se.info.DataRoot)...)
		}
	}
	return pages
}

// Fsck runs recovery analysis without modifying the device.
func Fsck(dev *pmem.Device, opts Options) (*Report, error) {
	_, rep, err := Mount(dev, opts, false)
	return rep, err
}
