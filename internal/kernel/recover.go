package kernel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arckfs/internal/layout"
	"arckfs/internal/pmalloc"
	"arckfs/internal/pmem"
	"arckfs/internal/telemetry"
)

// Report summarizes what recovery (or a dry-run check) found on a device.
type Report struct {
	CommittedInodes int
	// CorruptDentries counts committed records whose name hash or length
	// was torn — the §4.2 partial-persist signature.
	CorruptDentries int
	// DanglingEntries counts live dentries referencing inodes that were
	// never committed (creations lost to a crash) or whose verified
	// parent is a different directory.
	DanglingEntries int
	// RestoredInodes counts LibFS inode records rebuilt from the shadow
	// table.
	RestoredInodes int
	// OrphanInodes counts committed shadow inodes unreachable from the
	// root, freed by recovery.
	OrphanInodes int
	// LeakedPages reports the size of the rebuilt free pool: every data
	// page not referenced by the surviving tree, including pages leaked
	// by crashes mid-allocation.
	LeakedPages int
}

func (r Report) String() string {
	return fmt.Sprintf("inodes=%d corruptDentries=%d danglingEntries=%d restoredInodes=%d orphans=%d leakedPages=%d",
		r.CommittedInodes, r.CorruptDentries, r.DanglingEntries, r.RestoredInodes, r.OrphanInodes, r.LeakedPages)
}

// Clean reports whether nothing needed repair.
func (r Report) Clean() bool {
	return r.CorruptDentries == 0 && r.DanglingEntries == 0 &&
		r.RestoredInodes == 0 && r.OrphanInodes == 0
}

// recoverWorkers resolves Options.RecoverWorkers to a pool size.
func recoverWorkers(opts Options) int {
	w := opts.RecoverWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelEach runs fn(worker, i) for every i in [0, n) on a bounded
// worker pool. Callers keep results deterministic by writing into
// index-i slots and merging sequentially afterwards.
func parallelEach(workers, n int, fn func(worker, i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Mount recovers a formatted device. It trusts the PM shadow table,
// reconciles every committed inode's LibFS core state against it
// (repairing torn dentries and dropping uncommitted creations), rebuilds
// page ownership, and returns everything unreachable to the allocator.
//
// The inode-table scans (passes 1, 2 and 5) and each reachability
// level's directory reconciliations (pass 3) run on a bounded worker
// pool (Options.RecoverWorkers); per-chunk results merge in index order,
// so the report and the recovered state are identical to a serial run.
//
// When repair is false the device is not modified (fsck dry-run); the
// returned controller is still usable for inspection but repairs that
// would have been persisted are only counted.
func Mount(dev *pmem.Device, opts Options, repair bool) (*Controller, *Report, error) {
	opts.fill()
	g, err := layout.Load(dev)
	if err != nil {
		return nil, nil, err
	}
	opts.InodeCap = g.InodeCap
	c := newController(dev, g, opts)
	rep := &Report{}
	workers := recoverWorkers(opts)

	// endPass reports each recovery pass's duration to the mount span
	// (0-based, in the order the passes run below).
	passBegin := time.Now()
	endPass := func(i int) {
		if opts.Span != nil {
			opts.Span.SpanEvent(telemetry.SpanEvRecoveryPass, int64(i),
				time.Since(passBegin).Nanoseconds())
		}
		// Whitebox kill site for crash-during-recovery testing (always on
		// the mounting goroutine — passes end sequentially even when their
		// interior parallelizes, so an armed kill unwinds Mount itself).
		pmem.Killpoint("kernel.recover.pass")
		passBegin = time.Now()
	}

	// Pass 1: read the shadow table — the trusted ground truth — in
	// contiguous inode chunks. Workers only parse; the merge into the
	// shard maps is sequential, in chunk order.
	type p1ent struct {
		ino uint64
		se  *shadowEnt
	}
	nchunk := workers
	span := (g.InodeCap - 1 + uint64(nchunk) - 1) / uint64(nchunk)
	if span == 0 {
		span = 1
	}
	chunkEnts := make([][]p1ent, nchunk)
	chunkErr := make([]error, nchunk)
	parallelEach(workers, nchunk, func(_, i int) {
		lo := 1 + uint64(i)*span
		hi := lo + span
		if hi > g.InodeCap {
			hi = g.InodeCap
		}
		for ino := lo; ino < hi; ino++ {
			sin, ex, ok, corrupt := layout.ReadShadow(dev, g, ino)
			if corrupt {
				chunkErr[i] = fmt.Errorf("kernel: shadow record %d corrupt; shadow table writes are fenced, device damaged", ino)
				return
			}
			if !ok || !ex.Committed {
				// Pending shadows (crash before the child committed) are
				// dropped: the creation never completed.
				continue
			}
			se := &shadowEnt{
				info:  shadowInfoOf(ino, &sin, ex.ChildCount, true),
				inode: sin,
			}
			if ex.Inaccessible {
				se.inaccessible = true
			}
			chunkEnts[i] = append(chunkEnts[i], p1ent{ino, se})
		}
	})
	for i := 0; i < nchunk; i++ {
		if chunkErr[i] != nil {
			return nil, nil, chunkErr[i]
		}
		for _, e := range chunkEnts[i] {
			c.shardOf(e.ino).m[e.ino] = e.se
		}
	}
	if c.shadowGet(layout.RootIno, nil) == nil {
		return nil, nil, fmt.Errorf("kernel: no committed root shadow")
	}
	endPass(0)

	// Pass 2: restore LibFS inode records that disagree with the shadow
	// (zeroed or torn by a crash mid-create). Each inode's check and
	// repair is independent; per-worker counters sum deterministically.
	inos := c.sortedInos()
	restored := make([]int, workers)
	parallelEach(workers, len(inos), func(w, i int) {
		ino := inos[i]
		se := c.shadowGet(ino, nil)
		in, ok, corrupt := layout.ReadInode(dev, g, ino)
		if ok && !corrupt && in.Type == se.info.Type && in.DataRoot == se.info.DataRoot {
			return
		}
		restored[w]++
		if repair {
			layout.WriteInode(dev, g, ino, &se.inode)
			dev.Persist(layout.InodeOff(g, ino), layout.InodeSize)
		}
	})
	for _, n := range restored {
		rep.RestoredInodes += n
	}
	endPass(1)

	// Pass 3: reachability walk from the root, reconciling each
	// directory's dentry log against the shadow table. Directories on
	// the same level are independent (an entry only survives under its
	// shadow-verified parent), so each level fans out on the pool;
	// children and report deltas merge in level order, keeping the walk
	// order — and every repair — identical to a serial BFS.
	reachable := map[uint64]bool{layout.RootIno: true}
	level := []uint64{layout.RootIno}
	for len(level) > 0 {
		levelChildren := make([][]uint64, len(level))
		levelReps := make([]Report, len(level))
		parallelEach(workers, len(level), func(_, i int) {
			se := c.shadowGet(level[i], nil)
			if se.info.Type != layout.TypeDir {
				return
			}
			children := c.reconcileDir(level[i], se, &levelReps[i], repair)
			// Recount children after repair.
			se.info.ChildCount = uint32(len(children))
			if repair {
				c.writeShadow(se)
			}
			levelChildren[i] = children
		})
		var next []uint64
		for i := range level {
			rep.CorruptDentries += levelReps[i].CorruptDentries
			rep.DanglingEntries += levelReps[i].DanglingEntries
			for _, child := range levelChildren[i] {
				if !reachable[child] {
					reachable[child] = true
					next = append(next, child)
				}
			}
		}
		level = next
	}
	endPass(2)

	// Pass 4: free unreachable committed inodes (orphans).
	var orphans []uint64
	c.shadowRange(func(ino uint64, se *shadowEnt) {
		if !reachable[ino] {
			orphans = append(orphans, ino)
		}
	})
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, ino := range orphans {
		rep.OrphanInodes++
		if repair {
			layout.FreeInode(dev, g, ino)
			dev.Persist(layout.InodeOff(g, ino), layout.InodeSize)
			layout.FreeShadow(dev, g, ino)
			layout.PersistShadow(dev, g, ino)
		}
		c.shadowDelete(ino, nil)
	}
	endPass(3)

	// Pass 5: rebuild page ownership and the allocator from the
	// surviving tree. Workers enumerate each inode's pages; the merge —
	// owner words and the used set — is sequential in sorted inode
	// order, so duplicate claims resolve deterministically.
	rep.CommittedInodes = c.shadowCount()
	inos = c.sortedInos()
	inoPageLists := make([][]uint64, len(inos))
	parallelEach(workers, len(inos), func(_, i int) {
		inoPageLists[i] = c.inodePages(inos[i], c.shadowGet(inos[i], nil))
	})
	var usedPages []uint64
	for i, ino := range inos {
		for _, p := range inoPageLists[i] {
			c.pages[p] = ownIno(ino)
		}
		usedPages = append(usedPages, inoPageLists[i]...)
	}
	c.alloc = pmalloc.NewExcluding(g, usedPages...)
	c.alloc.ConfigureNUMA(c.opts.NUMANodes, c.cost)
	// Everything not referenced by the surviving tree returns to the free
	// pool; report how many pages that recovered beyond the tree itself.
	rep.LeakedPages = c.alloc.FreeCount()
	endPass(4)

	// Pass 6: rebuild the inode free list.
	for ino := g.InodeCap - 1; ino >= 2; ino-- {
		if _, used := c.shardOf(ino).m[ino]; !used {
			c.inoFree = append(c.inoFree, ino)
		}
	}
	endPass(5)
	return c, rep, nil
}

// sortedInos lists every shadow entry's inode number in ascending order
// (mount-time callers; no locking discipline needed).
func (c *Controller) sortedInos() []uint64 {
	inos := make([]uint64, 0, c.shadowCount())
	c.shadowRange(func(ino uint64, se *shadowEnt) {
		inos = append(inos, ino)
	})
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}

// reconcileDir scans dirIno's dentry log, invalidating corrupt records
// (torn §4.2 commits) and dangling entries, and returns the surviving
// child inode numbers.
func (c *Controller) reconcileDir(dirIno uint64, se *shadowEnt, rep *Report, repair bool) []uint64 {
	var children []uint64
	seen := map[string]bool{}
	seenIno := map[uint64]bool{}
	nt := int(se.info.NTails)
	if se.info.DataRoot == 0 || se.info.DataRoot >= c.geo.PageCount {
		return nil
	}
	for t := 0; t < nt; t++ {
		head := layout.TailHead(c.dev, se.info.DataRoot, t)
		if head == 0 {
			continue
		}
		layout.ScanTail(c.dev, head, func(d layout.Dentry) bool {
			if !d.Live {
				return true
			}
			drop := false
			rd, corrupt := layout.ReadDentry(c.dev, d.Ref)
			switch {
			case corrupt:
				rep.CorruptDentries++
				drop = true
			case seen[rd.Name]:
				rep.DanglingEntries++
				drop = true
			case seenIno[rd.Ino]:
				// A crash between a rename's new-name commit and its
				// old-name invalidation leaves one inode live under two
				// names (found by crashmc's mixed-ops workload). The
				// rename was never kernel-verified, so the earlier record
				// wins and the later duplicate is dropped.
				rep.DanglingEntries++
				drop = true
			default:
				child := c.shadowGet(rd.Ino, nil)
				if child == nil || child.info.Parent != dirIno {
					// Never committed, or verified under another parent.
					rep.DanglingEntries++
					drop = true
				}
			}
			if drop {
				if repair {
					layout.InvalidateDentry(c.dev, d.Ref)
					c.dev.Persist(d.Ref.MarkerOff(), 2)
				}
				return true
			}
			seen[rd.Name] = true
			seenIno[rd.Ino] = true
			children = append(children, rd.Ino)
			return true
		})
	}
	return children
}

// inodePages lists every page ino's structure references (best effort on
// a reconciled tree).
func (c *Controller) inodePages(ino uint64, se *shadowEnt) []uint64 {
	var pages []uint64
	switch se.info.Type {
	case layout.TypeDir:
		if se.info.DataRoot == 0 || se.info.DataRoot >= c.geo.PageCount {
			return nil
		}
		pages = append(pages, se.info.DataRoot)
		for t := 0; t < int(se.info.NTails); t++ {
			head := layout.TailHead(c.dev, se.info.DataRoot, t)
			for p := head; p != 0 && p < c.geo.PageCount; p = layout.NextPage(c.dev, p) {
				pages = append(pages, p)
				if len(pages) > 1<<20 {
					return pages
				}
			}
		}
	case layout.TypeFile:
		if fv, err := c.ver.ParseFile(ino); err == nil {
			pages = append(pages, fv.MapPages...)
			for _, b := range fv.Blocks {
				if b != 0 {
					pages = append(pages, b)
				}
			}
		} else if se.info.DataRoot != 0 && se.info.DataRoot < c.geo.PageCount {
			pages = append(pages, layout.MapChainPages(c.dev, se.info.DataRoot)...)
		}
	}
	return pages
}

// Fsck runs recovery analysis without modifying the device.
func Fsck(dev *pmem.Device, opts Options) (*Report, error) {
	_, rep, err := Mount(dev, opts, false)
	return rep, err
}
