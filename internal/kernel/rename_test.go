package kernel

import (
	"strings"
	"testing"

	"arckfs/internal/layout"
	"arckfs/internal/verifier"
)

// rename performs the PM-level mechanics of a directory relocation the
// way a LibFS does: append the dentry in the new parent, invalidate it in
// the old parent, update the child's inode parent field.
func (h *harness) rename(app AppID, oldDir, newDir, child uint64, name string) {
	h.t.Helper()
	pages, err := h.c.GrantPages(app, 0, 2)
	if err != nil {
		h.t.Fatal(err)
	}
	h.appendDentry(newDir, child, name, &pages)
	h.unlink(oldDir, name)
	in, _, _ := layout.ReadInode(h.dev, h.g, child)
	in.Parent = newDir
	layout.WriteInode(h.dev, h.g, child, &in)
	h.dev.Persist(layout.InodeOff(h.g, child), layout.InodeSize)
	h.c.ReturnPages(app, pages)
}

// setupTree builds /dir1/dir3/file1 and /dir2 (the §3.1 initial state),
// all committed and released.
func setupTree(h *harness, app AppID) (dir1, dir2, dir3, file1 uint64) {
	h.c.Acquire(app, layout.RootIno, true)
	dir1 = h.mkdir(app, layout.RootIno, "dir1")
	dir2 = h.mkdir(app, layout.RootIno, "dir2")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, dir1)
	h.c.Commit(app, dir2)
	dir3 = h.mkdir(app, dir1, "dir3")
	h.c.Commit(app, dir1)
	h.c.Commit(app, dir3)
	file1 = h.mkfile(app, dir3, "file1")
	h.c.Commit(app, dir3)
	h.c.Commit(app, file1)
	for _, ino := range []uint64{file1, dir3, dir2, dir1, layout.RootIno} {
		if err := h.c.Release(app, ino); err != nil {
			h.t.Fatalf("setup release %d: %v", ino, err)
		}
	}
	return
}

// TestLegitimateRelocationEnhanced is the Rule-2/Rule-3-compliant
// cross-directory rename of a non-empty directory on ArckFS+.
func TestLegitimateRelocationEnhanced(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dir1, dir2, dir3, _ := setupTree(h, app)

	for _, ino := range []uint64{dir1, dir2, dir3} {
		if _, err := h.c.Acquire(app, ino, true); err != nil {
			t.Fatal(err)
		}
	}
	h.c.RenameLockAcquire(app)
	h.rename(app, dir1, dir2, dir3, "dir3")
	// Rule 2: commit the new parent before releasing the old one.
	if err := h.c.Commit(app, dir2); err != nil {
		t.Fatalf("new parent commit: %v", err)
	}
	h.c.RenameLockRelease(app)

	sh, _ := h.c.ShadowOf(dir3)
	if sh.Parent != dir2 {
		t.Fatalf("dir3 parent = %d, want %d", sh.Parent, dir2)
	}
	// Old parent release now passes: the missing child was renamed away.
	if err := h.c.Release(app, dir1); err != nil {
		t.Fatalf("old parent release: %v", err)
	}
	for _, ino := range []uint64{dir2, dir3} {
		if err := h.c.Release(app, ino); err != nil {
			t.Fatal(err)
		}
	}
	d1, _ := h.c.ShadowOf(dir1)
	d2, _ := h.c.ShadowOf(dir2)
	if d1.ChildCount != 0 || d2.ChildCount != 1 {
		t.Fatalf("childCounts: dir1=%d dir2=%d", d1.ChildCount, d2.ChildCount)
	}
}

// TestBug41OriginalRejectsLegitimateRename shows the §4.1 bug: the same
// compliant relocation fails verification on the old parent under the
// original (Trio artifact) verifier, because it cannot distinguish a
// renamed child from a deleted one.
func TestBug41OriginalRejectsLegitimateRename(t *testing.T) {
	h := newHarness(t, verifier.Original)
	app := h.c.RegisterApp(0, 0)
	dir1, dir2, dir3, _ := setupTree(h, app)

	for _, ino := range []uint64{dir1, dir2, dir3} {
		h.c.Acquire(app, ino, true)
	}
	h.rename(app, dir1, dir2, dir3, "dir3")
	if err := h.c.Commit(app, dir2); err != nil {
		t.Fatalf("new parent commit under original verifier: %v", err)
	}
	err := h.c.Release(app, dir1)
	if !IsVerificationError(err) {
		t.Fatalf("old parent release = %v, want I3 verification failure (the bug)", err)
	}
	if !strings.Contains(err.Error(), "I3") {
		t.Fatalf("unexpected failure reason: %v", err)
	}
}

// TestAttackScenario31 replays the paper's §3.1 attack step by step and
// checks Trio detects it without exposing a vulnerability.
func TestAttackScenario31(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app1 := h.c.RegisterApp(1, 1) // malicious
	app2 := h.c.RegisterApp(2, 2) // well-behaved
	dir1, dir2, dir3, file1 := setupTree(h, app1)
	// App1 lacks write permission on dir3 and file1.
	h.c.SetACL(dir3, app1, layout.PermRead)
	h.c.SetACL(file1, app1, layout.PermRead)

	// Step 1: App1 acquires dir1 and dir2.
	if _, err := h.c.Acquire(app1, dir1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Acquire(app1, dir2, true); err != nil {
		t.Fatal(err)
	}
	// Step 2: App1 moves dir3 to dir2 via rename() — without following
	// Rules 2/3 (it never commits dir2).
	h.rename(app1, dir1, dir2, dir3, "dir3")

	// Step 3: App2 attempts to acquire dir1 (blocked: App1 holds it).
	if _, err := h.c.Acquire(app2, dir1, false); err == nil {
		t.Fatal("App2 acquired dir1 while App1 held it")
	}

	// Step 4: App1 releases dir1 — verification fails (dir3 missing and
	// non-empty: I3), and dir1 is rolled back with dir3 intact.
	if err := h.c.Release(app1, dir1); !IsVerificationError(err) {
		t.Fatalf("step 4 release = %v, want verification failure", err)
	}
	if _, ok := h.findDentry(dir1, "dir3"); !ok {
		t.Fatal("rollback did not preserve dir3 under dir1")
	}

	// Step 5: App2 acquires dir1 and sees dir3.
	if _, err := h.c.Acquire(app2, dir1, false); err != nil {
		t.Fatal(err)
	}
	sh3, ok := h.c.ShadowOf(dir3)
	if !ok || sh3.Parent != dir1 || sh3.ChildCount != 1 {
		t.Fatalf("dir3 shadow after rollback: %+v ok=%v", sh3, ok)
	}

	// Step 6: App1 corrupts dir2 (scribbles over its log) and releases.
	d2in, _, _ := layout.ReadInode(h.dev, h.g, dir2)
	head := layout.TailHead(h.dev, d2in.DataRoot, 0)
	h.dev.Write(int64(head*layout.PageSize)+2, []byte("garbage-garbage-garbage"))
	if err := h.c.Release(app1, dir2); !IsVerificationError(err) {
		t.Fatalf("step 6 release = %v, want verification failure", err)
	}
	// dir2 was rolled back to its initial, empty state.
	sh2, _ := h.c.ShadowOf(dir2)
	if sh2.ChildCount != 0 {
		t.Fatalf("dir2 childCount after rollback = %d", sh2.ChildCount)
	}
	// dir3 and file1 survived the attack.
	if _, ok := h.c.ShadowOf(file1); !ok {
		t.Fatal("file1 lost")
	}
}

// TestFigure2CircularDependency replays Figure 2: renaming a non-empty
// directory under a newly created sibling deadlocks Rules (1) and (2),
// and Rule (3) — committing the new parent before the rename — resolves
// it.
func TestFigure2CircularDependency(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)

	// Build /dir0/dir2/file, committed; keep dir0 and dir2 held.
	h.c.Acquire(app, layout.RootIno, true)
	dir0 := h.mkdir(app, layout.RootIno, "dir0")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, dir0)
	dir2 := h.mkdir(app, dir0, "dir2")
	h.c.Commit(app, dir0)
	h.c.Commit(app, dir2)
	h.mkfile(app, dir2, "file")
	h.c.Commit(app, dir2)

	// Create the new sibling dir1 under dir0 — NOT yet known to the
	// kernel (dir0 not committed since).
	dir1 := h.mkdir(app, dir0, "dir1")

	// Perform the rename dir2 -> dir1/dir2 naively.
	h.c.RenameLockAcquire(app)
	h.rename(app, dir0, dir1, dir2, "dir2")

	// The circular dependency: dir1 cannot commit (Rule 1 — its parent
	// dir0 has not been released/committed since dir1's creation)...
	if err := h.c.Commit(app, dir1); !IsVerificationError(err) {
		t.Fatalf("commit dir1 = %v, want Rule-1 failure", err)
	}
	// ...and dir0 cannot be released (Rule 2 — dir2 is gone but its
	// verified parent is still dir0 and it is non-empty: I3).
	if err := h.c.Release(app, dir0); !IsVerificationError(err) {
		t.Fatalf("release dir0 = %v, want I3 failure", err)
	}
	h.c.RenameLockRelease(app)

	// --- Rule (3) resolution, from the rolled-back state -------------
	// (the failed release rolled dir0 back and returned it to the
	// kernel; dir1's creation and the rename were undone with it).
	if _, err := h.c.Acquire(app, dir0, true); err != nil {
		t.Fatal(err)
	}
	dir1 = h.mkdir(app, dir0, "dir1")
	// Rule 3: commit the new parent before performing the rename.
	if err := h.c.Commit(app, dir0); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Commit(app, dir1); err != nil {
		t.Fatalf("commit dir1 after parent commit: %v", err)
	}
	h.c.RenameLockAcquire(app)
	h.rename(app, dir0, dir1, dir2, "dir2")
	// Rule 2: commit the new parent before releasing the old.
	if err := h.c.Commit(app, dir1); err != nil {
		t.Fatalf("commit dir1 after rename: %v", err)
	}
	h.c.RenameLockRelease(app)
	if err := h.c.Release(app, dir0); err != nil {
		t.Fatalf("release dir0 after compliant rename: %v", err)
	}
	sh2, _ := h.c.ShadowOf(dir2)
	if sh2.Parent != dir1 {
		t.Fatalf("dir2 parent = %d, want dir1=%d", sh2.Parent, dir1)
	}
}

// TestRelocationRequiresRenameLock: a directory relocation without the
// global rename lease is rejected (§4.6 patch).
func TestRelocationRequiresRenameLock(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dir1, dir2, dir3, _ := setupTree(h, app)
	for _, ino := range []uint64{dir1, dir2, dir3} {
		h.c.Acquire(app, ino, true)
	}
	h.rename(app, dir1, dir2, dir3, "dir3")
	err := h.c.Commit(app, dir2)
	if !IsVerificationError(err) || !strings.Contains(err.Error(), "rename lock") {
		t.Fatalf("commit without rename lock = %v", err)
	}
}

// TestRelocationDescendantCheck: renaming a directory into its own
// descendant is rejected (§4.6 case 2).
func TestRelocationDescendantCheck(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dir1, _, dir3, _ := setupTree(h, app)
	// Try to move dir1 into dir3 (dir3 is dir1's grandchild... child).
	h.c.Acquire(app, layout.RootIno, true)
	h.c.Acquire(app, dir1, true)
	h.c.Acquire(app, dir3, true)
	h.c.RenameLockAcquire(app)
	h.rename(app, layout.RootIno, dir3, dir1, "dir1")
	err := h.c.Commit(app, dir3)
	if !IsVerificationError(err) || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("descendant rename commit = %v", err)
	}
	h.c.RenameLockRelease(app)
}

// TestRelocationRequiresOldParentHeld: the new-parent check that the
// releasing LibFS currently holds the old parent (§4.1 patch, check 1).
func TestRelocationRequiresOldParentHeld(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	dir1, dir2, dir3, _ := setupTree(h, app)
	h.c.Acquire(app, dir1, true)
	h.c.Acquire(app, dir2, true)
	h.c.Acquire(app, dir3, true)
	h.c.RenameLockAcquire(app)
	h.rename(app, dir1, dir2, dir3, "dir3")
	// Drop dir1 the wrong way first: release it (fails I3, rolls back,
	// restoring dir3's dentry there) — after which app no longer holds it.
	h.c.Release(app, dir1)
	err := h.c.Commit(app, dir2)
	if !IsVerificationError(err) || !strings.Contains(err.Error(), "old parent") {
		t.Fatalf("commit with old parent released = %v", err)
	}
	h.c.RenameLockRelease(app)
}

// TestFileRenameWithinDirectory: a same-directory rename is a remove+add
// of the same committed inode and needs no rename lock.
func TestFileRenameWithinDirectory(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	ino := h.mkfile(app, layout.RootIno, "old-name")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, ino)
	// Rename: new dentry, invalidate old.
	pages, _ := h.c.GrantPages(app, 0, 1)
	h.appendDentry(layout.RootIno, ino, "new-name", &pages)
	h.unlink(layout.RootIno, "old-name")
	h.c.ReturnPages(app, pages)
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatalf("same-dir rename release: %v", err)
	}
	if _, ok := h.findDentry(layout.RootIno, "new-name"); !ok {
		t.Fatal("new name missing")
	}
	sh, _ := h.c.ShadowOf(ino)
	if sh.Parent != layout.RootIno {
		t.Fatal("parent changed by same-dir rename")
	}
}
