package kernel

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"arckfs/internal/telemetry"
)

// ErrQuota is returned (wrapped, with context) when a grant would push a
// tenant past one of its quota limits.
var ErrQuota = errors.New("kernel: quota exceeded")

// Quota bounds one tenant's consumption of the shared substrate. Zero
// values mean unlimited. Limits apply to *outstanding* grants — pages
// the app holds that no committed inode has adopted, and inode numbers
// granted but not yet bound to a committed creation — so a tenant that
// commits its work keeps operating under a small quota, while one that
// hoards grants hits the wall. Enforcement happens at grant time inside
// the kernel (GrantPages / GrantInodes), not in the untrusted LibFS.
type Quota struct {
	// MaxPages caps outstanding granted pages.
	MaxPages int64
	// MaxInodes caps outstanding granted inode numbers.
	MaxInodes int64
	// CrossingsPerSec rate-limits the tenant's kernel crossings with a
	// GCRA token bucket (burst tolerance ~1/8 s of crossings).
	CrossingsPerSec int64
	// Weight is the tenant's fair-share weight in the crossing admission
	// scheduler (0 = 1): under contention a weight-4 tenant is admitted
	// 4x as often as a weight-1 tenant.
	Weight int64
}

// SetQuota installs (or, with a zero Quota, clears) appID's quota.
// Limits may be raised or lowered while grants — including a parked
// lease reserve — are outstanding: lowering below current usage does not
// revoke anything, it only blocks further grants until usage drains
// below the new limit.
func (c *Controller) SetQuota(appID AppID, q Quota) error {
	defer c.syscall(appID)()
	c.trace.Record(telemetry.EvSetQuota, appID, 0, q.MaxPages, q.MaxInodes)
	a := c.lookupApp(appID)
	if a == nil {
		return fmt.Errorf("kernel: unknown app %d", appID)
	}
	a.maxPages.Store(q.MaxPages)
	a.maxInodes.Store(q.MaxInodes)
	a.weight.Store(q.Weight)
	old := a.crossRate.Swap(q.CrossingsPerSec)
	if q.CrossingsPerSec > 0 {
		c.quotaRates.Store(appID, a)
		if old <= 0 {
			c.rateActive.Add(1)
		}
	} else if old > 0 {
		c.quotaRates.Delete(appID)
		c.rateActive.Add(-1)
	}
	if c.adm != nil {
		c.adm.setWeight(appID, q.Weight)
	}
	return nil
}

// QuotaOf returns appID's quota (introspection; no crossing charged).
func (c *Controller) QuotaOf(appID AppID) (Quota, bool) {
	a := c.lookupApp(appID)
	if a == nil {
		return Quota{}, false
	}
	return Quota{
		MaxPages:        a.maxPages.Load(),
		MaxInodes:       a.maxInodes.Load(),
		CrossingsPerSec: a.crossRate.Load(),
		Weight:          a.weight.Load(),
	}, true
}

// AppUsage is one tenant's live quota/usage snapshot (arckshell's
// `tenants` table and the tenancy registry render these).
type AppUsage struct {
	App           AppID
	PagesOut      int64 // outstanding granted pages
	InodesGranted int64 // outstanding granted inode numbers
	Quota         Quota
}

// Usage snapshots every registered app's outstanding grants and quota,
// sorted by app ID. Introspection only: no crossing is charged.
func (c *Controller) Usage() []AppUsage {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	out := make([]AppUsage, 0, len(c.apps))
	for id, a := range c.apps {
		out = append(out, AppUsage{
			App:           id,
			PagesOut:      a.pagesOut.Load(),
			InodesGranted: int64(len(a.grantedInos)),
			Quota: Quota{
				MaxPages:        a.maxPages.Load(),
				MaxInodes:       a.maxInodes.Load(),
				CrossingsPerSec: a.crossRate.Load(),
				Weight:          a.weight.Load(),
			},
		})
	}
	c.appsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// chargePages reserves n outstanding pages against the app's quota, or
// fails with ErrQuota. The CAS loop keeps concurrent grants by the same
// app from racing past the limit.
func (a *app) chargePages(n int) error {
	for {
		cur := a.pagesOut.Load()
		if max := a.maxPages.Load(); max > 0 && cur+int64(n) > max {
			return fmt.Errorf("app %d: %d pages outstanding, +%d exceeds quota %d: %w",
				a.id, cur, n, max, ErrQuota)
		}
		if a.pagesOut.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// throttleCrossing applies the app's crossings/sec quota: a GCRA token
// bucket over the controller clock with ~1/8 s of burst tolerance.
// Non-conforming crossings block (with a real-time backoff, so a modeled
// clock that tracks real time converges without spinning a core) until
// the bucket drains. Called before admission so a rate-limited tenant
// never parks itself on an admission slot.
func (c *Controller) throttleCrossing(a *app) {
	rate := a.crossRate.Load()
	if rate <= 0 {
		return
	}
	interval := int64(time.Second) / rate
	if interval <= 0 {
		interval = 1
	}
	burst := rate / 8
	if burst < 1 {
		burst = 1
	}
	tau := burst * interval
	throttled := false
	for {
		now := c.now().UnixNano()
		tat := a.rateTAT.Load()
		base := tat
		if base < now {
			base = now
		}
		if base-now > tau {
			// Over rate: the theoretical arrival time has run ahead of
			// the burst tolerance. Wait for real time to catch up.
			if !throttled {
				throttled = true
				c.throttled.Add(1)
			}
			time.Sleep(50 * time.Microsecond)
			continue
		}
		if a.rateTAT.CompareAndSwap(tat, base+interval) {
			return
		}
	}
}
