package kernel

import (
	"errors"
	"testing"
	"time"

	"arckfs/internal/fsapi"
	"arckfs/internal/layout"
	"arckfs/internal/pmem"
	"arckfs/internal/verifier"
)

// --- LibFS-style helpers: build core state the way a LibFS would --------

type harness struct {
	t   *testing.T
	dev *pmem.Device
	c   *Controller
	g   layout.Geometry
}

func newHarness(t *testing.T, mode verifier.Mode) *harness {
	t.Helper()
	dev := pmem.New(512*layout.PageSize, nil)
	c, err := Format(dev, Options{Mode: mode, InodeCap: 256, NTails: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, dev: dev, c: c, g: c.Geometry()}
}

// grant fetches one inode number and n pages for app.
func (h *harness) grant(app AppID, npages int) (uint64, []uint64) {
	h.t.Helper()
	inos, err := h.c.GrantInodes(app, 1)
	if err != nil {
		h.t.Fatal(err)
	}
	var pages []uint64
	if npages > 0 {
		pages, err = h.c.GrantPages(app, 0, npages)
		if err != nil {
			h.t.Fatal(err)
		}
	}
	return inos[0], pages
}

// appendDentry appends a committed dentry to tail 0 of dir's log,
// allocating the tail head from pages if needed, the way a correct LibFS
// would (full §4.2-patched ordering).
func (h *harness) appendDentry(dirIno, childIno uint64, name string, pages *[]uint64) layout.DentryRef {
	h.t.Helper()
	in, ok, _ := layout.ReadInode(h.dev, h.g, dirIno)
	if !ok {
		h.t.Fatalf("dir inode %d unreadable", dirIno)
	}
	head := layout.TailHead(h.dev, in.DataRoot, 0)
	if head == 0 {
		head = (*pages)[0]
		*pages = (*pages)[1:]
		layout.ZeroPage(h.dev, head)
		layout.SetTailHead(h.dev, in.DataRoot, 0, head)
		h.dev.Persist(int64(head*layout.PageSize), layout.PageSize)
		h.dev.Persist(int64(in.DataRoot*layout.PageSize), layout.PageSize)
	}
	// Find the frontier.
	page, off, _ := layout.ScanTail(h.dev, head, nil)
	if !layout.DentryFits(off, len(name)) {
		np := (*pages)[0]
		*pages = (*pages)[1:]
		layout.ZeroPage(h.dev, np)
		h.dev.Persist(int64(np*layout.PageSize), layout.PageSize)
		layout.SetNextPage(h.dev, page, np)
		h.dev.Persist(int64(page*layout.PageSize)+layout.NextPtrOff, 8)
		page, off = np, 0
	}
	r := layout.MakeDentryRef(page, off)
	layout.WriteDentryBody(h.dev, r, childIno, name)
	h.dev.Flush(r.DevOff(), int64(layout.DentryRecLen(len(name))))
	h.dev.Fence()
	layout.CommitDentry(h.dev, r, len(name))
	h.dev.Persist(r.MarkerOff(), 2)
	return r
}

// findDentry locates name in dir's log.
func (h *harness) findDentry(dirIno uint64, name string) (layout.DentryRef, bool) {
	in, _, _ := layout.ReadInode(h.dev, h.g, dirIno)
	for t := 0; t < int(in.NTails); t++ {
		head := layout.TailHead(h.dev, in.DataRoot, t)
		if head == 0 {
			continue
		}
		var found layout.DentryRef
		ok := false
		layout.ScanTail(h.dev, head, func(d layout.Dentry) bool {
			if d.Live && d.Name == name {
				found, ok = d.Ref, true
				return false
			}
			return true
		})
		if ok {
			return found, true
		}
	}
	return 0, false
}

// mkfile creates a regular file named name under dirIno (which app must
// hold), returning the child ino.
func (h *harness) mkfile(app AppID, dirIno uint64, name string) uint64 {
	h.t.Helper()
	ino, pages := h.grant(app, 4)
	in := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead | layout.PermWrite, Nlink: 1, Parent: dirIno}
	layout.WriteInode(h.dev, h.g, ino, &in)
	h.dev.Persist(layout.InodeOff(h.g, ino), layout.InodeSize)
	h.appendDentry(dirIno, ino, name, &pages)
	h.c.ReturnPages(app, pages)
	return ino
}

// mkdir creates a directory named name under dirIno.
func (h *harness) mkdir(app AppID, dirIno uint64, name string) uint64 {
	h.t.Helper()
	ino, pages := h.grant(app, 4)
	tailset := pages[0]
	pages = pages[1:]
	layout.InitTailSet(h.dev, tailset, 2)
	h.dev.Persist(int64(tailset*layout.PageSize), layout.PageSize)
	in := layout.Inode{Type: layout.TypeDir, Perm: layout.PermRead | layout.PermWrite, Nlink: 2, Parent: dirIno, DataRoot: tailset, NTails: 2}
	layout.WriteInode(h.dev, h.g, ino, &in)
	h.dev.Persist(layout.InodeOff(h.g, ino), layout.InodeSize)
	h.appendDentry(dirIno, ino, name, &pages)
	h.c.ReturnPages(app, pages)
	return ino
}

// unlink invalidates name's dentry in dirIno.
func (h *harness) unlink(dirIno uint64, name string) {
	h.t.Helper()
	r, ok := h.findDentry(dirIno, name)
	if !ok {
		h.t.Fatalf("no dentry %q in %d", name, dirIno)
	}
	layout.InvalidateDentry(h.dev, r)
	h.dev.Persist(r.MarkerOff(), 2)
}

// --- Tests ----------------------------------------------------------------

func TestAcquireReleaseNoChanges(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	m, err := h.c.Acquire(app, layout.RootIno, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid() || m.Ino() != layout.RootIno {
		t.Fatal("bad mapping")
	}
	if h.c.OwnerOf(layout.RootIno) != app {
		t.Fatal("owner not recorded")
	}
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if m.Valid() {
		t.Fatal("mapping not revoked at release")
	}
	if h.c.OwnerOf(layout.RootIno) != 0 {
		t.Fatal("owner not cleared")
	}
}

func TestAcquireIdempotentForOwner(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	m1, err := h.c.Acquire(app, layout.RootIno, true)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := h.c.Acquire(app, layout.RootIno, true)
	if err != nil || m1 != m2 {
		t.Fatalf("re-acquire: %v, same=%v", err, m1 == m2)
	}
	h.c.Release(app, layout.RootIno)
}

func TestCreateCommitFlow(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	if _, err := h.c.Acquire(app, layout.RootIno, true); err != nil {
		t.Fatal(err)
	}
	ino := h.mkfile(app, layout.RootIno, "a.txt")

	// The kernel knows nothing about the child yet.
	if _, ok := h.c.ShadowOf(ino); ok {
		t.Fatal("child has a shadow before parent verification")
	}
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	sh, ok := h.c.ShadowOf(ino)
	if !ok || sh.Committed {
		t.Fatalf("child should be pending: ok=%v committed=%v", ok, sh.Committed)
	}
	if sh.Parent != layout.RootIno {
		t.Fatalf("pending parent = %d", sh.Parent)
	}
	root, _ := h.c.ShadowOf(layout.RootIno)
	if root.ChildCount != 1 {
		t.Fatalf("root childCount = %d", root.ChildCount)
	}
	// Rule-1 commit.
	if err := h.c.Commit(app, ino); err != nil {
		t.Fatal(err)
	}
	sh, _ = h.c.ShadowOf(ino)
	if !sh.Committed || sh.Type != layout.TypeFile {
		t.Fatalf("after commit: %+v", sh)
	}
	if err := h.c.Release(app, ino); err != nil {
		t.Fatal(err)
	}
}

func TestRule1CommitBeforeParentReleaseFails(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	ino := h.mkfile(app, layout.RootIno, "early.txt")
	err := h.c.Commit(app, ino)
	if !IsVerificationError(err) {
		t.Fatalf("commit before parent release: %v, want verification failure (Rule 1)", err)
	}
	err = h.c.Release(app, ino)
	if !IsVerificationError(err) {
		t.Fatalf("release before parent release: %v, want verification failure (Rule 1)", err)
	}
}

func TestCommitKeepsOwnershipAndRefreshesBaseline(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	m, _ := h.c.Acquire(app, layout.RootIno, true)
	h.mkfile(app, layout.RootIno, "one")
	if err := h.c.Commit(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if !m.Valid() {
		t.Fatal("commit revoked the mapping")
	}
	if h.c.OwnerOf(layout.RootIno) != app {
		t.Fatal("commit dropped ownership")
	}
	// A second change after the commit verifies against the refreshed
	// baseline.
	h.mkfile(app, layout.RootIno, "two")
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	root, _ := h.c.ShadowOf(layout.RootIno)
	if root.ChildCount != 2 {
		t.Fatalf("childCount = %d", root.ChildCount)
	}
}

func TestUnlinkFreesInodeAndPages(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	ino := h.mkfile(app, layout.RootIno, "gone.txt")
	if err := h.c.Commit(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Commit(app, ino); err != nil {
		t.Fatal(err)
	}
	free := h.c.FreeCount()
	h.unlink(layout.RootIno, "gone.txt")
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.c.ShadowOf(ino); ok {
		t.Fatal("unlinked file still has a shadow")
	}
	if h.c.FreeCount() < free {
		t.Fatalf("pages not reclaimed: %d -> %d", free, h.c.FreeCount())
	}
	_, _, okRec := layout.ReadInode(h.dev, h.g, ino)
	if okRec {
		t.Fatal("inode record not freed")
	}
}

func TestI3RejectsNonEmptyDirRemoval(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	dir := h.mkdir(app, layout.RootIno, "d")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, dir)
	h.mkfile(app, dir, "inner")
	h.c.Commit(app, dir)

	// Delete d's dentry while d still has a child: I3 violation.
	h.unlink(layout.RootIno, "d")
	err := h.c.Release(app, layout.RootIno)
	if !IsVerificationError(err) {
		t.Fatalf("removal of non-empty dir: %v, want I3 failure", err)
	}
	// Rollback restored the dentry.
	if _, ok := h.findDentry(layout.RootIno, "d"); !ok {
		t.Fatal("rollback did not restore the dentry")
	}
	if h.c.Stats.Rollbacks.Load() != 1 {
		t.Fatalf("Rollbacks = %d", h.c.Stats.Rollbacks.Load())
	}
}

func TestEmptyDirRemovalOK(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	dir := h.mkdir(app, layout.RootIno, "d")
	h.c.Commit(app, layout.RootIno)
	h.c.Commit(app, dir)
	h.unlink(layout.RootIno, "d")
	if err := h.c.Release(app, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.c.ShadowOf(dir); ok {
		t.Fatal("removed dir still has a shadow")
	}
}

func TestMarkInaccessiblePolicy(t *testing.T) {
	dev := pmem.New(512*layout.PageSize, nil)
	c, err := Format(dev, Options{Mode: verifier.Enhanced, InodeCap: 256, NTails: 2, Policy: PolicyMarkInaccessible})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, dev: dev, c: c, g: c.Geometry()}
	app := c.RegisterApp(0, 0)
	c.Acquire(app, layout.RootIno, true)
	dir := h.mkdir(app, layout.RootIno, "d")
	c.Commit(app, layout.RootIno)
	c.Commit(app, dir)
	h.mkfile(app, dir, "inner")
	c.Commit(app, dir)
	h.unlink(layout.RootIno, "d")
	if err := c.Release(app, layout.RootIno); !IsVerificationError(err) {
		t.Fatalf("expected verification failure, got %v", err)
	}
	if _, err := c.Acquire(app, layout.RootIno, false); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("acquire of inaccessible inode: %v", err)
	}
}

func TestACLDeniesWrite(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(1000, 1000)
	h.c.SetACL(layout.RootIno, app, layout.PermRead)
	if _, err := h.c.Acquire(app, layout.RootIno, true); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("write acquire: %v, want ErrPerm", err)
	}
	if _, err := h.c.Acquire(app, layout.RootIno, false); err != nil {
		t.Fatalf("read acquire: %v", err)
	}
}

func TestBusyAndLeaseExpiry(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	now := time.Unix(5000, 0)
	h.c.SetClock(func() time.Time { return now })
	app1 := h.c.RegisterApp(0, 0)
	app2 := h.c.RegisterApp(0, 0)
	if _, err := h.c.Acquire(app1, layout.RootIno, true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Acquire(app2, layout.RootIno, true); !errors.Is(err, fsapi.ErrBusy) {
		t.Fatalf("second app acquire: %v, want ErrBusy", err)
	}
	// Lease expires; app2 triggers an involuntary release.
	now = now.Add(time.Hour)
	m2, err := h.c.Acquire(app2, layout.RootIno, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Valid() {
		t.Fatal("mapping invalid")
	}
	if h.c.Stats.Involuntary.Load() != 1 {
		t.Fatalf("Involuntary = %d", h.c.Stats.Involuntary.Load())
	}
	if h.c.OwnerOf(layout.RootIno) != app2 {
		t.Fatal("ownership did not move")
	}
}

func TestTrustGroupTransferSkipsVerification(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app1 := h.c.RegisterApp(0, 0)
	app2 := h.c.RegisterApp(0, 0)
	if _, err := h.c.NewTrustGroup(app1, app2); err != nil {
		t.Fatal(err)
	}
	m1, _ := h.c.Acquire(app1, layout.RootIno, true)
	before := h.c.Stats.Verifications.Load()
	m2, err := h.c.Acquire(app2, layout.RootIno, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.c.Stats.Verifications.Load() != before {
		t.Fatal("trust transfer ran the verifier")
	}
	if h.c.Stats.TrustTransfers.Load() != 1 {
		t.Fatalf("TrustTransfers = %d", h.c.Stats.TrustTransfers.Load())
	}
	// Within a trust group both mappings stay established: the point of
	// the group is sharing without unmap/verify cycles.
	if !m1.Valid() || !m2.Valid() {
		t.Fatal("group mappings should both remain valid")
	}
	if h.c.OwnerOf(layout.RootIno) != app2 {
		t.Fatal("ownership bookkeeping should follow the last acquirer")
	}
	// A release still revokes every group mapping and verifies.
	if err := h.c.Release(app2, layout.RootIno); err != nil {
		t.Fatal(err)
	}
	if m1.Valid() || m2.Valid() {
		t.Fatal("release must revoke all group mappings")
	}
}

func TestForceReleaseVerifies(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	h.mkfile(app, layout.RootIno, "f")
	if err := h.c.ForceRelease(layout.RootIno); err != nil {
		t.Fatal(err)
	}
	root, _ := h.c.ShadowOf(layout.RootIno)
	if root.ChildCount != 1 {
		t.Fatalf("childCount = %d after forced release", root.ChildCount)
	}
	if h.c.OwnerOf(layout.RootIno) != 0 {
		t.Fatal("owner not cleared")
	}
}

func TestGrantExhaustion(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	if _, err := h.c.GrantInodes(app, 1<<20); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("oversized inode grant: %v", err)
	}
	if _, err := h.c.GrantPages(app, 0, 1<<20); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("oversized page grant: %v", err)
	}
}

func TestVerifierRejectsUngrantedPages(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	h.c.Acquire(app, layout.RootIno, true)
	// Forge a dentry log page the kernel never granted: steal a free page
	// by writing to it directly.
	stolen := h.g.PageCount - 3
	layout.ZeroPage(h.dev, stolen)
	layout.SetTailHead(h.dev, h.c.shadowGet(layout.RootIno, nil).info.DataRoot, 1, stolen)
	ino, _ := h.grant(app, 0)
	in := layout.Inode{Type: layout.TypeFile, Perm: layout.PermRead, Nlink: 1, Parent: layout.RootIno}
	layout.WriteInode(h.dev, h.g, ino, &in)
	r := layout.MakeDentryRef(stolen, 0)
	layout.WriteDentryBody(h.dev, r, ino, "stolen")
	layout.CommitDentry(h.dev, r, len("stolen"))
	err := h.c.Release(app, layout.RootIno)
	if !IsVerificationError(err) {
		t.Fatalf("release with stolen page: %v, want verification failure", err)
	}
}
