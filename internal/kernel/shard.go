package kernel

import (
	"sync/atomic"
	"time"

	"arckfs/internal/hlock"
)

// Control-plane sharding (scalability work item): the controller's
// metadata is split into lock-striped shards so independent crossings on
// different inodes proceed in parallel instead of convoying behind one
// global mutex.
//
// Concurrency scheme — a big-reader epoch over fine-grained shards:
//
//   - Single-inode crossings (Acquire, file Release/Commit, grants,
//     ReturnPages, SetACL, ...) run under epoch.RLock plus the target
//     shard's spinlock. Shared state off the fast inode path (the app
//     table, page-owner words, ACL overrides) is guarded by its own
//     short leaf locks, so fast-path holders never take two locks of the
//     same class.
//   - Multi-inode crossings (directory Release/Commit, which can create,
//     relocate, or free children across shards; ForceRelease; expired-
//     lease reclaim) take epoch.Lock, draining every fast-path holder:
//     the exclusive holder owns the whole controller, exactly like the
//     old global mutex, so cross-inode atomicity is unchanged.
//
// The declared lock order (see internal/analysis lockorder) is
// Controller.epoch < shadowShard.mu < Controller.appsMu < pageStripe.mu
// < aclShard.mu < Mapping.mu.

const (
	// nShadowShardsMin is the floor (and default) shadow shard count; the
	// controller grows the table with the registered-app count up to
	// nShadowShardsMax (see maybeGrowShards).
	nShadowShardsMin = 16
	nShadowShardsMax = 4096
	nPageStripes     = 16
	nACLShards       = 8
)

// shadowGen is one generation of the shadow-shard table. The controller
// swaps in a larger generation (under the exclusive epoch) as tenants
// register, so shard count scales with tenant count instead of pinning
// 10k tenants' hot inodes onto 16 locks. Readers load the generation
// pointer once per access; the swap is safe because it only happens while
// every shared-epoch holder is drained.
type shadowGen struct {
	shards []shadowShard
	mask   uint64
}

// shardsFor returns the shard count appropriate for napps registered
// applications: the next power of two at or above napps, clamped to
// [nShadowShardsMin, nShadowShardsMax].
func shardsFor(napps int) int {
	n := nShadowShardsMin
	for n < napps && n < nShadowShardsMax {
		n <<= 1
	}
	return n
}

func newShadowGen(n int) *shadowGen {
	g := &shadowGen{shards: make([]shadowShard, n), mask: uint64(n - 1)}
	for i := range g.shards {
		g.shards[i].m = make(map[uint64]*shadowEnt)
	}
	return g
}

// maybeGrowShards grows the shadow table when the app count has outrun
// the shard count. The fast path is one atomic load and a compare; the
// grow path drains the epoch, rehashes every entry into a fresh
// generation, and folds the old generation's lock-traffic counters into
// the retired totals so the kernel.shard.* gauges stay monotonic.
func (c *Controller) maybeGrowShards(napps int) {
	want := shardsFor(napps)
	if want <= len(c.shadow.Load().shards) {
		return
	}
	c.enterExcl()
	defer c.exitExcl()
	old := c.shadow.Load()
	if want <= len(old.shards) {
		return // raced with another grower
	}
	next := newShadowGen(want)
	for i := range old.shards {
		sh := &old.shards[i]
		for ino, se := range sh.m {
			next.shards[ino&next.mask].m[ino] = se
		}
		c.shadowRetiredAcq.Add(sh.acquisitions.Load())
		c.shadowRetiredCont.Add(sh.contended.Load())
	}
	c.shadow.Store(next)
}

// shadowShard holds a stripe of the shadow-inode table. The counters
// feed the kernel.shard.* telemetry and arckshell's `shards` command.
type shadowShard struct {
	mu           hlock.SpinLock
	m            map[uint64]*shadowEnt
	acquisitions atomic.Int64
	contended    atomic.Int64
}

// pageStripe guards a stripe of the page-owner array.
type pageStripe struct {
	mu           hlock.SpinLock
	acquisitions atomic.Int64
	contended    atomic.Int64
}

// aclShard holds a stripe of the per-app permission overrides.
type aclShard struct {
	mu           hlock.SpinLock
	m            map[aclKey]uint16
	acquisitions atomic.Int64
	contended    atomic.Int64
}

func (c *Controller) shardOf(ino uint64) *shadowShard {
	g := c.shadow.Load()
	return &g.shards[ino&g.mask]
}

// shardIndex returns ino's shard index in the current generation (span
// payloads and tooling).
func (c *Controller) shardIndex(ino uint64) int {
	return int(ino & c.shadow.Load().mask)
}

func (c *Controller) stripeOf(page uint64) *pageStripe {
	return &c.pageStripe[page%nPageStripes]
}

func (c *Controller) aclShardOf(ino uint64) *aclShard {
	return &c.aclTab[ino%nACLShards]
}

// enterExcl begins an exclusive (multi-inode) crossing: every fast-path
// holder drains before it returns.
func (c *Controller) enterExcl() {
	c.epoch.Lock()
	c.Stats.EpochExclusive.Add(1)
}

func (c *Controller) exitExcl() { c.epoch.Unlock() }

// enterShared begins a single-inode crossing and returns the epoch
// reader-slot token the caller must pass back to exitShared. With
// Options.Serialize the controller degrades to the pre-sharding
// single-global-lock behaviour (the A/B baseline in EXPERIMENTS.md):
// every crossing is exclusive, marked by a negative token.
func (c *Controller) enterShared() int {
	if c.opts.Serialize {
		c.enterExcl()
		return -1
	}
	return c.epoch.RLock()
}

func (c *Controller) exitShared(tok int) {
	if tok < 0 {
		c.exitExcl()
		return
	}
	c.epoch.RUnlock(tok)
}

// shadowGet looks ino up in its shard. held, if non-nil, is a shard the
// caller already holds: lookups that land on it use the lock already
// held instead of re-acquiring (fast-path callers pass their own shard;
// exclusive-epoch callers pass nil and take the brief leaf lock).
func (c *Controller) shadowGet(ino uint64, held *shadowShard) *shadowEnt {
	sh := c.shardOf(ino)
	if sh == held {
		return sh.m[ino]
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	se := sh.m[ino]
	sh.mu.Unlock()
	return se
}

// shadowPut inserts ino's entry, with the same held-shard convention as
// shadowGet.
func (c *Controller) shadowPut(ino uint64, se *shadowEnt, held *shadowShard) {
	sh := c.shardOf(ino)
	if sh == held {
		sh.m[ino] = se
		return
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	sh.m[ino] = se
	sh.mu.Unlock()
}

// shadowDelete removes ino's entry, with the same held-shard convention
// as shadowGet.
func (c *Controller) shadowDelete(ino uint64, held *shadowShard) {
	sh := c.shardOf(ino)
	if sh == held {
		delete(sh.m, ino)
		return
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	delete(sh.m, ino)
	sh.mu.Unlock()
}

// shadowRange calls fn for every shadow entry. Exclusive epoch or
// single-threaded (mount/recovery) callers only.
func (c *Controller) shadowRange(fn func(ino uint64, se *shadowEnt)) {
	g := c.shadow.Load()
	for i := range g.shards {
		for ino, se := range g.shards[i].m {
			fn(ino, se)
		}
	}
}

// shadowCount returns the number of shadow entries (exclusive epoch or
// mount-time callers).
func (c *Controller) shadowCount() int {
	n := 0
	g := c.shadow.Load()
	for i := range g.shards {
		n += len(g.shards[i].m)
	}
	return n
}

// pageOwnerAt reads one page-owner word under its stripe lock.
func (c *Controller) pageOwnerAt(page uint64) pageOwner {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	o := c.pages[page]
	ps.mu.Unlock()
	return o
}

// setPageOwner writes one page-owner word under its stripe lock.
func (c *Controller) setPageOwner(page uint64, o pageOwner) {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	c.pages[page] = o
	ps.mu.Unlock()
}

// casPageOwner sets page's owner to next only if it currently equals
// prev, reporting whether the swap happened.
func (c *Controller) casPageOwner(page uint64, prev, next pageOwner) bool {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	swapped := c.pages[page] == prev
	if swapped {
		c.pages[page] = next
	}
	ps.mu.Unlock()
	return swapped
}

// lookupApp returns the registered app, or nil.
func (c *Controller) lookupApp(id AppID) *app {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	a := c.apps[id]
	c.appsMu.Unlock()
	return a
}

// inoGranted reports whether ino was granted to app and not yet bound to
// a committed creation.
func (c *Controller) inoGranted(id AppID, ino uint64) bool {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	a := c.apps[id]
	ok := a != nil && a.grantedInos[ino]
	c.appsMu.Unlock()
	return ok
}

// ungrant drops ino from app's granted set (the creation committed).
func (c *Controller) ungrant(id AppID, ino uint64) {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	if a := c.apps[id]; a != nil {
		delete(a.grantedInos, ino)
	}
	c.appsMu.Unlock()
}

// pushInoFree returns ino to the free-number pool.
func (c *Controller) pushInoFree(ino uint64) {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	c.inoFree = append(c.inoFree, ino)
	c.appsMu.Unlock()
}

// ShardStat is one shard's lock-traffic counters (telemetry; the
// arckshell `shards` command renders these).
type ShardStat struct {
	Kind         string // "shadow", "page", "acl", "apps"
	Index        int
	Acquisitions int64
	Contended    int64
}

// ShardStats snapshots per-shard lock acquisition and contention
// counters for every stripe of the control-plane state. Shadow-shard
// rows reset when the table grows a generation; the retired generations'
// totals stay in the aggregate gauges (shardTelemetry).
func (c *Controller) ShardStats() []ShardStat {
	g := c.shadow.Load()
	out := make([]ShardStat, 0, len(g.shards)+nPageStripes+nACLShards+1)
	for i := range g.shards {
		sh := &g.shards[i]
		out = append(out, ShardStat{"shadow", i, sh.acquisitions.Load(), sh.contended.Load()})
	}
	for i := range c.pageStripe {
		ps := &c.pageStripe[i]
		out = append(out, ShardStat{"page", i, ps.acquisitions.Load(), ps.contended.Load()})
	}
	for i := range c.aclTab {
		as := &c.aclTab[i]
		out = append(out, ShardStat{"acl", i, as.acquisitions.Load(), as.contended.Load()})
	}
	out = append(out, ShardStat{"apps", 0, c.appsAcquisitions.Load(), c.appsContended.Load()})
	return out
}

// shardTelemetry sums a counter over every shard, including retired
// shadow-table generations (so the gauges stay monotonic across grows).
func (c *Controller) shardTelemetry(contended bool) int64 {
	var n int64
	for _, s := range c.ShardStats() {
		if contended {
			n += s.Contended
		} else {
			n += s.Acquisitions
		}
	}
	if contended {
		n += c.shadowRetiredCont.Load()
	} else {
		n += c.shadowRetiredAcq.Load()
	}
	return n
}

// now reads the (swappable, race-safe) lease clock.
func (c *Controller) now() time.Time {
	return (*c.clock.Load())()
}
