package kernel

import (
	"sync/atomic"
	"time"

	"arckfs/internal/hlock"
)

// Control-plane sharding (scalability work item): the controller's
// metadata is split into lock-striped shards so independent crossings on
// different inodes proceed in parallel instead of convoying behind one
// global mutex.
//
// Concurrency scheme — a big-reader epoch over fine-grained shards:
//
//   - Single-inode crossings (Acquire, file Release/Commit, grants,
//     ReturnPages, SetACL, ...) run under epoch.RLock plus the target
//     shard's spinlock. Shared state off the fast inode path (the app
//     table, page-owner words, ACL overrides) is guarded by its own
//     short leaf locks, so fast-path holders never take two locks of the
//     same class.
//   - Multi-inode crossings (directory Release/Commit, which can create,
//     relocate, or free children across shards; ForceRelease; expired-
//     lease reclaim) take epoch.Lock, draining every fast-path holder:
//     the exclusive holder owns the whole controller, exactly like the
//     old global mutex, so cross-inode atomicity is unchanged.
//
// The declared lock order (see internal/analysis lockorder) is
// Controller.epoch < shadowShard.mu < Controller.appsMu < pageStripe.mu
// < aclShard.mu < Mapping.mu.

const (
	nShadowShards = 16
	nPageStripes  = 16
	nACLShards    = 8
)

// shadowShard holds a stripe of the shadow-inode table. The counters
// feed the kernel.shard.* telemetry and arckshell's `shards` command.
type shadowShard struct {
	mu           hlock.SpinLock
	m            map[uint64]*shadowEnt
	acquisitions atomic.Int64
	contended    atomic.Int64
}

// pageStripe guards a stripe of the page-owner array.
type pageStripe struct {
	mu           hlock.SpinLock
	acquisitions atomic.Int64
	contended    atomic.Int64
}

// aclShard holds a stripe of the per-app permission overrides.
type aclShard struct {
	mu           hlock.SpinLock
	m            map[aclKey]uint16
	acquisitions atomic.Int64
	contended    atomic.Int64
}

func (c *Controller) shardOf(ino uint64) *shadowShard {
	return &c.shadowTab[ino%nShadowShards]
}

func (c *Controller) stripeOf(page uint64) *pageStripe {
	return &c.pageStripe[page%nPageStripes]
}

func (c *Controller) aclShardOf(ino uint64) *aclShard {
	return &c.aclTab[ino%nACLShards]
}

// enterExcl begins an exclusive (multi-inode) crossing: every fast-path
// holder drains before it returns.
func (c *Controller) enterExcl() {
	c.epoch.Lock()
	c.Stats.EpochExclusive.Add(1)
}

func (c *Controller) exitExcl() { c.epoch.Unlock() }

// enterShared begins a single-inode crossing. With Options.Serialize the
// controller degrades to the pre-sharding single-global-lock behaviour
// (the A/B baseline in EXPERIMENTS.md): every crossing is exclusive.
func (c *Controller) enterShared() {
	if c.opts.Serialize {
		c.enterExcl()
		return
	}
	c.epoch.RLock()
}

func (c *Controller) exitShared() {
	if c.opts.Serialize {
		c.exitExcl()
		return
	}
	c.epoch.RUnlock()
}

// shadowGet looks ino up in its shard. held, if non-nil, is a shard the
// caller already holds: lookups that land on it use the lock already
// held instead of re-acquiring (fast-path callers pass their own shard;
// exclusive-epoch callers pass nil and take the brief leaf lock).
func (c *Controller) shadowGet(ino uint64, held *shadowShard) *shadowEnt {
	sh := c.shardOf(ino)
	if sh == held {
		return sh.m[ino]
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	se := sh.m[ino]
	sh.mu.Unlock()
	return se
}

// shadowPut inserts ino's entry, with the same held-shard convention as
// shadowGet.
func (c *Controller) shadowPut(ino uint64, se *shadowEnt, held *shadowShard) {
	sh := c.shardOf(ino)
	if sh == held {
		sh.m[ino] = se
		return
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	sh.m[ino] = se
	sh.mu.Unlock()
}

// shadowDelete removes ino's entry, with the same held-shard convention
// as shadowGet.
func (c *Controller) shadowDelete(ino uint64, held *shadowShard) {
	sh := c.shardOf(ino)
	if sh == held {
		delete(sh.m, ino)
		return
	}
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.acquisitions.Add(1)
	delete(sh.m, ino)
	sh.mu.Unlock()
}

// shadowRange calls fn for every shadow entry. Exclusive epoch or
// single-threaded (mount/recovery) callers only.
func (c *Controller) shadowRange(fn func(ino uint64, se *shadowEnt)) {
	for i := range c.shadowTab {
		for ino, se := range c.shadowTab[i].m {
			fn(ino, se)
		}
	}
}

// shadowCount returns the number of shadow entries (exclusive epoch or
// mount-time callers).
func (c *Controller) shadowCount() int {
	n := 0
	for i := range c.shadowTab {
		n += len(c.shadowTab[i].m)
	}
	return n
}

// pageOwnerAt reads one page-owner word under its stripe lock.
func (c *Controller) pageOwnerAt(page uint64) pageOwner {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	o := c.pages[page]
	ps.mu.Unlock()
	return o
}

// setPageOwner writes one page-owner word under its stripe lock.
func (c *Controller) setPageOwner(page uint64, o pageOwner) {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	c.pages[page] = o
	ps.mu.Unlock()
}

// casPageOwner sets page's owner to next only if it currently equals
// prev, reporting whether the swap happened.
func (c *Controller) casPageOwner(page uint64, prev, next pageOwner) bool {
	ps := c.stripeOf(page)
	if !ps.mu.TryLock() {
		ps.contended.Add(1)
		ps.mu.Lock()
	}
	ps.acquisitions.Add(1)
	swapped := c.pages[page] == prev
	if swapped {
		c.pages[page] = next
	}
	ps.mu.Unlock()
	return swapped
}

// lookupApp returns the registered app, or nil.
func (c *Controller) lookupApp(id AppID) *app {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	a := c.apps[id]
	c.appsMu.Unlock()
	return a
}

// inoGranted reports whether ino was granted to app and not yet bound to
// a committed creation.
func (c *Controller) inoGranted(id AppID, ino uint64) bool {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	a := c.apps[id]
	ok := a != nil && a.grantedInos[ino]
	c.appsMu.Unlock()
	return ok
}

// ungrant drops ino from app's granted set (the creation committed).
func (c *Controller) ungrant(id AppID, ino uint64) {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	if a := c.apps[id]; a != nil {
		delete(a.grantedInos, ino)
	}
	c.appsMu.Unlock()
}

// pushInoFree returns ino to the free-number pool.
func (c *Controller) pushInoFree(ino uint64) {
	if !c.appsMu.TryLock() {
		c.appsContended.Add(1)
		c.appsMu.Lock()
	}
	c.appsAcquisitions.Add(1)
	c.inoFree = append(c.inoFree, ino)
	c.appsMu.Unlock()
}

// ShardStat is one shard's lock-traffic counters (telemetry; the
// arckshell `shards` command renders these).
type ShardStat struct {
	Kind         string // "shadow", "page", "acl", "apps"
	Index        int
	Acquisitions int64
	Contended    int64
}

// ShardStats snapshots per-shard lock acquisition and contention
// counters for every stripe of the control-plane state.
func (c *Controller) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, nShadowShards+nPageStripes+nACLShards+1)
	for i := range c.shadowTab {
		sh := &c.shadowTab[i]
		out = append(out, ShardStat{"shadow", i, sh.acquisitions.Load(), sh.contended.Load()})
	}
	for i := range c.pageStripe {
		ps := &c.pageStripe[i]
		out = append(out, ShardStat{"page", i, ps.acquisitions.Load(), ps.contended.Load()})
	}
	for i := range c.aclTab {
		as := &c.aclTab[i]
		out = append(out, ShardStat{"acl", i, as.acquisitions.Load(), as.contended.Load()})
	}
	out = append(out, ShardStat{"apps", 0, c.appsAcquisitions.Load(), c.appsContended.Load()})
	return out
}

// shardTelemetry sums a counter over every shard.
func (c *Controller) shardTelemetry(contended bool) int64 {
	var n int64
	for _, s := range c.ShardStats() {
		if contended {
			n += s.Contended
		} else {
			n += s.Acquisitions
		}
	}
	return n
}

// now reads the (swappable, race-safe) lease clock.
func (c *Controller) now() time.Time {
	return (*c.clock.Load())()
}
