package kernel

import (
	"errors"
	"testing"
	"time"

	"arckfs/internal/verifier"
)

// TestQuotaPageBoundary grants exactly up to MaxPages — the boundary
// must be inclusive — then checks one page more fails with ErrQuota,
// and that returning pages uncharges so the tenant can grant again.
func TestQuotaPageBoundary(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	if err := h.c.SetQuota(app, Quota{MaxPages: 8}); err != nil {
		t.Fatal(err)
	}

	pages, err := h.c.GrantPages(app, 0, 8)
	if err != nil {
		t.Fatalf("grant exactly at limit: %v", err)
	}
	if _, err := h.c.GrantPages(app, 0, 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("grant past limit: got %v, want ErrQuota", err)
	}

	h.c.ReturnPages(app, pages[:4])
	if _, err := h.c.GrantPages(app, 0, 4); err != nil {
		t.Fatalf("re-grant after return: %v", err)
	}
	u := usageOf(t, h.c, app)
	if u.PagesOut != 8 {
		t.Fatalf("outstanding pages %d, want 8", u.PagesOut)
	}
}

// TestQuotaInodeBoundary is the inode-grant twin: exactly MaxInodes
// succeeds, one more fails, and binding an inode to a committed
// creation is what uncharges it (outstanding-grant semantics).
func TestQuotaInodeBoundary(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	if err := h.c.SetQuota(app, Quota{MaxInodes: 4}); err != nil {
		t.Fatal(err)
	}

	if _, err := h.c.GrantInodes(app, 4); err != nil {
		t.Fatalf("grant exactly at limit: %v", err)
	}
	if _, err := h.c.GrantInodes(app, 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("grant past limit: got %v, want ErrQuota", err)
	}
	u := usageOf(t, h.c, app)
	if u.InodesGranted != 4 {
		t.Fatalf("outstanding inode grants %d, want 4", u.InodesGranted)
	}
}

// TestQuotaRaiseLowerWithGrantsParked covers runtime requota while
// grants are outstanding (the LibFS parks a lease reserve in exactly
// this state): lowering below current usage revokes nothing and only
// blocks further grants; raising unblocks immediately.
func TestQuotaRaiseLowerWithGrantsParked(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	if err := h.c.SetQuota(app, Quota{MaxPages: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.GrantPages(app, 0, 8); err != nil {
		t.Fatal(err)
	}

	// Lower below the 8 outstanding: nothing is revoked...
	if err := h.c.SetQuota(app, Quota{MaxPages: 4}); err != nil {
		t.Fatal(err)
	}
	if u := usageOf(t, h.c, app); u.PagesOut != 8 {
		t.Fatalf("lowering the quota revoked grants: %d outstanding, want 8", u.PagesOut)
	}
	// ...but further grants are blocked.
	if _, err := h.c.GrantPages(app, 0, 1); !errors.Is(err, ErrQuota) {
		t.Fatalf("grant under lowered quota: got %v, want ErrQuota", err)
	}

	// Raise: the parked grants fit again and growth resumes.
	if err := h.c.SetQuota(app, Quota{MaxPages: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.GrantPages(app, 0, 8); err != nil {
		t.Fatalf("grant after raise: %v", err)
	}

	// Clearing the quota (zero value) makes the tenant unlimited.
	if err := h.c.SetQuota(app, Quota{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.GrantPages(app, 0, 64); err != nil {
		t.Fatalf("grant after clear: %v", err)
	}
}

// TestQuotaCrossingThrottleBurst pins the GCRA throttle's shape: a
// burst within the bucket's tolerance passes at full speed, and
// crossings beyond it are paced at the configured rate. The elapsed
// lower bound is what matters — an upper bound would be flaky — plus
// the kernel's throttled counter as a direct signal.
func TestQuotaCrossingThrottleBurst(t *testing.T) {
	h := newHarness(t, verifier.Enhanced)
	app := h.c.RegisterApp(0, 0)
	// 400/s: burst tolerance = 400/8 = 50 crossings, then 2.5 ms each.
	if err := h.c.SetQuota(app, Quota{CrossingsPerSec: 400}); err != nil {
		t.Fatal(err)
	}

	crossings := func(n int) {
		for i := 0; i < n; i++ {
			if _, ok := h.c.QuotaOf(app); !ok {
				t.Fatal("app vanished")
			}
			if err := h.c.SetQuota(app, Quota{CrossingsPerSec: 400}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Within burst: fast. (SetQuota is itself a crossing; the install
	// above consumed one token already.)
	start := time.Now()
	crossings(40)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("within-burst crossings took %v", el)
	}

	// Past burst: at least (crossings - tokens left) * 2.5ms of pacing.
	// 30 more crossings with at most ~9 tokens left costs >= ~50ms; assert
	// half that to stay robust on slow CI.
	throttledBefore := h.c.throttled.Load()
	start = time.Now()
	crossings(30)
	el := time.Since(start)
	if el < 25*time.Millisecond {
		t.Fatalf("past-burst crossings took only %v, throttle not pacing", el)
	}
	if h.c.throttled.Load() == throttledBefore {
		t.Fatal("throttled counter did not move")
	}

	// Clearing the rate stops the pacing.
	if err := h.c.SetQuota(app, Quota{}); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	crossings(30)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("crossings after clear took %v, throttle still active", el)
	}
}

func usageOf(t *testing.T, c *Controller, app AppID) AppUsage {
	t.Helper()
	for _, u := range c.Usage() {
		if u.App == app {
			return u
		}
	}
	t.Fatalf("app %d not in usage table", app)
	return AppUsage{}
}
