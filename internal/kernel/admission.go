package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"arckfs/internal/telemetry"
)

// admission is the fair-share crossing admission scheduler: at most
// MaxInflight crossings run concurrently, and when the slots are full,
// excess crossings queue per tenant and are handed off by weighted
// deficit round-robin. The scheduler sits in front of the epoch lock
// (syscall runs it before enterShared/enterExcl), so a queued crossing
// holds no kernel lock while it waits and one hot tenant cannot convoy
// every other tenant's crossings behind its own burst.
//
// The fast path is one CAS on the free-slot counter. The slow path
// enqueues a channel under the scheduler mutex, re-checks the slot
// counter (closing the lost-wakeup window against a concurrent release
// that saw an empty queue), and blocks. A finishing crossing hands its
// slot directly to the picked waiter — the slot never returns to the
// free counter, so a waiting tenant cannot be starved by fast-path
// arrivals racing the refill.
type admission struct {
	serial bool
	dim    *telemetry.AppDim

	slots atomic.Int64 // free slots (fast path)

	admitted atomic.Int64 // crossings admitted (fast or queued)
	queued   atomic.Int64 // crossings that waited in the queue
	waitNS   atomic.Int64 // total queued wait
	handoffs atomic.Int64 // direct slot handoffs
	depth    atomic.Int64 // current queue depth (gauge)

	mu      sync.Mutex
	qs      map[AppID]*tenantQ
	ring    []*tenantQ // tenants with queued waiters, round-robin order
	ringIdx int

	// releaseFn is the preallocated crossing-end hook syscall returns.
	releaseFn func()
}

// tenantQ is one tenant's waiter queue plus its deficit round-robin
// state. Entries persist across crossings (so weights stick) and are
// dropped by evict when the tenant unregisters.
type tenantQ struct {
	app     AppID
	weight  int64 // fair-share weight (<=0 treated as 1)
	deficit int64
	waiters []chan struct{}
	inRing  bool
}

func newAdmission(maxInflight int, serial bool, dim *telemetry.AppDim) *admission {
	ad := &admission{serial: serial, dim: dim, qs: make(map[AppID]*tenantQ)}
	ad.slots.Store(int64(maxInflight))
	ad.releaseFn = ad.release
	return ad
}

// key collapses every tenant onto one FIFO queue in serial mode (the
// naive-admission A/B baseline).
func (ad *admission) key(app AppID) AppID {
	if ad.serial {
		return 0
	}
	return app
}

// tryAcquire takes a free slot without queueing.
func (ad *admission) tryAcquire() bool {
	for {
		s := ad.slots.Load()
		if s <= 0 {
			return false
		}
		if ad.slots.CompareAndSwap(s, s-1) {
			return true
		}
	}
}

// admit blocks until the crossing may proceed.
func (ad *admission) admit(app AppID, sink telemetry.SpanSink) {
	if ad.tryAcquire() {
		ad.admitted.Add(1)
		return
	}
	begin := time.Now()
	ch := ad.enqueue(app)
	// Lost-wakeup guard: a release may have refilled the free counter
	// after it saw an empty queue but before our enqueue landed.
	if ad.tryAcquire() {
		if ad.dequeue(app, ch) {
			ad.admitted.Add(1)
			return
		}
		// Our channel was already handed a slot: we hold two, return one.
		ad.release()
	}
	<-ch
	wait := time.Since(begin).Nanoseconds()
	ad.admitted.Add(1)
	ad.queued.Add(1)
	ad.waitNS.Add(wait)
	ad.dim.Add(app, telemetry.AppAdmitQueued, 1)
	ad.dim.Add(app, telemetry.AppAdmitWaitNS, wait)
	if sink != nil {
		sink.SpanEvent(telemetry.SpanEvAdmitWait, int64(app), wait)
	}
}

func (ad *admission) enqueue(app AppID) chan struct{} {
	ch := make(chan struct{})
	key := ad.key(app)
	ad.mu.Lock()
	q := ad.qs[key]
	if q == nil {
		q = &tenantQ{app: key, weight: 1}
		ad.qs[key] = q
	}
	q.waiters = append(q.waiters, ch)
	if !q.inRing {
		q.inRing = true
		ad.ring = append(ad.ring, q)
	}
	ad.mu.Unlock()
	ad.depth.Add(1)
	return ch
}

// dequeue removes ch from app's queue if it is still waiting, reporting
// whether it did (false means a release already handed ch a slot).
func (ad *admission) dequeue(app AppID, ch chan struct{}) bool {
	key := ad.key(app)
	ad.mu.Lock()
	defer ad.mu.Unlock()
	q := ad.qs[key]
	if q == nil {
		return false
	}
	for i, w := range q.waiters {
		if w == ch {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			ad.depth.Add(-1)
			return true
		}
	}
	return false
}

// release ends a crossing: hand the slot directly to the next waiter
// picked by weighted deficit round-robin, or return it to the free
// counter when nobody waits.
func (ad *admission) release() {
	ad.mu.Lock()
	ch := ad.pickLocked()
	ad.mu.Unlock()
	if ch != nil {
		ad.handoffs.Add(1)
		close(ch)
		return
	}
	ad.slots.Add(1)
}

// pickLocked runs one WDRR scheduling decision: visit tenants in ring
// order, topping each visited tenant's deficit up by its weight, and
// serve the first tenant with both a positive deficit and a waiter.
// Terminates because every visit either serves, removes a drained
// tenant, or raises a deficit above zero (so the next lap serves).
func (ad *admission) pickLocked() chan struct{} {
	for len(ad.ring) > 0 {
		if ad.ringIdx >= len(ad.ring) {
			ad.ringIdx = 0
		}
		q := ad.ring[ad.ringIdx]
		if len(q.waiters) == 0 {
			// Drained: leave the ring and forfeit the residual deficit
			// (a returning tenant starts fresh — unused credit must not
			// accumulate into a future burst).
			q.inRing = false
			q.deficit = 0
			ad.ring = append(ad.ring[:ad.ringIdx], ad.ring[ad.ringIdx+1:]...)
			continue
		}
		if q.deficit > 0 {
			q.deficit--
			ch := q.waiters[0]
			q.waiters = q.waiters[1:]
			ad.depth.Add(-1)
			return ch
		}
		w := q.weight
		if w <= 0 {
			w = 1
		}
		q.deficit += w
		ad.ringIdx++
	}
	return nil
}

// setWeight records app's fair-share weight for future scheduling
// rounds.
func (ad *admission) setWeight(app AppID, w int64) {
	if ad.serial {
		return
	}
	ad.mu.Lock()
	q := ad.qs[app]
	if q == nil {
		q = &tenantQ{app: app}
		ad.qs[app] = q
	}
	if w <= 0 {
		w = 1
	}
	q.weight = w
	ad.mu.Unlock()
}

// evict drops a departed tenant's queue state so the scheduler's
// footprint tracks live tenants. A tenant with waiters still queued is
// left alone (they drain through normal handoff first).
func (ad *admission) evict(app AppID) {
	ad.mu.Lock()
	if q := ad.qs[app]; q != nil && len(q.waiters) == 0 {
		delete(ad.qs, app)
		if q.inRing {
			for i, r := range ad.ring {
				if r == q {
					ad.ring = append(ad.ring[:i], ad.ring[i+1:]...)
					break
				}
			}
		}
	}
	ad.mu.Unlock()
}

// Nil-safe counter reads for the kernel.admission.* gauges.

func (ad *admission) admittedCount() int64 {
	if ad == nil {
		return 0
	}
	return ad.admitted.Load()
}

func (ad *admission) queuedCount() int64 {
	if ad == nil {
		return 0
	}
	return ad.queued.Load()
}

func (ad *admission) waitNSCount() int64 {
	if ad == nil {
		return 0
	}
	return ad.waitNS.Load()
}

func (ad *admission) handoffCount() int64 {
	if ad == nil {
		return 0
	}
	return ad.handoffs.Load()
}

func (ad *admission) queueDepth() int64 {
	if ad == nil {
		return 0
	}
	return ad.depth.Load()
}
